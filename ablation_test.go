package edr_test

// Ablation benchmarks for the design choices DESIGN.md calls out: the
// network-energy degree γ (linear vs cubic switch fabrics), the
// constant-step sizes both distributed methods run with, the fleet size
// (the |N|³ communication asymmetry between CDPSM and LDDM), and the
// Dykstra projection budget. Run a slice with e.g.
//
//	go test -bench=Ablation -benchmem

import (
	"fmt"
	"testing"

	"edr/internal/admm"
	"edr/internal/cdpsm"
	"edr/internal/central"
	"edr/internal/lddm"
	"edr/internal/opt"
	"edr/internal/probgen"
	"edr/internal/sim"
	"edr/internal/solver"
)

// BenchmarkAblationGamma sweeps the network-energy polynomial degree: γ=1
// (linear Batcher/Crossbar-style fabrics) makes the objective linear in
// loads, so water-filling degenerates to cheapest-first; γ=3 is the
// paper's data-intensive profile; γ=4 exaggerates the spreading pressure.
func BenchmarkAblationGamma(b *testing.B) {
	for _, gamma := range []float64{1, 2, 3, 4} {
		b.Run(fmt.Sprintf("gamma=%g", gamma), func(b *testing.B) {
			prob, err := probgen.MustFeasible(sim.NewRand(11), probgen.Spec{
				Clients:  10,
				Replicas: 8,
				Prices:   []float64{1, 8, 1, 6, 1, 5, 2, 3},
				Gamma:    gamma,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			var lastObjective float64
			for i := 0; i < b.N; i++ {
				res, err := lddm.New().Solve(prob)
				if err != nil {
					b.Fatal(err)
				}
				lastObjective = res.Objective
			}
			b.ReportMetric(lastObjective, "objective")
		})
	}
}

// BenchmarkAblationLDDMStepRamp sweeps the dual step's ramp length: short
// ramps converge in fewer iterations but oscillate harder (more work per
// recovered solution); the engine default is 50.
func BenchmarkAblationLDDMStepRamp(b *testing.B) {
	prob, err := probgen.MustFeasible(sim.NewRand(13), probgen.Spec{
		Clients:  10,
		Replicas: 8,
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, ramp := range []float64{5, 10, 25, 50, 100} {
		b.Run(fmt.Sprintf("ramp=%g", ramp), func(b *testing.B) {
			b.ReportAllocs()
			iters := 0
			for i := 0; i < b.N; i++ {
				s := lddm.New()
				s.StepRamp = ramp
				res, err := s.Solve(prob)
				if err != nil {
					b.Fatal(err)
				}
				iters = res.Iterations
			}
			b.ReportMetric(float64(iters), "iterations")
		})
	}
}

// BenchmarkAblationCDPSMStep sweeps CDPSM's constant step: too small
// never converges within the bound, too large raises the consensus error
// floor.
func BenchmarkAblationCDPSMStep(b *testing.B) {
	prob, err := probgen.MustFeasible(sim.NewRand(17), probgen.Spec{
		Clients:  6,
		Replicas: 4,
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, step := range []float64{0.0005, 0.002, 0.01, 0.05} {
		b.Run(fmt.Sprintf("step=%g", step), func(b *testing.B) {
			b.ReportAllocs()
			var objective float64
			for i := 0; i < b.N; i++ {
				s := cdpsm.New()
				s.MaxIters = 400
				s.Step = opt.ConstantStep(step)
				res, err := s.Solve(prob)
				if err != nil {
					b.Fatal(err)
				}
				objective = res.Objective
			}
			b.ReportMetric(objective, "objective")
		})
	}
}

// BenchmarkAblationFleetSize contrasts how the two distributed methods
// scale with the replica count: LDDM's per-iteration work is O(C·N) while
// CDPSM's is O(C·N³) — the core complexity claim of paper §III-D.
func BenchmarkAblationFleetSize(b *testing.B) {
	for _, n := range []int{2, 4, 8, 12} {
		prob, err := probgen.MustFeasible(sim.NewRand(19), probgen.Spec{
			Clients:  8,
			Replicas: n,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("LDDM/N=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s := lddm.New()
				s.MaxIters = 200
				if _, err := s.Solve(prob); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("CDPSM/N=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s := cdpsm.New()
				s.MaxIters = 200
				if _, err := s.Solve(prob); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationDykstraSweeps sweeps the per-iteration projection
// budget of CDPSM's local constraint sets: a single sweep is cheap but
// inexact; the engine default (60) trades precision for per-iteration
// cost.
func BenchmarkAblationDykstraSweeps(b *testing.B) {
	prob, err := probgen.MustFeasible(sim.NewRand(23), probgen.Spec{
		Clients:  6,
		Replicas: 4,
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, sweeps := range []int{1, 5, 20, 60, 200} {
		b.Run(fmt.Sprintf("sweeps=%d", sweeps), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s := cdpsm.New()
				s.MaxIters = 120
				s.ProjectSweeps = sweeps
				if _, err := s.Solve(prob); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationSolverLineup compares all five optimizers on the same
// paper-scale instance: the two distributed EDR methods, the ADMM
// extension, and the two centralized references.
func BenchmarkAblationSolverLineup(b *testing.B) {
	prob, err := probgen.MustFeasible(sim.NewRand(29), probgen.Spec{
		Clients:  12,
		Replicas: 8,
		Prices:   []float64{1, 8, 1, 6, 1, 5, 2, 3},
	})
	if err != nil {
		b.Fatal(err)
	}
	lineup := []solver.Solver{
		lddm.New(),
		func() solver.Solver { s := cdpsm.New(); s.MaxIters = 300; return s }(),
		admm.New(),
		central.New(),
		central.NewFrankWolfe(),
	}
	for _, s := range lineup {
		b.Run(s.Name(), func(b *testing.B) {
			b.ReportAllocs()
			var objective float64
			for i := 0; i < b.N; i++ {
				res, err := s.Solve(prob)
				if err != nil {
					b.Fatal(err)
				}
				objective = res.Objective
			}
			b.ReportMetric(objective, "objective")
		})
	}
}
