// Steady state: a day of continuous EDR operation on the discrete-event
// simulator. A YouTube-patterned request stream arrives on the virtual
// clock; every scheduling window the pending batch is optimized with LDDM
// and played onto the simulated SystemG cluster; the Dominion-PX-style
// meters integrate each replica's energy, and the day's bill is compared
// against Round-Robin — the paper's Fig 3→8 pipeline, end to end, on one
// virtual timeline.
//
//	go run ./examples/steadystate
package main

import (
	"fmt"
	"log"
	"time"

	"edr/internal/baseline"
	"edr/internal/cluster"
	"edr/internal/experiments"
	"edr/internal/lddm"
	"edr/internal/opt"
	"edr/internal/power"
	"edr/internal/pricing"
	"edr/internal/probgen"
	"edr/internal/sim"
	"edr/internal/solver"
	"edr/internal/workload"
)

func main() {
	r := sim.NewRand(2013)
	prices := pricing.PaperFigure6Prices()

	// One day of DFS traffic, scheduled every 10 minutes.
	trace, err := workload.Generate(r, workload.Config{
		App:             workload.DFS,
		Clients:         12,
		MeanRatePerHour: 240,
		Duration:        24 * time.Hour,
	})
	if err != nil {
		log.Fatal(err)
	}
	const window = 10 * time.Minute
	windows := workload.Window(trace, sim.Epoch, window, int(24*time.Hour/window))
	fmt.Printf("day of traffic: %d requests, %.0f MB; %d scheduling windows\n\n",
		len(trace), workload.TotalMB(trace), len(windows))

	for _, algo := range []struct {
		name  string
		solve solver.Solver
	}{
		{"LDDM", lddm.New()},
		{"Round-Robin", baseline.RoundRobin{}},
	} {
		var probs []*opt.Problem
		var results []*solver.Result
		skipped := 0
		gen := sim.NewRand(99) // identical topologies for both schedulers
		for _, batch := range windows {
			if len(batch) == 0 {
				continue
			}
			prob, err := probgen.FromBatch(gen, batch, len(prices), prices, true)
			if err != nil {
				log.Fatal(err)
			}
			if opt.CheckFeasible(prob) != nil {
				skipped++
				continue
			}
			res, err := algo.solve.Solve(prob)
			if err != nil {
				log.Fatal(err)
			}
			probs = append(probs, prob)
			results = append(results, res)
		}
		cl := cluster.NewSystemG(len(prices))
		start, end, joules, err := experiments.PlaySchedule(cl, experiments.DefaultTiming(), probs, results, algo.name)
		if err != nil {
			log.Fatal(err)
		}
		totalJ, totalCost := 0.0, 0.0
		for j, e := range joules {
			totalJ += e
			totalCost += power.CostCents(e, prices[j])
		}
		fmt.Printf("%-12s %3d rounds (%d windows infeasible), %v metered: %8.0f J, %.4f ¢\n",
			algo.name, len(probs), skipped, end.Sub(start).Round(time.Second), totalJ, totalCost)
	}
	fmt.Println("\nThe energy-aware day costs less even though both schedulers move the")
	fmt.Println("same bytes: the savings come entirely from *where* the bytes are served.")
}
