// Fault tolerance: EDR's ring structure under injected faults (paper
// §III-C plus this module's transient-fault hysteresis). A four-replica
// fleet runs on a fault-injection fabric and faces three escalating
// failures:
//
//  1. a transient link fault — heartbeats miss, the successor is
//     suspected but NOT declared dead, and the suspicion clears when the
//     link heals;
//
//  2. a full partition that outlasts the round's retry budget — the
//     round degrades to the last-known-good assignment over the
//     reachable replicas instead of failing or falsely pruning;
//
//  3. a real crash — after SuspectAfter consecutive missed heartbeats
//     the member is declared dead, pruned everywhere, and scheduling
//     continues on the survivors without client involvement.
//
//     go run ./examples/faulttolerance
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"edr/internal/core"
	"edr/internal/model"
	"edr/internal/transport"
)

func main() {
	// Wrap the in-process fabric with seeded fault injection.
	net := transport.NewFaultyNetwork(transport.NewInProcNetwork(), 42)
	names := []string{"r1", "r2", "r3", "r4"}
	prices := []float64{2, 8, 4, 6}
	var replicas []*core.ReplicaServer
	for i, name := range names {
		rs, err := core.NewReplicaServer(net, name, names, core.ReplicaConfig{
			Replica:   model.NewReplica(name, prices[i]),
			Algorithm: core.LDDM,
			// Short RPC budget with two retries per send, and no round
			// restarts: a member that stays unreachable degrades the round
			// rather than getting pruned by the initiator. Only the
			// heartbeat protocol (3 consecutive misses) declares death.
			RPCTimeout:   150 * time.Millisecond,
			SendRetries:  1,
			RetryBase:    20 * time.Millisecond,
			RoundRetries: -1,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer rs.Close()
		rs.Monitor().Timeout = 100 * time.Millisecond
		rs.Monitor().OnFailure = func(dead string) {
			fmt.Printf("  [%s] member %s declared dead; ring now %s\n",
				name, dead, rs.Ring().Snapshot())
		}
		replicas = append(replicas, rs)
	}
	fmt.Println("initial ring:", replicas[0].Ring().Snapshot())

	ctx := context.Background()
	latencies := map[string]float64{}
	for _, n := range names {
		latencies[n] = 0.0005
	}
	client, err := core.NewClient(net, "client")
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	submit := func() {
		if err := client.Submit(ctx, "r1", 40, latencies); err != nil {
			log.Fatal(err)
		}
	}
	collect := func() core.AllocationBody {
		alloc, err := client.WaitAllocation(ctx)
		if err != nil {
			log.Fatal(err)
		}
		return alloc
	}

	// Round 1: everyone healthy.
	submit()
	report, err := replicas[0].RunRound(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("round %d used %d replicas (degraded: %v)\n",
		report.Round, len(report.ReplicaAddrs), report.Degraded)
	collect()

	// Failure 1: a transient fault on the r2→r3 heartbeat link. Two
	// missed beats raise suspicion but stay below the threshold of 3, so
	// the ring does not shrink on a glitch.
	fmt.Println("\n*** transient fault: r2→r3 link black-holed ***")
	net.SetLink("r2", "r3", transport.Faults{Cut: true})
	replicas[1].Monitor().Beat()
	replicas[1].Monitor().Beat()
	suspect, misses := replicas[1].Monitor().Suspicion()
	fmt.Printf("r2 has suspected successor %s after %d missed heartbeats — not dead yet\n", suspect, misses)
	net.ClearLink("r2", "r3")
	replicas[1].Monitor().Beat()
	suspect, misses = replicas[1].Monitor().Suspicion()
	fmt.Printf("link healed; suspicion cleared (suspect=%q, misses=%d); ring still %s\n",
		suspect, misses, replicas[1].Ring().Snapshot())

	// Failure 2: r4 is fully partitioned away for longer than the round's
	// retry budget. The round falls back to the last-known-good
	// assignment over the reachable replicas and reports Degraded.
	fmt.Println("\n*** partition: r4 unreachable for a whole round ***")
	net.Partition([]string{"r4"}, []string{"r1", "r2", "r3"})
	submit()
	report, err = replicas[0].RunRound(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("round %d degraded: %v — reused last-good split over %v\n",
		report.Round, report.Degraded, report.ReplicaAddrs)
	if _, ok := collect().PerReplicaMB["r4"]; ok {
		log.Fatal("degraded allocation still points at the partitioned replica!")
	}
	fmt.Println("degraded round kept every MB of demand served; r4 was not falsely pruned")
	net.Heal()

	// Failure 3: r3 actually crashes. Its predecessor's heartbeats miss
	// three times in a row — now it is declared dead and pruned.
	fmt.Println("\n*** crash: r3 goes down for good ***")
	net.Crash("r3")
	for i := 0; i < 3; i++ {
		replicas[1].Monitor().Beat()
	}

	// Round 3: re-scheduled on the pruned ring, back to full quality.
	submit()
	report, err = replicas[0].RunRound(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("round %d used %d replicas (degraded: %v); survivors: %v\n",
		report.Round, len(report.ReplicaAddrs), report.Degraded, report.ReplicaAddrs)
	if _, ok := collect().PerReplicaMB["r3"]; ok {
		log.Fatal("dead replica still selected!")
	}
	stats := net.Stats()
	fmt.Printf("\nfabric stats: %d sends, %d cut off, %d refused by crashed nodes\n",
		stats.Sent, stats.CutOff, stats.Refused)
	fmt.Println("client allocation avoids the dead replica — service continued uninterrupted")
}
