// Fault tolerance: EDR's ring structure in action (paper §III-C). A
// four-replica fleet schedules a round, one replica crashes, the ring
// detects and prunes it, and the next round is re-scheduled on the
// survivors without client involvement.
//
//	go run ./examples/faulttolerance
package main

import (
	"context"
	"fmt"
	"log"

	"edr/internal/core"
	"edr/internal/model"
	"edr/internal/transport"
)

func main() {
	net := transport.NewInProcNetwork()
	names := []string{"r1", "r2", "r3", "r4"}
	prices := []float64{2, 8, 4, 6}
	var replicas []*core.ReplicaServer
	for i, name := range names {
		rs, err := core.NewReplicaServer(net, name, names, core.ReplicaConfig{
			Replica:   model.NewReplica(name, prices[i]),
			Algorithm: core.LDDM,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer rs.Close()
		rs.Monitor().OnFailure = func(dead string) {
			fmt.Printf("  [%s] member %s declared dead; ring now %s\n",
				name, dead, rs.Ring().Snapshot())
		}
		replicas = append(replicas, rs)
	}
	fmt.Println("initial ring:", replicas[0].Ring().Snapshot())

	ctx := context.Background()
	latencies := map[string]float64{}
	for _, n := range names {
		latencies[n] = 0.0005
	}
	client, err := core.NewClient(net, "client")
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	// Round 1: everyone healthy.
	if err := client.Submit(ctx, "r1", 40, latencies); err != nil {
		log.Fatal(err)
	}
	report, err := replicas[0].RunRound(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("round %d used %d replicas (restarts: %d)\n",
		report.Round, len(report.ReplicaAddrs), report.Restarts)
	if _, err := client.WaitAllocation(ctx); err != nil {
		log.Fatal(err)
	}

	// Crash r3 (a cheap replica carrying load) mid-flight.
	fmt.Println("\n*** crashing r3 ***")
	net.Crash("r3")

	// The heartbeat protocol notices: r2's successor is r3.
	replicas[1].Monitor().Beat()

	// Round 2: the initiator re-schedules on the pruned ring. Even if the
	// heartbeat had not fired yet, the round itself would hit the dead
	// member, declare it, and restart — both paths converge.
	if err := client.Submit(ctx, "r1", 40, latencies); err != nil {
		log.Fatal(err)
	}
	report, err = replicas[0].RunRound(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("round %d used %d replicas (restarts: %d); survivors: %v\n",
		report.Round, len(report.ReplicaAddrs), report.Restarts, report.ReplicaAddrs)
	alloc, err := client.WaitAllocation(ctx)
	if err != nil {
		log.Fatal(err)
	}
	if _, ok := alloc.PerReplicaMB["r3"]; ok {
		log.Fatal("dead replica still selected!")
	}
	fmt.Println("client allocation avoids the dead replica — service continued uninterrupted")
}
