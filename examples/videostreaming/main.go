// Video streaming: the paper's first data-intensive application. A
// YouTube-patterned trace of ~100 MB requests is scheduled over the
// 8-replica fleet with the paper's Fig 6 price vector, comparing LDDM,
// CDPSM, and Round-Robin on total energy cost and consumption.
//
//	go run ./examples/videostreaming
package main

import (
	"fmt"
	"log"
	"time"

	"edr/internal/baseline"
	"edr/internal/cdpsm"
	"edr/internal/lddm"
	"edr/internal/opt"
	"edr/internal/pricing"
	"edr/internal/probgen"
	"edr/internal/sim"
	"edr/internal/solver"
	"edr/internal/workload"
)

func main() {
	r := sim.NewRand(2013)
	prices := pricing.PaperFigure6Prices()

	// Generate a YouTube-patterned evening of video requests.
	trace, err := workload.Generate(r, workload.Config{
		App:             workload.VideoStreaming,
		Clients:         12,
		MeanRatePerHour: 120,
		Duration:        2 * time.Hour,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace: %d video requests (%.0f MB total) over 2h\n",
		len(trace), workload.TotalMB(trace))

	// Cut the trace into one-minute scheduling windows and keep the first
	// four non-empty, feasible rounds.
	windows := workload.Window(trace, sim.Epoch, time.Minute, 120)
	var rounds []*opt.Problem
	for _, batch := range windows {
		if len(batch) == 0 {
			continue
		}
		prob, err := probgen.FromBatch(r, batch, len(prices), prices, true)
		if err != nil {
			log.Fatal(err)
		}
		if opt.CheckFeasible(prob) != nil {
			continue
		}
		rounds = append(rounds, prob)
		if len(rounds) == 4 {
			break
		}
	}

	solvers := []solver.Solver{lddm.New(), cdpsm.New(), baseline.RoundRobin{}}
	fmt.Printf("\n%-12s %14s %16s %12s\n", "scheduler", "model cost", "energy (units)", "iterations")
	for _, s := range solvers {
		cost, energy := 0.0, 0.0
		iters := 0
		for _, prob := range rounds {
			res, err := s.Solve(prob)
			if err != nil {
				log.Fatal(err)
			}
			if err := solver.Verify(prob, res, 1e-3); err != nil {
				log.Fatal(err)
			}
			cost += res.Objective
			energy += prob.Energy(res.Assignment)
			iters += res.Iterations
		}
		fmt.Printf("%-12s %14.1f %16.1f %12d\n", s.Name(), cost, energy, iters)
	}
	fmt.Println("\nLDDM minimizes the *cost* (price-weighted) objective; note how the")
	fmt.Println("energy-oblivious Round-Robin pays the most despite consuming the")
	fmt.Println("fewest raw energy units — cost-optimal is not energy-optimal.")
}
