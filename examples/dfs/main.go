// Distributed file service: the paper's second data-intensive
// application — many small (~10 MB) requests — served by the live EDR
// runtime over real TCP loopback sockets, with the per-replica serving
// plan and client downloads shown end to end.
//
//	go run ./examples/dfs
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"edr/internal/core"
	"edr/internal/model"
	"edr/internal/sim"
	"edr/internal/transport"
	"edr/internal/workload"
)

func main() {
	net := transport.NewTCPNetwork()

	// Four replicas on loopback with mixed electricity prices. The ring
	// orders members by address, so remember each address's price for the
	// report below.
	prices := []float64{1, 7, 3, 12}
	priceOf := make(map[string]float64, len(prices))
	var replicas []*core.ReplicaServer
	var addrs []string
	for _, price := range prices {
		rs, err := core.NewReplicaServer(net, "127.0.0.1:0", nil, core.ReplicaConfig{
			Replica:   model.NewReplica("dfs-replica", price),
			Algorithm: core.LDDM,
			MaxIters:  600,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer rs.Close()
		replicas = append(replicas, rs)
		addrs = append(addrs, rs.Addr())
		priceOf[rs.Addr()] = price
	}
	// Everyone learns the full membership, then heartbeats start.
	for _, rs := range replicas {
		for _, addr := range addrs {
			rs.Ring().Add(addr)
		}
		rs.Monitor().Start()
		defer rs.Monitor().Stop()
	}
	fmt.Println("DFS fleet over TCP:", replicas[0].Ring().Snapshot())

	// A burst of DFS requests from a generated trace, one client per
	// distinct trace client.
	r := sim.NewRand(7)
	// ~25 requests ≈ 250 MB total — well inside the fleet's 400 MB of
	// aggregate capacity so the round is feasible.
	trace, err := workload.Generate(r, workload.Config{
		App:             workload.DFS,
		Clients:         6,
		MeanRatePerHour: 2400,
		Duration:        40 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	demands := workload.Demands(trace, 6)

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	var clients []*core.Client
	for i, demand := range demands {
		if demand == 0 {
			continue
		}
		cl, err := core.NewClient(net, "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		defer cl.Close()
		// Measure the real loopback latency to every replica.
		lat := map[string]float64{}
		for _, addr := range addrs {
			rtt, err := cl.Ping(ctx, addr)
			if err != nil {
				continue
			}
			lat[addr] = rtt.Seconds()
		}
		if err := cl.Submit(ctx, addrs[0], demand, lat); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("client %d submitted %.1f MB (aggregated from the trace)\n", i+1, demand)
		clients = append(clients, cl)
	}

	report, err := replicas[0].RunRound(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nround %d (%s, %d iterations) — per-replica serving plan:\n",
		report.Round, report.Algorithm, report.Iterations)
	for j, addr := range report.ReplicaAddrs {
		load := 0.0
		for i := range report.ClientAddrs {
			load += report.Assignment[i][j]
		}
		fmt.Printf("  %-22s price %2.0f ¢/kWh  %7.1f MB\n", addr, priceOf[addr], load)
	}

	totalBytes := 0
	for _, cl := range clients {
		alloc, err := cl.WaitAllocation(ctx)
		if err != nil {
			log.Fatal(err)
		}
		n, err := cl.Download(ctx, alloc)
		if err != nil {
			log.Fatal(err)
		}
		totalBytes += n
	}
	fmt.Printf("\nall clients downloaded: %d payload bytes total (scaled 1 KiB per MB)\n", totalBytes)
}
