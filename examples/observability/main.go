// Observability: the telemetry subsystem end to end. A three-replica
// fleet runs with the full stack edrd -admin wires up — instrumented
// fabric, event bus, Prometheus collector, HTTP admin plane — then this
// program scrapes its own admin endpoints the way Prometheus and
// `edrctl status` would:
//
//  1. a healthy LDDM round, observed live on the bus (per-iteration
//     residual and energy-cost trajectories included);
//
//  2. a crashed replica and a degraded round, visible in the
//     edr_rounds_degraded_total counter and the /status degraded flag;
//
//  3. a /metrics scrape showing round, transport, and histogram series
//     in Prometheus text exposition format.
//
// Run with: go run ./examples/observability
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"strings"
	"time"

	"edr/internal/core"
	"edr/internal/model"
	"edr/internal/telemetry"
	"edr/internal/transport"
)

func main() {
	// The stack, wired exactly like edrd -admin: bus → collector →
	// instrumented fabric, and the bus handed to every replica.
	inner := transport.NewInProcNetwork()
	bus := telemetry.NewBus()
	collector := telemetry.NewCollector(telemetry.DefaultRoundLog)
	collector.Attach(bus)
	var net transport.Network = transport.NewInstrumented(inner, collector.Registry, bus)

	// A second subscriber narrates the event stream live.
	cancel := bus.Subscribe(func(e telemetry.Event) {
		switch ev := e.(type) {
		case telemetry.RoundCompleted:
			fmt.Printf("  event: round %d completed (%s, %d iterations, degraded=%v)\n",
				ev.Round, ev.Algorithm, ev.Iterations, ev.Degraded)
		case telemetry.RoundDegraded:
			fmt.Printf("  event: round %d degraded after %s failed\n", ev.Round, ev.FailedMember)
		}
	})
	defer cancel()

	names := []string{"r1", "r2", "r3"}
	prices := []float64{1, 6, 11}
	var replicas []*core.ReplicaServer
	for i, name := range names {
		rs, err := core.NewReplicaServer(net, name, names, core.ReplicaConfig{
			Replica:      model.NewReplica(name, prices[i]),
			Algorithm:    core.LDDM,
			Telemetry:    bus,
			RPCTimeout:   150 * time.Millisecond,
			SendRetries:  -1,
			RoundRetries: -1,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer rs.Close()
		replicas = append(replicas, rs)
	}
	admin, err := telemetry.ServeAdmin("127.0.0.1:0", telemetry.AdminConfig{
		Registry: collector.Registry,
		Status:   func() any { return replicas[0].Status() },
		Rounds:   collector.Rounds,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer admin.Close()
	base := "http://" + admin.Addr()
	fmt.Println("admin plane listening on", base)

	ctx := context.Background()
	lat := map[string]float64{"r1": 0.0005, "r2": 0.0005, "r3": 0.0005}
	// Clients stay up across rounds: LDDM pushes μ updates to them while
	// iterating.
	var clients []*core.Client
	defer func() {
		for _, cl := range clients {
			cl.Close()
		}
	}()
	submit := func(n int) {
		for i := 0; i < n; i++ {
			cl, err := core.NewClient(net, fmt.Sprintf("c%d", len(clients)+1))
			if err != nil {
				log.Fatal(err)
			}
			clients = append(clients, cl)
			if err := cl.Submit(ctx, "r1", 10, lat); err != nil {
				log.Fatal(err)
			}
		}
	}

	fmt.Println("\n--- healthy round ---")
	submit(3)
	report, err := replicas[0].RunRound(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  trajectory: %d iterations, residual %.4f -> %.4f, cost %.2f -> %.2f\n",
		len(report.Residuals),
		report.Residuals[0], report.Residuals[len(report.Residuals)-1],
		report.Costs[0], report.Costs[len(report.Costs)-1])

	fmt.Println("\n--- crash r3, degraded round ---")
	inner.Crash("r3")
	submit(3)
	if _, err := replicas[0].RunRound(ctx); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n--- GET /status ---")
	var st core.Status
	getJSON(base+"/status", &st)
	fmt.Printf("  replica %s: %d rounds initiated, degraded=%v, last assignment %dx%d\n",
		st.Addr, st.RoundsInitiated, st.Degraded,
		len(st.LastRound.Assignment), len(st.LastRound.ReplicaAddrs))

	fmt.Println("\n--- GET /metrics (edr_ series) ---")
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	shown := 0
	for sc := bufio.NewScanner(resp.Body); sc.Scan(); {
		line := sc.Text()
		if strings.HasPrefix(line, "edr_rounds") ||
			strings.HasPrefix(line, "edr_round_duration_seconds_count") ||
			strings.HasPrefix(line, "edr_transport_messages_total") {
			fmt.Println(" ", line)
			shown++
		}
	}
	fmt.Printf("(%d samples shown; full exposition at %s/metrics)\n", shown, base)
}

func getJSON(url string, into any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		log.Fatal(err)
	}
}
