// DONAR comparison: side-by-side scheduling quality of EDR's LDDM against
// the energy-oblivious DONAR mapping-node scheme on the same instances —
// DONAR matches EDR on latency cost but never sees electricity prices, so
// its energy bill is systematically higher (the gap EDR exists to close).
//
//	go run ./examples/donarcompare
package main

import (
	"fmt"
	"log"

	"edr/internal/donar"
	"edr/internal/lddm"
	"edr/internal/opt"
	"edr/internal/probgen"
	"edr/internal/sim"
	"edr/internal/solver"
)

func main() {
	r := sim.NewRand(42)
	fmt.Printf("%-6s %14s %14s %12s %14s\n",
		"run", "lddm cost", "donar cost", "gap %", "donar latency")
	totalGap := 0.0
	const runs = 8
	for run := 1; run <= runs; run++ {
		prob, err := probgen.MustFeasible(r, probgen.Spec{
			Clients:  10,
			Replicas: 5,
			Geo:      true,
		})
		if err != nil {
			log.Fatal(err)
		}
		ld, err := lddm.New().Solve(prob)
		if err != nil {
			log.Fatal(err)
		}
		dn, err := donar.New().Solve(prob)
		if err != nil {
			log.Fatal(err)
		}
		for _, res := range []*solver.Result{ld, dn} {
			if err := solver.Verify(prob, res, 1e-3); err != nil {
				log.Fatal(err)
			}
		}
		gap := 100 * (dn.Objective - ld.Objective) / ld.Objective
		totalGap += gap
		fmt.Printf("%-6d %14.1f %14.1f %11.1f%% %14.4f\n",
			run, ld.Objective, dn.Objective, gap, latencyCost(prob, dn.Assignment))
	}
	fmt.Printf("\nDONAR pays on average %.1f%% more energy cost than LDDM on the same\n", totalGap/runs)
	fmt.Println("instances: it optimizes latency under capacity and is blind to prices,")
	fmt.Println("exactly the gap the EDR paper identifies.")
}

// latencyCost is the objective DONAR actually minimizes: load-weighted
// latency.
func latencyCost(prob *opt.Problem, x [][]float64) float64 {
	total := 0.0
	for c := range x {
		for n, v := range x[c] {
			total += v * prob.Latency[c][n]
		}
	}
	return total
}
