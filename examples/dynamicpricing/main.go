// Dynamic pricing + content placement: the paper's future-work extensions
// in one run. Eight regions follow time-of-use tariffs (each peaking in
// its local evening); content is placed on a subset of replicas
// (replication factor 3). The same hour-by-hour workload is scheduled by
// EDR's LDDM against the tariff in effect at each round — watch the load
// follow the cheap regions around the globe — versus Round-Robin, which
// pays whatever the clock says.
//
//	go run ./examples/dynamicpricing
package main

import (
	"fmt"
	"log"
	"time"

	"edr/internal/baseline"
	"edr/internal/lddm"
	"edr/internal/opt"
	"edr/internal/placement"
	"edr/internal/pricing"
	"edr/internal/probgen"
	"edr/internal/sim"
	"edr/internal/workload"
)

func main() {
	r := sim.NewRand(99)
	const replicas = 8
	tariffs := pricing.WorldSchedule(replicas)
	pm := placement.ReplicateK(r, 200, replicas, 3)
	minC, meanC, maxC := pm.CoverageStats()
	fmt.Printf("placement: 200 items over %d replicas, copies min/mean/max = %.0f/%.1f/%.0f\n\n",
		replicas, minC, meanC, maxC)

	// A day of DFS traffic, scheduled every 4 hours.
	trace, err := workload.Generate(r, workload.Config{
		App:             workload.DFS,
		Clients:         10,
		CatalogSize:     200,
		MeanRatePerHour: 10,
		Duration:        24 * time.Hour,
	})
	if err != nil {
		log.Fatal(err)
	}
	windows := workload.Window(trace, sim.Epoch, 4*time.Hour, 6)

	fmt.Printf("%-7s %-28s %12s %12s %9s\n", "round", "cheapest regions now", "lddm cost", "rr cost", "saving")
	totalLD, totalRR := 0.0, 0.0
	for w, batch := range windows {
		if len(batch) == 0 {
			continue
		}
		at := sim.Epoch.Add(time.Duration(w) * 4 * time.Hour)
		prices := tariffs.PricesAt(at)
		prob, err := probgen.FromRequests(r, batch, replicas, prices, false, pm)
		if err != nil {
			log.Fatal(err)
		}
		if opt.CheckFeasible(prob) != nil {
			continue
		}
		ld, err := lddm.New().Solve(prob)
		if err != nil {
			log.Fatal(err)
		}
		rr, err := baseline.RoundRobin{}.Solve(prob)
		if err != nil {
			log.Fatal(err)
		}
		totalLD += ld.Objective
		totalRR += rr.Objective
		fmt.Printf("%02d:00   %-28s %12.1f %12.1f %8.1f%%\n",
			at.Hour(), cheapRegions(tariffs, prices), ld.Objective, rr.Objective,
			100*(rr.Objective-ld.Objective)/rr.Objective)
	}
	fmt.Printf("\nday total: LDDM %.1f vs Round-Robin %.1f — %.1f%% saved by following the\n",
		totalLD, totalRR, 100*(totalRR-totalLD)/totalRR)
	fmt.Println("off-peak regions while honoring the placement and latency restrictions.")
}

// cheapRegions lists the regions currently at the base tariff.
func cheapRegions(s pricing.Schedule, prices []float64) string {
	out := ""
	for i, p := range prices {
		if p == s[i].BaseCentsPerKWh {
			if out != "" {
				out += ","
			}
			out += fmt.Sprintf("%d", i+1)
		}
	}
	return out
}
