// Algorithms: run the same request batch through all three distributed
// optimizers on live fleets — LDDM and CDPSM from the paper, plus the
// sharing-ADMM extension — and compare decision quality, iteration
// counts, and coordination traffic.
//
//	go run ./examples/algorithms
package main

import (
	"context"
	"fmt"
	"log"

	"edr/internal/core"
	"edr/internal/model"
	"edr/internal/transport"
)

func main() {
	prices := []float64{1, 8, 3, 12}
	demands := []float64{35, 20, 45, 15, 25}

	fmt.Printf("%-7s %14s %12s %16s %12s\n",
		"algo", "energy cost", "iterations", "coord messages", "restarts")
	for _, alg := range []core.Algorithm{core.LDDM, core.CDPSM, core.ADMM} {
		report, coordMsgs, err := runFleet(alg, prices, demands)
		if err != nil {
			log.Fatalf("%v: %v", alg, err)
		}
		fmt.Printf("%-7s %14.1f %12d %16d %12d\n",
			report.Algorithm, report.Objective, report.Iterations, coordMsgs, report.Restarts)
	}
	fmt.Println("\nAll three converge to (nearly) the same energy-cost optimum; they differ")
	fmt.Println("in how much coordination that decision takes. CDPSM ships full solution")
	fmt.Println("matrices between all replica pairs every iteration; LDDM and ADMM exchange")
	fmt.Println("only per-client scalars, with ADMM's proximal damping needing the fewest")
	fmt.Println("iterations.")
}

// runFleet boots a fresh fleet for one algorithm and runs one round.
func runFleet(alg core.Algorithm, prices, demands []float64) (*core.RoundReport, int64, error) {
	net := transport.NewInProcNetwork()
	names := make([]string, len(prices))
	for j := range prices {
		names[j] = fmt.Sprintf("replica%d", j+1)
	}
	var replicas []*core.ReplicaServer
	for j, price := range prices {
		rs, err := core.NewReplicaServer(net, names[j], names, core.ReplicaConfig{
			Replica:   model.NewReplica(names[j], price),
			Algorithm: alg,
			MaxIters:  400,
		})
		if err != nil {
			return nil, 0, err
		}
		defer rs.Close()
		replicas = append(replicas, rs)
	}
	latencies := map[string]float64{}
	for _, n := range names {
		latencies[n] = 0.0005
	}
	ctx := context.Background()
	for i, demand := range demands {
		cl, err := core.NewClient(net, fmt.Sprintf("client%d", i+1))
		if err != nil {
			return nil, 0, err
		}
		defer cl.Close()
		if err := cl.Submit(ctx, names[0], demand, latencies); err != nil {
			return nil, 0, err
		}
	}
	report, err := replicas[0].RunRound(ctx)
	if err != nil {
		return nil, 0, err
	}
	coord := int64(0)
	for _, rs := range replicas {
		coord += rs.Stats.CoordMessages.Value()
	}
	return report, coord, nil
}
