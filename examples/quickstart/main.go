// Quickstart: bring up a three-replica EDR fleet in-process, submit
// demands from four clients, run one LDDM scheduling round, and download
// the selected bytes — the smallest end-to-end tour of the system.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"edr/internal/core"
	"edr/internal/model"
	"edr/internal/transport"
)

func main() {
	// One in-process fabric hosts everything; swap in
	// transport.NewTCPNetwork() and host:port addresses for a real
	// deployment (see cmd/edrd).
	net := transport.NewInProcNetwork()

	// Three replicas in regions with very different electricity prices.
	prices := map[string]float64{"replica-oregon": 2, "replica-virginia": 9, "replica-texas": 5}
	names := []string{"replica-oregon", "replica-virginia", "replica-texas"}
	var replicas []*core.ReplicaServer
	for _, name := range names {
		rs, err := core.NewReplicaServer(net, name, names, core.ReplicaConfig{
			Replica:   model.NewReplica(name, prices[name]),
			Algorithm: core.LDDM,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer rs.Close()
		replicas = append(replicas, rs)
	}
	fmt.Println("fleet:", replicas[0].Ring().Snapshot())

	// Four clients, each asking for a different amount of data. Every
	// client reports its measured latency to each replica; all are within
	// the 1.8 ms tolerance here.
	latencies := map[string]float64{}
	for _, name := range names {
		latencies[name] = 0.0005
	}
	ctx := context.Background()
	demands := map[string]float64{"alice": 30, "bob": 15, "carol": 25, "dave": 10}
	var clients []*core.Client
	for name, demand := range demands {
		cl, err := core.NewClient(net, name)
		if err != nil {
			log.Fatal(err)
		}
		defer cl.Close()
		if err := cl.Submit(ctx, "replica-oregon", demand, latencies); err != nil {
			log.Fatal(err)
		}
		clients = append(clients, cl)
	}

	// Any replica with pending requests can initiate the round; the
	// optimization itself is distributed (replicas solve local problems,
	// clients update their own multipliers).
	report, err := replicas[0].RunRound(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("round %d via %s converged in %d distributed iterations; total energy cost %.1f\n",
		report.Round, report.Algorithm, report.Iterations, report.Objective)
	for j, addr := range report.ReplicaAddrs {
		load := 0.0
		for i := range report.ClientAddrs {
			load += report.Assignment[i][j]
		}
		fmt.Printf("  %-18s price %2.0f ¢/kWh  serves %6.1f MB\n", addr, prices[addr], load)
	}

	// Clients receive their split and download from every selected
	// replica in parallel.
	for _, cl := range clients {
		alloc, err := cl.WaitAllocation(ctx)
		if err != nil {
			log.Fatal(err)
		}
		n, err := cl.Download(ctx, alloc)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-6s downloaded %5d payload bytes from %d replicas\n",
			cl.Addr(), n, len(alloc.PerReplicaMB))
	}
}
