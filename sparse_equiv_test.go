package edr_test

import (
	"math"
	"testing"

	"edr/internal/admm"
	"edr/internal/cdpsm"
	"edr/internal/lddm"
	"edr/internal/opt"
	"edr/internal/probgen"
	"edr/internal/sim"
	"edr/internal/solver"
)

// FuzzSparseDenseEquiv drives random masked instances through every
// solver engine twice — once on the dense kernels (SparseOff), once on
// the packed CSR kernels (SparseForce) — and requires the sparse result
// to be feasible and within the documented 1e-9 relative objective gap
// of the dense one. LDDM's packed path additionally preserves the dense
// op order exactly, so its iterate history must match bit for bit.
func FuzzSparseDenseEquiv(f *testing.F) {
	f.Add(uint64(1), uint8(6), uint8(3))
	f.Add(uint64(42), uint8(10), uint8(4))
	f.Add(uint64(7), uint8(4), uint8(2))
	f.Fuzz(func(t *testing.T, seed uint64, clients, replicas uint8) {
		c := 2 + int(clients)%12
		n := 2 + int(replicas)%5
		r := sim.NewRand(seed)
		prob, err := probgen.MustFeasible(r, probgen.Spec{
			Clients: c, Replicas: n, Geo: true, DemandLo: 1, DemandHi: 6,
		})
		if err != nil {
			t.Skip("no feasible draw for this seed")
		}
		if prob.Sparsity().Full {
			t.Skip("draw has no structural zeros")
		}
		engines := []struct {
			name  string
			solve func(mode opt.SparseMode) (*solver.Result, error)
		}{
			{"CDPSM", func(m opt.SparseMode) (*solver.Result, error) {
				s := cdpsm.New()
				s.MaxIters = 60
				s.Sparse = m
				return s.Solve(prob)
			}},
			{"LDDM", func(m opt.SparseMode) (*solver.Result, error) {
				s := lddm.New()
				s.MaxIters = 200
				s.Sparse = m
				return s.Solve(prob)
			}},
			{"ADMM", func(m opt.SparseMode) (*solver.Result, error) {
				s := admm.New()
				s.MaxIters = 100
				s.Sparse = m
				return s.Solve(prob)
			}},
		}
		for _, e := range engines {
			dense, err := e.solve(opt.SparseOff)
			if err != nil {
				t.Fatalf("%s dense: %v", e.name, err)
			}
			sparse, err := e.solve(opt.SparseForce)
			if err != nil {
				t.Fatalf("%s sparse: %v", e.name, err)
			}
			if err := solver.Verify(prob, sparse, 1e-4); err != nil {
				t.Fatalf("%s sparse result infeasible: %v", e.name, err)
			}
			gap := math.Abs(dense.Objective - sparse.Objective)
			if gap > 1e-9*(1+math.Abs(dense.Objective)) {
				t.Fatalf("%s objective gap %g (dense %v sparse %v)",
					e.name, gap, dense.Objective, sparse.Objective)
			}
			if e.name == "LDDM" {
				if dense.Iterations != sparse.Iterations {
					t.Fatalf("LDDM iterations differ: dense %d sparse %d",
						dense.Iterations, sparse.Iterations)
				}
				for i := range dense.History {
					if math.Float64bits(dense.History[i]) != math.Float64bits(sparse.History[i]) {
						t.Fatalf("LDDM history[%d] differs: dense %x sparse %x",
							i, math.Float64bits(dense.History[i]), math.Float64bits(sparse.History[i]))
					}
				}
			}
		}
	})
}
