package edr_test

// End-to-end test of the telemetry subsystem: boot an in-process fleet
// with the full observability stack (instrumented fabric, event bus,
// collector, HTTP admin plane), run a healthy round and a degraded one,
// and scrape /metrics, /status, and /debug/rounds over real HTTP the way
// Prometheus and edrctl status would.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"testing"
	"time"

	"edr/internal/core"
	"edr/internal/model"
	"edr/internal/telemetry"
	"edr/internal/transport"
)

// scrape GETs an admin endpoint and returns the body.
func scrape(t *testing.T, base, path string) (string, *http.Response) {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: reading body: %v", path, err)
	}
	return string(body), resp
}

// metricValue extracts the value of a metric sample (exact name plus
// rendered label block) from a Prometheus exposition body.
func metricValue(t *testing.T, body, sample string) float64 {
	t.Helper()
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(sample) + ` (\S+)$`)
	m := re.FindStringSubmatch(body)
	if m == nil {
		t.Fatalf("metric sample %q not found in exposition:\n%s", sample, body)
	}
	v, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		t.Fatalf("metric sample %q has unparsable value %q", sample, m[1])
	}
	return v
}

func TestTelemetryEndToEnd(t *testing.T) {
	// The fleet: three replicas on the in-process fabric, wrapped by the
	// instrumented transport exactly as edrd -admin wires it.
	inner := transport.NewInProcNetwork()
	bus := telemetry.NewBus()
	collector := telemetry.NewCollector(telemetry.DefaultRoundLog)
	collector.Attach(bus)
	var net transport.Network = transport.NewInstrumented(inner, collector.Registry, bus)

	names := []string{"replica1", "replica2", "replica3"}
	prices := []float64{1, 6, 11}
	var replicas []*core.ReplicaServer
	for i, name := range names {
		rs, err := core.NewReplicaServer(net, name, names, core.ReplicaConfig{
			Replica:      model.NewReplica(name, prices[i]),
			Algorithm:    core.LDDM,
			Telemetry:    bus,
			SendRetries:  -1, // fail fast when we crash a member below
			RoundRetries: -1,
			RPCTimeout:   200 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer rs.Close()
		replicas = append(replicas, rs)
	}
	admin, err := telemetry.ServeAdmin("127.0.0.1:0", telemetry.AdminConfig{
		Registry: collector.Registry,
		Status:   func() any { return replicas[0].Status() },
		Rounds:   collector.Rounds,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Close()
	base := "http://" + admin.Addr()

	ctx := t.Context()
	lat := map[string]float64{"replica1": 0.0005, "replica2": 0.0005, "replica3": 0.0005}
	// Clients stay up for the whole test: LDDM rounds push μ updates to
	// the submitting clients while iterating.
	nextClient := 0
	submit := func(n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			nextClient++
			cl, err := core.NewClient(net, fmt.Sprintf("client%d", nextClient))
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { cl.Close() })
			if err := cl.Submit(ctx, "replica1", 10, lat); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Round 1: healthy.
	submit(2)
	if _, err := replicas[0].RunRound(ctx); err != nil {
		t.Fatal(err)
	}

	if body, resp := scrape(t, base, "/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz = %d %q", resp.StatusCode, body)
	}
	body, resp := scrape(t, base, "/metrics")
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("/metrics Content-Type = %q", ct)
	}
	if v := metricValue(t, body, `edr_rounds_total{algorithm="LDDM"}`); v != 1 {
		t.Fatalf("edr_rounds_total = %v after one round", v)
	}
	if v := metricValue(t, body, `edr_round_duration_seconds_count`); v != 1 {
		t.Fatalf("edr_round_duration_seconds_count = %v", v)
	}
	// The instrumented fabric saw the initiator's fan-out to both peers.
	for _, peer := range []string{"replica2", "replica3"} {
		sample := fmt.Sprintf(`edr_transport_messages_total{peer=%q,verb="round.start"}`, peer)
		if v := metricValue(t, body, sample); v < 1 {
			t.Fatalf("%s = %v, want >= 1", sample, v)
		}
	}

	// Round 2: crash replica3 mid-fleet; with retries disabled the round
	// falls back to the last-known-good assignment and flags itself.
	inner.Crash("replica3")
	submit(2)
	report, err := replicas[0].RunRound(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !report.Degraded {
		t.Fatalf("round 2 did not degrade: %+v", report)
	}

	body, _ = scrape(t, base, "/metrics")
	if v := metricValue(t, body, `edr_rounds_total{algorithm="LDDM"}`); v != 2 {
		t.Fatalf("edr_rounds_total = %v after two rounds", v)
	}
	if v := metricValue(t, body, `edr_rounds_degraded_total`); v != 1 {
		t.Fatalf("edr_rounds_degraded_total = %v", v)
	}
	if v := metricValue(t, body, `edr_round_degradations_total{failed_member="replica3"}`); v != 1 {
		t.Fatalf("edr_round_degradations_total{failed_member=\"replica3\"} = %v", v)
	}

	// /status carries the degraded flag and the live assignment matrix.
	body, resp = scrape(t, base, "/status")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/status = %d", resp.StatusCode)
	}
	var st core.Status
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("/status is not JSON: %v\n%s", err, body)
	}
	if st.Addr != "replica1" || !st.Degraded || st.RoundsInitiated != 2 {
		t.Fatalf("/status = %+v", st)
	}
	if st.LastRound == nil || len(st.LastRound.Assignment) != 2 {
		t.Fatalf("/status last round lacks the assignment matrix: %+v", st.LastRound)
	}
	for _, row := range st.LastRound.Assignment {
		if len(row) != len(st.LastRound.ReplicaAddrs) {
			t.Fatalf("assignment row width %d != %d replicas", len(row), len(st.LastRound.ReplicaAddrs))
		}
	}

	// /debug/rounds retains both rounds, trajectories included: the bus
	// had a subscriber, so the healthy LDDM round recorded per-iteration
	// residuals and energy costs.
	body, resp = scrape(t, base, "/debug/rounds")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/rounds = %d", resp.StatusCode)
	}
	var rounds []telemetry.RoundCompleted
	if err := json.Unmarshal([]byte(body), &rounds); err != nil {
		t.Fatalf("/debug/rounds is not JSON: %v\n%s", err, body)
	}
	if len(rounds) != 2 {
		t.Fatalf("/debug/rounds has %d entries, want 2", len(rounds))
	}
	healthy, degraded := rounds[0], rounds[1]
	if healthy.Degraded || !degraded.Degraded {
		t.Fatalf("round order wrong: %+v / %+v", healthy, degraded)
	}
	if len(healthy.Residuals) == 0 || len(healthy.Costs) != len(healthy.Residuals) {
		t.Fatalf("healthy round lacks trajectories: %d residuals, %d costs",
			len(healthy.Residuals), len(healthy.Costs))
	}
}
