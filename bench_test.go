// Package edr_test benchmarks every paper artifact this module
// regenerates (one benchmark per table/figure — see DESIGN.md §4 and
// cmd/edr-bench for the figure data itself) plus the micro-operations the
// solvers are built from. Run:
//
//	go test -bench=. -benchmem
package edr_test

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"edr/internal/admm"
	"edr/internal/cdpsm"
	"edr/internal/central"
	"edr/internal/core"
	"edr/internal/donar"
	"edr/internal/experiments"
	"edr/internal/lddm"
	"edr/internal/model"
	"edr/internal/opt"
	"edr/internal/probgen"
	"edr/internal/sim"
	"edr/internal/telemetry"
	"edr/internal/transport"
)

// --- One benchmark per paper artifact -----------------------------------

func benchExperiment(b *testing.B, id string) {
	run, err := experiments.Lookup(id)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := run(uint64(i + 1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1ModelEval regenerates the Table I instantiation.
func BenchmarkTable1ModelEval(b *testing.B) { benchExperiment(b, "table1") }

// BenchmarkFig3PowerProfileCDPSM regenerates the CDPSM power profiles.
func BenchmarkFig3PowerProfileCDPSM(b *testing.B) { benchExperiment(b, "fig3") }

// BenchmarkFig4PowerProfileLDDM regenerates the LDDM power profiles.
func BenchmarkFig4PowerProfileLDDM(b *testing.B) { benchExperiment(b, "fig4") }

// BenchmarkFig5Convergence regenerates the convergence comparison.
func BenchmarkFig5Convergence(b *testing.B) { benchExperiment(b, "fig5") }

// BenchmarkFig6VideoStreaming regenerates the per-replica video costs.
func BenchmarkFig6VideoStreaming(b *testing.B) { benchExperiment(b, "fig6") }

// BenchmarkFig7DFS regenerates the per-replica DFS costs.
func BenchmarkFig7DFS(b *testing.B) { benchExperiment(b, "fig7") }

// BenchmarkFig8TotalEnergySingleRun measures one randomized configuration
// of the Fig 8 sweep (the full 40-run sweep is cmd/edr-bench territory —
// here one run keeps the regression signal per-op).
func BenchmarkFig8TotalEnergySingleRun(b *testing.B) {
	r := sim.NewRand(8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		prob, err := probgen.MustFeasible(r.Split(), probgen.Spec{Clients: 10, Replicas: 8, Geo: true})
		if err != nil {
			b.Fatal(err)
		}
		ld := lddm.New()
		ld.MaxIters = 250
		if _, err := ld.Solve(prob); err != nil {
			b.Fatal(err)
		}
		cd := cdpsm.New()
		cd.MaxIters = 250
		if _, err := cd.Solve(prob); err != nil {
			b.Fatal(err)
		}
	}
}

// benchEDRRound measures one live EDR scheduling round (96 requests,
// 3 replicas, LDDM over the in-process fabric) — the unit of work behind
// every Fig 9 data point, without the injected link delays. When
// observed is true the full telemetry stack is on: instrumented fabric,
// subscribed bus, collector minting Prometheus series and trajectories.
// Comparing the two guards the zero-overhead-when-off contract:
//
//	go test -bench 'Fig9EDRRound' -benchmem
func benchEDRRound(b *testing.B, observed bool) {
	const count = 96
	prices := []float64{3, 7, 12}
	names := []string{"replica1", "replica2", "replica3"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		var net transport.Network = transport.NewInProcNetwork()
		var bus *telemetry.Bus
		if observed {
			bus = telemetry.NewBus()
			collector := telemetry.NewCollector(telemetry.DefaultRoundLog)
			collector.Attach(bus)
			net = transport.NewInstrumented(net, collector.Registry, bus)
		}
		var replicas []*core.ReplicaServer
		for j, price := range prices {
			cfg := core.ReplicaConfig{
				Replica:   model.NewReplica(names[j], price),
				Algorithm: core.LDDM,
				MaxIters:  12,
				Tol:       0.2,
				Telemetry: bus,
			}
			rs, err := core.NewReplicaServer(net, names[j], names, cfg)
			if err != nil {
				b.Fatal(err)
			}
			replicas = append(replicas, rs)
		}
		lat := map[string]float64{"replica1": 0.0005, "replica2": 0.0005, "replica3": 0.0005}
		ctx := context.Background()
		var clients []*core.Client
		for c := 0; c < count; c++ {
			cl, err := core.NewClient(net, fmt.Sprintf("client%d", c+1))
			if err != nil {
				b.Fatal(err)
			}
			clients = append(clients, cl)
		}
		b.StartTimer()
		for _, cl := range clients {
			if err := cl.Submit(ctx, "replica1", 1.0, lat); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := replicas[0].RunRound(ctx); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		for _, cl := range clients {
			cl.Close()
		}
		for _, rs := range replicas {
			rs.Close()
		}
		b.StartTimer()
	}
}

// BenchmarkFig9EDRRound is the unobserved baseline: no bus, no metric
// registry, no transport wrapper — the default production hot path.
func BenchmarkFig9EDRRound(b *testing.B) { benchEDRRound(b, false) }

// BenchmarkFig9EDRRoundTelemetry runs the identical round with the admin
// plane's whole pipeline live (minus the HTTP listener, which is off the
// round path entirely).
func BenchmarkFig9EDRRoundTelemetry(b *testing.B) { benchEDRRound(b, true) }

// BenchmarkSteadyStateRound measures back-to-back scheduling rounds on one
// long-lived unobserved fleet at paper scale (100 clients, 10 replicas) —
// the steady state a deployed initiator sits in. Unlike benchEDRRound, the
// fleet is built once outside the timer, so the per-op allocation figure
// isolates the round hot path itself: the number this guards is what the
// engine's buffer pool (opt.Pool) and the parallel solver kernels exist to
// keep flat across rounds. Parallelism is left at auto (GOMAXPROCS), so
//
//	go test -bench SteadyStateRound -cpu 1,8 -benchmem
//
// compares the serial and parallel hot paths on identical work.
func BenchmarkSteadyStateRound(b *testing.B) {
	const nReplicas = 10
	prices := []float64{3, 7, 12, 5, 9, 2, 14, 6, 11, 4}[:nReplicas]
	names := make([]string, nReplicas)
	for j := range names {
		names[j] = fmt.Sprintf("replica%d", j+1)
	}
	net := transport.NewInProcNetwork()
	var replicas []*core.ReplicaServer
	for j, price := range prices {
		cfg := core.ReplicaConfig{
			Replica:   model.NewReplica(names[j], price),
			Algorithm: core.LDDM,
			MaxIters:  12,
			Tol:       0.2,
		}
		rs, err := core.NewReplicaServer(net, names[j], names, cfg)
		if err != nil {
			b.Fatal(err)
		}
		defer rs.Close()
		replicas = append(replicas, rs)
	}
	const count = 100
	ctx := context.Background()
	lat := make(map[string]float64, nReplicas)
	for _, name := range names {
		lat[name] = 0.0005
	}
	var clients []*core.Client
	for c := 0; c < count; c++ {
		cl, err := core.NewClient(net, fmt.Sprintf("client%d", c+1))
		if err != nil {
			b.Fatal(err)
		}
		defer cl.Close()
		clients = append(clients, cl)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, cl := range clients {
			if err := cl.Submit(ctx, "replica1", 1.0, lat); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := replicas[0].RunRound(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Solver benchmarks (paper-scale instances) --------------------------

func paperScaleProblem(b *testing.B, seed uint64) *opt.Problem {
	b.Helper()
	prob, err := probgen.MustFeasible(sim.NewRand(seed), probgen.Spec{
		Clients:  12,
		Replicas: 8,
		Prices:   []float64{1, 8, 1, 6, 1, 5, 2, 3},
	})
	if err != nil {
		b.Fatal(err)
	}
	return prob
}

// solveScaleProblem builds the large instance the parallel solver kernels
// are sized for: C=100 clients over N=10 replicas — past every kernel's
// work gate, so the fan-out paths actually run.
func solveScaleProblem(b *testing.B, seed uint64) *opt.Problem {
	b.Helper()
	prob, err := probgen.MustFeasible(sim.NewRand(seed), probgen.Spec{
		Clients: 100, Replicas: 10, Geo: true, DemandLo: 1, DemandHi: 6,
	})
	if err != nil {
		b.Fatal(err)
	}
	return prob
}

// BenchmarkSolve measures each distributed solver's full Solve on the
// C=100, N=10 instance with iteration bounds held fixed, so ns/op tracks
// per-iteration kernel cost. Parallelism stays at auto (GOMAXPROCS):
//
//	go test -bench 'BenchmarkSolve/' -cpu 1,8 -benchmem
//
// compares the serial (-cpu 1) and parallel (-cpu 8) kernels on identical,
// bit-for-bit-equivalent work (see TestParallelSolversMatchSerialBitForBit).
func BenchmarkSolve(b *testing.B) {
	prob := solveScaleProblem(b, 2026)
	b.Run("LDDM", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s := lddm.New()
			s.MaxIters = 400
			if _, err := s.Solve(prob); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("CDPSM", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s := cdpsm.New()
			s.MaxIters = 25
			if _, err := s.Solve(prob); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("ADMM", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s := admm.New()
			s.MaxIters = 60
			if _, err := s.Solve(prob); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSparseSolve measures each engine dense (SparseOff) vs packed
// sparse (SparseForce) on the masked C=100, N=10 geo instance — the CI
// smoke for the sparse kernels, and a local read on the per-engine packed
// speedup at paper scale.
func BenchmarkSparseSolve(b *testing.B) {
	prob := solveScaleProblem(b, 2026)
	if prob.Sparsity().Full {
		b.Fatal("geo instance unexpectedly has no structural zeros")
	}
	for _, mode := range []struct {
		name string
		m    opt.SparseMode
	}{{"Dense", opt.SparseOff}, {"Sparse", opt.SparseForce}} {
		b.Run("LDDM/"+mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s := lddm.New()
				s.MaxIters = 400
				s.Sparse = mode.m
				if _, err := s.Solve(prob); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("CDPSM/"+mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s := cdpsm.New()
				s.MaxIters = 25
				s.Sparse = mode.m
				if _, err := s.Solve(prob); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("ADMM/"+mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s := admm.New()
				s.MaxIters = 60
				s.Sparse = mode.m
				if _, err := s.Solve(prob); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSolverLDDM runs the LDDM engine on the paper-scale instance.
func BenchmarkSolverLDDM(b *testing.B) {
	prob := paperScaleProblem(b, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := lddm.New().Solve(prob); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolverCDPSM runs the CDPSM engine on the paper-scale instance.
func BenchmarkSolverCDPSM(b *testing.B) {
	prob := paperScaleProblem(b, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := cdpsm.New()
		s.MaxIters = 300
		if _, err := s.Solve(prob); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolverCentral runs the centralized reference.
func BenchmarkSolverCentral(b *testing.B) {
	prob := paperScaleProblem(b, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := central.New().Solve(prob); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolverDONAR runs the DONAR comparator.
func BenchmarkSolverDONAR(b *testing.B) {
	prob := paperScaleProblem(b, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := donar.New().Solve(prob); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Micro-benchmarks ----------------------------------------------------

// BenchmarkProjectSimplex measures the sort-based simplex projection.
func BenchmarkProjectSimplex(b *testing.B) {
	r := sim.NewRand(2)
	x := make([]float64, 64)
	src := make([]float64, 64)
	for i := range src {
		src[i] = r.Range(-10, 10)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		copy(x, src)
		opt.ProjectSimplex(x, 25)
	}
}

// BenchmarkProjectCappedSimplex measures the bisection projection.
func BenchmarkProjectCappedSimplex(b *testing.B) {
	r := sim.NewRand(3)
	x := make([]float64, 64)
	src := make([]float64, 64)
	u := make([]float64, 64)
	for i := range src {
		src[i] = r.Range(-10, 10)
		u[i] = r.Range(0.5, 5)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		copy(x, src)
		if err := opt.ProjectCappedSimplex(x, u, 25); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProjectFeasible measures the Dykstra feasible-set projection on
// the paper-scale polytope.
func BenchmarkProjectFeasible(b *testing.B) {
	prob := paperScaleProblem(b, 4)
	start, err := prob.UniformStart()
	if err != nil {
		b.Fatal(err)
	}
	x := opt.Clone(start)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		opt.Copy(x, start)
		opt.Scale(x, 1.7) // push it off the polytope
		if err := opt.ProjectFeasible(prob, x, 1e-6); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWaterFilling measures one LDDM local solve.
func BenchmarkWaterFilling(b *testing.B) {
	r := sim.NewRand(5)
	const c = 64
	lp := &lddm.LocalProblem{
		Replica: model.NewReplica("r", 5),
		Mu:      make([]float64, c),
		Demands: make([]float64, c),
		Allowed: make([]bool, c),
	}
	for i := 0; i < c; i++ {
		lp.Mu[i] = r.Range(-40, 5)
		lp.Demands[i] = r.Range(1, 30)
		lp.Allowed[i] = true
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := lddm.SolveLocal(lp); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMaxFlowFeasibility measures the feasibility oracle.
func BenchmarkMaxFlowFeasibility(b *testing.B) {
	prob := paperScaleProblem(b, 6)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := opt.CheckFeasible(prob); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMatrixWireBytes round-trips the frame CDPSM pulls from every
// peer every iteration — a full 100×10 estimate matrix — through both body
// codecs, reporting bytes/frame for each. The binary codec is the default
// for matrix-bearing verbs; JSON remains the fallback for pre-codec peers
// (-wire-json). The bytes/frame ratio is the per-iteration wire saving.
func BenchmarkMatrixWireBytes(b *testing.B) {
	r := sim.NewRand(7)
	est := make([][]float64, 100)
	for i := range est {
		est[i] = make([]float64, 10)
		for j := range est[i] {
			est[i][j] = r.Range(0, 40)
		}
	}
	body := cdpsm.EstimateReply{Estimate: est}
	bench := func(b *testing.B, msg transport.Message) {
		var buf bytes.Buffer
		if err := transport.WriteFrame(&buf, msg); err != nil {
			b.Fatal(err)
		}
		frameBytes := float64(buf.Len())
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf.Reset()
			if err := transport.WriteFrame(&buf, msg); err != nil {
				b.Fatal(err)
			}
			got, err := transport.ReadFrame(&buf)
			if err != nil {
				b.Fatal(err)
			}
			var back cdpsm.EstimateReply
			if err := got.DecodeBody(&back); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(frameBytes, "bytes/frame")
	}
	b.Run("Binary", func(b *testing.B) {
		msg, err := transport.NewMessage("cdpsm.estimate.ack", "replica1", body)
		if err != nil {
			b.Fatal(err)
		}
		if len(msg.Bin) == 0 {
			b.Fatal("estimate reply did not take the binary codec")
		}
		bench(b, msg)
	})
	b.Run("JSON", func(b *testing.B) {
		msg, err := transport.NewJSONMessage("cdpsm.estimate.ack", "replica1", body)
		if err != nil {
			b.Fatal(err)
		}
		bench(b, msg)
	})
}

// BenchmarkWireCodec measures one frame round-trip of the TCP codec.
func BenchmarkWireCodec(b *testing.B) {
	payload := make([]float64, 96*3)
	msg, err := transport.NewMessage("replica.solution", "replica1", payload)
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := transport.WriteFrame(&buf, msg); err != nil {
			b.Fatal(err)
		}
		if _, err := transport.ReadFrame(&buf); err != nil {
			b.Fatal(err)
		}
	}
}
