package main

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"time"

	"edr/internal/core"
	"edr/internal/model"
	"edr/internal/sim"
	"edr/internal/transport"
	"edr/internal/workload"
)

// driftPerf is the steady-state incremental re-optimization sweep: two
// identical in-process fleets — one with ReplicaConfig.Incremental, one
// re-solving every round in full — driven through the same demand-drift
// sequence, timing RunRound alone at each drift level. Both fleets run
// cohorted (the steady-state config at this scale; a raw 10k-row
// distributed round is minutes, not milliseconds), so the measured gap is
// exactly what the incremental path adds on top of cohorting.
type driftPerf struct {
	Clients  int     `json:"clients"`
	Regions  int     `json:"regions"`
	Replicas int     `json:"replicas"`
	Alg      string  `json:"algorithm"`
	DeltaEps float64 `json:"delta_eps"`
	// CleanRelGap is the 0%-drift round's objective against the committed
	// full solve of the identical problem — exactly 0 by construction
	// (the clean path re-commits the full solve's own assignment), so the
	// tripwire can demand ≤1e-9 without cross-machine slack.
	CleanRelGap float64      `json:"clean_rel_gap"`
	Points      []driftPoint `json:"points"`
}

// driftPoint is one drift level of the sweep. Speedup and RelGap compare
// the incremental fleet's round against the full fleet's round over the
// same drifted demands.
type driftPoint struct {
	DriftPct           float64 `json:"drift_pct"`
	DirtyClients       int     `json:"dirty_clients"`
	SuppressedNotifies int     `json:"suppressed_notifies"`
	Incremental        bool    `json:"incremental"`
	IncrementalNs      int64   `json:"incremental_ns"`
	FullNs             int64   `json:"full_ns"`
	Speedup            float64 `json:"speedup_vs_full"`
	RelGap             float64 `json:"rel_gap_vs_full"`
}

// driftFleet is one side of the sweep: a replica ring plus its clients on
// a private in-process fabric.
type driftFleet struct {
	replicas []*core.ReplicaServer
	clients  []*core.Client
	lats     []map[string]float64
}

func (f *driftFleet) close() {
	for _, rs := range f.replicas {
		rs.Close()
	}
	for _, cl := range f.clients {
		cl.Close()
	}
}

// submit re-submits every client's demand (steady-state clients resubmit
// each scheduling window whether or not their demand moved).
func (f *driftFleet) submit(ctx context.Context, demands []float64) error {
	for i, cl := range f.clients {
		if err := cl.Submit(ctx, f.replicas[0].Addr(), demands[i], f.lats[i]); err != nil {
			return err
		}
	}
	return nil
}

// newDriftFleet builds the fleet: replicas r1..rN with staggered prices,
// clients grouped into regions sharing a latency vector that reaches a
// rotating half of the replicas (the regional shape the cohort layer and
// the incremental diff both key on).
func newDriftFleet(clients, regions, replicas int, incremental bool) (*driftFleet, error) {
	net := transport.NewInProcNetwork()
	f := &driftFleet{}
	names := make([]string, replicas)
	for j := range names {
		names[j] = fmt.Sprintf("r%d", j+1)
	}
	for j := range names {
		rs, err := core.NewReplicaServer(net, names[j], names, core.ReplicaConfig{
			Replica:          model.NewReplica(names[j], float64(1+2*j)),
			Algorithm:        core.LDDM,
			CohortMinClients: 2,
			Incremental:      incremental,
		})
		if err != nil {
			f.close()
			return nil, err
		}
		f.replicas = append(f.replicas, rs)
	}
	for i := 0; i < clients; i++ {
		cl, err := core.NewClient(net, fmt.Sprintf("c%05d", i))
		if err != nil {
			f.close()
			return nil, err
		}
		f.clients = append(f.clients, cl)
		region := i % regions
		lat := make(map[string]float64, replicas)
		for j, name := range names {
			if (j+region)%replicas < (replicas+1)/2 {
				lat[name] = 0.0005
			} else {
				lat[name] = 1 // far beyond the bound: infeasible
			}
		}
		f.lats = append(f.lats, lat)
	}
	return f, nil
}

// measureDriftSweep runs the sweep at paper scale: a cold full round on
// both fleets, then drift levels 0%, 1%, 10%, 100% applied cumulatively
// to the demand vector, re-submitted to both fleets, RunRound timed on
// each.
func measureDriftSweep(seed uint64) (*driftPerf, error) {
	return driftSweep(seed, 10000, 50, 10)
}

func driftSweep(seed uint64, clients, regions, replicas int) (*driftPerf, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()

	inc, err := newDriftFleet(clients, regions, replicas, true)
	if err != nil {
		return nil, err
	}
	defer inc.close()
	full, err := newDriftFleet(clients, regions, replicas, false)
	if err != nil {
		return nil, err
	}
	defer full.close()

	r := sim.NewRand(seed)
	demands := make([]float64, clients)
	for i := range demands {
		demands[i] = r.Range(0.005, 0.05)
	}

	run := func(f *driftFleet, demands []float64) (*core.RoundReport, int64, error) {
		if err := f.submit(ctx, demands); err != nil {
			return nil, 0, err
		}
		// The submit flood just allocated ~|C| transport messages; collect
		// them now so the timed window measures the round, not the flood's
		// garbage.
		runtime.GC()
		start := time.Now()
		report, err := f.replicas[0].RunRound(ctx)
		return report, time.Since(start).Nanoseconds(), err
	}
	if _, _, err := run(inc, demands); err != nil {
		return nil, err
	}
	committed, _, err := run(full, demands)
	if err != nil {
		return nil, err
	}

	out := &driftPerf{
		Clients: clients, Regions: regions, Replicas: replicas,
		Alg: "LDDM", DeltaEps: 1e-3,
	}
	for _, pct := range []float64{0, 0.01, 0.10, 1.0} {
		demands = workload.Drift{Fraction: pct, Magnitude: 0.2}.Apply(r, demands)
		repInc, incNs, err := run(inc, demands)
		if err != nil {
			return nil, err
		}
		repFull, fullNs, err := run(full, demands)
		if err != nil {
			return nil, err
		}
		pt := driftPoint{
			DriftPct:           100 * pct,
			DirtyClients:       repInc.DirtyClients,
			SuppressedNotifies: repInc.SuppressedNotifies,
			Incremental:        repInc.Incremental,
			IncrementalNs:      incNs,
			FullNs:             fullNs,
			RelGap:             math.Abs(repInc.Objective-repFull.Objective) / math.Max(1, math.Abs(repFull.Objective)),
		}
		if incNs > 0 {
			pt.Speedup = float64(fullNs) / float64(incNs)
		}
		if pct == 0 {
			// The quiet round against the committed full solve of the same
			// demands: the clean path re-commits that very assignment.
			out.CleanRelGap = math.Abs(repInc.Objective-committed.Objective) /
				math.Max(1, math.Abs(committed.Objective))
		}
		out.Points = append(out.Points, pt)
	}
	return out, nil
}
