package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"testing"
	"time"

	"edr/internal/admm"
	"edr/internal/cdpsm"
	"edr/internal/cohort"
	"edr/internal/core"
	"edr/internal/lddm"
	"edr/internal/model"
	"edr/internal/opt"
	"edr/internal/probgen"
	"edr/internal/sim"
	"edr/internal/solver"
	"edr/internal/transport"
)

// perfReport is the machine-readable round-hot-path benchmark: per-solver
// serial vs parallel cost at paper scale plus the wire cost of the matrix
// frames CDPSM exchanges every iteration. Written as BENCH_round.json so
// CI and regressions diff a stable schema rather than parse bench output.
type perfReport struct {
	Schema     string `json:"schema"`
	Seed       uint64 `json:"seed"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Clients    int    `json:"clients"`
	Replicas   int    `json:"replicas"`
	// Density is the paper-scale instance's mask density nnz/(|C|·|N|).
	Density float64      `json:"density"`
	Solvers []solverPerf `json:"solvers"`
	Wire    wirePerf     `json:"wire"`
	// Cohort is the 10k-client cohort-scale entry: one round-equivalent
	// solve ungrouped vs through the cohort layer. Optional so reports
	// from pre-cohort builds still diff cleanly.
	Cohort *cohortPerf `json:"cohort_scale,omitempty"`
	// Sparse is the 10k-client sparse-scale entry: dense vs packed CDPSM
	// kernels and v1 vs v2 wire frames on a 20%-density regional instance.
	// Optional so reports from pre-sparse builds still diff cleanly.
	Sparse *sparseScalePerf `json:"sparse_scale,omitempty"`
	// SparseCohort is the 1M-client sparse-cohort entry: one cohorted
	// round's initiator data plane (warm aggregation, reduced solve,
	// disaggregation, install columns, notify bodies) through the dense
	// adapters vs the packed end-to-end path core now runs. Optional so
	// reports from earlier builds still diff cleanly.
	SparseCohort *sparseCohortPerf `json:"sparse_cohort,omitempty"`
	// Drift is the steady-state incremental sweep: incremental vs full
	// rounds over drifting demands at 10k clients (see driftPerf).
	// Optional so reports from pre-incremental builds still diff cleanly.
	Drift *driftPerf `json:"drift_sweep,omitempty"`
	Notes []string   `json:"notes,omitempty"`
}

// sparseCohortPerf pins the packed-pipeline claim at client scale: a
// cohorted round over 1M clients at ~20% density, dense adapters
// (AggregateRows/Disaggregate plus dense column and per-client notify
// construction) vs the packed path (CSR gather/scatter adapters, CSC
// install columns, per-cohort notify bodies, one final dense scatter for
// the report). Grouping and the sparsity builds are identical on both
// sides and excluded (GroupNs reports them); the reduced solve is
// included in both. AggDisagg isolates the aggregation/disaggregation
// phase the ≥3x tripwire guards.
type sparseCohortPerf struct {
	Clients  int     `json:"clients"`
	Regions  int     `json:"regions"`
	Replicas int     `json:"replicas"`
	Density  float64 `json:"density"`
	Cohorts  int     `json:"cohorts"`
	Ratio    float64 `json:"compression_ratio"`
	MaxIters int     `json:"max_iters"`
	GroupNs  int64   `json:"group_ns"`

	DenseRoundNs  int64   `json:"dense_round_ns_per_op"`
	PackedRoundNs int64   `json:"packed_round_ns_per_op"`
	RoundSpeedup  float64 `json:"round_speedup_vs_dense"`

	DenseAggDisaggNs  int64   `json:"dense_aggdisagg_ns_per_op"`
	PackedAggDisaggNs int64   `json:"packed_aggdisagg_ns_per_op"`
	AggDisaggSpeedup  float64 `json:"aggdisagg_speedup_vs_dense"`
}

// sparseScalePerf pins the sparse-core claims: kernel speedup of the
// packed CSR path over the dense path at 10k clients and ≤20% density,
// and the wire saving of a kinded (sparse) estimate frame over the dense
// v1 layout. Kernel times subtract the feasibility oracle (identical on
// both sides and not part of the iteration hot path).
type sparseScalePerf struct {
	Clients  int     `json:"clients"`
	Regions  int     `json:"regions"`
	Replicas int     `json:"replicas"`
	Density  float64 `json:"density"`
	MaxIters int     `json:"max_iters"`
	OracleNs int64   `json:"feasibility_oracle_ns"`
	DenseNs  int64   `json:"dense_kernel_ns_per_op"`
	SparseNs int64   `json:"sparse_kernel_ns_per_op"`
	Speedup  float64 `json:"speedup_vs_dense"`
	// One CDPSM iteration fleet-wide (N agents × N-1 peer pulls), framing
	// the same estimate matrix with the v1 dense codec vs the v2 kinded
	// chooser (sparse layout at this density).
	WireV1BytesPerIteration int     `json:"wire_v1_bytes_per_iteration"`
	WireV2BytesPerIteration int     `json:"wire_v2_bytes_per_iteration"`
	WireRatio               float64 `json:"wire_v1_over_v2"`
}

type cohortPerf struct {
	Clients  int     `json:"clients"`
	Regions  int     `json:"regions"`
	Cohorts  int     `json:"cohorts"`
	Ratio    float64 `json:"compression_ratio"`
	MaxIters int     `json:"max_iters"`
	// UngroupedNs is one CDPSM solve over the raw instance; CohortNs is
	// group + reduced solve + disaggregate over the same instance.
	UngroupedNs int64   `json:"ungrouped_ns_per_op"`
	CohortNs    int64   `json:"cohort_ns_per_op"`
	Speedup     float64 `json:"speedup_vs_ungrouped"`
}

type solverPerf struct {
	Algorithm           string  `json:"algorithm"`
	MaxIters            int     `json:"max_iters"`
	SerialNsPerOp       int64   `json:"serial_ns_per_op"`
	ParallelNsPerOp     int64   `json:"parallel_ns_per_op"`
	Speedup             float64 `json:"speedup_vs_serial"`
	SerialBytesPerOp    int64   `json:"serial_b_per_op"`
	ParallelBytesPerOp  int64   `json:"parallel_b_per_op"`
	SerialAllocsPerOp   int64   `json:"serial_allocs_per_op"`
	ParallelAllocsPerOp int64   `json:"parallel_allocs_per_op"`
}

type wirePerf struct {
	// One estimate frame: the |C|×|N| matrix reply CDPSM pulls per peer.
	BinaryFrameBytes int     `json:"binary_frame_bytes"`
	JSONFrameBytes   int     `json:"json_frame_bytes"`
	Ratio            float64 `json:"json_over_binary"`
	// One CDPSM iteration fleet-wide: every agent pulls from N-1 peers.
	BinaryBytesPerIteration int `json:"binary_bytes_per_iteration"`
	JSONBytesPerIteration   int `json:"json_bytes_per_iteration"`
	// Kinded-frame mix of one live CDPSM round on an in-process fleet
	// (masked instance, 25 iterations): how many estimate replies shipped
	// as full, sparse, and delta frames, and the delta hit rate
	// delta/(full+sparse+delta).
	FullFrames   uint64  `json:"full_frames"`
	SparseFrames uint64  `json:"sparse_frames"`
	DeltaFrames  uint64  `json:"delta_frames"`
	DeltaHitRate float64 `json:"delta_hit_rate"`
	// FramesByAlgorithm is the same measurement per algorithm: CDPSM pulls
	// estimate matrices, LDDM ships μ-vectors, ADMM ships proximal
	// targets — each through the kinded chooser with per-peer delta-base
	// negotiation.
	FramesByAlgorithm map[string]frameMix `json:"frames_by_algorithm,omitempty"`
}

// frameMix is one live round's kinded-frame census.
type frameMix struct {
	Full         uint64  `json:"full"`
	Sparse       uint64  `json:"sparse"`
	Delta        uint64  `json:"delta"`
	DeltaHitRate float64 `json:"delta_hit_rate"`
}

// runPerf benchmarks the round hot path (solver kernels serial vs
// parallel, estimate-frame wire cost) and writes BENCH_round.json into
// outDir (cwd when empty). When baseline names a committed report, the
// fresh numbers are diffed against it and a gross regression fails the
// run — the threshold is deliberately lenient (see diffBaseline) because
// CI runners vary wildly in absolute speed.
func runPerf(outDir string, seed uint64, baseline string) error {
	const clients, replicas = 100, 10
	prob, err := probgen.MustFeasible(sim.NewRand(seed), probgen.Spec{
		Clients: clients, Replicas: replicas, Geo: true, DemandLo: 1, DemandHi: 6,
	})
	if err != nil {
		return err
	}
	report := perfReport{
		Schema:     "edr/bench-round/v2",
		Seed:       seed,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Clients:    clients,
		Replicas:   replicas,
	}
	report.Density = float64(prob.Sparsity().NNZ()) / float64(clients*replicas)
	if report.GOMAXPROCS <= 1 {
		report.Notes = append(report.Notes,
			"GOMAXPROCS=1: the auto-sized worker pool degrades to the serial kernel, so speedup_vs_serial ~1 is expected on this host")
	}

	mk := func(alg string, parallelism int) (solver.Solver, int) {
		switch alg {
		case "LDDM":
			s := lddm.New()
			s.MaxIters = 400
			s.Parallelism = parallelism
			return s, s.MaxIters
		case "CDPSM":
			s := cdpsm.New()
			s.MaxIters = 25
			s.Parallelism = parallelism
			return s, s.MaxIters
		default:
			s := admm.New()
			s.MaxIters = 60
			s.Parallelism = parallelism
			return s, s.MaxIters
		}
	}
	bench := func(s solver.Solver) testing.BenchmarkResult {
		return testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := s.Solve(prob); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	for _, alg := range []string{"LDDM", "CDPSM", "ADMM"} {
		serialSolver, iters := mk(alg, -1)
		parallelSolver, _ := mk(alg, 0) // auto: GOMAXPROCS-wide pool
		serial := bench(serialSolver)
		parallel := bench(parallelSolver)
		sp := solverPerf{
			Algorithm:           alg,
			MaxIters:            iters,
			SerialNsPerOp:       serial.NsPerOp(),
			ParallelNsPerOp:     parallel.NsPerOp(),
			SerialBytesPerOp:    serial.AllocedBytesPerOp(),
			ParallelBytesPerOp:  parallel.AllocedBytesPerOp(),
			SerialAllocsPerOp:   serial.AllocsPerOp(),
			ParallelAllocsPerOp: parallel.AllocsPerOp(),
		}
		if parallel.NsPerOp() > 0 {
			sp.Speedup = float64(serial.NsPerOp()) / float64(parallel.NsPerOp())
		}
		report.Solvers = append(report.Solvers, sp)
		fmt.Printf("perf %-6s serial %12d ns/op  parallel %12d ns/op  speedup %.2fx\n",
			alg, sp.SerialNsPerOp, sp.ParallelNsPerOp, sp.Speedup)
	}

	wire, err := measureWire(prob.C(), prob.N())
	if err != nil {
		return err
	}
	if err := measureDeltaHitRate(&wire); err != nil {
		return err
	}
	report.Wire = wire
	fmt.Printf("perf wire   estimate frame %d B binary vs %d B json (%.2fx); per CDPSM iteration %d B vs %d B\n",
		wire.BinaryFrameBytes, wire.JSONFrameBytes, wire.Ratio,
		wire.BinaryBytesPerIteration, wire.JSONBytesPerIteration)
	fmt.Printf("perf delta  live round frames: %d full / %d sparse / %d delta (hit rate %.2f)\n",
		wire.FullFrames, wire.SparseFrames, wire.DeltaFrames, wire.DeltaHitRate)

	cp, err := measureCohortScale(seed)
	if err != nil {
		return err
	}
	report.Cohort = cp
	fmt.Printf("perf cohort %d clients -> %d cohorts (%.0fx); ungrouped %12d ns/op  cohorted %12d ns/op  speedup %.0fx\n",
		cp.Clients, cp.Cohorts, cp.Ratio, cp.UngroupedNs, cp.CohortNs, cp.Speedup)

	sp, err := measureSparseScale(seed)
	if err != nil {
		return err
	}
	report.Sparse = sp
	fmt.Printf("perf sparse %d clients at %.0f%% density; dense kernel %12d ns/op  sparse %12d ns/op  speedup %.1fx; wire %d B vs %d B per iteration (%.1fx)\n",
		sp.Clients, 100*sp.Density, sp.DenseNs, sp.SparseNs, sp.Speedup,
		sp.WireV1BytesPerIteration, sp.WireV2BytesPerIteration, sp.WireRatio)

	sc, err := measureSparseCohort(seed)
	if err != nil {
		return err
	}
	report.SparseCohort = sc
	fmt.Printf("perf spcoh  %d clients -> %d cohorts at %.0f%% density; round dense %12d ns/op  packed %12d ns/op  speedup %.1fx; agg+disagg %12d vs %12d ns/op (%.1fx)\n",
		sc.Clients, sc.Cohorts, 100*sc.Density, sc.DenseRoundNs, sc.PackedRoundNs, sc.RoundSpeedup,
		sc.DenseAggDisaggNs, sc.PackedAggDisaggNs, sc.AggDisaggSpeedup)

	dp, err := measureDriftSweep(seed)
	if err != nil {
		return err
	}
	report.Drift = dp
	fmt.Printf("perf drift  %d clients, clean rel gap %.2g\n", dp.Clients, dp.CleanRelGap)
	for _, pt := range dp.Points {
		fmt.Printf("perf drift  %5.1f%% drift: dirty %5d, suppressed %5d; incremental %12d ns  full %12d ns  speedup %5.1fx  rel gap %.2g\n",
			pt.DriftPct, pt.DirtyClients, pt.SuppressedNotifies, pt.IncrementalNs, pt.FullNs, pt.Speedup, pt.RelGap)
	}

	if outDir == "" {
		outDir = "."
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(outDir, "BENCH_round.json")
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	if baseline != "" {
		return diffBaseline(&report, baseline)
	}
	return nil
}

// diffBaseline compares a fresh perf report against a committed one and
// errors on gross regressions only: ≥5x slower per solver kernel or a
// wire frame ≥2x fatter. Absolute ns/op differs across machines, so the
// gate is a tripwire for accidental algorithmic blowups (an O(n) kernel
// going quadratic, a codec falling back to JSON), not a micro-benchmark.
func diffBaseline(fresh *perfReport, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("perf baseline: %w", err)
	}
	var base perfReport
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("perf baseline %s: %w", path, err)
	}
	if base.Schema != fresh.Schema {
		fmt.Printf("perf baseline %s has schema %q (current %q) — skipping diff\n", path, base.Schema, fresh.Schema)
		return nil
	}
	const slowdownLimit, wireLimit = 5.0, 2.0
	baseBy := make(map[string]solverPerf, len(base.Solvers))
	for _, sp := range base.Solvers {
		baseBy[sp.Algorithm] = sp
	}
	var regressions []string
	for _, sp := range fresh.Solvers {
		bp, ok := baseBy[sp.Algorithm]
		if !ok {
			continue
		}
		check := func(kind string, now, was int64) {
			if was > 0 && float64(now) > slowdownLimit*float64(was) {
				regressions = append(regressions, fmt.Sprintf("%s %s %.1fx slower (%d ns/op vs baseline %d)",
					sp.Algorithm, kind, float64(now)/float64(was), now, was))
			}
		}
		check("serial", sp.SerialNsPerOp, bp.SerialNsPerOp)
		check("parallel", sp.ParallelNsPerOp, bp.ParallelNsPerOp)
	}
	if was := base.Wire.BinaryFrameBytes; was > 0 &&
		float64(fresh.Wire.BinaryFrameBytes) > wireLimit*float64(was) {
		regressions = append(regressions, fmt.Sprintf("binary estimate frame %.1fx fatter (%d B vs baseline %d)",
			float64(fresh.Wire.BinaryFrameBytes)/float64(was), fresh.Wire.BinaryFrameBytes, was))
	}
	// Cohort-scale tripwire: both sides relative (ungrouped vs cohorted on
	// the SAME run), so runner speed cancels out and a hard floor is safe.
	// Baselines from pre-cohort builds simply lack the section.
	if base.Cohort != nil && fresh.Cohort != nil {
		const cohortFloor = 10.0
		if base.Cohort.Speedup >= cohortFloor && fresh.Cohort.Speedup < cohortFloor {
			regressions = append(regressions, fmt.Sprintf(
				"cohort-scale speedup fell to %.1fx (baseline %.1fx, floor %gx)",
				fresh.Cohort.Speedup, base.Cohort.Speedup, cohortFloor))
		}
	}
	// Sparse-scale tripwires, relative like the cohort gate: the packed
	// kernels must stay ≥3x over dense at ≤20% density, and a kinded
	// estimate frame must stay ≥2x leaner than the dense v1 layout.
	if base.Sparse != nil && fresh.Sparse != nil {
		const kernelFloor, wireFloor = 3.0, 2.0
		if base.Sparse.Speedup >= kernelFloor && fresh.Sparse.Speedup < kernelFloor {
			regressions = append(regressions, fmt.Sprintf(
				"sparse-scale kernel speedup fell to %.1fx (baseline %.1fx, floor %gx)",
				fresh.Sparse.Speedup, base.Sparse.Speedup, kernelFloor))
		}
		if base.Sparse.WireRatio >= wireFloor && fresh.Sparse.WireRatio < wireFloor {
			regressions = append(regressions, fmt.Sprintf(
				"sparse-scale wire saving fell to %.1fx (baseline %.1fx, floor %gx)",
				fresh.Sparse.WireRatio, base.Sparse.WireRatio, wireFloor))
		}
	}
	// Sparse-cohort tripwires, relative like the gates above: the packed
	// aggregation/disaggregation phase must stay ≥3x over the dense
	// adapters at 1M clients, and the packed round end to end ≥5x.
	if base.SparseCohort != nil && fresh.SparseCohort != nil {
		const aggFloor, roundFloor = 3.0, 5.0
		if base.SparseCohort.AggDisaggSpeedup >= aggFloor && fresh.SparseCohort.AggDisaggSpeedup < aggFloor {
			regressions = append(regressions, fmt.Sprintf(
				"sparse-cohort agg/disagg speedup fell to %.1fx (baseline %.1fx, floor %gx)",
				fresh.SparseCohort.AggDisaggSpeedup, base.SparseCohort.AggDisaggSpeedup, aggFloor))
		}
		if base.SparseCohort.RoundSpeedup >= roundFloor && fresh.SparseCohort.RoundSpeedup < roundFloor {
			regressions = append(regressions, fmt.Sprintf(
				"sparse-cohort round speedup fell to %.1fx (baseline %.1fx, floor %gx)",
				fresh.SparseCohort.RoundSpeedup, base.SparseCohort.RoundSpeedup, roundFloor))
		}
	}
	// Drift-sweep tripwires, relative like the gates above: the 1%-drift
	// (quiet) round must stay ≥5x faster than the full solve on the same
	// run, and the 0%-drift round's objective must match the committed
	// full solve exactly (the clean path re-commits its assignment, so
	// ≤1e-9 is a bitwise-equality check, not a tolerance).
	if base.Drift != nil && fresh.Drift != nil {
		const quietFloor, cleanGapLimit = 5.0, 1e-9
		quiet := func(d *driftPerf) *driftPoint {
			for i := range d.Points {
				if d.Points[i].DriftPct == 1 {
					return &d.Points[i]
				}
			}
			return nil
		}
		if bq, fq := quiet(base.Drift), quiet(fresh.Drift); bq != nil && fq != nil &&
			bq.Speedup >= quietFloor && fq.Speedup < quietFloor {
			regressions = append(regressions, fmt.Sprintf(
				"drift-sweep 1%%-drift speedup fell to %.1fx (baseline %.1fx, floor %gx)",
				fq.Speedup, bq.Speedup, quietFloor))
		}
		if base.Drift.CleanRelGap <= cleanGapLimit && fresh.Drift.CleanRelGap > cleanGapLimit {
			regressions = append(regressions, fmt.Sprintf(
				"drift-sweep clean round diverged from the committed full solve: rel gap %.2g (limit %g)",
				fresh.Drift.CleanRelGap, cleanGapLimit))
		}
	}
	if len(regressions) > 0 {
		for _, r := range regressions {
			fmt.Fprintf(os.Stderr, "perf regression: %s\n", r)
		}
		return fmt.Errorf("perf: %d regression(s) against baseline %s", len(regressions), path)
	}
	fmt.Printf("perf baseline %s: no regressions (limits: %gx kernel, %gx wire)\n", path, slowdownLimit, wireLimit)
	return nil
}

// measureCohortScale times one round-equivalent CDPSM solve of a
// 10k-client regional instance ungrouped vs through the cohort layer
// (group + reduced solve + disaggregate). The ungrouped solve runs once —
// it is seconds, not microseconds, and the comparison is a tripwire for
// the ≥10x claim, not a microbenchmark; the cohort path takes the best of
// three runs to shave scheduler noise.
func measureCohortScale(seed uint64) (*cohortPerf, error) {
	const clients, replicas, regions, iters = 10000, 10, 50, 25
	prob, err := probgen.MustFeasible(sim.NewRand(seed), probgen.Spec{
		Clients:  clients,
		Replicas: replicas,
		Regions:  regions,
		DemandLo: 0.005,
		DemandHi: 0.05,
	})
	if err != nil {
		return nil, err
	}
	s := cdpsm.New()
	s.MaxIters = iters

	t0 := time.Now()
	if _, err := s.Solve(prob); err != nil {
		return nil, err
	}
	ungrouped := time.Since(t0)

	var best time.Duration
	var g *cohort.Grouping
	for run := 0; run < 3; run++ {
		t0 = time.Now()
		gg, err := cohort.Group(prob, cohort.Options{})
		if err != nil {
			return nil, err
		}
		res, err := s.Solve(gg.Reduced())
		if err != nil {
			return nil, err
		}
		if _, err := gg.Disaggregate(res.Assignment); err != nil {
			return nil, err
		}
		if d := time.Since(t0); best == 0 || d < best {
			best = d
		}
		g = gg
	}
	cp := &cohortPerf{
		Clients:     clients,
		Regions:     regions,
		Cohorts:     g.K(),
		Ratio:       g.Ratio(),
		MaxIters:    iters,
		UngroupedNs: ungrouped.Nanoseconds(),
		CohortNs:    best.Nanoseconds(),
	}
	if cp.CohortNs > 0 {
		cp.Speedup = float64(cp.UngroupedNs) / float64(cp.CohortNs)
	}
	return cp, nil
}

// measureSparseScale times the CDPSM kernels dense vs packed-sparse on a
// 10k-client regional instance masked down to the 2 nearest replicas per
// client (exactly 20% density). Tol is pinned unreachably low so every
// iteration runs — the measurement is fixed-iteration kernel cost, not
// convergence speed. Each mode is solved at 5 and at 25 iterations and
// the timings differenced: the feasibility oracle and solver setup are
// identical in both solves and cancel exactly, which a separately-timed
// oracle subtraction cannot guarantee (the standalone oracle run can be
// slower than the one inside Solve, driving the kernel estimate
// negative). Each configuration takes the best of two runs.
func measureSparseScale(seed uint64) (*sparseScalePerf, error) {
	const clients, replicas, regions, itersLo, iters, keep = 10000, 10, 50, 5, 25, 2
	prob, err := probgen.New(sim.NewRand(seed), probgen.Spec{
		Clients:  clients,
		Replicas: replicas,
		Regions:  regions,
		DemandLo: 0.01,
		DemandHi: 0.1,
	})
	if err != nil {
		return nil, err
	}
	for i := range prob.Latency {
		row := prob.Latency[i]
		idx := make([]int, len(row))
		for j := range idx {
			idx[j] = j
		}
		sort.Slice(idx, func(a, b int) bool { return row[idx[a]] < row[idx[b]] })
		for _, j := range idx[keep:] {
			row[j] = 10 * prob.MaxLatency
		}
	}
	prob.InvalidateMask()

	// The oracle timing is informational only (it no longer feeds the
	// kernel numbers); one standalone run suffices.
	t0 := time.Now()
	if err := opt.CheckFeasible(prob); err != nil {
		return nil, fmt.Errorf("sparse-scale instance: %w", err)
	}
	oracle := time.Since(t0)

	mk := func(mode opt.SparseMode, maxIters int) *cdpsm.Solver {
		s := cdpsm.New()
		s.MaxIters = maxIters
		s.Tol = 1e-300
		s.Sparse = mode
		return s
	}
	var res *solver.Result
	// solve returns the best-of-two wall time for maxIters iterations,
	// keeping the last assignment for the wire measurement below.
	solve := func(mode opt.SparseMode, maxIters int) (time.Duration, error) {
		var best time.Duration
		for run := 0; run < 2; run++ {
			t0 := time.Now()
			r, err := mk(mode, maxIters).Solve(prob)
			if err != nil {
				return 0, err
			}
			if d := time.Since(t0); best == 0 || d < best {
				best = d
			}
			res = r
		}
		return best, nil
	}
	// kernel extrapolates the fixed-cost-free per-iteration time back to
	// the full iteration count: (T_hi − T_lo) covers hi−lo iterations.
	kernel := func(mode opt.SparseMode) (time.Duration, error) {
		tLo, err := solve(mode, itersLo)
		if err != nil {
			return 0, err
		}
		tHi, err := solve(mode, iters)
		if err != nil {
			return 0, err
		}
		d := (tHi - tLo) * iters / (iters - itersLo)
		if d < 0 {
			d = 0
		}
		return d, nil
	}
	dense, err := kernel(opt.SparseOff)
	if err != nil {
		return nil, err
	}
	sparse, err := kernel(opt.SparseAuto)
	if err != nil {
		return nil, err
	}

	spz := prob.Sparsity()
	v1 := len(transport.AppendMatrix(nil, res.Assignment))
	v2 := len(transport.AppendMatrixKinded(nil, res.Assignment, nil))
	pulls := replicas * (replicas - 1)
	sp := &sparseScalePerf{
		Clients:                 clients,
		Regions:                 regions,
		Replicas:                replicas,
		Density:                 float64(spz.NNZ()) / float64(clients*replicas),
		MaxIters:                iters,
		OracleNs:                oracle.Nanoseconds(),
		DenseNs:                 dense.Nanoseconds(),
		SparseNs:                sparse.Nanoseconds(),
		WireV1BytesPerIteration: v1 * pulls,
		WireV2BytesPerIteration: v2 * pulls,
	}
	if sp.SparseNs > 0 {
		sp.Speedup = float64(sp.DenseNs) / float64(sp.SparseNs)
	}
	if v2 > 0 {
		sp.WireRatio = float64(v1) / float64(v2)
	}
	return sp, nil
}

// measureDeltaHitRate runs one live round per algorithm on an in-process
// fleet (5 replicas, latency-masked links) and reads the kinded matrix
// frame counters: every kinded body the round ships — CDPSM estimate
// matrices, LDDM μ-vectors, ADMM proximal targets — is counted by kind,
// giving the measured delta-frame hit rate of the per-peer base
// negotiation. The CDPSM numbers also fill the report's historical
// top-level fields.
func measureDeltaHitRate(w *wirePerf) error {
	w.FramesByAlgorithm = make(map[string]frameMix, 3)
	for _, alg := range []core.Algorithm{core.CDPSM, core.LDDM, core.ADMM} {
		mix, err := liveRoundFrames(alg)
		if err != nil {
			return fmt.Errorf("%s live round: %w", alg, err)
		}
		w.FramesByAlgorithm[string(alg)] = mix
		if alg == core.CDPSM {
			w.FullFrames, w.SparseFrames, w.DeltaFrames = mix.Full, mix.Sparse, mix.Delta
			w.DeltaHitRate = mix.DeltaHitRate
		}
	}
	return nil
}

// liveRoundFrames runs one round of alg over a masked in-process fleet
// and returns the kinded-frame census. The client count is sized so
// vectors are large enough for the delta layout to win once per-client
// values go bit-stable (LDDM μ for exactly-served clients, ADMM targets
// for clamped ones, CDPSM estimates between consensus steps).
func liveRoundFrames(alg core.Algorithm) (frameMix, error) {
	net := transport.NewInProcNetwork()
	prices := []float64{1, 3, 5, 7, 9}
	names := make([]string, len(prices))
	for i := range prices {
		names[i] = fmt.Sprintf("r%d", i+1)
	}
	var servers []*core.ReplicaServer
	defer func() {
		for _, rs := range servers {
			rs.Close()
		}
	}()
	nClients := 8
	maxIters := 25
	tol := 0.0
	if alg != core.CDPSM {
		nClients = 32 // per-client vectors: give the delta layout room
	}
	if alg == core.ADMM {
		// ADMM's proximal targets only go bit-stable as the iterates close
		// on the fixed point; run well past the default 2% convergence
		// bar so the delta layout has stable entries to exploit.
		maxIters, tol = 60, 1e-9
	}
	for i, price := range prices {
		rs, err := core.NewReplicaServer(net, names[i], names, core.ReplicaConfig{
			Replica:   model.NewReplica(names[i], price),
			Algorithm: alg,
			MaxIters:  maxIters,
			Tol:       tol,
		})
		if err != nil {
			return frameMix{}, err
		}
		servers = append(servers, rs)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	var clients []*core.Client
	defer func() {
		for _, cl := range clients {
			cl.Close()
		}
	}()
	for i := 0; i < nClients; i++ {
		cl, err := core.NewClient(net, fmt.Sprintf("c%d", i+1))
		if err != nil {
			return frameMix{}, err
		}
		clients = append(clients, cl)
		lat := make(map[string]float64, len(names))
		for j, name := range names {
			// Mask two of the five replicas per client (rotating), leaving
			// a ~60%-density instance so sparse and delta layouts compete.
			// Every other client is pinned to a single nearby replica (the
			// common geo shape): its column entry rides the proximal cap
			// clamp, which is what gives ADMM targets bit-stable entries
			// for the delta layout to exploit.
			masked := (i+j)%5 < 2
			if i%2 == 0 {
				masked = j != i%len(names)
			}
			if masked {
				lat[name] = 1 // far beyond any latency bound
			} else {
				lat[name] = 0.0005
			}
		}
		// Size demands so the aggregate stays ~1/3 of the 500 MB fleet
		// bandwidth at either client count — 32 clients of 10+3i MB would
		// be infeasible outright.
		demand := (10 + float64(i%8)*3) * 8 / float64(nClients)
		if err := cl.Submit(ctx, names[0], demand, lat); err != nil {
			return frameMix{}, err
		}
	}
	transport.ResetMatrixFrameStats()
	if _, err := servers[0].RunRound(ctx); err != nil {
		return frameMix{}, err
	}
	full, sparse, delta := transport.MatrixFrameStats()
	mix := frameMix{Full: full, Sparse: sparse, Delta: delta}
	if total := full + sparse + delta; total > 0 {
		mix.DeltaHitRate = float64(delta) / float64(total)
	}
	return mix, nil
}

// measureSparseCohort times one cohorted round's initiator data plane at
// 1M clients / 50 regions, masked to the 2 nearest replicas per client
// (~20% density): warm-start aggregation, the reduced solve, result
// disaggregation, per-replica install columns, and client-notify body
// construction — once through the dense cohort adapters (the pre-packed
// path) and once through the packed CSR/CSC pipeline core now runs,
// ending in the packed path's one dense scatter for the report matrix.
// Grouping and the (cached) mask/sparsity builds are identical on both
// sides and run once up front; each side takes the best of three rounds.
func measureSparseCohort(seed uint64) (*sparseCohortPerf, error) {
	const clients, replicas, regions, iters, keep = 1_000_000, 10, 50, 25, 2
	prob, err := probgen.New(sim.NewRand(seed), probgen.Spec{
		Clients:  clients,
		Replicas: replicas,
		Regions:  regions,
		DemandLo: 5e-5,
		DemandHi: 5e-4,
	})
	if err != nil {
		return nil, err
	}
	for i := range prob.Latency {
		row := prob.Latency[i]
		idx := make([]int, len(row))
		for j := range idx {
			idx[j] = j
		}
		sort.Slice(idx, func(a, b int) bool { return row[idx[a]] < row[idx[b]] })
		for _, j := range idx[keep:] {
			row[j] = 10 * prob.MaxLatency
		}
	}
	prob.InvalidateMask()

	t0 := time.Now()
	g, err := cohort.Group(prob, cohort.Options{})
	if err != nil {
		return nil, err
	}
	groupNs := time.Since(t0).Nanoseconds()
	// Feasibility on the reduced instance: homogeneous-mask cohorts make
	// the answer identical to the ungrouped one (§10), at |K| max-flow
	// rows instead of 1M — minutes of oracle otherwise.
	if err := opt.CheckFeasible(g.Reduced()); err != nil {
		return nil, fmt.Errorf("sparse-cohort instance: %w", err)
	}
	fullSp, redSp := g.Sparse() // primes both cached sparsity views

	warm, err := prob.UniformStart() // stands in for the last-good history
	if err != nil {
		return nil, err
	}
	repAddrs := make([]string, replicas)
	for j := range repAddrs {
		repAddrs[j] = prob.System.Replicas[j].Name
	}
	s := cdpsm.New()
	s.MaxIters = iters
	reduced := g.Reduced()
	sink := 0.0

	// Dense round: AggregateRows → solve → Disaggregate → dense column
	// reads → one per-replica allocation body built and marshaled per
	// client (the pre-packed notify path marshals |C| messages). The
	// disaggregated matrix doubles as the report matrix for free.
	denseRound := func() (total, agg time.Duration, err error) {
		start := time.Now()
		ta := time.Now()
		warmK := g.AggregateRows(warm)
		agg += time.Since(ta)
		sink += warmK[0][0]
		res, err := s.Solve(reduced)
		if err != nil {
			return 0, 0, err
		}
		ta = time.Now()
		x, err := g.Disaggregate(res.Assignment)
		if err != nil {
			return 0, 0, err
		}
		agg += time.Since(ta)
		for j := 0; j < replicas; j++ {
			col := make([]float64, clients)
			for i := range col {
				col[i] = x[i][j]
			}
			sink += col[clients-1]
		}
		for i := 0; i < clients; i++ {
			per := make(map[string]float64, keep)
			for j := 0; j < replicas; j++ {
				if x[i][j] > 0 {
					per[repAddrs[j]] = x[i][j]
				}
			}
			b, err := json.Marshal(core.AllocationBody{Round: 1, PerReplicaMB: per, Algorithm: "cdpsm", Iterations: iters})
			if err != nil {
				return 0, 0, err
			}
			sink += float64(len(b))
		}
		return time.Since(start), agg, nil
	}

	// Packed round: packed aggregation + scatter to the reduced spec shape
	// → solve → gather + packed disaggregation → CSC install columns →
	// one notify body built and marshaled per cohort (members share it; the
	// fan-out sends are network, not initiator CPU) → final dense scatter
	// for the report.
	warmBuf := make([]float64, redSp.NNZ())
	warmKmat := opt.NewMatrix(g.K(), replicas)
	vkBuf := make([]float64, redSp.NNZ())
	xBuf := make([]float64, fullSp.NNZ())
	packedRound := func() (total, agg time.Duration, err error) {
		start := time.Now()
		ta := time.Now()
		warmPk := g.AggregateRowsPacked(warm, warmBuf)
		redSp.Scatter(warmKmat, warmPk)
		agg += time.Since(ta)
		sink += warmKmat[0][0]
		res, err := s.Solve(reduced)
		if err != nil {
			return 0, 0, err
		}
		ta = time.Now()
		vk := redSp.Gather(vkBuf, res.Assignment)
		xPk, err := g.DisaggregatePacked(vk, xBuf)
		if err != nil {
			return 0, 0, err
		}
		agg += time.Since(ta)
		for j := 0; j < replicas; j++ {
			col := make([]float64, clients)
			for s := fullSp.ColStart[j]; s < fullSp.ColStart[j+1]; s++ {
				col[fullSp.RowIdx[s]] = xPk[fullSp.PosCSR[s]]
			}
			sink += col[clients-1]
		}
		for k := 0; k < g.K(); k++ {
			kb, ke := redSp.RowStart[k], redSp.RowStart[k+1]
			unit := make([]float64, ke-kb)
			addrs := make([]string, ke-kb)
			sum := 0.0
			for t := range unit {
				v := vk[kb+t]
				if v < 0 {
					v = 0
				}
				unit[t], addrs[t] = v, repAddrs[redSp.ColIdx[kb+t]]
				sum += v
			}
			if sum > 0 {
				for t := range unit {
					unit[t] /= sum
				}
			}
			b, err := json.Marshal(core.CohortAllocationBody{Round: 1, Algorithm: "cdpsm", Iterations: iters, Replicas: addrs, UnitMB: unit})
			if err != nil {
				return 0, 0, err
			}
			sink += float64(len(b))
		}
		full := opt.NewMatrix(clients, replicas)
		fullSp.Scatter(full, xPk)
		sink += full[clients-1][0]
		return time.Since(start), agg, nil
	}

	best := func(round func() (time.Duration, time.Duration, error)) (time.Duration, time.Duration, error) {
		var bTotal, bAgg time.Duration
		for run := 0; run < 3; run++ {
			total, agg, err := round()
			if err != nil {
				return 0, 0, err
			}
			if bTotal == 0 || total < bTotal {
				bTotal = total
			}
			if bAgg == 0 || agg < bAgg {
				bAgg = agg
			}
		}
		return bTotal, bAgg, nil
	}
	denseTotal, denseAgg, err := best(denseRound)
	if err != nil {
		return nil, err
	}
	packedTotal, packedAgg, err := best(packedRound)
	if err != nil {
		return nil, err
	}
	_ = sink

	sc := &sparseCohortPerf{
		Clients:           clients,
		Regions:           regions,
		Replicas:          replicas,
		Density:           float64(fullSp.NNZ()) / float64(clients*replicas),
		Cohorts:           g.K(),
		Ratio:             g.Ratio(),
		MaxIters:          iters,
		GroupNs:           groupNs,
		DenseRoundNs:      denseTotal.Nanoseconds(),
		PackedRoundNs:     packedTotal.Nanoseconds(),
		DenseAggDisaggNs:  denseAgg.Nanoseconds(),
		PackedAggDisaggNs: packedAgg.Nanoseconds(),
	}
	if sc.PackedRoundNs > 0 {
		sc.RoundSpeedup = float64(sc.DenseRoundNs) / float64(sc.PackedRoundNs)
	}
	if sc.PackedAggDisaggNs > 0 {
		sc.AggDisaggSpeedup = float64(sc.DenseAggDisaggNs) / float64(sc.PackedAggDisaggNs)
	}
	return sc, nil
}

// measureWire frames one C×N estimate reply through both codecs and
// extrapolates to a full CDPSM iteration (N agents each pulling N-1
// peer estimates).
func measureWire(c, n int) (wirePerf, error) {
	r := sim.NewRand(7)
	est := opt.NewMatrix(c, n)
	for i := range est {
		for j := range est[i] {
			est[i][j] = r.Range(0, 40)
		}
	}
	body := cdpsm.EstimateReply{Estimate: est}
	frame := func(msg transport.Message, err error) (int, error) {
		if err != nil {
			return 0, err
		}
		var buf bytes.Buffer
		if err := transport.WriteFrame(&buf, msg); err != nil {
			return 0, err
		}
		return buf.Len(), nil
	}
	bin, err := frame(transport.NewMessage("cdpsm.estimate.ack", "replica1", body))
	if err != nil {
		return wirePerf{}, err
	}
	js, err := frame(transport.NewJSONMessage("cdpsm.estimate.ack", "replica1", body))
	if err != nil {
		return wirePerf{}, err
	}
	pulls := n * (n - 1)
	w := wirePerf{
		BinaryFrameBytes:        bin,
		JSONFrameBytes:          js,
		BinaryBytesPerIteration: bin * pulls,
		JSONBytesPerIteration:   js * pulls,
	}
	if bin > 0 {
		w.Ratio = float64(js) / float64(bin)
	}
	return w, nil
}
