package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"edr/internal/admm"
	"edr/internal/cdpsm"
	"edr/internal/cohort"
	"edr/internal/lddm"
	"edr/internal/opt"
	"edr/internal/probgen"
	"edr/internal/sim"
	"edr/internal/solver"
	"edr/internal/transport"
)

// perfReport is the machine-readable round-hot-path benchmark: per-solver
// serial vs parallel cost at paper scale plus the wire cost of the matrix
// frames CDPSM exchanges every iteration. Written as BENCH_round.json so
// CI and regressions diff a stable schema rather than parse bench output.
type perfReport struct {
	Schema     string       `json:"schema"`
	Seed       uint64       `json:"seed"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	Clients    int          `json:"clients"`
	Replicas   int          `json:"replicas"`
	Solvers    []solverPerf `json:"solvers"`
	Wire       wirePerf     `json:"wire"`
	// Cohort is the 10k-client cohort-scale entry: one round-equivalent
	// solve ungrouped vs through the cohort layer. Optional so reports
	// from pre-cohort builds still diff cleanly.
	Cohort *cohortPerf `json:"cohort_scale,omitempty"`
	Notes  []string    `json:"notes,omitempty"`
}

type cohortPerf struct {
	Clients  int     `json:"clients"`
	Regions  int     `json:"regions"`
	Cohorts  int     `json:"cohorts"`
	Ratio    float64 `json:"compression_ratio"`
	MaxIters int     `json:"max_iters"`
	// UngroupedNs is one CDPSM solve over the raw instance; CohortNs is
	// group + reduced solve + disaggregate over the same instance.
	UngroupedNs int64   `json:"ungrouped_ns_per_op"`
	CohortNs    int64   `json:"cohort_ns_per_op"`
	Speedup     float64 `json:"speedup_vs_ungrouped"`
}

type solverPerf struct {
	Algorithm           string  `json:"algorithm"`
	MaxIters            int     `json:"max_iters"`
	SerialNsPerOp       int64   `json:"serial_ns_per_op"`
	ParallelNsPerOp     int64   `json:"parallel_ns_per_op"`
	Speedup             float64 `json:"speedup_vs_serial"`
	SerialBytesPerOp    int64   `json:"serial_b_per_op"`
	ParallelBytesPerOp  int64   `json:"parallel_b_per_op"`
	SerialAllocsPerOp   int64   `json:"serial_allocs_per_op"`
	ParallelAllocsPerOp int64   `json:"parallel_allocs_per_op"`
}

type wirePerf struct {
	// One estimate frame: the |C|×|N| matrix reply CDPSM pulls per peer.
	BinaryFrameBytes int     `json:"binary_frame_bytes"`
	JSONFrameBytes   int     `json:"json_frame_bytes"`
	Ratio            float64 `json:"json_over_binary"`
	// One CDPSM iteration fleet-wide: every agent pulls from N-1 peers.
	BinaryBytesPerIteration int `json:"binary_bytes_per_iteration"`
	JSONBytesPerIteration   int `json:"json_bytes_per_iteration"`
}

// runPerf benchmarks the round hot path (solver kernels serial vs
// parallel, estimate-frame wire cost) and writes BENCH_round.json into
// outDir (cwd when empty). When baseline names a committed report, the
// fresh numbers are diffed against it and a gross regression fails the
// run — the threshold is deliberately lenient (see diffBaseline) because
// CI runners vary wildly in absolute speed.
func runPerf(outDir string, seed uint64, baseline string) error {
	const clients, replicas = 100, 10
	prob, err := probgen.MustFeasible(sim.NewRand(seed), probgen.Spec{
		Clients: clients, Replicas: replicas, Geo: true, DemandLo: 1, DemandHi: 6,
	})
	if err != nil {
		return err
	}
	report := perfReport{
		Schema:     "edr/bench-round/v1",
		Seed:       seed,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Clients:    clients,
		Replicas:   replicas,
	}
	if report.GOMAXPROCS <= 1 {
		report.Notes = append(report.Notes,
			"GOMAXPROCS=1: the auto-sized worker pool degrades to the serial kernel, so speedup_vs_serial ~1 is expected on this host")
	}

	mk := func(alg string, parallelism int) (solver.Solver, int) {
		switch alg {
		case "LDDM":
			s := lddm.New()
			s.MaxIters = 400
			s.Parallelism = parallelism
			return s, s.MaxIters
		case "CDPSM":
			s := cdpsm.New()
			s.MaxIters = 25
			s.Parallelism = parallelism
			return s, s.MaxIters
		default:
			s := admm.New()
			s.MaxIters = 60
			s.Parallelism = parallelism
			return s, s.MaxIters
		}
	}
	bench := func(s solver.Solver) testing.BenchmarkResult {
		return testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := s.Solve(prob); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	for _, alg := range []string{"LDDM", "CDPSM", "ADMM"} {
		serialSolver, iters := mk(alg, -1)
		parallelSolver, _ := mk(alg, 0) // auto: GOMAXPROCS-wide pool
		serial := bench(serialSolver)
		parallel := bench(parallelSolver)
		sp := solverPerf{
			Algorithm:           alg,
			MaxIters:            iters,
			SerialNsPerOp:       serial.NsPerOp(),
			ParallelNsPerOp:     parallel.NsPerOp(),
			SerialBytesPerOp:    serial.AllocedBytesPerOp(),
			ParallelBytesPerOp:  parallel.AllocedBytesPerOp(),
			SerialAllocsPerOp:   serial.AllocsPerOp(),
			ParallelAllocsPerOp: parallel.AllocsPerOp(),
		}
		if parallel.NsPerOp() > 0 {
			sp.Speedup = float64(serial.NsPerOp()) / float64(parallel.NsPerOp())
		}
		report.Solvers = append(report.Solvers, sp)
		fmt.Printf("perf %-6s serial %12d ns/op  parallel %12d ns/op  speedup %.2fx\n",
			alg, sp.SerialNsPerOp, sp.ParallelNsPerOp, sp.Speedup)
	}

	wire, err := measureWire(prob.C(), prob.N())
	if err != nil {
		return err
	}
	report.Wire = wire
	fmt.Printf("perf wire   estimate frame %d B binary vs %d B json (%.2fx); per CDPSM iteration %d B vs %d B\n",
		wire.BinaryFrameBytes, wire.JSONFrameBytes, wire.Ratio,
		wire.BinaryBytesPerIteration, wire.JSONBytesPerIteration)

	cp, err := measureCohortScale(seed)
	if err != nil {
		return err
	}
	report.Cohort = cp
	fmt.Printf("perf cohort %d clients -> %d cohorts (%.0fx); ungrouped %12d ns/op  cohorted %12d ns/op  speedup %.0fx\n",
		cp.Clients, cp.Cohorts, cp.Ratio, cp.UngroupedNs, cp.CohortNs, cp.Speedup)

	if outDir == "" {
		outDir = "."
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(outDir, "BENCH_round.json")
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	if baseline != "" {
		return diffBaseline(&report, baseline)
	}
	return nil
}

// diffBaseline compares a fresh perf report against a committed one and
// errors on gross regressions only: ≥5x slower per solver kernel or a
// wire frame ≥2x fatter. Absolute ns/op differs across machines, so the
// gate is a tripwire for accidental algorithmic blowups (an O(n) kernel
// going quadratic, a codec falling back to JSON), not a micro-benchmark.
func diffBaseline(fresh *perfReport, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("perf baseline: %w", err)
	}
	var base perfReport
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("perf baseline %s: %w", path, err)
	}
	if base.Schema != fresh.Schema {
		fmt.Printf("perf baseline %s has schema %q (current %q) — skipping diff\n", path, base.Schema, fresh.Schema)
		return nil
	}
	const slowdownLimit, wireLimit = 5.0, 2.0
	baseBy := make(map[string]solverPerf, len(base.Solvers))
	for _, sp := range base.Solvers {
		baseBy[sp.Algorithm] = sp
	}
	var regressions []string
	for _, sp := range fresh.Solvers {
		bp, ok := baseBy[sp.Algorithm]
		if !ok {
			continue
		}
		check := func(kind string, now, was int64) {
			if was > 0 && float64(now) > slowdownLimit*float64(was) {
				regressions = append(regressions, fmt.Sprintf("%s %s %.1fx slower (%d ns/op vs baseline %d)",
					sp.Algorithm, kind, float64(now)/float64(was), now, was))
			}
		}
		check("serial", sp.SerialNsPerOp, bp.SerialNsPerOp)
		check("parallel", sp.ParallelNsPerOp, bp.ParallelNsPerOp)
	}
	if was := base.Wire.BinaryFrameBytes; was > 0 &&
		float64(fresh.Wire.BinaryFrameBytes) > wireLimit*float64(was) {
		regressions = append(regressions, fmt.Sprintf("binary estimate frame %.1fx fatter (%d B vs baseline %d)",
			float64(fresh.Wire.BinaryFrameBytes)/float64(was), fresh.Wire.BinaryFrameBytes, was))
	}
	// Cohort-scale tripwire: both sides relative (ungrouped vs cohorted on
	// the SAME run), so runner speed cancels out and a hard floor is safe.
	// Baselines from pre-cohort builds simply lack the section.
	if base.Cohort != nil && fresh.Cohort != nil {
		const cohortFloor = 10.0
		if base.Cohort.Speedup >= cohortFloor && fresh.Cohort.Speedup < cohortFloor {
			regressions = append(regressions, fmt.Sprintf(
				"cohort-scale speedup fell to %.1fx (baseline %.1fx, floor %gx)",
				fresh.Cohort.Speedup, base.Cohort.Speedup, cohortFloor))
		}
	}
	if len(regressions) > 0 {
		for _, r := range regressions {
			fmt.Fprintf(os.Stderr, "perf regression: %s\n", r)
		}
		return fmt.Errorf("perf: %d regression(s) against baseline %s", len(regressions), path)
	}
	fmt.Printf("perf baseline %s: no regressions (limits: %gx kernel, %gx wire)\n", path, slowdownLimit, wireLimit)
	return nil
}

// measureCohortScale times one round-equivalent CDPSM solve of a
// 10k-client regional instance ungrouped vs through the cohort layer
// (group + reduced solve + disaggregate). The ungrouped solve runs once —
// it is seconds, not microseconds, and the comparison is a tripwire for
// the ≥10x claim, not a microbenchmark; the cohort path takes the best of
// three runs to shave scheduler noise.
func measureCohortScale(seed uint64) (*cohortPerf, error) {
	const clients, replicas, regions, iters = 10000, 10, 50, 25
	prob, err := probgen.MustFeasible(sim.NewRand(seed), probgen.Spec{
		Clients:  clients,
		Replicas: replicas,
		Regions:  regions,
		DemandLo: 0.005,
		DemandHi: 0.05,
	})
	if err != nil {
		return nil, err
	}
	s := cdpsm.New()
	s.MaxIters = iters

	t0 := time.Now()
	if _, err := s.Solve(prob); err != nil {
		return nil, err
	}
	ungrouped := time.Since(t0)

	var best time.Duration
	var g *cohort.Grouping
	for run := 0; run < 3; run++ {
		t0 = time.Now()
		gg, err := cohort.Group(prob, cohort.Options{})
		if err != nil {
			return nil, err
		}
		res, err := s.Solve(gg.Reduced())
		if err != nil {
			return nil, err
		}
		if _, err := gg.Disaggregate(res.Assignment); err != nil {
			return nil, err
		}
		if d := time.Since(t0); best == 0 || d < best {
			best = d
		}
		g = gg
	}
	cp := &cohortPerf{
		Clients:     clients,
		Regions:     regions,
		Cohorts:     g.K(),
		Ratio:       g.Ratio(),
		MaxIters:    iters,
		UngroupedNs: ungrouped.Nanoseconds(),
		CohortNs:    best.Nanoseconds(),
	}
	if cp.CohortNs > 0 {
		cp.Speedup = float64(cp.UngroupedNs) / float64(cp.CohortNs)
	}
	return cp, nil
}

// measureWire frames one C×N estimate reply through both codecs and
// extrapolates to a full CDPSM iteration (N agents each pulling N-1
// peer estimates).
func measureWire(c, n int) (wirePerf, error) {
	r := sim.NewRand(7)
	est := opt.NewMatrix(c, n)
	for i := range est {
		for j := range est[i] {
			est[i][j] = r.Range(0, 40)
		}
	}
	body := cdpsm.EstimateReply{Estimate: est}
	frame := func(msg transport.Message, err error) (int, error) {
		if err != nil {
			return 0, err
		}
		var buf bytes.Buffer
		if err := transport.WriteFrame(&buf, msg); err != nil {
			return 0, err
		}
		return buf.Len(), nil
	}
	bin, err := frame(transport.NewMessage("cdpsm.estimate.ack", "replica1", body))
	if err != nil {
		return wirePerf{}, err
	}
	js, err := frame(transport.NewJSONMessage("cdpsm.estimate.ack", "replica1", body))
	if err != nil {
		return wirePerf{}, err
	}
	pulls := n * (n - 1)
	w := wirePerf{
		BinaryFrameBytes:        bin,
		JSONFrameBytes:          js,
		BinaryBytesPerIteration: bin * pulls,
		JSONBytesPerIteration:   js * pulls,
	}
	if bin > 0 {
		w.Ratio = float64(js) / float64(bin)
	}
	return w, nil
}
