package main

import (
	"fmt"
	"strconv"
	"time"

	"edr/internal/central"
	"edr/internal/cohort"
	"edr/internal/lddm"
	"edr/internal/opt"
	"edr/internal/probgen"
	"edr/internal/sim"
)

// runCohortScale is the client-scale demo: generate a region-structured
// instance with the requested raw client count, push it through the
// cohort layer (group → reduced distributed-kernel solve → disaggregate),
// verify the per-client invariants, and report compression, timings, and
// the optimality gap against the centralized reference on the reduced
// instance. cohorts is "auto" (unbounded grouping), "off" (solve
// ungrouped — slow at scale, for comparison), or a number (MaxCohorts
// bound, enforced by quantum coarsening).
func runCohortScale(clients int, cohorts string, seed uint64) error {
	if clients <= 0 {
		return fmt.Errorf("cohort-scale: -clients must be positive, got %d", clients)
	}
	opts := cohort.Options{}
	ungrouped := false
	switch cohorts {
	case "auto", "":
	case "off":
		ungrouped = true
	default:
		n, err := strconv.Atoi(cohorts)
		if err != nil || n <= 0 {
			return fmt.Errorf("cohort-scale: -cohorts wants 'auto', 'off', or a positive count, got %q", cohorts)
		}
		opts.MaxCohorts = n
	}

	const replicas = 10
	regions := clients / 200
	if regions < 10 {
		regions = 10
	} else if regions > 500 {
		regions = 500
	}
	// Size demands so aggregate load sits near 30% of fleet bandwidth
	// regardless of scale — the client count grows, the cloud does not.
	mean := 0.3 * replicas * 100 / float64(clients)

	// Feasibility is checked on the REDUCED instance: for homogeneous-mask
	// cohorts the achievable column sums coincide with the ungrouped
	// instance's, so the max-flow oracle answers the same question at |K|
	// rows instead of |C| — at a million clients that is the difference
	// between microseconds and minutes.
	t0 := time.Now()
	r := sim.NewRand(seed)
	var prob *opt.Problem
	var g *cohort.Grouping
	for attempt := 0; ; attempt++ {
		p, err := probgen.New(r, probgen.Spec{
			Clients:  clients,
			Replicas: replicas,
			Regions:  regions,
			DemandLo: 0.5 * mean,
			DemandHi: 1.5 * mean,
		})
		if err != nil {
			return err
		}
		gg, err := cohort.Group(p, opts)
		if err != nil {
			return err
		}
		if err := opt.CheckFeasible(gg.Reduced()); err == nil {
			prob, g = p, gg
			break
		} else if attempt >= 10 {
			return fmt.Errorf("cohort-scale: no feasible instance in %d draws: %w", attempt+1, err)
		}
	}
	fmt.Printf("cohort-scale: %d clients x %d replicas (%d regions) generated in %v\n",
		clients, replicas, regions, time.Since(t0).Round(time.Millisecond))

	mkSolver := func() *lddm.Solver {
		s := lddm.New()
		s.MaxIters = 400
		return s
	}

	if ungrouped {
		t0 = time.Now()
		res, err := mkSolver().Solve(prob)
		if err != nil {
			return err
		}
		fmt.Printf("cohort-scale: ungrouped solve %v, objective %.4f (%d iterations, converged=%v)\n",
			time.Since(t0).Round(time.Millisecond), res.Objective, res.Iterations, res.Converged)
		return nil
	}

	fmt.Printf("cohort-scale: grouped to %d cohorts (%.0fx compression, quantum %.0f µs)\n",
		g.K(), g.Ratio(), g.Quantum()*1e6)

	t0 = time.Now()
	res, err := mkSolver().Solve(g.Reduced())
	if err != nil {
		return err
	}
	solveTime := time.Since(t0)
	// Disaggregate through the packed path: gather the reduced solution
	// onto its sparsity support, expand cohort loads to members slot by
	// slot, and scatter to a dense matrix only for the final cost/invariant
	// reporting — no dense |K|x|N| or |C|x|N| intermediates in between.
	t0 = time.Now()
	fullSp, redSp := g.Sparse()
	packed, err := g.DisaggregatePacked(redSp.Gather(nil, res.Assignment), nil)
	if err != nil {
		return err
	}
	x := opt.NewMatrix(g.C(), prob.N())
	fullSp.Scatter(x, packed)
	disaggTime := time.Since(t0)
	if err := g.Check(x, 1e-6); err != nil {
		return fmt.Errorf("cohort-scale: invariants violated: %w", err)
	}

	// By the same column-sums argument, the reduced reference equals the
	// ungrouped optimum, so the gap below is a true end-to-end optimality
	// gap at a cost independent of raw client count.
	ref, err := central.NewFrankWolfe().Solve(g.Reduced())
	if err != nil {
		return err
	}
	gap := g.Gap(x, ref.Objective)
	fmt.Printf("cohort-scale: reduced solve %v + disaggregate %v; objective %.4f vs reference %.4f (gap %.3f%%)\n",
		solveTime.Round(time.Microsecond), disaggTime.Round(time.Microsecond),
		prob.Cost(x), ref.Objective, 100*gap)
	fmt.Printf("cohort-scale: per-client demand conserved exactly, zero load on latency-infeasible links\n")
	return nil
}
