// Command edr-bench regenerates the paper's evaluation artifacts: every
// table and figure of §IV, as CSV files plus terminal summaries.
//
//	edr-bench -exp all -out results/        # everything
//	edr-bench -exp fig8 -seed 7             # one experiment, custom seed
//	edr-bench -list                         # what can be regenerated
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"time"

	"edr/internal/experiments"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment id (table1, fig3..fig9) or 'all'")
		seed     = flag.Uint64("seed", 2013, "base random seed (experiments are deterministic per seed)")
		out      = flag.String("out", "", "directory to write CSV tables into (empty: don't write)")
		list     = flag.Bool("list", false, "list available experiments and exit")
		perf     = flag.Bool("perf", false, "benchmark the round hot path (solver kernels serial vs parallel, wire codec, cohort scale) and write BENCH_round.json to -out (or cwd)")
		baseline = flag.String("baseline", "", "with -perf: committed BENCH_round.json to diff against; gross regressions (>=5x kernel slowdown, >=2x wire growth) exit nonzero")
		clients  = flag.Int("clients", 0, "client-scale cohort demo: raw client count to aggregate and solve (e.g. 100000); 0 disables")
		cohorts  = flag.String("cohorts", "auto", "with -clients: 'auto' (unbounded grouping), 'off' (ungrouped solve), or a cohort-count bound")
	)
	flag.Parse()

	if *clients > 0 {
		if err := runCohortScale(*clients, *cohorts, *seed); err != nil {
			log.Fatal(err)
		}
		return
	}

	if *perf {
		if err := runPerf(*out, *seed, *baseline); err != nil {
			log.Fatal(err)
		}
		return
	}

	if *list {
		for _, e := range experiments.Registry() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	run := func(id string, title string, runner experiments.Runner) {
		begin := time.Now()
		res, err := runner(*seed)
		if err != nil {
			log.Fatalf("%s: %v", id, err)
		}
		fmt.Printf("\n=== %s — %s (%v)\n", id, title, time.Since(begin).Round(time.Millisecond))
		for _, tab := range res.Tables {
			if tab.Rows() <= 24 {
				if err := tab.Render(os.Stdout); err != nil {
					log.Fatal(err)
				}
			} else {
				fmt.Printf("## %s: %d rows (see CSV)\n", tab.Name, tab.Rows())
			}
			if *out != "" {
				path, err := tab.SaveCSV(*out)
				if err != nil {
					log.Fatal(err)
				}
				fmt.Printf("wrote %s\n", path)
			}
		}
		if len(res.Summary) > 0 {
			fmt.Println("summary:")
			keys := res.SummaryKeys()
			sort.Strings(keys)
			for _, k := range keys {
				fmt.Printf("  %-46s %12.4f\n", k, res.Summary[k])
			}
		}
		for _, note := range res.Notes {
			fmt.Printf("note: %s\n", note)
		}
	}

	if *exp == "all" {
		for _, e := range experiments.Registry() {
			run(e.ID, e.Title, e.Run)
		}
		return
	}
	runner, err := experiments.Lookup(*exp)
	if err != nil {
		log.Fatal(err)
	}
	title := ""
	for _, e := range experiments.Registry() {
		if e.ID == *exp {
			title = e.Title
		}
	}
	run(*exp, title, runner)
}
