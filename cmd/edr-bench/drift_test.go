package main

import "testing"

// A scaled-down drift sweep: the incremental fleet must produce an
// empty-dirty quiet round (clean gap exactly 0) and a full-size dirty
// set at 100% drift, with every point's objective near the full solve.
func TestDriftSweepSmall(t *testing.T) {
	dp, err := driftSweep(11, 400, 20, 6)
	if err != nil {
		t.Fatal(err)
	}
	if dp.CleanRelGap > 1e-9 {
		t.Fatalf("clean rel gap = %g, want 0", dp.CleanRelGap)
	}
	if len(dp.Points) != 4 {
		t.Fatalf("got %d points", len(dp.Points))
	}
	quiet := dp.Points[0]
	if !quiet.Incremental || quiet.DirtyClients != 0 {
		t.Fatalf("0%% drift point not clean: %+v", quiet)
	}
	if quiet.SuppressedNotifies != 400 {
		t.Fatalf("quiet round suppressed %d of 400 notifies", quiet.SuppressedNotifies)
	}
	for _, pt := range dp.Points {
		if pt.RelGap > 0.15 {
			t.Fatalf("%.0f%% drift point rel gap %g", pt.DriftPct, pt.RelGap)
		}
	}
}
