// Command edrctl is the EDR client: it measures its latency to every
// replica, submits a demand to a contact replica, waits for the fleet's
// scheduling decision, and (optionally) downloads the selected bytes from
// each chosen replica in parallel.
//
//	edrctl -replicas 127.0.0.1:7001,127.0.0.1:7002,127.0.0.1:7003 -demand 25 -download
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"edr/internal/core"
	"edr/internal/transport"
)

func main() {
	var (
		replicas = flag.String("replicas", "127.0.0.1:7001", "comma-separated replica addresses (first is the contact)")
		listen   = flag.String("listen", "127.0.0.1:0", "client bind address")
		demand   = flag.Float64("demand", 10, "requested traffic R_c in MB")
		download = flag.Bool("download", false, "download the payload after allocation")
		timeout  = flag.Duration("timeout", 30*time.Second, "overall deadline")
	)
	flag.Parse()

	var addrs []string
	for _, a := range strings.Split(*replicas, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	if len(addrs) == 0 {
		log.Fatal("edrctl: no replicas given")
	}
	client, err := core.NewClient(transport.NewTCPNetwork(), *listen)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	// Measure the network view the optimizer will respect.
	latencies := make(map[string]float64, len(addrs))
	for _, addr := range addrs {
		rtt, err := client.Ping(ctx, addr)
		if err != nil {
			log.Printf("edrctl: replica %s unreachable (%v); excluded", addr, err)
			continue
		}
		latencies[addr] = rtt.Seconds()
		fmt.Printf("ping %-22s %v\n", addr, rtt.Round(time.Microsecond))
	}
	if len(latencies) == 0 {
		log.Fatal("edrctl: no reachable replicas")
	}

	start := time.Now()
	if err := client.Submit(ctx, addrs[0], *demand, latencies); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("submitted %.1f MB to %s; waiting for the fleet's decision...\n", *demand, addrs[0])
	alloc, err := client.WaitAllocation(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("allocation (round %d, %s, %d iterations, %v):\n",
		alloc.Round, alloc.Algorithm, alloc.Iterations, time.Since(start).Round(time.Millisecond))
	for addr, mb := range alloc.PerReplicaMB {
		fmt.Printf("  %-22s %8.2f MB\n", addr, mb)
	}
	if *download {
		n, err := client.Download(ctx, alloc)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("downloaded %d payload bytes across %d replicas\n", n, len(alloc.PerReplicaMB))
	}
}
