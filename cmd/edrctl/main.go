// Command edrctl is the EDR client: it measures its latency to every
// replica, submits a demand to a contact replica, waits for the fleet's
// scheduling decision, and (optionally) downloads the selected bytes from
// each chosen replica in parallel.
//
//	edrctl -replicas 127.0.0.1:7001,127.0.0.1:7002,127.0.0.1:7003 -demand 25 -download
//
// The status subcommand queries a replica's admin plane (edrd -admin)
// instead of submitting demand:
//
//	edrctl status -admin 127.0.0.1:9090
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"edr/internal/core"
	"edr/internal/transport"
)

func main() {
	// All work happens in run/runStatus, which return errors instead of
	// calling log.Fatal: a Fatal after the client or response body is open
	// would skip the deferred Close.
	var err error
	if len(os.Args) > 1 && os.Args[1] == "status" {
		err = runStatus(os.Args[2:])
	} else {
		err = run(os.Args[1:])
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "edrctl:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("edrctl", flag.ExitOnError)
	var (
		replicas = fs.String("replicas", "127.0.0.1:7001", "comma-separated replica addresses (first is the contact)")
		listen   = fs.String("listen", "127.0.0.1:0", "client bind address")
		demand   = fs.Float64("demand", 10, "requested traffic R_c in MB")
		download = fs.Bool("download", false, "download the payload after allocation")
		timeout  = fs.Duration("timeout", 30*time.Second, "overall deadline")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var addrs []string
	for _, a := range strings.Split(*replicas, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	if len(addrs) == 0 {
		return fmt.Errorf("no replicas given")
	}
	client, err := core.NewClient(transport.NewTCPNetwork(), *listen)
	if err != nil {
		return err
	}
	defer client.Close()
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	// Measure the network view the optimizer will respect.
	latencies := make(map[string]float64, len(addrs))
	for _, addr := range addrs {
		rtt, err := client.Ping(ctx, addr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "edrctl: replica %s unreachable (%v); excluded\n", addr, err)
			continue
		}
		latencies[addr] = rtt.Seconds()
		fmt.Printf("ping %-22s %v\n", addr, rtt.Round(time.Microsecond))
	}
	if len(latencies) == 0 {
		return fmt.Errorf("no reachable replicas")
	}

	start := time.Now()
	if err := client.Submit(ctx, addrs[0], *demand, latencies); err != nil {
		return err
	}
	fmt.Printf("submitted %.1f MB to %s; waiting for the fleet's decision...\n", *demand, addrs[0])
	alloc, err := client.WaitAllocation(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("allocation (round %d, %s, %d iterations, %v):\n",
		alloc.Round, alloc.Algorithm, alloc.Iterations, time.Since(start).Round(time.Millisecond))
	for addr, mb := range alloc.PerReplicaMB {
		fmt.Printf("  %-22s %8.2f MB\n", addr, mb)
	}
	if *download {
		n, err := client.Download(ctx, alloc)
		if err != nil {
			return err
		}
		fmt.Printf("downloaded %d payload bytes across %d replicas\n", n, len(alloc.PerReplicaMB))
	}
	return nil
}

func runStatus(args []string) error {
	fs := flag.NewFlagSet("edrctl status", flag.ExitOnError)
	var (
		admin   = fs.String("admin", "127.0.0.1:9090", "replica admin-plane address (edrd -admin)")
		timeout = fs.Duration("timeout", 5*time.Second, "request deadline")
		raw     = fs.Bool("json", false, "print the raw /status JSON instead of the rendered view")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	httpc := &http.Client{Timeout: *timeout}
	resp, err := httpc.Get("http://" + *admin + "/status")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET /status: %s", resp.Status)
	}
	var st core.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return fmt.Errorf("decoding /status: %w", err)
	}
	if *raw {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(st)
	}
	printStatus(os.Stdout, &st)
	return nil
}

// printStatus renders a Status the way an operator reads it: identity,
// ring health, counters, then the last round's assignment matrix.
func printStatus(w *os.File, st *core.Status) {
	fmt.Fprintf(w, "replica   %s (%s)\n", st.Addr, st.Algorithm)
	fmt.Fprintf(w, "ring      %s\n", strings.Join(st.Ring, " -> "))
	if st.Suspect != "" {
		fmt.Fprintf(w, "suspect   %s (%d missed heartbeats)\n", st.Suspect, st.SuspectMisses)
	}
	fmt.Fprintf(w, "pending   %d requests\n", st.Pending)
	fmt.Fprintf(w, "counters  requests %d, rounds %d (restarted %d, degraded %d), downloads %d, rpc retries %d\n",
		st.RequestsReceived, st.RoundsInitiated, st.RoundsRestarted, st.RoundsDegraded,
		st.DownloadsServed, st.SendRetried)
	if st.LastRound == nil {
		fmt.Fprintln(w, "last round: none yet")
		return
	}
	r := st.LastRound
	flag := ""
	if r.Degraded {
		flag = "  DEGRADED (last-good fallback)"
	}
	fmt.Fprintf(w, "last round %d: %s, %d iterations, cost %.2f, %v%s\n",
		r.Round, r.Algorithm, r.Iterations, r.Objective, r.Duration.Round(time.Millisecond), flag)
	if len(r.Assignment) == 0 {
		return
	}
	fmt.Fprintf(w, "assignment (MB, %d clients x %d replicas):\n", len(r.ClientAddrs), len(r.ReplicaAddrs))
	fmt.Fprintf(w, "  %-22s", "")
	for _, rep := range r.ReplicaAddrs {
		fmt.Fprintf(w, " %20s", rep)
	}
	fmt.Fprintln(w)
	for i, row := range r.Assignment {
		client := ""
		if i < len(r.ClientAddrs) {
			client = r.ClientAddrs[i]
		}
		fmt.Fprintf(w, "  %-22s", client)
		for _, mb := range row {
			fmt.Fprintf(w, " %20.2f", mb)
		}
		fmt.Fprintln(w)
	}
}
