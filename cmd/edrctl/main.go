// Command edrctl is the EDR client: it measures its latency to every
// replica, submits a demand to a contact replica, waits for the fleet's
// scheduling decision, and (optionally) downloads the selected bytes from
// each chosen replica in parallel.
//
//	edrctl -replicas 127.0.0.1:7001,127.0.0.1:7002,127.0.0.1:7003 -demand 25 -download
//
// The status subcommand queries a replica's admin plane (edrd -admin)
// instead of submitting demand:
//
//	edrctl status -admin 127.0.0.1:9090
//
// The membership subcommands propose live reconfigurations through any
// reachable fleet member (the contact coordinates the epoch change and
// disseminates it):
//
//	edrctl join    -replica 127.0.0.1:7001 -addr 127.0.0.1:7004
//	edrctl drain   -replica 127.0.0.1:7001 -addr 127.0.0.1:7003
//	edrctl undrain -replica 127.0.0.1:7001 -addr 127.0.0.1:7003
//	edrctl remove  -replica 127.0.0.1:7001 -addr 127.0.0.1:7003
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"edr/internal/core"
	"edr/internal/membership"
	"edr/internal/transport"
)

func main() {
	// All work happens in run/runStatus/runMembership, which return errors
	// instead of calling log.Fatal: a Fatal after the client or response
	// body is open would skip the deferred Close.
	var err error
	sub := ""
	if len(os.Args) > 1 {
		sub = os.Args[1]
	}
	switch sub {
	case "status":
		err = runStatus(os.Args[2:])
	case "join":
		err = runMembership(membership.OpJoin, os.Args[2:])
	case "drain":
		err = runMembership(membership.OpDrain, os.Args[2:])
	case "undrain":
		err = runMembership(membership.OpUndrain, os.Args[2:])
	case "remove":
		err = runMembership(membership.OpRemove, os.Args[2:])
	default:
		err = run(os.Args[1:])
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "edrctl:", err)
		os.Exit(1)
	}
}

// runMembership sends one membership proposal to a contact replica, which
// coordinates the epoch change fleet-wide and returns the committed epoch.
func runMembership(op membership.Op, args []string) error {
	fs := flag.NewFlagSet("edrctl "+string(op), flag.ExitOnError)
	var (
		replica = fs.String("replica", "127.0.0.1:7001", "contact replica coordinating the change (any live member)")
		addr    = fs.String("addr", "", "member address the operation applies to")
		listen  = fs.String("listen", "127.0.0.1:0", "local bind address")
		timeout = fs.Duration("timeout", 10*time.Second, "overall deadline")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *addr == "" {
		return fmt.Errorf("%s: -addr is required", op)
	}
	node, err := transport.NewTCPNetwork().Listen(*listen, func(ctx context.Context, m transport.Message) (transport.Message, error) {
		return transport.Message{}, fmt.Errorf("edrctl: unexpected message %q", m.Type)
	})
	if err != nil {
		return err
	}
	defer node.Close()
	req, err := transport.NewMessage(membership.ProposeType, node.Name(), membership.ProposeBody{Op: op, Addr: *addr})
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	resp, err := node.Send(ctx, *replica, req)
	if err != nil {
		return err
	}
	var reply membership.ProposeReply
	if err := resp.DecodeBody(&reply); err != nil {
		return err
	}
	e := reply.Epoch
	fmt.Printf("epoch %d committed: %d members, active [%s]", e.Seq, len(e.Members), strings.Join(e.Active(), " "))
	if len(e.Drained) > 0 {
		fmt.Printf(", drained [%s]", strings.Join(e.Drained, " "))
	}
	fmt.Println()
	return nil
}

func run(args []string) error {
	fs := flag.NewFlagSet("edrctl", flag.ExitOnError)
	var (
		replicas = fs.String("replicas", "127.0.0.1:7001", "comma-separated replica addresses (first is the contact)")
		listen   = fs.String("listen", "127.0.0.1:0", "client bind address")
		demand   = fs.Float64("demand", 10, "requested traffic R_c in MB")
		download = fs.Bool("download", false, "download the payload after allocation")
		timeout  = fs.Duration("timeout", 30*time.Second, "overall deadline")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var addrs []string
	for _, a := range strings.Split(*replicas, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	if len(addrs) == 0 {
		return fmt.Errorf("no replicas given")
	}
	client, err := core.NewClient(transport.NewTCPNetwork(), *listen)
	if err != nil {
		return err
	}
	defer client.Close()
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	// Measure the network view the optimizer will respect.
	latencies := make(map[string]float64, len(addrs))
	for _, addr := range addrs {
		rtt, err := client.Ping(ctx, addr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "edrctl: replica %s unreachable (%v); excluded\n", addr, err)
			continue
		}
		latencies[addr] = rtt.Seconds()
		fmt.Printf("ping %-22s %v\n", addr, rtt.Round(time.Microsecond))
	}
	if len(latencies) == 0 {
		return fmt.Errorf("no reachable replicas")
	}

	start := time.Now()
	if err := client.Submit(ctx, addrs[0], *demand, latencies); err != nil {
		return err
	}
	fmt.Printf("submitted %.1f MB to %s; waiting for the fleet's decision...\n", *demand, addrs[0])
	// Steady wait: prefer the push, but poll the committed round too — an
	// incremental fleet suppresses the push when this client's split did
	// not move, and a one-shot CLI has no prior allocation to keep serving.
	alloc, err := client.WaitAllocationSteady(ctx, time.Second)
	if err != nil {
		return err
	}
	fmt.Printf("allocation (round %d, %s, %d iterations, %v):\n",
		alloc.Round, alloc.Algorithm, alloc.Iterations, time.Since(start).Round(time.Millisecond))
	for addr, mb := range alloc.PerReplicaMB {
		fmt.Printf("  %-22s %8.2f MB\n", addr, mb)
	}
	if *download {
		n, err := client.Download(ctx, alloc)
		if err != nil {
			return err
		}
		fmt.Printf("downloaded %d payload bytes across %d replicas\n", n, len(alloc.PerReplicaMB))
	}
	return nil
}

func runStatus(args []string) error {
	fs := flag.NewFlagSet("edrctl status", flag.ExitOnError)
	var (
		admin   = fs.String("admin", "127.0.0.1:9090", "replica admin-plane address (edrd -admin)")
		timeout = fs.Duration("timeout", 5*time.Second, "request deadline")
		raw     = fs.Bool("json", false, "print the raw /status JSON instead of the rendered view")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	httpc := &http.Client{Timeout: *timeout}
	resp, err := httpc.Get("http://" + *admin + "/status")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET /status: %s", resp.Status)
	}
	var st core.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return fmt.Errorf("decoding /status: %w", err)
	}
	if *raw {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(st)
	}
	printStatus(os.Stdout, &st)
	return nil
}

// printStatus renders a Status the way an operator reads it: identity,
// ring health, counters, then the last round's assignment matrix.
func printStatus(w *os.File, st *core.Status) {
	fmt.Fprintf(w, "replica   %s (%s)\n", st.Addr, st.Algorithm)
	fmt.Fprintf(w, "ring      %s\n", strings.Join(st.Ring, " -> "))
	fmt.Fprintf(w, "epoch     %d\n", st.Epoch)
	if len(st.Drained) > 0 {
		fmt.Fprintf(w, "drained   %s\n", strings.Join(st.Drained, ", "))
	}
	if st.Suspect != "" {
		fmt.Fprintf(w, "suspect   %s (%d missed heartbeats)\n", st.Suspect, st.SuspectMisses)
	}
	fmt.Fprintf(w, "pending   %d requests\n", st.Pending)
	fmt.Fprintf(w, "counters  requests %d, rounds %d (restarted %d, degraded %d), downloads %d, rpc retries %d\n",
		st.RequestsReceived, st.RoundsInitiated, st.RoundsRestarted, st.RoundsDegraded,
		st.DownloadsServed, st.SendRetried)
	if st.LastRound == nil {
		fmt.Fprintln(w, "last round: none yet")
		return
	}
	r := st.LastRound
	flag := ""
	if r.WarmStarted {
		flag = "  warm-started"
	}
	if r.Cohorts > 0 {
		flag += fmt.Sprintf("  cohorted (%d virtual clients, %.1fx compression)", r.Cohorts, r.CohortRatio)
	}
	if r.Incremental {
		suppressed := 0.0
		if n := len(r.ClientAddrs); n > 0 {
			suppressed = 100 * float64(r.SuppressedNotifies) / float64(n)
		}
		flag += fmt.Sprintf("  incremental (dirty %d/%d, suppressed %.0f%%)",
			r.DirtyClients, len(r.ClientAddrs), suppressed)
	}
	if r.Degraded {
		flag = "  DEGRADED (last-good fallback)"
	}
	fmt.Fprintf(w, "last round %d: %s, %d iterations, cost %.2f, %v%s\n",
		r.Round, r.Algorithm, r.Iterations, r.Objective, r.Duration.Round(time.Millisecond), flag)
	if len(r.Assignment) == 0 {
		return
	}
	fmt.Fprintf(w, "assignment (MB, %d clients x %d replicas):\n", len(r.ClientAddrs), len(r.ReplicaAddrs))
	fmt.Fprintf(w, "  %-22s", "")
	for _, rep := range r.ReplicaAddrs {
		fmt.Fprintf(w, " %20s", rep)
	}
	fmt.Fprintln(w)
	for i, row := range r.Assignment {
		client := ""
		if i < len(r.ClientAddrs) {
			client = r.ClientAddrs[i]
		}
		fmt.Fprintf(w, "  %-22s", client)
		for _, mb := range row {
			fmt.Fprintf(w, " %20.2f", mb)
		}
		fmt.Fprintln(w)
	}
}
