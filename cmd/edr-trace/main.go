// Command edr-trace generates, inspects, and windows YouTube-patterned
// workload traces — the request streams behind every experiment in this
// module — as CSV files that edr-bench-style harnesses (or external
// tools) can replay.
//
//	edr-trace -app video -clients 12 -rate 240 -hours 2 -out trace.csv
//	edr-trace -inspect trace.csv -window 1m
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"edr/internal/sim"
	"edr/internal/workload"
)

func main() {
	var (
		app      = flag.String("app", "dfs", "application: video (≈100 MB requests) or dfs (≈10 MB)")
		clients  = flag.Int("clients", 10, "number of distinct clients")
		rate     = flag.Float64("rate", 600, "mean requests/hour across all clients")
		hours    = flag.Float64("hours", 1, "trace duration in hours")
		catalog  = flag.Int("catalog", 1000, "content catalog size (Zipf-popular)")
		seed     = flag.Uint64("seed", 2013, "random seed")
		out      = flag.String("out", "", "write the generated trace to this CSV file ('-' for stdout)")
		inspect  = flag.String("inspect", "", "read a trace CSV and print statistics instead of generating")
		windowMS = flag.Duration("window", time.Minute, "window width for per-window statistics")
	)
	flag.Parse()

	if *inspect != "" {
		inspectTrace(*inspect, *windowMS)
		return
	}

	var a workload.Application
	switch *app {
	case "video":
		a = workload.VideoStreaming
	case "dfs":
		a = workload.DFS
	default:
		log.Fatalf("edr-trace: unknown app %q (want video or dfs)", *app)
	}
	trace, err := workload.Generate(sim.NewRand(*seed), workload.Config{
		App:             a,
		Clients:         *clients,
		CatalogSize:     *catalog,
		MeanRatePerHour: *rate,
		Duration:        time.Duration(*hours * float64(time.Hour)),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "generated %d %s requests, %.0f MB total\n",
		len(trace), a, workload.TotalMB(trace))
	switch *out {
	case "":
		log.Fatal("edr-trace: -out required when generating (use '-' for stdout)")
	case "-":
		if err := workload.WriteCSV(os.Stdout, trace); err != nil {
			log.Fatal(err)
		}
	default:
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := workload.WriteCSV(f, trace); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
	}
}

func inspectTrace(path string, window time.Duration) {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	trace, err := workload.ReadCSV(f)
	if err != nil {
		log.Fatal(err)
	}
	if len(trace) == 0 {
		fmt.Println("empty trace")
		return
	}
	first, last := trace[0].Arrival, trace[len(trace)-1].Arrival
	span := last.Sub(first)
	fmt.Printf("requests: %d over %v (%.0f MB total)\n", len(trace), span.Round(time.Second), workload.TotalMB(trace))

	clients := map[int]int{}
	contents := map[int]int{}
	for _, req := range trace {
		clients[req.Client]++
		contents[req.Content]++
	}
	fmt.Printf("clients: %d distinct; contents: %d distinct\n", len(clients), len(contents))

	count := int(span/window) + 1
	if count > 48 {
		count = 48
	}
	windows := workload.Window(trace, first, window, count)
	fmt.Printf("\n%-8s %8s %10s\n", "window", "requests", "MB")
	for w, batch := range windows {
		fmt.Printf("%-8d %8d %10.0f\n", w, len(batch), workload.TotalMB(batch))
	}
}
