// Command edrd runs one EDR replica server: it listens for client
// requests, participates in the ring fault-tolerance protocol with its
// peers, and periodically initiates distributed scheduling rounds over the
// pending requests using LDDM or CDPSM.
//
// A three-replica fleet on one machine:
//
//	edrd -listen 127.0.0.1:7001 -peers 127.0.0.1:7002,127.0.0.1:7003 -price 1
//	edrd -listen 127.0.0.1:7002 -peers 127.0.0.1:7001,127.0.0.1:7003 -price 8
//	edrd -listen 127.0.0.1:7003 -peers 127.0.0.1:7001,127.0.0.1:7002 -price 3
//
// then submit demand with edrctl. Pass -admin 127.0.0.1:9090 to expose
// the telemetry plane (/metrics, /healthz, /status, /debug/rounds).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"edr/internal/core"
	"edr/internal/engine"
	"edr/internal/membership"
	"edr/internal/model"
	"edr/internal/telemetry"
	"edr/internal/transport"
)

func main() {
	var (
		listen    = flag.String("listen", "127.0.0.1:7001", "address to bind (host:port)")
		peers     = flag.String("peers", "", "comma-separated peer replica addresses")
		price     = flag.Float64("price", 5, "electricity price u_n in ¢/kWh")
		bandwidth = flag.Float64("bandwidth", 100, "bandwidth capacity B_n in MB/s")
		alpha     = flag.Float64("alpha", model.DefaultAlpha, "server-energy weight α_n")
		beta      = flag.Float64("beta", model.DefaultBeta, "network-energy weight β_n")
		gamma     = flag.Float64("gamma", model.DefaultGamma, "network-energy degree γ_n")
		algorithm = flag.String("algorithm", "LDDM", "scheduling algorithm: "+strings.Join(engine.Names(), ", "))
		window    = flag.Duration("batch-window", 2*time.Second, "how often to run a scheduling round over pending requests")
		join      = flag.String("join", "", "live fleet member to join through (proposes this node into the cluster epoch at startup)")

		// Energy-aware elasticity (the autoscaler drains the priciest
		// replica when the fleet idles and powers drained ones back up
		// under load, with hysteresis; see internal/membership.Policy).
		autoscale = flag.Bool("autoscale", false, "evaluate the energy-aware scale policy after every round this node initiates")
		scaleLow  = flag.Float64("scale-low", 0, "utilization floor below which the fleet scales in (0 = default 0.30)")
		scaleHigh = flag.Float64("scale-high", 0, "utilization ceiling above which the fleet scales out (0 = default 0.75)")
		admin     = flag.String("admin", "", "admin-plane bind address (e.g. 127.0.0.1:9090); empty disables telemetry at zero cost")
		roundLog  = flag.Int("round-log", telemetry.DefaultRoundLog, "round reports retained for /debug/rounds")
		heartbeat = flag.Duration("heartbeat", 500*time.Millisecond, "ring heartbeat interval")
		maxIters  = flag.Int("max-iters", 200, "distributed iteration bound per round")

		// Round hot-path performance knobs.
		parallelism = flag.Int("parallelism", 0, "solver-kernel worker count (0 = GOMAXPROCS, -1 = serial)")
		wireJSON    = flag.Bool("wire-json", false, "force JSON bodies on initiated RPCs (disable the compact binary codec; for pre-codec peers)")

		// Client-scale cohort aggregation (internal/cohort): rounds with at
		// least -cohort-min pending requests merge clients sharing a
		// feasibility mask and latency class into virtual clients, solve at
		// cohort granularity, and disaggregate back to exact per-client
		// allocations.
		cohortMin     = flag.Int("cohort-min", 0, "pending-request threshold that enables cohort aggregation (0 disables)")
		cohortQuantum = flag.Duration("cohort-quantum", 0, "latency quantization step for cohort keying (0 = T/4)")
		cohortMax     = flag.Int("cohort-max", 0, "cohort-count bound, enforced by coarsening the quantum (0 = unbounded)")
		cohortDuals   = flag.Bool("cohort-duals", false, "fan each cohort's final dual μ out to every member (client.duals.cohort)")

		// Cross-round incremental re-optimization: diff each round against
		// the committed one and re-solve only the clients that drifted,
		// suppressing notifies for clients whose allocation barely moved.
		incremental = flag.Bool("incremental", false, "re-solve only the dirty client subset on steady-state rounds")
		deltaEps    = flag.Float64("delta-eps", 0, "relative drift threshold for the incremental diff and notify suppression (0 = 1e-3)")

		// Transient-fault tolerance knobs.
		rpcTimeout   = flag.Duration("rpc-timeout", 3*time.Second, "deadline per coordination RPC attempt (lower it when injecting faults: a black-holed send stalls this long)")
		sendRetries  = flag.Int("send-retries", 2, "coordination RPC retries before a failure is attributed to the peer (-1 disables)")
		retryBase    = flag.Duration("retry-base", 50*time.Millisecond, "backoff before the first RPC retry; doubles per attempt with jitter")
		roundRetries = flag.Int("round-retries", 3, "round restarts after member failures before degrading (-1 disables)")
		suspectAfter = flag.Int("suspect-after", 3, "consecutive missed heartbeats before a successor is declared dead")

		// Fault injection (testing only): wraps the TCP fabric when any is
		// set, so a fleet can rehearse loss, latency, and duplication.
		faultDrop   = flag.Float64("fault-drop", 0, "probability [0,1) an outgoing RPC is black-holed")
		faultDup    = flag.Float64("fault-dup", 0, "probability [0,1) an outgoing RPC is duplicated")
		faultDelay  = flag.Duration("fault-delay", 0, "fixed extra latency per outgoing RPC")
		faultJitter = flag.Duration("fault-jitter", 0, "random extra latency in [0, jitter) per outgoing RPC")
		faultSeed   = flag.Uint64("fault-seed", 1, "seed for the fault-injection RNG")
	)
	flag.Parse()

	alg, err := core.ParseAlgorithm(*algorithm)
	if err != nil {
		log.Fatal(err)
	}
	rep := model.Replica{
		Name:      *listen,
		Price:     *price,
		Alpha:     *alpha,
		Beta:      *beta,
		Gamma:     *gamma,
		Bandwidth: *bandwidth,
	}
	var members []string
	for _, p := range strings.Split(*peers, ",") {
		if p = strings.TrimSpace(p); p != "" {
			members = append(members, p)
		}
	}
	var network transport.Network = transport.NewTCPNetwork()
	if *faultDrop > 0 || *faultDup > 0 || *faultDelay > 0 || *faultJitter > 0 {
		faulty := transport.NewFaultyNetwork(network, *faultSeed)
		faulty.SetDefault(transport.Faults{
			Drop:   *faultDrop,
			Dup:    *faultDup,
			Delay:  *faultDelay,
			Jitter: *faultJitter,
		})
		network = faulty
		log.Printf("edrd: fault injection on (drop %g, dup %g, delay %s, jitter %s, seed %d)",
			*faultDrop, *faultDup, *faultDelay, *faultJitter, *faultSeed)
	}
	// Observability is opt-in: without -admin there is no bus, no metric
	// registry, and no transport wrapper — the round hot path pays only
	// nil checks (see the benchmark pair in bench_test.go).
	var (
		bus       *telemetry.Bus
		collector *telemetry.Collector
	)
	if *admin != "" {
		bus = telemetry.NewBus()
		collector = telemetry.NewCollector(*roundLog)
		collector.Attach(bus)
		// Instrumented wraps outermost so injected faults are counted too.
		network = transport.NewInstrumented(network, collector.Registry, bus)
	}
	server, err := core.NewReplicaServer(network, *listen, members, core.ReplicaConfig{
		Replica:      rep,
		Algorithm:    alg,
		MaxIters:     *maxIters,
		RPCTimeout:   *rpcTimeout,
		SendRetries:  *sendRetries,
		RetryBase:    *retryBase,
		RoundRetries: *roundRetries,
		Parallelism:  *parallelism,
		WireJSON:     *wireJSON,
		Telemetry:    bus,

		CohortMinClients: *cohortMin,
		CohortQuantumSec: cohortQuantum.Seconds(),
		CohortMax:        *cohortMax,
		CohortDuals:      *cohortDuals,

		Incremental: *incremental,
		DeltaEps:    *deltaEps,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer server.Close()
	if *admin != "" {
		adminSrv, err := telemetry.ServeAdmin(*admin, telemetry.AdminConfig{
			Registry: collector.Registry,
			Status:   func() any { return server.Status() },
			Rounds:   collector.Rounds,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer adminSrv.Close()
		log.Printf("edrd: admin plane on http://%s (/metrics /healthz /status /debug/rounds)", adminSrv.Addr())
	}

	server.Monitor().Interval = *heartbeat
	server.Monitor().SuspectAfter = *suspectAfter
	server.Monitor().OnFailure = func(dead string) {
		log.Printf("ring: member %s declared dead; ring now %s", dead, server.Ring().Snapshot())
	}
	server.Monitor().Start()
	log.Printf("edrd: replica %s up (price %g ¢/kWh, B %g MB/s, %s); ring %s",
		server.Addr(), *price, *bandwidth, alg, server.Ring().Snapshot())

	ctx, cancel := context.WithCancel(context.Background())
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-stop
		fmt.Println("edrd: shutting down")
		cancel()
	}()

	if *join != "" {
		epoch, err := server.Membership().JoinVia(ctx, *join)
		if err != nil {
			log.Fatalf("edrd: join via %s: %v", *join, err)
		}
		log.Printf("edrd: joined epoch %d via %s; ring %s", epoch.Seq, *join, server.Ring().Snapshot())
	}

	var policy *membership.Policy
	if *autoscale {
		policy = &membership.Policy{LowUtil: *scaleLow, HighUtil: *scaleHigh}
	}
	server.ServeRounds(ctx, *window,
		func(report *core.RoundReport) {
			extra := ""
			if report.WarmStarted {
				extra = " (warm-started)"
			}
			if report.Cohorts > 0 {
				extra += fmt.Sprintf(" [%d cohorts, %.1fx]", report.Cohorts, report.CohortRatio)
			}
			if report.Incremental {
				extra += fmt.Sprintf(" [incremental dirty %d/%d, suppressed %.0f%%]",
					report.DirtyClients, len(report.ClientAddrs),
					100*float64(report.SuppressedNotifies)/math.Max(1, float64(len(report.ClientAddrs))))
			}
			if report.Degraded {
				extra = " DEGRADED (last-good fallback)"
			}
			log.Printf("round %d (%s): %d clients over %d replicas in %d iterations, cost %.2f, restarts %d%s",
				report.Round, report.Algorithm, len(report.ClientAddrs), len(report.ReplicaAddrs),
				report.Iterations, report.Objective, report.Restarts, extra)
			if policy != nil {
				d, applied, err := server.AutoScale(ctx, policy)
				switch {
				case err != nil:
					log.Printf("autoscale: %s %s failed: %v", d.Action, d.Target, err)
				case applied:
					log.Printf("autoscale: %s %s (utilization %.2f, %s); epoch %d",
						d.Action, d.Target, d.Util, d.Reason, server.Membership().Current().Seq)
				}
			}
		},
		func(err error) { log.Printf("round failed: %v", err) },
	)
}
