// Command edrd runs one EDR replica server: it listens for client
// requests, participates in the ring fault-tolerance protocol with its
// peers, and periodically initiates distributed scheduling rounds over the
// pending requests using LDDM or CDPSM.
//
// A three-replica fleet on one machine:
//
//	edrd -listen 127.0.0.1:7001 -peers 127.0.0.1:7002,127.0.0.1:7003 -price 1
//	edrd -listen 127.0.0.1:7002 -peers 127.0.0.1:7001,127.0.0.1:7003 -price 8
//	edrd -listen 127.0.0.1:7003 -peers 127.0.0.1:7001,127.0.0.1:7002 -price 3
//
// then submit demand with edrctl.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"edr/internal/core"
	"edr/internal/model"
	"edr/internal/transport"
)

func main() {
	var (
		listen    = flag.String("listen", "127.0.0.1:7001", "address to bind (host:port)")
		peers     = flag.String("peers", "", "comma-separated peer replica addresses")
		price     = flag.Float64("price", 5, "electricity price u_n in ¢/kWh")
		bandwidth = flag.Float64("bandwidth", 100, "bandwidth capacity B_n in MB/s")
		alpha     = flag.Float64("alpha", model.DefaultAlpha, "server-energy weight α_n")
		beta      = flag.Float64("beta", model.DefaultBeta, "network-energy weight β_n")
		gamma     = flag.Float64("gamma", model.DefaultGamma, "network-energy degree γ_n")
		algorithm = flag.String("algorithm", "LDDM", "scheduling algorithm: LDDM, CDPSM or ADMM")
		window    = flag.Duration("batch-window", 2*time.Second, "how often to run a scheduling round over pending requests")
		heartbeat = flag.Duration("heartbeat", 500*time.Millisecond, "ring heartbeat interval")
		maxIters  = flag.Int("max-iters", 200, "distributed iteration bound per round")
	)
	flag.Parse()

	alg, err := core.ParseAlgorithm(*algorithm)
	if err != nil {
		log.Fatal(err)
	}
	rep := model.Replica{
		Name:      *listen,
		Price:     *price,
		Alpha:     *alpha,
		Beta:      *beta,
		Gamma:     *gamma,
		Bandwidth: *bandwidth,
	}
	var members []string
	for _, p := range strings.Split(*peers, ",") {
		if p = strings.TrimSpace(p); p != "" {
			members = append(members, p)
		}
	}
	server, err := core.NewReplicaServer(transport.NewTCPNetwork(), *listen, members, core.ReplicaConfig{
		Replica:   rep,
		Algorithm: alg,
		MaxIters:  *maxIters,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer server.Close()

	server.Monitor().Interval = *heartbeat
	server.Monitor().OnFailure = func(dead string) {
		log.Printf("ring: member %s declared dead; ring now %s", dead, server.Ring().Snapshot())
	}
	server.Monitor().Start()
	log.Printf("edrd: replica %s up (price %g ¢/kWh, B %g MB/s, %s); ring %s",
		server.Addr(), *price, *bandwidth, alg, server.Ring().Snapshot())

	ctx, cancel := context.WithCancel(context.Background())
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-stop
		fmt.Println("edrd: shutting down")
		cancel()
	}()
	server.ServeRounds(ctx, *window,
		func(report *core.RoundReport) {
			log.Printf("round %d (%s): %d clients over %d replicas in %d iterations, cost %.2f, restarts %d",
				report.Round, report.Algorithm, len(report.ClientAddrs), len(report.ReplicaAddrs),
				report.Iterations, report.Objective, report.Restarts)
		},
		func(err error) { log.Printf("round failed: %v", err) },
	)
}
