package edr_test

// End-to-end test of the shipped binaries: build edrd/edrctl into a temp
// directory, boot a three-replica fleet on loopback, and drive a real
// client through submission, allocation, and download. Skipped in -short
// mode (it compiles binaries and sleeps through batch windows).

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// freePorts reserves n distinct loopback ports.
func freePorts(t *testing.T, n int) []int {
	t.Helper()
	ports := make([]int, n)
	listeners := make([]net.Listener, n)
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = l
		ports[i] = l.Addr().(*net.TCPAddr).Port
	}
	for _, l := range listeners {
		l.Close()
	}
	return ports
}

func TestBinariesEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("binary e2e skipped in -short mode")
	}
	bin := t.TempDir()
	for _, tool := range []string{"edrd", "edrctl"} {
		out, err := exec.Command("go", "build", "-o", filepath.Join(bin, tool), "./cmd/"+tool).CombinedOutput()
		if err != nil {
			t.Fatalf("build %s: %v\n%s", tool, err, out)
		}
	}

	ports := freePorts(t, 4)
	addrs := make([]string, 3)
	for i, p := range ports[:3] {
		addrs[i] = fmt.Sprintf("127.0.0.1:%d", p)
	}
	adminAddr := fmt.Sprintf("127.0.0.1:%d", ports[3])
	prices := []string{"1", "8", "3"}
	var daemons []*exec.Cmd
	for i := range addrs {
		peers := make([]string, 0, 2)
		for j := range addrs {
			if j != i {
				peers = append(peers, addrs[j])
			}
		}
		args := []string{
			"-listen", addrs[i],
			"-peers", strings.Join(peers, ","),
			"-price", prices[i],
			"-batch-window", "300ms",
		}
		if i == 0 {
			// The first replica also exposes the admin plane so the test
			// can exercise edrctl status against a real daemon.
			args = append(args, "-admin", adminAddr)
		}
		cmd := exec.Command(filepath.Join(bin, "edrd"), args...)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		daemons = append(daemons, cmd)
	}
	t.Cleanup(func() {
		for _, d := range daemons {
			_ = d.Process.Kill()
			_ = d.Wait()
		}
	})

	// Wait until every daemon accepts connections.
	deadline := time.Now().Add(10 * time.Second)
	for _, addr := range addrs {
		for {
			conn, err := net.DialTimeout("tcp", addr, 200*time.Millisecond)
			if err == nil {
				conn.Close()
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("daemon %s never came up", addr)
			}
			time.Sleep(50 * time.Millisecond)
		}
	}

	out, err := exec.Command(filepath.Join(bin, "edrctl"),
		"-replicas", strings.Join(addrs, ","),
		"-demand", "30",
		"-download",
		"-timeout", "30s",
	).CombinedOutput()
	if err != nil {
		t.Fatalf("edrctl: %v\n%s", err, out)
	}
	text := string(out)
	for _, want := range []string{"allocation (round", "LDDM", "downloaded"} {
		if !strings.Contains(text, want) {
			t.Fatalf("edrctl output missing %q:\n%s", want, text)
		}
	}

	// The contact replica ran the round, so its admin plane must show it.
	out, err = exec.Command(filepath.Join(bin, "edrctl"),
		"status", "-admin", adminAddr, "-timeout", "10s",
	).CombinedOutput()
	if err != nil {
		t.Fatalf("edrctl status: %v\n%s", err, out)
	}
	text = string(out)
	for _, want := range []string{
		"replica   " + addrs[0],
		"ring",
		"last round 1: LDDM",
		"assignment (MB, 1 clients x 3 replicas):",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("edrctl status output missing %q:\n%s", want, text)
		}
	}
}
