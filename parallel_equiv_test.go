package edr_test

import (
	"math"
	"reflect"
	"testing"

	"edr/internal/admm"
	"edr/internal/cdpsm"
	"edr/internal/lddm"
	"edr/internal/probgen"
	"edr/internal/sim"
	"edr/internal/solver"
)

// The parallel kernels' determinism contract: every fanned-out unit
// writes disjoint state and computes exactly what the serial loop would,
// so a parallel solve must be bit-for-bit identical to the serial one —
// same assignment, same objective, same history, same iteration count.
// The instance is paper scale (C=100, N=10) so it clears the work gates
// and the parallel paths actually run.
func TestParallelSolversMatchSerialBitForBit(t *testing.T) {
	prob, err := probgen.MustFeasible(sim.NewRand(2026), probgen.Spec{
		Clients: 100, Replicas: 10, Geo: true, DemandLo: 1, DemandHi: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		mk   func(parallelism int) solver.Solver
	}{
		{"CDPSM", func(p int) solver.Solver {
			s := cdpsm.New()
			s.MaxIters = 8
			s.Parallelism = p
			return s
		}},
		{"LDDM", func(p int) solver.Solver {
			s := lddm.New()
			s.MaxIters = 60
			s.Parallelism = p
			return s
		}},
		{"ADMM", func(p int) solver.Solver {
			s := admm.New()
			s.MaxIters = 25
			s.Parallelism = p
			return s
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			serial, err := tc.mk(-1).Solve(prob)
			if err != nil {
				t.Fatal(err)
			}
			parallel, err := tc.mk(8).Solve(prob)
			if err != nil {
				t.Fatal(err)
			}
			if b1, b2 := math.Float64bits(serial.Objective), math.Float64bits(parallel.Objective); b1 != b2 {
				t.Fatalf("objective differs: serial %x (%g) parallel %x (%g)",
					b1, serial.Objective, b2, parallel.Objective)
			}
			if !reflect.DeepEqual(serial.Assignment, parallel.Assignment) {
				for i := range serial.Assignment {
					for j := range serial.Assignment[i] {
						if serial.Assignment[i][j] != parallel.Assignment[i][j] {
							t.Fatalf("assignment[%d][%d]: serial %g parallel %g",
								i, j, serial.Assignment[i][j], parallel.Assignment[i][j])
						}
					}
				}
				t.Fatal("assignments differ in shape")
			}
			if !reflect.DeepEqual(serial, parallel) {
				t.Fatalf("results differ beyond assignment/objective:\nserial   %+v\nparallel %+v", serial, parallel)
			}
		})
	}
}
