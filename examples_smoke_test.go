package edr_test

// Smoke tests that every example still builds and runs to completion —
// examples rot silently otherwise. Each runs as a subprocess with a
// deadline; skipped in -short mode.

import (
	"os/exec"
	"strings"
	"testing"
	"time"
)

func runExample(t *testing.T, name string, wantOutput ...string) {
	t.Helper()
	if testing.Short() {
		t.Skip("example smoke tests skipped in -short mode")
	}
	done := make(chan struct{})
	cmd := exec.Command("go", "run", "./examples/"+name)
	var out []byte
	var err error
	go func() {
		out, err = cmd.CombinedOutput()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(3 * time.Minute):
		_ = cmd.Process.Kill()
		t.Fatalf("example %s timed out", name)
	}
	if err != nil {
		t.Fatalf("example %s failed: %v\n%s", name, err, out)
	}
	for _, want := range wantOutput {
		if !strings.Contains(string(out), want) {
			t.Fatalf("example %s output missing %q:\n%s", name, want, out)
		}
	}
}

func TestExampleQuickstart(t *testing.T) {
	runExample(t, "quickstart", "total energy cost", "downloaded")
}

func TestExampleVideoStreaming(t *testing.T) {
	runExample(t, "videostreaming", "Round-Robin", "LDDM")
}

func TestExampleDFS(t *testing.T) {
	runExample(t, "dfs", "per-replica serving plan", "downloaded")
}

func TestExampleFaultTolerance(t *testing.T) {
	runExample(t, "faulttolerance",
		"suspected successor", "not dead yet", // transient fault → suspicion only
		"degraded: true", // partition → last-good fallback
		"declared dead", "service continued uninterrupted")
}

func TestExampleDonarCompare(t *testing.T) {
	runExample(t, "donarcompare", "DONAR pays on average")
}

func TestExampleDynamicPricing(t *testing.T) {
	runExample(t, "dynamicpricing", "day total", "saved")
}

func TestExampleAlgorithms(t *testing.T) {
	runExample(t, "algorithms", "LDDM", "CDPSM", "ADMM", "same energy-cost optimum")
}

func TestExampleSteadyState(t *testing.T) {
	runExample(t, "steadystate", "LDDM", "Round-Robin", "where")
}

func TestExampleObservability(t *testing.T) {
	runExample(t, "observability",
		"admin plane listening",
		"trajectory:",                 // healthy round with recorded residuals
		"degraded after r3 failed",    // degraded event on the bus
		"edr_rounds_degraded_total 1", // Prometheus exposition
		`edr_rounds_total{algorithm="LDDM"} 2`,
	)
}
