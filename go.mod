module edr

go 1.22
