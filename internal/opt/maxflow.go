package opt

import (
	"fmt"
	"math"
)

// Feasibility of an EDR instance is a transportation problem: demand R_c
// must route from each client to latency-feasible replicas without
// exceeding any capacity B_n. We decide it exactly with a max-flow
// computation on the bipartite graph
//
//	source → client c   (capacity R_c)
//	client c → replica n (capacity R_c, present iff l_{c,n} ≤ T)
//	replica n → sink     (capacity B_n)
//
// The instance is feasible iff max flow = Σ R_c. Edmonds-Karp (BFS
// augmenting paths) is ample at paper scale.

type flowEdge struct {
	to, rev int // target vertex; index of reverse edge in graph[to]
	cap     float64
}

type flowGraph struct {
	adj [][]flowEdge
}

func newFlowGraph(vertices int) *flowGraph {
	return &flowGraph{adj: make([][]flowEdge, vertices)}
}

func (g *flowGraph) addEdge(from, to int, capacity float64) {
	g.adj[from] = append(g.adj[from], flowEdge{to: to, rev: len(g.adj[to]), cap: capacity})
	g.adj[to] = append(g.adj[to], flowEdge{to: from, rev: len(g.adj[from]) - 1, cap: 0})
}

// maxFlow runs Edmonds-Karp from s to t and returns the attained flow.
func (g *flowGraph) maxFlow(s, t int) float64 {
	total := 0.0
	for {
		// BFS for a shortest augmenting path.
		parentV := make([]int, len(g.adj))
		parentE := make([]int, len(g.adj))
		for i := range parentV {
			parentV[i] = -1
		}
		parentV[s] = s
		queue := []int{s}
		for len(queue) > 0 && parentV[t] == -1 {
			v := queue[0]
			queue = queue[1:]
			for ei, e := range g.adj[v] {
				if e.cap > 1e-12 && parentV[e.to] == -1 {
					parentV[e.to] = v
					parentE[e.to] = ei
					queue = append(queue, e.to)
				}
			}
		}
		if parentV[t] == -1 {
			return total
		}
		// Bottleneck along the path.
		bottleneck := math.Inf(1)
		for v := t; v != s; v = parentV[v] {
			e := g.adj[parentV[v]][parentE[v]]
			bottleneck = math.Min(bottleneck, e.cap)
		}
		// Augment.
		for v := t; v != s; v = parentV[v] {
			e := &g.adj[parentV[v]][parentE[v]]
			e.cap -= bottleneck
			g.adj[e.to][e.rev].cap += bottleneck
		}
		total += bottleneck
	}
}

// CheckFeasible decides whether prob admits any assignment satisfying all
// constraints, via max flow. It returns nil when feasible and a diagnostic
// error (including the shortfall) otherwise.
func CheckFeasible(prob *Problem) error {
	if err := prob.Validate(); err != nil {
		return err
	}
	c, n := prob.C(), prob.N()
	mask := prob.Allowed()
	// Vertices: 0 = source, 1..c = clients, c+1..c+n = replicas, c+n+1 = sink.
	source, sink := 0, c+n+1
	g := newFlowGraph(c + n + 2)
	want := 0.0
	for i, r := range prob.Demands {
		g.addEdge(source, 1+i, r)
		want += r
		for j := 0; j < n; j++ {
			if mask[i][j] {
				g.addEdge(1+i, 1+c+j, r)
			}
		}
	}
	for j := 0; j < n; j++ {
		g.addEdge(1+c+j, sink, prob.System.Replicas[j].Bandwidth)
	}
	got := g.maxFlow(source, sink)
	if got < want-1e-6*(1+want) {
		return fmt.Errorf("opt: infeasible instance: only %g of %g MB routable under capacity and latency constraints", got, want)
	}
	return nil
}

// FeasiblePoint computes one feasible assignment by extracting the flow on
// client→replica edges after running max flow. Returns an error when the
// instance is infeasible.
func FeasiblePoint(prob *Problem) ([][]float64, error) {
	if err := prob.Validate(); err != nil {
		return nil, err
	}
	c, n := prob.C(), prob.N()
	mask := prob.Allowed()
	source, sink := 0, c+n+1
	g := newFlowGraph(c + n + 2)
	want := 0.0
	// Remember original capacities of client→replica edges to recover flow.
	type edgeRef struct{ client, replica, idx int }
	var refs []edgeRef
	for i, r := range prob.Demands {
		g.addEdge(source, 1+i, r)
		want += r
		for j := 0; j < n; j++ {
			if mask[i][j] {
				refs = append(refs, edgeRef{client: i, replica: j, idx: len(g.adj[1+i])})
				g.addEdge(1+i, 1+c+j, r)
			}
		}
	}
	for j := 0; j < n; j++ {
		g.addEdge(1+c+j, sink, prob.System.Replicas[j].Bandwidth)
	}
	got := g.maxFlow(source, sink)
	if got < want-1e-6*(1+want) {
		return nil, fmt.Errorf("opt: infeasible instance: only %g of %g MB routable", got, want)
	}
	x := NewMatrix(c, n)
	for _, ref := range refs {
		e := g.adj[1+ref.client][ref.idx]
		flow := prob.Demands[ref.client] - e.cap // original − residual
		if flow > 1e-12 {
			x[ref.client][ref.replica] = flow
		}
	}
	return x, nil
}
