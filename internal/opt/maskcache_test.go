package opt

import "testing"

// The cross-round cohort cache re-primes Problems with masks and sparsity
// views that outlive the Problem they were built for, which makes the
// PrimeMask/InvalidateMask interaction load-bearing: an invalidated
// problem must never serve a previously primed (now stale) Sparsity, and
// a re-primed problem must serve exactly the primed objects.
func TestInvalidateMaskDropsPrimedSparsity(t *testing.T) {
	p := testProblem(t, []float64{1, 5}, []float64{10, 20})
	p.Latency[0][1] = 0.005 // infeasible pair, so the real mask is non-trivial

	// Prime with a deliberately different (all-true) mask.
	primedMask := [][]bool{{true, true}, {true, true}}
	primedSp := NewSparsity(primedMask)
	p.PrimeMask(primedMask, primedSp)
	if got := p.Sparsity(); got != primedSp {
		t.Fatal("primed sparsity not served back")
	}
	if !p.Allowed()[0][1] {
		t.Fatal("primed mask not served back")
	}

	// Invalidate: both caches must be rebuilt from Latency, not retained.
	p.InvalidateMask()
	if got := p.Sparsity(); got == primedSp {
		t.Fatal("InvalidateMask kept serving the stale primed Sparsity")
	}
	if p.Allowed()[0][1] {
		t.Fatal("InvalidateMask kept serving the stale primed mask")
	}
	if sp := p.Sparsity(); sp.RowStart[1]-sp.RowStart[0] != 1 {
		t.Fatalf("rebuilt sparsity has %d entries in row 0, want 1", sp.RowStart[1]-sp.RowStart[0])
	}
}

// Priming a mask without a sparsity view must build the view from the
// primed mask on first use — not from Latency, and not from any view the
// problem served earlier.
func TestPrimeMaskNilSparsityBuildsFromPrimedMask(t *testing.T) {
	p := testProblem(t, []float64{1, 5}, []float64{10, 20})
	before := p.Sparsity() // latency-derived, full density
	primedMask := [][]bool{{true, false}, {false, true}}
	p.PrimeMask(primedMask, nil)
	sp := p.Sparsity()
	if sp == before {
		t.Fatal("PrimeMask(mask, nil) served the pre-prime sparsity")
	}
	if sp.RowStart[2] != 2 {
		t.Fatalf("sparsity has %d entries, want 2 (from primed mask)", sp.RowStart[2])
	}
}

func TestPrimeMaskDimensionPanics(t *testing.T) {
	p := testProblem(t, []float64{1, 5}, []float64{10, 20})
	defer func() {
		if recover() == nil {
			t.Fatal("PrimeMask with wrong row count did not panic")
		}
	}()
	p.PrimeMask([][]bool{{true, true}}, nil)
}
