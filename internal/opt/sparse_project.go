package opt

import (
	"fmt"
	"math"
)

// SparseProjector is Dykstra's alternating projection specialized to the
// packed CSR layout: it projects packed iterates onto the intersection of
// the per-client capped simplexes {Σ_n p = R_c, 0 ≤ p ≤ R_c} and the
// per-replica capacity halfspaces {Σ_c p ≤ bound_n}, all restricted to the
// mask support. Three structural facts make it cheaper than the dense
// generic Dykstra:
//
//   - row projections operate on contiguous row segments of the packed
//     vector — no gather, no per-call allocation;
//   - the halfspace projection shifts every entry of a column by the same
//     amount, so the column-set correction is one scalar per column
//     instead of a correction matrix;
//   - per-replica column sums S_n are maintained incrementally: the row
//     phase records per-entry deltas, which are folded into S per column
//     in fixed CSC order (so results never depend on how rows were chunked
//     across workers), and columns whose maintained sum already satisfies
//     their bound are skipped in O(1).
//
// A projector is built once per (sparsity, demands, bounds) triple and
// reused across Project calls; it is not safe for concurrent use.
type SparseProjector struct {
	sp      *Sparsity
	demands []float64
	// bounds holds the per-column capacity; +Inf marks an unconstrained
	// column (CDPSM's local sets bound only the agent's own column).
	bounds []float64
	par    *Parallel

	corrRow  []float64   // packed row-set Dykstra corrections
	colCorr  []float64   // per-column scalar halfspace corrections
	dRow     []float64   // packed per-entry deltas from the row phase
	s        []float64   // maintained column sums of the iterate
	rowDist2 []float64   // per-row squared movement for the membership check
	caps     [][]float64 // per-chunk sort scratch for the row simplex projections
	scratch  [][]float64 // per-chunk row-copy scratch for membership checks
}

// NewSparseProjector builds a projector over sp with per-client demands and
// per-column capacity bounds (use math.Inf(1) for unconstrained columns).
// The row sweeps fan over par (nil = serial, identical results).
func NewSparseProjector(sp *Sparsity, demands, bounds []float64, par *Parallel) *SparseProjector {
	if len(demands) != sp.C || len(bounds) != sp.N {
		panic(fmt.Sprintf("opt: NewSparseProjector got %d demands, %d bounds for %d×%d sparsity",
			len(demands), len(bounds), sp.C, sp.N))
	}
	par = par.Gate(sp.NNZ())
	pj := &SparseProjector{
		sp:       sp,
		demands:  demands,
		bounds:   bounds,
		par:      par,
		corrRow:  make([]float64, sp.NNZ()),
		colCorr:  make([]float64, sp.N),
		dRow:     make([]float64, sp.NNZ()),
		s:        make([]float64, sp.N),
		rowDist2: make([]float64, sp.C),
	}
	chunks := par.Chunks(sp.C)
	pj.caps = make([][]float64, chunks)
	pj.scratch = make([][]float64, chunks)
	for i := range pj.caps {
		pj.caps[i] = make([]float64, sp.MaxRowNNZ())
		pj.scratch[i] = make([]float64, sp.MaxRowNNZ())
	}
	return pj
}

// Project runs Dykstra sweeps on packed v in place until v is within
// opts.Tol of both set families or MaxSweeps is exhausted, returning the
// sweep count. Callers wanting exact demand rows afterwards (Dykstra may
// stop on the column set) follow with FinishRows.
func (pj *SparseProjector) Project(v []float64, opts DykstraOptions) (int, error) {
	opts.defaults()
	sp := pj.sp
	if len(v) != sp.NNZ() {
		panic(fmt.Sprintf("opt: Project got %d-slot vector for %d nnz", len(v), sp.NNZ()))
	}
	VecFill(pj.corrRow, 0)
	VecFill(pj.colCorr, 0)
	sp.ColSumsInto(pj.s, v)
	for sweep := 1; sweep <= opts.MaxSweeps; sweep++ {
		if err := pj.rowPhase(v); err != nil {
			return sweep, err
		}
		pj.applyRowDeltas()
		pj.colPhase(v)
		ok, err := pj.converged(v, opts.Tol)
		if err != nil {
			return sweep, err
		}
		if ok {
			return sweep, nil
		}
	}
	return opts.MaxSweeps, nil
}

// rowPhase is one Dykstra pass over the row sets: add the row corrections,
// project each contiguous row segment onto its capped simplex, and record
// both the new corrections and the per-entry deltas for the S_n update.
func (pj *SparseProjector) rowPhase(v []float64) error {
	sp := pj.sp
	return pj.par.ForBalancedErr(sp.C, sp.RowStart, func(chunk, lo, hi int) error {
		caps := pj.caps[chunk]
		for c := lo; c < hi; c++ {
			rs, re := sp.RowStart[c], sp.RowStart[c+1]
			r := pj.demands[c]
			if rs == re {
				if r > 1e-12 {
					return fmt.Errorf("opt: client %d has no feasible replica for demand %g", c, r)
				}
				continue
			}
			seg, cr, d := v[rs:re], pj.corrRow[rs:re], pj.dRow[rs:re]
			for k := range seg {
				d[k] = seg[k] // stash the pre-sweep value
				seg[k] += cr[k]
			}
			// The row set {Σy = r, 0 ≤ y ≤ r} is the plain simplex: the
			// per-entry cap r is implied by Σy = r, y ≥ 0, so the exact
			// sort-based projection replaces the capped bisection.
			ProjectSimplexScratch(seg, caps, r)
			for k := range seg {
				y := d[k] + cr[k]
				cr[k] = y - seg[k]
				d[k] = seg[k] - d[k]
			}
		}
		return nil
	})
}

// applyRowDeltas folds the row phase's per-entry deltas into the maintained
// column sums. Each column consumes its deltas in fixed CSC order, so S is
// identical however the row phase was chunked.
func (pj *SparseProjector) applyRowDeltas() {
	sp := pj.sp
	pj.par.ForBalanced(sp.N, sp.ColStart, func(_, lo, hi int) {
		for n := lo; n < hi; n++ {
			s := pj.s[n]
			for k := sp.ColStart[n]; k < sp.ColStart[n+1]; k++ {
				s += pj.dRow[sp.PosCSR[k]]
			}
			pj.s[n] = s
		}
	})
}

// colPhase is one Dykstra pass over the column halfspaces. Because the
// halfspace projection is a uniform shift, the whole per-column step runs
// off the maintained sum: satisfied columns with no pending correction are
// skipped without touching their entries.
func (pj *SparseProjector) colPhase(v []float64) {
	sp := pj.sp
	pj.par.ForBalanced(sp.N, sp.ColStart, func(_, lo, hi int) {
		for n := lo; n < hi; n++ {
			cs, ce := sp.ColStart[n], sp.ColStart[n+1]
			cnt := ce - cs
			if cnt == 0 {
				continue
			}
			corr := pj.colCorr[n]
			b := pj.bounds[n]
			if corr == 0 && pj.s[n] <= b {
				continue
			}
			sumY := pj.s[n] + float64(cnt)*corr
			if sumY <= b {
				for k := cs; k < ce; k++ {
					v[sp.PosCSR[k]] += corr
				}
				pj.s[n] = sumY
				pj.colCorr[n] = 0
				continue
			}
			shift := (sumY - b) / float64(cnt)
			if add := corr - shift; add != 0 {
				for k := cs; k < ce; k++ {
					v[sp.PosCSR[k]] += add
				}
			}
			pj.s[n] = sumY - shift*float64(cnt)
			pj.colCorr[n] = shift
		}
	})
}

// converged reports whether v is within tol of every set: column
// memberships read off the maintained sums in O(N), row memberships project
// per-row scratch copies (the same membership test the dense Dykstra runs).
// Squared row movements accumulate per row and reduce in ascending row
// order, keeping the stop decision chunk-independent.
func (pj *SparseProjector) converged(v []float64, tol float64) (bool, error) {
	sp := pj.sp
	colDist2 := 0.0
	for n := 0; n < sp.N; n++ {
		cnt := sp.ColNNZ(n)
		if cnt == 0 {
			continue
		}
		if ex := pj.s[n] - pj.bounds[n]; ex > 0 {
			colDist2 += ex * ex / float64(cnt)
		}
	}
	if colDist2 > tol*tol {
		return false, nil
	}
	err := pj.par.ForBalancedErr(sp.C, sp.RowStart, func(chunk, lo, hi int) error {
		caps, scr := pj.caps[chunk], pj.scratch[chunk]
		for c := lo; c < hi; c++ {
			rs, re := sp.RowStart[c], sp.RowStart[c+1]
			pj.rowDist2[c] = 0
			if rs == re {
				continue
			}
			r := pj.demands[c]
			s := scr[:re-rs]
			copy(s, v[rs:re])
			ProjectSimplexScratch(s, caps, r)
			d2 := 0.0
			for k := range s {
				diff := s[k] - v[rs+k]
				d2 += diff * diff
			}
			pj.rowDist2[c] = d2
		}
		return nil
	})
	if err != nil {
		return false, err
	}
	total := 0.0
	for _, d2 := range pj.rowDist2 {
		total += d2
	}
	return total <= tol*tol, nil
}

// FinishRows projects every row of v exactly onto its capped simplex (no
// corrections), so the demand equalities hold exactly even when Dykstra
// stopped on the column set — the packed counterpart of the dense final
// row pass.
func (pj *SparseProjector) FinishRows(v []float64) error {
	sp := pj.sp
	return pj.par.ForBalancedErr(sp.C, sp.RowStart, func(chunk, lo, hi int) error {
		caps := pj.caps[chunk]
		for c := lo; c < hi; c++ {
			rs, re := sp.RowStart[c], sp.RowStart[c+1]
			r := pj.demands[c]
			if rs == re {
				if r > 1e-12 {
					return fmt.Errorf("opt: client %d has no feasible replica for demand %g", c, r)
				}
				continue
			}
			seg := v[rs:re]
			ProjectSimplexScratch(seg, caps, r)
		}
		return nil
	})
}

// ProjectFeasibleSp projects dense x onto the feasible region of prob via
// the packed sparse projector: off-support entries are zeroed (the
// projection onto the mask subspace — the feasible set lies inside it), the
// packed iterate is Dykstra-projected with incrementally maintained column
// sums, rows get a final exact pass, and the result is scattered back and
// verified like the dense path.
func ProjectFeasibleSp(prob *Problem, x [][]float64, tol float64, par *Parallel) error {
	if tol <= 0 {
		tol = 1e-6
	}
	sp := prob.Sparsity()
	bounds := make([]float64, sp.N)
	for n := range bounds {
		bounds[n] = prob.System.Replicas[n].Bandwidth
	}
	pj := NewSparseProjector(sp, prob.Demands, bounds, par)
	v := sp.Gather(nil, x)
	if _, err := pj.Project(v, DykstraOptions{MaxSweeps: 5000, Tol: tol / 10}); err != nil {
		return err
	}
	if err := pj.FinishRows(v); err != nil {
		return err
	}
	sp.Scatter(x, v)
	if viol := prob.Violation(x); viol > tol && !math.IsNaN(viol) {
		return fmt.Errorf("opt: projection left violation %g > tol %g (instance may be infeasible)", viol, tol)
	}
	return nil
}
