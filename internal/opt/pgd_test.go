package opt

import (
	"math"
	"testing"

	"edr/internal/sim"
)

func TestConstantStep(t *testing.T) {
	s := ConstantStep(0.5)
	if s(1) != 0.5 || s(100) != 0.5 {
		t.Fatal("ConstantStep not constant")
	}
}

func TestConstantStepNonPositivePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ConstantStep(0) did not panic")
		}
	}()
	ConstantStep(0)
}

func TestDiminishingStep(t *testing.T) {
	s := DiminishingStep(2)
	if s(1) != 2 {
		t.Fatalf("s(1) = %g", s(1))
	}
	if math.Abs(s(4)-1) > 1e-12 {
		t.Fatalf("s(4) = %g, want 1", s(4))
	}
	if s(9) >= s(4) {
		t.Fatal("DiminishingStep not decreasing")
	}
}

// With one client and two replicas of very different prices and no binding
// capacity, the optimum routes essentially everything through the cheaper
// replica until its marginal cost rises to meet the expensive one's.
func TestPGDPrefersCheapReplica(t *testing.T) {
	p := testProblem(t, []float64{1, 10}, []float64{50})
	res, err := ProjectedGradient(p, mustUniform(t, p), PGDOptions{MaxIters: 5000, Step: DiminishingStep(2)})
	if err != nil {
		t.Fatal(err)
	}
	if res.X[0][0] <= res.X[0][1] {
		t.Fatalf("cheap replica got %g, expensive got %g", res.X[0][0], res.X[0][1])
	}
	if !p.Feasible(res.X, 1e-4) {
		t.Fatalf("PGD result infeasible: violation %g", p.Violation(res.X))
	}
}

// Two identical replicas: by symmetry and strict convexity the optimum
// splits the load evenly.
func TestPGDSymmetricSplit(t *testing.T) {
	p := testProblem(t, []float64{5, 5}, []float64{60})
	x0 := NewMatrix(1, 2)
	x0[0][0] = 60 // deliberately lopsided start
	res, err := ProjectedGradient(p, x0, PGDOptions{MaxIters: 8000, Step: DiminishingStep(1)})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0][0]-30) > 0.5 || math.Abs(res.X[0][1]-30) > 0.5 {
		t.Fatalf("split = %v, want ~ (30, 30)", res.X[0])
	}
}

// KKT check: at the optimum, all replicas receiving load have equal
// marginal cost, and replicas receiving none have marginal cost >= that
// level (for a single client, no capacity binding).
func TestPGDSatisfiesKKT(t *testing.T) {
	p := testProblem(t, []float64{1, 3, 7}, []float64{80})
	res, err := ProjectedGradient(p, mustUniform(t, p), PGDOptions{MaxIters: 10000, Step: DiminishingStep(2)})
	if err != nil {
		t.Fatal(err)
	}
	loads := ColSums(res.X)
	var active []float64
	for n, load := range loads {
		mc := p.System.Replicas[n].MarginalCost(load)
		if load > 0.5 {
			active = append(active, mc)
		}
	}
	if len(active) < 2 {
		t.Skipf("only %d active replicas; KKT equalization trivial", len(active))
	}
	for i := 1; i < len(active); i++ {
		if math.Abs(active[i]-active[0]) > 0.15*active[0] {
			t.Fatalf("active marginal costs not equalized: %v", active)
		}
	}
}

// PGD must respect capacity: demand exceeding one replica's cap spills over.
func TestPGDCapacitySpill(t *testing.T) {
	p := testProblem(t, []float64{1, 20}, []float64{150})
	res, err := ProjectedGradient(p, mustUniform(t, p), PGDOptions{MaxIters: 6000, Step: DiminishingStep(2)})
	if err != nil {
		t.Fatal(err)
	}
	loads := ColSums(res.X)
	if loads[0] > 100+1e-3 {
		t.Fatalf("capacity exceeded: %v", loads)
	}
	if loads[1] < 50-1e-3 {
		t.Fatalf("spillover missing: %v", loads)
	}
}

// Brute-force cross-check on a 1-client, 2-replica instance: grid search
// over the single degree of freedom.
func TestPGDMatchesBruteForce(t *testing.T) {
	p := testProblem(t, []float64{2, 9}, []float64{70})
	res, err := ProjectedGradient(p, mustUniform(t, p), PGDOptions{MaxIters: 10000, Step: DiminishingStep(2)})
	if err != nil {
		t.Fatal(err)
	}
	best := math.Inf(1)
	for a := 0.0; a <= 70.0001; a += 0.01 {
		x := [][]float64{{a, 70 - a}}
		if cost := p.Cost(x); cost < best {
			best = cost
		}
	}
	if res.Objective > best*1.01+1e-9 {
		t.Fatalf("PGD objective %g, brute force %g", res.Objective, best)
	}
}

// Property: PGD never increases the objective relative to its own start
// and always lands feasible on random instances.
func TestPGDImprovesProperty(t *testing.T) {
	r := sim.NewRand(2024)
	for trial := 0; trial < 15; trial++ {
		p := randomProblem(t, r, 4, 3)
		x0, err := FeasiblePoint(p)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		startCost := p.Cost(x0)
		res, err := ProjectedGradient(p, x0, PGDOptions{MaxIters: 1500, Step: DiminishingStep(1)})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if res.Objective > startCost*1.001+1e-6 {
			t.Fatalf("trial %d: PGD worsened objective %g → %g", trial, startCost, res.Objective)
		}
		if !p.Feasible(res.X, 1e-3) {
			t.Fatalf("trial %d: infeasible result (violation %g)", trial, p.Violation(res.X))
		}
	}
}

func TestPGDOnIterationCallback(t *testing.T) {
	p := testProblem(t, []float64{1, 4}, []float64{30})
	var iters []int
	var objs []float64
	_, err := ProjectedGradient(p, mustUniform(t, p), PGDOptions{
		MaxIters: 50,
		Step:     ConstantStep(0.05),
		Tol:      1e-14, // force all 50 iterations
		OnIteration: func(k int, obj float64) {
			iters = append(iters, k)
			objs = append(objs, obj)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(iters) != 50 || iters[0] != 1 || iters[49] != 50 {
		t.Fatalf("callback iterations = %v", iters)
	}
	for _, o := range objs {
		if math.IsNaN(o) || o < 0 {
			t.Fatalf("bad objective in history: %v", objs)
		}
	}
}

func TestPGDInvalidProblem(t *testing.T) {
	p := testProblem(t, []float64{1}, []float64{10})
	p.MaxLatency = -1
	if _, err := ProjectedGradient(p, NewMatrix(1, 1), PGDOptions{}); err == nil {
		t.Fatal("invalid problem accepted")
	}
}

func mustUniform(t *testing.T, p *Problem) [][]float64 {
	t.Helper()
	x, err := p.UniformStart()
	if err != nil {
		t.Fatal(err)
	}
	return x
}
