package opt

import (
	"container/heap"
	"fmt"
	"math"
)

// Min-cost flow on the replica-selection transportation polytope. Given
// per-entry linear costs w[c][n], MinCostAssignment finds the feasible
// assignment minimizing Σ w·p — the linear minimization oracle used by
// the Frank-Wolfe reference solver (and a strong initializer: with
// w = price·α it is the exact optimum of the γ=1 problem).
//
// The implementation is successive shortest augmenting paths with
// Johnson potentials (Dijkstra on reduced costs), which requires
// non-negative edge costs — satisfied here because marginal energy costs
// are non-negative. Arc structure matches CheckFeasible's network:
// source → clients (capacity R_c), client→replica (capacity R_c, cost
// w[c][n], present iff feasible), replica → sink (capacity B_n).

// mcfEdge is one arc of the residual network.
type mcfEdge struct {
	to, rev  int
	capacity float64
	cost     float64
}

type mcfGraph struct {
	adj [][]mcfEdge
}

func newMCFGraph(vertices int) *mcfGraph {
	return &mcfGraph{adj: make([][]mcfEdge, vertices)}
}

func (g *mcfGraph) addEdge(from, to int, capacity, cost float64) {
	g.adj[from] = append(g.adj[from], mcfEdge{to: to, rev: len(g.adj[to]), capacity: capacity, cost: cost})
	g.adj[to] = append(g.adj[to], mcfEdge{to: from, rev: len(g.adj[from]) - 1, capacity: 0, cost: -cost})
}

// dijkstraItem is a priority-queue entry.
type dijkstraItem struct {
	vertex int
	dist   float64
}

type dijkstraPQ []dijkstraItem

func (q dijkstraPQ) Len() int           { return len(q) }
func (q dijkstraPQ) Less(i, j int) bool { return q[i].dist < q[j].dist }
func (q dijkstraPQ) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *dijkstraPQ) Push(x any)        { *q = append(*q, x.(dijkstraItem)) }
func (q *dijkstraPQ) Pop() any          { old := *q; n := len(old); it := old[n-1]; *q = old[:n-1]; return it }

// minCostFlow sends `want` units from s to t at minimum cost, returning
// the flow achieved and its cost.
func (g *mcfGraph) minCostFlow(s, t int, want float64) (flow, cost float64) {
	n := len(g.adj)
	potential := make([]float64, n)
	dist := make([]float64, n)
	parentV := make([]int, n)
	parentE := make([]int, n)
	const eps = 1e-12
	for flow < want-eps {
		// Dijkstra on reduced costs.
		for i := range dist {
			dist[i] = math.Inf(1)
			parentV[i] = -1
		}
		dist[s] = 0
		pq := dijkstraPQ{{vertex: s}}
		for len(pq) > 0 {
			it := heap.Pop(&pq).(dijkstraItem)
			if it.dist > dist[it.vertex]+eps {
				continue
			}
			for ei, e := range g.adj[it.vertex] {
				if e.capacity <= eps {
					continue
				}
				nd := dist[it.vertex] + e.cost + potential[it.vertex] - potential[e.to]
				if nd < dist[e.to]-eps {
					dist[e.to] = nd
					parentV[e.to] = it.vertex
					parentE[e.to] = ei
					heap.Push(&pq, dijkstraItem{vertex: e.to, dist: nd})
				}
			}
		}
		if math.IsInf(dist[t], 1) {
			return flow, cost // no more augmenting paths
		}
		for i := range potential {
			if !math.IsInf(dist[i], 1) {
				potential[i] += dist[i]
			}
		}
		// Bottleneck along the path.
		push := want - flow
		for v := t; v != s; v = parentV[v] {
			e := g.adj[parentV[v]][parentE[v]]
			if e.capacity < push {
				push = e.capacity
			}
		}
		for v := t; v != s; v = parentV[v] {
			e := &g.adj[parentV[v]][parentE[v]]
			e.capacity -= push
			g.adj[e.to][e.rev].capacity += push
			cost += push * e.cost
		}
		flow += push
	}
	return flow, cost
}

// MinCostAssignment minimizes Σ_cn w[c][n]·p[c][n] over prob's feasible
// region. w must be non-negative on feasible entries (marginal energy
// costs always are). Returns an error when the instance is infeasible or
// w has the wrong shape.
func MinCostAssignment(prob *Problem, w [][]float64) ([][]float64, error) {
	if err := prob.Validate(); err != nil {
		return nil, err
	}
	c, n := prob.C(), prob.N()
	if len(w) != c {
		return nil, fmt.Errorf("opt: cost matrix has %d rows for %d clients", len(w), c)
	}
	mask := prob.Allowed()
	source, sink := 0, c+n+1
	g := newMCFGraph(c + n + 2)
	want := 0.0
	type edgeRef struct{ client, replica, idx int }
	var refs []edgeRef
	for i := 0; i < c; i++ {
		if len(w[i]) != n {
			return nil, fmt.Errorf("opt: cost row %d has %d cols for %d replicas", i, len(w[i]), n)
		}
		g.addEdge(source, 1+i, prob.Demands[i], 0)
		want += prob.Demands[i]
		for j := 0; j < n; j++ {
			if !mask[i][j] {
				continue
			}
			if w[i][j] < 0 || math.IsNaN(w[i][j]) {
				return nil, fmt.Errorf("opt: negative/NaN cost w[%d][%d] = %g", i, j, w[i][j])
			}
			refs = append(refs, edgeRef{client: i, replica: j, idx: len(g.adj[1+i])})
			g.addEdge(1+i, 1+c+j, prob.Demands[i], w[i][j])
		}
	}
	for j := 0; j < n; j++ {
		g.addEdge(1+c+j, sink, prob.System.Replicas[j].Bandwidth, 0)
	}
	flow, _ := g.minCostFlow(source, sink, want)
	if flow < want-1e-6*(1+want) {
		return nil, fmt.Errorf("opt: infeasible instance: routed %g of %g MB", flow, want)
	}
	x := NewMatrix(c, n)
	for _, ref := range refs {
		e := g.adj[1+ref.client][ref.idx]
		if sent := prob.Demands[ref.client] - e.capacity; sent > 1e-12 {
			x[ref.client][ref.replica] = sent
		}
	}
	return x, nil
}

// FrankWolfe minimizes prob's convex objective by the conditional-gradient
// method: at each iterate, the gradient is linearized and minimized
// exactly over the polytope by min-cost flow, then the iterate moves
// toward the vertex with the classic 2/(k+2) step. It serves as a second,
// structurally different reference solver: every iterate is exactly
// feasible by construction (a convex combination of polytope points), and
// no Euclidean projections are involved.
type FWOptions struct {
	// MaxIters bounds conditional-gradient steps; 0 means 300.
	MaxIters int
	// Tol stops when the Frank-Wolfe duality gap g(x) = <∇f(x), x − s>
	// falls below Tol·(1+|f|); 0 means 1e-4 (the gap of the
	// conditional-gradient method decays only O(1/k), so tolerances much
	// tighter than this are impractical).
	Tol float64
}

// FWResult reports a FrankWolfe run.
type FWResult struct {
	X          [][]float64
	Objective  float64
	Iterations int
	Converged  bool
	// Gap is the final duality gap — a certified bound on suboptimality.
	Gap float64
}

// FrankWolfe runs the conditional-gradient method on prob.
func FrankWolfe(prob *Problem, opts FWOptions) (*FWResult, error) {
	if err := prob.Validate(); err != nil {
		return nil, err
	}
	maxIters := opts.MaxIters
	if maxIters <= 0 {
		maxIters = 300
	}
	tol := opts.Tol
	if tol <= 0 {
		tol = 1e-4
	}
	// Start from the min-cost vertex of the linearization at zero load —
	// the exact optimum of the γ=1 relaxation.
	zero := NewMatrix(prob.C(), prob.N())
	x, err := MinCostAssignment(prob, prob.Gradient(zero))
	if err != nil {
		return nil, err
	}
	res := &FWResult{}
	for k := 1; k <= maxIters; k++ {
		res.Iterations = k
		grad := prob.Gradient(x)
		vertex, err := MinCostAssignment(prob, grad)
		if err != nil {
			return nil, fmt.Errorf("opt: frank-wolfe LMO at iteration %d: %w", k, err)
		}
		// Duality gap <∇f(x), x − vertex> certifies progress.
		gap := 0.0
		for c := range x {
			for n := range x[c] {
				gap += grad[c][n] * (x[c][n] - vertex[c][n])
			}
		}
		res.Gap = gap
		if gap <= tol*(1+math.Abs(prob.Cost(x))) {
			res.Converged = true
			break
		}
		// Exact line search on f(x + s·(vertex − x)), s ∈ [0, 1]: the
		// objective restricted to the segment is a smooth convex
		// polynomial in s, so ternary search finds the minimizer. This
		// beats the classic 2/(k+2) schedule by a wide margin in practice.
		step := lineSearch(prob, x, vertex)
		if step <= 0 {
			res.Converged = true
			break
		}
		Scale(x, 1-step)
		AXPY(x, step, vertex)
	}
	res.X = x
	res.Objective = prob.Cost(x)
	return res, nil
}

// lineSearch minimizes s ↦ f(x + s·(v − x)) over [0, 1] by ternary search
// (f restricted to the segment is convex).
func lineSearch(prob *Problem, x, v [][]float64) float64 {
	probe := NewMatrix(len(x), len(x[0]))
	eval := func(s float64) float64 {
		Copy(probe, x)
		Scale(probe, 1-s)
		AXPY(probe, s, v)
		return prob.Cost(probe)
	}
	lo, hi := 0.0, 1.0
	for iter := 0; iter < 60 && hi-lo > 1e-10; iter++ {
		m1 := lo + (hi-lo)/3
		m2 := hi - (hi-lo)/3
		if eval(m1) <= eval(m2) {
			hi = m2
		} else {
			lo = m1
		}
	}
	return (lo + hi) / 2
}
