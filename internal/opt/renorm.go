package opt

// Renormalize maps a historical assignment onto a (possibly different)
// replica set: for every client the weight row — the last-known-good MB
// split, already aligned by the caller to the new column order, with zero
// columns for replicas that have no history — is rescaled so the row sums
// to the client's demand. Clients whose entire history landed on departed
// replicas (zero weight row) spread uniformly over their allowed columns.
// The result always conserves demand exactly: RowSums(out)[i] == demands[i].
//
// caps, when non-nil, bounds each column sum (a replica's bandwidth);
// non-positive entries mean unbounded. allowed, when non-nil, is the
// latency-feasibility mask; disallowed entries get no load from the
// uniform fallback, and cap excess is never redistributed onto them.
// After the proportional pass, columns exceeding their cap are shrunk and
// the excess moved — within each row, so conservation holds — onto
// allowed columns with headroom. The redistribution runs a bounded number
// of passes; if total demand exceeds total capacity (no feasible split
// exists) some cap excess remains, which downstream solvers project out.
//
// This is the shared warm-start / degraded-round kernel: both paths
// restate stale history over the current roster.
func Renormalize(weights [][]float64, demands []float64, caps []float64, allowed [][]bool) [][]float64 {
	c := len(demands)
	n := 0
	if c > 0 {
		n = len(weights[0])
	}
	out := NewMatrix(c, n)
	if n == 0 {
		return out
	}
	for i := 0; i < c; i++ {
		row := weights[i]
		sum := 0.0
		for j := 0; j < n; j++ {
			if row[j] > 0 {
				sum += row[j]
			}
		}
		if sum > 0 {
			for j := 0; j < n; j++ {
				if row[j] > 0 {
					out[i][j] = demands[i] * row[j] / sum
				}
			}
			continue
		}
		// No usable history: uniform over the allowed columns (over all
		// columns when the mask rules out everything — conservation beats
		// mask purity in a fallback, and projection cleans it up later).
		count := 0
		for j := 0; j < n; j++ {
			if allowed == nil || allowed[i][j] {
				count++
			}
		}
		if count > 0 {
			share := demands[i] / float64(count)
			for j := 0; j < n; j++ {
				if allowed == nil || allowed[i][j] {
					out[i][j] = share
				}
			}
		} else {
			share := demands[i] / float64(n)
			for j := 0; j < n; j++ {
				out[i][j] = share
			}
		}
	}
	if caps != nil {
		redistributeCapExcess(out, caps, allowed)
	}
	return out
}

// redistributeCapExcess shrinks over-cap columns and moves the excess,
// row by row, onto allowed columns with remaining headroom. Each pass
// handles every over-cap column once; a few passes settle any feasible
// instance (moving mass can newly overflow a column, hence the loop).
func redistributeCapExcess(x [][]float64, caps []float64, allowed [][]bool) {
	const passes = 8
	const eps = 1e-9
	c := len(x)
	if c == 0 {
		return
	}
	n := len(x[0])
	cols := make([]float64, n)
	for pass := 0; pass < passes; pass++ {
		for j := range cols {
			cols[j] = 0
		}
		for i := 0; i < c; i++ {
			for j := 0; j < n; j++ {
				cols[j] += x[i][j]
			}
		}
		moved := false
		for j := 0; j < n; j++ {
			if caps[j] <= 0 || cols[j] <= caps[j]+eps {
				continue
			}
			shrink := caps[j] / cols[j]
			for i := 0; i < c; i++ {
				if x[i][j] <= 0 {
					continue
				}
				excess := x[i][j] * (1 - shrink)
				// Headroom available to THIS row: allowed columns under cap.
				headroom := 0.0
				for k := 0; k < n; k++ {
					if k == j || (allowed != nil && !allowed[i][k]) {
						continue
					}
					if caps[k] <= 0 {
						headroom += excess // unbounded column absorbs alone
						continue
					}
					if h := caps[k] - cols[k]; h > 0 {
						headroom += h
					}
				}
				if headroom <= eps {
					continue // nowhere to go: leave the excess in place
				}
				take := excess
				x[i][j] -= take
				cols[j] -= take
				for k := 0; k < n && take > eps; k++ {
					if k == j || (allowed != nil && !allowed[i][k]) {
						continue
					}
					var h float64
					if caps[k] <= 0 {
						h = take
					} else {
						h = caps[k] - cols[k]
					}
					if h <= 0 {
						continue
					}
					if h > take {
						h = take
					}
					x[i][k] += h
					cols[k] += h
					take -= h
				}
				if take > eps {
					// Headroom ran out mid-row (another row consumed it
					// first): put the remainder back rather than lose mass.
					x[i][j] += take
					cols[j] += take
				}
				moved = true
			}
		}
		if !moved {
			return
		}
	}
}
