package opt

import (
	"math"
	"testing"

	"edr/internal/sim"
)

func maskOf(rows ...[]bool) [][]bool { return rows }

func TestSparsityIndexes(t *testing.T) {
	sp := NewSparsity(maskOf(
		[]bool{true, false, true},
		[]bool{false, false, true},
		[]bool{true, true, false},
	))
	if sp.C != 3 || sp.N != 3 || sp.NNZ() != 5 || sp.Full {
		t.Fatalf("C=%d N=%d nnz=%d full=%v", sp.C, sp.N, sp.NNZ(), sp.Full)
	}
	wantRowStart := []int{0, 2, 3, 5}
	for i, w := range wantRowStart {
		if sp.RowStart[i] != w {
			t.Fatalf("RowStart = %v, want %v", sp.RowStart, wantRowStart)
		}
	}
	wantColIdx := []int{0, 2, 2, 0, 1}
	for i, w := range wantColIdx {
		if sp.ColIdx[i] != w {
			t.Fatalf("ColIdx = %v, want %v", sp.ColIdx, wantColIdx)
		}
	}
	wantColStart := []int{0, 2, 3, 5}
	for i, w := range wantColStart {
		if sp.ColStart[i] != w {
			t.Fatalf("ColStart = %v, want %v", sp.ColStart, wantColStart)
		}
	}
	// CSC slots: col0 -> clients {0,2}, col1 -> {2}, col2 -> {0,1}.
	wantRowIdx := []int{0, 2, 2, 0, 1}
	for i, w := range wantRowIdx {
		if sp.RowIdx[i] != w {
			t.Fatalf("RowIdx = %v, want %v", sp.RowIdx, wantRowIdx)
		}
	}
	// PosCSR/PosCSC must be inverse permutations linking the two layouts.
	for k := 0; k < sp.NNZ(); k++ {
		if sp.PosCSC[sp.PosCSR[k]] != k {
			t.Fatalf("PosCSR/PosCSC not inverse at CSC slot %d", k)
		}
	}
	if sp.MaxRowNNZ() != 2 || sp.RowNNZ(1) != 1 || sp.ColNNZ(1) != 1 {
		t.Fatalf("row/col nnz wrong: max=%d row1=%d col1=%d", sp.MaxRowNNZ(), sp.RowNNZ(1), sp.ColNNZ(1))
	}
	if d := sp.Density(); math.Abs(d-5.0/9.0) > 1e-15 {
		t.Fatalf("Density = %g", d)
	}
}

func TestGatherScatterColSums(t *testing.T) {
	r := sim.NewRand(7)
	for trial := 0; trial < 50; trial++ {
		c, n := r.IntBetween(1, 8), r.IntBetween(1, 6)
		mask := make([][]bool, c)
		for i := range mask {
			mask[i] = make([]bool, n)
			for j := range mask[i] {
				mask[i][j] = r.Float64() < 0.6
			}
		}
		sp := NewSparsity(mask)
		m := NewMatrix(c, n)
		for i := range m {
			for j := range m[i] {
				m[i][j] = r.Range(-5, 5)
			}
		}
		v := sp.Gather(nil, m)
		out := NewMatrix(c, n)
		sp.Scatter(out, v)
		for i := range m {
			for j := range m[i] {
				want := m[i][j]
				if !mask[i][j] {
					want = 0
				}
				if out[i][j] != want {
					t.Fatalf("scatter(gather)[%d][%d] = %g, want %g", i, j, out[i][j], want)
				}
			}
		}
		sums := sp.ColSumsInto(make([]float64, n), v)
		dense := ColSums(out)
		for j := range sums {
			if math.Abs(sums[j]-dense[j]) > 1e-12 {
				t.Fatalf("ColSumsInto[%d] = %g, dense %g", j, sums[j], dense[j])
			}
		}
	}
}

func TestSparsityFullMask(t *testing.T) {
	sp := NewSparsity(maskOf([]bool{true, true}, []bool{true, true}))
	if !sp.Full || sp.NNZ() != 4 {
		t.Fatalf("full mask: full=%v nnz=%d", sp.Full, sp.NNZ())
	}
	if SparseAuto.Enabled(sp) {
		t.Fatal("SparseAuto picked sparse kernels on a full mask")
	}
	if !SparseForce.Enabled(sp) || SparseOff.Enabled(sp) {
		t.Fatal("Force/Off dispatch wrong")
	}
	masked := NewSparsity(maskOf([]bool{true, false}))
	if !SparseAuto.Enabled(masked) {
		t.Fatal("SparseAuto skipped sparse kernels on a masked instance")
	}
}

func TestForBalancedPartition(t *testing.T) {
	par := NewParallel(4)
	if par == nil {
		t.Skip("single-core host")
	}
	r := sim.NewRand(11)
	for trial := 0; trial < 100; trial++ {
		n := r.IntBetween(1, 40)
		cum := make([]int, n+1)
		for i := 1; i <= n; i++ {
			cum[i] = cum[i-1] + r.IntBetween(0, 9)
		}
		seen := make([]int32, n)
		par.ForBalanced(n, cum, func(chunk, lo, hi int) {
			for i := lo; i < hi; i++ {
				seen[i]++ // disjoint ranges: no two chunks touch the same unit
			}
		})
		for i, s := range seen {
			if s != 1 {
				t.Fatalf("trial %d: unit %d covered %d times (cum=%v)", trial, i, s, cum)
			}
		}
	}
}

func TestForBalancedSerialAndErrors(t *testing.T) {
	var p *Parallel // nil = serial
	got := 0
	p.ForBalanced(5, []int{0, 1, 2, 3, 4, 5}, func(chunk, lo, hi int) {
		if chunk != 0 || lo != 0 || hi != 5 {
			t.Fatalf("serial chunking = (%d, %d, %d)", chunk, lo, hi)
		}
		got++
	})
	if got != 1 {
		t.Fatalf("serial ForBalanced ran %d times", got)
	}
	err := NewParallel(4).ForBalancedErr(6, []int{0, 1, 2, 3, 4, 5, 6}, func(chunk, lo, hi int) error {
		if lo <= 2 && 2 < hi {
			return errTest
		}
		return nil
	})
	if err != errTest {
		t.Fatalf("ForBalancedErr = %v, want errTest", err)
	}
}

var errTest = errSentinel("test error")

type errSentinel string

func (e errSentinel) Error() string { return string(e) }

// sparseTestInstance builds a random masked instance plus a random
// infeasible-ish starting matrix supported on the mask.
func sparseTestInstance(t *testing.T, r *sim.Rand, clients, replicas int) (*Problem, [][]float64) {
	t.Helper()
	p := randomProblem(t, r, clients, replicas)
	// Scale demands down so the instance is comfortably feasible even under
	// the random mask (randomProblem alone can oversubscribe capacity).
	total := 0.0
	for _, d := range p.Demands {
		total += d
	}
	budget := 0.0
	for _, rep := range p.System.Replicas {
		budget += rep.Bandwidth
	}
	if total > 0.4*budget {
		scale := 0.4 * budget / total
		for c := range p.Demands {
			p.Demands[c] *= scale
		}
	}
	if err := CheckFeasible(p); err != nil {
		t.Fatalf("test instance infeasible: %v", err)
	}
	x := NewMatrix(clients, replicas)
	mask := p.Allowed()
	for c := range x {
		for n := range x[c] {
			if mask[c][n] {
				x[c][n] = r.Range(0, 20)
			} else if r.Float64() < 0.3 {
				x[c][n] = r.Range(0, 5) // off-support garbage the projector must zero
			}
		}
	}
	return p, x
}

func TestProjectFeasibleSpMatchesDense(t *testing.T) {
	r := sim.NewRand(2013)
	for trial := 0; trial < 20; trial++ {
		p, x := sparseTestInstance(t, r, r.IntBetween(3, 12), r.IntBetween(2, 5))
		dense := Clone(x)
		sparse := Clone(x)
		if err := ProjectFeasibleMode(p, dense, 1e-6, nil, SparseOff); err != nil {
			t.Fatalf("trial %d dense: %v", trial, err)
		}
		if err := ProjectFeasibleSp(p, sparse, 1e-6, nil); err != nil {
			t.Fatalf("trial %d sparse: %v", trial, err)
		}
		if v := p.Violation(sparse); v > 1e-6 {
			t.Fatalf("trial %d: sparse projection violation %g", trial, v)
		}
		// Both are (approximate) Euclidean projections of the same point
		// onto the same convex set, so they must nearly coincide.
		if d := Dist(dense, sparse); d > 1e-4 {
			t.Fatalf("trial %d: dense and sparse projections differ by %g", trial, d)
		}
		if gap := math.Abs(p.Cost(dense) - p.Cost(sparse)); gap > 1e-6*(1+p.Cost(dense)) {
			t.Fatalf("trial %d: objective gap %g", trial, gap)
		}
	}
}

func TestProjectFeasibleSpParallelSerialBitForBit(t *testing.T) {
	r := sim.NewRand(99)
	p, x := sparseTestInstance(t, r, 60, 8)
	serial := Clone(x)
	parallel := Clone(x)
	if err := ProjectFeasibleSp(p, serial, 1e-6, nil); err != nil {
		t.Fatal(err)
	}
	par := NewParallel(4)
	if par == nil {
		t.Skip("single-core host")
	}
	if err := ProjectFeasibleSp(p, parallel, 1e-6, par); err != nil {
		t.Fatal(err)
	}
	for c := range serial {
		for n := range serial[c] {
			if serial[c][n] != parallel[c][n] {
				t.Fatalf("parallel sparse projection differs at [%d][%d]: %v vs %v",
					c, n, serial[c][n], parallel[c][n])
			}
		}
	}
}

func TestSparseProjectorSingleColumnBound(t *testing.T) {
	// CDPSM's local sets bound only one column; the others are +Inf and
	// must be skipped without arithmetic on their entries.
	r := sim.NewRand(5)
	p, x := sparseTestInstance(t, r, 10, 4)
	sp := p.Sparsity()
	agent := 2
	bounds := make([]float64, sp.N)
	for n := range bounds {
		bounds[n] = math.Inf(1)
	}
	bounds[agent] = p.System.Replicas[agent].Bandwidth
	pj := NewSparseProjector(sp, p.Demands, bounds, nil)
	v := sp.Gather(nil, x)
	if _, err := pj.Project(v, DykstraOptions{MaxSweeps: 200, Tol: 1e-9}); err != nil {
		t.Fatal(err)
	}
	out := NewMatrix(sp.C, sp.N)
	sp.Scatter(out, v)
	// Demands hold within tolerance, the agent's column respects its bound.
	for c, row := range out {
		sum := 0.0
		for _, vv := range row {
			sum += vv
		}
		if math.Abs(sum-p.Demands[c]) > 1e-6 {
			t.Fatalf("row %d sum %g, want %g", c, sum, p.Demands[c])
		}
	}
	colSum := 0.0
	for c := range out {
		colSum += out[c][agent]
	}
	if colSum > p.System.Replicas[agent].Bandwidth+1e-6 {
		t.Fatalf("agent column sum %g exceeds bound %g", colSum, p.System.Replicas[agent].Bandwidth)
	}
}

func TestSparsityCachedAndInvalidated(t *testing.T) {
	p := testProblem(t, []float64{1, 2}, []float64{5, 5})
	s1 := p.Sparsity()
	if !s1.Full {
		t.Fatal("all-feasible instance reported sparse")
	}
	if s2 := p.Sparsity(); s2 != s1 {
		t.Fatal("Sparsity rebuilt on a second call")
	}
	p.Latency[0][1] = 10 * p.MaxLatency
	if s := p.Sparsity(); s != s1 {
		t.Fatal("sparsity rebuilt without InvalidateMask")
	}
	p.InvalidateMask()
	s3 := p.Sparsity()
	if s3 == s1 || s3.Full || s3.NNZ() != 3 {
		t.Fatalf("InvalidateMask did not refresh sparsity: full=%v nnz=%d", s3.Full, s3.NNZ())
	}
	// The mask and sparsity views must agree after invalidation.
	mask := p.Allowed()
	if mask[0][1] {
		t.Fatal("mask stale after InvalidateMask")
	}
}
