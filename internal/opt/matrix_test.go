package opt

import (
	"math"
	"testing"
)

func TestNewMatrixZeroed(t *testing.T) {
	m := NewMatrix(3, 4)
	if len(m) != 3 || len(m[0]) != 4 {
		t.Fatalf("shape = %dx%d, want 3x4", len(m), len(m[0]))
	}
	for i := range m {
		for j := range m[i] {
			if m[i][j] != 0 {
				t.Fatalf("m[%d][%d] = %g, want 0", i, j, m[i][j])
			}
		}
	}
}

func TestNewMatrixNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewMatrix(-1, 2) did not panic")
		}
	}()
	NewMatrix(-1, 2)
}

func TestNewMatrixRowsIndependent(t *testing.T) {
	m := NewMatrix(2, 2)
	m[0] = append(m[0], 99) // must not clobber row 1 (capacity is clamped)
	if m[1][0] != 0 || m[1][1] != 0 {
		t.Fatalf("appending to row 0 corrupted row 1: %v", m[1])
	}
}

func TestCloneIndependent(t *testing.T) {
	m := [][]float64{{1, 2}, {3, 4}}
	c := Clone(m)
	c[0][0] = 99
	if m[0][0] != 1 {
		t.Fatal("Clone shares backing storage")
	}
	if Clone(nil) != nil {
		t.Fatal("Clone(nil) != nil")
	}
}

func TestCopy(t *testing.T) {
	src := [][]float64{{1, 2}, {3, 4}}
	dst := NewMatrix(2, 2)
	Copy(dst, src)
	if Dist(dst, src) != 0 {
		t.Fatalf("Copy mismatch: %v", dst)
	}
}

func TestArithmetic(t *testing.T) {
	a := [][]float64{{1, 2}, {3, 4}}
	b := [][]float64{{10, 20}, {30, 40}}

	sum := Clone(a)
	Add(sum, b)
	if sum[1][1] != 44 {
		t.Fatalf("Add: %v", sum)
	}

	diff := Clone(b)
	Sub(diff, a)
	if diff[0][0] != 9 || diff[1][1] != 36 {
		t.Fatalf("Sub: %v", diff)
	}

	ax := Clone(a)
	AXPY(ax, 2, b)
	if ax[0][1] != 42 {
		t.Fatalf("AXPY: %v", ax)
	}

	sc := Clone(a)
	Scale(sc, -1)
	if sc[1][0] != -3 {
		t.Fatalf("Scale: %v", sc)
	}
}

func TestDotNormDist(t *testing.T) {
	a := [][]float64{{1, 2}, {2, 0}}
	b := [][]float64{{3, 1}, {0, 5}}
	if got := Dot(a, b); got != 5 {
		t.Fatalf("Dot = %g, want 5", got)
	}
	if got := Norm(a); got != 3 {
		t.Fatalf("Norm = %g, want 3", got)
	}
	if got := Dist(a, a); got != 0 {
		t.Fatalf("Dist(a,a) = %g", got)
	}
	if got := Dist(a, b); math.Abs(got-math.Sqrt(4+1+4+25)) > 1e-12 {
		t.Fatalf("Dist = %g", got)
	}
}

func TestColRowSums(t *testing.T) {
	m := [][]float64{
		{1, 2, 3},
		{4, 5, 6},
	}
	cols := ColSums(m)
	rows := RowSums(m)
	wantCols := []float64{5, 7, 9}
	wantRows := []float64{6, 15}
	for i := range wantCols {
		if cols[i] != wantCols[i] {
			t.Fatalf("ColSums = %v", cols)
		}
	}
	for i := range wantRows {
		if rows[i] != wantRows[i] {
			t.Fatalf("RowSums = %v", rows)
		}
	}
	if ColSums(nil) != nil {
		t.Fatal("ColSums(nil) != nil")
	}
}

func TestMeanWeighted(t *testing.T) {
	a := [][]float64{{2, 0}}
	b := [][]float64{{0, 4}}
	dst := NewMatrix(1, 2)
	Mean(dst, []float64{0.5, 0.5}, a, b)
	if dst[0][0] != 1 || dst[0][1] != 2 {
		t.Fatalf("Mean = %v", dst)
	}
}

func TestMeanWeightMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Mean with mismatched weights did not panic")
		}
	}()
	Mean(NewMatrix(1, 1), []float64{1, 2}, NewMatrix(1, 1))
}

func TestShapeMismatchPanics(t *testing.T) {
	a := NewMatrix(2, 2)
	b := NewMatrix(2, 3)
	for name, fn := range map[string]func(){
		"Add":  func() { Add(a, b) },
		"Sub":  func() { Sub(a, b) },
		"Dot":  func() { Dot(a, b) },
		"Dist": func() { Dist(a, b) },
		"Copy": func() { Copy(a, b) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s with mismatched shapes did not panic", name)
				}
			}()
			fn()
		}()
	}
}
