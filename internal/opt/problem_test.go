package opt

import (
	"math"
	"testing"

	"edr/internal/model"
	"edr/internal/sim"
)

// testProblem builds a small instance with the paper's default parameters:
// all latencies feasible unless the mask says otherwise.
func testProblem(t *testing.T, prices []float64, demands []float64) *Problem {
	t.Helper()
	rs := make([]model.Replica, len(prices))
	for i, u := range prices {
		rs[i] = model.NewReplica("r", u)
	}
	sys, err := model.NewSystem(rs)
	if err != nil {
		t.Fatal(err)
	}
	lat := NewMatrix(len(demands), len(prices))
	for c := range lat {
		for n := range lat[c] {
			lat[c][n] = 0.0005 // 0.5 ms, under the 1.8 ms default bound
		}
	}
	return &Problem{
		System:     sys,
		Demands:    demands,
		Latency:    lat,
		MaxLatency: 0.0018,
	}
}

// randomProblem builds a random feasible instance for property tests.
func randomProblem(t *testing.T, r *sim.Rand, clients, replicas int) *Problem {
	t.Helper()
	prices := make([]float64, replicas)
	for i := range prices {
		prices[i] = float64(r.IntBetween(1, 20))
	}
	demands := make([]float64, clients)
	for c := range demands {
		demands[c] = r.Range(1, 30)
	}
	p := testProblem(t, prices, demands)
	// Randomly raise some latencies above the bound, keeping at least two
	// feasible replicas per client so instances stay comfortably feasible.
	for c := 0; c < clients; c++ {
		feasible := replicas
		for n := 0; n < replicas && feasible > 2; n++ {
			if r.Float64() < 0.25 {
				p.Latency[c][n] = 0.005 // 5 ms > T
				feasible--
			}
		}
	}
	return p
}

func TestProblemValidate(t *testing.T) {
	p := testProblem(t, []float64{1, 2}, []float64{10, 5})
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}

	bad := testProblem(t, []float64{1, 2}, []float64{10, 5})
	bad.Demands[0] = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("negative demand accepted")
	}

	bad = testProblem(t, []float64{1, 2}, []float64{10, 5})
	bad.MaxLatency = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero max latency accepted")
	}

	bad = testProblem(t, []float64{1, 2}, []float64{10, 5})
	bad.Latency = bad.Latency[:1]
	if err := bad.Validate(); err == nil {
		t.Fatal("short latency matrix accepted")
	}

	bad = testProblem(t, []float64{1, 2}, []float64{10, 5})
	bad.Latency[0][1] = math.NaN()
	if err := bad.Validate(); err == nil {
		t.Fatal("NaN latency accepted")
	}

	empty := &Problem{}
	if err := empty.Validate(); err == nil {
		t.Fatal("empty problem accepted")
	}
}

func TestAllowedMask(t *testing.T) {
	p := testProblem(t, []float64{1, 2}, []float64{10})
	p.Latency[0][1] = 0.01 // above T
	mask := p.Allowed()
	if !mask[0][0] || mask[0][1] {
		t.Fatalf("mask = %v, want [true false]", mask[0])
	}
}

func TestViolationFeasiblePoint(t *testing.T) {
	p := testProblem(t, []float64{1, 2}, []float64{10, 6})
	x := [][]float64{
		{4, 6},
		{3, 3},
	}
	if v := p.Violation(x); v > 1e-12 {
		t.Fatalf("feasible point has violation %g", v)
	}
	if !p.Feasible(x, 1e-9) {
		t.Fatal("Feasible = false for feasible point")
	}
}

func TestViolationDetectsEachConstraint(t *testing.T) {
	p := testProblem(t, []float64{1, 2}, []float64{10})
	// Demand shortfall.
	if v := p.Violation([][]float64{{4, 4}}); math.Abs(v-2) > 1e-12 {
		t.Fatalf("demand violation = %g, want 2", v)
	}
	// Negativity.
	if v := p.Violation([][]float64{{12, -2}}); v < 2 {
		t.Fatalf("negativity violation = %g, want >= 2", v)
	}
	// Capacity: demand 300 split as 150+150 over B=100 caps.
	p2 := testProblem(t, []float64{1, 2}, []float64{300})
	if v := p2.Violation([][]float64{{150, 150}}); math.Abs(v-50) > 1e-12 {
		t.Fatalf("capacity violation = %g, want 50", v)
	}
	// Latency mask.
	p3 := testProblem(t, []float64{1, 2}, []float64{10})
	p3.Latency[0][1] = 0.01
	if v := p3.Violation([][]float64{{5, 5}}); v < 5 {
		t.Fatalf("mask violation = %g, want >= 5", v)
	}
}

func TestUniformStart(t *testing.T) {
	p := testProblem(t, []float64{1, 2, 3}, []float64{9, 6})
	p.Latency[1][0] = 0.01 // client 1 cannot use replica 0
	x, err := p.UniformStart()
	if err != nil {
		t.Fatal(err)
	}
	if x[0][0] != 3 || x[0][1] != 3 || x[0][2] != 3 {
		t.Fatalf("row 0 = %v, want thirds of 9", x[0])
	}
	if x[1][0] != 0 || x[1][1] != 3 || x[1][2] != 3 {
		t.Fatalf("row 1 = %v, want (0,3,3)", x[1])
	}
}

func TestUniformStartNoFeasibleReplica(t *testing.T) {
	p := testProblem(t, []float64{1}, []float64{5})
	p.Latency[0][0] = 1 // way above T
	if _, err := p.UniformStart(); err == nil {
		t.Fatal("client with no feasible replica accepted")
	}
}

func TestCaps(t *testing.T) {
	p := testProblem(t, []float64{1, 2}, []float64{7, 3})
	u := p.Caps()
	if u[0][0] != 7 || u[0][1] != 7 || u[1][0] != 3 || u[1][1] != 3 {
		t.Fatalf("Caps = %v", u)
	}
}

func TestCostGradientDelegation(t *testing.T) {
	p := testProblem(t, []float64{2, 4}, []float64{10})
	x := [][]float64{{6, 4}}
	wantCost, err := p.System.TotalCost(x)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Cost(x); got != wantCost {
		t.Fatalf("Cost = %g, want %g", got, wantCost)
	}
	g := p.Gradient(x)
	if len(g) != 1 || len(g[0]) != 2 {
		t.Fatalf("Gradient shape %dx%d", len(g), len(g[0]))
	}
	e := p.Energy(x)
	if e <= 0 {
		t.Fatalf("Energy = %g", e)
	}
}

func TestAllowedCachedAndInvalidated(t *testing.T) {
	p := testProblem(t, []float64{1, 2}, []float64{5, 5})
	m1 := p.Allowed()
	if !m1[0][0] || !m1[1][1] {
		t.Fatalf("all-feasible instance masked: %v", m1)
	}
	if m2 := p.Allowed(); &m2[0][0] != &m1[0][0] {
		t.Fatal("Allowed rebuilt the mask on a second call")
	}
	// Mutating the latencies without invalidation keeps serving the stale
	// (documented-read-only) mask; InvalidateMask rebuilds it.
	p.Latency[0][1] = 10 * p.MaxLatency
	if m := p.Allowed(); !m[0][1] {
		t.Fatal("mask rebuilt without InvalidateMask")
	}
	p.InvalidateMask()
	m3 := p.Allowed()
	if m3[0][1] {
		t.Fatal("InvalidateMask did not refresh the mask")
	}
	if !m3[0][0] || !m3[1][0] || !m3[1][1] {
		t.Fatalf("unrelated entries flipped: %v", m3)
	}
}

func TestAllowedConcurrent(t *testing.T) {
	p := testProblem(t, []float64{1, 2, 3}, []float64{5, 5, 5, 5})
	done := make(chan [][]bool, 8)
	for i := 0; i < 8; i++ {
		go func() { done <- p.Allowed() }()
	}
	first := <-done
	for i := 1; i < 8; i++ {
		if m := <-done; &m[0][0] != &first[0][0] {
			t.Fatal("concurrent Allowed calls produced distinct masks")
		}
	}
}
