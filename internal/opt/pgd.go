package opt

import (
	"fmt"
	"math"
)

// Projected gradient descent on the full problem. This is the centralized
// reference method: every distributed algorithm in the module is validated
// against its output (and, at small sizes, against brute-force grids in
// tests).

// StepRule selects the step size for iteration k (1-based).
type StepRule func(k int) float64

// ConstantStep returns a StepRule with a fixed step d — the rule the paper
// uses for both distributed algorithms "to guarantee fairness of the
// comparison".
func ConstantStep(d float64) StepRule {
	if d <= 0 {
		panic(fmt.Sprintf("opt: non-positive constant step %g", d))
	}
	return func(int) float64 { return d }
}

// DiminishingStep returns d/√k, the classic divergent-series rule with
// guaranteed subgradient-method convergence.
func DiminishingStep(d float64) StepRule {
	if d <= 0 {
		panic(fmt.Sprintf("opt: non-positive diminishing step %g", d))
	}
	return func(k int) float64 { return d / math.Sqrt(float64(k)) }
}

// PGDOptions configures ProjectedGradient.
type PGDOptions struct {
	// MaxIters bounds gradient iterations. Default 2000.
	MaxIters int
	// Step selects step sizes. Default DiminishingStep(1).
	Step StepRule
	// Tol declares convergence when the iterate moves less than Tol
	// (Frobenius) in one step. Default 1e-8.
	Tol float64
	// ProjectTol is the feasibility tolerance passed to ProjectFeasible.
	// Default 1e-6.
	ProjectTol float64
	// OnIteration, when non-nil, observes (k, objective) after each
	// iteration — used to record convergence curves (Fig 5).
	OnIteration func(k int, objective float64)
}

func (o *PGDOptions) defaults() {
	if o.MaxIters <= 0 {
		o.MaxIters = 2000
	}
	if o.Step == nil {
		o.Step = DiminishingStep(1)
	}
	if o.Tol <= 0 {
		o.Tol = 1e-8
	}
	if o.ProjectTol <= 0 {
		o.ProjectTol = 1e-6
	}
}

// PGDResult reports the outcome of a ProjectedGradient run.
type PGDResult struct {
	// X is the final assignment matrix.
	X [][]float64
	// Objective is the final cost E_g(X).
	Objective float64
	// Iterations is the number of gradient steps taken.
	Iterations int
	// Converged reports whether the movement tolerance was reached before
	// the iteration bound.
	Converged bool
}

// ProjectedGradient minimizes prob's objective over its feasible region
// starting from x0 (which may be infeasible; it is projected first).
// x0 is not modified.
func ProjectedGradient(prob *Problem, x0 [][]float64, opts PGDOptions) (*PGDResult, error) {
	opts.defaults()
	if err := prob.Validate(); err != nil {
		return nil, err
	}
	x := Clone(x0)
	if err := ProjectFeasible(prob, x, opts.ProjectTol); err != nil {
		return nil, fmt.Errorf("opt: pgd initial projection: %w", err)
	}
	prev := NewMatrix(len(x), len(x[0]))
	res := &PGDResult{}
	for k := 1; k <= opts.MaxIters; k++ {
		Copy(prev, x)
		g := prob.Gradient(x)
		AXPY(x, -opts.Step(k), g)
		if err := ProjectFeasible(prob, x, opts.ProjectTol); err != nil {
			return nil, fmt.Errorf("opt: pgd projection at iteration %d: %w", k, err)
		}
		res.Iterations = k
		if opts.OnIteration != nil {
			opts.OnIteration(k, prob.Cost(x))
		}
		if Dist(prev, x) <= opts.Tol {
			res.Converged = true
			break
		}
	}
	res.X = x
	res.Objective = prob.Cost(x)
	return res, nil
}
