package opt

import (
	"math"
	"testing"
)

func rowSumsClose(t *testing.T, x [][]float64, demands []float64) {
	t.Helper()
	rows := RowSums(x)
	for i, r := range rows {
		if math.Abs(r-demands[i]) > 1e-9 {
			t.Fatalf("row %d sums to %g, want %g", i, r, demands[i])
		}
	}
}

func TestRenormalizeShrunkRosterConservesDemand(t *testing.T) {
	// History over 3 replicas; replica 1 left. Weights are the surviving
	// columns of the old assignment (caller aligned), so proportions among
	// survivors are preserved.
	demands := []float64{30, 20}
	weights := [][]float64{
		{10, 20}, // old split 10/15/20 → survivors 10,20
		{0, 5},   // old split 0/15/5 → survivors 0,5
	}
	out := Renormalize(weights, demands, nil, nil)
	rowSumsClose(t, out, demands)
	if math.Abs(out[0][0]-10) > 1e-9 || math.Abs(out[0][1]-20) > 1e-9 {
		t.Fatalf("row 0 proportions lost: %v", out[0])
	}
	if out[1][0] != 0 || math.Abs(out[1][1]-20) > 1e-9 {
		t.Fatalf("row 1 should pile onto the only weighted column: %v", out[1])
	}
}

func TestRenormalizeGrownRosterUniformFallback(t *testing.T) {
	// A client with no history (all-zero weights) spreads uniformly over
	// its allowed columns; a new replica column starts at zero for clients
	// with history.
	demands := []float64{24, 12}
	weights := [][]float64{
		{6, 2, 0}, // third column is the new replica: no history
		{0, 0, 0}, // brand-new client
	}
	allowed := [][]bool{
		{true, true, true},
		{true, false, true},
	}
	out := Renormalize(weights, demands, nil, allowed)
	rowSumsClose(t, out, demands)
	if out[0][2] != 0 {
		t.Fatalf("new replica should start without load from history: %v", out[0])
	}
	if math.Abs(out[1][0]-6) > 1e-9 || out[1][1] != 0 || math.Abs(out[1][2]-6) > 1e-9 {
		t.Fatalf("uniform fallback should respect the mask: %v", out[1])
	}
}

func TestRenormalizeRespectsCaps(t *testing.T) {
	// Renormalizing after a departure would pile 60 MB onto a 40 MB
	// replica; the excess must move to the column with headroom.
	demands := []float64{30, 30}
	weights := [][]float64{
		{30, 0},
		{30, 0},
	}
	caps := []float64{40, 100}
	out := Renormalize(weights, demands, caps, nil)
	rowSumsClose(t, out, demands)
	cols := ColSums(out)
	for j, cap := range caps {
		if cols[j] > cap+1e-6 {
			t.Fatalf("column %d load %g exceeds cap %g", j, cols[j], cap)
		}
	}
}

func TestRenormalizeCapsWithMask(t *testing.T) {
	// Row 0 may only use columns 0 and 1; excess from column 0 must not
	// leak onto its disallowed column 2.
	demands := []float64{50, 10}
	weights := [][]float64{
		{50, 0, 0},
		{10, 0, 0},
	}
	caps := []float64{20, 60, 60}
	allowed := [][]bool{
		{true, true, false},
		{true, true, true},
	}
	out := Renormalize(weights, demands, caps, allowed)
	rowSumsClose(t, out, demands)
	if out[0][2] != 0 {
		t.Fatalf("excess leaked onto a disallowed column: %v", out[0])
	}
	cols := ColSums(out)
	for j, cap := range caps {
		if cols[j] > cap+1e-6 {
			t.Fatalf("column %d load %g exceeds cap %g", j, cols[j], cap)
		}
	}
}

func TestRenormalizeInfeasibleStillConserves(t *testing.T) {
	// Total demand 100 over total capacity 60: caps cannot hold, but
	// conservation must — downstream projection owns feasibility.
	demands := []float64{60, 40}
	weights := [][]float64{
		{1, 1},
		{1, 1},
	}
	caps := []float64{30, 30}
	out := Renormalize(weights, demands, caps, nil)
	rowSumsClose(t, out, demands)
}

func TestRenormalizeEmptyAndZeroColumns(t *testing.T) {
	if out := Renormalize(nil, nil, nil, nil); len(out) != 0 {
		t.Fatalf("empty input should give empty output, got %v", out)
	}
}
