package opt

import "sync"

// Pool is an arena-style recycler for the dense matrices and vectors a
// round driver's steady state churns through. Each scheduling round used
// to re-`make` its primal/average/row-sum scratch; a long-lived Pool lets
// consecutive rounds of the same shape reuse those buffers instead, so the
// steady-state iteration allocates (almost) nothing.
//
// Matrix and Vector hand out zeroed buffers and remember them; Release
// returns every outstanding buffer to the per-shape free lists. A buffer
// that must outlive the round — the final assignment a report keeps — must
// be copied out (Clone) before Release, never returned directly.
//
// A Pool is safe for concurrent use, but the intended discipline is one
// round at a time: acquire during Init/iterate, Release when the round
// ends (success or failure alike).
type Pool struct {
	mu      sync.Mutex
	freeMat map[[2]int][][][]float64
	freeVec map[int][][]float64
	liveMat [][][]float64
	liveVec [][]float64
}

// Matrix returns a zeroed rows×cols matrix, reusing a released one of the
// same shape when available.
func (p *Pool) Matrix(rows, cols int) [][]float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	key := [2]int{rows, cols}
	var m [][]float64
	if free := p.freeMat[key]; len(free) > 0 {
		m = free[len(free)-1]
		p.freeMat[key] = free[:len(free)-1]
		Fill(m, 0)
	} else {
		m = NewMatrix(rows, cols)
	}
	p.liveMat = append(p.liveMat, m)
	return m
}

// Vector returns a zeroed length-n vector, reusing a released one of the
// same length when available.
func (p *Pool) Vector(n int) []float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	var v []float64
	if free := p.freeVec[n]; len(free) > 0 {
		v = free[len(free)-1]
		p.freeVec[n] = free[:len(free)-1]
		for i := range v {
			v[i] = 0
		}
	} else {
		v = make([]float64, n)
	}
	p.liveVec = append(p.liveVec, v)
	return v
}

// Release returns every buffer handed out since the last Release to the
// free lists. Callers must not touch previously acquired buffers after
// Release — the next round will overwrite them.
func (p *Pool) Release() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.freeMat == nil {
		p.freeMat = make(map[[2]int][][][]float64)
	}
	if p.freeVec == nil {
		p.freeVec = make(map[int][][]float64)
	}
	for _, m := range p.liveMat {
		cols := 0
		if len(m) > 0 {
			cols = len(m[0])
		}
		key := [2]int{len(m), cols}
		p.freeMat[key] = append(p.freeMat[key], m)
	}
	for _, v := range p.liveVec {
		p.freeVec[len(v)] = append(p.freeVec[len(v)], v)
	}
	p.liveMat = p.liveMat[:0]
	p.liveVec = p.liveVec[:0]
}
