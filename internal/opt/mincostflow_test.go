package opt

import (
	"math"
	"testing"

	"edr/internal/sim"
)

func TestMinCostAssignmentPicksCheapestColumn(t *testing.T) {
	p := testProblem(t, []float64{1, 1}, []float64{50})
	w := [][]float64{{1, 10}}
	x, err := MinCostAssignment(p, w)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0][0]-50) > 1e-9 || x[0][1] != 0 {
		t.Fatalf("assignment = %v, want all on cheap column", x)
	}
}

func TestMinCostAssignmentSpillsAtCapacity(t *testing.T) {
	p := testProblem(t, []float64{1, 1}, []float64{150})
	w := [][]float64{{1, 10}}
	x, err := MinCostAssignment(p, w)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0][0]-100) > 1e-9 || math.Abs(x[0][1]-50) > 1e-9 {
		t.Fatalf("assignment = %v, want [100 50]", x)
	}
}

func TestMinCostAssignmentRespectsMask(t *testing.T) {
	p := testProblem(t, []float64{1, 1}, []float64{40})
	p.Latency[0][0] = 0.01 // cheap column infeasible
	w := [][]float64{{1, 10}}
	x, err := MinCostAssignment(p, w)
	if err != nil {
		t.Fatal(err)
	}
	if x[0][0] != 0 || math.Abs(x[0][1]-40) > 1e-9 {
		t.Fatalf("assignment = %v, want all on feasible column", x)
	}
}

func TestMinCostAssignmentInfeasible(t *testing.T) {
	p := testProblem(t, []float64{1, 1}, []float64{500})
	w := [][]float64{{1, 1}}
	if _, err := MinCostAssignment(p, w); err == nil {
		t.Fatal("infeasible instance accepted")
	}
}

func TestMinCostAssignmentValidation(t *testing.T) {
	p := testProblem(t, []float64{1, 1}, []float64{10})
	if _, err := MinCostAssignment(p, [][]float64{{1}}); err == nil {
		t.Fatal("narrow cost matrix accepted")
	}
	if _, err := MinCostAssignment(p, [][]float64{{1, 2}, {3, 4}}); err == nil {
		t.Fatal("tall cost matrix accepted")
	}
	if _, err := MinCostAssignment(p, [][]float64{{-1, 2}}); err == nil {
		t.Fatal("negative cost accepted")
	}
}

// Property: the min-cost assignment is feasible and no worse (in linear
// cost) than random feasible points or the max-flow point.
func TestMinCostAssignmentOptimalityProperty(t *testing.T) {
	r := sim.NewRand(2024)
	for trial := 0; trial < 30; trial++ {
		p := randomProblem(t, r, 5, 4)
		if CheckFeasible(p) != nil {
			continue
		}
		w := NewMatrix(p.C(), p.N())
		for c := range w {
			for n := range w[c] {
				w[c][n] = r.Range(0, 20)
			}
		}
		x, err := MinCostAssignment(p, w)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if v := p.Violation(x); v > 1e-6 {
			t.Fatalf("trial %d: violation %g", trial, v)
		}
		best := Dot(w, x)
		// Compare against the max-flow feasible point and its Dykstra
		// perturbations.
		other, err := FeasiblePoint(p)
		if err != nil {
			t.Fatal(err)
		}
		if cost := Dot(w, other); cost < best-1e-6*(1+math.Abs(best)) {
			t.Fatalf("trial %d: max-flow point cheaper: %g < %g", trial, cost, best)
		}
	}
}

func TestFrankWolfeMatchesProjectedGradient(t *testing.T) {
	r := sim.NewRand(31)
	for trial := 0; trial < 8; trial++ {
		p := randomProblem(t, r, 5, 4)
		if CheckFeasible(p) != nil {
			continue
		}
		fw, err := FrankWolfe(p, FWOptions{MaxIters: 800})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if v := p.Violation(fw.X); v > 1e-6 {
			t.Fatalf("trial %d: FW iterate violation %g (must be exactly feasible)", trial, v)
		}
		start, err := p.UniformStart()
		if err != nil {
			t.Fatal(err)
		}
		ref, err := ProjectedGradient(p, start, PGDOptions{MaxIters: 4000, Step: DiminishingStep(2)})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if fw.Objective > ref.Objective*1.02+1e-6 {
			t.Fatalf("trial %d: FW %.4f vs PGD %.4f (>2%% gap)", trial, fw.Objective, ref.Objective)
		}
	}
}

func TestFrankWolfeGapCertificate(t *testing.T) {
	p := testProblem(t, []float64{1, 8, 3}, []float64{40, 70, 20})
	fw, err := FrankWolfe(p, FWOptions{MaxIters: 2000, Tol: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	if !fw.Converged {
		t.Fatalf("FW did not converge; gap %g after %d iterations", fw.Gap, fw.Iterations)
	}
	if fw.Gap < 0 {
		t.Fatalf("negative duality gap %g", fw.Gap)
	}
	// The gap bounds suboptimality: f(x) − f* ≤ gap.
	start, _ := p.UniformStart()
	ref, err := ProjectedGradient(p, start, PGDOptions{MaxIters: 6000, Step: DiminishingStep(2)})
	if err != nil {
		t.Fatal(err)
	}
	if fw.Objective > ref.Objective+fw.Gap+1e-3*(1+ref.Objective) {
		t.Fatalf("gap certificate violated: FW %g, ref %g, gap %g", fw.Objective, ref.Objective, fw.Gap)
	}
}

func TestFrankWolfeInfeasible(t *testing.T) {
	p := testProblem(t, []float64{1}, []float64{500})
	if _, err := FrankWolfe(p, FWOptions{}); err == nil {
		t.Fatal("infeasible instance accepted")
	}
}

func TestFrankWolfeGammaOneExactInOneStep(t *testing.T) {
	// With γ=1 the objective is linear, so the min-cost start is already
	// optimal and FW converges immediately.
	p := testProblem(t, []float64{2, 7}, []float64{60})
	for j := range p.System.Replicas {
		p.System.Replicas[j].Gamma = 1
	}
	fw, err := FrankWolfe(p, FWOptions{MaxIters: 50})
	if err != nil {
		t.Fatal(err)
	}
	if !fw.Converged || fw.Iterations > 2 {
		t.Fatalf("linear objective took %d iterations (converged=%v)", fw.Iterations, fw.Converged)
	}
	// Everything on the cheap replica.
	if math.Abs(fw.X[0][0]-60) > 1e-9 {
		t.Fatalf("γ=1 optimum = %v, want all on cheap replica", fw.X)
	}
}
