package opt

import (
	"fmt"
	"math"
	"sort"
)

// RoundDelta classifies how one round's problem differs from the previous
// committed round. It is the contract between the runtime's incremental
// re-optimization path and the solver layer: clients outside DirtyClients
// may keep their committed assignment rows verbatim, because neither their
// demand, their feasibility row, nor any replica they can reach has
// changed; only the dirty rows need a fresh solve (against residual
// capacity, with the clean rows' column loads frozen into Replica.Base).
type RoundDelta struct {
	// DirtyClients lists next-round row indices that must be re-solved,
	// ascending. A client is dirty when its demand drifted beyond the
	// relative epsilon, its feasibility row changed, it is new this round,
	// or any replica it can reach is dirty (the promotion rule: a changed
	// replica re-prices every column entry on it, so all of its reachable
	// rows re-enter the subproblem and the frozen load on a dirty replica
	// is exactly zero).
	DirtyClients []int
	// CleanClients is the ascending complement of DirtyClients.
	CleanClients []int
	// DirtyReplicas lists next-round column indices whose energy-model
	// parameters (price, α, β, γ, bandwidth) changed, ascending.
	DirtyReplicas []int

	// DemandDrift counts clients dirty because of demand movement.
	DemandDrift int
	// MaskChanged counts clients dirty because their feasibility row
	// changed (including clients new this round).
	MaskChanged int
	// Promoted counts clients dirty only by replica promotion.
	Promoted int
}

// Dirty reports whether any re-solve work exists at all. A false return is
// the quiet-round fast path: the committed assignment is already optimal
// for this round's problem.
func (d *RoundDelta) Dirty() bool { return len(d.DirtyClients) > 0 }

// DiffRounds diffs the next round's problem against the previous committed
// one and returns the dirty sets.
//
// rowMap[c] gives the previous-round row index of next-round client c, or
// −1 for a client with no previous row (new this round → dirty). colMap[n]
// gives the previous-round column of next-round replica n; the replica
// rosters must be identical up to permutation — membership changes are an
// epoch change the caller handles by full solve, not a diff. eps is the
// relative demand-drift threshold: client c is clean only while
// |R_new − R_old| ≤ eps·max(R_old, R_new, tiny).
func DiffRounds(prev, next *Problem, rowMap, colMap []int, eps float64) (*RoundDelta, error) {
	if len(rowMap) != next.C() {
		return nil, fmt.Errorf("opt: DiffRounds rowMap has %d entries for %d clients", len(rowMap), next.C())
	}
	if len(colMap) != next.N() || next.N() != prev.N() {
		return nil, fmt.Errorf("opt: DiffRounds colMap has %d entries for %d→%d replicas",
			len(colMap), prev.N(), next.N())
	}
	if eps < 0 {
		return nil, fmt.Errorf("opt: DiffRounds negative epsilon %g", eps)
	}
	seen := make([]bool, prev.N())
	for n, pn := range colMap {
		if pn < 0 || pn >= prev.N() || seen[pn] {
			return nil, fmt.Errorf("opt: DiffRounds colMap[%d]=%d is not a permutation of the previous columns", n, pn)
		}
		seen[pn] = true
	}

	d := &RoundDelta{}
	dirtyRep := make([]bool, next.N())
	for n := range dirtyRep {
		a, b := next.System.Replicas[n], prev.System.Replicas[colMap[n]]
		if a.Price != b.Price || a.Alpha != b.Alpha || a.Beta != b.Beta ||
			a.Gamma != b.Gamma || a.Bandwidth != b.Bandwidth {
			dirtyRep[n] = true
			d.DirtyReplicas = append(d.DirtyReplicas, n)
		}
	}

	prevMask, nextMask := prev.Allowed(), next.Allowed()
	const tiny = 1e-12
	for c := 0; c < next.C(); c++ {
		pc := rowMap[c]
		if pc < 0 || pc >= prev.C() {
			d.MaskChanged++
			d.DirtyClients = append(d.DirtyClients, c)
			continue
		}
		rOld, rNew := prev.Demands[pc], next.Demands[c]
		if math.Abs(rNew-rOld) > eps*math.Max(math.Max(rOld, rNew), tiny) {
			d.DemandDrift++
			d.DirtyClients = append(d.DirtyClients, c)
			continue
		}
		row, prow := nextMask[c], prevMask[pc]
		changed, promoted := false, false
		for n, ok := range row {
			if ok != prow[colMap[n]] {
				changed = true
				break
			}
			if ok && dirtyRep[n] {
				promoted = true
			}
		}
		switch {
		case changed:
			d.MaskChanged++
			d.DirtyClients = append(d.DirtyClients, c)
		case promoted:
			d.Promoted++
			d.DirtyClients = append(d.DirtyClients, c)
		default:
			d.CleanClients = append(d.CleanClients, c)
		}
	}
	sort.Ints(d.DirtyClients)
	return d, nil
}

// KKTGap is the cheap first-order optimality check gating incremental
// results. For the EDR objective the feasible set is a transportation
// polytope and the cost depends on the assignment only through column
// sums, so at an optimum every client's served replicas share the lowest
// attainable marginal: no used replica may be strictly more expensive (at
// the margin) than a reachable replica with spare capacity. The returned
// gap sums, over clients, R_c times the positive part of
//
//	max marginal over used replicas − min marginal over unsaturated
//	reachable replicas
//
// which upper-bounds nothing exactly but scales like the first-order
// improvement a mass shift could achieve; the runtime compares it against
// a small fraction of the objective and escalates to a full solve when it
// is large. A return of 0 means x passes the stationarity spot-check.
func KKTGap(p *Problem, x [][]float64) float64 {
	n := p.N()
	cols := ColSums(x)
	marginal := make([]float64, n)
	unsat := make([]bool, n)
	for j := 0; j < n; j++ {
		rep := p.System.Replicas[j]
		marginal[j] = rep.MarginalCost(cols[j])
		unsat[j] = cols[j] < rep.Bandwidth-1e-9*math.Max(1, rep.Bandwidth)
	}
	mask := p.Allowed()
	const tiny = 1e-9
	gap := 0.0
	for c, row := range x {
		maxUsed := math.Inf(-1)
		minFree := math.Inf(1)
		for j, v := range row {
			if v > tiny*math.Max(1, p.Demands[c]) && marginal[j] > maxUsed {
				maxUsed = marginal[j]
			}
			if mask[c][j] && unsat[j] && marginal[j] < minFree {
				minFree = marginal[j]
			}
		}
		if diff := maxUsed - minFree; diff > 0 && !math.IsInf(maxUsed, -1) && !math.IsInf(minFree, 1) {
			gap += p.Demands[c] * diff
		}
	}
	return gap
}
