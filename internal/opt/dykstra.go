package opt

import (
	"fmt"
	"math"
)

// Dykstra's alternating projection algorithm for the Euclidean projection
// onto an intersection of convex sets, given the individual projections.
// Unlike plain alternating projections, Dykstra's correction terms make the
// limit the true nearest point of the intersection, which the optimization
// theory for projected (sub)gradient methods requires.

// SetProjection projects its argument matrix onto one convex set, in place.
type SetProjection func(x [][]float64) error

// DykstraOptions tunes the alternating-projection loop.
type DykstraOptions struct {
	// MaxSweeps bounds full passes over all sets. Default 200.
	MaxSweeps int
	// Tol stops when successive sweeps move the iterate less than Tol in
	// Frobenius norm. Default 1e-9.
	Tol float64
}

func (o *DykstraOptions) defaults() {
	if o.MaxSweeps <= 0 {
		o.MaxSweeps = 200
	}
	if o.Tol <= 0 {
		o.Tol = 1e-9
	}
}

// Dykstra projects x in place onto the intersection of the given sets.
// It returns the number of sweeps performed, or an error if any individual
// projection fails (e.g. an empty capped simplex).
func Dykstra(x [][]float64, sets []SetProjection, opts DykstraOptions) (int, error) {
	opts.defaults()
	if len(sets) == 0 {
		return 0, nil
	}
	rows := len(x)
	cols := 0
	if rows > 0 {
		cols = len(x[0])
	}
	// One correction matrix per set.
	corrections := make([][][]float64, len(sets))
	for i := range corrections {
		corrections[i] = NewMatrix(rows, cols)
	}
	scratch := NewMatrix(rows, cols)
	// inAllSets reports whether x is within tol of every set. Checking set
	// membership directly (rather than per-sweep movement) is essential:
	// Dykstra's iterate can sit still for several sweeps while correction
	// terms are still accumulating, so a movement-based stop fires early.
	inAllSets := func() (bool, error) {
		for i, project := range sets {
			Copy(scratch, x)
			if err := project(scratch); err != nil {
				return false, fmt.Errorf("opt: dykstra set %d: %w", i, err)
			}
			if Dist(scratch, x) > opts.Tol {
				return false, nil
			}
		}
		return true, nil
	}
	for sweep := 1; sweep <= opts.MaxSweeps; sweep++ {
		for i, project := range sets {
			// y = x + correction_i ; x = P_i(y) ; correction_i = y − x.
			Add(x, corrections[i])
			Copy(corrections[i], x)
			if err := project(x); err != nil {
				return sweep, fmt.Errorf("opt: dykstra set %d: %w", i, err)
			}
			Sub(corrections[i], x)
		}
		ok, err := inAllSets()
		if err != nil {
			return sweep, err
		}
		if ok {
			return sweep, nil
		}
	}
	return opts.MaxSweeps, nil
}

// FeasibleSetProjections builds the set list describing the global feasible
// region of prob:
//
//  1. per-row masked capped simplexes  {Σ_n p_{c,n} = R_c, 0 ≤ p ≤ R_c,
//     mask} — demand, box and latency constraints, and
//  2. per-column halfspaces            {Σ_c p_{c,n} ≤ B_n} — capacity.
//
// Their intersection is exactly the constraint set of Eq. 2.
func FeasibleSetProjections(prob *Problem) []SetProjection {
	return FeasibleSetProjectionsPar(prob, nil)
}

// FeasibleSetProjectionsPar is FeasibleSetProjections with the row and
// column sweeps fanned over par (nil = serial). Every row (and every
// column) projection writes disjoint state, so the parallel sweeps are
// bit-identical to the serial ones. The returned closures own per-chunk
// scratch: each is safe for repeated sequential calls (Dykstra's usage)
// but not for concurrent calls of the same closure.
func FeasibleSetProjectionsPar(prob *Problem, par *Parallel) []SetProjection {
	mask := prob.Allowed()
	caps := prob.Caps()
	c, n := prob.C(), prob.N()
	par = par.Gate(c * n)
	rowsSet := func(x [][]float64) error {
		return par.ForErr(len(x), func(_, lo, hi int) error {
			for c := lo; c < hi; c++ {
				if err := ProjectMaskedCappedSimplex(x[c], caps[c], mask[c], prob.Demands[c]); err != nil {
					return fmt.Errorf("client %d: %w", c, err)
				}
			}
			return nil
		})
	}
	// One column-gather scratch per chunk, hoisted out of the sweep loop
	// (serial callers get exactly one).
	colScratch := make([][]float64, par.Chunks(n))
	for i := range colScratch {
		colScratch[i] = make([]float64, c)
	}
	colsSet := func(x [][]float64) error {
		par.For(n, func(chunk, lo, hi int) {
			col := colScratch[chunk]
			for j := lo; j < hi; j++ {
				for c := range x {
					col[c] = x[c][j]
				}
				ProjectHalfspaceSumLE(col, prob.System.Replicas[j].Bandwidth)
				for c := range x {
					x[c][j] = col[c]
				}
			}
		})
		return nil
	}
	return []SetProjection{rowsSet, colsSet}
}

// ProjectFeasible projects x in place onto the feasible region of prob
// using Dykstra's algorithm, then verifies the result. tol bounds the
// acceptable residual violation.
func ProjectFeasible(prob *Problem, x [][]float64, tol float64) error {
	return ProjectFeasiblePar(prob, x, tol, nil)
}

// ProjectFeasiblePar is ProjectFeasible with the per-client and per-column
// projection kernels fanned over par (nil = serial, identical results).
// Masked instances dispatch to the packed sparse projector (identical
// guarantees, O(nnz) sweeps); fully-feasible ones keep the dense kernels
// bit-for-bit.
func ProjectFeasiblePar(prob *Problem, x [][]float64, tol float64, par *Parallel) error {
	return ProjectFeasibleMode(prob, x, tol, par, SparseAuto)
}

// ProjectFeasibleMode is ProjectFeasiblePar with explicit sparse-kernel
// dispatch, for solvers exposing a SparseMode knob and for dense-baseline
// benchmarks.
func ProjectFeasibleMode(prob *Problem, x [][]float64, tol float64, par *Parallel, mode SparseMode) error {
	if tol <= 0 {
		tol = 1e-6
	}
	if mode.Enabled(prob.Sparsity()) {
		return ProjectFeasibleSp(prob, x, tol, par)
	}
	sets := FeasibleSetProjectionsPar(prob, par)
	// The row/column sets can meet at a shallow angle when capacities are
	// tight, making Dykstra's linear rate slow; sweeps are cheap
	// (O(C·N log N)) so a generous bound is the right trade.
	if _, err := Dykstra(x, sets, DykstraOptions{MaxSweeps: 5000, Tol: tol / 10}); err != nil {
		return err
	}
	// Final exact row pass so demands hold exactly even if Dykstra stopped
	// on the column set; rows are the equality constraints.
	mask := prob.Allowed()
	caps := prob.Caps()
	if err := par.Gate(prob.C()*prob.N()).ForErr(len(x), func(_, lo, hi int) error {
		for c := lo; c < hi; c++ {
			if err := ProjectMaskedCappedSimplex(x[c], caps[c], mask[c], prob.Demands[c]); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return err
	}
	if v := prob.Violation(x); v > tol && !math.IsNaN(v) {
		return fmt.Errorf("opt: projection left violation %g > tol %g (instance may be infeasible)", v, tol)
	}
	return nil
}
