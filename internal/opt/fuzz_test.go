package opt

import (
	"math"
	"testing"
)

// FuzzProjectSimplex hardens the core projection against arbitrary
// numeric input: for finite inputs the result must be feasible; no input
// may panic.
func FuzzProjectSimplex(f *testing.F) {
	f.Add(1.0, 2.0, 3.0, 4.0, 5.0)
	f.Add(0.0, 0.0, 0.0, 0.0, 0.0)
	f.Add(-1e9, 1e9, 0.5, -0.5, 10.0)
	f.Fuzz(func(t *testing.T, a, b, c, d, s float64) {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsNaN(c) || math.IsNaN(d) ||
			math.IsInf(a, 0) || math.IsInf(b, 0) || math.IsInf(c, 0) || math.IsInf(d, 0) {
			return
		}
		sum := math.Abs(s)
		if math.IsNaN(sum) || math.IsInf(sum, 0) || sum > 1e12 {
			return
		}
		x := []float64{a, b, c, d}
		ProjectSimplex(x, sum)
		total := 0.0
		for i, v := range x {
			if v < -1e-6 {
				t.Fatalf("negative coordinate x[%d] = %g", i, v)
			}
			total += v
		}
		if math.Abs(total-sum) > 1e-6*(1+sum)+1e-4*math.Max(math.Abs(a)+math.Abs(b)+math.Abs(c)+math.Abs(d), 1) {
			t.Fatalf("sum = %g, want %g (input %v)", total, sum, []float64{a, b, c, d})
		}
	})
}

// FuzzProjectCappedSimplex checks the bisection projection never panics
// and always lands inside the box with the right sum when the set is
// non-empty.
func FuzzProjectCappedSimplex(f *testing.F) {
	f.Add(1.0, -2.0, 3.0, 2.0, 2.0, 2.0, 3.0)
	f.Add(0.0, 0.0, 0.0, 1.0, 1.0, 1.0, 0.0)
	f.Fuzz(func(t *testing.T, a, b, c, u1, u2, u3, s float64) {
		for _, v := range []float64{a, b, c, u1, u2, u3, s} {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e9 {
				return
			}
		}
		u := []float64{math.Abs(u1), math.Abs(u2), math.Abs(u3)}
		capSum := u[0] + u[1] + u[2]
		sum := math.Abs(s)
		if sum > capSum {
			sum = capSum
		}
		x := []float64{a, b, c}
		if err := ProjectCappedSimplex(x, u, sum); err != nil {
			t.Fatalf("non-empty set rejected: %v", err)
		}
		total := 0.0
		for i, v := range x {
			if v < -1e-6 || v > u[i]+1e-6 {
				t.Fatalf("x[%d] = %g outside [0, %g]", i, v, u[i])
			}
			total += v
		}
		if math.Abs(total-sum) > 1e-5*(1+sum) {
			t.Fatalf("sum = %g, want %g", total, sum)
		}
	})
}
