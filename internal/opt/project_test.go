package opt

import (
	"math"
	"testing"
	"testing/quick"

	"edr/internal/sim"
)

func sum(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v
	}
	return s
}

func TestClipBox(t *testing.T) {
	x := []float64{-1, 0.5, 3}
	ClipBox(x, []float64{0, 0, 0}, []float64{1, 1, 1})
	want := []float64{0, 0.5, 1}
	for i := range want {
		if x[i] != want[i] {
			t.Fatalf("ClipBox = %v, want %v", x, want)
		}
	}
}

func TestClipBoxInvertedBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ClipBox with lo > hi did not panic")
		}
	}()
	ClipBox([]float64{0}, []float64{2}, []float64{1})
}

func TestProjectSimplexBasic(t *testing.T) {
	x := []float64{0.5, 0.5}
	ProjectSimplex(x, 1)
	if math.Abs(x[0]-0.5) > 1e-12 || math.Abs(x[1]-0.5) > 1e-12 {
		t.Fatalf("point already on simplex moved: %v", x)
	}

	x = []float64{2, 0}
	ProjectSimplex(x, 1)
	// Projection of (2,0) onto the unit simplex is (1.5,−0.5) clipped → (1,0)?
	// The exact solution: θ = 0.5 with support {0} → x = (1.5−θ?..). Work it
	// out: sorted=(2,0); k=0: t=(2−1)/1=1, 2−1>0 ⇒ θ=1; k=1: t=(2−1)/2=0.5,
	// 0−0.5<0 stop. x = (max(2−1,0), max(0−1,0)) = (1, 0).
	if math.Abs(x[0]-1) > 1e-12 || x[1] != 0 {
		t.Fatalf("ProjectSimplex((2,0),1) = %v, want (1,0)", x)
	}
}

func TestProjectSimplexZeroSum(t *testing.T) {
	x := []float64{3, -2, 5}
	ProjectSimplex(x, 0)
	for _, v := range x {
		if v != 0 {
			t.Fatalf("ProjectSimplex(_, 0) = %v", x)
		}
	}
}

func TestProjectSimplexNegativeSumPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative simplex sum did not panic")
		}
	}()
	ProjectSimplex([]float64{1}, -1)
}

// Property: the result is feasible — nonnegative and sums to s.
func TestProjectSimplexFeasibleProperty(t *testing.T) {
	r := sim.NewRand(99)
	for trial := 0; trial < 500; trial++ {
		d := 1 + r.Intn(12)
		s := r.Range(0, 50)
		x := make([]float64, d)
		for i := range x {
			x[i] = r.Range(-20, 20)
		}
		ProjectSimplex(x, s)
		for _, v := range x {
			if v < -1e-12 {
				t.Fatalf("negative coordinate %g", v)
			}
		}
		if math.Abs(sum(x)-s) > 1e-9*(1+s) {
			t.Fatalf("sum = %g, want %g", sum(x), s)
		}
	}
}

// Property: KKT optimality — the projection y of v satisfies
// (v−y)·(z−y) ≤ 0 for every feasible z, i.e. y is the nearest point.
// We check against random feasible z.
func TestProjectSimplexOptimalityProperty(t *testing.T) {
	r := sim.NewRand(7)
	for trial := 0; trial < 300; trial++ {
		d := 2 + r.Intn(8)
		s := r.Range(0.1, 10)
		v := make([]float64, d)
		for i := range v {
			v[i] = r.Range(-5, 5)
		}
		y := append([]float64(nil), v...)
		ProjectSimplex(y, s)
		// Random feasible z: uniform Dirichlet-ish point scaled to s.
		z := make([]float64, d)
		for i := range z {
			z[i] = r.Exp(1)
		}
		zs := sum(z)
		for i := range z {
			z[i] *= s / zs
		}
		inner := 0.0
		for i := range v {
			inner += (v[i] - y[i]) * (z[i] - y[i])
		}
		if inner > 1e-7 {
			t.Fatalf("optimality violated: <v-y, z-y> = %g > 0", inner)
		}
	}
}

// Property: idempotence — projecting a projected point is a no-op.
func TestProjectSimplexIdempotentProperty(t *testing.T) {
	f := func(raw [6]float64, sRaw float64) bool {
		s := math.Abs(sRaw)
		if s > 1e6 || math.IsNaN(s) || math.IsInf(s, 0) {
			return true
		}
		x := make([]float64, 6)
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e6 {
				return true
			}
			x[i] = v
		}
		ProjectSimplex(x, s)
		y := append([]float64(nil), x...)
		ProjectSimplex(y, s)
		for i := range x {
			if math.Abs(x[i]-y[i]) > 1e-9*(1+s) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestProjectSimplexUpperUnderBudget(t *testing.T) {
	x := []float64{0.2, -0.5, 0.1}
	ProjectSimplexUpper(x, 10)
	// Under budget: just the nonnegative clip.
	want := []float64{0.2, 0, 0.1}
	for i := range want {
		if x[i] != want[i] {
			t.Fatalf("got %v, want %v", x, want)
		}
	}
}

func TestProjectSimplexUpperOverBudget(t *testing.T) {
	x := []float64{4, 4}
	ProjectSimplexUpper(x, 2)
	if math.Abs(sum(x)-2) > 1e-9 {
		t.Fatalf("sum = %g, want 2", sum(x))
	}
	if math.Abs(x[0]-1) > 1e-9 || math.Abs(x[1]-1) > 1e-9 {
		t.Fatalf("got %v, want (1,1)", x)
	}
}

func TestProjectCappedSimplexRespectsCaps(t *testing.T) {
	x := []float64{10, 0, 0}
	u := []float64{2, 3, 4}
	if err := ProjectCappedSimplex(x, u, 5); err != nil {
		t.Fatal(err)
	}
	if math.Abs(sum(x)-5) > 1e-6 {
		t.Fatalf("sum = %g, want 5", sum(x))
	}
	for i := range x {
		if x[i] < -1e-9 || x[i] > u[i]+1e-9 {
			t.Fatalf("x[%d] = %g outside [0, %g]", i, x[i], u[i])
		}
	}
	// The first coordinate should be saturated at its cap.
	if math.Abs(x[0]-2) > 1e-6 {
		t.Fatalf("x[0] = %g, want cap 2", x[0])
	}
}

func TestProjectCappedSimplexEmptySet(t *testing.T) {
	x := []float64{1, 1}
	if err := ProjectCappedSimplex(x, []float64{1, 1}, 5); err == nil {
		t.Fatal("sum 5 with caps totalling 2 accepted")
	}
}

func TestProjectCappedSimplexExactCapSum(t *testing.T) {
	x := []float64{0, 0}
	u := []float64{2, 3}
	if err := ProjectCappedSimplex(x, u, 5); err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-2) > 1e-6 || math.Abs(x[1]-3) > 1e-6 {
		t.Fatalf("got %v, want caps (2,3)", x)
	}
}

// Property: capped-simplex projection is feasible and idempotent, and
// agrees with plain simplex projection when caps are slack.
func TestProjectCappedSimplexProperties(t *testing.T) {
	r := sim.NewRand(1234)
	for trial := 0; trial < 500; trial++ {
		d := 1 + r.Intn(10)
		x := make([]float64, d)
		u := make([]float64, d)
		for i := range x {
			x[i] = r.Range(-10, 10)
			u[i] = r.Range(0, 8)
		}
		s := r.Range(0, sum(u))
		if err := ProjectCappedSimplex(x, u, s); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if math.Abs(sum(x)-s) > 1e-6*(1+s) {
			t.Fatalf("trial %d: sum %g, want %g", trial, sum(x), s)
		}
		for i := range x {
			if x[i] < -1e-9 || x[i] > u[i]+1e-9 {
				t.Fatalf("trial %d: x[%d]=%g outside [0,%g]", trial, i, x[i], u[i])
			}
		}
		// Idempotence.
		y := append([]float64(nil), x...)
		if err := ProjectCappedSimplex(y, u, s); err != nil {
			t.Fatal(err)
		}
		for i := range x {
			if math.Abs(x[i]-y[i]) > 1e-6 {
				t.Fatalf("trial %d: not idempotent at %d: %g vs %g", trial, i, x[i], y[i])
			}
		}
	}
}

func TestCappedAgreesWithPlainWhenCapsSlack(t *testing.T) {
	r := sim.NewRand(55)
	for trial := 0; trial < 200; trial++ {
		d := 1 + r.Intn(8)
		s := r.Range(0, 5)
		x := make([]float64, d)
		for i := range x {
			x[i] = r.Range(-5, 5)
		}
		plain := append([]float64(nil), x...)
		ProjectSimplex(plain, s)
		u := make([]float64, d)
		for i := range u {
			u[i] = s + 1 // cap slack: can never bind
		}
		capped := append([]float64(nil), x...)
		if err := ProjectCappedSimplex(capped, u, s); err != nil {
			t.Fatal(err)
		}
		for i := range plain {
			if math.Abs(plain[i]-capped[i]) > 1e-6 {
				t.Fatalf("trial %d: plain %v vs capped %v", trial, plain, capped)
			}
		}
	}
}

func TestProjectHalfspaceSumLE(t *testing.T) {
	x := []float64{3, 3}
	ProjectHalfspaceSumLE(x, 10)
	if x[0] != 3 || x[1] != 3 {
		t.Fatalf("interior point moved: %v", x)
	}
	ProjectHalfspaceSumLE(x, 4)
	if math.Abs(sum(x)-4) > 1e-12 {
		t.Fatalf("sum = %g, want 4", sum(x))
	}
	if math.Abs(x[0]-2) > 1e-12 {
		t.Fatalf("excess not removed uniformly: %v", x)
	}
}

func TestMaskZero(t *testing.T) {
	x := []float64{1, 2, 3}
	MaskZero(x, []bool{true, false, true})
	if x[0] != 1 || x[1] != 0 || x[2] != 3 {
		t.Fatalf("MaskZero = %v", x)
	}
}

func TestProjectMaskedCappedSimplex(t *testing.T) {
	x := []float64{5, 5, 5}
	u := []float64{10, 10, 10}
	allowed := []bool{true, false, true}
	if err := ProjectMaskedCappedSimplex(x, u, allowed, 6); err != nil {
		t.Fatal(err)
	}
	if x[1] != 0 {
		t.Fatalf("masked coordinate nonzero: %v", x)
	}
	if math.Abs(sum(x)-6) > 1e-6 {
		t.Fatalf("sum = %g, want 6", sum(x))
	}
	if math.Abs(x[0]-3) > 1e-6 || math.Abs(x[2]-3) > 1e-6 {
		t.Fatalf("split not symmetric: %v", x)
	}
}

func TestProjectMaskedCappedSimplexAllMasked(t *testing.T) {
	x := []float64{1, 1}
	err := ProjectMaskedCappedSimplex(x, []float64{5, 5}, []bool{false, false}, 3)
	if err == nil {
		t.Fatal("required sum with no allowed coordinates accepted")
	}
	// Zero sum with no allowed coordinates is fine.
	if err := ProjectMaskedCappedSimplex(x, []float64{5, 5}, []bool{false, false}, 0); err != nil {
		t.Fatal(err)
	}
	if x[0] != 0 || x[1] != 0 {
		t.Fatalf("got %v, want zeros", x)
	}
}
