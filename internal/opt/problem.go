package opt

import (
	"fmt"
	"math"
	"sync"

	"edr/internal/model"
)

// Problem is one instance of the EDR replica-selection optimization
// (paper Eq. 2): given clients with demands and a replica system with
// prices/capacities, find the load split P minimizing total energy cost.
type Problem struct {
	// System carries the replica energy-model parameters (u, α, β, γ, B).
	System *model.System
	// Demands holds R_c, the requested traffic (MB) per client.
	Demands []float64
	// Latency holds l_{c,n} in seconds from client c to replica n.
	Latency [][]float64
	// MaxLatency is T, the user-defined maximum tolerable latency
	// (seconds). Replicas with l_{c,n} > T may not serve client c.
	MaxLatency float64

	// maskMu guards mask and sparse, the cached feasibility views Allowed()
	// and Sparsity() serve. Latency and MaxLatency must not change after
	// the first Allowed()/Sparsity() call unless InvalidateMask is called
	// in between.
	maskMu sync.Mutex
	mask   [][]bool
	sparse *Sparsity
}

// Validate checks structural and numeric consistency.
func (p *Problem) Validate() error {
	if p.System == nil {
		return fmt.Errorf("opt: problem has no system")
	}
	n := p.System.N()
	if len(p.Demands) == 0 {
		return fmt.Errorf("opt: problem has no clients")
	}
	for c, r := range p.Demands {
		if r < 0 || math.IsNaN(r) || math.IsInf(r, 0) {
			return fmt.Errorf("opt: client %d demand %g invalid", c, r)
		}
	}
	if len(p.Latency) != len(p.Demands) {
		return fmt.Errorf("opt: latency has %d rows for %d clients", len(p.Latency), len(p.Demands))
	}
	for c, row := range p.Latency {
		if len(row) != n {
			return fmt.Errorf("opt: latency row %d has %d cols for %d replicas", c, len(row), n)
		}
		for j, l := range row {
			if l < 0 || math.IsNaN(l) {
				return fmt.Errorf("opt: latency[%d][%d] = %g invalid", c, j, l)
			}
		}
	}
	if p.MaxLatency <= 0 {
		return fmt.Errorf("opt: non-positive max latency %g", p.MaxLatency)
	}
	return nil
}

// C returns the number of clients |C|.
func (p *Problem) C() int { return len(p.Demands) }

// N returns the number of replicas |N|.
func (p *Problem) N() int { return p.System.N() }

// Allowed returns the latency-feasibility mask: Allowed()[c][n] reports
// whether replica n may serve client c (l_{c,n} ≤ T). The mask is built
// once and cached — projection sweeps and solver inits call this every
// round, and at client scale rebuilding |C|×|N| booleans per call
// dominates the allocation profile. Callers must treat the result as
// read-only; mutate Latency only before the first call or after
// InvalidateMask.
func (p *Problem) Allowed() [][]bool {
	p.maskMu.Lock()
	defer p.maskMu.Unlock()
	return p.allowedLocked()
}

func (p *Problem) allowedLocked() [][]bool {
	if p.mask == nil {
		mask := make([][]bool, p.C())
		cells := make([]bool, p.C()*p.N())
		for c := range mask {
			mask[c], cells = cells[:p.N():p.N()], cells[p.N():]
			for j := range mask[c] {
				mask[c][j] = p.Latency[c][j] <= p.MaxLatency
			}
		}
		p.mask = mask
	}
	return p.mask
}

// Sparsity returns the cached CSR/CSC index view of the feasibility mask,
// building it (and the mask) on first use. Like Allowed, the result is
// shared and read-only; InvalidateMask drops it together with the mask.
func (p *Problem) Sparsity() *Sparsity {
	p.maskMu.Lock()
	defer p.maskMu.Unlock()
	if p.sparse == nil {
		p.sparse = NewSparsity(p.allowedLocked())
	}
	return p.sparse
}

// PrimeMask seeds the cached feasibility mask and sparsity view with
// precomputed values, so a Problem assembled from structures that already
// know their mask (the cohort layer's reduced instance) never rebuilds
// either on first solver touch. The mask must agree with Latency and
// MaxLatency — callers own that contract — and both arguments become
// shared read-only state, exactly as if Allowed()/Sparsity() had built
// them. Panics on dimension mismatch, matching the package's contract
// violations elsewhere.
func (p *Problem) PrimeMask(mask [][]bool, sp *Sparsity) {
	if len(mask) != p.C() {
		panic(fmt.Sprintf("opt: PrimeMask with %d rows for %d clients", len(mask), p.C()))
	}
	for c, row := range mask {
		if len(row) != p.N() {
			panic(fmt.Sprintf("opt: PrimeMask row %d has %d cols for %d replicas", c, len(row), p.N()))
		}
	}
	if sp != nil && (sp.C != p.C() || sp.N != p.N()) {
		panic(fmt.Sprintf("opt: PrimeMask sparsity %dx%d for %dx%d problem", sp.C, sp.N, p.C(), p.N()))
	}
	p.maskMu.Lock()
	p.mask = mask
	p.sparse = sp
	p.maskMu.Unlock()
}

// InvalidateMask drops the cached feasibility mask and its sparsity view.
// Call it after mutating Latency or MaxLatency on a Problem that may
// already have served Allowed() or Sparsity() (e.g. probgen folding a
// placement map into the latencies).
func (p *Problem) InvalidateMask() {
	p.maskMu.Lock()
	p.mask = nil
	p.sparse = nil
	p.maskMu.Unlock()
}

// Cost evaluates the global objective E_g at assignment matrix x.
func (p *Problem) Cost(x [][]float64) float64 {
	cost, err := p.System.TotalCost(x)
	if err != nil {
		panic("opt: Cost on malformed matrix: " + err.Error())
	}
	return cost
}

// Energy evaluates total joules Σ E_n at assignment matrix x.
func (p *Problem) Energy(x [][]float64) float64 {
	e, err := p.System.TotalEnergy(x)
	if err != nil {
		panic("opt: Energy on malformed matrix: " + err.Error())
	}
	return e
}

// Gradient evaluates ∇E_g at x.
func (p *Problem) Gradient(x [][]float64) [][]float64 {
	g, err := p.System.Gradient(x)
	if err != nil {
		panic("opt: Gradient on malformed matrix: " + err.Error())
	}
	return g
}

// Violation quantifies constraint violation of x: the maximum over demand
// shortfall/excess |Σ_n p_{c,n} − R_c|, capacity excess (Σ_c p_{c,n} − B_n)₊,
// negativity (−p)₊, and latency-mask violations. A feasible point has
// Violation ≈ 0.
func (p *Problem) Violation(x [][]float64) float64 {
	worst := 0.0
	rows := RowSums(x)
	for c, r := range rows {
		worst = math.Max(worst, math.Abs(r-p.Demands[c]))
	}
	cols := ColSums(x)
	for n, load := range cols {
		worst = math.Max(worst, load-p.System.Replicas[n].Bandwidth)
	}
	mask := p.Allowed()
	for c := range x {
		for n, v := range x[c] {
			worst = math.Max(worst, -v)
			if !mask[c][n] {
				worst = math.Max(worst, math.Abs(v))
			}
		}
	}
	return worst
}

// Feasible reports whether x satisfies every constraint within tol.
func (p *Problem) Feasible(x [][]float64, tol float64) bool {
	return p.Violation(x) <= tol
}

// UniformStart returns the canonical starting point: each client's demand
// split evenly across its latency-feasible replicas. The result satisfies
// demand, box, and mask constraints; capacities may be violated (solvers
// project it before use). An error is returned if some client has no
// feasible replica.
func (p *Problem) UniformStart() ([][]float64, error) {
	mask := p.Allowed()
	x := NewMatrix(p.C(), p.N())
	for c := range x {
		feasible := 0
		for _, ok := range mask[c] {
			if ok {
				feasible++
			}
		}
		if feasible == 0 {
			return nil, fmt.Errorf("opt: client %d has no replica within latency bound", c)
		}
		share := p.Demands[c] / float64(feasible)
		for n, ok := range mask[c] {
			if ok {
				x[c][n] = share
			}
		}
	}
	return x, nil
}

// Caps returns per-entry upper bounds for row projections: p_{c,n} ≤ R_c
// (a client never receives more than it asked for from any one replica).
func (p *Problem) Caps() [][]float64 {
	u := NewMatrix(p.C(), p.N())
	for c := range u {
		for n := range u[c] {
			u[c][n] = p.Demands[c]
		}
	}
	return u
}
