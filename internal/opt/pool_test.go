package opt

import "testing"

func TestPoolReusesBuffersAcrossRounds(t *testing.T) {
	var p Pool
	m1 := p.Matrix(3, 4)
	v1 := p.Vector(5)
	m1[1][2] = 9
	v1[0] = 7
	p.Release()

	m2 := p.Matrix(3, 4)
	v2 := p.Vector(5)
	if &m2[0][0] != &m1[0][0] {
		t.Error("same-shape matrix not reused after Release")
	}
	if &v2[0] != &v1[0] {
		t.Error("same-length vector not reused after Release")
	}
	// Reused buffers must come back zeroed.
	for i := range m2 {
		for j := range m2[i] {
			if m2[i][j] != 0 {
				t.Fatalf("reused matrix dirty at [%d][%d] = %g", i, j, m2[i][j])
			}
		}
	}
	for i, x := range v2 {
		if x != 0 {
			t.Fatalf("reused vector dirty at [%d] = %g", i, x)
		}
	}
}

func TestPoolShapesAreDistinct(t *testing.T) {
	var p Pool
	m1 := p.Matrix(2, 3)
	p.Release()
	m2 := p.Matrix(3, 2) // different shape: must be a fresh allocation
	if len(m2) != 3 || len(m2[0]) != 2 {
		t.Fatalf("matrix shape %dx%d, want 3x2", len(m2), len(m2[0]))
	}
	_ = m1
}

func TestPoolConcurrentAcquire(t *testing.T) {
	var p Pool
	done := make(chan [][]float64, 8)
	for i := 0; i < 8; i++ {
		go func() { done <- p.Matrix(4, 4) }()
	}
	seen := make(map[*float64]bool)
	for i := 0; i < 8; i++ {
		m := <-done
		if seen[&m[0][0]] {
			t.Fatal("pool handed the same live matrix to two goroutines")
		}
		seen[&m[0][0]] = true
	}
}

func TestRowSumsInto(t *testing.T) {
	m := [][]float64{{1, 2}, {3, 4}}
	dst := []float64{99, 99}
	got := RowSumsInto(dst, m)
	if &got[0] != &dst[0] {
		t.Fatal("RowSumsInto did not write into dst")
	}
	if got[0] != 3 || got[1] != 7 {
		t.Fatalf("RowSumsInto = %v, want [3 7]", got)
	}
}
