package opt

import (
	"errors"
	"sync/atomic"
	"testing"
)

func TestParallelCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{-1, 1, 2, 3, 8, 64} {
		p := NewParallel(workers)
		for _, n := range []int{0, 1, 2, 7, 64, 1001} {
			hits := make([]int32, n)
			p.For(n, func(_, lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d covered %d times", workers, n, i, h)
				}
			}
		}
	}
}

func TestParallelChunkIndexesAreDense(t *testing.T) {
	p := NewParallel(4)
	const n = 37
	want := p.Chunks(n)
	seen := make([]int32, want)
	p.For(n, func(chunk, lo, hi int) {
		if chunk < 0 || chunk >= want {
			t.Errorf("chunk %d outside [0,%d)", chunk, want)
			return
		}
		atomic.AddInt32(&seen[chunk], 1)
	})
	for c, s := range seen {
		if s != 1 {
			t.Fatalf("chunk %d ran %d times", c, s)
		}
	}
}

func TestParallelNilAndSerialAreInline(t *testing.T) {
	var p *Parallel
	if got := p.Workers(); got != 1 {
		t.Fatalf("nil pool Workers() = %d, want 1", got)
	}
	if got := NewParallel(-1); got != nil {
		t.Fatalf("NewParallel(-1) = %v, want nil", got)
	}
	if got := NewParallel(1); got != nil {
		t.Fatalf("NewParallel(1) = %v, want nil", got)
	}
	calls := 0
	p.For(10, func(chunk, lo, hi int) {
		calls++
		if chunk != 0 || lo != 0 || hi != 10 {
			t.Fatalf("nil pool chunked: chunk=%d lo=%d hi=%d", chunk, lo, hi)
		}
	})
	if calls != 1 {
		t.Fatalf("nil pool made %d calls, want 1", calls)
	}
}

func TestParallelForErrReturnsLowestChunkError(t *testing.T) {
	p := NewParallel(4)
	e1, e3 := errors.New("chunk 1"), errors.New("chunk 3")
	err := p.ForErr(400, func(chunk, lo, hi int) error {
		switch chunk {
		case 1:
			return e1
		case 3:
			return e3
		}
		return nil
	})
	if err != e1 {
		t.Fatalf("ForErr returned %v, want lowest-chunk error %v", err, e1)
	}
	if err := p.ForErr(100, func(_, _, _ int) error { return nil }); err != nil {
		t.Fatalf("ForErr with no failures returned %v", err)
	}
}

func TestParallelNestedRegionsStayBounded(t *testing.T) {
	p := NewParallel(4)
	var live, peak int32
	p.For(16, func(_, lo, hi int) {
		// Nested fan-out from inside a chunk: must complete (inline when
		// saturated) and never exceed the worker bound.
		p.For(64, func(_, lo2, hi2 int) {
			n := atomic.AddInt32(&live, 1)
			for {
				old := atomic.LoadInt32(&peak)
				if n <= old || atomic.CompareAndSwapInt32(&peak, old, n) {
					break
				}
			}
			atomic.AddInt32(&live, -1)
		})
	})
	if int(peak) > p.Workers() {
		t.Fatalf("nested fan-out reached %d concurrent bodies, bound is %d", peak, p.Workers())
	}
}

func TestParallelGate(t *testing.T) {
	p := NewParallel(8)
	if p.Gate(parallelGrain-1) != nil {
		t.Fatal("Gate kept the pool below the grain")
	}
	if p.Gate(parallelGrain) != p {
		t.Fatal("Gate dropped the pool at the grain")
	}
	var nilP *Parallel
	if nilP.Gate(1<<20) != nil {
		t.Fatal("Gate resurrected a nil pool")
	}
}
