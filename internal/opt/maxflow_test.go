package opt

import (
	"testing"

	"edr/internal/sim"
)

func TestCheckFeasibleSimple(t *testing.T) {
	p := testProblem(t, []float64{1, 2}, []float64{50, 60})
	if err := CheckFeasible(p); err != nil {
		t.Fatal(err)
	}
}

func TestCheckFeasibleCapacityShortage(t *testing.T) {
	p := testProblem(t, []float64{1, 2}, []float64{150, 100}) // 250 > 200 total
	if err := CheckFeasible(p); err == nil {
		t.Fatal("over-capacity instance accepted")
	}
}

func TestCheckFeasibleLatencyPartition(t *testing.T) {
	// Two clients, two replicas; each client can reach only one replica.
	// Demands fit individually but client 0's replica is too small.
	p := testProblem(t, []float64{1, 2}, []float64{120, 10})
	p.Latency[0][1] = 0.01 // client 0 → replica 0 only (demand 120 > B=100)
	p.Latency[1][0] = 0.01 // client 1 → replica 1 only
	if err := CheckFeasible(p); err == nil {
		t.Fatal("latency-partitioned infeasible instance accepted")
	}
	// Lower the stranded demand and it becomes feasible.
	p.Demands[0] = 90
	if err := CheckFeasible(p); err != nil {
		t.Fatal(err)
	}
}

func TestFeasiblePointIsFeasible(t *testing.T) {
	p := testProblem(t, []float64{1, 8, 3}, []float64{80, 90, 30})
	p.Latency[2][0] = 0.01
	x, err := FeasiblePoint(p)
	if err != nil {
		t.Fatal(err)
	}
	if v := p.Violation(x); v > 1e-6 {
		t.Fatalf("FeasiblePoint violation = %g", v)
	}
}

func TestFeasiblePointInfeasibleInstance(t *testing.T) {
	p := testProblem(t, []float64{1}, []float64{500})
	if _, err := FeasiblePoint(p); err == nil {
		t.Fatal("infeasible instance returned a point")
	}
}

// Property: on random instances, CheckFeasible and FeasiblePoint agree,
// and any returned point passes Violation.
func TestFeasibilityOracleAgreementProperty(t *testing.T) {
	r := sim.NewRand(777)
	for trial := 0; trial < 60; trial++ {
		clients := 1 + r.Intn(6)
		replicas := 1 + r.Intn(5)
		p := randomProblem(t, r, clients, replicas)
		// Occasionally inflate demand to force infeasibility.
		if r.Float64() < 0.3 {
			p.Demands[0] += 1000
		}
		checkErr := CheckFeasible(p)
		x, pointErr := FeasiblePoint(p)
		if (checkErr == nil) != (pointErr == nil) {
			t.Fatalf("trial %d: CheckFeasible=%v but FeasiblePoint=%v", trial, checkErr, pointErr)
		}
		if pointErr == nil {
			if v := p.Violation(x); v > 1e-6 {
				t.Fatalf("trial %d: feasible point violation %g", trial, v)
			}
		}
	}
}

func TestMaxFlowTinyGraph(t *testing.T) {
	// Classic diamond: s→a (3), s→b (2), a→t (2), b→t (3), a→b (1).
	g := newFlowGraph(4)
	s, a, b, tt := 0, 1, 2, 3
	g.addEdge(s, a, 3)
	g.addEdge(s, b, 2)
	g.addEdge(a, tt, 2)
	g.addEdge(b, tt, 3)
	g.addEdge(a, b, 1)
	if got := g.maxFlow(s, tt); got != 5 {
		t.Fatalf("maxFlow = %g, want 5", got)
	}
}

func TestMaxFlowDisconnected(t *testing.T) {
	g := newFlowGraph(2)
	if got := g.maxFlow(0, 1); got != 0 {
		t.Fatalf("maxFlow on disconnected graph = %g", got)
	}
}
