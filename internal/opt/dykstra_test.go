package opt

import (
	"errors"
	"math"
	"testing"

	"edr/internal/sim"
)

func TestDykstraNoSets(t *testing.T) {
	x := [][]float64{{1, 2}}
	sweeps, err := Dykstra(x, nil, DykstraOptions{})
	if err != nil || sweeps != 0 {
		t.Fatalf("Dykstra(no sets) = (%d, %v)", sweeps, err)
	}
}

func TestDykstraSingleSetIsPlainProjection(t *testing.T) {
	x := [][]float64{{3, 3}}
	set := func(m [][]float64) error {
		ProjectSimplex(m[0], 2)
		return nil
	}
	if _, err := Dykstra(x, []SetProjection{set}, DykstraOptions{}); err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0][0]-1) > 1e-9 || math.Abs(x[0][1]-1) > 1e-9 {
		t.Fatalf("got %v, want (1,1)", x)
	}
}

// Intersecting two halfplanes in R²: x ≥ 1 (as a box clip) and x + y ≤ 1.
// Projection of (3, 3) onto the intersection is (1+t?, ...) — compute:
// feasible set {x≥1, x+y≤1}. Nearest point to (3,3): minimize (x−3)²+(y−3)²
// s.t. x≥1, x+y≤1. Lagrange: on boundary x+y=1: (x−3)=(y−3) ⇒ x=y=0.5 but
// x≥1 binds ⇒ x=1, y=0. Distance check: gradient conditions hold.
func TestDykstraTwoHalfplanes(t *testing.T) {
	x := [][]float64{{3, 3}}
	setA := func(m [][]float64) error { // x ≥ 1
		if m[0][0] < 1 {
			m[0][0] = 1
		}
		return nil
	}
	setB := func(m [][]float64) error { // x + y ≤ 1
		ProjectHalfspaceSumLE(m[0], 1)
		return nil
	}
	if _, err := Dykstra(x, []SetProjection{setA, setB}, DykstraOptions{MaxSweeps: 2000, Tol: 1e-12}); err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0][0]-1) > 1e-6 || math.Abs(x[0][1]-0) > 1e-6 {
		t.Fatalf("projection = %v, want (1, 0)", x)
	}
}

func TestDykstraPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	x := [][]float64{{1}}
	set := func([][]float64) error { return boom }
	if _, err := Dykstra(x, []SetProjection{set}, DykstraOptions{}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
}

func TestProjectFeasibleSatisfiesAllConstraints(t *testing.T) {
	p := testProblem(t, []float64{1, 8, 3}, []float64{40, 70, 20})
	p.Latency[0][1] = 0.01 // client 0 may not use replica 1
	x, err := p.UniformStart()
	if err != nil {
		t.Fatal(err)
	}
	// Perturb away from feasibility.
	x[1][0] += 55
	x[2][2] -= 10
	if err := ProjectFeasible(p, x, 1e-6); err != nil {
		t.Fatal(err)
	}
	if v := p.Violation(x); v > 1e-5 {
		t.Fatalf("violation after projection = %g", v)
	}
	if x[0][1] != 0 {
		t.Fatalf("masked entry nonzero: %g", x[0][1])
	}
}

// Property: projection of an already-feasible point stays (almost) put.
func TestProjectFeasibleFixedPointProperty(t *testing.T) {
	r := sim.NewRand(321)
	for trial := 0; trial < 30; trial++ {
		p := randomProblem(t, r, 4, 3)
		x, err := FeasiblePoint(p)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		before := Clone(x)
		if err := ProjectFeasible(p, x, 1e-6); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if d := Dist(before, x); d > 1e-4*(1+Norm(before)) {
			t.Fatalf("trial %d: feasible point moved by %g", trial, d)
		}
	}
}

// Property: projection output is feasible for random infeasible inputs.
func TestProjectFeasibleAlwaysFeasibleProperty(t *testing.T) {
	r := sim.NewRand(654)
	for trial := 0; trial < 30; trial++ {
		p := randomProblem(t, r, 5, 4)
		x := NewMatrix(p.C(), p.N())
		for c := range x {
			for n := range x[c] {
				x[c][n] = r.Range(-10, 40)
			}
		}
		if err := ProjectFeasible(p, x, 1e-5); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if v := p.Violation(x); v > 1e-4 {
			t.Fatalf("trial %d: violation %g", trial, v)
		}
	}
}

func TestProjectFeasibleInfeasibleInstance(t *testing.T) {
	// Total demand 500 exceeds total capacity 200.
	p := testProblem(t, []float64{1, 2}, []float64{500})
	x, _ := p.UniformStart()
	if err := ProjectFeasible(p, x, 1e-6); err == nil {
		t.Fatal("infeasible instance projected without error")
	}
}
