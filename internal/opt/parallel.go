package opt

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
)

// Parallel is a bounded worker pool for fanning the independent units of a
// solver iteration across cores: CDPSM's per-agent consensus+gradient+
// projection steps, LDDM/ADMM per-replica subproblems, and the per-row /
// per-column sweeps inside the feasible-set projections. It exists because
// those units are embarrassingly parallel — each writes disjoint state —
// while the surrounding iteration stays sequential.
//
// Design rules the callers rely on:
//
//   - Determinism: For partitions [0, n) into the same contiguous chunks
//     every call, and callers give each index (or each chunk) disjoint
//     output state, so a parallel run is bit-for-bit identical to the
//     serial one — only the wall clock changes. Reductions (max movement,
//     first error) happen serially after the fan-out.
//   - Nil is serial: a nil *Parallel is valid and runs everything inline,
//     so call sites need no branching; NewParallel returns nil for serial
//     configurations.
//   - Bounded and nest-safe: at most workers goroutines exist per pool.
//     When a parallel region is entered from inside another (an agent's
//     projection inside the per-agent fan-out), chunk handoff degrades to
//     inline execution instead of spawning unboundedly.
type Parallel struct {
	workers int
	tokens  chan struct{}
}

// NewParallel sizes a pool from the conventional knob encoding used across
// the module's configs: n > 0 pins the worker count, n == 0 is automatic
// (GOMAXPROCS, so `go test -cpu 1,8` exercises both paths), and n < 0
// forces serial execution (returns nil). A one-worker pool is also nil:
// there is nothing to fan out to.
func NewParallel(n int) *Parallel {
	if n < 0 {
		return nil
	}
	if n == 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n <= 1 {
		return nil
	}
	p := &Parallel{workers: n, tokens: make(chan struct{}, n-1)}
	for i := 0; i < n-1; i++ {
		p.tokens <- struct{}{}
	}
	return p
}

// Workers reports the pool width (1 for a nil/serial pool).
func (p *Parallel) Workers() int {
	if p == nil {
		return 1
	}
	return p.workers
}

// Chunks reports how many chunks For/ForErr will split n units into —
// callers allocating per-chunk scratch size it with this.
func (p *Parallel) Chunks(n int) int {
	w := p.Workers()
	if n < w {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Gate returns p when work (a rough element count per call) is large
// enough to amortize goroutine handoff, nil (serial) otherwise. The gate
// only affects speed, never results — parallel and serial are bit-equal.
func (p *Parallel) Gate(work int) *Parallel {
	if p == nil || work < parallelGrain {
		return nil
	}
	return p
}

// parallelGrain is the smallest per-For work (elements touched) worth a
// fan-out; below it the chunk handoff dominates the arithmetic. Test-sized
// instances (tens of elements) stay serial, paper-scale ones fan out.
const parallelGrain = 512

// For splits [0, n) into Chunks(n) contiguous chunks and runs
// fn(chunk, lo, hi) for each, concurrently when workers are free and
// inline otherwise, returning when all chunks are done. The partition is
// deterministic (chunk c covers [c·n/W, (c+1)·n/W)), and chunk indexes are
// dense in [0, Chunks(n)) so fn can index per-chunk scratch. fn must write
// only state disjoint per index range (or per chunk).
func (p *Parallel) For(n int, fn func(chunk, lo, hi int)) {
	if n <= 0 {
		return
	}
	chunks := p.Chunks(n)
	if chunks <= 1 {
		fn(0, 0, n)
		return
	}
	var wg sync.WaitGroup
	for c := 1; c < chunks; c++ {
		lo, hi := c*n/chunks, (c+1)*n/chunks
		select {
		case <-p.tokens:
			wg.Add(1)
			go func(c, lo, hi int) {
				defer func() {
					p.tokens <- struct{}{}
					wg.Done()
				}()
				fn(c, lo, hi)
			}(c, lo, hi)
		default:
			// Pool saturated — a nested parallel region. Run inline
			// rather than spawn past the bound.
			fn(c, lo, hi)
		}
	}
	fn(0, 0, n/chunks)
	wg.Wait()
}

// ForBalanced is For with chunk boundaries balanced by cumulative weight
// instead of unit counts: cum (len n+1, non-decreasing, cum[0] = 0) gives
// the cumulative work before each unit, and chunk c covers the units whose
// weight spans [c·W/chunks, (c+1)·W/chunks) where W = cum[n]. Sparse row
// sweeps pass a CSR RowStart so workers get equal nnz even when row
// fan-outs differ wildly. Boundaries depend only on cum and the pool
// width, so (as with For) callers giving each unit disjoint output state
// get chunking-independent results.
func (p *Parallel) ForBalanced(n int, cum []int, fn func(chunk, lo, hi int)) {
	if n <= 0 {
		return
	}
	if len(cum) != n+1 {
		panic(fmt.Sprintf("opt: ForBalanced got %d-slot cum for %d units", len(cum), n))
	}
	chunks := p.Chunks(n)
	if chunks <= 1 {
		fn(0, 0, n)
		return
	}
	total := cum[n]
	bound := func(c int) int {
		// Smallest i with cum[i]·chunks ≥ total·c; monotone in c.
		target := total * c / chunks
		i := sort.SearchInts(cum, target+1) - 1
		if i < 0 {
			i = 0
		} else if i > n {
			i = n
		}
		return i
	}
	var wg sync.WaitGroup
	for c := 1; c < chunks; c++ {
		lo, hi := bound(c), bound(c+1)
		if c == chunks-1 {
			hi = n
		}
		select {
		case <-p.tokens:
			wg.Add(1)
			go func(c, lo, hi int) {
				defer func() {
					p.tokens <- struct{}{}
					wg.Done()
				}()
				fn(c, lo, hi)
			}(c, lo, hi)
		default:
			fn(c, lo, hi)
		}
	}
	fn(0, 0, bound(1))
	wg.Wait()
}

// ForBalancedErr is ForBalanced with ForErr's error collection: the
// lowest-indexed chunk's error wins, matching serial left-to-right order.
func (p *Parallel) ForBalancedErr(n int, cum []int, fn func(chunk, lo, hi int) error) error {
	if n <= 0 {
		return nil
	}
	chunks := p.Chunks(n)
	if chunks <= 1 {
		if len(cum) != n+1 {
			panic(fmt.Sprintf("opt: ForBalancedErr got %d-slot cum for %d units", len(cum), n))
		}
		return fn(0, 0, n)
	}
	errs := make([]error, chunks)
	p.ForBalanced(n, cum, func(chunk, lo, hi int) {
		errs[chunk] = fn(chunk, lo, hi)
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// ForErr is For with error collection: each chunk may return an error, and
// the lowest-indexed chunk's error is returned — the same error a serial
// left-to-right loop would have surfaced first, keeping failure behavior
// deterministic. All chunks run to completion regardless (projection
// kernels have no useful partial-cancellation).
func (p *Parallel) ForErr(n int, fn func(chunk, lo, hi int) error) error {
	if n <= 0 {
		return nil
	}
	chunks := p.Chunks(n)
	if chunks <= 1 {
		return fn(0, 0, n)
	}
	errs := make([]error, chunks)
	p.For(n, func(chunk, lo, hi int) {
		errs[chunk] = fn(chunk, lo, hi)
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
