package opt

import (
	"fmt"
	"math"
	"sort"
)

// This file implements the Euclidean projection primitives used by every
// solver: box clipping, the exact sort-based simplex projection (Held,
// Wolfe & Crowder 1974; Duchi et al. 2008), the bisection-based capped
// simplex projection, and halfspace projection. All operate in place on
// vectors; the matrix-level feasible-set projection composes them via
// Dykstra's algorithm (see dykstra.go).

// ClipBox projects x onto the box [lo_i, hi_i] in place.
// It panics on mismatched lengths or lo > hi.
func ClipBox(x, lo, hi []float64) {
	if len(x) != len(lo) || len(x) != len(hi) {
		panic("opt: ClipBox length mismatch")
	}
	for i := range x {
		if lo[i] > hi[i] {
			panic(fmt.Sprintf("opt: ClipBox lo[%d]=%g > hi[%d]=%g", i, lo[i], i, hi[i]))
		}
		if x[i] < lo[i] {
			x[i] = lo[i]
		} else if x[i] > hi[i] {
			x[i] = hi[i]
		}
	}
}

// ClipNonneg projects x onto the nonnegative orthant in place.
func ClipNonneg(x []float64) {
	for i := range x {
		if x[i] < 0 {
			x[i] = 0
		}
	}
}

// ProjectSimplex projects x in place onto {y : y ≥ 0, Σy = s} using the
// exact O(d log d) sort-and-threshold algorithm. s must be ≥ 0.
func ProjectSimplex(x []float64, s float64) {
	if s < 0 {
		panic(fmt.Sprintf("opt: ProjectSimplex with negative sum %g", s))
	}
	d := len(x)
	if d == 0 {
		return
	}
	if s == 0 {
		for i := range x {
			x[i] = 0
		}
		return
	}
	sorted := make([]float64, d)
	copy(sorted, x)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	// Find ρ = max{k : sorted[k] − (cum_k − s)/(k+1) > 0}.
	cum := 0.0
	theta := 0.0
	for k := 0; k < d; k++ {
		cum += sorted[k]
		t := (cum - s) / float64(k+1)
		if sorted[k]-t > 0 {
			theta = t
		} else {
			break
		}
	}
	for i := range x {
		x[i] = math.Max(x[i]-theta, 0)
	}
}

// ProjectSimplexScratch is ProjectSimplex backed by caller scratch (len ≥
// len(x)) instead of a per-call allocation, with an insertion sort for the
// short vectors the packed sparse kernels hand it (a masked row holds a
// handful of entries). The threshold math is identical to ProjectSimplex:
// exact, no bisection.
func ProjectSimplexScratch(x, scratch []float64, s float64) {
	if s < 0 {
		panic(fmt.Sprintf("opt: ProjectSimplexScratch with negative sum %g", s))
	}
	d := len(x)
	if d == 0 {
		return
	}
	if s == 0 {
		for i := range x {
			x[i] = 0
		}
		return
	}
	sorted := scratch[:d]
	copy(sorted, x)
	if d <= 32 {
		for i := 1; i < d; i++ {
			v := sorted[i]
			j := i - 1
			for j >= 0 && sorted[j] < v {
				sorted[j+1] = sorted[j]
				j--
			}
			sorted[j+1] = v
		}
	} else {
		sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	}
	cum := 0.0
	theta := 0.0
	for k := 0; k < d; k++ {
		cum += sorted[k]
		t := (cum - s) / float64(k+1)
		if sorted[k]-t > 0 {
			theta = t
		} else {
			break
		}
	}
	for i := range x {
		x[i] = math.Max(x[i]-theta, 0)
	}
}

// ProjectSimplexUpper projects x in place onto {y : y ≥ 0, Σy ≤ s}.
// If the nonnegative clip already satisfies the budget the clip is the
// projection; otherwise the solution lies on the face Σy = s.
func ProjectSimplexUpper(x []float64, s float64) {
	if s < 0 {
		panic(fmt.Sprintf("opt: ProjectSimplexUpper with negative budget %g", s))
	}
	sum := 0.0
	for _, v := range x {
		if v > 0 {
			sum += v
		}
	}
	if sum <= s {
		ClipNonneg(x)
		return
	}
	ProjectSimplex(x, s)
}

// ProjectCappedSimplex projects x in place onto
// {y : 0 ≤ y_i ≤ u_i, Σy = s}. It requires 0 ≤ s ≤ Σu (otherwise the set
// is empty) and solves for the threshold θ with y_i = clamp(x_i − θ, 0, u_i)
// by bisection, which handles per-coordinate caps that the plain sort
// method cannot.
func ProjectCappedSimplex(x, u []float64, s float64) error {
	if len(x) != len(u) {
		panic("opt: ProjectCappedSimplex length mismatch")
	}
	capSum := 0.0
	for i, ui := range u {
		if ui < 0 {
			panic(fmt.Sprintf("opt: ProjectCappedSimplex negative cap u[%d]=%g", i, ui))
		}
		capSum += ui
	}
	const tol = 1e-12
	if s < -tol || s > capSum+tol {
		return fmt.Errorf("opt: capped simplex empty: need sum %g with caps totalling %g", s, capSum)
	}
	s = math.Max(0, math.Min(s, capSum))
	sumAt := func(theta float64) float64 {
		total := 0.0
		for i := range x {
			v := x[i] - theta
			if v < 0 {
				v = 0
			} else if v > u[i] {
				v = u[i]
			}
			total += v
		}
		return total
	}
	// Bracket θ: sumAt is non-increasing in θ.
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := range x {
		lo = math.Min(lo, x[i]-u[i]) // θ ≤ lo ⇒ all coordinates at cap
		hi = math.Max(hi, x[i])      // θ ≥ hi ⇒ all coordinates at zero
	}
	lo -= 1
	hi += 1
	for iter := 0; iter < 200 && hi-lo > 1e-12*(1+math.Abs(hi)); iter++ {
		mid := (lo + hi) / 2
		if sumAt(mid) > s {
			lo = mid
		} else {
			hi = mid
		}
	}
	theta := (lo + hi) / 2
	for i := range x {
		v := x[i] - theta
		if v < 0 {
			v = 0
		} else if v > u[i] {
			v = u[i]
		}
		x[i] = v
	}
	// Exact-sum polish: distribute the residual over interior coordinates.
	residual := s
	for _, v := range x {
		residual -= v
	}
	if math.Abs(residual) > 1e-9 {
		interior := 0
		for i := range x {
			if x[i] > 0 && x[i] < u[i] {
				interior++
			}
		}
		if interior > 0 {
			per := residual / float64(interior)
			for i := range x {
				if x[i] > 0 && x[i] < u[i] {
					x[i] = math.Max(0, math.Min(u[i], x[i]+per))
				}
			}
		}
	}
	return nil
}

// ProjectHalfspaceSumLE projects x in place onto {y : Σy ≤ b}: if the sum
// already satisfies the bound nothing changes, otherwise the excess is
// removed uniformly (the Euclidean projection onto the hyperplane Σy = b).
func ProjectHalfspaceSumLE(x []float64, b float64) {
	sum := 0.0
	for _, v := range x {
		sum += v
	}
	if sum <= b {
		return
	}
	shift := (sum - b) / float64(len(x))
	for i := range x {
		x[i] -= shift
	}
}

// MaskZero zeroes the coordinates of x where allowed is false — the
// latency-feasibility pattern p_{c,n} = 0 for l_{c,n} > T.
func MaskZero(x []float64, allowed []bool) {
	if len(x) != len(allowed) {
		panic("opt: MaskZero length mismatch")
	}
	for i := range x {
		if !allowed[i] {
			x[i] = 0
		}
	}
}

// ProjectMaskedCappedSimplex projects x onto
// {y : Σy = s, 0 ≤ y_i ≤ u_i, y_i = 0 where !allowed_i} in place.
func ProjectMaskedCappedSimplex(x, u []float64, allowed []bool, s float64) error {
	if len(x) != len(allowed) {
		panic("opt: ProjectMaskedCappedSimplex length mismatch")
	}
	// Work on the allowed sub-vector; forbidden coordinates are fixed at 0.
	idx := make([]int, 0, len(x))
	for i, ok := range allowed {
		if ok {
			idx = append(idx, i)
		}
	}
	if len(idx) == 0 {
		if s > 1e-12 {
			return fmt.Errorf("opt: no feasible coordinate for required sum %g", s)
		}
		for i := range x {
			x[i] = 0
		}
		return nil
	}
	sub := make([]float64, len(idx))
	subU := make([]float64, len(idx))
	for k, i := range idx {
		sub[k] = x[i]
		subU[k] = u[i]
	}
	if err := ProjectCappedSimplex(sub, subU, s); err != nil {
		return err
	}
	for i := range x {
		x[i] = 0
	}
	for k, i := range idx {
		x[i] = sub[k]
	}
	return nil
}
