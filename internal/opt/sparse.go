package opt

import (
	"fmt"
	"math"
)

// SparseMode selects whether a solver (or projection) runs on the packed
// sparse kernels or the dense ones. The zero value is automatic dispatch,
// so existing configs pick up the sparse path with no changes.
type SparseMode int

const (
	// SparseAuto uses the sparse kernels exactly when the instance's
	// feasibility mask has structural zeros (density < 1). Fully-feasible
	// instances stay on the dense code paths, which keeps results
	// bit-for-bit identical to the pre-sparse implementation there.
	SparseAuto SparseMode = iota
	// SparseOff forces the dense kernels everywhere — the baseline the
	// sparse benchmarks compare against.
	SparseOff
	// SparseForce runs the sparse kernels even on fully-feasible
	// instances, for equivalence tests and kernel benchmarks.
	SparseForce
)

// Enabled reports whether the mode selects the sparse kernels for an
// instance with the given sparsity view.
func (m SparseMode) Enabled(sp *Sparsity) bool {
	switch m {
	case SparseOff:
		return false
	case SparseForce:
		return true
	default:
		return !sp.Full
	}
}

// Sparsity is the immutable CSR+CSC index view of a problem's latency-
// feasibility mask. Packed vectors indexed by it hold one float64 per
// allowed (client, replica) pair in row-major (CSR) order, so per-client
// row operations — the projection hot path — run on contiguous subslices.
// The CSC half gives every per-replica column kernel (column sums, local
// solves, duals) its client list without scanning the mask.
//
// Problems cache their Sparsity alongside the Allowed() mask; see
// (*Problem).Sparsity.
type Sparsity struct {
	// C, N are the dense dimensions (clients × replicas).
	C, N int
	// RowStart[c]..RowStart[c+1] bound client c's slots in packed vectors
	// (len C+1). It is also the cumulative-nnz weight vector that
	// Parallel.ForBalanced chunks rows by.
	RowStart []int
	// ColIdx[k] is the replica of CSR slot k (ascending within each row).
	ColIdx []int
	// ColStart[n]..ColStart[n+1] bound replica n's entries in CSC order
	// (len N+1).
	ColStart []int
	// RowIdx[k] is the client of CSC slot k (ascending within each column).
	RowIdx []int
	// PosCSR[k] is the CSR slot of CSC slot k: column kernels reach into
	// CSR-packed vectors through it.
	PosCSR []int
	// PosCSC[k] is the CSC slot of CSR slot k (the inverse of PosCSR).
	PosCSC []int
	// Full reports a mask with no structural zeros (density 1).
	Full bool

	maxRow int
}

// NewSparsity builds the index view of a feasibility mask. Rows must be
// rectangular (as Problem.Allowed guarantees).
func NewSparsity(mask [][]bool) *Sparsity {
	c := len(mask)
	n := 0
	if c > 0 {
		n = len(mask[0])
	}
	sp := &Sparsity{C: c, N: n}
	sp.RowStart = make([]int, c+1)
	colCount := make([]int, n+1)
	nnz := 0
	maxRow := 0
	for i, row := range mask {
		if len(row) != n {
			panic(fmt.Sprintf("opt: NewSparsity row %d has %d cols, want %d", i, len(row), n))
		}
		rs := nnz
		for j, ok := range row {
			if ok {
				nnz++
				colCount[j+1]++
			}
		}
		sp.RowStart[i+1] = nnz
		if w := nnz - rs; w > maxRow {
			maxRow = w
		}
	}
	sp.maxRow = maxRow
	sp.Full = nnz == c*n
	sp.ColIdx = make([]int, nnz)
	sp.RowIdx = make([]int, nnz)
	sp.PosCSR = make([]int, nnz)
	sp.PosCSC = make([]int, nnz)
	sp.ColStart = make([]int, n+1)
	for j := 1; j <= n; j++ {
		sp.ColStart[j] = sp.ColStart[j-1] + colCount[j]
	}
	// Fill CSR column indexes and, in the same pass, the CSC slots: walking
	// rows in order means each column's clients land in ascending order.
	next := make([]int, n)
	copy(next, sp.ColStart[:n])
	k := 0
	for i, row := range mask {
		for j, ok := range row {
			if !ok {
				continue
			}
			sp.ColIdx[k] = j
			slot := next[j]
			next[j]++
			sp.RowIdx[slot] = i
			sp.PosCSR[slot] = k
			sp.PosCSC[k] = slot
			k++
		}
	}
	return sp
}

// NNZ returns the number of allowed (client, replica) pairs.
func (sp *Sparsity) NNZ() int { return len(sp.ColIdx) }

// Density returns nnz / (C·N), the fraction of feasible entries.
func (sp *Sparsity) Density() float64 {
	if sp.C == 0 || sp.N == 0 {
		return 0
	}
	return float64(sp.NNZ()) / float64(sp.C*sp.N)
}

// RowNNZ returns the number of feasible replicas for client c.
func (sp *Sparsity) RowNNZ(c int) int { return sp.RowStart[c+1] - sp.RowStart[c] }

// ColNNZ returns the number of feasible clients for replica n.
func (sp *Sparsity) ColNNZ(n int) int { return sp.ColStart[n+1] - sp.ColStart[n] }

// MaxRowNNZ returns the widest row's nnz — the scratch size row kernels need.
func (sp *Sparsity) MaxRowNNZ() int { return sp.maxRow }

// Gather packs the supported entries of dense m into dst (CSR order),
// allocating when dst is nil. Off-support entries of m are dropped — the
// projection onto the mask subspace.
func (sp *Sparsity) Gather(dst []float64, m [][]float64) []float64 {
	if dst == nil {
		dst = make([]float64, sp.NNZ())
	}
	if len(dst) != sp.NNZ() {
		panic(fmt.Sprintf("opt: Gather got %d-slot dst for %d nnz", len(dst), sp.NNZ()))
	}
	for c := 0; c < sp.C; c++ {
		row := m[c]
		for k := sp.RowStart[c]; k < sp.RowStart[c+1]; k++ {
			dst[k] = row[sp.ColIdx[k]]
		}
	}
	return dst
}

// Scatter writes packed v back into dense m, zeroing off-support entries.
func (sp *Sparsity) Scatter(m [][]float64, v []float64) {
	if len(v) != sp.NNZ() {
		panic(fmt.Sprintf("opt: Scatter got %d-slot v for %d nnz", len(v), sp.NNZ()))
	}
	for c := 0; c < sp.C; c++ {
		row := m[c]
		for j := range row {
			row[j] = 0
		}
		for k := sp.RowStart[c]; k < sp.RowStart[c+1]; k++ {
			row[sp.ColIdx[k]] = v[k]
		}
	}
}

// ColSumsInto writes the per-replica column sums of packed v into dst
// (len N). Each column accumulates in fixed CSC order, so the result is
// independent of any row chunking that produced v.
func (sp *Sparsity) ColSumsInto(dst []float64, v []float64) []float64 {
	if len(dst) != sp.N {
		panic(fmt.Sprintf("opt: ColSumsInto got %d-slot dst for %d replicas", len(dst), sp.N))
	}
	for n := 0; n < sp.N; n++ {
		s := 0.0
		for k := sp.ColStart[n]; k < sp.ColStart[n+1]; k++ {
			s += v[sp.PosCSR[k]]
		}
		dst[n] = s
	}
	return dst
}

// VecAXPY computes dst += s·a over packed vectors.
func VecAXPY(dst []float64, s float64, a []float64) {
	if len(dst) != len(a) {
		panic(fmt.Sprintf("opt: VecAXPY length mismatch: %d vs %d", len(dst), len(a)))
	}
	for i := range dst {
		dst[i] += s * a[i]
	}
}

// VecScale multiplies every entry of v by s.
func VecScale(v []float64, s float64) {
	for i := range v {
		v[i] *= s
	}
}

// VecFill sets every entry of v to x.
func VecFill(v []float64, x float64) {
	for i := range v {
		v[i] = x
	}
}

// VecDist returns the Euclidean distance ‖a−b‖ over packed vectors.
func VecDist(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("opt: VecDist length mismatch: %d vs %d", len(a), len(b)))
	}
	sum := 0.0
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return math.Sqrt(sum)
}

// VecMean averages packed vectors entry-wise with the given weights into
// dst — the packed counterpart of Mean, with the same accumulation order
// (zero, then one AXPY per vector).
func VecMean(dst []float64, weights []float64, vs ...[]float64) {
	if len(weights) != len(vs) {
		panic(fmt.Sprintf("opt: VecMean got %d weights for %d vectors", len(weights), len(vs)))
	}
	VecFill(dst, 0)
	for k, v := range vs {
		VecAXPY(dst, weights[k], v)
	}
}
