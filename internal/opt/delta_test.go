package opt

import (
	"math"
	"testing"
)

// identity maps for the common no-churn case.
func identMaps(c, n int) (rowMap, colMap []int) {
	rowMap = make([]int, c)
	for i := range rowMap {
		rowMap[i] = i
	}
	colMap = make([]int, n)
	for j := range colMap {
		colMap[j] = j
	}
	return rowMap, colMap
}

func TestDiffRoundsIdenticalIsClean(t *testing.T) {
	prev := testProblem(t, []float64{1, 5, 9}, []float64{10, 20, 30, 40})
	next := testProblem(t, []float64{1, 5, 9}, []float64{10, 20, 30, 40})
	rowMap, colMap := identMaps(4, 3)
	d, err := DiffRounds(prev, next, rowMap, colMap, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if d.Dirty() || len(d.DirtyReplicas) != 0 {
		t.Fatalf("identical rounds produced dirty sets: %+v", d)
	}
	if len(d.CleanClients) != 4 {
		t.Fatalf("want 4 clean clients, got %v", d.CleanClients)
	}
}

func TestDiffRoundsDemandDrift(t *testing.T) {
	prev := testProblem(t, []float64{1, 5}, []float64{10, 20, 30})
	next := testProblem(t, []float64{1, 5}, []float64{10, 20.4, 30.0001})
	rowMap, colMap := identMaps(3, 2)
	// eps=1e-2: client 1 drifted 2% (dirty), client 2 drifted ~3e-6 (clean).
	d, err := DiffRounds(prev, next, rowMap, colMap, 1e-2)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := d.DirtyClients, []int{1}; len(got) != 1 || got[0] != want[0] {
		t.Fatalf("dirty clients %v, want %v", got, want)
	}
	if d.DemandDrift != 1 || d.MaskChanged != 0 || d.Promoted != 0 {
		t.Fatalf("counter mismatch: %+v", d)
	}
}

func TestDiffRoundsMaskChangeAndNewClient(t *testing.T) {
	prev := testProblem(t, []float64{1, 5}, []float64{10, 20})
	next := testProblem(t, []float64{1, 5}, []float64{10, 20, 15})
	next.Latency[0][1] = 0.005 // replica 1 fell out of client 0's bound
	rowMap := []int{0, 1, -1}  // client 2 is new this round
	_, colMap := identMaps(3, 2)
	d, err := DiffRounds(prev, next, rowMap, colMap, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.DirtyClients) != 2 || d.DirtyClients[0] != 0 || d.DirtyClients[1] != 2 {
		t.Fatalf("dirty clients %v, want [0 2]", d.DirtyClients)
	}
	if d.MaskChanged != 2 {
		t.Fatalf("MaskChanged = %d, want 2", d.MaskChanged)
	}
}

func TestDiffRoundsReplicaPromotion(t *testing.T) {
	prev := testProblem(t, []float64{1, 5}, []float64{10, 20, 30})
	next := testProblem(t, []float64{1, 7}, []float64{10, 20, 30}) // replica 1 re-priced
	// Client 2 cannot reach replica 1, so promotion must skip it.
	prev.Latency[2][1] = 0.005
	next.Latency[2][1] = 0.005
	rowMap, colMap := identMaps(3, 2)
	d, err := DiffRounds(prev, next, rowMap, colMap, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.DirtyReplicas) != 1 || d.DirtyReplicas[0] != 1 {
		t.Fatalf("dirty replicas %v, want [1]", d.DirtyReplicas)
	}
	if len(d.DirtyClients) != 2 || d.DirtyClients[0] != 0 || d.DirtyClients[1] != 1 {
		t.Fatalf("dirty clients %v, want [0 1]", d.DirtyClients)
	}
	if d.Promoted != 2 {
		t.Fatalf("Promoted = %d, want 2", d.Promoted)
	}
	if len(d.CleanClients) != 1 || d.CleanClients[0] != 2 {
		t.Fatalf("clean clients %v, want [2]", d.CleanClients)
	}
}

func TestDiffRoundsColumnPermutation(t *testing.T) {
	prev := testProblem(t, []float64{1, 5}, []float64{10, 20})
	next := testProblem(t, []float64{5, 1}, []float64{10, 20}) // columns swapped
	rowMap := []int{0, 1}
	d, err := DiffRounds(prev, next, rowMap, []int{1, 0}, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if d.Dirty() || len(d.DirtyReplicas) != 0 {
		t.Fatalf("permuted-but-identical round produced dirty sets: %+v", d)
	}
	// A broken colMap (not a permutation) must be rejected, not misread.
	if _, err := DiffRounds(prev, next, rowMap, []int{0, 0}, 1e-3); err == nil {
		t.Fatal("non-permutation colMap accepted")
	}
}

func TestKKTGapDetectsMisplacedLoad(t *testing.T) {
	// Two replicas, prices 1 and 9; one client of demand 10 that can reach
	// both. All load on the expensive replica leaves a large gap; the
	// (near-)optimal split passes with a tiny gap.
	p := testProblem(t, []float64{1, 9}, []float64{10})
	bad := [][]float64{{0, 10}}
	if g := KKTGap(p, bad); g <= 0 {
		t.Fatalf("misplaced load scored gap %g, want > 0", g)
	}
	// Optimal: everything on the cheap replica until its marginal reaches
	// the expensive one's idle marginal; with u=1,α=1,β=0.01,γ=3 the
	// marginal at load 10 is 1·(1+0.03·100)=4 < 9, so all-on-cheap is
	// optimal and the used replica has the lowest marginal.
	good := [][]float64{{10, 0}}
	if g := KKTGap(p, good); g != 0 {
		t.Fatalf("optimal split scored gap %g, want 0", g)
	}
}

func TestKKTGapRespectsSaturation(t *testing.T) {
	// The cheap replica is saturated: remaining load must sit on the
	// expensive one, and that is optimal — gap must not flag it. At loads
	// (100, 40) the marginals are 301 and 441: the spill replica is the
	// most expensive used column AND the cheapest unsaturated one, so the
	// per-client difference is exactly zero.
	p := testProblem(t, []float64{1, 9}, []float64{140})
	x := [][]float64{{100, 40}} // replica 0 at its 100 MB bandwidth cap
	if g := KKTGap(p, x); g != 0 {
		t.Fatalf("saturated-optimal split scored gap %g, want 0", g)
	}
	if math.Signbit(KKTGap(p, x)) {
		t.Fatal("gap must be non-negative")
	}
}
