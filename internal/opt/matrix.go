// Package opt is the convex-optimization toolkit underlying every solver in
// this module: dense matrix helpers, Euclidean projections onto the
// polytopes of the EDR replica-selection problem (simplexes, capped
// simplexes, halfspaces, and their intersection via Dykstra's algorithm), a
// max-flow feasibility oracle, and a projected-gradient reference method.
//
// Matrices are [][]float64 in row-major client×replica layout, matching the
// paper's P = [p_{c,n}] with rows indexed by client c and columns by
// replica n. Problem sizes in the paper are small (8 replicas, tens of
// clients), so clarity is preferred over blocking/SIMD tricks; the hot
// loops are still allocation-free.
package opt

import (
	"fmt"
	"math"
)

// NewMatrix allocates a rows×cols zero matrix backed by one contiguous
// slice, so row data stays cache-adjacent.
func NewMatrix(rows, cols int) [][]float64 {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("opt: NewMatrix(%d, %d) with negative dimension", rows, cols))
	}
	backing := make([]float64, rows*cols)
	m := make([][]float64, rows)
	for i := range m {
		m[i], backing = backing[:cols:cols], backing[cols:]
	}
	return m
}

// Clone returns a deep copy of m.
func Clone(m [][]float64) [][]float64 {
	if m == nil {
		return nil
	}
	cols := 0
	if len(m) > 0 {
		cols = len(m[0])
	}
	out := NewMatrix(len(m), cols)
	for i := range m {
		copy(out[i], m[i])
	}
	return out
}

// Copy copies src into dst. Both must have identical shapes.
func Copy(dst, src [][]float64) {
	checkSameShape(dst, src, "Copy")
	for i := range src {
		copy(dst[i], src[i])
	}
}

// Fill sets every entry of m to v.
func Fill(m [][]float64, v float64) {
	for i := range m {
		for j := range m[i] {
			m[i][j] = v
		}
	}
}

// Add computes dst += a element-wise.
func Add(dst, a [][]float64) {
	checkSameShape(dst, a, "Add")
	for i := range dst {
		for j := range dst[i] {
			dst[i][j] += a[i][j]
		}
	}
}

// Sub computes dst -= a element-wise.
func Sub(dst, a [][]float64) {
	checkSameShape(dst, a, "Sub")
	for i := range dst {
		for j := range dst[i] {
			dst[i][j] -= a[i][j]
		}
	}
}

// AXPY computes dst += s·a element-wise.
func AXPY(dst [][]float64, s float64, a [][]float64) {
	checkSameShape(dst, a, "AXPY")
	for i := range dst {
		for j := range dst[i] {
			dst[i][j] += s * a[i][j]
		}
	}
}

// Scale multiplies every entry of m by s.
func Scale(m [][]float64, s float64) {
	for i := range m {
		for j := range m[i] {
			m[i][j] *= s
		}
	}
}

// Dot returns the Frobenius inner product Σ a_{ij}·b_{ij}.
func Dot(a, b [][]float64) float64 {
	checkSameShape(a, b, "Dot")
	sum := 0.0
	for i := range a {
		for j := range a[i] {
			sum += a[i][j] * b[i][j]
		}
	}
	return sum
}

// Norm returns the Frobenius norm of m.
func Norm(m [][]float64) float64 {
	sum := 0.0
	for i := range m {
		for j := range m[i] {
			sum += m[i][j] * m[i][j]
		}
	}
	return math.Sqrt(sum)
}

// Dist returns the Frobenius distance ‖a−b‖.
func Dist(a, b [][]float64) float64 {
	checkSameShape(a, b, "Dist")
	sum := 0.0
	for i := range a {
		for j := range a[i] {
			d := a[i][j] - b[i][j]
			sum += d * d
		}
	}
	return math.Sqrt(sum)
}

// ColSums returns the per-column sums Σ_c m[c][n] — the per-replica loads.
func ColSums(m [][]float64) []float64 {
	if len(m) == 0 {
		return nil
	}
	sums := make([]float64, len(m[0]))
	for i := range m {
		for j, v := range m[i] {
			sums[j] += v
		}
	}
	return sums
}

// RowSums returns the per-row sums Σ_n m[c][n] — the per-client served load.
func RowSums(m [][]float64) []float64 {
	return RowSumsInto(make([]float64, len(m)), m)
}

// RowSumsInto is RowSums writing into caller-owned scratch, for hot loops
// that compute the same residual every iteration.
func RowSumsInto(dst []float64, m [][]float64) []float64 {
	if len(dst) != len(m) {
		panic(fmt.Sprintf("opt: RowSumsInto got %d-slot dst for %d rows", len(dst), len(m)))
	}
	for i := range m {
		dst[i] = 0
		for _, v := range m[i] {
			dst[i] += v
		}
	}
	return dst
}

// Mean averages the given matrices entry-wise with the given weights
// (Σ w = 1 is the caller's responsibility) into dst. Used by the CDPSM
// consensus step.
func Mean(dst [][]float64, weights []float64, ms ...[][]float64) {
	if len(weights) != len(ms) {
		panic(fmt.Sprintf("opt: Mean got %d weights for %d matrices", len(weights), len(ms)))
	}
	Fill(dst, 0)
	for k, m := range ms {
		AXPY(dst, weights[k], m)
	}
}

func checkSameShape(a, b [][]float64, op string) {
	if len(a) != len(b) {
		panic(fmt.Sprintf("opt: %s shape mismatch: %d vs %d rows", op, len(a), len(b)))
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			panic(fmt.Sprintf("opt: %s shape mismatch at row %d: %d vs %d cols", op, i, len(a[i]), len(b[i])))
		}
	}
}
