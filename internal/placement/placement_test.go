package placement

import (
	"testing"
	"testing/quick"

	"edr/internal/sim"
	"edr/internal/workload"
)

func TestReplicateKBasics(t *testing.T) {
	r := sim.NewRand(1)
	m := ReplicateK(r, 100, 8, 3)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.CatalogSize() != 100 {
		t.Fatalf("catalog = %d", m.CatalogSize())
	}
	min, mean, max := m.CoverageStats()
	if min != 3 || mean != 3 || max != 3 {
		t.Fatalf("coverage = %g/%g/%g, want exactly 3", min, mean, max)
	}
}

func TestReplicateKClamping(t *testing.T) {
	r := sim.NewRand(2)
	m := ReplicateK(r, 10, 4, 99)
	if _, mean, _ := m.CoverageStats(); mean != 4 {
		t.Fatalf("over-replication not clamped: %g", mean)
	}
	m = ReplicateK(r, 10, 4, 0)
	if _, mean, _ := m.CoverageStats(); mean != 1 {
		t.Fatalf("under-replication not clamped: %g", mean)
	}
}

func TestHostedAndHosts(t *testing.T) {
	r := sim.NewRand(3)
	m := ReplicateK(r, 5, 6, 2)
	for c := 0; c < 5; c++ {
		hosts := m.Hosts(c)
		if len(hosts) != 2 {
			t.Fatalf("content %d hosts = %v", c, hosts)
		}
		for _, h := range hosts {
			if !m.Hosted(c, h) {
				t.Fatalf("Hosted(%d, %d) = false for listed host", c, h)
			}
		}
		others := 0
		for n := 0; n < 6; n++ {
			if !m.Hosted(c, n) {
				others++
			}
		}
		if others != 4 {
			t.Fatalf("content %d non-hosts = %d, want 4", c, others)
		}
	}
	// Out of range queries are safe.
	if m.Hosted(-1, 0) || m.Hosted(99, 0) {
		t.Fatal("out-of-range content reported hosted")
	}
	if m.Hosts(99) != nil {
		t.Fatal("Hosts(99) != nil")
	}
}

func TestHostsReturnsCopy(t *testing.T) {
	r := sim.NewRand(4)
	m := ReplicateK(r, 1, 4, 2)
	h := m.Hosts(0)
	h[0] = 99
	if m.Hosts(0)[0] == 99 {
		t.Fatal("Hosts exposes internal slice")
	}
}

func TestPopularityAwareDecay(t *testing.T) {
	r := sim.NewRand(5)
	m := PopularityAware(r, 50, 8, 2)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// Rank 0 fully replicated, tail at minK.
	if got := len(m.Hosts(0)); got != 8 {
		t.Fatalf("hottest item on %d replicas, want 8", got)
	}
	if got := len(m.Hosts(49)); got != 2 {
		t.Fatalf("coldest item on %d replicas, want 2", got)
	}
	// Monotone non-increasing copies down the ranks.
	prev := 9
	for c := 0; c < 50; c++ {
		k := len(m.Hosts(c))
		if k > prev {
			t.Fatalf("copies increased at rank %d: %d > %d", c, k, prev)
		}
		prev = k
	}
}

func TestAllowRequest(t *testing.T) {
	r := sim.NewRand(6)
	m := ReplicateK(r, 10, 4, 1)
	req := workload.Request{Content: 3}
	host := m.Hosts(3)[0]
	if !m.AllowRequest(req, host) {
		t.Fatal("request denied at its host")
	}
	denied := 0
	for n := 0; n < 4; n++ {
		if !m.AllowRequest(req, n) {
			denied++
		}
	}
	if denied != 3 {
		t.Fatalf("denied at %d replicas, want 3", denied)
	}
}

// Property: ReplicateK placements always validate and have exact-k
// coverage, for any seed and parameters.
func TestReplicateKValidProperty(t *testing.T) {
	f := func(seed uint64, catalogRaw, replicasRaw, kRaw uint8) bool {
		catalog := 1 + int(catalogRaw)%50
		replicas := 1 + int(replicasRaw)%10
		k := int(kRaw) % 12
		m := ReplicateK(sim.NewRand(seed), catalog, replicas, k)
		if err := m.Validate(); err != nil {
			return false
		}
		wantK := k
		if wantK < 1 {
			wantK = 1
		}
		if wantK > replicas {
			wantK = replicas
		}
		min, _, max := m.CoverageStats()
		return int(min) == wantK && int(max) == wantK
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadMaps(t *testing.T) {
	m := &Map{Replicas: 2, hosts: [][]int{{}}}
	if err := m.Validate(); err == nil {
		t.Fatal("empty host list accepted")
	}
	m = &Map{Replicas: 2, hosts: [][]int{{5}}}
	if err := m.Validate(); err == nil {
		t.Fatal("out-of-range host accepted")
	}
	m = &Map{Replicas: 2, hosts: [][]int{{1, 1}}}
	if err := m.Validate(); err == nil {
		t.Fatal("duplicate host accepted")
	}
	m = &Map{Replicas: 0}
	if err := m.Validate(); err == nil {
		t.Fatal("zero-replica map accepted")
	}
}

func TestCoverageStatsEmpty(t *testing.T) {
	m := &Map{Replicas: 3}
	if min, mean, max := m.CoverageStats(); min != 0 || mean != 0 || max != 0 {
		t.Fatal("empty map coverage nonzero")
	}
}
