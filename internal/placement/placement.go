// Package placement implements the content-placement restriction the
// paper leaves to future work ("we plan to port EDR ... with more
// restrictions other than bandwidth capacity and latency"): in a real
// replicated store each content item lives on only a subset of replicas,
// so a replica can serve a request only if it is within the latency bound
// AND hosts the requested item. Placement composes with the existing
// feasibility machinery as a second mask on p_{c,n}.
package placement

import (
	"fmt"

	"edr/internal/sim"
	"edr/internal/workload"
)

// Map records which replicas host which content: Hosts[content] is the
// set of replica indexes holding a copy.
type Map struct {
	// Replicas is |N|, the fleet size the map indexes into.
	Replicas int
	hosts    [][]int
}

// CatalogSize returns the number of placed content items.
func (m *Map) CatalogSize() int { return len(m.hosts) }

// Hosts returns the replica indexes hosting the item (a copy).
func (m *Map) Hosts(content int) []int {
	if content < 0 || content >= len(m.hosts) {
		return nil
	}
	out := make([]int, len(m.hosts[content]))
	copy(out, m.hosts[content])
	return out
}

// Hosted reports whether replica n holds content.
func (m *Map) Hosted(content, n int) bool {
	if content < 0 || content >= len(m.hosts) {
		return false
	}
	for _, h := range m.hosts[content] {
		if h == n {
			return true
		}
	}
	return false
}

// Validate checks invariants: every item on ≥1 replica, indexes in range,
// no duplicates.
func (m *Map) Validate() error {
	if m.Replicas <= 0 {
		return fmt.Errorf("placement: map over %d replicas", m.Replicas)
	}
	for c, hosts := range m.hosts {
		if len(hosts) == 0 {
			return fmt.Errorf("placement: content %d hosted nowhere", c)
		}
		seen := make(map[int]bool, len(hosts))
		for _, h := range hosts {
			if h < 0 || h >= m.Replicas {
				return fmt.Errorf("placement: content %d on invalid replica %d", c, h)
			}
			if seen[h] {
				return fmt.Errorf("placement: content %d lists replica %d twice", c, h)
			}
			seen[h] = true
		}
	}
	return nil
}

// ReplicateK places every item on k distinct replicas chosen uniformly —
// the classic fixed-replication-factor policy (e.g. HDFS's default 3).
// k is clamped to [1, replicas].
func ReplicateK(r *sim.Rand, catalog, replicas, k int) *Map {
	if catalog <= 0 || replicas <= 0 {
		panic(fmt.Sprintf("placement: ReplicateK(%d items, %d replicas)", catalog, replicas))
	}
	if k < 1 {
		k = 1
	}
	if k > replicas {
		k = replicas
	}
	m := &Map{Replicas: replicas, hosts: make([][]int, catalog)}
	for c := 0; c < catalog; c++ {
		perm := r.Perm(replicas)
		hosts := make([]int, k)
		copy(hosts, perm[:k])
		m.hosts[c] = hosts
	}
	return m
}

// PopularityAware places items proportionally to expected popularity:
// the hottest items are fully replicated, the long tail gets minK copies.
// ranks follow the workload's Zipf ordering (rank 0 = most popular).
func PopularityAware(r *sim.Rand, catalog, replicas, minK int) *Map {
	if catalog <= 0 || replicas <= 0 {
		panic(fmt.Sprintf("placement: PopularityAware(%d items, %d replicas)", catalog, replicas))
	}
	if minK < 1 {
		minK = 1
	}
	if minK > replicas {
		minK = replicas
	}
	m := &Map{Replicas: replicas, hosts: make([][]int, catalog)}
	for c := 0; c < catalog; c++ {
		// Copies decay from all replicas (rank 0) toward minK.
		k := replicas - (replicas-minK)*c/maxInt(catalog-1, 1)
		perm := r.Perm(replicas)
		hosts := make([]int, k)
		copy(hosts, perm[:k])
		m.hosts[c] = hosts
	}
	return m
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// AllowRequest reports whether replica n may serve the request under this
// placement (in addition to any latency feasibility).
func (m *Map) AllowRequest(req workload.Request, n int) bool {
	return m.Hosted(req.Content, n)
}

// CoverageStats summarizes a placement: min/mean/max copies per item.
func (m *Map) CoverageStats() (min, mean, max float64) {
	if len(m.hosts) == 0 {
		return 0, 0, 0
	}
	min = float64(m.Replicas + 1)
	sum := 0.0
	for _, hosts := range m.hosts {
		k := float64(len(hosts))
		if k < min {
			min = k
		}
		if k > max {
			max = k
		}
		sum += k
	}
	return min, sum / float64(len(m.hosts)), max
}
