package experiments

import (
	"fmt"
	"math"

	"edr/internal/cdpsm"
	"edr/internal/central"
	"edr/internal/lddm"
	"edr/internal/opt"
	"edr/internal/probgen"
	"edr/internal/sim"
	"edr/internal/trace"
)

// Fig5 regenerates the convergence comparison: CDPSM vs LDDM solving the
// same 3-replica instance with constant step sizes (the paper's fairness
// condition), reported as objective value per iteration. The paper's
// MATLAB simulation shows LDDM converging in markedly fewer iterations;
// the summary quantifies that with iterations-to-within-1%-of-optimum.
func Fig5(seed uint64) (*Result, error) {
	r := sim.NewRand(seed)
	prob, err := probgen.MustFeasible(r, probgen.Spec{
		Clients:  4,
		Replicas: 3,
		Prices:   []float64{2, 9, 4},
	})
	if err != nil {
		return nil, err
	}

	// Ground truth for the convergence target.
	ref, err := central.New().Solve(prob)
	if err != nil {
		return nil, err
	}

	// Constant steps for both methods, as the paper requires for fairness;
	// the values are per-algorithm (the paper notes the step choice "can
	// affect the convergence speed or even determine if the algorithm can
	// converge successfully"). LDDM's curve is the feasibility-repaired
	// recovered iterate — the objective a deployment stopping at k would
	// actually obtain.
	const iters = 600
	ld := lddm.New()
	ld.MaxIters = iters
	ld.Tol = 1e-9 // disable early stop: record the full curve
	ld.StepRamp = 10
	ld.FeasibleHistory = true
	ldRes, err := ld.Solve(prob)
	if err != nil {
		return nil, err
	}

	cd := cdpsm.New()
	cd.MaxIters = iters
	cd.Tol = 1e-12
	cd.Step = opt.ConstantStep(0.0005)
	cdRes, err := cd.Solve(prob)
	if err != nil {
		return nil, err
	}

	// LDDM's per-iteration value is the cost of a *feasible* repaired
	// iterate, so its convergence curve is the best feasible solution
	// found so far (a running minimum). The raw repaired sequence jumps
	// briefly whenever the suffix-average window restarts; those jumps
	// are bookkeeping, not lost progress — a deployment keeps the best
	// solution it has seen.
	ldBest := runningMin(ldRes.History)

	tab := trace.NewTable("fig5-convergence", "iteration", "lddm_objective", "cdpsm_objective", "optimum")
	for k := 0; k < iters; k++ {
		if err := tab.AddRow(k+1, histAt(ldBest, k), histAt(cdRes.History, k), ref.Objective); err != nil {
			return nil, err
		}
	}

	ldConv := itersToWithin(ldBest, ref.Objective, 0.01)
	cdConv := itersToWithin(cdRes.History, ref.Objective, 0.01)
	res := &Result{
		ID:     "fig5",
		Tables: []*trace.Table{tab},
		Notes: []string{
			"Both methods run with constant step sizes on the identical instance, as in the paper's MATLAB simulation.",
			fmt.Sprintf("LDDM reaches within 1%% of the optimum in %d iterations, CDPSM in %d — the paper's 'CDPSM converges slower than the LDDM'.", ldConv, cdConv),
		},
	}
	res.addSummary("optimum", ref.Objective)
	res.addSummary("lddm_iters_to_1pct", float64(ldConv))
	res.addSummary("cdpsm_iters_to_1pct", float64(cdConv))
	res.addSummary("lddm_final", ldRes.Objective)
	res.addSummary("cdpsm_final", cdRes.Objective)
	res.addSummary("lddm_scalars_per_iter", float64(ldRes.Comm.Scalars)/float64(ldRes.Iterations))
	res.addSummary("cdpsm_scalars_per_iter", float64(cdRes.Comm.Scalars)/float64(cdRes.Iterations))
	return res, nil
}

// runningMin returns the prefix-minimum sequence of history.
func runningMin(history []float64) []float64 {
	out := make([]float64, len(history))
	best := math.Inf(1)
	for i, h := range history {
		if h < best {
			best = h
		}
		out[i] = best
	}
	return out
}

// histAt reads history[k], holding the final value once a method stopped.
func histAt(history []float64, k int) float64 {
	if len(history) == 0 {
		return math.NaN()
	}
	if k >= len(history) {
		return history[len(history)-1]
	}
	return history[k]
}

// itersToWithin returns the first (1-based) iteration whose objective is
// within frac of target and stays there for the rest of the history;
// len(history)+1 when never reached.
func itersToWithin(history []float64, target, frac float64) int {
	reached := len(history) + 1
	for k := len(history) - 1; k >= 0; k-- {
		if math.Abs(history[k]-target) <= frac*math.Abs(target) {
			reached = k + 1
		} else {
			break
		}
	}
	return reached
}
