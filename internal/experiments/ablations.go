package experiments

import (
	"fmt"

	"edr/internal/baseline"
	"edr/internal/lddm"
	"edr/internal/opt"
	"edr/internal/pricing"
	"edr/internal/probgen"
	"edr/internal/sim"
	"edr/internal/solver"
	"edr/internal/trace"
)

// Ablations goes beyond the paper's figures and sweeps the design-space
// knobs DESIGN.md calls out, reporting how much energy-aware scheduling
// actually buys as each varies:
//
//   - γ (network-energy degree): at γ=1 the objective is linear and
//     concentration is free; growing γ penalizes concentration and
//     shrinks the gap an optimizer can exploit.
//   - price spread: with uniform prices there is nothing to arbitrage;
//     savings grow with regional price dispersion.
//   - latency bound T: a tighter bound shrinks each client's feasible
//     set until the optimizer has no choices left.
//
// Each row reports the mean LDDM saving vs Round-Robin on the model
// objective over several random instances.
func Ablations(seed uint64) (*Result, error) {
	r := sim.NewRand(seed)
	const trials = 6

	gammaTab := trace.NewTable("ablation-gamma", "gamma", "lddm_saving_vs_rr_pct")
	for _, gamma := range []float64{1, 2, 3, 4} {
		saving, err := meanSaving(r.Split(), trials, probgen.Spec{
			Clients: 8, Replicas: 6, Gamma: gamma,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: ablation γ=%g: %w", gamma, err)
		}
		if err := gammaTab.AddRow(gamma, saving); err != nil {
			return nil, err
		}
	}

	spreadTab := trace.NewTable("ablation-price-spread", "max_price", "lddm_saving_vs_rr_pct")
	spreads := []int{1, 2, 5, 10, 20}
	var spreadSavings []float64
	for _, maxP := range spreads {
		rs := r.Split()
		saving, err := meanSavingWith(rs, trials, func(rr *sim.Rand) probgen.Spec {
			prices := make([]float64, 6)
			for i := range prices {
				prices[i] = float64(rr.IntBetween(pricing.MinPrice, maxP))
			}
			return probgen.Spec{Clients: 8, Replicas: 6, Prices: prices}
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: ablation spread %d: %w", maxP, err)
		}
		spreadSavings = append(spreadSavings, saving)
		if err := spreadTab.AddRow(maxP, saving); err != nil {
			return nil, err
		}
	}

	latencyTab := trace.NewTable("ablation-latency-bound", "bound_multiplier", "lddm_saving_vs_rr_pct", "feasible_fraction")
	for _, mult := range []float64{1.0, 2.0, 5.0} {
		rs := r.Split()
		savingSum, fracSum := 0.0, 0.0
		count := 0
		for trial := 0; trial < trials; trial++ {
			prob, err := probgen.MustFeasible(rs, probgen.Spec{Clients: 8, Replicas: 6, Geo: true})
			if err != nil {
				return nil, err
			}
			prob.MaxLatency *= mult
			if opt.CheckFeasible(prob) != nil {
				continue
			}
			saving, err := lddmSaving(prob)
			if err != nil {
				return nil, err
			}
			mask := prob.Allowed()
			feasible, totalLinks := 0, 0
			for c := range mask {
				for _, ok := range mask[c] {
					totalLinks++
					if ok {
						feasible++
					}
				}
			}
			savingSum += saving
			fracSum += float64(feasible) / float64(totalLinks)
			count++
		}
		if count == 0 {
			continue
		}
		if err := latencyTab.AddRow(mult, savingSum/float64(count), fracSum/float64(count)); err != nil {
			return nil, err
		}
	}

	res := &Result{
		ID:     "ablations",
		Tables: []*trace.Table{gammaTab, spreadTab, latencyTab},
		Notes: []string{
			"Savings are on the model objective (Eq. 1), mean over random instances per row.",
			"Price spread is the dominant lever: uniform prices leave nothing for an energy-aware scheduler to exploit.",
			"Loosening the latency bound grows each client's feasible set and with it the optimizer's advantage.",
		},
	}
	res.addSummary("spread_1_saving_pct", spreadSavings[0])
	res.addSummary("spread_20_saving_pct", spreadSavings[len(spreadSavings)-1])
	return res, nil
}

// lddmSaving returns the % model-cost saving of LDDM vs Round-Robin on
// one instance.
func lddmSaving(prob *opt.Problem) (float64, error) {
	ld, err := lddm.New().Solve(prob)
	if err != nil {
		return 0, err
	}
	rr, err := (baseline.RoundRobin{}).Solve(prob)
	if err != nil {
		return 0, err
	}
	if err := solver.Verify(prob, ld, 1e-3); err != nil {
		return 0, err
	}
	if rr.Objective <= 0 {
		return 0, nil
	}
	return 100 * (rr.Objective - ld.Objective) / rr.Objective, nil
}

// meanSaving averages lddmSaving over trials random instances of spec.
func meanSaving(r *sim.Rand, trials int, spec probgen.Spec) (float64, error) {
	return meanSavingWith(r, trials, func(*sim.Rand) probgen.Spec { return spec })
}

// meanSavingWith is meanSaving with a per-trial spec generator.
func meanSavingWith(r *sim.Rand, trials int, mkSpec func(*sim.Rand) probgen.Spec) (float64, error) {
	sum := 0.0
	for trial := 0; trial < trials; trial++ {
		prob, err := probgen.MustFeasible(r, mkSpec(r))
		if err != nil {
			return 0, err
		}
		saving, err := lddmSaving(prob)
		if err != nil {
			return 0, err
		}
		sum += saving
	}
	return sum / float64(trials), nil
}
