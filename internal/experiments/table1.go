package experiments

import (
	"edr/internal/cluster"
	"edr/internal/model"
	"edr/internal/netsim"
	"edr/internal/pricing"
	"edr/internal/sim"
	"edr/internal/trace"
	"edr/internal/workload"
)

// Table1 regenerates Table I: the notation of the energy cost model with
// the concrete values the evaluation instantiates them to on the emulated
// SystemG deployment (§IV-A.2).
func Table1(seed uint64) (*Result, error) {
	r := sim.NewRand(seed)
	prices := pricing.Uniform(r, 8)

	tab := trace.NewTable("table1-notation",
		"symbol", "meaning", "instantiation")
	rows := [][3]any{
		{"C", "set of all clients", "workload-dependent (rows of P)"},
		{"N", "set of all replicas", "8 SystemG nodes (replica1..replica8)"},
		{"Eg", "total energy consumption of all replicas", "Σ_n u_n·(α_n·Σ_c p_cn + β_n·(Σ_c p_cn)^γ_n)"},
		{"En", "energy consumption of replica n", "u_n·(α_n·load_n + β_n·load_n^γ_n)"},
		{"p_cn", "traffic load mapped from client c to replica n", "decision variable (MB)"},
		{"Pn", "constraint set of replica n", "rows: Σ_n p_cn = R_c; col: Σ_c p_cn ≤ B_n; box; latency mask"},
		{"Bn", "bandwidth capacity of replica n", netsim.DefaultBandwidthMBps},
		{"T", "max tolerable network latency (s)", netsim.DefaultMaxLatency.Seconds()},
		{"Rc", "traffic load requested by client c", "100 MB (video) / 10 MB (DFS) per request"},
		{"l_cn", "network latency client c → replica n", "measured per pair, uniform in (0, T] on-cluster"},
		{"u_n", "unit electricity price (¢/kWh)", "uniform integer 1..20 per experiment"},
		{"a_n", "consensus weight of replica n (CDPSM)", "1/|N| (uniform)"},
		{"α_n", "server-energy weight", model.DefaultAlpha},
		{"β_n", "network-device-energy weight", model.DefaultBeta},
		{"γ_n", "network energy polynomial degree", model.DefaultGamma},
	}
	for _, row := range rows {
		if err := tab.AddRow(row[0], row[1], row[2]); err != nil {
			return nil, err
		}
	}

	// A concrete instantiation table: this seed's price draw plus the
	// calibrated power levels driving the measured figures.
	inst := trace.NewTable("table1-instantiation",
		"replica", "price_cents_per_kwh", "bandwidth_mbps", "alpha", "beta", "gamma", "idle_watts", "peak_watts")
	for j, u := range prices {
		rep := model.NewReplica("", u)
		if err := inst.AddRow(
			"replica"+itoa(j+1), u, rep.Bandwidth, rep.Alpha, rep.Beta, rep.Gamma,
			cluster.DefaultIdleWatts, cluster.DefaultPeakWatts,
		); err != nil {
			return nil, err
		}
	}

	res := &Result{
		ID:     "table1",
		Tables: []*trace.Table{tab, inst},
		Notes: []string{
			"Table I maps the paper's notation to this module's types: model.Replica carries (u, α, β, γ, B); opt.Problem carries (R, l, T).",
			"Request sizes follow §IV-A.2: video streaming ≈ 100 MB, distributed file service ≈ 10 MB (see internal/workload).",
		},
	}
	res.addSummary("alpha", model.DefaultAlpha)
	res.addSummary("beta", model.DefaultBeta)
	res.addSummary("gamma", model.DefaultGamma)
	res.addSummary("bandwidth_mbps", netsim.DefaultBandwidthMBps)
	res.addSummary("max_latency_sec", netsim.DefaultMaxLatency.Seconds())
	res.addSummary("video_request_mb", workload.VideoStreaming.MeanRequestMB())
	res.addSummary("dfs_request_mb", workload.DFS.MeanRequestMB())
	return res, nil
}

// itoa converts a small positive int without strconv noise at call sites.
func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
