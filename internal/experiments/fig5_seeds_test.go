package experiments

import "testing"

// The Fig 5 shape — LDDM converging in markedly fewer iterations than
// CDPSM — must hold across instances, not just the default seed.
func TestFig5ShapeRobustAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("seed sweep skipped in -short mode")
	}
	for _, seed := range []uint64{2013, 1, 2, 3, 11, 42, 99} {
		res, err := Fig5(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		ld := res.Summary["lddm_iters_to_1pct"]
		cd := res.Summary["cdpsm_iters_to_1pct"]
		if ld*2 >= cd {
			t.Errorf("seed %d: LDDM %g vs CDPSM %g iterations — separation too weak", seed, ld, cd)
		}
	}
}
