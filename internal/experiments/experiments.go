// Package experiments regenerates every table and figure in the paper's
// evaluation (§IV): the runtime power profiles (Fig 3/4), the convergence
// comparison (Fig 5), the per-replica energy costs (Fig 6/7), the total
// cost/consumption comparison (Fig 8), the EDR-vs-DONAR response-time
// scaling (Fig 9), and the Table I parameter instantiation. Each runner
// returns CSV-ready tables plus a summary of the headline numbers so the
// shapes can be checked against the paper programmatically.
package experiments

import (
	"fmt"
	"sort"

	"edr/internal/trace"
)

// Result is one experiment's output.
type Result struct {
	// ID names the paper artifact ("fig5", "table1", ...).
	ID string
	// Tables hold the regenerated series/rows.
	Tables []*trace.Table
	// Summary carries headline scalars (savings percentages, iteration
	// counts, response times) keyed by metric name.
	Summary map[string]float64
	// Notes explain how to read the output against the paper.
	Notes []string
}

// addSummary records a headline metric.
func (r *Result) addSummary(key string, v float64) {
	if r.Summary == nil {
		r.Summary = make(map[string]float64)
	}
	r.Summary[key] = v
}

// SummaryKeys returns the summary metric names in sorted order.
func (r *Result) SummaryKeys() []string {
	keys := make([]string, 0, len(r.Summary))
	for k := range r.Summary {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Runner executes one experiment.
type Runner func(seed uint64) (*Result, error)

// Registry maps experiment ids to runners, in paper order.
func Registry() []struct {
	ID    string
	Title string
	Run   Runner
} {
	return []struct {
		ID    string
		Title string
		Run   Runner
	}{
		{"table1", "Table I: model parameters on the emulated SystemG deployment", Table1},
		{"fig3", "Fig 3: runtime power profile per replica, CDPSM, distributed file service", Fig3},
		{"fig4", "Fig 4: runtime power profile per replica, LDDM, distributed file service", Fig4},
		{"fig5", "Fig 5: convergence of CDPSM vs LDDM on a 3-replica instance", Fig5},
		{"fig6", "Fig 6: per-replica energy cost, video streaming, LDDM/CDPSM/Round-Robin", Fig6},
		{"fig7", "Fig 7: per-replica energy cost, distributed file service, LDDM/CDPSM/Round-Robin", Fig7},
		{"fig8", "Fig 8: total energy cost and consumption across 40 runs", Fig8},
		{"fig9", "Fig 9: response time vs request count, EDR vs DONAR", Fig9},
		{"ablations", "Beyond the paper: γ / price-spread / latency-bound sensitivity sweeps", Ablations},
	}
}

// Lookup finds a runner by id.
func Lookup(id string) (Runner, error) {
	for _, e := range Registry() {
		if e.ID == id {
			return e.Run, nil
		}
	}
	return nil, fmt.Errorf("experiments: unknown experiment %q", id)
}
