package experiments

import (
	"fmt"
	"math"
	"time"

	"edr/internal/cluster"
	"edr/internal/opt"
	"edr/internal/power"
	"edr/internal/sim"
	"edr/internal/solver"
)

// This file translates a solved scheduling round into the physical
// timeline the paper measured with PDUs: a *selection phase* in which all
// replicas compute and synchronize (its length and intensity depend on the
// algorithm's iteration count and communication volume), followed by a
// *transfer phase* in which each selected replica streams its assigned
// load at its bandwidth. The power meters then see exactly the Fig 3/4
// structure: valleys near idle while only selection runs, peaks while
// transfers run, and flat lines for replicas the optimizer never selects.

// TimingModel maps algorithm work to wall time and utilization.
type TimingModel struct {
	// MsgOverhead is the per-message coordination cost.
	MsgOverhead time.Duration
	// ScalarTime is the per-scalar serialization cost (CDPSM ships whole
	// matrices; LDDM ships vectors).
	ScalarTime time.Duration
	// Compute is the per-iteration local computation cost by algorithm
	// name (water-filling is cheap; consensus projection is not).
	Compute map[string]time.Duration
	// SelectUtil is the CPU utilization each algorithm induces during the
	// selection phase ("CDPSM needs to coordinate with all other replicas
	// and clients at every iteration, which results in constant higher
	// workload intensity").
	SelectUtil map[string]float64
	// TransferUtil is the utilization while streaming (peak draw).
	TransferUtil float64
	// IdleGap separates consecutive rounds (listening valleys).
	IdleGap time.Duration
	// ModelJoulesPerUnit converts the model's per-round serving energy
	// E_n = α_n·load + β_n·load^γ (model units) into joules added to a
	// replica's metered total. The metered node emulates only the
	// coordination front of a data-center replica (the paper's Eq. 8
	// argument); the serving fleet and the network devices behind it draw
	// per the model — linearly in load for servers and degree-γ for
	// switches (§III-A). The super-linear term is what makes concentrated
	// placements consume more joules than spread ones — the paper's
	// Fig 8(b) observation that the cost-optimal split is not the
	// joule-optimal one.
	ModelJoulesPerUnit float64
}

// DefaultTiming returns constants calibrated so that the decision phase is
// brief relative to the transfer phase — the narrow "valleys" between the
// transfer "peaks" of Fig 3/4 — while preserving the algorithm ordering
// (CDPSM's per-iteration work and traffic exceed LDDM's).
func DefaultTiming() TimingModel {
	return TimingModel{
		MsgOverhead: 5 * time.Microsecond,
		ScalarTime:  100 * time.Nanosecond,
		Compute: map[string]time.Duration{
			"LDDM":        20 * time.Microsecond,
			"CDPSM":       300 * time.Microsecond,
			"Round-Robin": 10 * time.Microsecond,
		},
		SelectUtil: map[string]float64{
			"LDDM":        0.10,
			"CDPSM":       0.30,
			"Round-Robin": 0.05,
		},
		TransferUtil:       1.0,
		IdleGap:            time.Second,
		ModelJoulesPerUnit: 0.15,
	}
}

// SelectionDuration models the wall time of the decision phase for a
// solver result: iterations × (compute + the per-replica share of the
// round's message and payload traffic).
func (tm TimingModel) SelectionDuration(res *solver.Result, replicas int, algo string) time.Duration {
	compute, ok := tm.Compute[algo]
	if !ok {
		compute = time.Millisecond
	}
	iters := res.Iterations
	if iters < 1 {
		iters = 1
	}
	perReplicaMsgs := 0
	perReplicaScalars := 0
	if replicas > 0 {
		perReplicaMsgs = res.Comm.Messages / replicas
		perReplicaScalars = res.Comm.Scalars / replicas
	}
	total := time.Duration(iters)*compute +
		time.Duration(perReplicaMsgs)*tm.MsgOverhead +
		time.Duration(perReplicaScalars)*tm.ScalarTime
	return total
}

// PlayedRound reports the timeline of one simulated round.
type PlayedRound struct {
	// SelectionStart/SelectionEnd bound the decision phase.
	SelectionStart, SelectionEnd time.Time
	// TransferEnd[n] is when replica n finished streaming (equal to
	// SelectionEnd for unselected replicas).
	TransferEnd []time.Time
	// End is the instant the whole round (slowest replica) finished.
	End time.Time
}

// PlayRound writes one round's utilization timeline onto the cluster
// starting at `at`, given the solved assignment. It returns the phase
// boundaries so callers can sequence rounds and meter windows.
func PlayRound(cl *cluster.Cluster, tm TimingModel, at time.Time, prob *opt.Problem, res *solver.Result, algo string) (*PlayedRound, error) {
	n := prob.N()
	if len(cl.Nodes) != n {
		return nil, fmt.Errorf("experiments: cluster has %d nodes for %d replicas", len(cl.Nodes), n)
	}
	selUtil, ok := tm.SelectUtil[algo]
	if !ok {
		selUtil = 0.2
	}
	selDur := tm.SelectionDuration(res, n, algo)
	selEnd := at.Add(selDur)

	played := &PlayedRound{
		SelectionStart: at,
		SelectionEnd:   selEnd,
		TransferEnd:    make([]time.Time, n),
		End:            selEnd,
	}
	loads := opt.ColSums(res.Assignment)
	for j := 0; j < n; j++ {
		node := cl.Node(j)
		node.SetUtilization(at, selUtil)
		node.SetUtilization(selEnd, 0)
		played.TransferEnd[j] = selEnd
		if loads[j] <= 1e-9 {
			continue // never selected: stays at the idle valley (Fig 4,
			// replicas 3 and 5)
		}
		xferSeconds := loads[j] / prob.System.Replicas[j].Bandwidth
		xferEnd := selEnd.Add(time.Duration(xferSeconds * float64(time.Second)))
		node.SetUtilization(selEnd, tm.TransferUtil)
		node.SetUtilization(xferEnd, 0)
		played.TransferEnd[j] = xferEnd
		if xferEnd.After(played.End) {
			played.End = xferEnd
		}
	}
	return played, nil
}

// PlaySchedule plays a sequence of (problem, result) rounds back to back
// with the timing model's idle gap, returning the overall window and the
// per-replica energy integrated by the 50 Hz meter.
//
// Each replica is metered from the schedule start until *its own* last
// activity ends, matching the paper's Fig 3/4 where the per-replica series
// have different lengths ("The execution time of each replica shown in the
// figures depends on both assigned workload and the solution
// calculation+synchronization time"). This truncation is what makes the
// per-replica cost bars of Fig 6/7 differ sharply across schedulers: a
// replica an energy-aware scheduler never selects stops accruing energy
// after the selection phase.
func PlaySchedule(cl *cluster.Cluster, tm TimingModel, probs []*opt.Problem, results []*solver.Result, algo string) (start, end time.Time, joules []float64, err error) {
	if len(probs) != len(results) || len(probs) == 0 {
		return time.Time{}, time.Time{}, nil, fmt.Errorf("experiments: %d problems for %d results", len(probs), len(results))
	}
	cl.Reset()
	start = sim.Epoch
	at := start
	// A replica's metered window ends at its last *transfer*; a replica
	// the optimizer never selects is metered only through the first
	// selection phase — its trace in the figures is a short flat line.
	lastEnd := make([]time.Time, len(cl.Nodes))
	for i := range probs {
		played, err := PlayRound(cl, tm, at, probs[i], results[i], algo)
		if err != nil {
			return time.Time{}, time.Time{}, nil, err
		}
		loads := opt.ColSums(results[i].Assignment)
		for j := range lastEnd {
			switch {
			case loads[j] > 1e-9 && played.TransferEnd[j].After(lastEnd[j]):
				lastEnd[j] = played.TransferEnd[j]
			case lastEnd[j].IsZero():
				lastEnd[j] = played.SelectionEnd
			}
		}
		at = played.End.Add(tm.IdleGap)
	}
	end = at
	joules = make([]float64, len(cl.Nodes))
	for j, node := range cl.Nodes {
		e, err := power.NodeEnergy(node, start, lastEnd[j], 0)
		if err != nil {
			return time.Time{}, time.Time{}, nil, err
		}
		joules[j] = e
	}
	// Add the emulated data center's serving energy (the model's
	// α·load + β·load^γ per round), which the coordination-node meter
	// does not see.
	if tm.ModelJoulesPerUnit > 0 {
		for i := range probs {
			loads := opt.ColSums(results[i].Assignment)
			for j, load := range loads {
				rep := probs[i].System.Replicas[j]
				if e := rep.Energy(load); !math.IsNaN(e) {
					joules[j] += tm.ModelJoulesPerUnit * e
				}
			}
		}
	}
	return start, end, joules, nil
}
