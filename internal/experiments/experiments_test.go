package experiments

import (
	"fmt"
	"strings"
	"testing"
)

// fmtSscan adapts fmt.Sscan for the power-band check.
func fmtSscan(s string, v *float64) (int, error) { return fmt.Sscan(s, v) }

func TestRegistryCoversEveryArtifact(t *testing.T) {
	want := []string{"table1", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "ablations"}
	reg := Registry()
	if len(reg) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(reg), len(want))
	}
	for i, id := range want {
		if reg[i].ID != id {
			t.Fatalf("registry[%d] = %q, want %q", i, reg[i].ID, id)
		}
		if reg[i].Title == "" || reg[i].Run == nil {
			t.Fatalf("registry entry %q incomplete", id)
		}
	}
}

func TestLookup(t *testing.T) {
	if _, err := Lookup("fig5"); err != nil {
		t.Fatal(err)
	}
	if _, err := Lookup("fig99"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestTable1(t *testing.T) {
	res, err := Table1(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tables) != 2 {
		t.Fatalf("tables = %d", len(res.Tables))
	}
	if res.Tables[0].Rows() < 10 {
		t.Fatalf("notation table has %d rows", res.Tables[0].Rows())
	}
	if res.Tables[1].Rows() != 8 {
		t.Fatalf("instantiation table has %d rows, want 8 replicas", res.Tables[1].Rows())
	}
	if res.Summary["gamma"] != 3 || res.Summary["beta"] != 0.01 || res.Summary["alpha"] != 1 {
		t.Fatalf("parameters = %+v", res.Summary)
	}
	if res.Summary["video_request_mb"] != 100 || res.Summary["dfs_request_mb"] != 10 {
		t.Fatalf("request sizes = %+v", res.Summary)
	}
}

func TestFig5ShapeLDDMConvergesFaster(t *testing.T) {
	res, err := Fig5(7)
	if err != nil {
		t.Fatal(err)
	}
	ld := res.Summary["lddm_iters_to_1pct"]
	cd := res.Summary["cdpsm_iters_to_1pct"]
	if ld >= cd {
		t.Fatalf("LDDM took %g iterations vs CDPSM %g — paper shape violated", ld, cd)
	}
	// Communication ordering per §III-D.
	if res.Summary["lddm_scalars_per_iter"] >= res.Summary["cdpsm_scalars_per_iter"] {
		t.Fatalf("communication ordering violated: LDDM %g vs CDPSM %g scalars/iter",
			res.Summary["lddm_scalars_per_iter"], res.Summary["cdpsm_scalars_per_iter"])
	}
	if res.Tables[0].Rows() != 600 {
		t.Fatalf("curve rows = %d", res.Tables[0].Rows())
	}
}

func TestFig3Fig4Shapes(t *testing.T) {
	cd, err := Fig3(11)
	if err != nil {
		t.Fatal(err)
	}
	ld, err := Fig4(11)
	if err != nil {
		t.Fatal(err)
	}
	// LDDM's decision phase is faster and lighter: lower mean power and
	// shorter runtime than CDPSM on the same workload (paper: "EDR system
	// implemented with LDDM runs faster... the average power of using
	// LDDM is lower than that of using CDPSM").
	if ld.Summary["mean_power_watts"] >= cd.Summary["mean_power_watts"] {
		t.Fatalf("mean power: LDDM %g >= CDPSM %g", ld.Summary["mean_power_watts"], cd.Summary["mean_power_watts"])
	}
	if ld.Summary["runtime_sec"] >= cd.Summary["runtime_sec"] {
		t.Fatalf("runtime: LDDM %g >= CDPSM %g", ld.Summary["runtime_sec"], cd.Summary["runtime_sec"])
	}
	// Power values stay in the calibrated SystemG band.
	for _, res := range []*Result{cd, ld} {
		tab := res.Tables[0]
		for i := 0; i < tab.Rows(); i++ {
			row := tab.Row(i)
			for _, cell := range row[1:] {
				if !withinBand(cell) {
					t.Fatalf("%s power sample %q outside [215, 240]", res.ID, cell)
				}
			}
		}
	}
}

func withinBand(cell string) bool {
	// Cheap parse: power values are formatted numbers in [215, 240].
	if cell == "215" || cell == "240" {
		return true
	}
	var v float64
	if _, err := sscan(cell, &v); err != nil {
		return false
	}
	return v >= 214.999 && v <= 240.001
}

func TestFig6ShapeCheapReplicasWin(t *testing.T) {
	res, err := Fig6(13)
	if err != nil {
		t.Fatal(err)
	}
	// LDDM must beat Round-Robin in total cost.
	if res.Summary["total_cost_LDDM"] >= res.Summary["total_cost_Round-Robin"] {
		t.Fatalf("LDDM total %g >= RR total %g", res.Summary["total_cost_LDDM"], res.Summary["total_cost_Round-Robin"])
	}
	if res.Summary["lddm_saving_vs_rr_pct"] <= 0 {
		t.Fatalf("LDDM saving %g%% not positive", res.Summary["lddm_saving_vs_rr_pct"])
	}
	if res.Tables[0].Rows() != 8 {
		t.Fatalf("rows = %d, want 8 replicas", res.Tables[0].Rows())
	}
}

func TestFig7ShapeDFS(t *testing.T) {
	res, err := Fig7(13)
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary["total_cost_LDDM"] >= res.Summary["total_cost_Round-Robin"] {
		t.Fatalf("LDDM total %g >= RR total %g", res.Summary["total_cost_LDDM"], res.Summary["total_cost_Round-Robin"])
	}
}

func TestFig9ShapeNearLinearAndClose(t *testing.T) {
	if testing.Short() {
		t.Skip("fig9 live measurement skipped in -short mode")
	}
	res, err := Fig9(17)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tables[0].Rows() != 8 {
		t.Fatalf("rows = %d, want 8 request counts", res.Tables[0].Rows())
	}
	// Both systems must grow with request count (24 → 192 is 8×; allow
	// sublinear constants but demand clear growth).
	if res.Summary["edr_growth_factor"] < 2 {
		t.Fatalf("EDR growth factor %g too flat", res.Summary["edr_growth_factor"])
	}
	if res.Summary["donar_growth_factor"] < 1.5 {
		t.Fatalf("DONAR growth factor %g too flat", res.Summary["donar_growth_factor"])
	}
	// The paper's headline: "the performance of EDR is very close to
	// DONAR" — same order of magnitude at the largest request count.
	if ratio := res.Summary["edr_vs_donar_at_192"]; ratio > 5 {
		t.Fatalf("EDR/DONAR ratio %g at 192 requests — not close", ratio)
	}
	// And DONAR's cost must grow with the mapping-node count while EDR's
	// does not depend on it (the complexity crossover argument).
	if g := res.Summary["donar_m_growth_factor"]; g < 1.3 {
		t.Fatalf("DONAR mapping-node growth %g too flat", g)
	}
}

func TestNotesMentionPaper(t *testing.T) {
	res, err := Fig5(3)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(res.Notes, " ")
	if !strings.Contains(joined, "constant step") {
		t.Fatalf("fig5 notes missing methodology: %v", res.Notes)
	}
}

// sscan wraps fmt.Sscan without importing fmt at every call site.
func sscan(s string, v *float64) (int, error) {
	return fmtSscan(s, v)
}

func TestAblationsShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation sweep skipped in -short mode")
	}
	res, err := Ablations(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tables) != 3 {
		t.Fatalf("tables = %d", len(res.Tables))
	}
	// Uniform prices (max_price = 1) leave nothing to save; wide spread
	// (max 20) must beat it clearly.
	if s1 := res.Summary["spread_1_saving_pct"]; s1 > 5 || s1 < -5 {
		t.Fatalf("uniform-price saving %g%%, want ~0", s1)
	}
	if s20 := res.Summary["spread_20_saving_pct"]; s20 <= res.Summary["spread_1_saving_pct"]+5 {
		t.Fatalf("wide-spread saving %g%% not clearly above uniform %g%%",
			s20, res.Summary["spread_1_saving_pct"])
	}
}
