package experiments

import (
	"fmt"
	"time"

	"edr/internal/baseline"
	"edr/internal/cdpsm"
	"edr/internal/lddm"
	"edr/internal/opt"
	"edr/internal/probgen"
	"edr/internal/sim"
	"edr/internal/solver"
	"edr/internal/workload"
)

// paperRounds generates a sequence of scheduling-round problem instances
// from a YouTube-patterned trace of the given application: the trace is
// cut into fixed windows, each window's requests aggregate into per-client
// demands, and each non-empty window becomes one instance over the same
// 8-replica (or given-price) fleet.
func paperRounds(r *sim.Rand, app workload.Application, prices []float64, rounds, clients int) ([]*opt.Problem, error) {
	// Rate chosen so a typical window's total demand (~200 MB) leaves the
	// optimizers free to abandon expensive replicas entirely — the paper's
	// "replica 3 and 5 have never been selected" regime — while capacity
	// still binds on popular cheap replicas.
	perHour := 120.0
	if app == workload.DFS {
		perHour = 1200
	}
	window := time.Minute
	trace, err := workload.Generate(r, workload.Config{
		App:             app,
		Clients:         clients,
		MeanRatePerHour: perHour,
		Duration:        time.Duration(rounds*4) * window,
	})
	if err != nil {
		return nil, err
	}
	windows := workload.Window(trace, sim.Epoch, window, rounds*4)
	var probs []*opt.Problem
	for _, batch := range windows {
		if len(batch) == 0 {
			continue
		}
		// Geo topology: each client is near one region and beyond the
		// latency bound for some replicas — the paper's runs likewise mix
		// the price signal with bandwidth caps and network latency ("but
		// also related to the bandwidth cap and network latency").
		prob, err := probgen.FromBatch(r, batch, len(prices), prices, true)
		if err != nil {
			return nil, err
		}
		if opt.CheckFeasible(prob) != nil {
			continue // rare oversized window: skip rather than distort
		}
		probs = append(probs, prob)
		if len(probs) == rounds {
			break
		}
	}
	if len(probs) == 0 {
		return nil, fmt.Errorf("experiments: workload produced no feasible rounds")
	}
	return probs, nil
}

// newSolver builds the named scheduler with a shared iteration budget and
// the per-algorithm constant steps used throughout the evaluation — the
// paper's fairness condition (constant steps for both methods, same
// iteration bound). The step values are the ones the Fig 5 convergence
// study is run with, so every experiment sees the same algorithms.
func newSolver(algo string, budget int) (solver.Solver, error) {
	switch algo {
	case "LDDM":
		s := lddm.New()
		s.MaxIters = budget
		s.StepRamp = 10
		return s, nil
	case "CDPSM":
		s := cdpsm.New()
		s.MaxIters = budget
		s.Step = opt.ConstantStep(0.0005)
		return s, nil
	case "Round-Robin":
		return baseline.RoundRobin{}, nil
	default:
		return nil, fmt.Errorf("experiments: unknown scheduler %q", algo)
	}
}

// solveAll runs one scheduler over every round instance.
func solveAll(probs []*opt.Problem, algo string, budget int) ([]*solver.Result, error) {
	s, err := newSolver(algo, budget)
	if err != nil {
		return nil, err
	}
	results := make([]*solver.Result, len(probs))
	for i, prob := range probs {
		res, err := s.Solve(prob)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s on round %d: %w", algo, i, err)
		}
		if err := solver.Verify(prob, res, 1e-3); err != nil {
			return nil, fmt.Errorf("experiments: %s round %d: %w", algo, i, err)
		}
		results[i] = res
	}
	return results, nil
}

// schedulers is the paper's Fig 6-8 lineup.
var schedulers = []string{"LDDM", "CDPSM", "Round-Robin"}
