package experiments

import (
	"fmt"

	"edr/internal/cluster"
	"edr/internal/power"
	"edr/internal/pricing"
	"edr/internal/sim"
	"edr/internal/trace"
	"edr/internal/workload"
)

// Fig6 regenerates the per-replica energy cost comparison for the video
// streaming application under LDDM-, CDPSM-, and Round-Robin-based
// scheduling with the paper's fixed price vector {1,8,1,6,1,5,2,3};
// Fig7 is the distributed-file-service counterpart. Expected shape: the
// energy-aware schedulers concentrate load on the cheap-electricity
// replicas (1, 3, 5 — prices 1¢), so the expensive replicas' bars collapse
// toward idle; Round-Robin spreads load uniformly and pays full price
// everywhere.
func Fig6(seed uint64) (*Result, error) {
	return perReplicaCost("fig6", workload.VideoStreaming, seed)
}

// Fig7 is the DFS counterpart of Fig6 (see there).
func Fig7(seed uint64) (*Result, error) {
	return perReplicaCost("fig7", workload.DFS, seed)
}

func perReplicaCost(id string, app workload.Application, seed uint64) (*Result, error) {
	r := sim.NewRand(seed)
	prices := pricing.PaperFigure6Prices()
	probs, err := paperRounds(r, app, prices, 4, 12)
	if err != nil {
		return nil, err
	}

	// Cost per replica per scheduler, from metered energy × its price.
	costs := make(map[string][]float64, len(schedulers))
	totals := make(map[string]float64, len(schedulers))
	for _, algo := range schedulers {
		results, err := solveAll(probs, algo, 300)
		if err != nil {
			return nil, err
		}
		cl := cluster.NewSystemG(len(prices))
		_, _, joules, err := PlaySchedule(cl, tmFor(algo), probs, results, algo)
		if err != nil {
			return nil, err
		}
		perReplica := make([]float64, len(prices))
		for j, e := range joules {
			perReplica[j] = power.CostCents(e, prices[j]) * 1000 // millicents: readable magnitudes
			totals[algo] += perReplica[j]
		}
		costs[algo] = perReplica
	}

	tab := trace.NewTable(id+"-per-replica-cost-"+app.String(),
		"replica", "price_cents_per_kwh", "lddm_cost", "cdpsm_cost", "round_robin_cost")
	for j := range prices {
		if err := tab.AddRow(
			fmt.Sprintf("replica%d", j+1), prices[j],
			costs["LDDM"][j], costs["CDPSM"][j], costs["Round-Robin"][j],
		); err != nil {
			return nil, err
		}
	}

	res := &Result{
		ID:     id,
		Tables: []*trace.Table{tab},
		Notes: []string{
			fmt.Sprintf("%s workload (≈%g MB/request), prices %v as in the paper's Fig 6/7 runs.", app, app.MeanRequestMB(), prices),
			"Costs are metered joules × regional price (millicents); each replica is metered until its own work completes, as in the paper's per-replica traces.",
			"Expected shape: cheap replicas (price 1¢: replicas 1, 3, 5) absorb most load under LDDM/CDPSM; Round-Robin pays the most in total.",
		},
	}
	for _, algo := range schedulers {
		res.addSummary("total_cost_"+algo, totals[algo])
	}
	res.addSummary("lddm_saving_vs_rr_pct", 100*(totals["Round-Robin"]-totals["LDDM"])/totals["Round-Robin"])
	res.addSummary("cdpsm_saving_vs_rr_pct", 100*(totals["Round-Robin"]-totals["CDPSM"])/totals["Round-Robin"])
	return res, nil
}

// tmFor returns the timing model (shared defaults; separated for future
// per-algorithm calibration).
func tmFor(string) TimingModel { return DefaultTiming() }
