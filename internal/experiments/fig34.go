package experiments

import (
	"fmt"
	"time"

	"edr/internal/cluster"
	"edr/internal/power"
	"edr/internal/pricing"
	"edr/internal/sim"
	"edr/internal/trace"
	"edr/internal/workload"
)

// Fig3 regenerates the per-replica runtime power profiles for the
// distributed file service scheduled by CDPSM; Fig4 the same under LDDM.
// The figures' structure: "valleys" near the idle draw while only the
// replica-selection process runs, "peaks" while replicas accept requests
// and transfer files, per-replica series of different lengths, and — under
// LDDM — some replicas (the paper's replica 3 and 5) that are never
// selected and stay flat.
func Fig3(seed uint64) (*Result, error) { return powerProfile("fig3", "CDPSM", seed) }

// Fig4 is the LDDM counterpart of Fig3 (see there).
func Fig4(seed uint64) (*Result, error) { return powerProfile("fig4", "LDDM", seed) }

func powerProfile(id, algo string, seed uint64) (*Result, error) {
	r := sim.NewRand(seed)
	prices := pricing.PaperFigure6Prices()
	probs, err := paperRounds(r, workload.DFS, prices, 3, 12)
	if err != nil {
		return nil, err
	}
	results, err := solveAll(probs, algo, 300)
	if err != nil {
		return nil, err
	}
	cl := cluster.NewSystemG(len(prices))
	tm := DefaultTiming()
	start, end, joules, err := PlaySchedule(cl, tm, probs, results, algo)
	if err != nil {
		return nil, err
	}

	// Meter every node at 50 Hz and downsample to the figures' 1 s grid.
	columns := []string{"t_sec"}
	for j := range cl.Nodes {
		columns = append(columns, fmt.Sprintf("replica%d_watts", j+1))
	}
	tab := trace.NewTable(id+"-power-profile-"+algo, columns...)
	series := make([][]power.Sample, len(cl.Nodes))
	for j, node := range cl.Nodes {
		samples, err := power.NewMeter(node).Sample(start, end)
		if err != nil {
			return nil, err
		}
		series[j] = power.Downsample(samples, time.Second)
	}
	seconds := int(end.Sub(start) / time.Second)
	for s := 0; s < seconds; s++ {
		row := make([]any, 0, len(columns))
		row = append(row, s+1)
		for j := range cl.Nodes {
			if s < len(series[j]) {
				row = append(row, series[j][s].Watts)
			} else {
				row = append(row, cluster.DefaultIdleWatts)
			}
		}
		if err := tab.AddRow(row...); err != nil {
			return nil, err
		}
	}

	res := &Result{
		ID:     id,
		Tables: []*trace.Table{tab},
		Notes: []string{
			fmt.Sprintf("DFS workload (≈10 MB requests), 8 replicas with prices %v, scheduled by %s.", prices, algo),
			"Valleys ≈ 215 W are the listening/selection phases; peaks ≈ 240 W are file transfers (paper Fig 3/4 y-range).",
			"Replicas the optimizer never selects stay flat near idle — the paper's replica 3/5 observation under LDDM.",
		},
	}
	meanPower := 0.0
	flat := 0
	for j := range cl.Nodes {
		_, mean, max := power.Stats(series[j])
		meanPower += mean
		if max < cluster.DefaultIdleWatts+tmSelectBand(tm, algo)+1 {
			flat++
		}
		res.addSummary(fmt.Sprintf("replica%d_joules", j+1), joules[j])
	}
	meanPower /= float64(len(cl.Nodes))
	res.addSummary("mean_power_watts", meanPower)
	res.addSummary("runtime_sec", end.Sub(start).Seconds())
	res.addSummary("unselected_replicas", float64(flat))
	totalIters := 0
	for _, result := range results {
		totalIters += result.Iterations
	}
	res.addSummary("total_iterations", float64(totalIters))
	return res, nil
}

// tmSelectBand returns the wattage delta of the selection phase for the
// algorithm — used to classify "flat" (never-transferring) replicas.
func tmSelectBand(tm TimingModel, algo string) float64 {
	return tm.SelectUtil[algo] * (cluster.DefaultPeakWatts - cluster.DefaultIdleWatts)
}
