package experiments

import (
	"os"
	"strconv"
	"testing"
)

// Fig8 averages 40 randomized runs and takes ~10s; skip in -short mode.
func TestFig8Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("fig8 sweep skipped in -short mode")
	}
	res, err := Fig8(21)
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary["runs"] != Fig8Runs {
		t.Fatalf("runs = %g", res.Summary["runs"])
	}

	// fig8a: cost ordering LDDM < CDPSM < Round-Robin for both apps.
	costTab := res.Tables[0]
	costs := map[string]float64{}
	for i := 0; i < costTab.Rows(); i++ {
		row := costTab.Row(i)
		v, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatal(err)
		}
		costs[row[0]+"/"+row[1]] = v
	}
	for _, app := range []string{"video-streaming", "dfs"} {
		ld, cd, rr := costs[app+"/LDDM"], costs[app+"/CDPSM"], costs[app+"/Round-Robin"]
		if !(ld < cd && cd < rr) {
			t.Fatalf("%s cost ordering violated: LDDM %g, CDPSM %g, RR %g", app, ld, cd, rr)
		}
	}

	// The paper reports ≈12%% average LDDM cost saving vs Round-Robin;
	// require a two-digit-percent-band reproduction on video streaming and
	// a positive saving on DFS.
	if sv := res.Summary["lddm_cost_saving_vs_rr_pct_video-streaming"]; sv < 5 || sv > 30 {
		t.Fatalf("video LDDM saving %g%% outside the plausible band", sv)
	}
	if sv := res.Summary["lddm_cost_saving_vs_rr_pct_dfs"]; sv <= 0 {
		t.Fatalf("dfs LDDM saving %g%% not positive", sv)
	}

	// fig8b: the paper's "very interesting phenomenon" — for video
	// streaming CDPSM consumes fewer joules than LDDM even while costing
	// more (cost-optimal ≠ energy-optimal).
	energyTab := res.Tables[1]
	joules := map[string]float64{}
	for i := 0; i < energyTab.Rows(); i++ {
		row := energyTab.Row(i)
		v, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatal(err)
		}
		joules[row[0]+"/"+row[1]] = v
	}
	if joules["video-streaming/CDPSM"] >= joules["video-streaming/LDDM"] {
		t.Fatalf("video joules: CDPSM %g >= LDDM %g — Fig 8(b) inversion missing",
			joules["video-streaming/CDPSM"], joules["video-streaming/LDDM"])
	}

	// Optionally emit the CSVs for inspection when EDR_RESULTS is set.
	if dir := os.Getenv("EDR_RESULTS"); dir != "" {
		for _, tab := range res.Tables {
			if _, err := tab.SaveCSV(dir); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// The Fig 6 ordering (LDDM cheapest on the paper's price vector) must hold
// across workload seeds, not just the default.
func TestFig6RobustAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("seed sweep skipped in -short mode")
	}
	for _, seed := range []uint64{2013, 1, 7, 13, 29} {
		res, err := Fig6(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Summary["total_cost_LDDM"] >= res.Summary["total_cost_Round-Robin"] {
			t.Errorf("seed %d: LDDM %g >= RR %g", seed,
				res.Summary["total_cost_LDDM"], res.Summary["total_cost_Round-Robin"])
		}
	}
}
