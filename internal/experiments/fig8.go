package experiments

import (
	"fmt"

	"edr/internal/cluster"
	"edr/internal/power"
	"edr/internal/pricing"
	"edr/internal/sim"
	"edr/internal/trace"
	"edr/internal/workload"
)

// Fig8Runs is the number of randomized configurations averaged, matching
// the paper's "consistent with the other 40 runs under various
// configurations".
const Fig8Runs = 40

// Fig8 regenerates the total energy *cost* (subfigure a) and total energy
// *consumption* (subfigure b) comparison for both applications under the
// three schedulers, averaged over Fig8Runs random price vectors. Expected
// shape: LDDM has the lowest dollar cost (the paper reports ≈12% average
// saving vs Round-Robin); CDPSM can consume fewer joules than LDDM on the
// video-streaming workload even while costing more — cost-optimal is not
// energy-optimal, the paper's Fig 8(b) observation.
func Fig8(seed uint64) (*Result, error) {
	r := sim.NewRand(seed)
	apps := []workload.Application{workload.VideoStreaming, workload.DFS}

	type key struct {
		app  string
		algo string
	}
	sumCost := make(map[key]float64)
	sumJoules := make(map[key]float64)
	runs := 0

	for run := 0; run < Fig8Runs; run++ {
		prices := pricing.Uniform(r, 8)
		for _, app := range apps {
			probs, err := paperRounds(r.Split(), app, prices, 2, 10)
			if err != nil {
				return nil, err
			}
			for _, algo := range schedulers {
				results, err := solveAll(probs, algo, 250)
				if err != nil {
					return nil, err
				}
				cl := cluster.NewSystemG(len(prices))
				_, _, joules, err := PlaySchedule(cl, DefaultTiming(), probs, results, algo)
				if err != nil {
					return nil, err
				}
				k := key{app: app.String(), algo: algo}
				for j, e := range joules {
					sumJoules[k] += e
					sumCost[k] += power.CostCents(e, prices[j]) * 1000
				}
			}
		}
		runs++
	}

	costTab := trace.NewTable("fig8a-total-cost", "application", "scheduler", "mean_total_cost_millicents")
	energyTab := trace.NewTable("fig8b-total-energy", "application", "scheduler", "mean_total_joules")
	for _, app := range apps {
		for _, algo := range schedulers {
			k := key{app: app.String(), algo: algo}
			if err := costTab.AddRow(app.String(), algo, sumCost[k]/float64(runs)); err != nil {
				return nil, err
			}
			if err := energyTab.AddRow(app.String(), algo, sumJoules[k]/float64(runs)); err != nil {
				return nil, err
			}
		}
	}

	res := &Result{
		ID:     "fig8",
		Tables: []*trace.Table{costTab, energyTab},
		Notes: []string{
			fmt.Sprintf("Averaged over %d runs with fresh uniform price draws per run, as in the paper.", runs),
			"fig8a: total dollar cost — expect cost(LDDM) < cost(CDPSM) < cost(Round-Robin).",
			"fig8b: total joules — the cost-minimizing split is not the joule-minimizing one.",
		},
	}
	for _, app := range apps {
		rrCost := sumCost[key{app.String(), "Round-Robin"}]
		ldCost := sumCost[key{app.String(), "LDDM"}]
		cdCost := sumCost[key{app.String(), "CDPSM"}]
		rrJ := sumJoules[key{app.String(), "Round-Robin"}]
		cdJ := sumJoules[key{app.String(), "CDPSM"}]
		res.addSummary("lddm_cost_saving_vs_rr_pct_"+app.String(), 100*(rrCost-ldCost)/rrCost)
		res.addSummary("cdpsm_cost_saving_vs_rr_pct_"+app.String(), 100*(rrCost-cdCost)/rrCost)
		res.addSummary("cdpsm_energy_saving_vs_rr_pct_"+app.String(), 100*(rrJ-cdJ)/rrJ)
	}
	res.addSummary("runs", float64(runs))
	return res, nil
}
