package experiments

import (
	"math"
	"testing"
	"time"

	"edr/internal/cluster"
	"edr/internal/opt"
	"edr/internal/probgen"
	"edr/internal/sim"
	"edr/internal/solver"
	"edr/internal/workload"
)

func simpleRoundFixture(t *testing.T) (*opt.Problem, *solver.Result) {
	t.Helper()
	prob, err := probgen.MustFeasible(sim.NewRand(1), probgen.Spec{
		Clients:  2,
		Replicas: 3,
		Prices:   []float64{1, 5, 9},
		Demands:  []float64{30, 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Hand-built assignment: replica 2 (price 9) never selected.
	res := &solver.Result{
		Assignment: [][]float64{
			{20, 10, 0},
			{15, 5, 0},
		},
		Iterations: 100,
		Comm:       solver.CommStats{Messages: 1200, Scalars: 12000},
	}
	return prob, res
}

func TestSelectionDurationComposition(t *testing.T) {
	tm := DefaultTiming()
	_, res := simpleRoundFixture(t)
	d := tm.SelectionDuration(res, 3, "LDDM")
	// iterations×compute + (msgs/3)×msgOverhead + (scalars/3)×scalarTime
	want := 100*tm.Compute["LDDM"] + 400*tm.MsgOverhead + 4000*tm.ScalarTime
	if d != want {
		t.Fatalf("SelectionDuration = %v, want %v", d, want)
	}
	// Unknown algorithm falls back to a 1ms compute charge.
	if d := tm.SelectionDuration(res, 3, "mystery"); d <= 0 {
		t.Fatalf("unknown algo duration = %v", d)
	}
	// Zero iterations are clamped to 1.
	resZero := &solver.Result{Iterations: 0}
	if d := tm.SelectionDuration(resZero, 3, "LDDM"); d != tm.Compute["LDDM"] {
		t.Fatalf("zero-iteration duration = %v", d)
	}
}

func TestPlayRoundPhases(t *testing.T) {
	prob, res := simpleRoundFixture(t)
	cl := cluster.NewSystemG(3)
	tm := DefaultTiming()
	at := sim.Epoch
	played, err := PlayRound(cl, tm, at, prob, res, "LDDM")
	if err != nil {
		t.Fatal(err)
	}
	if !played.SelectionStart.Equal(at) {
		t.Fatalf("selection start = %v", played.SelectionStart)
	}
	if !played.SelectionEnd.After(at) {
		t.Fatal("selection has no duration")
	}
	// During selection every node draws the selection utilization.
	mid := at.Add(played.SelectionEnd.Sub(at) / 2)
	for j, node := range cl.Nodes {
		wantU := tm.SelectUtil["LDDM"]
		if got := node.UtilizationAt(mid); math.Abs(got-wantU) > 1e-12 {
			t.Fatalf("node %d selection util = %g, want %g", j, got, wantU)
		}
	}
	// Loads are 35, 15, 0 over bandwidth 100: transfers 0.35s, 0.15s, none.
	want0 := played.SelectionEnd.Add(350 * time.Millisecond)
	if !played.TransferEnd[0].Equal(want0) {
		t.Fatalf("transfer end 0 = %v, want %v", played.TransferEnd[0], want0)
	}
	if !played.TransferEnd[2].Equal(played.SelectionEnd) {
		t.Fatal("unselected replica has a transfer phase")
	}
	if !played.End.Equal(played.TransferEnd[0]) {
		t.Fatalf("round end = %v, want slowest transfer %v", played.End, played.TransferEnd[0])
	}
	// During a transfer the node draws peak utilization.
	during := played.SelectionEnd.Add(100 * time.Millisecond)
	if got := cl.Node(0).UtilizationAt(during); got != tm.TransferUtil {
		t.Fatalf("transfer util = %g", got)
	}
	// The unselected node is idle after selection.
	if got := cl.Node(2).UtilizationAt(during); got != 0 {
		t.Fatalf("unselected node util = %g", got)
	}
}

func TestPlayRoundShapeMismatch(t *testing.T) {
	prob, res := simpleRoundFixture(t)
	cl := cluster.NewSystemG(2) // wrong size
	if _, err := PlayRound(cl, DefaultTiming(), sim.Epoch, prob, res, "LDDM"); err == nil {
		t.Fatal("cluster/replica mismatch accepted")
	}
}

func TestPlayScheduleEnergyOrdering(t *testing.T) {
	prob, res := simpleRoundFixture(t)
	cl := cluster.NewSystemG(3)
	tm := DefaultTiming()
	_, end, joules, err := PlaySchedule(cl, tm, []*opt.Problem{prob}, []*solver.Result{res}, "LDDM")
	if err != nil {
		t.Fatal(err)
	}
	if !end.After(sim.Epoch) {
		t.Fatal("empty schedule window")
	}
	// The most-loaded replica consumes the most; the unselected replica
	// the least (its meter stops after selection).
	if !(joules[0] > joules[1] && joules[1] > joules[2]) {
		t.Fatalf("joule ordering violated: %v", joules)
	}
	// The model-energy injection must be present: replica 0's joules
	// exceed pure metered-node energy for its window.
	if joules[0] < tm.ModelJoulesPerUnit*prob.System.Replicas[0].Energy(35) {
		t.Fatalf("model energy missing from joules: %v", joules)
	}
}

func TestPlayScheduleInputValidation(t *testing.T) {
	cl := cluster.NewSystemG(3)
	if _, _, _, err := PlaySchedule(cl, DefaultTiming(), nil, nil, "LDDM"); err == nil {
		t.Fatal("empty schedule accepted")
	}
	prob, res := simpleRoundFixture(t)
	if _, _, _, err := PlaySchedule(cl, DefaultTiming(), []*opt.Problem{prob, prob}, []*solver.Result{res}, "LDDM"); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestPaperRoundsFeasibleAndSized(t *testing.T) {
	r := sim.NewRand(5)
	prices := []float64{1, 8, 1, 6, 1, 5, 2, 3}
	probs, err := paperRounds(r, workload.DFS, prices, 3, 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(probs) == 0 || len(probs) > 3 {
		t.Fatalf("rounds = %d", len(probs))
	}
	for i, prob := range probs {
		if prob.N() != 8 {
			t.Fatalf("round %d has %d replicas", i, prob.N())
		}
		if err := opt.CheckFeasible(prob); err != nil {
			t.Fatalf("round %d infeasible: %v", i, err)
		}
		total := 0.0
		for _, d := range prob.Demands {
			total += d
		}
		if total <= 0 || total > 800 {
			t.Fatalf("round %d total demand %g outside (0, 800]", i, total)
		}
	}
}

func TestNewSolverKnownAndUnknown(t *testing.T) {
	for _, algo := range schedulers {
		s, err := newSolver(algo, 100)
		if err != nil {
			t.Fatal(err)
		}
		if s.Name() != algo {
			t.Fatalf("solver name %q for %q", s.Name(), algo)
		}
	}
	if _, err := newSolver("mystery", 100); err == nil {
		t.Fatal("unknown scheduler accepted")
	}
}

func TestSolveAllVerifiesResults(t *testing.T) {
	r := sim.NewRand(6)
	prices := []float64{1, 8, 1, 6, 1, 5, 2, 3}
	probs, err := paperRounds(r, workload.DFS, prices, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range schedulers {
		results, err := solveAll(probs, algo, 200)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if len(results) != len(probs) {
			t.Fatalf("%s: %d results for %d rounds", algo, len(results), len(probs))
		}
	}
}
