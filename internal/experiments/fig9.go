package experiments

import (
	"context"
	"fmt"
	"time"

	"edr/internal/core"
	"edr/internal/donar"
	"edr/internal/model"
	"edr/internal/sim"
	"edr/internal/trace"
	"edr/internal/transport"
)

// Fig9 regenerates the system performance comparison: response time as the
// request count scales from 24 to 192 (step 24), EDR (3 replicas, LDDM)
// versus DONAR (3 mapping nodes). Both systems run LIVE over the same
// in-process fabric with identical injected link delays — EDR as the full
// core runtime (submission, round start, distributed LDDM iterations with
// client-owned μ updates, assignment installation, allocation delivery),
// DONAR as its real mapping-node runtime (internal/donar: submission,
// Gauss-Seidel decomposition epoch with aggregate gossip, allocation
// delivery). Expected shape: response time grows close to linearly with
// the request count and the two systems stay within a small factor of
// each other, as in the paper ("the performance of EDR is very close to
// DONAR"); absolute values land in the paper's sub-300 ms range.
func Fig9(seed uint64) (*Result, error) {
	r := sim.NewRand(seed)
	counts := []int{24, 48, 72, 96, 120, 144, 168, 192}
	prices := []float64{3, 7, 12}

	tab := trace.NewTable("fig9-response-scaling", "request_count", "edr_ms", "donar_ms")
	var edrSeries, donarSeries []float64
	for _, count := range counts {
		edrMS, err := measureEDR(r.Split(), count, prices)
		if err != nil {
			return nil, fmt.Errorf("experiments: fig9 EDR at %d requests: %w", count, err)
		}
		donarMS, err := measureDONAR(r.Split(), count, prices, 3)
		if err != nil {
			return nil, fmt.Errorf("experiments: fig9 DONAR at %d requests: %w", count, err)
		}
		if err := tab.AddRow(count, edrMS, donarMS); err != nil {
			return nil, err
		}
		edrSeries = append(edrSeries, edrMS)
		donarSeries = append(donarSeries, donarMS)
	}

	// The paper's closing argument for Fig 9: DONAR's communication is
	// O(|C|·|N|·|M|) versus EDR's O(|C|·|N|), so "with the increasing
	// system size |M|, EDR will eventually outperform DONAR". Sweep the
	// mapping-node count at a fixed request count to show the trend.
	mTab := trace.NewTable("fig9b-mapping-node-scaling", "mapping_nodes", "donar_ms", "edr_ms_constant")
	edrAt96, err := measureEDR(r.Split(), 96, prices)
	if err != nil {
		return nil, err
	}
	var donarAtM []float64
	for _, m := range []int{3, 6, 9, 12} {
		ms, err := measureDONAR(r.Split(), 96, prices, m)
		if err != nil {
			return nil, fmt.Errorf("experiments: fig9 DONAR at %d mapping nodes: %w", m, err)
		}
		if err := mTab.AddRow(m, ms, edrAt96); err != nil {
			return nil, err
		}
		donarAtM = append(donarAtM, ms)
	}

	res := &Result{
		ID:     "fig9",
		Tables: []*trace.Table{tab, mTab},
		Notes: []string{
			"EDR: 3 replicas running distributed LDDM over the message fabric (live latency tuning: 12 iterations per round); DONAR: 3 mapping nodes, latency-cost decomposition with full per-round mapping-plane traffic.",
			"Response time covers the full batch: submission through allocation delivery.",
			"Expected shape: near-linear growth with request count for both systems (paper Fig 9); fig9b shows DONAR's cost growing with |M| while EDR's is independent of it — the paper's O(|C|·|N|·|M|) vs O(|C|·|N|) argument.",
		},
	}
	res.addSummary("edr_ms_at_24", edrSeries[0])
	res.addSummary("edr_ms_at_192", edrSeries[len(edrSeries)-1])
	res.addSummary("donar_ms_at_24", donarSeries[0])
	res.addSummary("donar_ms_at_192", donarSeries[len(donarSeries)-1])
	res.addSummary("edr_growth_factor", edrSeries[len(edrSeries)-1]/edrSeries[0])
	res.addSummary("donar_growth_factor", donarSeries[len(donarSeries)-1]/donarSeries[0])
	res.addSummary("edr_vs_donar_at_192", edrSeries[len(edrSeries)-1]/donarSeries[len(donarSeries)-1])
	res.addSummary("donar_m_growth_factor", donarAtM[len(donarAtM)-1]/donarAtM[0])
	return res, nil
}

// measureEDR times one full EDR round over the in-process fabric with
// `count` requests from `count` clients.
// linkDelay is the one-way per-message fabric delay injected into both
// systems' measurements: a fast-LAN 20µs hop, so message counts — not Go
// scheduling noise — dominate the comparison, as they would on a network.
const linkDelay = 20 * time.Microsecond

func measureEDR(r *sim.Rand, count int, prices []float64) (float64, error) {
	net := transport.NewInProcNetwork()
	net.Delay = func(from, to string) time.Duration { return linkDelay }
	names := make([]string, len(prices))
	for j := range prices {
		names[j] = fmt.Sprintf("replica%d", j+1)
	}
	var replicas []*core.ReplicaServer
	for j, price := range prices {
		cfg := core.ReplicaConfig{
			Replica:   model.NewReplica(names[j], price),
			Algorithm: core.LDDM,
			// Live rounds favor latency: a short iteration budget with a
			// loose stop; the final assignment is feasibility-repaired
			// regardless, trading a few percent of optimality for
			// paper-scale response times.
			MaxIters: 12,
			Tol:      0.2,
		}
		rs, err := core.NewReplicaServer(net, names[j], names, cfg)
		if err != nil {
			return 0, err
		}
		defer rs.Close()
		replicas = append(replicas, rs)
	}
	latencies := make(map[string]float64, len(names))
	for _, n := range names {
		latencies[n] = 0.0005
	}
	ctx := context.Background()
	var clients []*core.Client
	for i := 0; i < count; i++ {
		cl, err := core.NewClient(net, fmt.Sprintf("client%d", i+1))
		if err != nil {
			return 0, err
		}
		defer cl.Close()
		clients = append(clients, cl)
	}

	begin := time.Now()
	for _, cl := range clients {
		// DFS-sized requests, kept well inside aggregate capacity.
		if err := cl.Submit(ctx, replicas[0].Addr(), 1.0, latencies); err != nil {
			return 0, err
		}
	}
	if _, err := replicas[0].RunRound(ctx); err != nil {
		return 0, err
	}
	return float64(time.Since(begin)) / float64(time.Millisecond), nil
}

// measureDONAR times the live DONAR runtime (internal/donar mapping-node
// servers) on an equivalent batch over the same fabric: submission,
// decomposition epoch with per-node local solves and aggregate gossip,
// and allocation delivery.
func measureDONAR(r *sim.Rand, count int, prices []float64, mappingNodes int) (float64, error) {
	net := transport.NewInProcNetwork()
	net.Delay = func(from, to string) time.Duration { return linkDelay }

	nodes := make([]*donar.MappingNode, mappingNodes)
	for m := 0; m < mappingNodes; m++ {
		node, err := donar.NewMappingNode(net, fmt.Sprintf("mapping%d", m+1))
		if err != nil {
			return 0, err
		}
		defer node.Close()
		nodes[m] = node
	}
	// Clients: allocation sinks with their own endpoints.
	sink := func(ctx context.Context, req transport.Message) (transport.Message, error) {
		return transport.Message{Type: req.Type + ".ack"}, nil
	}
	clients := make([]transport.Node, count)
	for i := 0; i < count; i++ {
		node, err := net.Listen(fmt.Sprintf("dclient%d", i+1), sink)
		if err != nil {
			return 0, err
		}
		defer node.Close()
		clients[i] = node
	}
	// Replica fleet as capacity specs (DONAR is energy-oblivious: prices
	// exist but never reach it).
	specs := make([]donar.ReplicaSpec, len(prices))
	latencies := make(map[string]float64, len(prices))
	for j := range prices {
		addr := fmt.Sprintf("replica%d", j+1)
		specs[j] = donar.ReplicaSpec{Addr: addr, BandwidthMBps: 100}
		latencies[addr] = 0.0005
	}

	ctx := context.Background()
	begin := time.Now()
	for i, cl := range clients {
		if err := donar.SubmitRequest(ctx, cl, nodes[i%mappingNodes].Addr(), 1.0, latencies); err != nil {
			return 0, err
		}
	}
	peers := make([]string, 0, mappingNodes-1)
	for m := 1; m < mappingNodes; m++ {
		peers = append(peers, nodes[m].Addr())
	}
	if _, err := nodes[0].RunEpoch(ctx, peers, specs, 10); err != nil {
		return 0, err
	}
	return float64(time.Since(begin)) / float64(time.Millisecond), nil
}
