package admm

import "edr/internal/transport"

// Compact binary codecs for the ADMM verbs: the proximal target vector
// out, the updated column back. Request bodies lead with the u32 LE
// round id per the wire convention. The target rides in a v2 kinded
// frame: a u32 declares the negotiated base iteration (0 = none, else
// iter+1), then the full/sparse/delta layout the chooser picked.

func (b ProxBody) MarshalBinary() ([]byte, error) {
	out := transport.AppendUint32(nil, uint32(b.Round))
	out = transport.AppendUint32(out, uint32(b.Iter))
	out = transport.AppendFloat64(out, b.Rho)
	out = transport.AppendUint32(out, uint32(b.BaseIter+1))
	return transport.AppendFloatsKinded(out, b.Target, b.Base), nil
}

func (b *ProxBody) UnmarshalBinary(data []byte) error {
	round, data, err := transport.ReadUint32(data)
	if err != nil {
		return err
	}
	iter, data, err := transport.ReadUint32(data)
	if err != nil {
		return err
	}
	rho, data, err := transport.ReadFloat64(data)
	if err != nil {
		return err
	}
	baseIter, data, err := transport.ReadUint32(data)
	if err != nil {
		return err
	}
	b.Round, b.Iter, b.Rho, b.BaseIter = int(round), int(iter), rho, int(baseIter)-1
	var base []float64
	if b.BaseIter >= 0 && b.Resolve != nil {
		base = b.Resolve(b.BaseIter)
	}
	target, _, err := transport.ReadFloatsKinded(data, base)
	if err != nil {
		return err
	}
	b.Target = target
	return nil
}

func (b ProxReply) MarshalBinary() ([]byte, error) {
	return transport.AppendFloats(nil, b.Column), nil
}

func (b *ProxReply) UnmarshalBinary(data []byte) error {
	col, _, err := transport.ReadFloats(data)
	if err != nil {
		return err
	}
	b.Column = col
	return nil
}
