package admm

import "edr/internal/transport"

// Compact binary codecs (transport binary body v1) for the ADMM verbs:
// the proximal target vector out, the updated column back. Request bodies
// lead with the u32 LE round id per the wire convention.

func (b ProxBody) MarshalBinary() ([]byte, error) {
	out := transport.AppendUint32(nil, uint32(b.Round))
	out = transport.AppendUint32(out, uint32(b.Iter))
	out = transport.AppendFloat64(out, b.Rho)
	return transport.AppendFloats(out, b.Target), nil
}

func (b *ProxBody) UnmarshalBinary(data []byte) error {
	round, data, err := transport.ReadUint32(data)
	if err != nil {
		return err
	}
	iter, data, err := transport.ReadUint32(data)
	if err != nil {
		return err
	}
	rho, data, err := transport.ReadFloat64(data)
	if err != nil {
		return err
	}
	target, _, err := transport.ReadFloats(data)
	if err != nil {
		return err
	}
	b.Round, b.Iter, b.Rho, b.Target = int(round), int(iter), rho, target
	return nil
}

func (b ProxReply) MarshalBinary() ([]byte, error) {
	return transport.AppendFloats(nil, b.Column), nil
}

func (b *ProxReply) UnmarshalBinary(data []byte) error {
	col, _, err := transport.ReadFloats(data)
	if err != nil {
		return err
	}
	b.Column = col
	return nil
}
