package admm

import (
	"fmt"
	"math"

	"edr/internal/model"
	"edr/internal/opt"
	"edr/internal/solver"
)

// Packed sparse ADMM: each replica's column z_n lives as a CSC slice over
// its feasible client list, so the proximal subproblems (the hot path — two
// O(len log len) slice projections per ternary-search step) shrink from
// |C| to the column's nnz. Masked entries of the dense iterate are exact
// zeros throughout, so the packed row averages and dual updates follow the
// same trajectory bitwise, and both proximal evaluations sum the penalty
// over the support only (ProjectMaskedCappedSimplex itself packs the
// allowed sub-vector), so the ternary searches land on identical columns.

// ProximalColumnPacked is ProximalColumn on a packed feasible-client
// column: target and caps hold only the supported entries, mask handling
// disappears, and the returned column is packed the same way.
func ProximalColumnPacked(rep model.Replica, caps, target []float64, rho float64, iters int) ([]float64, error) {
	m := len(target)
	if len(caps) != m {
		return nil, fmt.Errorf("admm: packed proximal shape mismatch: %d targets, %d caps", m, len(caps))
	}
	if rho <= 0 {
		return nil, fmt.Errorf("admm: non-positive rho %g", rho)
	}
	if iters <= 0 {
		iters = 40
	}
	capSum := 0.0
	for _, u := range caps {
		capSum += u
	}
	z := make([]float64, m)
	maxS := math.Min(rep.Bandwidth, capSum)
	if maxS <= 0 {
		return z, nil
	}
	probe := make([]float64, m)
	eval := func(S float64) (float64, error) {
		copy(probe, target)
		if err := opt.ProjectCappedSimplex(probe, caps, S); err != nil {
			return 0, err
		}
		d := 0.0
		for i := 0; i < m; i++ {
			diff := probe[i] - target[i]
			d += diff * diff
		}
		return rep.Cost(S) + rho/2*d, nil
	}
	lo, hi := 0.0, maxS
	for it := 0; it < iters && hi-lo > 1e-9*(1+maxS); it++ {
		m1 := lo + (hi-lo)/3
		m2 := hi - (hi-lo)/3
		h1, err := eval(m1)
		if err != nil {
			return nil, err
		}
		h2, err := eval(m2)
		if err != nil {
			return nil, err
		}
		if h1 <= h2 {
			hi = m2
		} else {
			lo = m1
		}
	}
	best := (lo + hi) / 2
	copy(z, target)
	if err := opt.ProjectCappedSimplex(z, caps, best); err != nil {
		return nil, err
	}
	return z, nil
}

// solveSparse is Solve on the packed kernels. z is stored in CSC layout
// (column j owns slots ColStart[j]..ColStart[j+1]); the per-client row
// sums walk CSR through PosCSC.
func (s *Solver) solveSparse(prob *opt.Problem, sp *opt.Sparsity) (*solver.Result, error) {
	c, n := prob.C(), prob.N()
	nnz := sp.NNZ()
	rho := s.Rho
	if rho <= 0 {
		rho = autoRho(prob)
	}
	maxIters := s.MaxIters
	if maxIters <= 0 {
		maxIters = 500
	}
	tol := s.Tol
	if tol <= 0 {
		tol = 1e-4
	}
	localIters := s.LocalIters
	if localIters <= 0 {
		localIters = 40
	}

	par := opt.NewParallel(s.Parallelism).Gate(nnz)
	zp := make([]float64, nnz)       // CSC layout
	capsPk := make([]float64, nnz)   // packed caps: client demand per slot
	targetPk := make([]float64, nnz) // packed proximal targets, same layout
	for k, i := range sp.RowIdx {
		capsPk[k] = prob.Demands[i]
	}
	u := make([]float64, c)
	share := make([]float64, c)
	for i := 0; i < c; i++ {
		share[i] = prob.Demands[i] / float64(n)
	}
	rowAvg := make([]float64, c)
	prevAvg := make([]float64, c)
	rows := make([]float64, c)

	demandNorm := 0.0
	for _, d := range prob.Demands {
		demandNorm += d * d
	}
	demandNorm = math.Sqrt(demandNorm)

	// rowSums accumulates each client's Σ_n z_{c,n} in ascending replica
	// order by walking the CSR index through PosCSC.
	rowSums := func(dst []float64) {
		for i := 0; i < sp.C; i++ {
			sum := 0.0
			for k := sp.RowStart[i]; k < sp.RowStart[i+1]; k++ {
				sum += zp[sp.PosCSC[k]]
			}
			dst[i] = sum
		}
	}

	res := &solver.Result{}
	for k := 1; k <= maxIters; k++ {
		res.Iterations = k
		copy(prevAvg, rowAvg)
		rowSums(rowAvg)
		for i := 0; i < c; i++ {
			rowAvg[i] /= float64(n)
		}
		// Packed proximal per replica; columns are disjoint CSC ranges, so
		// the fan-out is bit-identical to the serial sweep. The target build
		// writes the shared packed vector but only this column's slots.
		if err := par.ForBalancedErr(n, sp.ColStart, func(_, lo, hi int) error {
			for j := lo; j < hi; j++ {
				cs, ce := sp.ColStart[j], sp.ColStart[j+1]
				for k := cs; k < ce; k++ {
					i := sp.RowIdx[k]
					targetPk[k] = zp[k] - rowAvg[i] + share[i] - u[i]
				}
				out, err := ProximalColumnPacked(prob.System.Replicas[j], capsPk[cs:ce], targetPk[cs:ce], rho, localIters)
				if err != nil {
					return fmt.Errorf("admm: replica %d proximal: %w", j, err)
				}
				copy(zp[cs:ce], out)
			}
			return nil
		}); err != nil {
			return nil, err
		}
		// Dual update from the fresh packed row sums (rowAvg keeps the
		// pre-proximal averages for the dual residual, as in the dense loop).
		maxPrimal := 0.0
		rowSums(rows)
		for i := 0; i < c; i++ {
			avg := rows[i] / float64(n)
			u[i] += avg - share[i]
			if r := math.Abs(rows[i] - prob.Demands[i]); r > maxPrimal {
				maxPrimal = r
			}
		}
		// Only supported client–replica pairs exchange scalars.
		res.Comm.Messages += 2 * nnz
		res.Comm.Scalars += 2 * nnz

		dual := 0.0
		for i := 0; i < c; i++ {
			d := rowAvg[i] - prevAvg[i]
			dual += d * d
		}
		dual = rho * math.Sqrt(dual) * float64(n)
		res.History = append(res.History, maxPrimal)
		if maxPrimal <= tol*(1+demandNorm) && dual <= tol*(1+demandNorm) {
			res.Converged = true
			break
		}
	}

	// Scatter the packed columns into client×replica form and polish.
	x := opt.NewMatrix(c, n)
	for j := 0; j < n; j++ {
		for k := sp.ColStart[j]; k < sp.ColStart[j+1]; k++ {
			x[sp.RowIdx[k]][j] = zp[k]
		}
	}
	if err := opt.ProjectFeasibleSp(prob, x, 1e-6, par); err != nil {
		return nil, fmt.Errorf("admm: final polish: %w", err)
	}
	res.Assignment = x
	res.Objective = prob.Cost(x)
	return res, nil
}
