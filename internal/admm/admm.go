// Package admm implements a third distributed optimizer for the EDR
// replica-selection problem, beyond the paper's two: the alternating
// direction method of multipliers in its "sharing" form (Boyd et al.,
// Foundations & Trends in ML 2011, §7.3).
//
// Each replica n owns its column z_n ∈ R^{|C|} with the purely local
// constraint set X_n = {0 ≤ z ≤ R, Σ_c z ≤ B_n, latency mask}; the demand
// constraints couple the columns through Σ_n z_n = R. ADMM splits the
// problem so that per iteration every replica solves a small proximal
// subproblem
//
//	z_n ← argmin_{z ∈ X_n}  E_n(Σ_c z_c) + (ρ/2)·‖z − t_n‖²
//
// against a target t_n assembled from the current row residuals and the
// scaled dual u (held, like LDDM's μ, by the clients), followed by the
// dual update u ← u + (mean row sum − R/|N|). Communication per iteration
// is O(|C|·|N|) — the same as LDDM — but the quadratic proximal term
// damps the oscillation that constant-step dual ascent suffers from, so
// ADMM typically converges in far fewer iterations. The paper's future
// work invites "more restrictions"; ADMM is also the standard route to
// adding non-smooth ones (e.g. switching penalties) later.
package admm

import (
	"fmt"
	"math"

	"edr/internal/model"
	"edr/internal/opt"
	"edr/internal/solver"
)

// Solver runs sharing-ADMM on one problem instance.
type Solver struct {
	// Rho is the augmented-Lagrangian penalty; 0 means auto-scaled to
	// meanMarginal/meanDemand (the units that make the proximal and
	// energy terms comparable).
	Rho float64
	// MaxIters bounds ADMM iterations; 0 means 500.
	MaxIters int
	// Tol declares convergence when both the primal residual
	// ‖Σ_n z_n − R‖/(1+‖R‖) and the dual residual ρ·‖avg − prevAvg‖ scaled
	// the same way fall below Tol; 0 means 1e-4.
	Tol float64
	// LocalIters bounds the 1-D ternary-search steps of each proximal
	// subproblem (each step costs two slice projections); 0 means 40.
	LocalIters int
	// Parallelism fans the per-replica proximal solves (disjoint z rows)
	// across cores: > 0 pins the worker count, 0 sizes from GOMAXPROCS,
	// < 0 forces serial. Parallel and serial runs are bit-identical.
	Parallelism int
	// Sparse selects the packed sparse kernels (CSC columns, packed
	// proximal targets). The default, opt.SparseAuto, dispatches on the
	// instance: masked instances run sparse, fully-feasible ones keep the
	// dense kernels bit-for-bit. On masked instances the packed loop's
	// iterates match the dense loop bitwise (both proximal evals sum over
	// the support only); the final feasibility polish runs a different
	// projector, so end objectives agree to tolerance rather than bitwise.
	Sparse opt.SparseMode
}

// New returns an ADMM solver with defaults.
func New() *Solver { return &Solver{} }

// Name implements solver.Solver.
func (s *Solver) Name() string { return "ADMM" }

// Solve implements solver.Solver.
func (s *Solver) Solve(prob *opt.Problem) (*solver.Result, error) {
	if err := prob.Validate(); err != nil {
		return nil, err
	}
	if err := opt.CheckFeasible(prob); err != nil {
		return nil, err
	}
	if sp := prob.Sparsity(); s.Sparse.Enabled(sp) {
		return s.solveSparse(prob, sp)
	}
	c, n := prob.C(), prob.N()
	rho := s.Rho
	if rho <= 0 {
		rho = autoRho(prob)
	}
	maxIters := s.MaxIters
	if maxIters <= 0 {
		maxIters = 500
	}
	tol := s.Tol
	if tol <= 0 {
		tol = 1e-4
	}
	localIters := s.LocalIters
	if localIters <= 0 {
		localIters = 40
	}

	mask := prob.Allowed()
	// Per-replica proximal solves write disjoint z rows against read-only
	// shared state, so they fan across cores bit-identically; the gate
	// keeps small instances serial.
	par := opt.NewParallel(s.Parallelism).Gate(c * n)
	// Per-replica columns z_n, shared scaled dual u (per client), and the
	// per-client demand share R/|N|.
	z := opt.NewMatrix(n, c) // note: transposed layout, z[n][cl]
	u := make([]float64, c)
	share := make([]float64, c)
	for i := 0; i < c; i++ {
		share[i] = prob.Demands[i] / float64(n)
	}
	rowAvg := make([]float64, c)
	prevAvg := make([]float64, c)
	// The caps are constant (each client's demand) and the latency masks
	// are per replica: hoist both out of the iteration loop. Targets get
	// one scratch row per chunk so concurrent solves never share one.
	caps := make([]float64, c)
	copy(caps, prob.Demands)
	allowed := make([][]bool, n)
	for j := 0; j < n; j++ {
		allowed[j] = make([]bool, c)
		for i := 0; i < c; i++ {
			allowed[j][i] = mask[i][j]
		}
	}
	targets := opt.NewMatrix(par.Chunks(n), c)

	demandNorm := 0.0
	for _, d := range prob.Demands {
		demandNorm += d * d
	}
	demandNorm = math.Sqrt(demandNorm)

	res := &solver.Result{}
	for k := 1; k <= maxIters; k++ {
		res.Iterations = k
		copy(prevAvg, rowAvg)
		// Row averages from the previous iterates.
		for i := 0; i < c; i++ {
			sum := 0.0
			for j := 0; j < n; j++ {
				sum += z[j][i]
			}
			rowAvg[i] = sum / float64(n)
		}
		// Each replica's proximal solve against its target.
		if err := par.ForErr(n, func(chunk, lo, hi int) error {
			target := targets[chunk]
			for j := lo; j < hi; j++ {
				for i := 0; i < c; i++ {
					target[i] = z[j][i] - rowAvg[i] + share[i] - u[i]
				}
				out, err := ProximalColumn(prob.System.Replicas[j], allowed[j], caps, target, rho, localIters)
				if err != nil {
					return fmt.Errorf("admm: replica %d proximal: %w", j, err)
				}
				copy(z[j], out)
			}
			return nil
		}); err != nil {
			return nil, err
		}
		// Dual update from the fresh row averages.
		maxPrimal := 0.0
		for i := 0; i < c; i++ {
			sum := 0.0
			for j := 0; j < n; j++ {
				sum += z[j][i]
			}
			avg := sum / float64(n)
			u[i] += avg - share[i]
			if r := math.Abs(sum - prob.Demands[i]); r > maxPrimal {
				maxPrimal = r
			}
		}
		// Communication accounting: like LDDM, each replica exchanges its
		// per-client contributions with the clients holding the dual:
		// O(|C|·|N|) scalars per iteration.
		res.Comm.Messages += 2 * c * n
		res.Comm.Scalars += 2 * c * n

		// Residual-based stopping (Boyd §3.3): primal ‖Σz − R‖, dual
		// ρ·‖avg − prevAvg‖, both relative to the demand scale.
		dual := 0.0
		for i := 0; i < c; i++ {
			d := rowAvg[i] - prevAvg[i]
			dual += d * d
		}
		dual = rho * math.Sqrt(dual) * float64(n)
		res.History = append(res.History, maxPrimal)
		if maxPrimal <= tol*(1+demandNorm) && dual <= tol*(1+demandNorm) {
			res.Converged = true
			break
		}
	}

	// Transpose into client×replica form and polish exactly feasible.
	x := opt.NewMatrix(c, n)
	for j := 0; j < n; j++ {
		for i := 0; i < c; i++ {
			x[i][j] = z[j][i]
		}
	}
	if err := opt.ProjectFeasibleMode(prob, x, 1e-6, par, s.Sparse); err != nil {
		return nil, fmt.Errorf("admm: final polish: %w", err)
	}
	res.Assignment = x
	res.Objective = prob.Cost(x)
	return res, nil
}

// ProximalColumn solves one replica's ADMM subproblem
//
//	min_{z ∈ X}  E(Σ z) + (ρ/2)‖z − target‖²
//	X = {0 ≤ z ≤ caps, mask, Σz ≤ B}
//
// exactly up to a 1-D tolerance by exploiting its structure: for a fixed
// column sum S, the optimal z is the Euclidean projection of the target
// onto the slice {0 ≤ z ≤ caps, mask, Σz = S}, so the whole subproblem
// reduces to minimizing the convex value function
//
//	h(S) = E(S) + (ρ/2)·dist²(target, slice_S)
//
// over S ∈ [0, min(B, Σcaps)] by ternary search with `iters` steps. It is
// exported because the live runtime's ADMM rounds invoke it on each
// replica server (see internal/core).
func ProximalColumn(rep model.Replica, allowed []bool, caps, target []float64, rho float64, iters int) ([]float64, error) {
	c := len(target)
	if len(allowed) != c || len(caps) != c {
		return nil, fmt.Errorf("admm: proximal shape mismatch: %d targets, %d allowed, %d caps", c, len(allowed), len(caps))
	}
	if rho <= 0 {
		return nil, fmt.Errorf("admm: non-positive rho %g", rho)
	}
	if iters <= 0 {
		iters = 40
	}
	capSum := 0.0
	for i := 0; i < c; i++ {
		if allowed[i] {
			capSum += caps[i]
		}
	}
	z := make([]float64, c)
	maxS := math.Min(rep.Bandwidth, capSum)
	if maxS <= 0 {
		return z, nil
	}
	probe := make([]float64, c)
	eval := func(S float64) (float64, error) {
		copy(probe, target)
		if err := opt.ProjectMaskedCappedSimplex(probe, caps, allowed, S); err != nil {
			return 0, err
		}
		// Masked entries contribute only the constant (0 − target_i)² to the
		// distance — irrelevant to the argmin, but large enough to drown the
		// h1/h2 comparison in rounding noise once the ternary interval is
		// small. Summing over the support keeps the comparison exact and
		// makes this eval bitwise identical to ProximalColumnPacked's.
		d := 0.0
		for i := 0; i < c; i++ {
			if allowed[i] {
				diff := probe[i] - target[i]
				d += diff * diff
			}
		}
		return rep.Cost(S) + rho/2*d, nil
	}
	lo, hi := 0.0, maxS
	for it := 0; it < iters && hi-lo > 1e-9*(1+maxS); it++ {
		m1 := lo + (hi-lo)/3
		m2 := hi - (hi-lo)/3
		h1, err := eval(m1)
		if err != nil {
			return nil, err
		}
		h2, err := eval(m2)
		if err != nil {
			return nil, err
		}
		if h1 <= h2 {
			hi = m2
		} else {
			lo = m1
		}
	}
	best := (lo + hi) / 2
	copy(z, target)
	if err := opt.ProjectMaskedCappedSimplex(z, caps, allowed, best); err != nil {
		return nil, err
	}
	return z, nil
}

// autoRho scales the penalty so the proximal and energy gradients are
// commensurate: ρ ≈ marginal cost at typical load / typical demand.
func autoRho(prob *opt.Problem) float64 {
	total := 0.0
	for _, d := range prob.Demands {
		total += d
	}
	n := prob.N()
	typLoad := total / float64(n)
	meanMarginal := 0.0
	for _, rep := range prob.System.Replicas {
		meanMarginal += rep.MarginalCost(typLoad)
	}
	meanMarginal /= float64(n)
	meanDemand := total / float64(prob.C())
	if meanDemand <= 0 || meanMarginal <= 0 {
		return 1
	}
	return meanMarginal / meanDemand
}
