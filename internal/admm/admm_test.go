package admm

import (
	"testing"

	"edr/internal/central"
	"edr/internal/lddm"
	"edr/internal/opt"
	"edr/internal/probgen"
	"edr/internal/sim"
	"edr/internal/solver"
)

func TestADMMName(t *testing.T) {
	if New().Name() != "ADMM" {
		t.Fatalf("Name = %q", New().Name())
	}
}

func TestADMMSimpleInstance(t *testing.T) {
	r := sim.NewRand(1)
	prob, err := probgen.MustFeasible(r, probgen.Spec{Clients: 4, Replicas: 3, Prices: []float64{1, 10, 5}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := New().Solve(prob)
	if err != nil {
		t.Fatal(err)
	}
	if err := solver.Verify(prob, res, 1e-4); err != nil {
		t.Fatal(err)
	}
	loads := opt.ColSums(res.Assignment)
	if loads[0] <= loads[1] {
		t.Fatalf("cheap replica not preferred: loads = %v", loads)
	}
}

func TestADMMMatchesReferences(t *testing.T) {
	r := sim.NewRand(7)
	for trial := 0; trial < 8; trial++ {
		prob, err := probgen.MustFeasible(r, probgen.Spec{Clients: 5, Replicas: 4, Geo: trial%2 == 0})
		if err != nil {
			t.Fatal(err)
		}
		ad, err := New().Solve(prob)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := solver.Verify(prob, ad, 1e-4); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		ref, err := central.NewFrankWolfe().Solve(prob)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if ad.Objective > ref.Objective*1.05+1e-6 {
			t.Fatalf("trial %d: ADMM %.4f vs reference %.4f (>5%% gap)", trial, ad.Objective, ref.Objective)
		}
	}
}

func TestADMMConvergesFasterThanLDDM(t *testing.T) {
	// The proximal damping should beat constant-step dual ascent in
	// iteration count on typical instances.
	r := sim.NewRand(11)
	faster := 0
	const trials = 6
	for trial := 0; trial < trials; trial++ {
		prob, err := probgen.MustFeasible(r, probgen.Spec{Clients: 6, Replicas: 5})
		if err != nil {
			t.Fatal(err)
		}
		ad, err := New().Solve(prob)
		if err != nil {
			t.Fatal(err)
		}
		ld := lddm.New()
		ldRes, err := ld.Solve(prob)
		if err != nil {
			t.Fatal(err)
		}
		if ad.Converged && ad.Iterations < ldRes.Iterations {
			faster++
		}
	}
	if faster < trials/2+1 {
		t.Fatalf("ADMM faster on only %d/%d instances", faster, trials)
	}
}

func TestADMMCommLinearInCN(t *testing.T) {
	r := sim.NewRand(13)
	prob, err := probgen.MustFeasible(r, probgen.Spec{Clients: 6, Replicas: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := New().Solve(prob)
	if err != nil {
		t.Fatal(err)
	}
	if perIter := res.Comm.Scalars / res.Iterations; perIter != 2*6*3 {
		t.Fatalf("scalars/iteration = %d, want %d (O(C·N))", perIter, 2*6*3)
	}
}

func TestADMMMaskRespected(t *testing.T) {
	r := sim.NewRand(17)
	prob, err := probgen.MustFeasible(r, probgen.Spec{Clients: 8, Replicas: 5, Geo: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := New().Solve(prob)
	if err != nil {
		t.Fatal(err)
	}
	mask := prob.Allowed()
	for c := range res.Assignment {
		for n, v := range res.Assignment[c] {
			if !mask[c][n] && v > 1e-9 {
				t.Fatalf("masked entry [%d][%d] = %g", c, n, v)
			}
		}
	}
}

func TestADMMInfeasibleRejected(t *testing.T) {
	r := sim.NewRand(19)
	prob, err := probgen.New(r, probgen.Spec{Clients: 1, Replicas: 2, Demands: []float64{1000}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New().Solve(prob); err == nil {
		t.Fatal("infeasible instance accepted")
	}
}

func TestADMMHistoryResidualsDecay(t *testing.T) {
	r := sim.NewRand(23)
	prob, err := probgen.MustFeasible(r, probgen.Spec{Clients: 4, Replicas: 4})
	if err != nil {
		t.Fatal(err)
	}
	res, err := New().Solve(prob)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) < 2 {
		t.Skip("converged immediately")
	}
	first := res.History[0]
	last := res.History[len(res.History)-1]
	if last >= first {
		t.Fatalf("primal residual did not decay: %g → %g", first, last)
	}
}
