package admm

import (
	"math"
	"testing"

	"edr/internal/model"
	"edr/internal/opt"
	"edr/internal/probgen"
	"edr/internal/sim"
	"edr/internal/solver"
)

func maskedInstance(t *testing.T, r *sim.Rand, clients, replicas int) *opt.Problem {
	t.Helper()
	for attempt := 0; attempt < 50; attempt++ {
		prob, err := probgen.MustFeasible(r, probgen.Spec{Clients: clients, Replicas: replicas, Geo: true})
		if err != nil {
			t.Fatal(err)
		}
		if !prob.Sparsity().Full {
			return prob
		}
	}
	t.Fatal("no masked instance in 50 draws")
	return nil
}

func TestProximalColumnPackedMatchesDense(t *testing.T) {
	// The packed proximal drops only constant (masked-entry) penalty terms
	// from the dense evaluation, so the two ternary searches minimize the
	// same function and land on the same column up to the 1-D tolerance.
	r := sim.NewRand(73)
	for trial := 0; trial < 30; trial++ {
		c := r.IntBetween(1, 10)
		rep := model.NewReplica("r", r.Range(1, 20))
		rep.Bandwidth = r.Range(20, 120)
		allowed := make([]bool, c)
		caps := make([]float64, c)
		target := make([]float64, c)
		packedCaps := []float64{}
		packedTarget := []float64{}
		idx := []int{}
		for i := 0; i < c; i++ {
			allowed[i] = r.Float64() < 0.7
			caps[i] = r.Range(0, 30)
			target[i] = r.Range(-10, 30)
			if allowed[i] {
				packedCaps = append(packedCaps, caps[i])
				packedTarget = append(packedTarget, target[i])
				idx = append(idx, i)
			}
		}
		rho := r.Range(0.01, 2)
		dense, err := ProximalColumn(rep, allowed, caps, target, rho, 60)
		if err != nil {
			t.Fatal(err)
		}
		packed, err := ProximalColumnPacked(rep, packedCaps, packedTarget, rho, 60)
		if err != nil {
			t.Fatal(err)
		}
		for p, i := range idx {
			if math.Abs(packed[p]-dense[i]) > 1e-6*(1+math.Abs(dense[i])) {
				t.Fatalf("trial %d: packed[%d]=%v, dense[%d]=%v", trial, p, packed[p], i, dense[i])
			}
		}
		for i, v := range dense {
			if !allowed[i] && v != 0 {
				t.Fatalf("trial %d: dense wrote masked client %d", trial, i)
			}
		}
	}
}

func TestADMMSparseMatchesDenseMasked(t *testing.T) {
	r := sim.NewRand(79)
	for trial := 0; trial < 4; trial++ {
		prob := maskedInstance(t, r, 6, 4)
		dense, err := (&Solver{Sparse: opt.SparseOff}).Solve(prob)
		if err != nil {
			t.Fatalf("trial %d dense: %v", trial, err)
		}
		sparse, err := (&Solver{Sparse: opt.SparseAuto}).Solve(prob)
		if err != nil {
			t.Fatalf("trial %d sparse: %v", trial, err)
		}
		if err := solver.Verify(prob, sparse, 1e-4); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		gap := math.Abs(dense.Objective - sparse.Objective)
		if gap > 1e-9*(1+math.Abs(dense.Objective)) {
			t.Fatalf("trial %d: objective gap %g (dense %v sparse %v)",
				trial, gap, dense.Objective, sparse.Objective)
		}
	}
}

func TestADMMSparseParallelSerialBitForBit(t *testing.T) {
	r := sim.NewRand(83)
	prob := maskedInstance(t, r, 20, 5)
	serial, err := (&Solver{Sparse: opt.SparseForce, Parallelism: -1, MaxIters: 200}).Solve(prob)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := (&Solver{Sparse: opt.SparseForce, Parallelism: 4, MaxIters: 200}).Solve(prob)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Iterations != parallel.Iterations {
		t.Fatalf("iterations differ: %d vs %d", serial.Iterations, parallel.Iterations)
	}
	for c := range serial.Assignment {
		for n := range serial.Assignment[c] {
			if serial.Assignment[c][n] != parallel.Assignment[c][n] {
				t.Fatalf("assignment differs at [%d][%d]", c, n)
			}
		}
	}
}

func TestADMMSparseCommCountsNNZ(t *testing.T) {
	r := sim.NewRand(89)
	prob := maskedInstance(t, r, 8, 4)
	nnz := prob.Sparsity().NNZ()
	res, err := (&Solver{Sparse: opt.SparseForce, MaxIters: 60}).Solve(prob)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.Comm.Scalars/res.Iterations, 2*nnz; got != want {
		t.Fatalf("scalars/iteration = %d, want %d (2·nnz)", got, want)
	}
}
