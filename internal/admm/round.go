package admm

import (
	"context"
	"fmt"
	"math"

	"edr/internal/engine"
	"edr/internal/opt"
	"edr/internal/transport"
)

// MsgProx is initiator → replica: solve the replica's proximal subproblem
// against an initiator-assembled target and return the new column.
const MsgProx = "replica.admm.prox"

// ProxBody carries one replica's proximal target. On the binary codec
// the target rides in a kinded frame (full/sparse/delta) with per-peer
// base negotiation: BaseIter declares which earlier iteration's target
// the receiver already holds; Base/Resolve are marshal/decode context in
// the transport convention (never serialized). JSON always carries the
// full vector.
type ProxBody struct {
	Round  int       `json:"round"`
	Iter   int       `json:"iter"`
	Rho    float64   `json:"rho"`
	Target []float64 `json:"target"`

	// BaseIter is the iteration id of the target snapshot the receiver
	// holds (−1: none). Binary codec only.
	BaseIter int `json:"-"`
	// Base is the sender's copy of that snapshot (marshal-time context).
	Base []float64 `json:"-"`
	// Resolve maps a declared base iteration to the receiver's held
	// snapshot (decode-time context).
	Resolve func(iter int) []float64 `json:"-"`
}

// ProxReply returns the replica's updated column z_n.
type ProxReply struct {
	Column []float64 `json:"column"`
}

func init() {
	engine.Register(engine.Registration{
		Name:   "ADMM",
		New:    func() engine.Algorithm { return &roundAlg{} },
		Server: serverHalf{},
		Verbs:  []string{MsgProx},
	})
}

// roundAlg is the initiator half of sharing-ADMM over the fabric: replicas
// answer proximal solves, and clients hold the scaled dual (their MuUpdate
// rule with step 1/|N| is exactly the ADMM dual update u += (served−R)/|N|).
type roundAlg struct {
	rd  *engine.Round
	k   int
	tol float64
	rho float64

	z          [][]float64 // transposed: z[replica][client]
	targets    [][]float64 // per-replica proximal targets, same layout
	sp         *opt.Sparsity
	tx         transport.DeltaTx
	u          []float64
	warmU      []float64 // additive dual offset from the previous round
	share      []float64
	rowAvg     []float64
	primal     [][]float64 // client×replica scratch for trajectory costing
	demandNorm float64

	exchanges []engine.Exchange
}

func (a *roundAlg) Init(rd *engine.Round) error {
	c, n := rd.Prob.C(), rd.Prob.N()
	a.rd = rd
	a.tol = rd.Tol
	if a.tol <= 0 {
		a.tol = 1e-3
	}
	a.rho = autoRho(rd.Prob)
	a.z = rd.Pool.Matrix(n, c)
	a.targets = rd.Pool.Matrix(n, c)
	a.u = rd.Pool.Vector(c)
	a.share = rd.Pool.Vector(c)
	a.rowAvg = rd.Pool.Vector(c)
	a.primal = rd.Pool.Matrix(c, n)
	a.demandNorm = 0
	for i := 0; i < c; i++ {
		a.share[i] = rd.Prob.Demands[i] / float64(n)
		a.demandNorm += rd.Prob.Demands[i] * rd.Prob.Demands[i]
	}
	a.demandNorm = math.Sqrt(a.demandNorm)
	if rd.Warm != nil && len(rd.Warm) == c {
		// Seed z from the warm-start assignment (transposed layout). The
		// warm split conserves demand, so the primal residual starts near
		// zero and the loop spends its iterations on optimality, not on
		// re-finding feasibility from the origin.
		for i := 0; i < c; i++ {
			if len(rd.Warm[i]) != n {
				continue
			}
			for j := 0; j < n; j++ {
				a.z[j][i] = rd.Warm[i][j]
			}
		}
	}
	if sp := rd.Prob.Sparsity(); opt.SparseAuto.Enabled(sp) {
		// Masked instance: each replica's proximal solve reads only its
		// feasible clients' targets, so build (and ship) the target
		// projected onto that support. The structural zeros are bit-stable
		// across iterations, which lets the kinded wire frames go sparse
		// or delta.
		a.sp = sp
	}
	a.warmU = make([]float64, c) // escapes via Duals; not pool-owned
	if len(rd.WarmMu) == c {
		// Warm-start the scaled dual: the clients accumulate μ from zero
		// every round, so the previous round's final duals enter as an
		// additive offset on this side. Iteration count in sharing-ADMM is
		// dominated by the dual climbing to its fixed point — starting it
		// there is what makes warm rounds converge in a handful of steps.
		copy(a.warmU, rd.WarmMu)
		copy(a.u, a.warmU)
	}
	a.exchanges = []engine.Exchange{
		{
			// Proximal solves (parallel: disjoint z and target rows; rowAvg
			// is frozen for the wave by Iterate).
			Verb:  MsgProx,
			Class: engine.Replicas,
			Body: func(j int) any {
				t := a.targets[j]
				if a.sp != nil {
					// Off-support entries stay zero: the pooled row was
					// zeroed at acquisition and is only ever written here.
					for s := a.sp.ColStart[j]; s < a.sp.ColStart[j+1]; s++ {
						i := a.sp.RowIdx[s]
						t[i] = a.z[j][i] - a.rowAvg[i] + a.share[i] - a.u[i]
					}
				} else {
					for i := 0; i < c; i++ {
						t[i] = a.z[j][i] - a.rowAvg[i] + a.share[i] - a.u[i]
					}
				}
				body := ProxBody{Round: rd.Seq, Iter: a.k, Rho: a.rho, Target: t}
				body.Base, body.BaseIter = a.tx.Stage(rd.ReplicaAddrs[j], a.k, t)
				return body
			},
			Fold: func(j int, r engine.Reply) error {
				// The reply proves the peer decoded (and now holds) the
				// staged target — promote it to the delta base.
				a.tx.Ack(rd.ReplicaAddrs[j])
				var reply ProxReply
				if err := r.Decode(&reply); err != nil {
					return err
				}
				if len(reply.Column) != c {
					return fmt.Errorf("admm: %s returned %d entries for %d clients",
						rd.ReplicaAddrs[j], len(reply.Column), c)
				}
				copy(a.z[j], reply.Column)
				return nil
			},
		},
		{
			// Dual updates at the clients; step 1/|N| realizes the ADMM rule
			// (parallel: disjoint u entries).
			Verb:  engine.MsgMuUpdate,
			Class: engine.Clients,
			Body: func(i int) any {
				served := 0.0
				for j := 0; j < n; j++ {
					served += a.z[j][i]
				}
				return engine.MuUpdateBody{
					Round:    rd.Seq,
					Iter:     a.k,
					ServedMB: served,
					DemandMB: rd.Prob.Demands[i],
					Step:     1 / float64(n),
				}
			},
			Fold: func(i int, r engine.Reply) error {
				var reply engine.MuUpdateReply
				if err := r.Decode(&reply); err != nil {
					return err
				}
				a.u[i] = a.warmU[i] + reply.Mu
				return nil
			},
		},
	}
	return nil
}

// Iterate freezes the previous iterate's row averages so the proximal
// wave's concurrently-built targets all see one consistent snapshot.
func (a *roundAlg) Iterate(k int) []engine.Exchange {
	a.k = k
	c, n := a.rd.Prob.C(), a.rd.Prob.N()
	for i := 0; i < c; i++ {
		sum := 0.0
		for j := 0; j < n; j++ {
			sum += a.z[j][i]
		}
		a.rowAvg[i] = sum / float64(n)
	}
	return a.exchanges
}

func (a *roundAlg) Converged(k int) (float64, bool) {
	c, n := a.rd.Prob.C(), a.rd.Prob.N()
	maxPrimal := 0.0
	for i := 0; i < c; i++ {
		served := 0.0
		for j := 0; j < n; j++ {
			served += a.z[j][i]
		}
		if r := math.Abs(served - a.rd.Prob.Demands[i]); r > maxPrimal {
			maxPrimal = r
		}
	}
	return maxPrimal, maxPrimal <= a.tol*(1+a.demandNorm)
}

// Duals reports the final scaled dual values (engine.DualReporter) so the
// next round can warm-start from them. Returned in a non-pooled buffer.
func (a *roundAlg) Duals() []float64 {
	copy(a.warmU, a.u)
	return a.warmU
}

// Primal exposes the current iterate (transposed into client×replica
// form) for trajectory costing.
func (a *roundAlg) Primal() [][]float64 {
	c, n := a.rd.Prob.C(), a.rd.Prob.N()
	for j := 0; j < n; j++ {
		for i := 0; i < c; i++ {
			a.primal[i][j] = a.z[j][i]
		}
	}
	return a.primal
}

func (a *roundAlg) Recover(ctx context.Context, d *engine.Driver) ([][]float64, error) {
	c, n := a.rd.Prob.C(), a.rd.Prob.N()
	final := opt.NewMatrix(c, n)
	for j := 0; j < n; j++ {
		for i := 0; i < c; i++ {
			final[i][j] = a.z[j][i]
		}
	}
	if err := opt.ProjectFeasiblePar(a.rd.Prob, final, 1e-6, a.rd.Par); err != nil {
		return nil, fmt.Errorf("admm: primal recovery: %w", err)
	}
	return final, nil
}

// serverState caches the replica's latency mask and per-client caps so a
// round's repeated proximal solves skip rebuilding them. On masked
// instances the dense mask is replaced by the packed support (clients +
// packed caps) and the proximal runs on the packed kernel.
type serverState struct {
	allowed []bool
	caps    []float64

	clients []int     // packed ascending client ids (nil on full instances)
	capsPk  []float64 // caps aligned with clients

	rx transport.DeltaRx // delta-frame receive window for the target stream
}

// serverHalf answers MsgProx on a participant replica.
type serverHalf struct{}

func (serverHalf) Handle(ctx context.Context, verb string, req engine.Reply, sr *engine.ServerRound) (any, error) {
	c := sr.Prob.C()
	// Fetch (or build) the round state before decoding: a delta target
	// frame resolves its base from the receive window.
	st, err := sr.State("ADMM", func() (any, error) {
		s := &serverState{}
		if sp := sr.Prob.Sparsity(); opt.SparseAuto.Enabled(sp) {
			s.clients = sp.RowIdx[sp.ColStart[sr.Col]:sp.ColStart[sr.Col+1]:sp.ColStart[sr.Col+1]]
			s.capsPk = make([]float64, len(s.clients))
			for idx, i := range s.clients {
				s.capsPk[idx] = sr.Prob.Demands[i]
			}
			return s, nil
		}
		mask := sr.Prob.Allowed()
		s.allowed = make([]bool, c)
		s.caps = make([]float64, c)
		for i := 0; i < c; i++ {
			s.allowed[i] = mask[i][sr.Col]
			s.caps[i] = sr.Prob.Demands[i]
		}
		return s, nil
	})
	if err != nil {
		return nil, err
	}
	ps := st.(*serverState)
	var body ProxBody
	body.Resolve = ps.rx.Resolve
	if err := req.Decode(&body); err != nil {
		return nil, err
	}
	if len(body.Target) != c {
		return nil, fmt.Errorf("admm: round %d: %d targets for %d clients", body.Round, len(body.Target), c)
	}
	ps.rx.Absorb(body.Iter, body.Target)
	// Both proximal kernels are stateless over read-only inputs, so
	// concurrent solves need no lock.
	if ps.clients != nil {
		targetPk := make([]float64, len(ps.clients))
		for idx, i := range ps.clients {
			targetPk[idx] = body.Target[i]
		}
		packed, err := ProximalColumnPacked(sr.Prob.System.Replicas[sr.Col], ps.capsPk, targetPk, body.Rho, 40)
		if err != nil {
			return nil, err
		}
		col := make([]float64, c)
		for idx, i := range ps.clients {
			col[i] = packed[idx]
		}
		return ProxReply{Column: col}, nil
	}
	col, err := ProximalColumn(sr.Prob.System.Replicas[sr.Col], ps.allowed, ps.caps, body.Target, body.Rho, 40)
	if err != nil {
		return nil, err
	}
	return ProxReply{Column: col}, nil
}
