// Package baseline provides the non-optimizing schedulers the paper
// compares EDR against — primarily Round-Robin — plus two simple ablation
// heuristics (greedy cheapest-price and latency-proportional) used by the
// extended benchmarks.
package baseline

import (
	"fmt"
	"sort"

	"edr/internal/opt"
	"edr/internal/solver"
)

// RoundRobin splits every client's demand evenly across its latency-
// feasible replicas, capping at capacity — the paper's baseline method.
// It is energy- and price-oblivious.
type RoundRobin struct{}

// Name implements solver.Solver.
func (RoundRobin) Name() string { return "Round-Robin" }

// Solve implements solver.Solver. The even split is repaired against
// capacity caps by redistributing overflow round-robin across replicas
// with headroom, preserving the scheduler's obliviousness to price.
func (RoundRobin) Solve(prob *opt.Problem) (*solver.Result, error) {
	if err := prob.Validate(); err != nil {
		return nil, err
	}
	if err := opt.CheckFeasible(prob); err != nil {
		return nil, err
	}
	x, err := prob.UniformStart()
	if err != nil {
		return nil, err
	}
	if err := repairCapacity(prob, x); err != nil {
		return nil, err
	}
	return &solver.Result{
		Assignment: x,
		Objective:  prob.Cost(x),
		Iterations: 1,
		Converged:  true,
		// Each client tells each feasible replica its share once.
		Comm: solver.CommStats{Messages: prob.C(), Scalars: prob.C() * prob.N()},
	}, nil
}

// GreedyPrice routes every client's full demand to its cheapest feasible
// replica with headroom, ignoring the polynomial network-energy term — an
// ablation showing why marginal-cost (not price-only) optimization matters
// once the cubic term bites.
type GreedyPrice struct{}

// Name implements solver.Solver.
func (GreedyPrice) Name() string { return "Greedy-Price" }

// Solve implements solver.Solver.
func (GreedyPrice) Solve(prob *opt.Problem) (*solver.Result, error) {
	if err := prob.Validate(); err != nil {
		return nil, err
	}
	if err := opt.CheckFeasible(prob); err != nil {
		return nil, err
	}
	mask := prob.Allowed()
	n := prob.N()
	x := opt.NewMatrix(prob.C(), n)
	headroom := make([]float64, n)
	for j := 0; j < n; j++ {
		headroom[j] = prob.System.Replicas[j].Bandwidth
	}
	// Replica indexes in ascending price.
	byPrice := make([]int, n)
	for j := range byPrice {
		byPrice[j] = j
	}
	sort.Slice(byPrice, func(a, b int) bool {
		return prob.System.Replicas[byPrice[a]].Price < prob.System.Replicas[byPrice[b]].Price
	})
	for c := range x {
		remaining := prob.Demands[c]
		for _, j := range byPrice {
			if remaining <= 0 {
				break
			}
			if !mask[c][j] || headroom[j] <= 0 {
				continue
			}
			take := remaining
			if take > headroom[j] {
				take = headroom[j]
			}
			x[c][j] += take
			headroom[j] -= take
			remaining -= take
		}
		if remaining > 1e-9 {
			return nil, fmt.Errorf("baseline: greedy-price stranded %g MB for client %d", remaining, c)
		}
	}
	return &solver.Result{
		Assignment: x,
		Objective:  prob.Cost(x),
		Iterations: 1,
		Converged:  true,
		Comm:       solver.CommStats{Messages: prob.C(), Scalars: prob.C() * prob.N()},
	}, nil
}

// LatencyProportional splits each client's demand across feasible replicas
// in proportion to inverse latency — a quality-of-service-first heuristic
// that, like DONAR, never looks at energy prices.
type LatencyProportional struct{}

// Name implements solver.Solver.
func (LatencyProportional) Name() string { return "Latency-Proportional" }

// Solve implements solver.Solver.
func (LatencyProportional) Solve(prob *opt.Problem) (*solver.Result, error) {
	if err := prob.Validate(); err != nil {
		return nil, err
	}
	if err := opt.CheckFeasible(prob); err != nil {
		return nil, err
	}
	mask := prob.Allowed()
	x := opt.NewMatrix(prob.C(), prob.N())
	for c := range x {
		total := 0.0
		for j := range x[c] {
			if mask[c][j] {
				total += 1 / (prob.Latency[c][j] + 1e-9)
			}
		}
		if total == 0 {
			return nil, fmt.Errorf("baseline: client %d has no feasible replica", c)
		}
		for j := range x[c] {
			if mask[c][j] {
				x[c][j] = prob.Demands[c] * (1 / (prob.Latency[c][j] + 1e-9)) / total
			}
		}
	}
	if err := repairCapacity(prob, x); err != nil {
		return nil, err
	}
	return &solver.Result{
		Assignment: x,
		Objective:  prob.Cost(x),
		Iterations: 1,
		Converged:  true,
		Comm:       solver.CommStats{Messages: prob.C(), Scalars: prob.C() * prob.N()},
	}, nil
}

// repairCapacity fixes capacity overflows in an assignment that already
// satisfies demand/box/mask, by moving overflow from saturated replicas to
// ones with headroom (cheapest repair that keeps the scheduler's intent).
// Falls back to the exact feasibility projection when simple moves cannot
// finish the job.
func repairCapacity(prob *opt.Problem, x [][]float64) error {
	if v := capacityOverflow(prob, x); v <= 1e-9 {
		return nil
	}
	if err := opt.ProjectFeasible(prob, x, 1e-6); err != nil {
		return fmt.Errorf("baseline: capacity repair: %w", err)
	}
	return nil
}

func capacityOverflow(prob *opt.Problem, x [][]float64) float64 {
	loads := opt.ColSums(x)
	worst := 0.0
	for j, load := range loads {
		if over := load - prob.System.Replicas[j].Bandwidth; over > worst {
			worst = over
		}
	}
	return worst
}
