package baseline

import (
	"math"
	"testing"

	"edr/internal/central"
	"edr/internal/opt"
	"edr/internal/probgen"
	"edr/internal/sim"
	"edr/internal/solver"
)

func TestNames(t *testing.T) {
	if (RoundRobin{}).Name() != "Round-Robin" {
		t.Fatalf("RoundRobin name = %q", RoundRobin{}.Name())
	}
	if (GreedyPrice{}).Name() != "Greedy-Price" {
		t.Fatalf("GreedyPrice name = %q", GreedyPrice{}.Name())
	}
	if (LatencyProportional{}).Name() != "Latency-Proportional" {
		t.Fatalf("LatencyProportional name = %q", LatencyProportional{}.Name())
	}
}

func TestRoundRobinEvenSplit(t *testing.T) {
	r := sim.NewRand(1)
	prob, err := probgen.MustFeasible(r, probgen.Spec{
		Clients: 2, Replicas: 4, Demands: []float64{40, 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RoundRobin{}.Solve(prob)
	if err != nil {
		t.Fatal(err)
	}
	if err := solver.Verify(prob, res, 1e-6); err != nil {
		t.Fatal(err)
	}
	for n := 0; n < 4; n++ {
		if math.Abs(res.Assignment[0][n]-10) > 1e-9 {
			t.Fatalf("client 0 split = %v, want even 10s", res.Assignment[0])
		}
		if math.Abs(res.Assignment[1][n]-5) > 1e-9 {
			t.Fatalf("client 1 split = %v, want even 5s", res.Assignment[1])
		}
	}
}

func TestRoundRobinPriceOblivious(t *testing.T) {
	// Identical topologies, wildly different prices: identical assignment.
	rA := sim.NewRand(7)
	probA, err := probgen.MustFeasible(rA, probgen.Spec{
		Clients: 3, Replicas: 3, Prices: []float64{1, 1, 1}, Demands: []float64{30, 20, 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	rB := sim.NewRand(7)
	probB, err := probgen.MustFeasible(rB, probgen.Spec{
		Clients: 3, Replicas: 3, Prices: []float64{1, 20, 20}, Demands: []float64{30, 20, 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	resA, err := RoundRobin{}.Solve(probA)
	if err != nil {
		t.Fatal(err)
	}
	resB, err := RoundRobin{}.Solve(probB)
	if err != nil {
		t.Fatal(err)
	}
	if d := opt.Dist(resA.Assignment, resB.Assignment); d > 1e-9 {
		t.Fatalf("Round-Robin reacted to prices: distance %g", d)
	}
}

func TestRoundRobinCostsMoreThanOptimal(t *testing.T) {
	r := sim.NewRand(11)
	prob, err := probgen.MustFeasible(r, probgen.Spec{
		Clients: 6, Replicas: 4, Prices: []float64{1, 18, 2, 15},
	})
	if err != nil {
		t.Fatal(err)
	}
	rr, err := RoundRobin{}.Solve(prob)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := central.New().Solve(prob)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Objective <= ref.Objective {
		t.Fatalf("Round-Robin %g not above optimum %g under skewed prices", rr.Objective, ref.Objective)
	}
}

func TestRoundRobinRespectsMask(t *testing.T) {
	r := sim.NewRand(13)
	prob, err := probgen.MustFeasible(r, probgen.Spec{Clients: 8, Replicas: 5, Geo: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RoundRobin{}.Solve(prob)
	if err != nil {
		t.Fatal(err)
	}
	mask := prob.Allowed()
	for c := range res.Assignment {
		for n, v := range res.Assignment[c] {
			if !mask[c][n] && v > 1e-9 {
				t.Fatalf("masked entry [%d][%d] = %g", c, n, v)
			}
		}
	}
}

func TestRoundRobinCapacityRepair(t *testing.T) {
	// Demand big enough that even splits overflow one replica's cap when
	// most clients can only reach it.
	r := sim.NewRand(17)
	prob, err := probgen.New(r, probgen.Spec{
		Clients: 2, Replicas: 2, Demands: []float64{95, 95},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Client 0 can only use replica 0.
	prob.Latency[0][1] = 1
	if err := opt.CheckFeasible(prob); err != nil {
		t.Skip("instance infeasible under mask; skip")
	}
	res, err := RoundRobin{}.Solve(prob)
	if err != nil {
		t.Fatal(err)
	}
	if err := solver.Verify(prob, res, 1e-4); err != nil {
		t.Fatal(err)
	}
}

func TestGreedyPricePicksCheapest(t *testing.T) {
	r := sim.NewRand(19)
	prob, err := probgen.MustFeasible(r, probgen.Spec{
		Clients: 2, Replicas: 3, Prices: []float64{9, 1, 5}, Demands: []float64{30, 30},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := GreedyPrice{}.Solve(prob)
	if err != nil {
		t.Fatal(err)
	}
	if err := solver.Verify(prob, res, 1e-6); err != nil {
		t.Fatal(err)
	}
	loads := opt.ColSums(res.Assignment)
	if math.Abs(loads[1]-60) > 1e-9 {
		t.Fatalf("cheapest replica load = %g, want all 60", loads[1])
	}
}

func TestGreedyPriceSpillsAtCapacity(t *testing.T) {
	r := sim.NewRand(23)
	prob, err := probgen.MustFeasible(r, probgen.Spec{
		Clients: 2, Replicas: 2, Prices: []float64{1, 20}, Demands: []float64{80, 80},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := GreedyPrice{}.Solve(prob)
	if err != nil {
		t.Fatal(err)
	}
	loads := opt.ColSums(res.Assignment)
	if math.Abs(loads[0]-100) > 1e-9 || math.Abs(loads[1]-60) > 1e-9 {
		t.Fatalf("loads = %v, want [100 60]", loads)
	}
}

func TestLatencyProportionalWeighting(t *testing.T) {
	r := sim.NewRand(29)
	prob, err := probgen.MustFeasible(r, probgen.Spec{
		Clients: 1, Replicas: 2, Demands: []float64{30},
	})
	if err != nil {
		t.Fatal(err)
	}
	prob.Latency[0][0] = 0.0004
	prob.Latency[0][1] = 0.0008 // twice the latency → half the share
	res, err := LatencyProportional{}.Solve(prob)
	if err != nil {
		t.Fatal(err)
	}
	if err := solver.Verify(prob, res, 1e-4); err != nil {
		t.Fatal(err)
	}
	ratio := res.Assignment[0][0] / res.Assignment[0][1]
	if math.Abs(ratio-2) > 0.01 {
		t.Fatalf("share ratio = %g, want ~2", ratio)
	}
}

func TestAllBaselinesFeasibleOnRandomInstances(t *testing.T) {
	r := sim.NewRand(31)
	solvers := []solver.Solver{RoundRobin{}, GreedyPrice{}, LatencyProportional{}}
	for trial := 0; trial < 10; trial++ {
		prob, err := probgen.MustFeasible(r, probgen.Spec{Clients: 5, Replicas: 4, Geo: trial%2 == 0})
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range solvers {
			res, err := s.Solve(prob)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, s.Name(), err)
			}
			if err := solver.Verify(prob, res, 1e-4); err != nil {
				t.Fatalf("trial %d %s: %v", trial, s.Name(), err)
			}
		}
	}
}

func TestGreedyPriceStrandedDemand(t *testing.T) {
	// Client 0 can reach only replica 0 whose capacity is too small even
	// though the instance would look fine ignoring masks — CheckFeasible
	// rejects it before the greedy pass runs.
	r := sim.NewRand(37)
	prob, err := probgen.New(r, probgen.Spec{
		Clients: 1, Replicas: 2, Demands: []float64{150},
	})
	if err != nil {
		t.Fatal(err)
	}
	prob.Latency[0][1] = 1 // unreachable
	if _, err := (GreedyPrice{}).Solve(prob); err == nil {
		t.Fatal("stranded-demand instance accepted")
	}
}

func TestLatencyProportionalInvalidProblem(t *testing.T) {
	r := sim.NewRand(41)
	prob, err := probgen.MustFeasible(r, probgen.Spec{Clients: 2, Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	prob.MaxLatency = -1
	if _, err := (LatencyProportional{}).Solve(prob); err == nil {
		t.Fatal("invalid problem accepted")
	}
	if _, err := (GreedyPrice{}).Solve(prob); err == nil {
		t.Fatal("invalid problem accepted by greedy")
	}
	if _, err := (RoundRobin{}).Solve(prob); err == nil {
		t.Fatal("invalid problem accepted by round-robin")
	}
}

func TestBaselinesOneShotMetadata(t *testing.T) {
	r := sim.NewRand(43)
	prob, err := probgen.MustFeasible(r, probgen.Spec{Clients: 3, Replicas: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []solver.Solver{RoundRobin{}, GreedyPrice{}, LatencyProportional{}} {
		res, err := s.Solve(prob)
		if err != nil {
			t.Fatal(err)
		}
		if res.Iterations != 1 || !res.Converged {
			t.Fatalf("%s: iterations=%d converged=%v, want one-shot", s.Name(), res.Iterations, res.Converged)
		}
		if res.Comm.Messages == 0 {
			t.Fatalf("%s: zero messages accounted", s.Name())
		}
	}
}
