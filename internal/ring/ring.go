// Package ring implements EDR's fault-tolerance structure (paper §III-C):
// replicas are arranged in a logical ring, watch their successor with
// heartbeats, and on a missed deadline remove the dead replica from their
// "active member list", rebuild the ring, and notify the survivors so the
// runtime can re-run scheduling on the new membership.
package ring

import (
	"fmt"
	"sort"
	"sync"

	"edr/internal/telemetry"
)

// Ring is an ordered membership list. Members are kept sorted by name so
// every node independently derives the same ring from the same member set.
// Ring is safe for concurrent use.
type Ring struct {
	// Bus, when non-nil, receives MemberJoined / MemberRemoved telemetry
	// events as Add and Remove mutate the view, making every membership
	// change — failure-detector prunes and epoch reconfigurations alike —
	// visible on the event plane. Set it before the ring is shared.
	Bus *telemetry.Bus

	mu      sync.RWMutex
	members []string
}

// New builds a ring over the given members (duplicates are collapsed).
func New(members []string) *Ring {
	seen := make(map[string]bool, len(members))
	var uniq []string
	for _, m := range members {
		if m != "" && !seen[m] {
			seen[m] = true
			uniq = append(uniq, m)
		}
	}
	sort.Strings(uniq)
	return &Ring{members: uniq}
}

// Members returns a copy of the current membership in ring order.
func (r *Ring) Members() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, len(r.members))
	copy(out, r.members)
	return out
}

// Len returns the current membership size.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.members)
}

// Contains reports whether name is a live member.
func (r *Ring) Contains(name string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.index(name) >= 0
}

// index returns name's position or -1. Caller holds the lock.
func (r *Ring) index(name string) int {
	i := sort.SearchStrings(r.members, name)
	if i < len(r.members) && r.members[i] == name {
		return i
	}
	return -1
}

// Successor returns the member after `of` in ring order, wrapping around.
// It returns false when `of` is not a member or is the only member.
func (r *Ring) Successor(of string) (string, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	i := r.index(of)
	if i < 0 || len(r.members) < 2 {
		return "", false
	}
	return r.members[(i+1)%len(r.members)], true
}

// Remove deletes a member, reporting whether it was present. The remaining
// ring closes over the gap — the successor relationship is recomputed on
// the next Successor call.
func (r *Ring) Remove(name string) bool {
	r.mu.Lock()
	i := r.index(name)
	if i < 0 {
		r.mu.Unlock()
		return false
	}
	r.members = append(r.members[:i], r.members[i+1:]...)
	r.mu.Unlock()
	r.Bus.Publish(telemetry.MemberRemoved{Member: name})
	return true
}

// Add inserts a (re)joining member, reporting whether it was new.
func (r *Ring) Add(name string) bool {
	if name == "" {
		return false
	}
	r.mu.Lock()
	if r.index(name) >= 0 {
		r.mu.Unlock()
		return false
	}
	r.members = append(r.members, name)
	sort.Strings(r.members)
	r.mu.Unlock()
	r.Bus.Publish(telemetry.MemberJoined{Member: name})
	return true
}

// Snapshot formats the ring for logs: "a → b → c → a".
func (r *Ring) Snapshot() string {
	members := r.Members()
	if len(members) == 0 {
		return "(empty ring)"
	}
	s := ""
	for _, m := range members {
		s += m + " → "
	}
	return s + members[0]
}

// Validate checks invariants (sortedness, uniqueness); it exists for tests
// and debug assertions.
func (r *Ring) Validate() error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for i := 1; i < len(r.members); i++ {
		if r.members[i-1] >= r.members[i] {
			return fmt.Errorf("ring: members out of order at %d: %q >= %q", i, r.members[i-1], r.members[i])
		}
	}
	return nil
}
