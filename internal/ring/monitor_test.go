package ring

import (
	"context"
	"sync"
	"testing"
	"time"

	"edr/internal/telemetry"
	"edr/internal/transport"
)

// testMember wires a Monitor to an in-process transport node.
type testMember struct {
	name    string
	monitor *Monitor
	node    transport.Node
	mu      sync.Mutex
	deaths  []string
}

func newTestMember(t *testing.T, net transport.Network, name string, members []string) *testMember {
	t.Helper()
	tm := &testMember{name: name}
	tm.monitor = &Monitor{
		Self:     name,
		Ring:     New(members),
		Interval: 10 * time.Millisecond,
		Timeout:  5 * time.Millisecond,
		// Most of these tests exercise the death protocol itself, so one
		// miss kills; the *Suspicion* tests below set the real threshold.
		SuspectAfter: 1,
		OnFailure: func(dead string) {
			tm.mu.Lock()
			tm.deaths = append(tm.deaths, dead)
			tm.mu.Unlock()
		},
	}
	node, err := net.Listen(name, func(ctx context.Context, req transport.Message) (transport.Message, error) {
		switch req.Type {
		case HeartbeatType:
			return tm.monitor.HandleHeartbeat(req)
		case DeathType:
			return tm.monitor.HandleDeath(req)
		default:
			return transport.Message{Type: "ok"}, nil
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	tm.node = node
	tm.monitor.Node = node
	return tm
}

func (tm *testMember) deathList() []string {
	tm.mu.Lock()
	defer tm.mu.Unlock()
	out := make([]string, len(tm.deaths))
	copy(out, tm.deaths)
	return out
}

func TestMonitorHealthyRingNoFailures(t *testing.T) {
	net := transport.NewInProcNetwork()
	names := []string{"a", "b", "c"}
	members := make([]*testMember, 0, 3)
	for _, n := range names {
		members = append(members, newTestMember(t, net, n, names))
	}
	for _, m := range members {
		for i := 0; i < 5; i++ {
			m.monitor.Beat()
		}
	}
	for _, m := range members {
		if len(m.deathList()) != 0 {
			t.Fatalf("%s observed deaths %v in healthy ring", m.name, m.deathList())
		}
		if m.monitor.Ring.Len() != 3 {
			t.Fatalf("%s ring shrank to %d", m.name, m.monitor.Ring.Len())
		}
	}
}

func TestMonitorDetectsCrashAndNotifies(t *testing.T) {
	net := transport.NewInProcNetwork()
	names := []string{"a", "b", "c"}
	var members []*testMember
	for _, n := range names {
		members = append(members, newTestMember(t, net, n, names))
	}
	// Kill b. a's successor is b, so a's next beat detects it.
	net.Crash("b")
	members[0].monitor.Beat()

	// a saw the death directly.
	if got := members[0].deathList(); len(got) != 1 || got[0] != "b" {
		t.Fatalf("a deaths = %v, want [b]", got)
	}
	// c was notified.
	if got := members[2].deathList(); len(got) != 1 || got[0] != "b" {
		t.Fatalf("c deaths = %v, want [b]", got)
	}
	// Both survivors closed the ring: a → c → a.
	for _, m := range []*testMember{members[0], members[2]} {
		if m.monitor.Ring.Contains("b") {
			t.Fatalf("%s still lists b", m.name)
		}
		succ, ok := m.monitor.Ring.Successor(m.name)
		if !ok {
			t.Fatalf("%s has no successor", m.name)
		}
		if m.name == "a" && succ != "c" {
			t.Fatalf("a's successor = %q, want c", succ)
		}
	}
}

func TestMonitorCascadedFailures(t *testing.T) {
	net := transport.NewInProcNetwork()
	names := []string{"a", "b", "c", "d"}
	var members []*testMember
	for _, n := range names {
		members = append(members, newTestMember(t, net, n, names))
	}
	// Kill b and c at once; a's beat finds b, then its next beat finds c.
	net.Crash("b")
	net.Crash("c")
	members[0].monitor.Beat() // detects b, ring now a→c→d
	members[0].monitor.Beat() // detects c, ring now a→d
	if got := members[0].monitor.Ring.Len(); got != 2 {
		t.Fatalf("ring size = %d after two failures, want 2", got)
	}
	if members[3].monitor.Ring.Contains("b") || members[3].monitor.Ring.Contains("c") {
		t.Fatalf("d still lists dead members: %v", members[3].monitor.Ring.Members())
	}
	if got := members[0].deathList(); len(got) != 2 {
		t.Fatalf("a deaths = %v", got)
	}
}

func TestMonitorSingletonRingBeatIsNoop(t *testing.T) {
	net := transport.NewInProcNetwork()
	m := newTestMember(t, net, "solo", []string{"solo"})
	m.monitor.Beat() // must not panic or fail
	if len(m.deathList()) != 0 {
		t.Fatalf("solo deaths = %v", m.deathList())
	}
}

func TestMonitorStartStop(t *testing.T) {
	net := transport.NewInProcNetwork()
	names := []string{"a", "b"}
	a := newTestMember(t, net, "a", names)
	b := newTestMember(t, net, "b", names)
	a.monitor.Start()
	b.monitor.Start()
	a.monitor.Start() // idempotent
	time.Sleep(50 * time.Millisecond)
	a.monitor.Stop()
	b.monitor.Stop()
	a.monitor.Stop() // idempotent
	if len(a.deathList()) != 0 || len(b.deathList()) != 0 {
		t.Fatalf("healthy pair saw deaths: %v %v", a.deathList(), b.deathList())
	}
}

func TestMonitorLiveFailureDetection(t *testing.T) {
	net := transport.NewInProcNetwork()
	names := []string{"a", "b"}
	a := newTestMember(t, net, "a", names)
	_ = newTestMember(t, net, "b", names)
	a.monitor.Start()
	defer a.monitor.Stop()
	time.Sleep(30 * time.Millisecond) // healthy beats
	net.Crash("b")
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if len(a.deathList()) > 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := a.deathList(); len(got) != 1 || got[0] != "b" {
		t.Fatalf("live detection failed: deaths = %v", got)
	}
}

func TestHandleDeathIdempotent(t *testing.T) {
	net := transport.NewInProcNetwork()
	names := []string{"a", "b", "c"}
	a := newTestMember(t, net, "a", names)
	notice, _ := transport.NewMessage(DeathType, "c", deathNotice{Dead: "b"})
	if _, err := a.monitor.HandleDeath(notice); err != nil {
		t.Fatal(err)
	}
	if _, err := a.monitor.HandleDeath(notice); err != nil {
		t.Fatal(err)
	}
	// Only one OnFailure firing for the same death.
	if got := a.deathList(); len(got) != 1 {
		t.Fatalf("deaths = %v, want single entry", got)
	}
}

// newLossyRing builds members over a fault-injection fabric with the
// given suspicion threshold.
func newLossyRing(t *testing.T, names []string, suspectAfter int, seed uint64) (*transport.FaultyNetwork, []*testMember) {
	t.Helper()
	net := transport.NewFaultyNetwork(transport.NewInProcNetwork(), seed)
	members := make([]*testMember, 0, len(names))
	for _, n := range names {
		tm := newTestMember(t, net, n, names)
		tm.monitor.SuspectAfter = suspectAfter
		members = append(members, tm)
	}
	return net, members
}

func TestMonitorTransientLossBelowThresholdNoDeath(t *testing.T) {
	// A successor that misses SuspectAfter−1 consecutive heartbeats and
	// then recovers must never be declared dead: transient loss raises
	// suspicion, not a reconfiguration.
	net, members := newLossyRing(t, []string{"a", "b", "c"}, 3, 1)
	a := members[0]
	net.SetLink("a", "b", transport.Faults{Cut: true})
	a.monitor.Beat()
	a.monitor.Beat() // two misses: one below the threshold
	if suspect, misses := a.monitor.Suspicion(); suspect != "b" || misses != 2 {
		t.Fatalf("suspicion = %q/%d, want b/2", suspect, misses)
	}
	net.Heal()
	a.monitor.Beat() // healthy beat clears the suspicion
	if suspect, misses := a.monitor.Suspicion(); suspect != "" || misses != 0 {
		t.Fatalf("suspicion after heal = %q/%d, want cleared", suspect, misses)
	}
	for _, m := range members {
		if len(m.deathList()) != 0 {
			t.Fatalf("%s observed deaths %v under transient loss", m.name, m.deathList())
		}
		if m.monitor.Ring.Len() != 3 {
			t.Fatalf("%s ring shrank to %d under transient loss", m.name, m.monitor.Ring.Len())
		}
	}
	// Even an arbitrarily long run of isolated (non-consecutive) misses
	// must not kill: alternate one miss, one success.
	for i := 0; i < 10; i++ {
		net.SetLink("a", "b", transport.Faults{Cut: true})
		a.monitor.Beat()
		net.Heal()
		a.monitor.Beat()
	}
	if got := a.deathList(); len(got) != 0 {
		t.Fatalf("isolated misses caused deaths: %v", got)
	}
}

func TestMonitorCrashPrunedAtThreshold(t *testing.T) {
	// A member that actually crashes is pruned on exactly the
	// SuspectAfter-th consecutive miss — the deterministic statement of
	// "within SuspectAfter × Interval + Timeout" for manual beats.
	net, members := newLossyRing(t, []string{"a", "b", "c"}, 3, 2)
	a := members[0]
	net.Crash("b")
	a.monitor.Beat()
	a.monitor.Beat()
	if got := a.deathList(); len(got) != 0 {
		t.Fatalf("death declared after %d misses, below threshold 3: %v", 2, got)
	}
	a.monitor.Beat() // third consecutive miss crosses the threshold
	if got := a.deathList(); len(got) != 1 || got[0] != "b" {
		t.Fatalf("a deaths = %v, want [b]", got)
	}
	if members[2].monitor.Ring.Contains("b") {
		t.Fatal("c was not notified of b's death")
	}
	if suspect, misses := a.monitor.Suspicion(); suspect != "" || misses != 0 {
		t.Fatalf("suspicion not reset after declaration: %q/%d", suspect, misses)
	}
}

func TestMonitorSuccessorChangeResetsSuspicion(t *testing.T) {
	// Misses are counted per successor: when the ring changes under a
	// suspicion, the count restarts against the new successor.
	net, members := newLossyRing(t, []string{"a", "b", "c"}, 3, 3)
	a := members[0]
	net.Crash("b")
	net.Crash("c")
	a.monitor.Beat()
	a.monitor.Beat() // two misses against b
	// A peer's death notice removes b; a's successor becomes c.
	a.monitor.Ring.Remove("b")
	a.monitor.Beat() // first miss against c — must NOT inherit b's count
	if got := a.deathList(); len(got) != 0 {
		t.Fatalf("c declared dead with inherited miss count: %v", got)
	}
	if suspect, misses := a.monitor.Suspicion(); suspect != "c" || misses != 1 {
		t.Fatalf("suspicion = %q/%d, want c/1", suspect, misses)
	}
	a.monitor.Beat()
	a.monitor.Beat() // third consecutive miss against c
	if got := a.deathList(); len(got) != 1 || got[0] != "c" {
		t.Fatalf("a deaths = %v, want [c]", got)
	}
}

func TestMonitorLiveCrashDetectionWithThreshold(t *testing.T) {
	// Timer-driven variant: with SuspectAfter 3 and Interval 10ms a
	// crashed member is pruned promptly (bounded by a generous CI
	// deadline), and a healthy one never is.
	net, members := newLossyRing(t, []string{"a", "b"}, 3, 4)
	a := members[0]
	a.monitor.Start()
	defer a.monitor.Stop()
	time.Sleep(50 * time.Millisecond) // healthy beats keep suspicion clear
	if got := a.deathList(); len(got) != 0 {
		t.Fatalf("healthy ring saw deaths %v", got)
	}
	net.Crash("b")
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if len(a.deathList()) > 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := a.deathList(); len(got) != 1 || got[0] != "b" {
		t.Fatalf("live threshold detection failed: deaths = %v", got)
	}
}

func TestMonitorPublishesSuspicionLifecycle(t *testing.T) {
	// The suspicion state machine narrates itself on the telemetry bus:
	// each sub-threshold miss → MemberSuspected, a recovering heartbeat →
	// MemberHealed, the threshold crossing → MemberDeclared.
	net, members := newLossyRing(t, []string{"a", "b", "c"}, 3, 5)
	a := members[0]
	bus := telemetry.NewBus()
	var mu sync.Mutex
	var events []telemetry.Event
	defer bus.Subscribe(func(e telemetry.Event) {
		mu.Lock()
		events = append(events, e)
		mu.Unlock()
	})()
	a.monitor.Bus = bus

	net.SetLink("a", "b", transport.Faults{Cut: true})
	a.monitor.Beat()
	a.monitor.Beat()
	net.Heal()
	a.monitor.Beat() // heals the two-miss suspicion
	net.Crash("b")
	a.monitor.Beat()
	a.monitor.Beat()
	a.monitor.Beat() // crosses the threshold → declared

	mu.Lock()
	defer mu.Unlock()
	var suspected, healed, declared int
	for _, e := range events {
		switch ev := e.(type) {
		case telemetry.MemberSuspected:
			if ev.Member != "b" {
				t.Fatalf("suspected %q, want b", ev.Member)
			}
			suspected++
		case telemetry.MemberHealed:
			if ev.Member != "b" || ev.Misses != 2 {
				t.Fatalf("healed = %+v, want b after 2 misses", ev)
			}
			healed++
		case telemetry.MemberDeclared:
			if ev.Member != "b" || ev.By != "a" {
				t.Fatalf("declared = %+v, want b by a", ev)
			}
			declared++
		}
	}
	if suspected != 4 { // 2 before heal + 2 before declaration
		t.Fatalf("MemberSuspected count = %d, want 4", suspected)
	}
	if healed != 1 || declared != 1 {
		t.Fatalf("healed=%d declared=%d, want 1/1", healed, declared)
	}
}

func TestHandleDeathBadBody(t *testing.T) {
	net := transport.NewInProcNetwork()
	a := newTestMember(t, net, "a", []string{"a", "b"})
	if _, err := a.monitor.HandleDeath(transport.Message{Type: DeathType}); err == nil {
		t.Fatal("empty death notice accepted")
	}
}

// drainSet marks members under a planned drain for the tests below.
func drainSet(drained ...string) func(string) bool {
	set := make(map[string]bool, len(drained))
	for _, d := range drained {
		set[d] = true
	}
	return func(member string) bool { return set[member] }
}

func TestMonitorDrainedSuccessorAccruesNoSuspicion(t *testing.T) {
	net := transport.NewInProcNetwork()
	names := []string{"a", "b", "c"}
	var members []*testMember
	for _, n := range names {
		members = append(members, newTestMember(t, net, n, names))
	}
	// Drain b fleet-wide, then crash it: a drained member is deliberately
	// quiet, so a must watch past it to c, never suspect it, and never
	// declare it dead — the ring keeps all three members.
	for _, m := range members {
		m.monitor.Drained = drainSet("b")
	}
	net.Crash("b")
	for i := 0; i < 5; i++ {
		members[0].monitor.Beat()
	}
	if got := members[0].deathList(); len(got) != 0 {
		t.Fatalf("a declared deaths %v for a drained member", got)
	}
	if suspect, misses := members[0].monitor.Suspicion(); suspect != "" || misses != 0 {
		t.Fatalf("a suspects %q (%d misses); drained members must accrue no suspicion", suspect, misses)
	}
	for _, m := range []*testMember{members[0], members[2]} {
		if !m.monitor.Ring.Contains("b") {
			t.Fatalf("%s pruned drained member b", m.name)
		}
	}
}

func TestMonitorDeclareDeadIgnoresDrained(t *testing.T) {
	net := transport.NewInProcNetwork()
	names := []string{"a", "b"}
	a := newTestMember(t, net, "a", names)
	a.monitor.Drained = drainSet("b")
	a.monitor.DeclareDead("b")
	if !a.monitor.Ring.Contains("b") {
		t.Fatal("DeclareDead removed a drained member")
	}
	if len(a.deathList()) != 0 {
		t.Fatalf("OnFailure fired for a drained member: %v", a.deathList())
	}
}

func TestHandleDeathIgnoresDrained(t *testing.T) {
	net := transport.NewInProcNetwork()
	names := []string{"a", "b", "c"}
	a := newTestMember(t, net, "a", names)
	a.monitor.Drained = drainSet("b")
	notice, err := transport.NewMessage(DeathType, "c", deathNotice{Dead: "b"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.monitor.HandleDeath(notice); err != nil {
		t.Fatal(err)
	}
	if !a.monitor.Ring.Contains("b") {
		t.Fatal("death notice removed a drained member")
	}
	if len(a.deathList()) != 0 {
		t.Fatalf("OnFailure fired from a peer's notice for a drained member: %v", a.deathList())
	}
}

func TestMonitorAllPeersDrainedNothingToWatch(t *testing.T) {
	net := transport.NewInProcNetwork()
	names := []string{"a", "b"}
	a := newTestMember(t, net, "a", names)
	a.monitor.Drained = drainSet("b")
	net.Crash("b")
	for i := 0; i < 3; i++ {
		a.monitor.Beat() // must be a no-op: the only peer is drained
	}
	if len(a.deathList()) != 0 || a.monitor.Ring.Len() != 2 {
		t.Fatalf("deaths %v, ring %d; a lone active member has nothing to watch", a.deathList(), a.monitor.Ring.Len())
	}
}
