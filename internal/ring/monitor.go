package ring

import (
	"context"
	"sync"
	"time"

	"edr/internal/telemetry"
	"edr/internal/transport"
)

// Monitor runs the heartbeat protocol for one member: it periodically
// pings its current successor and, when SuspectAfter consecutive pings to
// the same successor fail, declares the successor dead, removes it
// locally, notifies every remaining member, and invokes the OnFailure
// callback so the owner can re-run scheduling (paper §III-C: "Once a
// replica malfunctions, the other replicas will know and then remove this
// dead replica from their active member lists and the ring structure.
// After that, EDR will perform the runtime scheduling again based on the
// new ring of replicas.").
//
// The suspicion threshold is the transient-fault hysteresis the paper's
// all-or-nothing failure story lacks: one dropped heartbeat on a lossy
// link marks the successor suspected, not dead, so the ring does not
// shrink — and trigger an expensive rescheduling — on every glitch. A
// single successful heartbeat clears the suspicion.
type Monitor struct {
	// Self is this member's name (its transport address).
	Self string
	// Ring is the shared membership view this monitor maintains.
	Ring *Ring
	// Node sends heartbeats and death notices.
	Node transport.Node
	// Interval between heartbeats; zero means 500ms.
	Interval time.Duration
	// Timeout for one heartbeat; zero means Interval/2.
	Timeout time.Duration
	// SuspectAfter is how many consecutive heartbeat failures to the same
	// successor it takes to declare it dead; zero means 3. A crashed
	// member is therefore pruned within SuspectAfter×Interval + Timeout.
	SuspectAfter int
	// OnFailure, when non-nil, runs after a dead member has been removed
	// and the survivors notified. It receives the dead member's name.
	OnFailure func(dead string)
	// Drained, when non-nil, reports whether a member is under a planned
	// drain (epoch-committed power-down). A drained member is deliberately
	// quiet — it serves old plans but joins no new rounds — so it must not
	// accrue suspicion, be declared dead, or shrink the ring via a peer's
	// death notice: Beat watches past it and DeclareDead/HandleDeath
	// ignore it.
	Drained func(member string) bool
	// Bus, when non-nil, receives MemberSuspected / MemberDeclared /
	// MemberHealed telemetry events as the suspicion state machine moves.
	Bus *telemetry.Bus

	mu      sync.Mutex
	stop    chan struct{}
	stopped sync.WaitGroup
	suspect string // current successor under suspicion ("" when healthy)
	misses  int    // consecutive heartbeat failures to suspect
}

// HeartbeatType and DeathType are the message types the protocol uses.
// Owners must route them to HandleHeartbeat / HandleDeath.
const (
	HeartbeatType = "ring.heartbeat"
	DeathType     = "ring.death"
)

// deathNotice is the body of a DeathType message.
type deathNotice struct {
	Dead string `json:"dead"`
}

// Start launches the heartbeat loop. Call Stop to end it.
func (m *Monitor) Start() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.stop != nil {
		return
	}
	m.stop = make(chan struct{})
	m.stopped.Add(1)
	go m.loop(m.stop)
}

// Stop ends the heartbeat loop and waits for it to exit.
func (m *Monitor) Stop() {
	m.mu.Lock()
	stop := m.stop
	m.stop = nil
	m.mu.Unlock()
	if stop != nil {
		close(stop)
		m.stopped.Wait()
	}
}

func (m *Monitor) interval() time.Duration {
	if m.Interval > 0 {
		return m.Interval
	}
	return 500 * time.Millisecond
}

func (m *Monitor) timeout() time.Duration {
	if m.Timeout > 0 {
		return m.Timeout
	}
	return m.interval() / 2
}

func (m *Monitor) suspectAfter() int {
	if m.SuspectAfter > 0 {
		return m.SuspectAfter
	}
	return 3
}

// Suspicion reports the successor currently under suspicion and how many
// consecutive heartbeats it has missed ("" , 0 when healthy).
func (m *Monitor) Suspicion() (string, int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.suspect, m.misses
}

// noteMiss records one heartbeat failure to succ and reports whether the
// suspicion threshold has been crossed. Switching successors (because the
// ring changed) resets the count: misses must be consecutive and against
// the same member.
func (m *Monitor) noteMiss(succ string) bool {
	m.mu.Lock()
	if m.suspect != succ {
		m.suspect, m.misses = succ, 0
	}
	m.misses++
	misses := m.misses
	crossed := misses >= m.suspectAfter()
	if crossed {
		m.suspect, m.misses = "", 0
	}
	m.mu.Unlock()
	if !crossed {
		m.Bus.Publish(telemetry.MemberSuspected{Member: succ, Misses: misses})
	}
	return crossed
}

// clearSuspicion resets the miss counter after a healthy heartbeat.
func (m *Monitor) clearSuspicion() {
	m.mu.Lock()
	suspect, misses := m.suspect, m.misses
	m.suspect, m.misses = "", 0
	m.mu.Unlock()
	if suspect != "" && misses > 0 {
		m.Bus.Publish(telemetry.MemberHealed{Member: suspect, Misses: misses})
	}
}

func (m *Monitor) loop(stop chan struct{}) {
	defer m.stopped.Done()
	ticker := time.NewTicker(m.interval())
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
			m.Beat()
		}
	}
}

// Beat performs one heartbeat exchange with the current successor. A
// failed exchange raises suspicion; SuspectAfter consecutive failures to
// the same successor trigger failure handling. Exported so tests and
// virtual-time harnesses can drive the protocol without real timers.
func (m *Monitor) Beat() {
	succ, ok := m.watchTarget()
	if !ok {
		m.clearSuspicion()
		return // alone in the ring (or only drained peers): nothing to watch
	}
	ctx, cancel := context.WithTimeout(context.Background(), m.timeout())
	defer cancel()
	req, err := transport.NewMessage(HeartbeatType, m.Self, nil)
	if err != nil {
		return
	}
	if _, err := m.Node.Send(ctx, succ, req); err != nil {
		if m.noteMiss(succ) {
			m.DeclareDead(succ)
		}
		return
	}
	m.clearSuspicion()
}

// watchTarget returns the member this monitor should heartbeat: its ring
// successor, skipping past drained members (which are intentionally
// passive, not suspects). Walking the whole ring back to Self means every
// other member is drained — nothing to watch.
func (m *Monitor) watchTarget() (string, bool) {
	succ, ok := m.Ring.Successor(m.Self)
	if !ok {
		return "", false
	}
	if m.Drained == nil {
		return succ, true
	}
	for m.Drained(succ) {
		next, ok := m.Ring.Successor(succ)
		if !ok || next == succ || next == m.Self {
			return "", false
		}
		succ = next
	}
	return succ, true
}

// DeclareDead removes the member, notifies survivors, and fires OnFailure.
// It is exported so the round initiator can prune a member it found dead
// during coordination, not only via missed heartbeats.
func (m *Monitor) DeclareDead(dead string) {
	if m.Drained != nil && m.Drained(dead) {
		return // planned drain, not a failure: keep it in the ring
	}
	if !m.Ring.Remove(dead) {
		return // someone else already handled it
	}
	m.Bus.Publish(telemetry.MemberDeclared{Member: dead, By: m.Self})
	notice, err := transport.NewMessage(DeathType, m.Self, deathNotice{Dead: dead})
	if err == nil {
		for _, member := range m.Ring.Members() {
			if member == m.Self {
				continue
			}
			ctx, cancel := context.WithTimeout(context.Background(), m.timeout())
			// Best effort: a peer that also died will be caught by its own
			// predecessor's heartbeat.
			_, _ = m.Node.Send(ctx, member, notice)
			cancel()
		}
	}
	if m.OnFailure != nil {
		m.OnFailure(dead)
	}
}

// HandleHeartbeat answers a heartbeat ping.
func (m *Monitor) HandleHeartbeat(req transport.Message) (transport.Message, error) {
	return transport.NewMessage(HeartbeatType+".ack", m.Self, nil)
}

// HandleDeath applies a death notice from a peer.
func (m *Monitor) HandleDeath(req transport.Message) (transport.Message, error) {
	var notice deathNotice
	if err := req.DecodeBody(&notice); err != nil {
		return transport.Message{}, err
	}
	if m.Drained != nil && m.Drained(notice.Dead) {
		// A peer raced its declaration against the drain epoch: the member
		// is deliberately quiet, not dead. Keep it.
		return transport.NewMessage(DeathType+".ack", m.Self, nil)
	}
	if m.Ring.Remove(notice.Dead) {
		m.Bus.Publish(telemetry.MemberDeclared{Member: notice.Dead, By: req.From})
		if m.OnFailure != nil {
			m.OnFailure(notice.Dead)
		}
	}
	return transport.NewMessage(DeathType+".ack", m.Self, nil)
}
