package ring

import (
	"sync"
	"testing"
	"testing/quick"

	"edr/internal/telemetry"
)

func TestNewSortsAndDedups(t *testing.T) {
	r := New([]string{"c", "a", "b", "a", ""})
	members := r.Members()
	want := []string{"a", "b", "c"}
	if len(members) != 3 {
		t.Fatalf("members = %v", members)
	}
	for i := range want {
		if members[i] != want[i] {
			t.Fatalf("members = %v, want %v", members, want)
		}
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSuccessorWrapsAround(t *testing.T) {
	r := New([]string{"a", "b", "c"})
	cases := map[string]string{"a": "b", "b": "c", "c": "a"}
	for of, want := range cases {
		got, ok := r.Successor(of)
		if !ok || got != want {
			t.Fatalf("Successor(%q) = %q, %v; want %q", of, got, ok, want)
		}
	}
}

func TestSuccessorEdgeCases(t *testing.T) {
	r := New([]string{"a"})
	if _, ok := r.Successor("a"); ok {
		t.Fatal("singleton ring has a successor")
	}
	if _, ok := r.Successor("ghost"); ok {
		t.Fatal("non-member has a successor")
	}
}

func TestRemoveClosesRing(t *testing.T) {
	r := New([]string{"a", "b", "c"})
	if !r.Remove("b") {
		t.Fatal("Remove(b) = false")
	}
	if got, _ := r.Successor("a"); got != "c" {
		t.Fatalf("after removal Successor(a) = %q, want c", got)
	}
	if r.Remove("b") {
		t.Fatal("double remove reported true")
	}
	if r.Len() != 2 {
		t.Fatalf("Len = %d", r.Len())
	}
}

func TestAdd(t *testing.T) {
	r := New([]string{"a", "c"})
	if !r.Add("b") {
		t.Fatal("Add(b) = false")
	}
	if r.Add("b") {
		t.Fatal("duplicate Add reported true")
	}
	if r.Add("") {
		t.Fatal("empty name added")
	}
	if got, _ := r.Successor("a"); got != "b" {
		t.Fatalf("Successor(a) = %q after Add(b)", got)
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestContains(t *testing.T) {
	r := New([]string{"x", "y"})
	if !r.Contains("x") || r.Contains("z") {
		t.Fatal("Contains wrong")
	}
}

func TestSnapshot(t *testing.T) {
	if got := New(nil).Snapshot(); got != "(empty ring)" {
		t.Fatalf("empty snapshot = %q", got)
	}
	if got := New([]string{"b", "a"}).Snapshot(); got != "a → b → a" {
		t.Fatalf("snapshot = %q", got)
	}
}

// Property: under any sequence of removals, the ring stays sorted, unique,
// and every remaining member's successor chain visits all members exactly
// once before returning.
func TestRingInvariantsUnderFailuresProperty(t *testing.T) {
	f := func(seed uint8, kills []uint8) bool {
		names := []string{"n1", "n2", "n3", "n4", "n5", "n6", "n7", "n8"}
		r := New(names)
		for _, k := range kills {
			r.Remove(names[int(k)%len(names)])
			if err := r.Validate(); err != nil {
				return false
			}
			members := r.Members()
			if len(members) < 2 {
				continue
			}
			// Walk the ring from the first member: must cycle through all.
			visited := map[string]bool{}
			cur := members[0]
			for i := 0; i < len(members); i++ {
				if visited[cur] {
					return false
				}
				visited[cur] = true
				next, ok := r.Successor(cur)
				if !ok {
					return false
				}
				cur = next
			}
			if cur != members[0] || len(visited) != len(members) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMembersReturnsCopy(t *testing.T) {
	r := New([]string{"a", "b"})
	m := r.Members()
	m[0] = "mutated"
	if r.Members()[0] != "a" {
		t.Fatal("Members exposes internal slice")
	}
}

func TestRingPublishesJoinAndRemoveEvents(t *testing.T) {
	bus := telemetry.NewBus()
	var mu sync.Mutex
	var events []telemetry.Event
	bus.Subscribe(func(e telemetry.Event) {
		mu.Lock()
		events = append(events, e)
		mu.Unlock()
	})
	r := New([]string{"a", "b"})
	r.Bus = bus
	r.Add("c")
	r.Add("c") // already present: no event
	r.Remove("a")
	r.Remove("a") // already gone: no event
	mu.Lock()
	defer mu.Unlock()
	if len(events) != 2 {
		t.Fatalf("got %d events %v, want 2", len(events), events)
	}
	if j, ok := events[0].(telemetry.MemberJoined); !ok || j.Member != "c" {
		t.Fatalf("events[0] = %#v, want MemberJoined{c}", events[0])
	}
	if rm, ok := events[1].(telemetry.MemberRemoved); !ok || rm.Member != "a" {
		t.Fatalf("events[1] = %#v, want MemberRemoved{a}", events[1])
	}
}
