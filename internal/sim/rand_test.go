package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRandDeterministic(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed streams diverged at step %d", i)
		}
	}
}

func TestRandDifferentSeedsDiverge(t *testing.T) {
	a, b := NewRand(1), NewRand(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds collided %d/100 times", same)
	}
}

func TestRandSplitIndependent(t *testing.T) {
	a := NewRand(7)
	b := a.Split()
	// The split stream must not be a shifted copy of the parent.
	av, bv := a.Uint64(), b.Uint64()
	if av == bv {
		t.Fatal("split stream mirrors parent")
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRand(3)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d out of range", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Intn(10) over 1000 draws hit only %d values", len(seen))
	}
}

func TestIntnNonPositivePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRand(1).Intn(0)
}

func TestIntBetweenInclusive(t *testing.T) {
	r := NewRand(11)
	sawLo, sawHi := false, false
	for i := 0; i < 2000; i++ {
		v := r.IntBetween(1, 20)
		if v < 1 || v > 20 {
			t.Fatalf("IntBetween(1,20) = %d", v)
		}
		if v == 1 {
			sawLo = true
		}
		if v == 20 {
			sawHi = true
		}
	}
	if !sawLo || !sawHi {
		t.Fatalf("endpoints not reachable: lo=%v hi=%v", sawLo, sawHi)
	}
}

func TestFloat64InUnitInterval(t *testing.T) {
	r := NewRand(5)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %g out of [0,1)", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRand(9)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %g, want ~0.5", mean)
	}
}

func TestExpMean(t *testing.T) {
	r := NewRand(13)
	const rate, n = 2.0, 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.Exp(rate)
		if v < 0 {
			t.Fatalf("Exp returned negative %g", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-1/rate) > 0.01 {
		t.Fatalf("Exp(%g) mean = %g, want ~%g", rate, mean, 1/rate)
	}
}

func TestNormMoments(t *testing.T) {
	r := NewRand(17)
	const mean, sd, n = 10.0, 3.0, 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Norm(mean, sd)
		sum += v
		sumSq += v * v
	}
	m := sum / n
	variance := sumSq/n - m*m
	if math.Abs(m-mean) > 0.05 {
		t.Fatalf("Norm mean = %g, want ~%g", m, mean)
	}
	if math.Abs(math.Sqrt(variance)-sd) > 0.05 {
		t.Fatalf("Norm stddev = %g, want ~%g", math.Sqrt(variance), sd)
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRand(seed)
		n := 1 + r.Intn(50)
		p := r.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZipfRankZeroMostPopular(t *testing.T) {
	r := NewRand(23)
	z := NewZipf(r, 100, 1.0)
	counts := make([]int, 100)
	for i := 0; i < 100000; i++ {
		counts[z.Draw()]++
	}
	if counts[0] <= counts[50] {
		t.Fatalf("rank 0 drawn %d times, rank 50 %d times; Zipf not skewed", counts[0], counts[50])
	}
	// Rough shape check: P(0)/P(1) ~ 2 for s=1.
	ratio := float64(counts[0]) / float64(counts[1])
	if ratio < 1.6 || ratio > 2.5 {
		t.Fatalf("P(0)/P(1) = %g, want ~2", ratio)
	}
}

func TestZipfDrawInRange(t *testing.T) {
	r := NewRand(29)
	z := NewZipf(r, 7, 1.2)
	for i := 0; i < 10000; i++ {
		if v := z.Draw(); v < 0 || v >= 7 {
			t.Fatalf("Zipf.Draw = %d out of [0,7)", v)
		}
	}
}

func TestZipfBadArgsPanic(t *testing.T) {
	for _, tc := range []struct {
		n int
		s float64
	}{{0, 1}, {5, 0}, {-1, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewZipf(%d, %g) did not panic", tc.n, tc.s)
				}
			}()
			NewZipf(NewRand(1), tc.n, tc.s)
		}()
	}
}
