package sim

import (
	"testing"
	"time"
)

func TestVirtualClockStartsAtEpoch(t *testing.T) {
	c := NewVirtualClock()
	if !c.Now().Equal(Epoch) {
		t.Fatalf("Now() = %v, want %v", c.Now(), Epoch)
	}
}

func TestVirtualClockAdvance(t *testing.T) {
	c := NewVirtualClock()
	c.Advance(3 * time.Second)
	if got := c.Since(Epoch); got != 3*time.Second {
		t.Fatalf("Since(Epoch) = %v, want 3s", got)
	}
	c.Advance(500 * time.Millisecond)
	if got := c.Since(Epoch); got != 3500*time.Millisecond {
		t.Fatalf("Since(Epoch) = %v, want 3.5s", got)
	}
}

func TestVirtualClockAdvanceZero(t *testing.T) {
	c := NewVirtualClock()
	c.Advance(0)
	if !c.Now().Equal(Epoch) {
		t.Fatalf("Advance(0) moved the clock to %v", c.Now())
	}
}

func TestVirtualClockAdvanceNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Advance(-1) did not panic")
		}
	}()
	NewVirtualClock().Advance(-time.Nanosecond)
}

func TestVirtualClockAdvanceToBackwardIsNoop(t *testing.T) {
	c := NewVirtualClock()
	c.Advance(10 * time.Second)
	c.AdvanceTo(Epoch.Add(5 * time.Second))
	if got := c.Since(Epoch); got != 10*time.Second {
		t.Fatalf("AdvanceTo backwards moved clock: Since = %v", got)
	}
}

func TestVirtualClockAt(t *testing.T) {
	start := Epoch.Add(time.Hour)
	c := NewVirtualClockAt(start)
	if !c.Now().Equal(start) {
		t.Fatalf("Now() = %v, want %v", c.Now(), start)
	}
}

func TestVirtualClockConcurrentAdvance(t *testing.T) {
	c := NewVirtualClock()
	done := make(chan struct{})
	const workers, steps = 8, 1000
	for i := 0; i < workers; i++ {
		go func() {
			for j := 0; j < steps; j++ {
				c.Advance(time.Microsecond)
			}
			done <- struct{}{}
		}()
	}
	for i := 0; i < workers; i++ {
		<-done
	}
	if got, want := c.Since(Epoch), workers*steps*time.Microsecond; got != want {
		t.Fatalf("concurrent Advance lost updates: Since = %v, want %v", got, want)
	}
}

func TestWallClockMovesForward(t *testing.T) {
	var c WallClock
	a := c.Now()
	b := c.Now()
	if b.Before(a) {
		t.Fatalf("wall clock moved backwards: %v then %v", a, b)
	}
}
