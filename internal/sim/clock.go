// Package sim provides a deterministic virtual-time substrate for the EDR
// simulator: a manually advanced clock and a discrete-event queue.
//
// All experiment harnesses run on virtual time so that power integration,
// workload arrival, and transfer completion are reproducible bit-for-bit
// across runs and machines. Real-time components (the TCP transport) use
// the wall clock instead; both satisfy the Clock interface.
package sim

import (
	"fmt"
	"sync"
	"time"
)

// Clock abstracts a time source. The virtual clock used by the simulator
// and the wall clock used by the live TCP runtime both implement it.
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time
}

// WallClock is a Clock backed by the operating system's real time.
type WallClock struct{}

// Now returns the current wall-clock time.
func (WallClock) Now() time.Time { return time.Now() }

// VirtualClock is a manually advanced Clock. The zero value is not usable;
// construct one with NewVirtualClock. It is safe for concurrent use.
type VirtualClock struct {
	mu  sync.Mutex
	now time.Time
}

// Epoch is the instant virtual clocks start at by default. Using a fixed
// epoch keeps traces comparable across runs.
var Epoch = time.Date(2013, time.September, 23, 0, 0, 0, 0, time.UTC)

// NewVirtualClock returns a virtual clock positioned at Epoch.
func NewVirtualClock() *VirtualClock {
	return &VirtualClock{now: Epoch}
}

// NewVirtualClockAt returns a virtual clock positioned at t.
func NewVirtualClockAt(t time.Time) *VirtualClock {
	return &VirtualClock{now: t}
}

// Now returns the clock's current virtual time.
func (c *VirtualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by d. It panics if d is negative:
// virtual time, like real time, never runs backwards.
func (c *VirtualClock) Advance(d time.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("sim: Advance by negative duration %v", d))
	}
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// AdvanceTo moves the clock forward to t. Moving to a time at or before
// the current instant is a no-op, so callers may freely pass event
// deadlines without ordering concerns.
func (c *VirtualClock) AdvanceTo(t time.Time) {
	c.mu.Lock()
	if t.After(c.now) {
		c.now = t
	}
	c.mu.Unlock()
}

// Since returns the virtual duration elapsed since t.
func (c *VirtualClock) Since(t time.Time) time.Duration {
	return c.Now().Sub(t)
}
