package sim

// A small deterministic PRNG (splitmix64 seeded xorshift) used across the
// simulator instead of math/rand so that every experiment is reproducible
// from a single uint64 seed regardless of Go version (math/rand's stream
// is not guaranteed stable across releases for all helpers).

import "math"

// Rand is a deterministic pseudo-random source. The zero value is invalid;
// use NewRand. Not safe for concurrent use — give each goroutine its own
// stream via Split.
type Rand struct {
	state uint64
}

// NewRand returns a generator seeded by seed. Two generators with the same
// seed produce identical streams.
func NewRand(seed uint64) *Rand {
	r := &Rand{state: seed}
	// Warm up through splitmix so nearby seeds diverge immediately.
	r.next()
	return r
}

// Split derives an independent generator from the current stream, suitable
// for handing to a parallel component without sharing state.
func (r *Rand) Split() *Rand {
	return NewRand(r.next() ^ 0x9e3779b97f4a7c15)
}

// next advances the splitmix64 state and returns the next 64 random bits.
func (r *Rand) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 { return r.next() }

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.next() % uint64(n))
}

// IntBetween returns a uniform integer in [lo, hi] inclusive.
// It panics if hi < lo.
func (r *Rand) IntBetween(lo, hi int) int {
	if hi < lo {
		panic("sim: IntBetween with hi < lo")
	}
	return lo + r.Intn(hi-lo+1)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.next()>>11) / float64(1<<53)
}

// Range returns a uniform float64 in [lo, hi).
func (r *Rand) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Exp returns an exponentially distributed float64 with the given rate
// (mean 1/rate). It panics if rate <= 0. Used for Poisson inter-arrivals.
func (r *Rand) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("sim: Exp with non-positive rate")
	}
	u := r.Float64()
	// u is in [0,1); 1-u is in (0,1], so the log is finite.
	return -math.Log(1-u) / rate
}

// Norm returns a normally distributed float64 with the given mean and
// standard deviation, via the Box-Muller transform.
func (r *Rand) Norm(mean, stddev float64) float64 {
	u1 := r.Float64()
	u2 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// Perm returns a random permutation of [0, n) (Fisher-Yates).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Zipf returns a sampler over [0, n) with Zipfian exponent s (s > 0).
// Rank 0 is the most popular item. The sampler precomputes the CDF, so
// construction is O(n) and each Draw is O(log n).
type Zipf struct {
	cdf []float64
	r   *Rand
}

// NewZipf builds a Zipf sampler. It panics if n <= 0 or s <= 0.
func NewZipf(r *Rand, n int, s float64) *Zipf {
	if n <= 0 || s <= 0 {
		panic("sim: NewZipf requires n > 0 and s > 0")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf, r: r}
}

// Draw samples a rank in [0, n).
func (z *Zipf) Draw() int {
	u := z.r.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
