package sim

import (
	"container/heap"
	"time"
)

// Event is a unit of work scheduled at a virtual instant. The callback runs
// with the event loop's clock already advanced to At.
type Event struct {
	At   time.Time
	Name string
	Fn   func()

	seq   uint64 // tie-break so equal-time events run in schedule order
	index int    // heap bookkeeping
}

// eventQueue is a min-heap of events ordered by (At, seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if !q[i].At.Equal(q[j].At) {
		return q[i].At.Before(q[j].At)
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Loop is a single-threaded discrete-event loop over a VirtualClock.
// Events scheduled during execution of another event are run in time order.
// Loop is not safe for concurrent use; it models one sequential timeline.
type Loop struct {
	Clock *VirtualClock
	queue eventQueue
	seq   uint64
	ran   int
}

// NewLoop returns an event loop on a fresh virtual clock at Epoch.
func NewLoop() *Loop {
	return &Loop{Clock: NewVirtualClock()}
}

// At schedules fn to run when the clock reaches t. Scheduling in the past
// (before the clock's current instant) is allowed and runs at the current
// instant, preserving submission order among same-time events.
func (l *Loop) At(t time.Time, name string, fn func()) *Event {
	if now := l.Clock.Now(); t.Before(now) {
		t = now
	}
	e := &Event{At: t, Name: name, Fn: fn, seq: l.seq}
	l.seq++
	heap.Push(&l.queue, e)
	return e
}

// After schedules fn to run d after the clock's current instant.
func (l *Loop) After(d time.Duration, name string, fn func()) *Event {
	return l.At(l.Clock.Now().Add(d), name, fn)
}

// Every schedules fn to run repeatedly with period d, starting one period
// from now, until fn returns false or the loop drains by other means.
func (l *Loop) Every(d time.Duration, name string, fn func() bool) {
	if d <= 0 {
		panic("sim: Every requires a positive period")
	}
	var tick func()
	tick = func() {
		if fn() {
			l.After(d, name, tick)
		}
	}
	l.After(d, name, tick)
}

// Pending reports the number of events still queued.
func (l *Loop) Pending() int { return len(l.queue) }

// Ran reports the number of events executed so far.
func (l *Loop) Ran() int { return l.ran }

// Step runs the single earliest pending event, advancing the clock to its
// deadline first. It reports whether an event was run.
func (l *Loop) Step() bool {
	if len(l.queue) == 0 {
		return false
	}
	e := heap.Pop(&l.queue).(*Event)
	l.Clock.AdvanceTo(e.At)
	l.ran++
	e.Fn()
	return true
}

// Run executes events until the queue drains, returning the number run.
// maxEvents bounds runaway self-scheduling loops; maxEvents <= 0 means
// no bound.
func (l *Loop) Run(maxEvents int) int {
	n := 0
	for l.Step() {
		n++
		if maxEvents > 0 && n >= maxEvents {
			break
		}
	}
	return n
}

// RunUntil executes events with deadlines at or before t, then advances the
// clock to t. Events scheduled beyond t remain queued.
func (l *Loop) RunUntil(t time.Time) int {
	n := 0
	for len(l.queue) > 0 && !l.queue[0].At.After(t) {
		l.Step()
		n++
	}
	l.Clock.AdvanceTo(t)
	return n
}
