package sim

import (
	"testing"
	"time"
)

func TestLoopRunsEventsInTimeOrder(t *testing.T) {
	l := NewLoop()
	var order []string
	l.After(3*time.Second, "c", func() { order = append(order, "c") })
	l.After(1*time.Second, "a", func() { order = append(order, "a") })
	l.After(2*time.Second, "b", func() { order = append(order, "b") })
	l.Run(0)
	if got := len(order); got != 3 {
		t.Fatalf("ran %d events, want 3", got)
	}
	for i, want := range []string{"a", "b", "c"} {
		if order[i] != want {
			t.Fatalf("order = %v, want [a b c]", order)
		}
	}
}

func TestLoopEqualTimesRunInScheduleOrder(t *testing.T) {
	l := NewLoop()
	var order []int
	at := Epoch.Add(time.Second)
	for i := 0; i < 10; i++ {
		i := i
		l.At(at, "e", func() { order = append(order, i) })
	}
	l.Run(0)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events ran out of schedule order: %v", order)
		}
	}
}

func TestLoopClockAdvancesToEventDeadline(t *testing.T) {
	l := NewLoop()
	var at time.Time
	l.After(5*time.Second, "e", func() { at = l.Clock.Now() })
	l.Run(0)
	if want := Epoch.Add(5 * time.Second); !at.Equal(want) {
		t.Fatalf("callback saw clock %v, want %v", at, want)
	}
}

func TestLoopEventSchedulingDuringRun(t *testing.T) {
	l := NewLoop()
	var hits []time.Duration
	l.After(time.Second, "outer", func() {
		hits = append(hits, l.Clock.Since(Epoch))
		l.After(time.Second, "inner", func() {
			hits = append(hits, l.Clock.Since(Epoch))
		})
	})
	l.Run(0)
	if len(hits) != 2 || hits[0] != time.Second || hits[1] != 2*time.Second {
		t.Fatalf("hits = %v, want [1s 2s]", hits)
	}
}

func TestLoopSchedulingInPastRunsNow(t *testing.T) {
	l := NewLoop()
	l.Clock.Advance(10 * time.Second)
	var at time.Time
	l.At(Epoch, "past", func() { at = l.Clock.Now() })
	l.Run(0)
	if want := Epoch.Add(10 * time.Second); !at.Equal(want) {
		t.Fatalf("past event ran at %v, want %v (current instant)", at, want)
	}
}

func TestLoopRunUntilLeavesLaterEventsQueued(t *testing.T) {
	l := NewLoop()
	ran := 0
	l.After(1*time.Second, "a", func() { ran++ })
	l.After(5*time.Second, "b", func() { ran++ })
	n := l.RunUntil(Epoch.Add(2 * time.Second))
	if n != 1 || ran != 1 {
		t.Fatalf("RunUntil ran %d events (counter %d), want 1", n, ran)
	}
	if l.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", l.Pending())
	}
	if got := l.Clock.Since(Epoch); got != 2*time.Second {
		t.Fatalf("clock = %v after RunUntil, want 2s", got)
	}
}

func TestLoopEvery(t *testing.T) {
	l := NewLoop()
	count := 0
	l.Every(time.Second, "tick", func() bool {
		count++
		return count < 5
	})
	l.Run(0)
	if count != 5 {
		t.Fatalf("Every ticked %d times, want 5", count)
	}
	if got := l.Clock.Since(Epoch); got != 5*time.Second {
		t.Fatalf("clock = %v, want 5s", got)
	}
}

func TestLoopEveryNonPositivePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Every(0) did not panic")
		}
	}()
	NewLoop().Every(0, "bad", func() bool { return false })
}

func TestLoopRunMaxEventsBounds(t *testing.T) {
	l := NewLoop()
	var tick func()
	tick = func() { l.After(time.Millisecond, "t", tick) } // self-perpetuating
	l.After(time.Millisecond, "t", tick)
	n := l.Run(100)
	if n != 100 {
		t.Fatalf("Run(100) executed %d events", n)
	}
}

func TestLoopStepOnEmptyQueue(t *testing.T) {
	l := NewLoop()
	if l.Step() {
		t.Fatal("Step on empty queue reported an event")
	}
	if l.Ran() != 0 {
		t.Fatalf("Ran = %d, want 0", l.Ran())
	}
}
