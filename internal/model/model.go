// Package model implements the EDR data-center energy cost model
// (paper §III-A, equations 1, 2, 7, 8).
//
// The total energy consumption of all replicas, for a load-split matrix
// P = [p_{c,n}], is
//
//	E_g = Σ_n u_n · ( α_n · Σ_c p_{c,n} + β_n · (Σ_c p_{c,n})^{γ_n} )
//
// where for replica n: u_n is the regional electricity price, α_n weights
// the (load-linear) server energy, β_n weights the (degree-γ_n polynomial)
// network-device energy, and γ_n depends on the underlying switch
// architecture ("Linear" fabrics such as Batcher/Crossbar have γ≈1; common
// data-intensive cloud traffic corresponds to the "Cubic" profile γ=3).
//
// All load quantities are in megabytes (MB) of requested traffic, matching
// the paper's request sizes (100 MB video streaming, 10 MB distributed file
// service). Energy is reported in abstract joule-scaled units and cost in
// cents; only ratios across schedulers matter for the reproduction.
package model

import (
	"errors"
	"fmt"
	"math"
)

// Default parameter values measured on SystemG in the paper (§IV-A.2).
const (
	// DefaultAlpha is the server-energy weight α_n = 1.
	DefaultAlpha = 1.0
	// DefaultBeta is the network-device-energy weight β_n = 0.01.
	DefaultBeta = 0.01
	// DefaultGamma is γ_n = 3, the "Cubic" network profile assumed for
	// data-intensive applications (Eq. 7).
	DefaultGamma = 3.0
)

// Replica holds the per-replica energy-model parameters from Table I.
type Replica struct {
	// Name identifies the replica in traces and figures (e.g. "replica1").
	Name string
	// Price is u_n, the unit electricity price in ¢/kWh. The paper draws
	// it uniformly from the integers 1..20.
	Price float64
	// Alpha is α_n, the server-energy weight.
	Alpha float64
	// Beta is β_n, the network-device-energy weight.
	Beta float64
	// Gamma is γ_n ≥ 1, the polynomial degree relating traffic to
	// network-device energy.
	Gamma float64
	// Bandwidth is B_n, the bandwidth capacity in MB/s.
	Bandwidth float64
	// Base is a frozen load offset (MB) already committed to this replica
	// by assignment rows outside the current subproblem. Energy and
	// MarginalCost evaluate the model at Base+load so that a restricted
	// (dirty-set) solve over the remaining rows optimizes the true global
	// objective: E_n(Base+load) differs from the restricted objective only
	// by the constant E_n(Base), so minimizers coincide, and the marginal
	// seen by every solver is the true marginal at the total column load.
	// Zero (the default) recovers the plain Table I model.
	Base float64
}

// NewReplica returns a replica with the paper's default α, β, γ, a 100 MB/s
// bandwidth cap, and the given name and price.
func NewReplica(name string, price float64) Replica {
	return Replica{
		Name:      name,
		Price:     price,
		Alpha:     DefaultAlpha,
		Beta:      DefaultBeta,
		Gamma:     DefaultGamma,
		Bandwidth: 100,
	}
}

// Validate reports whether the parameters are physically meaningful.
func (r Replica) Validate() error {
	switch {
	case r.Price < 0:
		return fmt.Errorf("model: replica %q: negative price %g", r.Name, r.Price)
	case r.Alpha < 0:
		return fmt.Errorf("model: replica %q: negative alpha %g", r.Name, r.Alpha)
	case r.Beta < 0:
		return fmt.Errorf("model: replica %q: negative beta %g", r.Name, r.Beta)
	case r.Gamma < 1:
		return fmt.Errorf("model: replica %q: gamma %g < 1 (must be convex)", r.Name, r.Gamma)
	case r.Bandwidth <= 0:
		return fmt.Errorf("model: replica %q: non-positive bandwidth %g", r.Name, r.Bandwidth)
	case r.Base < 0 || math.IsNaN(r.Base):
		return fmt.Errorf("model: replica %q: invalid base load %g", r.Name, r.Base)
	}
	return nil
}

// Energy returns E_n in energy units for total assigned load (MB):
//
//	E_n(load) = α_n·load + β_n·load^{γ_n}
//
// This is the paper's Eq. 7 restricted to a single node (without the price
// factor). Negative load is invalid and reported as NaN so that optimizer
// bugs surface loudly in tests rather than silently producing credit.
//
// With a non-zero Base the evaluation point shifts to Base+load and the
// frozen portion's energy is subtracted back out:
//
//	E_n(load) = α_n·load + β_n·((Base+load)^{γ_n} − Base^{γ_n})
//
// so Energy(0) stays 0 while the curvature each solver sees is that of the
// true total column load.
func (r Replica) Energy(load float64) float64 {
	if load < 0 {
		return math.NaN()
	}
	if r.Base > 0 {
		return r.Alpha*load + r.Beta*(math.Pow(r.Base+load, r.Gamma)-math.Pow(r.Base, r.Gamma))
	}
	return r.Alpha*load + r.Beta*math.Pow(load, r.Gamma)
}

// Cost returns u_n · E_n(load), the dollar-cost (in cents) of serving the
// given total load on this replica — one summand of Eq. 1.
func (r Replica) Cost(load float64) float64 {
	return r.Price * r.Energy(load)
}

// MarginalCost returns d(Cost)/d(load) = u_n·(α_n + β_n·γ_n·load^{γ_n−1}),
// the derivative used by every gradient-based solver in this module. With a
// non-zero Base the derivative is taken at the total column load Base+load.
func (r Replica) MarginalCost(load float64) float64 {
	if load < 0 {
		return math.NaN()
	}
	return r.Price * (r.Alpha + r.Beta*r.Gamma*math.Pow(r.Base+load, r.Gamma-1))
}

// System is the set of replicas making up the modeled cloud.
type System struct {
	Replicas []Replica
}

// NewSystem builds a System and validates every replica.
func NewSystem(replicas []Replica) (*System, error) {
	if len(replicas) == 0 {
		return nil, errors.New("model: system needs at least one replica")
	}
	for _, r := range replicas {
		if err := r.Validate(); err != nil {
			return nil, err
		}
	}
	return &System{Replicas: replicas}, nil
}

// N returns the number of replicas |N|.
func (s *System) N() int { return len(s.Replicas) }

// loads collapses an assignment matrix to per-replica column sums
// Σ_c p_{c,n}.
func (s *System) loads(p [][]float64) ([]float64, error) {
	n := s.N()
	loads := make([]float64, n)
	for c, row := range p {
		if len(row) != n {
			return nil, fmt.Errorf("model: row %d has %d columns, want %d", c, len(row), n)
		}
		for j, v := range row {
			loads[j] += v
		}
	}
	return loads, nil
}

// TotalEnergy evaluates Σ_n E_n — total joule-scaled consumption (Eq. 1
// without prices) for the assignment matrix p (rows: clients, cols:
// replicas).
func (s *System) TotalEnergy(p [][]float64) (float64, error) {
	loads, err := s.loads(p)
	if err != nil {
		return 0, err
	}
	total := 0.0
	for i, r := range s.Replicas {
		total += r.Energy(loads[i])
	}
	return total, nil
}

// TotalCost evaluates E_g = Σ_n u_n·E_n — the paper's global objective
// (Eq. 1) — for the assignment matrix p.
func (s *System) TotalCost(p [][]float64) (float64, error) {
	loads, err := s.loads(p)
	if err != nil {
		return 0, err
	}
	total := 0.0
	for i, r := range s.Replicas {
		total += r.Cost(loads[i])
	}
	return total, nil
}

// CostOfLoads evaluates Eq. 1 given per-replica column sums directly.
// It panics if len(loads) != |N|; this is an internal-consistency bug.
func (s *System) CostOfLoads(loads []float64) float64 {
	if len(loads) != s.N() {
		panic(fmt.Sprintf("model: CostOfLoads got %d loads for %d replicas", len(loads), s.N()))
	}
	total := 0.0
	for i, r := range s.Replicas {
		total += r.Cost(loads[i])
	}
	return total
}

// EnergyOfLoads evaluates Σ_n E_n given per-replica column sums directly.
func (s *System) EnergyOfLoads(loads []float64) float64 {
	if len(loads) != s.N() {
		panic(fmt.Sprintf("model: EnergyOfLoads got %d loads for %d replicas", len(loads), s.N()))
	}
	total := 0.0
	for i, r := range s.Replicas {
		total += r.Energy(loads[i])
	}
	return total
}

// Gradient returns ∂E_g/∂p_{c,n} for every entry of p. Because the
// objective depends on p only through column sums, the gradient is constant
// along each column: g[c][n] = u_n·(α_n + β_n·γ_n·(Σ_c p)^{γ_n−1}).
func (s *System) Gradient(p [][]float64) ([][]float64, error) {
	loads, err := s.loads(p)
	if err != nil {
		return nil, err
	}
	marginal := make([]float64, s.N())
	for i, r := range s.Replicas {
		marginal[i] = r.MarginalCost(loads[i])
	}
	g := make([][]float64, len(p))
	for c := range p {
		g[c] = make([]float64, s.N())
		copy(g[c], marginal)
	}
	return g, nil
}

// SingleNodeEquivalence quantifies the paper's Eq. 7 ≈ Eq. 8 argument: the
// energy of one node serving total load p versus a data center splitting p
// evenly over k internal nodes. It returns (Es, Ed, relative gap). With
// β ≪ α the gap is small, which is the paper's justification for emulating
// a data-center replica with a single cluster node.
func (r Replica) SingleNodeEquivalence(load float64, k int) (es, ed, gap float64) {
	es = r.Energy(load)
	if k <= 0 {
		return es, math.NaN(), math.NaN()
	}
	per := load / float64(k)
	ed = r.Alpha*load + float64(k)*r.Beta*math.Pow(per, r.Gamma)
	if es == 0 {
		return es, ed, 0
	}
	gap = math.Abs(es-ed) / es
	return es, ed, gap
}
