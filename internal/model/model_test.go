package model

import (
	"math"
	"testing"
	"testing/quick"
)

func defaultReplica() Replica { return NewReplica("r", 5) }

func TestNewReplicaDefaults(t *testing.T) {
	r := NewReplica("replica1", 8)
	if r.Alpha != DefaultAlpha || r.Beta != DefaultBeta || r.Gamma != DefaultGamma {
		t.Fatalf("defaults = α%g β%g γ%g, want α%g β%g γ%g",
			r.Alpha, r.Beta, r.Gamma, DefaultAlpha, DefaultBeta, DefaultGamma)
	}
	if r.Bandwidth != 100 {
		t.Fatalf("default bandwidth = %g, want 100 MB/s", r.Bandwidth)
	}
	if r.Price != 8 || r.Name != "replica1" {
		t.Fatalf("price/name not carried: %+v", r)
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Replica)
		ok   bool
	}{
		{"default ok", func(r *Replica) {}, true},
		{"negative price", func(r *Replica) { r.Price = -1 }, false},
		{"zero price ok", func(r *Replica) { r.Price = 0 }, true},
		{"negative alpha", func(r *Replica) { r.Alpha = -0.1 }, false},
		{"negative beta", func(r *Replica) { r.Beta = -0.1 }, false},
		{"gamma below one", func(r *Replica) { r.Gamma = 0.5 }, false},
		{"gamma one ok", func(r *Replica) { r.Gamma = 1 }, true},
		{"zero bandwidth", func(r *Replica) { r.Bandwidth = 0 }, false},
	}
	for _, tc := range cases {
		r := defaultReplica()
		tc.mut(&r)
		err := r.Validate()
		if (err == nil) != tc.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

func TestEnergyMatchesEquationSeven(t *testing.T) {
	r := defaultReplica()
	// Es = α·p + β·p³ with α=1, β=0.01, γ=3.
	for _, p := range []float64{0, 1, 10, 50.5, 100} {
		want := p + 0.01*p*p*p
		if got := r.Energy(p); math.Abs(got-want) > 1e-9 {
			t.Errorf("Energy(%g) = %g, want %g", p, got, want)
		}
	}
}

func TestEnergyZeroLoadIsZero(t *testing.T) {
	if got := defaultReplica().Energy(0); got != 0 {
		t.Fatalf("Energy(0) = %g, want 0", got)
	}
}

func TestEnergyNegativeLoadIsNaN(t *testing.T) {
	if got := defaultReplica().Energy(-1); !math.IsNaN(got) {
		t.Fatalf("Energy(-1) = %g, want NaN", got)
	}
	if got := defaultReplica().MarginalCost(-1); !math.IsNaN(got) {
		t.Fatalf("MarginalCost(-1) = %g, want NaN", got)
	}
}

func TestCostScalesWithPrice(t *testing.T) {
	cheap := NewReplica("cheap", 1)
	dear := NewReplica("dear", 8)
	if c, d := cheap.Cost(42), dear.Cost(42); math.Abs(d-8*c) > 1e-9 {
		t.Fatalf("Cost price scaling broken: price1=%g price8=%g", c, d)
	}
}

// Property: energy is non-decreasing in load (monotonicity).
func TestEnergyMonotoneProperty(t *testing.T) {
	f := func(a, b float64) bool {
		a, b = math.Abs(a), math.Abs(b)
		if math.IsInf(a, 0) || math.IsInf(b, 0) || a > 1e6 || b > 1e6 {
			return true // outside the modeled regime
		}
		lo, hi := math.Min(a, b), math.Max(a, b)
		r := defaultReplica()
		return r.Energy(lo) <= r.Energy(hi)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: energy is convex — midpoint rule E((x+y)/2) ≤ (E(x)+E(y))/2.
func TestEnergyConvexProperty(t *testing.T) {
	f := func(a, b float64) bool {
		a, b = math.Abs(a), math.Abs(b)
		if a > 1e5 || b > 1e5 || math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		r := defaultReplica()
		mid := r.Energy((a + b) / 2)
		avg := (r.Energy(a) + r.Energy(b)) / 2
		return mid <= avg+1e-6*(1+avg)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: MarginalCost is the derivative of Cost (finite differences).
func TestMarginalCostIsDerivative(t *testing.T) {
	r := NewReplica("r", 7)
	for _, p := range []float64{0.5, 1, 5, 20, 80} {
		h := 1e-6 * (1 + p)
		numeric := (r.Cost(p+h) - r.Cost(p-h)) / (2 * h)
		analytic := r.MarginalCost(p)
		if rel := math.Abs(numeric-analytic) / (1 + math.Abs(analytic)); rel > 1e-4 {
			t.Errorf("MarginalCost(%g) = %g, finite-diff %g", p, analytic, numeric)
		}
	}
}

func TestNewSystemRejectsEmpty(t *testing.T) {
	if _, err := NewSystem(nil); err == nil {
		t.Fatal("NewSystem(nil) accepted")
	}
}

func TestNewSystemValidatesReplicas(t *testing.T) {
	bad := NewReplica("bad", -3)
	if _, err := NewSystem([]Replica{defaultReplica(), bad}); err == nil {
		t.Fatal("NewSystem accepted invalid replica")
	}
}

func newTestSystem(t *testing.T, prices ...float64) *System {
	t.Helper()
	rs := make([]Replica, len(prices))
	for i, u := range prices {
		rs[i] = NewReplica("r", u)
	}
	s, err := NewSystem(rs)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestTotalCostSumsColumns(t *testing.T) {
	s := newTestSystem(t, 1, 2)
	p := [][]float64{
		{3, 4},
		{5, 6},
	}
	// Column sums: 8 and 10.
	want := 1*(8+0.01*512) + 2*(10+0.01*1000)
	got, err := s.TotalCost(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("TotalCost = %g, want %g", got, want)
	}
}

func TestTotalEnergyIgnoresPrices(t *testing.T) {
	a := newTestSystem(t, 1, 1)
	b := newTestSystem(t, 20, 3)
	p := [][]float64{{2, 7}}
	ea, _ := a.TotalEnergy(p)
	eb, _ := b.TotalEnergy(p)
	if math.Abs(ea-eb) > 1e-9 {
		t.Fatalf("TotalEnergy depends on prices: %g vs %g", ea, eb)
	}
}

func TestTotalCostRaggedMatrixError(t *testing.T) {
	s := newTestSystem(t, 1, 2)
	if _, err := s.TotalCost([][]float64{{1, 2}, {3}}); err == nil {
		t.Fatal("ragged matrix accepted")
	}
	if _, err := s.TotalEnergy([][]float64{{1, 2, 3}}); err == nil {
		t.Fatal("wide matrix accepted")
	}
	if _, err := s.Gradient([][]float64{{1}}); err == nil {
		t.Fatal("narrow matrix accepted by Gradient")
	}
}

func TestCostOfLoadsAgreesWithTotalCost(t *testing.T) {
	s := newTestSystem(t, 1, 8, 3)
	p := [][]float64{
		{1, 0, 2},
		{0, 5, 1},
		{4, 4, 4},
	}
	loads := []float64{5, 9, 7}
	fromMatrix, err := s.TotalCost(p)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.CostOfLoads(loads); math.Abs(got-fromMatrix) > 1e-9 {
		t.Fatalf("CostOfLoads = %g, TotalCost = %g", got, fromMatrix)
	}
	eFromMatrix, _ := s.TotalEnergy(p)
	if got := s.EnergyOfLoads(loads); math.Abs(got-eFromMatrix) > 1e-9 {
		t.Fatalf("EnergyOfLoads = %g, TotalEnergy = %g", got, eFromMatrix)
	}
}

func TestCostOfLoadsWrongLengthPanics(t *testing.T) {
	s := newTestSystem(t, 1, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("CostOfLoads with wrong length did not panic")
		}
	}()
	s.CostOfLoads([]float64{1})
}

func TestGradientConstantAlongColumns(t *testing.T) {
	s := newTestSystem(t, 2, 5)
	p := [][]float64{
		{1, 2},
		{3, 4},
		{0, 1},
	}
	g, err := s.Gradient(p)
	if err != nil {
		t.Fatal(err)
	}
	for c := 1; c < len(g); c++ {
		for n := range g[c] {
			if g[c][n] != g[0][n] {
				t.Fatalf("gradient differs along column %d: %g vs %g", n, g[c][n], g[0][n])
			}
		}
	}
	// And matches the analytic marginal at the column sums (4 and 7).
	for n, load := range []float64{4, 7} {
		want := s.Replicas[n].MarginalCost(load)
		if math.Abs(g[0][n]-want) > 1e-9 {
			t.Fatalf("gradient[%d] = %g, want %g", n, g[0][n], want)
		}
	}
}

// Property: the gradient is a valid subgradient of the convex objective:
// E(q) >= E(p) + <grad(p), q-p> for all feasible p, q.
func TestGradientSubgradientInequality(t *testing.T) {
	s := newTestSystem(t, 1, 8, 3)
	f := func(vals [9]float64) bool {
		p := make([][]float64, 3)
		q := make([][]float64, 3)
		for c := 0; c < 3; c++ {
			p[c] = make([]float64, 3)
			q[c] = make([]float64, 3)
			for n := 0; n < 3; n++ {
				v := math.Abs(vals[c*3+n])
				if v > 1e4 || math.IsNaN(v) || math.IsInf(v, 0) {
					return true
				}
				p[c][n] = v
				q[c][n] = math.Mod(v*1.7+1, 100)
			}
		}
		ep, err := s.TotalCost(p)
		if err != nil {
			return false
		}
		eq, err := s.TotalCost(q)
		if err != nil {
			return false
		}
		g, err := s.Gradient(p)
		if err != nil {
			return false
		}
		inner := 0.0
		for c := range p {
			for n := range p[c] {
				inner += g[c][n] * (q[c][n] - p[c][n])
			}
		}
		return eq >= ep+inner-1e-6*(1+math.Abs(eq))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSingleNodeEquivalenceSmallGap(t *testing.T) {
	r := defaultReplica()
	// With β ≪ α the paper argues Es ≈ Ed; splitting over more nodes only
	// shrinks the polynomial term, so Ed ≤ Es and — in the regime where the
	// linear server term dominates (β·pᵞ ≪ α·p, i.e. p ≪ √(α/β) = 10) —
	// the gap is modest.
	es, ed, gap := r.SingleNodeEquivalence(5, 8)
	if ed > es {
		t.Fatalf("Ed = %g > Es = %g; splitting increased energy", ed, es)
	}
	if gap > 0.25 {
		t.Fatalf("relative gap %g too large for equivalence argument", gap)
	}
	// With tiny network term the gap is near zero even at high load.
	r.Beta = 1e-6
	_, _, gap = r.SingleNodeEquivalence(50, 8)
	if gap > 3e-3 {
		t.Fatalf("gap %g with β=1e-6, want ~0", gap)
	}
}

func TestSingleNodeEquivalenceZeroLoad(t *testing.T) {
	es, ed, gap := defaultReplica().SingleNodeEquivalence(0, 4)
	if es != 0 || ed != 0 || gap != 0 {
		t.Fatalf("zero load: es=%g ed=%g gap=%g, want all 0", es, ed, gap)
	}
}

func TestSingleNodeEquivalenceBadK(t *testing.T) {
	_, ed, gap := defaultReplica().SingleNodeEquivalence(10, 0)
	if !math.IsNaN(ed) || !math.IsNaN(gap) {
		t.Fatalf("k=0: ed=%g gap=%g, want NaN", ed, gap)
	}
}

func TestGammaOneIsLinear(t *testing.T) {
	r := defaultReplica()
	r.Gamma = 1
	// E = (α+β)·p exactly.
	for _, p := range []float64{0, 1, 10, 123} {
		want := (r.Alpha + r.Beta) * p
		if got := r.Energy(p); math.Abs(got-want) > 1e-9 {
			t.Fatalf("γ=1: Energy(%g) = %g, want %g", p, got, want)
		}
	}
}
