package solver

import (
	"strings"
	"testing"

	"edr/internal/model"
	"edr/internal/opt"
)

func testProblem(t *testing.T) *opt.Problem {
	t.Helper()
	sys, err := model.NewSystem([]model.Replica{
		model.NewReplica("a", 1),
		model.NewReplica("b", 5),
	})
	if err != nil {
		t.Fatal(err)
	}
	return &opt.Problem{
		System:     sys,
		Demands:    []float64{10, 20},
		Latency:    [][]float64{{0.001, 0.001}, {0.001, 0.001}},
		MaxLatency: 0.0018,
	}
}

func TestVerifyAcceptsFeasible(t *testing.T) {
	prob := testProblem(t)
	res := &Result{Assignment: [][]float64{{5, 5}, {10, 10}}}
	if err := Verify(prob, res, 1e-9); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyRejectsNil(t *testing.T) {
	prob := testProblem(t)
	if err := Verify(prob, nil, 1e-9); err == nil {
		t.Fatal("nil result accepted")
	}
	if err := Verify(prob, &Result{}, 1e-9); err == nil {
		t.Fatal("nil assignment accepted")
	}
}

func TestVerifyRejectsWrongShape(t *testing.T) {
	prob := testProblem(t)
	res := &Result{Assignment: [][]float64{{5, 5}}}
	if err := Verify(prob, res, 1e-9); err == nil || !strings.Contains(err.Error(), "rows") {
		t.Fatalf("short assignment: %v", err)
	}
	res = &Result{Assignment: [][]float64{{5}, {10}}}
	if err := Verify(prob, res, 1e-9); err == nil || !strings.Contains(err.Error(), "cols") {
		t.Fatalf("narrow assignment: %v", err)
	}
}

func TestVerifyRejectsInfeasible(t *testing.T) {
	prob := testProblem(t)
	// Demand violated: client 0 served 8 of 10.
	res := &Result{Assignment: [][]float64{{4, 4}, {10, 10}}}
	if err := Verify(prob, res, 1e-6); err == nil {
		t.Fatal("infeasible assignment accepted")
	}
	// But a loose tolerance accepts it.
	if err := Verify(prob, res, 3); err != nil {
		t.Fatal(err)
	}
}

func TestCommStatsAdd(t *testing.T) {
	a := CommStats{Messages: 3, Scalars: 10}
	a.Add(CommStats{Messages: 2, Scalars: 7})
	if a.Messages != 5 || a.Scalars != 17 {
		t.Fatalf("Add = %+v", a)
	}
}
