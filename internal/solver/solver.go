// Package solver defines the common interface all replica-selection
// algorithms in this module implement — the two EDR distributed methods
// (CDPSM, LDDM), the centralized reference, the Round-Robin baseline, and
// the DONAR comparator — plus the shared result/accounting types the
// experiment harness consumes.
package solver

import (
	"fmt"

	"edr/internal/opt"
)

// Result is the outcome of one scheduling decision.
type Result struct {
	// Assignment is the load-split matrix P (clients × replicas).
	Assignment [][]float64
	// Objective is the total energy cost E_g(P) in model units.
	Objective float64
	// Iterations is the number of algorithm iterations executed
	// (1 for one-shot heuristics like Round-Robin).
	Iterations int
	// Converged reports whether the stopping criterion was met before the
	// iteration bound.
	Converged bool
	// History records the objective after each iteration — the
	// convergence curves of the paper's Fig. 5. May be nil when the
	// algorithm is one-shot.
	History []float64
	// Comm tallies the communication the algorithm performed.
	Comm CommStats
}

// CommStats counts distributed-coordination traffic. For in-process
// simulation these are analytic counts matching the complexity analysis in
// paper §III-D; for the live runtime they are measured.
type CommStats struct {
	// Messages is the number of point-to-point messages exchanged.
	Messages int
	// Scalars is the total float64 payload volume across all messages.
	Scalars int
}

// Add accumulates other into s.
func (s *CommStats) Add(other CommStats) {
	s.Messages += other.Messages
	s.Scalars += other.Scalars
}

// Solver computes a load split for one problem instance.
type Solver interface {
	// Name identifies the algorithm in figures ("LDDM", "CDPSM", ...).
	Name() string
	// Solve returns a feasible assignment for prob.
	Solve(prob *opt.Problem) (*Result, error)
}

// Verify checks that a result is structurally sound and feasible for prob
// within tol, returning a descriptive error otherwise. Experiment
// harnesses call this on every solver output so that a buggy algorithm
// fails loudly rather than skewing a figure.
func Verify(prob *opt.Problem, res *Result, tol float64) error {
	if res == nil || res.Assignment == nil {
		return fmt.Errorf("solver: nil result")
	}
	if len(res.Assignment) != prob.C() {
		return fmt.Errorf("solver: assignment has %d rows for %d clients", len(res.Assignment), prob.C())
	}
	for c, row := range res.Assignment {
		if len(row) != prob.N() {
			return fmt.Errorf("solver: row %d has %d cols for %d replicas", c, len(row), prob.N())
		}
	}
	if v := prob.Violation(res.Assignment); v > tol {
		return fmt.Errorf("solver: assignment violates constraints by %g (tol %g)", v, tol)
	}
	return nil
}
