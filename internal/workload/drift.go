package workload

import (
	"fmt"

	"edr/internal/sim"
)

// Drift perturbs a per-client demand vector between scheduling rounds:
// the steady-state churn model for the incremental re-optimization
// experiments. Each round, a uniformly chosen Fraction of the clients
// move their demand by a uniform relative factor in ±Magnitude; the rest
// re-submit unchanged. Fraction 0 models a perfectly quiet fleet (every
// round's dirty set is empty), Fraction 1 re-randomizes everyone (every
// round is effectively full).
type Drift struct {
	// Fraction of clients perturbed per round, in [0, 1].
	Fraction float64
	// Magnitude is the max relative demand change for a perturbed client,
	// > 0 (e.g. 0.3 moves demand by up to ±30%).
	Magnitude float64
}

// Apply returns a copy of demands with a Fraction-sized uniformly chosen
// subset perturbed by ±Magnitude relative. The input is not modified;
// drawing the subset and the factors consumes r deterministically.
func (d Drift) Apply(r *sim.Rand, demands []float64) []float64 {
	if d.Fraction < 0 || d.Fraction > 1 {
		panic(fmt.Sprintf("workload: Drift.Fraction = %g, need [0, 1]", d.Fraction))
	}
	if d.Magnitude < 0 {
		panic(fmt.Sprintf("workload: Drift.Magnitude = %g, need >= 0", d.Magnitude))
	}
	out := append([]float64(nil), demands...)
	k := int(d.Fraction*float64(len(demands)) + 0.5)
	if k == 0 {
		return out
	}
	// Partial Fisher–Yates: the first k entries of idx are a uniform
	// k-subset of the clients.
	idx := make([]int, len(demands))
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < k; i++ {
		j := i + r.Intn(len(idx)-i)
		idx[i], idx[j] = idx[j], idx[i]
	}
	for _, i := range idx[:k] {
		out[i] *= 1 + r.Range(-d.Magnitude, d.Magnitude)
		if out[i] <= 0 {
			out[i] = demands[i] // keep demands positive whatever Magnitude
		}
	}
	return out
}

// DriftRounds unrolls a drift process over count rounds: round 0 is the
// base vector itself, each later round perturbs its predecessor with
// d.Apply. The returned slices share no storage.
func DriftRounds(r *sim.Rand, d Drift, base []float64, count int) [][]float64 {
	if count <= 0 {
		panic(fmt.Sprintf("workload: DriftRounds(count=%d) invalid", count))
	}
	rounds := make([][]float64, count)
	rounds[0] = append([]float64(nil), base...)
	for t := 1; t < count; t++ {
		rounds[t] = d.Apply(r, rounds[t-1])
	}
	return rounds
}
