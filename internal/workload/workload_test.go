package workload

import (
	"math"
	"testing"
	"time"

	"edr/internal/sim"
)

func TestApplicationString(t *testing.T) {
	if VideoStreaming.String() != "video-streaming" || DFS.String() != "dfs" {
		t.Fatalf("names: %q %q", VideoStreaming, DFS)
	}
	if Application(9).String() == "" {
		t.Fatal("unknown application has empty name")
	}
}

func TestMeanRequestMB(t *testing.T) {
	if VideoStreaming.MeanRequestMB() != 100 {
		t.Fatalf("video = %g, want 100", VideoStreaming.MeanRequestMB())
	}
	if DFS.MeanRequestMB() != 10 {
		t.Fatalf("dfs = %g, want 10", DFS.MeanRequestMB())
	}
}

func TestMeanRequestMBUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown app did not panic")
		}
	}()
	Application(42).MeanRequestMB()
}

func TestDiurnalFactorShape(t *testing.T) {
	day := time.Date(2013, 9, 23, 0, 0, 0, 0, time.UTC)
	peak := DiurnalFactor(day.Add(21 * time.Hour))
	trough := DiurnalFactor(day.Add(9 * time.Hour))
	if math.Abs(peak-1.6) > 1e-9 {
		t.Fatalf("peak factor = %g, want 1.6", peak)
	}
	if math.Abs(trough-0.4) > 1e-9 {
		t.Fatalf("trough factor = %g, want 0.4", trough)
	}
	// Daily average ≈ 1.
	sum := 0.0
	for m := 0; m < 24*60; m++ {
		sum += DiurnalFactor(day.Add(time.Duration(m) * time.Minute))
	}
	if avg := sum / (24 * 60); math.Abs(avg-1) > 0.01 {
		t.Fatalf("daily average factor = %g, want ~1", avg)
	}
}

func baseConfig() Config {
	return Config{
		App:             DFS,
		Clients:         8,
		MeanRatePerHour: 3600, // one per second on average
		Duration:        time.Hour,
	}
}

func TestGenerateBasics(t *testing.T) {
	trace, err := Generate(sim.NewRand(1), baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) == 0 {
		t.Fatal("empty trace")
	}
	end := sim.Epoch.Add(time.Hour)
	for i, req := range trace {
		if req.ID != i {
			t.Fatalf("IDs not sequential at %d: %d", i, req.ID)
		}
		if req.Client < 0 || req.Client >= 8 {
			t.Fatalf("client %d out of range", req.Client)
		}
		if req.Content < 0 || req.Content >= 1000 {
			t.Fatalf("content %d out of default catalog", req.Content)
		}
		if req.SizeMB < 8 || req.SizeMB > 12 {
			t.Fatalf("DFS size %g outside 10±20%%", req.SizeMB)
		}
		if req.Arrival.Before(sim.Epoch) || !req.Arrival.Before(end) {
			t.Fatalf("arrival %v outside trace window", req.Arrival)
		}
		if i > 0 && req.Arrival.Before(trace[i-1].Arrival) {
			t.Fatal("trace not time-ordered")
		}
	}
}

func TestGenerateMeanRate(t *testing.T) {
	cfg := baseConfig()
	cfg.Duration = 24 * time.Hour // full day averages the diurnal factor out
	cfg.MeanRatePerHour = 600
	trace, err := Generate(sim.NewRand(2), cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := 600.0 * 24
	got := float64(len(trace))
	if math.Abs(got-want)/want > 0.1 {
		t.Fatalf("generated %g requests over a day, want ~%g", got, want)
	}
}

func TestGenerateDiurnalModulation(t *testing.T) {
	cfg := baseConfig()
	cfg.Duration = 24 * time.Hour
	cfg.MeanRatePerHour = 2000
	trace, err := Generate(sim.NewRand(3), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Count arrivals near the peak (20:00–22:00) vs the trough (08:00–10:00).
	peak, trough := 0, 0
	for _, req := range trace {
		switch h := req.Arrival.Hour(); {
		case h >= 20 && h < 22:
			peak++
		case h >= 8 && h < 10:
			trough++
		}
	}
	if peak <= 2*trough {
		t.Fatalf("peak %d vs trough %d: diurnal modulation too weak", peak, trough)
	}
}

func TestGenerateVideoSizes(t *testing.T) {
	cfg := baseConfig()
	cfg.App = VideoStreaming
	cfg.SizeJitter = 0 // exact sizes
	trace, err := Generate(sim.NewRand(4), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, req := range trace {
		if req.SizeMB != 100 {
			t.Fatalf("size %g, want exactly 100 with zero jitter", req.SizeMB)
		}
	}
}

func TestGenerateZipfPopularity(t *testing.T) {
	cfg := baseConfig()
	cfg.Duration = 12 * time.Hour
	cfg.MeanRatePerHour = 5000
	cfg.CatalogSize = 50
	trace, err := Generate(sim.NewRand(5), cfg)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 50)
	for _, req := range trace {
		counts[req.Content]++
	}
	if counts[0] <= counts[25] {
		t.Fatalf("content 0 drawn %d, content 25 drawn %d: no popularity skew", counts[0], counts[25])
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(sim.NewRand(6), baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(sim.NewRand(6), baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d differs", i)
		}
	}
}

func TestGenerateConfigValidation(t *testing.T) {
	for name, mut := range map[string]func(*Config){
		"zero clients":  func(c *Config) { c.Clients = 0 },
		"zero rate":     func(c *Config) { c.MeanRatePerHour = 0 },
		"zero duration": func(c *Config) { c.Duration = 0 },
		"neg catalog":   func(c *Config) { c.CatalogSize = -5 },
		"neg zipf":      func(c *Config) { c.ZipfExponent = -1 },
		"big jitter":    func(c *Config) { c.SizeJitter = 1 },
	} {
		cfg := baseConfig()
		mut(&cfg)
		if _, err := Generate(sim.NewRand(1), cfg); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestDemandsAggregation(t *testing.T) {
	batch := []Request{
		{Client: 0, SizeMB: 10},
		{Client: 2, SizeMB: 5},
		{Client: 0, SizeMB: 7},
		{Client: 99, SizeMB: 100}, // out of range: ignored
	}
	d := Demands(batch, 3)
	if d[0] != 17 || d[1] != 0 || d[2] != 5 {
		t.Fatalf("Demands = %v", d)
	}
}

func TestWindowSlicing(t *testing.T) {
	start := sim.Epoch
	mk := func(offset time.Duration) Request {
		return Request{Arrival: start.Add(offset)}
	}
	trace := []Request{
		mk(0), mk(30 * time.Second), mk(90 * time.Second), mk(200 * time.Second),
	}
	windows := Window(trace, start, time.Minute, 3)
	if len(windows) != 3 {
		t.Fatalf("windows = %d", len(windows))
	}
	if len(windows[0]) != 2 || len(windows[1]) != 1 || len(windows[2]) != 0 {
		t.Fatalf("window sizes = %d,%d,%d", len(windows[0]), len(windows[1]), len(windows[2]))
	}
}

func TestWindowBadArgsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Window(0 width) did not panic")
		}
	}()
	Window(nil, sim.Epoch, 0, 1)
}

func TestTotalMB(t *testing.T) {
	batch := []Request{{SizeMB: 1.5}, {SizeMB: 2.5}}
	if got := TotalMB(batch); got != 4 {
		t.Fatalf("TotalMB = %g", got)
	}
	if got := TotalMB(nil); got != 0 {
		t.Fatalf("TotalMB(nil) = %g", got)
	}
}

func TestWindowBoundaryEdges(t *testing.T) {
	start := sim.Epoch
	mk := func(offset time.Duration) Request {
		return Request{Arrival: start.Add(offset)}
	}
	trace := []Request{
		mk(-30 * time.Second), // before the trace: dropped, not window 0
		mk(-time.Nanosecond),  // one tick early: dropped
		mk(0),                 // exactly on the start edge: window 0
		mk(time.Minute),       // exactly on a window edge: opens window 1
		mk(2*time.Minute - 1), // last tick of window 1
		mk(3 * time.Minute),   // exactly on the end edge: past the last window
		mk(10 * time.Minute),  // far past the end: dropped
	}
	windows := Window(trace, start, time.Minute, 3)
	if len(windows[0]) != 1 || !windows[0][0].Arrival.Equal(start) {
		t.Fatalf("window 0 = %d requests (pre-start arrivals must not fold in)", len(windows[0]))
	}
	if len(windows[1]) != 2 {
		t.Fatalf("window 1 = %d requests, want 2 (edge arrival opens the window)", len(windows[1]))
	}
	if len(windows[2]) != 0 {
		t.Fatalf("window 2 = %d requests, want 0", len(windows[2]))
	}
}

func TestWindowEmptyTrace(t *testing.T) {
	windows := Window(nil, sim.Epoch, time.Minute, 4)
	if len(windows) != 4 {
		t.Fatalf("windows = %d, want 4 empty windows", len(windows))
	}
	for i, w := range windows {
		if len(w) != 0 {
			t.Fatalf("window %d not empty", i)
		}
	}
}

func TestDemandsBoundaries(t *testing.T) {
	// Zero clients: an empty (non-nil) vector, out-of-range requests dropped.
	d := Demands([]Request{{Client: 0, SizeMB: 5}}, 0)
	if len(d) != 0 {
		t.Fatalf("Demands(_, 0) has %d entries", len(d))
	}
	// Empty batch: all-zero vector of the right length.
	d = Demands(nil, 3)
	if len(d) != 3 || d[0] != 0 || d[1] != 0 || d[2] != 0 {
		t.Fatalf("Demands(nil, 3) = %v", d)
	}
	// Negative client index ignored rather than panicking.
	d = Demands([]Request{{Client: -1, SizeMB: 5}, {Client: 1, SizeMB: 2}}, 2)
	if d[0] != 0 || d[1] != 2 {
		t.Fatalf("Demands with negative index = %v", d)
	}
}
