package workload

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"edr/internal/sim"
)

func TestTraceCSVRoundTrip(t *testing.T) {
	trace, err := Generate(sim.NewRand(1), Config{
		App:             DFS,
		Clients:         4,
		MeanRatePerHour: 1200,
		Duration:        30 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, trace); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(trace) {
		t.Fatalf("round trip lost requests: %d vs %d", len(back), len(trace))
	}
	for i := range trace {
		a, b := trace[i], back[i]
		if a.ID != b.ID || a.Client != b.Client || a.Content != b.Content {
			t.Fatalf("request %d ids mismatch: %+v vs %+v", i, a, b)
		}
		if a.SizeMB != b.SizeMB {
			t.Fatalf("request %d size %g vs %g", i, a.SizeMB, b.SizeMB)
		}
		if !a.Arrival.Equal(b.Arrival) {
			t.Fatalf("request %d arrival %v vs %v", i, a.Arrival, b.Arrival)
		}
	}
}

func TestTraceCSVEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, nil); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 0 {
		t.Fatalf("empty trace read back %d rows", len(back))
	}
}

func TestReadCSVRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"empty":         "",
		"wrong header":  "a,b,c,d,e\n",
		"short header":  "id,client\n",
		"bad id":        "id,client,content,size_mb,arrival_unix_ns\nx,0,0,1,0\n",
		"bad client":    "id,client,content,size_mb,arrival_unix_ns\n0,x,0,1,0\n",
		"bad content":   "id,client,content,size_mb,arrival_unix_ns\n0,0,x,1,0\n",
		"bad size":      "id,client,content,size_mb,arrival_unix_ns\n0,0,0,x,0\n",
		"negative size": "id,client,content,size_mb,arrival_unix_ns\n0,0,0,-2,0\n",
		"bad arrival":   "id,client,content,size_mb,arrival_unix_ns\n0,0,0,1,x\n",
	}
	for name, input := range cases {
		if _, err := ReadCSV(strings.NewReader(input)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}
