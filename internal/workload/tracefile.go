package workload

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"
)

// Trace persistence: write generated request traces to CSV and read them
// back, so experiments can pin a workload once and replay it across runs
// (or load externally captured traces shaped like Gill et al.'s YouTube
// measurements).

// traceHeader is the CSV column layout.
var traceHeader = []string{"id", "client", "content", "size_mb", "arrival_unix_ns"}

// WriteCSV emits the trace in CSV form.
func WriteCSV(w io.Writer, trace []Request) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(traceHeader); err != nil {
		return fmt.Errorf("workload: write trace header: %w", err)
	}
	for _, req := range trace {
		record := []string{
			strconv.Itoa(req.ID),
			strconv.Itoa(req.Client),
			strconv.Itoa(req.Content),
			strconv.FormatFloat(req.SizeMB, 'g', 17, 64),
			strconv.FormatInt(req.Arrival.UnixNano(), 10),
		}
		if err := cw.Write(record); err != nil {
			return fmt.Errorf("workload: write trace row %d: %w", req.ID, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a trace written by WriteCSV. It validates shape and
// field types and returns the requests in file order.
func ReadCSV(r io.Reader) ([]Request, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("workload: read trace header: %w", err)
	}
	if len(header) != len(traceHeader) {
		return nil, fmt.Errorf("workload: trace header has %d columns, want %d", len(header), len(traceHeader))
	}
	for i, name := range traceHeader {
		if header[i] != name {
			return nil, fmt.Errorf("workload: trace column %d is %q, want %q", i, header[i], name)
		}
	}
	var trace []Request
	for line := 2; ; line++ {
		record, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("workload: read trace line %d: %w", line, err)
		}
		id, err := strconv.Atoi(record[0])
		if err != nil {
			return nil, fmt.Errorf("workload: line %d id: %w", line, err)
		}
		client, err := strconv.Atoi(record[1])
		if err != nil {
			return nil, fmt.Errorf("workload: line %d client: %w", line, err)
		}
		content, err := strconv.Atoi(record[2])
		if err != nil {
			return nil, fmt.Errorf("workload: line %d content: %w", line, err)
		}
		size, err := strconv.ParseFloat(record[3], 64)
		if err != nil {
			return nil, fmt.Errorf("workload: line %d size: %w", line, err)
		}
		if size < 0 {
			return nil, fmt.Errorf("workload: line %d: negative size %g", line, size)
		}
		ns, err := strconv.ParseInt(record[4], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("workload: line %d arrival: %w", line, err)
		}
		trace = append(trace, Request{
			ID:      id,
			Client:  client,
			Content: content,
			SizeMB:  size,
			Arrival: time.Unix(0, ns).UTC(),
		})
	}
	return trace, nil
}
