package workload

import (
	"math"
	"testing"

	"edr/internal/sim"
)

func TestDriftApplyFractionZeroIsIdentity(t *testing.T) {
	r := sim.NewRand(1)
	base := []float64{10, 20, 30, 40}
	out := Drift{Fraction: 0, Magnitude: 0.5}.Apply(r, base)
	for i := range base {
		if out[i] != base[i] {
			t.Fatalf("client %d moved: %g -> %g", i, base[i], out[i])
		}
	}
}

func TestDriftApplyPerturbsAboutTheRightCount(t *testing.T) {
	r := sim.NewRand(7)
	base := make([]float64, 1000)
	for i := range base {
		base[i] = 50
	}
	d := Drift{Fraction: 0.1, Magnitude: 0.3}
	out := d.Apply(r, base)
	moved := 0
	for i := range base {
		if out[i] != base[i] {
			moved++
		}
		if out[i] <= 0 {
			t.Fatalf("client %d demand went non-positive: %g", i, out[i])
		}
		if rel := math.Abs(out[i]-base[i]) / base[i]; rel > d.Magnitude+1e-12 {
			t.Fatalf("client %d moved %.3f relative, magnitude is %g", i, rel, d.Magnitude)
		}
	}
	// k = 100 exactly; a perturbed client stays put only when the factor
	// draw lands exactly on 0, which has probability ~0.
	if moved != 100 {
		t.Fatalf("moved %d clients, want 100", moved)
	}
	// Input untouched.
	for i := range base {
		if base[i] != 50 {
			t.Fatalf("Apply modified its input at %d: %g", i, base[i])
		}
	}
}

func TestDriftApplyDeterministic(t *testing.T) {
	base := []float64{5, 10, 15, 20, 25, 30}
	d := Drift{Fraction: 0.5, Magnitude: 0.2}
	a := d.Apply(sim.NewRand(42), base)
	b := d.Apply(sim.NewRand(42), base)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %g vs %g", i, a[i], b[i])
		}
	}
}

func TestDriftRounds(t *testing.T) {
	r := sim.NewRand(3)
	base := []float64{100, 100, 100, 100}
	rounds := DriftRounds(r, Drift{Fraction: 1, Magnitude: 0.1}, base, 4)
	if len(rounds) != 4 {
		t.Fatalf("got %d rounds, want 4", len(rounds))
	}
	for i := range base {
		if rounds[0][i] != base[i] {
			t.Fatalf("round 0 is not the base at %d", i)
		}
	}
	// Every later round differs from its predecessor (full fraction) and
	// shares no storage with it.
	for tt := 1; tt < 4; tt++ {
		same := true
		for i := range base {
			if rounds[tt][i] != rounds[tt-1][i] {
				same = false
			}
		}
		if same {
			t.Fatalf("round %d identical to round %d under full drift", tt, tt-1)
		}
	}
	rounds[1][0] = -1
	if rounds[2][0] == -1 || base[0] != 100 {
		t.Fatal("rounds share storage")
	}
}
