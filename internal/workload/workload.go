// Package workload generates the data-intensive request traffic driving
// the EDR experiments. The paper's request pattern "follows Youtube
// commercial workload patterns" (Gill et al., IMC 2007): diurnal-modulated
// arrivals with a Zipf-popular content catalog, at two request sizes —
// ~100 MB for video streaming and ~10 MB for the distributed file service.
package workload

import (
	"fmt"
	"math"
	"time"

	"edr/internal/sim"
)

// Application identifies one of the paper's two data-intensive workloads.
type Application int

const (
	// VideoStreaming issues ~100 MB requests.
	VideoStreaming Application = iota
	// DFS (distributed file service) issues ~10 MB requests.
	DFS
)

// String returns the figure-label name of the application.
func (a Application) String() string {
	switch a {
	case VideoStreaming:
		return "video-streaming"
	case DFS:
		return "dfs"
	default:
		return fmt.Sprintf("application(%d)", int(a))
	}
}

// MeanRequestMB returns the paper's per-request size for the application.
func (a Application) MeanRequestMB() float64 {
	switch a {
	case VideoStreaming:
		return 100
	case DFS:
		return 10
	default:
		panic(fmt.Sprintf("workload: unknown application %d", int(a)))
	}
}

// Request is one client request for a piece of replicated content.
type Request struct {
	// ID is unique within a trace.
	ID int
	// Client indexes the issuing client.
	Client int
	// Content indexes the catalog item requested (Zipf-popular).
	Content int
	// SizeMB is the payload size in MB.
	SizeMB float64
	// Arrival is when the request reaches the system.
	Arrival time.Time
}

// Config parameterizes a trace generation run.
type Config struct {
	// App selects request sizing. Default VideoStreaming.
	App Application
	// Clients is the number of distinct clients (> 0).
	Clients int
	// CatalogSize is the number of distinct content items (> 0).
	// Default 1000.
	CatalogSize int
	// ZipfExponent shapes content popularity. Default 0.9 (Gill et al.
	// report YouTube popularity close to Zipf with slope ≈ 0.9–1.0).
	ZipfExponent float64
	// MeanRatePerHour is the diurnal-average arrival rate across all
	// clients (> 0).
	MeanRatePerHour float64
	// SizeJitter is the ± fractional uniform jitter on request size,
	// in [0, 1). Zero means exact sizes (the paper states sizes only
	// approximately; set ~0.2 for realistic spread).
	SizeJitter float64
	// Start is the trace start instant. Zero means sim.Epoch.
	Start time.Time
	// Duration is the trace length (> 0).
	Duration time.Duration
}

func (c *Config) defaults() error {
	if c.Clients <= 0 {
		return fmt.Errorf("workload: Clients = %d, need > 0", c.Clients)
	}
	if c.MeanRatePerHour <= 0 {
		return fmt.Errorf("workload: MeanRatePerHour = %g, need > 0", c.MeanRatePerHour)
	}
	if c.Duration <= 0 {
		return fmt.Errorf("workload: Duration = %v, need > 0", c.Duration)
	}
	if c.CatalogSize == 0 {
		c.CatalogSize = 1000
	}
	if c.CatalogSize < 0 {
		return fmt.Errorf("workload: CatalogSize = %d, need > 0", c.CatalogSize)
	}
	if c.ZipfExponent == 0 {
		c.ZipfExponent = 0.9
	}
	if c.ZipfExponent < 0 {
		return fmt.Errorf("workload: ZipfExponent = %g, need > 0", c.ZipfExponent)
	}
	if c.SizeJitter < 0 || c.SizeJitter >= 1 {
		return fmt.Errorf("workload: SizeJitter = %g, need [0, 1)", c.SizeJitter)
	}
	if c.Start.IsZero() {
		c.Start = sim.Epoch
	}
	return nil
}

// DiurnalFactor returns the YouTube-shaped rate multiplier at clock time t:
// a smooth daily cycle peaking (1.6×) at 21:00 in the evening, with its
// trough (0.4×) twelve hours opposite at 09:00 — matching the "peak
// service hours dominate the operating cost" framing of the paper. The
// factor averages ≈1 over a full day.
func DiurnalFactor(t time.Time) float64 {
	hour := float64(t.Hour()) + float64(t.Minute())/60
	// Peak at 21:00 — single daily harmonic.
	phase := 2 * math.Pi * (hour - 21) / 24
	return 1 + 0.6*math.Cos(phase)
}

// Generate produces a time-ordered request trace via a thinned
// (non-homogeneous) Poisson process: candidates arrive at the peak rate
// and are accepted with probability rate(t)/peak.
func Generate(r *sim.Rand, cfg Config) ([]Request, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	zipf := sim.NewZipf(r, cfg.CatalogSize, cfg.ZipfExponent)
	meanPerSec := cfg.MeanRatePerHour / 3600
	peak := meanPerSec * 1.6 // max of DiurnalFactor
	var trace []Request
	now := cfg.Start
	end := cfg.Start.Add(cfg.Duration)
	id := 0
	for {
		gap := r.Exp(peak)
		now = now.Add(time.Duration(gap * float64(time.Second)))
		if !now.Before(end) {
			break
		}
		if r.Float64()*1.6 > DiurnalFactor(now) {
			continue // thinned out
		}
		size := cfg.App.MeanRequestMB()
		if cfg.SizeJitter > 0 {
			size *= 1 + r.Range(-cfg.SizeJitter, cfg.SizeJitter)
		}
		trace = append(trace, Request{
			ID:      id,
			Client:  r.Intn(cfg.Clients),
			Content: zipf.Draw(),
			SizeMB:  size,
			Arrival: now,
		})
		id++
	}
	return trace, nil
}

// Demands aggregates a batch of requests into the per-client demand vector
// R_c over the given number of clients — the optimizer's input for one
// scheduling round.
func Demands(batch []Request, clients int) []float64 {
	r := make([]float64, clients)
	for _, req := range batch {
		if req.Client >= 0 && req.Client < clients {
			r[req.Client] += req.SizeMB
		}
	}
	return r
}

// Window slices a time-ordered trace into consecutive scheduling windows of
// the given width, preserving order inside each window. Empty windows are
// included so callers can model idle rounds.
func Window(trace []Request, start time.Time, width time.Duration, count int) [][]Request {
	if width <= 0 || count <= 0 {
		panic(fmt.Sprintf("workload: Window(width=%v, count=%d) invalid", width, count))
	}
	windows := make([][]Request, count)
	for _, req := range trace {
		if req.Arrival.Before(start) {
			// Integer division truncates toward zero, so a pre-start
			// arrival in (start−width, start) would otherwise land in
			// window 0 instead of being dropped.
			continue
		}
		idx := int(req.Arrival.Sub(start) / width)
		if idx < count {
			windows[idx] = append(windows[idx], req)
		}
	}
	return windows
}

// TotalMB sums the request sizes in a batch.
func TotalMB(batch []Request) float64 {
	total := 0.0
	for _, req := range batch {
		total += req.SizeMB
	}
	return total
}
