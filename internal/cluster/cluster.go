// Package cluster simulates the compute substrate the paper runs on: eight
// nodes of Virginia Tech's SystemG cluster (2× quad-core 2.8 GHz Xeon,
// 8 GB RAM), each emulating one data-center replica. A node's electrical
// draw is a step function of its utilization between a calibrated idle and
// peak level; the runtime power profiles in the paper's Fig. 3/4 swing
// between ≈215 W (listening/idle) and ≈240 W (request handling and file
// transfer), which the defaults here reproduce.
package cluster

import (
	"fmt"
	"sort"
	"time"
)

// SystemG-calibrated power levels (watts), read off the paper's Fig. 3/4
// y-axes.
const (
	// DefaultIdleWatts is a node's draw while only listening for requests.
	DefaultIdleWatts = 215.0
	// DefaultPeakWatts is the draw at full utilization (transfer phase).
	DefaultPeakWatts = 240.0
)

// utilPoint is one step of the utilization timeline: utilization holds the
// given value from At until the next point.
type utilPoint struct {
	at   time.Time
	util float64
}

// Node is one simulated cluster machine. Utilization is recorded as a
// step function over virtual time; power interpolates linearly between the
// idle and peak draw. Node is not safe for concurrent mutation; the
// experiment harnesses drive each node from a single event loop.
type Node struct {
	// Name identifies the node ("replica1"...).
	Name string
	// IdleWatts and PeakWatts bound the draw.
	IdleWatts, PeakWatts float64

	timeline []utilPoint
}

// NewSystemGNode returns a node with the paper-calibrated idle/peak draw,
// initially idle (utilization 0) for all time.
func NewSystemGNode(name string) *Node {
	return &Node{Name: name, IdleWatts: DefaultIdleWatts, PeakWatts: DefaultPeakWatts}
}

// SetUtilization records that the node's utilization becomes u (clamped to
// [0, 1]) at time at. Calls must be in non-decreasing time order; a call
// at the same instant as the previous one overwrites it.
func (n *Node) SetUtilization(at time.Time, u float64) {
	if u < 0 {
		u = 0
	} else if u > 1 {
		u = 1
	}
	if last := len(n.timeline) - 1; last >= 0 {
		prev := n.timeline[last]
		if at.Before(prev.at) {
			panic(fmt.Sprintf("cluster: %s: utilization set at %v after later point %v", n.Name, at, prev.at))
		}
		if at.Equal(prev.at) {
			n.timeline[last].util = u
			return
		}
	}
	n.timeline = append(n.timeline, utilPoint{at: at, util: u})
}

// AddUtilization shifts the node's utilization by delta at time at —
// convenient for overlapping activities (each transfer adds its share,
// then removes it when done). The result is clamped to [0, 1].
func (n *Node) AddUtilization(at time.Time, delta float64) {
	n.SetUtilization(at, n.UtilizationAt(at)+delta)
}

// UtilizationAt returns the step-function value at time t (0 before the
// first recorded point).
func (n *Node) UtilizationAt(t time.Time) float64 {
	// Find the last point with at <= t.
	idx := sort.Search(len(n.timeline), func(i int) bool {
		return n.timeline[i].at.After(t)
	})
	if idx == 0 {
		return 0
	}
	return n.timeline[idx-1].util
}

// PowerAt returns the node's electrical draw at time t:
// idle + (peak − idle) · utilization(t).
func (n *Node) PowerAt(t time.Time) float64 {
	return n.IdleWatts + (n.PeakWatts-n.IdleWatts)*n.UtilizationAt(t)
}

// Reset clears the utilization timeline, returning the node to idle.
func (n *Node) Reset() { n.timeline = n.timeline[:0] }

// Cluster is a named set of nodes emulating the replica fleet.
type Cluster struct {
	Nodes []*Node
}

// NewSystemG builds the paper's eight-node deployment (or any other size)
// with nodes named replica1..replicaN.
func NewSystemG(n int) *Cluster {
	if n <= 0 {
		panic(fmt.Sprintf("cluster: NewSystemG(%d) needs n > 0", n))
	}
	c := &Cluster{Nodes: make([]*Node, n)}
	for i := range c.Nodes {
		c.Nodes[i] = NewSystemGNode(fmt.Sprintf("replica%d", i+1))
	}
	return c
}

// Node returns the i-th node.
func (c *Cluster) Node(i int) *Node { return c.Nodes[i] }

// Reset returns every node to idle.
func (c *Cluster) Reset() {
	for _, n := range c.Nodes {
		n.Reset()
	}
}
