package cluster

import (
	"testing"
	"time"

	"edr/internal/sim"
)

func TestNewSystemGNodeDefaults(t *testing.T) {
	n := NewSystemGNode("replica1")
	if n.IdleWatts != 215 || n.PeakWatts != 240 {
		t.Fatalf("defaults = %g/%g, want 215/240", n.IdleWatts, n.PeakWatts)
	}
	if n.Name != "replica1" {
		t.Fatalf("name = %q", n.Name)
	}
}

func TestUtilizationStepFunction(t *testing.T) {
	n := NewSystemGNode("r")
	t0 := sim.Epoch
	n.SetUtilization(t0.Add(1*time.Second), 0.5)
	n.SetUtilization(t0.Add(3*time.Second), 1.0)
	n.SetUtilization(t0.Add(5*time.Second), 0)

	cases := []struct {
		at   time.Duration
		want float64
	}{
		{0, 0},                 // before first point
		{1 * time.Second, 0.5}, // at a point
		{2 * time.Second, 0.5}, // between points
		{3 * time.Second, 1.0},
		{4500 * time.Millisecond, 1.0},
		{5 * time.Second, 0},
		{time.Hour, 0}, // long after
	}
	for _, tc := range cases {
		if got := n.UtilizationAt(t0.Add(tc.at)); got != tc.want {
			t.Errorf("UtilizationAt(+%v) = %g, want %g", tc.at, got, tc.want)
		}
	}
}

func TestPowerInterpolatesIdlePeak(t *testing.T) {
	n := NewSystemGNode("r")
	t0 := sim.Epoch
	if got := n.PowerAt(t0); got != 215 {
		t.Fatalf("idle power = %g, want 215", got)
	}
	n.SetUtilization(t0, 1)
	if got := n.PowerAt(t0); got != 240 {
		t.Fatalf("peak power = %g, want 240", got)
	}
	n.SetUtilization(t0.Add(time.Second), 0.4)
	if got := n.PowerAt(t0.Add(time.Second)); got != 215+0.4*25 {
		t.Fatalf("40%% power = %g, want 225", got)
	}
}

func TestSetUtilizationClamps(t *testing.T) {
	n := NewSystemGNode("r")
	n.SetUtilization(sim.Epoch, 2.5)
	if got := n.UtilizationAt(sim.Epoch); got != 1 {
		t.Fatalf("util clamped to %g, want 1", got)
	}
	n.SetUtilization(sim.Epoch.Add(time.Second), -3)
	if got := n.UtilizationAt(sim.Epoch.Add(time.Second)); got != 0 {
		t.Fatalf("util clamped to %g, want 0", got)
	}
}

func TestSetUtilizationSameInstantOverwrites(t *testing.T) {
	n := NewSystemGNode("r")
	n.SetUtilization(sim.Epoch, 0.3)
	n.SetUtilization(sim.Epoch, 0.9)
	if got := n.UtilizationAt(sim.Epoch); got != 0.9 {
		t.Fatalf("util = %g, want overwrite 0.9", got)
	}
}

func TestSetUtilizationOutOfOrderPanics(t *testing.T) {
	n := NewSystemGNode("r")
	n.SetUtilization(sim.Epoch.Add(time.Minute), 1)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-order SetUtilization did not panic")
		}
	}()
	n.SetUtilization(sim.Epoch, 0.5)
}

func TestAddUtilizationOverlappingActivities(t *testing.T) {
	n := NewSystemGNode("r")
	t0 := sim.Epoch
	n.AddUtilization(t0, 0.3)                     // transfer A starts
	n.AddUtilization(t0.Add(time.Second), 0.3)    // transfer B starts
	n.AddUtilization(t0.Add(2*time.Second), -0.3) // A ends
	if got := n.UtilizationAt(t0.Add(1500 * time.Millisecond)); got != 0.6 {
		t.Fatalf("overlap util = %g, want 0.6", got)
	}
	if got := n.UtilizationAt(t0.Add(3 * time.Second)); got != 0.3 {
		t.Fatalf("after A ends util = %g, want 0.3", got)
	}
}

func TestReset(t *testing.T) {
	n := NewSystemGNode("r")
	n.SetUtilization(sim.Epoch, 1)
	n.Reset()
	if got := n.UtilizationAt(sim.Epoch.Add(time.Hour)); got != 0 {
		t.Fatalf("after Reset util = %g, want 0", got)
	}
	// Can set earlier times again after reset.
	n.SetUtilization(sim.Epoch, 0.5)
	if got := n.UtilizationAt(sim.Epoch); got != 0.5 {
		t.Fatalf("after Reset set util = %g", got)
	}
}

func TestNewSystemGCluster(t *testing.T) {
	c := NewSystemG(8)
	if len(c.Nodes) != 8 {
		t.Fatalf("nodes = %d", len(c.Nodes))
	}
	if c.Node(0).Name != "replica1" || c.Node(7).Name != "replica8" {
		t.Fatalf("names: %q .. %q", c.Node(0).Name, c.Node(7).Name)
	}
	c.Node(2).SetUtilization(sim.Epoch, 1)
	c.Reset()
	if got := c.Node(2).UtilizationAt(sim.Epoch); got != 0 {
		t.Fatal("cluster Reset did not reset node")
	}
}

func TestNewSystemGBadSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewSystemG(0) did not panic")
		}
	}()
	NewSystemG(0)
}

func TestUtilizationManyPointsBinarySearch(t *testing.T) {
	n := NewSystemGNode("r")
	t0 := sim.Epoch
	for i := 0; i < 1000; i++ {
		n.SetUtilization(t0.Add(time.Duration(i)*time.Second), float64(i%2))
	}
	// Query between steps 500 and 501: value set at 500 is 0.
	if got := n.UtilizationAt(t0.Add(500*time.Second + time.Millisecond)); got != 0 {
		t.Fatalf("util at 500.001s = %g, want 0", got)
	}
	if got := n.UtilizationAt(t0.Add(501*time.Second + time.Millisecond)); got != 1 {
		t.Fatalf("util at 501.001s = %g, want 1", got)
	}
}
