package cohort

import (
	"math"
	"testing"

	"edr/internal/model"
	"edr/internal/opt"
	"edr/internal/sim"
)

// packedTestInstance builds a masked instance with real cohort structure:
// clients fall into a few latency classes so the grouping compresses, and
// every class keeps some replicas infeasible so the sparsity is strict.
func packedTestInstance(t *testing.T, clients, replicas int, seed uint64) (*opt.Problem, *Grouping) {
	t.Helper()
	r := sim.NewRand(seed)
	reps := make([]model.Replica, replicas)
	for j := range reps {
		rep := model.NewReplica("replica"+string(rune('1'+j)), r.Range(1, 20))
		rep.Bandwidth = 1e6
		reps[j] = rep
	}
	sys, err := model.NewSystem(reps)
	if err != nil {
		t.Fatalf("system: %v", err)
	}
	const maxT = 0.0018
	classes := 4
	classLat := opt.NewMatrix(classes, replicas)
	for cl := 0; cl < classes; cl++ {
		for j := 0; j < replicas; j++ {
			if (cl+j)%3 == 0 {
				classLat[cl][j] = 5 * maxT // infeasible for this class
			} else {
				classLat[cl][j] = r.Range(0, 0.9*maxT)
			}
		}
	}
	latency := opt.NewMatrix(clients, replicas)
	demands := make([]float64, clients)
	for c := 0; c < clients; c++ {
		copy(latency[c], classLat[c%classes])
		if r.Float64() < 0.85 {
			demands[c] = r.Range(0, 5)
		}
	}
	prob := &opt.Problem{System: sys, Demands: demands, Latency: latency, MaxLatency: maxT}
	if err := prob.Validate(); err != nil {
		t.Fatalf("instance: %v", err)
	}
	g, err := Group(prob, Options{})
	if err != nil {
		t.Fatalf("Group: %v", err)
	}
	if g.K() >= clients {
		t.Fatalf("grouping did not compress: K=%d C=%d", g.K(), clients)
	}
	return prob, g
}

// TestPackedDisaggregateMatchesDense pins the tentpole invariant: the
// packed disaggregation is bitwise the sparsity gather of the dense one,
// on clean, perturbed, and zero cohort assignments.
func TestPackedDisaggregateMatchesDense(t *testing.T) {
	_, g := packedTestInstance(t, 60, 5, 11)
	fullSp, redSp := g.Sparse()
	xk, err := g.Reduced().UniformStart()
	if err != nil {
		t.Fatalf("UniformStart: %v", err)
	}
	r := sim.NewRand(99)
	for name, mutate := range map[string]func(){
		"clean": func() {},
		"perturbed": func() {
			for k := range xk {
				for j := range xk[k] {
					xk[k][j] = xk[k][j]*1.7 - 0.3*r.Float64()
				}
			}
		},
		"zero": func() { opt.Fill(xk, 0) },
	} {
		mutate()
		dense, err := g.Disaggregate(xk)
		if err != nil {
			t.Fatalf("%s: Disaggregate: %v", name, err)
		}
		vk := redSp.Gather(nil, xk)
		packed, err := g.DisaggregatePacked(vk, nil)
		if err != nil {
			t.Fatalf("%s: DisaggregatePacked: %v", name, err)
		}
		want := fullSp.Gather(nil, dense)
		for s := range packed {
			if math.Float64bits(packed[s]) != math.Float64bits(want[s]) {
				t.Fatalf("%s: slot %d: packed %g dense %g", name, s, packed[s], want[s])
			}
		}
		// Scattering the packed result back reproduces the dense matrix
		// exactly (masked entries are exact zeros on both sides).
		x := opt.NewMatrix(g.C(), g.Orig().N())
		fullSp.Scatter(x, packed)
		for c := range x {
			for j := range x[c] {
				if math.Float64bits(x[c][j]) != math.Float64bits(dense[c][j]) {
					t.Fatalf("%s: [%d][%d]: scattered %g dense %g", name, c, j, x[c][j], dense[c][j])
				}
			}
		}
		if err := g.Check(x, 1e-6); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

// TestPackedDisaggregateErrors covers the packed adapter's validation.
func TestPackedDisaggregateErrors(t *testing.T) {
	_, g := packedTestInstance(t, 40, 4, 3)
	_, redSp := g.Sparse()
	if _, err := g.DisaggregatePacked(make([]float64, redSp.NNZ()+1), nil); err == nil {
		t.Fatal("wrong vk length accepted")
	}
	vk := make([]float64, redSp.NNZ())
	vk[0] = math.NaN()
	if _, err := g.DisaggregatePacked(vk, nil); err == nil {
		t.Fatal("NaN load accepted")
	}
	vk[0] = math.Inf(1)
	if _, err := g.DisaggregatePacked(vk, nil); err == nil {
		t.Fatal("Inf load accepted")
	}
}

// TestAggregateRowsPackedMatchesDense pins the warm-start fold: packed
// aggregation equals the reduced-sparsity gather of the dense adapter for
// mask-supported input, including short (departed-client) inputs, and the
// Into variants equal their allocating counterparts.
func TestAggregateRowsPackedMatchesDense(t *testing.T) {
	prob, g := packedTestInstance(t, 60, 5, 7)
	_, redSp := g.Sparse()
	warm, err := prob.UniformStart()
	if err != nil {
		t.Fatalf("UniformStart: %v", err)
	}
	for _, rows := range []int{len(warm), len(warm) / 2} {
		in := warm[:rows]
		dense := g.AggregateRows(in)
		want := redSp.Gather(nil, dense)
		got := g.AggregateRowsPacked(in, nil)
		for s := range got {
			if math.Float64bits(got[s]) != math.Float64bits(want[s]) {
				t.Fatalf("rows=%d slot %d: packed %g dense %g", rows, s, got[s], want[s])
			}
		}
		into := g.AggregateRowsInto(in, opt.NewMatrix(g.K(), prob.N()))
		for k := range into {
			for j := range into[k] {
				if math.Float64bits(into[k][j]) != math.Float64bits(dense[k][j]) {
					t.Fatalf("rows=%d Into [%d][%d]: %g vs %g", rows, k, j, into[k][j], dense[k][j])
				}
			}
		}
	}
}

// TestAggregateDualsIntoMatchesDense pins the dual fold's pooled variant.
func TestAggregateDualsIntoMatchesDense(t *testing.T) {
	_, g := packedTestInstance(t, 60, 5, 13)
	r := sim.NewRand(5)
	mu := make([]float64, g.C())
	for i := range mu {
		mu[i] = r.Range(-2, 2)
	}
	want := g.AggregateDuals(mu)
	got := g.AggregateDualsInto(mu, make([]float64, g.K()))
	for k := range want {
		if math.Float64bits(got[k]) != math.Float64bits(want[k]) {
			t.Fatalf("cohort %d: %g vs %g", k, got[k], want[k])
		}
	}
	// Dirty dst must be fully overwritten.
	dirty := make([]float64, g.K())
	for k := range dirty {
		dirty[k] = 1e9
	}
	got = g.AggregateDualsInto(mu, dirty)
	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("dirty dst survived at %d: %g vs %g", k, got[k], want[k])
		}
	}
}

// TestScatterMember pins the per-member dense materialization against the
// full disaggregated matrix.
func TestScatterMember(t *testing.T) {
	prob, g := packedTestInstance(t, 40, 5, 21)
	_, redSp := g.Sparse()
	xk, err := g.Reduced().UniformStart()
	if err != nil {
		t.Fatalf("UniformStart: %v", err)
	}
	dense, err := g.Disaggregate(xk)
	if err != nil {
		t.Fatalf("Disaggregate: %v", err)
	}
	packed, err := g.DisaggregatePacked(redSp.Gather(nil, xk), nil)
	if err != nil {
		t.Fatalf("DisaggregatePacked: %v", err)
	}
	row := make([]float64, prob.N())
	for j := range row {
		row[j] = -1 // must be fully overwritten
	}
	for c := 0; c < g.C(); c++ {
		g.ScatterMember(row, packed, c)
		for j := range row {
			if math.Float64bits(row[j]) != math.Float64bits(dense[c][j]) {
				t.Fatalf("client %d col %d: %g vs %g", c, j, row[j], dense[c][j])
			}
		}
	}
}
