package cohort

import (
	"math"
	"testing"

	"edr/internal/model"
	"edr/internal/opt"
	"edr/internal/sim"
)

// FuzzCohortRoundTrip hardens the aggregate→solve→disaggregate path
// against adversarial instances: arbitrary latency structure (boundary
// values, infeasible links, zero latencies), zero demands, degenerate
// quanta, and solver outputs perturbed with negatives, masked-link junk,
// and huge magnitudes. The invariants under fuzz are exactly the runtime
// contract: per-client demand conservation, zero load on latency-
// infeasible links, and no NaN/Inf anywhere in the disaggregated matrix.
func FuzzCohortRoundTrip(f *testing.F) {
	f.Add(uint64(1), uint8(20), uint8(2), 0.0, 0.3)
	f.Add(uint64(7), uint8(0), uint8(0), 1e-12, -2.0)
	f.Add(uint64(42), uint8(255), uint8(7), 0.0018, 1e6)
	f.Add(uint64(99), uint8(63), uint8(3), 1e9, 0.0)
	f.Fuzz(func(t *testing.T, seed uint64, nc, nr uint8, quantum, perturb float64) {
		if math.IsNaN(quantum) || math.IsInf(quantum, 0) {
			return
		}
		if math.IsNaN(perturb) || math.IsInf(perturb, 0) || math.Abs(perturb) > 1e9 {
			return
		}
		clients := 1 + int(nc)%64
		replicas := 2 + int(nr)%6
		r := sim.NewRand(seed)

		reps := make([]model.Replica, replicas)
		for j := range reps {
			rep := model.NewReplica("replica"+string(rune('1'+j)), r.Range(1, 20))
			rep.Bandwidth = 1e6 // capacity out of the way: fuzz targets the mask/conservation logic
			reps[j] = rep
		}
		sys, err := model.NewSystem(reps)
		if err != nil {
			t.Fatalf("system: %v", err)
		}
		const maxT = 0.0018
		latency := opt.NewMatrix(clients, replicas)
		demands := make([]float64, clients)
		for c := 0; c < clients; c++ {
			if r.Float64() < 0.85 {
				demands[c] = r.Range(0, 5) // 15% of clients demand exactly zero
			}
			for j := 0; j < replicas; j++ {
				switch {
				case r.Float64() < 0.25:
					latency[c][j] = r.Range(2*maxT, 10*maxT) // infeasible
				case r.Float64() < 0.1:
					latency[c][j] = maxT // exactly on the bound
				default:
					latency[c][j] = r.Range(0, maxT)
				}
			}
			// Every client keeps at least one feasible replica, as the
			// generators guarantee.
			latency[c][0] = r.Range(0, 0.9*maxT)
		}
		prob := &opt.Problem{System: sys, Demands: demands, Latency: latency, MaxLatency: maxT}
		if err := prob.Validate(); err != nil {
			t.Fatalf("fuzz instance invalid: %v", err)
		}

		g, err := Group(prob, Options{Quantum: math.Abs(quantum), MaxCohorts: (int(nc) % 5) * 10})
		if err != nil {
			t.Fatalf("Group: %v", err)
		}
		xk, err := g.Reduced().UniformStart()
		if err != nil {
			t.Fatalf("reduced UniformStart (cohort lost its feasible replica): %v", err)
		}
		// Adversarial "solver output": scale rows, smear junk onto every
		// link including masked-out ones, drive some entries negative.
		for k := range xk {
			for j := range xk[k] {
				xk[k][j] = xk[k][j]*(1+perturb) + perturb*r.Float64()
			}
		}
		x, err := g.Disaggregate(xk)
		if err != nil {
			t.Fatalf("Disaggregate rejected finite input: %v", err)
		}
		if err := g.Check(x, 1e-6); err != nil {
			t.Fatal(err)
		}
	})
}
