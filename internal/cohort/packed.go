package cohort

import (
	"fmt"
	"math"

	"edr/internal/opt"
)

// This file holds the sparsity-aware cohort adapters: packed counterparts
// of Disaggregate/AggregateRows/AggregateDuals that move assignments
// between the full (|C|×|N|) and reduced (|K|×|N|) instances through
// their opt.Sparsity views, with no dense |C|×|N| intermediate.
//
// The structural fact everything below leans on: cohort keying is exact
// on the feasibility mask, so member c's CSR row segment in the full
// sparsity and cohort of[c]'s row segment in the reduced sparsity have
// the same width and the same ColIdx sequence. Walking the two segments
// in lockstep is therefore a bijection between a member's feasible links
// and its cohort's — no per-entry column lookup, no mask test.

// Sparse returns the (full, reduced) sparsity pair the packed adapters
// index through, building and caching them on the respective problems on
// first use (the reduced view is primed at Group time).
func (g *Grouping) Sparse() (full, reduced *opt.Sparsity) {
	return g.orig.Sparsity(), g.reduced.Sparsity()
}

// AggregateRowsPacked folds a per-client dense matrix into packed cohort
// rows (reduced CSR order), the packed adjoint of Disaggregate. Only the
// feasible entries of full are read; for mask-supported input (anything
// produced by Disaggregate or Renormalize) the result is bitwise the
// reduced-sparsity gather of AggregateRows' dense output. Rows of full
// beyond its length (departed clients mid-reconfiguration) contribute
// nothing, matching the dense adapter. A nil dst allocates; otherwise
// len(dst) must be the reduced NNZ (dst is overwritten, so pooled scratch
// needs no pre-zeroing beyond what Pool already does).
func (g *Grouping) AggregateRowsPacked(full [][]float64, dst []float64) []float64 {
	fullSp, redSp := g.Sparse()
	if dst == nil {
		dst = make([]float64, redSp.NNZ())
	}
	if len(dst) != redSp.NNZ() {
		panic(fmt.Sprintf("cohort: AggregateRowsPacked got %d-slot dst for %d nnz", len(dst), redSp.NNZ()))
	}
	opt.VecFill(dst, 0)
	for c, k := range g.of {
		if c >= len(full) {
			break
		}
		row := full[c]
		kb := redSp.RowStart[k]
		for s, fk := 0, fullSp.RowStart[c]; fk < fullSp.RowStart[c+1]; s, fk = s+1, fk+1 {
			dst[kb+s] += row[fullSp.ColIdx[fk]]
		}
	}
	return dst
}

// DisaggregatePacked maps a packed cohort-level assignment (reduced CSR
// order) to a packed per-client one (full CSR order), with the same
// semantics as Disaggregate — negative clamp, proportional split by
// demand share, exact-conservation residual folded into the first-maximum
// entry, even-spread fallback for loaded-but-zero rows — and bitwise the
// same values at every feasible slot (masked slots simply do not exist
// here; Disaggregate writes exact zeros there). A nil dst allocates;
// otherwise len(dst) must be the full NNZ. Every slot of dst is written.
func (g *Grouping) DisaggregatePacked(vk []float64, dst []float64) ([]float64, error) {
	fullSp, redSp := g.Sparse()
	if len(vk) != redSp.NNZ() {
		return nil, fmt.Errorf("cohort: DisaggregatePacked got %d slots for %d reduced nnz", len(vk), redSp.NNZ())
	}
	if dst == nil {
		dst = make([]float64, fullSp.NNZ())
	} else if len(dst) != fullSp.NNZ() {
		return nil, fmt.Errorf("cohort: DisaggregatePacked got %d-slot dst for %d full nnz", len(dst), fullSp.NNZ())
	}
	row := make([]float64, redSp.MaxRowNNZ())
	for k, mem := range g.members {
		kb, ke := redSp.RowStart[k], redSp.RowStart[k+1]
		w := ke - kb
		sum := 0.0
		for t := 0; t < w; t++ {
			v := vk[kb+t]
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("cohort: non-finite load vk[%d] (cohort %d slot %d) = %g", kb+t, k, t, v)
			}
			if v < 0 {
				v = 0
			}
			row[t] = v
			sum += v
		}
		if sum <= 0 {
			// No load to apportion: spread each member's demand evenly over
			// the cohort's feasible links (zero-demand members get zeros).
			for _, c := range mem {
				cb := fullSp.RowStart[c]
				if g.orig.Demands[c] == 0 || w == 0 {
					for t := 0; t < w; t++ {
						dst[cb+t] = 0
					}
					continue
				}
				share := g.orig.Demands[c] / float64(w)
				for t := 0; t < w; t++ {
					dst[cb+t] = share
				}
			}
			continue
		}
		for _, c := range mem {
			cb := fullSp.RowStart[c]
			f := g.orig.Demands[c] / sum
			got := 0.0
			best, bestVal := -1, 0.0
			for t := 0; t < w; t++ {
				v := row[t] * f
				dst[cb+t] = v
				got += v
				if v > bestVal {
					best, bestVal = t, v
				}
			}
			// Exact conservation: the residual is ~ulp-sized, folded into
			// the first-maximum entry exactly as the dense adapter does.
			// best stays -1 only when every entry is (signed) zero — then
			// the residual is an exact zero too and slot 0 absorbs it.
			if best < 0 {
				best = 0
			}
			dst[cb+best] += g.orig.Demands[c] - got
		}
	}
	return dst, nil
}

// AggregateRowsInto is AggregateRows with caller-owned (pooled) output:
// out must be |K|×|N| and is overwritten. Returns out.
func (g *Grouping) AggregateRowsInto(full [][]float64, out [][]float64) [][]float64 {
	n := g.orig.N()
	if len(out) != g.K() || (g.K() > 0 && len(out[0]) != n) {
		panic(fmt.Sprintf("cohort: AggregateRowsInto got %dx? out for %dx%d", len(out), g.K(), n))
	}
	opt.Fill(out, 0)
	for c, k := range g.of {
		if c >= len(full) {
			break
		}
		for j, v := range full[c] {
			out[k][j] += v
		}
	}
	return out
}

// AggregateDualsInto is AggregateDuals with caller-owned (pooled) output:
// dst must have length |K| and is overwritten. Returns dst.
func (g *Grouping) AggregateDualsInto(mu []float64, dst []float64) []float64 {
	if len(dst) != g.K() {
		panic(fmt.Sprintf("cohort: AggregateDualsInto got %d-slot dst for %d cohorts", len(dst), g.K()))
	}
	for k, mem := range g.members {
		num, den := 0.0, 0.0
		for _, c := range mem {
			if c >= len(mu) {
				continue
			}
			w := g.orig.Demands[c]
			if g.reduced.Demands[k] == 0 {
				w = 1
			}
			num += w * mu[c]
			den += w
		}
		if den > 0 {
			dst[k] = num / den
		} else {
			dst[k] = 0
		}
	}
	return dst
}

// ScatterMember writes client c's packed assignment segment from a packed
// full vector into a dense per-replica row (len |N|), zeroing infeasible
// links — the per-member dense materialization the plan install performs.
func (g *Grouping) ScatterMember(dst []float64, packed []float64, c int) {
	fullSp, _ := g.Sparse()
	for j := range dst {
		dst[j] = 0
	}
	for fk := fullSp.RowStart[c]; fk < fullSp.RowStart[c+1]; fk++ {
		dst[fullSp.ColIdx[fk]] = packed[fk]
	}
}
