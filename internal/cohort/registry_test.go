package cohort

import (
	"testing"

	"edr/internal/opt"
)

// sameProblemNewDemands clones the round's problem the way the runtime
// does across quiet rounds: same system, same latencies (shared read-only),
// fresh demand vector.
func sameProblemNewDemands(prob *opt.Problem, scale float64) *opt.Problem {
	demands := make([]float64, len(prob.Demands))
	for i, d := range prob.Demands {
		demands[i] = d * scale
	}
	return &opt.Problem{
		System:     prob.System,
		Demands:    demands,
		Latency:    prob.Latency,
		MaxLatency: prob.MaxLatency,
	}
}

func TestRegistryQuietRoundReusesGrouping(t *testing.T) {
	prob := regional(t, 7, 400, 8, 12)
	reg := NewRegistry()
	g1, hit, err := reg.Group(prob, Options{})
	if err != nil {
		t.Fatalf("first Group: %v", err)
	}
	if hit {
		t.Fatal("first round reported a cache hit")
	}

	// Demand drift does not touch the byte keys: the partition, mask and
	// sparsity must be reused by pointer, with demands rebuilt fresh.
	prob2 := sameProblemNewDemands(prob, 1.07)
	g2, hit, err := reg.Group(prob2, Options{})
	if err != nil {
		t.Fatalf("second Group: %v", err)
	}
	if !hit {
		t.Fatal("quiet round missed the grouping cache")
	}
	if g2.K() != g1.K() {
		t.Fatalf("cohort count changed on reuse: %d → %d", g1.K(), g2.K())
	}
	if &g2.Members(0)[0] != &g1.Members(0)[0] {
		t.Fatal("member lists were rebuilt on a quiet round")
	}
	if g2.Reduced().Sparsity() != g1.Reduced().Sparsity() {
		t.Fatal("primed sparsity was rebuilt on a quiet round")
	}
	for k := 0; k < g2.K(); k++ {
		want := 0.0
		for _, c := range g2.Members(k) {
			want += prob2.Demands[c]
		}
		if got := g2.Reduced().Demands[k]; got != want {
			t.Fatalf("cohort %d reduced demand %g, want %g", k, got, want)
		}
	}
	// The reused grouping must still disaggregate feasibly against the
	// new problem.
	xk, err := g2.Reduced().UniformStart()
	if err != nil {
		t.Fatal(err)
	}
	x, err := g2.Disaggregate(xk)
	if err != nil {
		t.Fatal(err)
	}
	if err := g2.Check(x, 1e-9); err != nil {
		t.Fatalf("reused grouping disaggregation: %v", err)
	}
}

func TestRegistryMatchesStatelessGroup(t *testing.T) {
	prob := regional(t, 11, 300, 6, 10)
	reg := NewRegistry()
	gr, _, err := reg.Group(prob, Options{})
	if err != nil {
		t.Fatal(err)
	}
	gs, err := Group(prob, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if gr.K() != gs.K() || gr.Quantum() != gs.Quantum() {
		t.Fatalf("registry grouping K=%d q=%g, stateless K=%d q=%g",
			gr.K(), gr.Quantum(), gs.K(), gs.Quantum())
	}
	// Same partition: clients share a registry cohort iff they share a
	// stateless cohort (numbering may differ).
	for c := 1; c < prob.C(); c++ {
		same1 := gr.CohortOf(c) == gr.CohortOf(c-1)
		same2 := gs.CohortOf(c) == gs.CohortOf(c-1)
		if same1 != same2 {
			t.Fatalf("clients %d,%d grouped differently: registry %v, stateless %v", c-1, c, same1, same2)
		}
	}
}

func TestRegistryDriftAppendsNewCohortLast(t *testing.T) {
	prob := regional(t, 13, 200, 6, 8)
	reg := NewRegistry()
	g1, _, err := reg.Group(prob, Options{})
	if err != nil {
		t.Fatal(err)
	}

	// Push one client's latency row out of every existing bucket pattern:
	// make exactly one replica feasible at a latency no other client has.
	prob2 := sameProblemNewDemands(prob, 1)
	lat := make([][]float64, len(prob.Latency))
	for i := range lat {
		lat[i] = prob.Latency[i]
	}
	row := make([]float64, prob.N())
	for j := range row {
		row[j] = 10 * prob.MaxLatency
	}
	row[0] = prob.MaxLatency * 0.999
	lat[42] = row
	prob2.Latency = lat

	g2, hit, err := reg.Group(prob2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("mask change reported a cache hit")
	}
	// The brand-new identity sorts after every surviving cohort, and
	// surviving cohorts keep their relative order.
	if got := g2.CohortOf(42); got != g2.K()-1 {
		t.Fatalf("new cohort placed at rank %d, want last (%d)", got, g2.K()-1)
	}
	prevRank := -1
	for c := 0; c < prob.C(); c++ {
		if c == 42 {
			continue
		}
		if g1.CohortOf(c) == g1.CohortOf(0) {
			if prevRank == -1 {
				prevRank = g2.CohortOf(c)
			} else if g2.CohortOf(c) != prevRank {
				t.Fatalf("surviving cohort split across ranks %d and %d", prevRank, g2.CohortOf(c))
			}
		}
	}
}

func TestRegistryResetDropsIdentity(t *testing.T) {
	prob := regional(t, 17, 100, 4, 6)
	reg := NewRegistry()
	if _, _, err := reg.Group(prob, Options{}); err != nil {
		t.Fatal(err)
	}
	if reg.Cohorts() == 0 {
		t.Fatal("no identities interned")
	}
	reg.Reset()
	if reg.Cohorts() != 0 {
		t.Fatalf("%d identities survived Reset", reg.Cohorts())
	}
	if _, hit, err := reg.Group(prob, Options{}); err != nil || hit {
		t.Fatalf("post-Reset Group: hit=%v err=%v, want fresh miss", hit, err)
	}
}
