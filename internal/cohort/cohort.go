// Package cohort is the client-scale sharding layer: it groups raw
// clients into virtual clients ("cohorts") keyed by (region,
// latency-class), emits a reduced opt.Problem the distributed rounds
// solve unchanged, and disaggregates the cohort-level assignment back to
// per-client loads proportionally to demand.
//
// The key observation making this lossless rather than a heuristic: the
// EDR objective E_g depends on an assignment only through the per-replica
// column sums S_n (each replica's energy is a function of its own load),
// and the feasible set is a transportation polytope whose rows interact
// only through those column sums. Two clients with the same
// latency-feasibility mask are therefore interchangeable: merging them
// into one virtual client with summed demand preserves the set of
// achievable column-sum vectors exactly, so the reduced optimum equals
// the ungrouped optimum and proportional disaggregation recovers a
// per-client split with the same cost. Aggregation error appears only
// when a cohort mixes masks — which the exact keying below never does —
// leaving solver convergence as the only measured gap (see Gap).
//
// This is the decomposition of Feng/Xu/Li's ADMM cloud-traffic framework
// and the geographic demand aggregation of energy-aware CDN load
// balancing (see PAPERS.md): solve at aggregate granularity, recover
// per-entity allocations.
package cohort

import (
	"fmt"
	"math"

	"edr/internal/opt"
)

// InfeasibleLatency returns the sentinel latency the reduced problem
// carries for links outside a cohort's mask — the same "well beyond the
// bound" convention the runtime uses for unmeasured links.
func InfeasibleLatency(maxLatency float64) float64 { return 10 * maxLatency }

// Options tunes the grouping.
type Options struct {
	// Quantum is the latency quantization step in seconds: feasible
	// latencies are bucketed by floor(l/Quantum), so clients sharing a
	// feasibility mask and per-replica buckets share a cohort. 0 selects
	// MaxLatency/4 — coarse enough that a geographic region quantizes to
	// a handful of cohorts, fine enough that a cohort's representative
	// latency stays within one bucket of every member's truth.
	Quantum float64
	// MaxCohorts, when positive, bounds the cohort count by doubling the
	// quantum until the grouping fits (or the key degenerates to the
	// feasibility mask alone, the coarsest lossless key). 0 means no
	// bound.
	MaxCohorts int
}

// Grouping is one aggregation of a problem's clients into cohorts. It is
// immutable after Group returns.
type Grouping struct {
	orig    *opt.Problem
	reduced *opt.Problem
	members [][]int // cohort → member client indices, in client order
	of      []int   // client → cohort index
	quantum float64
}

// Group partitions prob's clients into cohorts: clients whose feasibility
// mask under prob.MaxLatency and quantized latency vector match share a
// cohort. The reduced problem sums member demands and carries
// demand-weighted representative latencies, so a cohort's mask equals its
// members' shared mask and every reduced-feasible assignment
// disaggregates to an ungrouped-feasible one.
func Group(prob *opt.Problem, opts Options) (*Grouping, error) {
	if prob == nil || prob.System == nil {
		return nil, fmt.Errorf("cohort: problem has no system")
	}
	c, n := prob.C(), prob.N()
	if c == 0 || n == 0 {
		return nil, fmt.Errorf("cohort: empty problem (%d clients, %d replicas)", c, n)
	}
	quantum := opts.Quantum
	if quantum <= 0 {
		quantum = prob.MaxLatency / 4
	}
	mask := prob.Allowed()
	var of []int
	var members [][]int
	for {
		of, members = groupAt(prob, mask, quantum)
		if opts.MaxCohorts <= 0 || len(members) <= opts.MaxCohorts || quantum >= prob.MaxLatency {
			break
		}
		// Too fine: coarsen the latency classes and regroup. Once the
		// quantum reaches MaxLatency every feasible link is in bucket
		// zero and the key is the mask alone — no further coarsening is
		// lossless, so that is where the doubling stops.
		quantum *= 2
		if quantum > prob.MaxLatency {
			quantum = prob.MaxLatency
		}
	}
	g := &Grouping{orig: prob, members: members, of: of, quantum: quantum}
	g.reduced = g.buildReduced(mask)
	return g, nil
}

// groupAt buckets every client at the given quantum and returns the
// client→cohort map and cohort member lists (cohorts in first-seen client
// order, members in client order).
func groupAt(prob *opt.Problem, mask [][]bool, quantum float64) ([]int, [][]int) {
	c, n := prob.C(), prob.N()
	of := make([]int, c)
	var members [][]int
	index := make(map[string]int)
	key := make([]byte, n)
	for i := 0; i < c; i++ {
		for j := 0; j < n; j++ {
			if !mask[i][j] {
				key[j] = 0xFF // infeasible class
				continue
			}
			b := int(prob.Latency[i][j] / quantum)
			if b > 0xFE {
				b = 0xFE
			}
			key[j] = byte(b)
		}
		k, ok := index[string(key)]
		if !ok {
			k = len(members)
			index[string(key)] = k
			members = append(members, nil)
		}
		of[i] = k
		members[k] = append(members[k], i)
	}
	return of, members
}

// buildReduced assembles the cohort-level problem: summed demands and
// demand-weighted representative latencies (uniform-weighted when a
// cohort's total demand is zero), with masked-out links pushed beyond the
// bound. Because every member shares the mask, feasible representative
// latencies are convex combinations of values ≤ T and stay ≤ T — the
// reduced mask is exactly the shared member mask.
func (g *Grouping) buildReduced(mask [][]bool) *opt.Problem {
	n := g.orig.N()
	demands := make([]float64, len(g.members))
	latency := opt.NewMatrix(len(g.members), n)
	reducedMask := make([][]bool, len(g.members))
	inf := InfeasibleLatency(g.orig.MaxLatency)
	for k, mem := range g.members {
		total := 0.0
		for _, c := range mem {
			total += g.orig.Demands[c]
		}
		demands[k] = total
		lead := mem[0]
		// The cohort's mask IS the shared member mask — alias the lead
		// member's row (mask rows are read-only shared state).
		reducedMask[k] = mask[lead]
		for j := 0; j < n; j++ {
			if !mask[lead][j] {
				latency[k][j] = inf
				continue
			}
			num, den := 0.0, 0.0
			for _, c := range mem {
				w := g.orig.Demands[c]
				if total == 0 {
					w = 1
				}
				num += w * g.orig.Latency[c][j]
				den += w
			}
			latency[k][j] = num / den
		}
	}
	p := &opt.Problem{
		System:     g.orig.System,
		Demands:    demands,
		Latency:    latency,
		MaxLatency: g.orig.MaxLatency,
	}
	// Prime the reduced problem's cached feasibility views: the grouping
	// already knows the cohort masks exactly, so the first solver (or
	// packed-adapter) touch must not re-derive them from the sentinel
	// latencies. The |K|×|N| sparsity build is cheap next to grouping.
	p.PrimeMask(reducedMask, opt.NewSparsity(reducedMask))
	return p
}

// K returns the cohort count |K|.
func (g *Grouping) K() int { return len(g.members) }

// C returns the raw client count |C|.
func (g *Grouping) C() int { return len(g.of) }

// Quantum returns the latency quantization step the grouping settled on
// (it may exceed Options.Quantum when MaxCohorts forced coarsening).
func (g *Grouping) Quantum() float64 { return g.quantum }

// Ratio returns the compression ratio |C|/|K|.
func (g *Grouping) Ratio() float64 { return float64(g.C()) / float64(g.K()) }

// Members returns cohort k's client indices. Read-only.
func (g *Grouping) Members(k int) []int { return g.members[k] }

// CohortOf returns the cohort index of client c.
func (g *Grouping) CohortOf(c int) int { return g.of[c] }

// Reduced returns the cohort-level problem the distributed rounds solve.
// Read-only; it shares the original problem's System.
func (g *Grouping) Reduced() *opt.Problem { return g.reduced }

// Orig returns the full per-client problem the grouping was built from.
// Read-only.
func (g *Grouping) Orig() *opt.Problem { return g.orig }

// Disaggregate maps a cohort-level assignment (|K|×|N|) back to a
// per-client one (|C|×|N|): each member receives its cohort's split
// scaled by demand share, so per-client demand is conserved exactly
// (a closing residual correction absorbs float rounding) and no load
// lands outside the cohort's — hence the member's — feasibility mask.
// Cohort rows that carry demand but received no load (a solver returning
// a zero row) fall back to an even split over the cohort's feasible
// links, keeping conservation unconditional.
func (g *Grouping) Disaggregate(xk [][]float64) ([][]float64, error) {
	kk, n := g.K(), g.orig.N()
	if len(xk) != kk {
		return nil, fmt.Errorf("cohort: disaggregate %d rows for %d cohorts", len(xk), kk)
	}
	mask := g.reduced.Allowed()
	x := opt.NewMatrix(g.C(), n)
	row := make([]float64, n)
	for k, mem := range g.members {
		if len(xk[k]) != n {
			return nil, fmt.Errorf("cohort: disaggregate row %d has %d cols for %d replicas", k, len(xk[k]), n)
		}
		// Clamp solver fuzz: tiny negatives to zero, load on masked-out
		// links dropped (so per-client feasibility holds no matter what
		// the solver returned), non-finite rejected.
		sum := 0.0
		for j, v := range xk[k] {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("cohort: non-finite load xk[%d][%d] = %g", k, j, v)
			}
			if v < 0 || !mask[k][j] {
				v = 0
			}
			row[j] = v
			sum += v
		}
		if sum <= 0 {
			// No load to apportion: spread each member's demand evenly
			// over the cohort's feasible links.
			feasible := 0
			for j := 0; j < n; j++ {
				if mask[k][j] {
					feasible++
				}
			}
			for _, c := range mem {
				if g.orig.Demands[c] == 0 || feasible == 0 {
					continue
				}
				share := g.orig.Demands[c] / float64(feasible)
				for j := 0; j < n; j++ {
					if mask[k][j] {
						x[c][j] = share
					}
				}
			}
			continue
		}
		for _, c := range mem {
			f := g.orig.Demands[c] / sum
			got, big := 0.0, 0
			for j := 0; j < n; j++ {
				v := row[j] * f
				x[c][j] = v
				got += v
				if v > x[c][big] {
					big = j
				}
			}
			// Exact conservation: fold the float-rounding residual into
			// the largest entry (the residual is ~ulp-sized, so the entry
			// stays nonnegative and inside the mask).
			x[c][big] += g.orig.Demands[c] - got
		}
	}
	return x, nil
}

// AggregateRows folds a per-client matrix (|C|×|N|) into cohort rows by
// summation — the adjoint of Disaggregate, used to seed warm starts at
// cohort granularity from a per-client history.
func (g *Grouping) AggregateRows(full [][]float64) [][]float64 {
	n := g.orig.N()
	out := opt.NewMatrix(g.K(), n)
	for c, k := range g.of {
		if c >= len(full) {
			break
		}
		for j, v := range full[c] {
			out[k][j] += v
		}
	}
	return out
}

// AggregateDuals folds per-client dual values into demand-weighted cohort
// duals (uniform-weighted for zero-demand cohorts) — μ is a per-unit
// price, so the cohort's dual is its members' demand-weighted average.
func (g *Grouping) AggregateDuals(mu []float64) []float64 {
	out := make([]float64, g.K())
	for k, mem := range g.members {
		num, den := 0.0, 0.0
		for _, c := range mem {
			if c >= len(mu) {
				continue
			}
			w := g.orig.Demands[c]
			if g.reduced.Demands[k] == 0 {
				w = 1
			}
			num += w * mu[c]
			den += w
		}
		if den > 0 {
			out[k] = num / den
		}
	}
	return out
}

// Check verifies a disaggregated assignment's invariants against the
// original problem: per-client demand conservation within tol, zero load
// on latency-infeasible links, and finite entries. Tests, the fuzz
// harness, and paranoid callers share it.
func (g *Grouping) Check(x [][]float64, tol float64) error {
	if len(x) != g.C() {
		return fmt.Errorf("cohort: check %d rows for %d clients", len(x), g.C())
	}
	mask := g.orig.Allowed()
	for c, xrow := range x {
		sum := 0.0
		for j, v := range xrow {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("cohort: non-finite x[%d][%d] = %g", c, j, v)
			}
			if v < -tol {
				return fmt.Errorf("cohort: negative load x[%d][%d] = %g", c, j, v)
			}
			if !mask[c][j] && v != 0 {
				return fmt.Errorf("cohort: load %g on infeasible link (%d,%d)", v, c, j)
			}
			sum += v
		}
		if d := math.Abs(sum - g.orig.Demands[c]); d > tol*(1+g.orig.Demands[c]) {
			return fmt.Errorf("cohort: client %d served %g of demand %g", c, sum, g.orig.Demands[c])
		}
	}
	return nil
}

// Gap reports the relative optimality gap of a disaggregated assignment
// against a reference objective for the ungrouped instance: (cost − ref)
// / ref. Negative values mean the cohort path beat the reference (both
// are iterative solvers).
func (g *Grouping) Gap(x [][]float64, ref float64) float64 {
	if ref == 0 {
		return 0
	}
	return (g.orig.Cost(x) - ref) / ref
}
