package cohort

import (
	"math"
	"testing"

	"edr/internal/central"
	"edr/internal/lddm"
	"edr/internal/opt"
	"edr/internal/probgen"
	"edr/internal/sim"
)

// regional builds a feasible region-structured instance sized for cohort
// tests: per-client demands shrink with scale so total demand stays well
// under the fleet's aggregate bandwidth.
func regional(t *testing.T, seed uint64, clients, replicas, regions int) *opt.Problem {
	t.Helper()
	prob, err := probgen.MustFeasible(sim.NewRand(seed), probgen.Spec{
		Clients:  clients,
		Replicas: replicas,
		Regions:  regions,
		DemandLo: 0.005,
		DemandHi: 0.05,
	})
	if err != nil {
		t.Fatalf("regional instance: %v", err)
	}
	return prob
}

func TestGroupPartitionsByMaskAndClass(t *testing.T) {
	prob := regional(t, 1, 400, 8, 12)
	g, err := Group(prob, Options{})
	if err != nil {
		t.Fatalf("Group: %v", err)
	}
	if g.K() <= 0 || g.K() > prob.C() {
		t.Fatalf("cohort count %d outside (0, %d]", g.K(), prob.C())
	}
	if g.C() != prob.C() {
		t.Fatalf("C() = %d, want %d", g.C(), prob.C())
	}
	// Region structure must compress: far fewer cohorts than clients.
	if g.Ratio() < 2 {
		t.Fatalf("compression ratio %.2f < 2 on a 12-region topology (K=%d)", g.Ratio(), g.K())
	}
	// Partition: every client in exactly one cohort, members consistent
	// with CohortOf.
	seen := make([]bool, prob.C())
	for k := 0; k < g.K(); k++ {
		for _, c := range g.Members(k) {
			if seen[c] {
				t.Fatalf("client %d appears in two cohorts", c)
			}
			seen[c] = true
			if g.CohortOf(c) != k {
				t.Fatalf("CohortOf(%d) = %d, want %d", c, g.CohortOf(c), k)
			}
		}
	}
	for c, ok := range seen {
		if !ok {
			t.Fatalf("client %d in no cohort", c)
		}
	}
	// Cohort-mates share the feasibility mask and latency class.
	mask := prob.Allowed()
	q := g.Quantum()
	for k := 0; k < g.K(); k++ {
		mem := g.Members(k)
		lead := mem[0]
		for _, c := range mem[1:] {
			for j := 0; j < prob.N(); j++ {
				if mask[c][j] != mask[lead][j] {
					t.Fatalf("cohort %d mixes masks at replica %d (clients %d, %d)", k, j, lead, c)
				}
				if mask[c][j] && int(prob.Latency[c][j]/q) != int(prob.Latency[lead][j]/q) {
					t.Fatalf("cohort %d mixes latency classes at replica %d", k, j)
				}
			}
		}
	}
}

func TestReducedProblemInvariants(t *testing.T) {
	prob := regional(t, 2, 600, 10, 15)
	g, err := Group(prob, Options{})
	if err != nil {
		t.Fatalf("Group: %v", err)
	}
	red := g.Reduced()
	if err := red.Validate(); err != nil {
		t.Fatalf("reduced problem invalid: %v", err)
	}
	if red.C() != g.K() {
		t.Fatalf("reduced has %d rows for %d cohorts", red.C(), g.K())
	}
	// Total demand conserved.
	var full, agg float64
	for _, d := range prob.Demands {
		full += d
	}
	for _, d := range red.Demands {
		agg += d
	}
	if math.Abs(full-agg) > 1e-9*full {
		t.Fatalf("demand not conserved: %g vs %g", agg, full)
	}
	// Reduced mask equals the shared member mask.
	mask, rmask := prob.Allowed(), red.Allowed()
	for k := 0; k < g.K(); k++ {
		lead := g.Members(k)[0]
		for j := 0; j < prob.N(); j++ {
			if rmask[k][j] != mask[lead][j] {
				t.Fatalf("reduced mask[%d][%d] = %v, members have %v", k, j, rmask[k][j], mask[lead][j])
			}
		}
	}
	// Reduced feasibility implies the cohorted round can run at all.
	if err := opt.CheckFeasible(red); err != nil {
		t.Fatalf("reduced instance infeasible: %v", err)
	}
}

func TestMaxCohortsCoarsens(t *testing.T) {
	prob := regional(t, 3, 500, 8, 20)
	fine, err := Group(prob, Options{Quantum: prob.MaxLatency / 64})
	if err != nil {
		t.Fatalf("fine Group: %v", err)
	}
	bound := fine.K()/2 + 1
	coarse, err := Group(prob, Options{Quantum: prob.MaxLatency / 64, MaxCohorts: bound})
	if err != nil {
		t.Fatalf("coarse Group: %v", err)
	}
	if coarse.K() > fine.K() {
		t.Fatalf("coarsening grew cohorts: %d > %d", coarse.K(), fine.K())
	}
	if coarse.Quantum() <= fine.Quantum() {
		t.Fatalf("coarsening kept quantum %g ≤ %g", coarse.Quantum(), fine.Quantum())
	}
	// At quantum == MaxLatency the key is the mask alone — the bound may
	// still be exceeded, but never by more than the mask count.
	maskOnly, err := Group(prob, Options{Quantum: prob.MaxLatency})
	if err != nil {
		t.Fatalf("mask-only Group: %v", err)
	}
	if coarse.K() > bound && coarse.K() != maskOnly.K() {
		t.Fatalf("coarse K=%d exceeds bound %d without hitting the mask-only floor %d",
			coarse.K(), bound, maskOnly.K())
	}
}

func TestDisaggregateConservesAndRespectsMask(t *testing.T) {
	prob := regional(t, 4, 800, 10, 16)
	g, err := Group(prob, Options{})
	if err != nil {
		t.Fatalf("Group: %v", err)
	}
	xk, err := g.Reduced().UniformStart()
	if err != nil {
		t.Fatalf("UniformStart: %v", err)
	}
	x, err := g.Disaggregate(xk)
	if err != nil {
		t.Fatalf("Disaggregate: %v", err)
	}
	if err := g.Check(x, 1e-9); err != nil {
		t.Fatal(err)
	}
	// Exact conservation, not approximate: residual fixup makes row sums
	// bit-equal targets up to one final addition.
	for c, row := range x {
		sum := 0.0
		for _, v := range row {
			sum += v
		}
		if math.Abs(sum-prob.Demands[c]) > 1e-12*(1+prob.Demands[c]) {
			t.Fatalf("client %d row sum %g vs demand %g", c, sum, prob.Demands[c])
		}
	}
	// Column sums survive the split: the disaggregated cost equals the
	// cohort-level cost when the solver met cohort demands.
	if d := math.Abs(prob.Cost(x) - g.Reduced().Cost(xk)); d > 1e-6*(1+g.Reduced().Cost(xk)) {
		t.Fatalf("cost drifted through disaggregation by %g", d)
	}
}

func TestDisaggregateZeroRowFallback(t *testing.T) {
	prob := regional(t, 5, 120, 6, 6)
	g, err := Group(prob, Options{})
	if err != nil {
		t.Fatalf("Group: %v", err)
	}
	// A solver that returned nothing at all: the fallback must still
	// conserve demand over each cohort's feasible links.
	xk := opt.NewMatrix(g.K(), prob.N())
	x, err := g.Disaggregate(xk)
	if err != nil {
		t.Fatalf("Disaggregate: %v", err)
	}
	if err := g.Check(x, 1e-9); err != nil {
		t.Fatal(err)
	}
}

func TestDisaggregateRejectsBadInput(t *testing.T) {
	prob := regional(t, 6, 60, 5, 4)
	g, err := Group(prob, Options{})
	if err != nil {
		t.Fatalf("Group: %v", err)
	}
	if _, err := g.Disaggregate(opt.NewMatrix(g.K()+1, prob.N())); err == nil {
		t.Fatal("row-count mismatch accepted")
	}
	bad := opt.NewMatrix(g.K(), prob.N())
	bad[0][0] = math.NaN()
	if _, err := g.Disaggregate(bad); err == nil {
		t.Fatal("NaN load accepted")
	}
}

func TestAggregateRowsAndDuals(t *testing.T) {
	prob := regional(t, 7, 200, 8, 8)
	g, err := Group(prob, Options{})
	if err != nil {
		t.Fatalf("Group: %v", err)
	}
	full, err := prob.UniformStart()
	if err != nil {
		t.Fatalf("UniformStart: %v", err)
	}
	agg := g.AggregateRows(full)
	if len(agg) != g.K() {
		t.Fatalf("AggregateRows returned %d rows for %d cohorts", len(agg), g.K())
	}
	for k := range agg {
		sum := 0.0
		for _, v := range agg[k] {
			sum += v
		}
		if math.Abs(sum-g.Reduced().Demands[k]) > 1e-9*(1+g.Reduced().Demands[k]) {
			t.Fatalf("aggregated cohort %d carries %g of demand %g", k, sum, g.Reduced().Demands[k])
		}
	}
	mu := make([]float64, prob.C())
	for c := range mu {
		mu[c] = 2.5
	}
	for k, v := range g.AggregateDuals(mu) {
		if math.Abs(v-2.5) > 1e-12 {
			t.Fatalf("constant duals not preserved: cohort %d got %g", k, v)
		}
	}
}

func TestGroupRejectsEmptyProblem(t *testing.T) {
	if _, err := Group(&opt.Problem{}, Options{}); err == nil {
		t.Fatal("empty problem accepted")
	}
}

// TestCohortGapVsCentralUngrouped is the headline acceptance check at a
// directly-comparable scale: group a 1k-client regional instance, solve
// the reduced problem with a distributed kernel (LDDM), disaggregate, and
// compare the resulting objective against the Frank-Wolfe centralized
// reference run on the UNGROUPED instance. The measured gap must be
// within 5%.
func TestCohortGapVsCentralUngrouped(t *testing.T) {
	prob := regional(t, 8, 1000, 10, 40)
	g, err := Group(prob, Options{})
	if err != nil {
		t.Fatalf("Group: %v", err)
	}
	t.Logf("grouped %d clients into %d cohorts (%.1fx)", g.C(), g.K(), g.Ratio())

	s := lddm.New()
	s.MaxIters = 400
	res, err := s.Solve(g.Reduced())
	if err != nil {
		t.Fatalf("LDDM on reduced: %v", err)
	}
	x, err := g.Disaggregate(res.Assignment)
	if err != nil {
		t.Fatalf("Disaggregate: %v", err)
	}
	if err := g.Check(x, 1e-6); err != nil {
		t.Fatal(err)
	}

	// A loose duality-gap tolerance keeps the 1000-row reference solve
	// cheap; the acceptance bound is 5%, so a 0.5%-accurate reference
	// resolves it with margin.
	fw := &central.FrankWolfe{Tol: 5e-3}
	ref, err := fw.Solve(prob)
	if err != nil {
		t.Fatalf("Frank-Wolfe on ungrouped: %v", err)
	}
	gap := g.Gap(x, ref.Objective)
	t.Logf("cohort objective %.4f vs central ungrouped %.4f: gap %.3f%%",
		prob.Cost(x), ref.Objective, 100*gap)
	if gap > 0.05 {
		t.Fatalf("optimality gap %.2f%% exceeds 5%%", 100*gap)
	}
}

// TestCohortScale10k runs the 10k-client acceptance scenario end to end at
// cohort granularity. The centralized reference runs on the REDUCED
// instance: the objective depends on an assignment only through per-replica
// column sums, so homogeneous-mask cohorts achieve exactly the ungrouped
// optimum and the reduced reference IS the ungrouped reference (see the
// package comment; running Frank-Wolfe over 10k raw rows would measure the
// same number a hundred times slower).
func TestCohortScale10k(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-client scenario skipped in -short mode")
	}
	prob := regional(t, 9, 10000, 10, 50)
	g, err := Group(prob, Options{})
	if err != nil {
		t.Fatalf("Group: %v", err)
	}
	if g.Ratio() < 10 {
		t.Fatalf("compression ratio %.1fx < 10x at 10k clients / 50 regions (K=%d)", g.Ratio(), g.K())
	}
	t.Logf("grouped %d clients into %d cohorts (%.0fx)", g.C(), g.K(), g.Ratio())

	s := lddm.New()
	s.MaxIters = 400
	res, err := s.Solve(g.Reduced())
	if err != nil {
		t.Fatalf("LDDM on reduced: %v", err)
	}
	x, err := g.Disaggregate(res.Assignment)
	if err != nil {
		t.Fatalf("Disaggregate: %v", err)
	}
	if err := g.Check(x, 1e-6); err != nil {
		t.Fatal(err)
	}
	ref, err := central.NewFrankWolfe().Solve(g.Reduced())
	if err != nil {
		t.Fatalf("Frank-Wolfe on reduced: %v", err)
	}
	gap := g.Gap(x, ref.Objective)
	t.Logf("10k-client cohort objective %.4f vs reference %.4f: gap %.3f%%",
		prob.Cost(x), ref.Objective, 100*gap)
	if gap > 0.05 {
		t.Fatalf("optimality gap %.2f%% exceeds 5%%", 100*gap)
	}
}
