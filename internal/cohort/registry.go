package cohort

import (
	"fmt"
	"sort"

	"edr/internal/opt"
)

// Registry persists cohort identity across rounds. Grouping alone is
// stateless: cohort k of round t and cohort k of round t+1 are unrelated
// (first-seen client order decides numbering), so nothing cohort-scoped —
// warm duals, cached masks, sparsity views — can be carried between
// rounds. The registry fixes that by interning each cohort's byte key
// (feasibility mask + quantized latency classes) into a stable ID that is
// assigned once and never reused, ordering every grouping it produces by
// stable ID. Two consequences the runtime builds on:
//
//   - Across quiet rounds the client→cohort partition, the cohort order,
//     the reduced mask, and the primed Sparsity are pointer-identical: the
//     registry detects that the per-client stable-ID vector is unchanged
//     and re-emits the cached structures with only the reduced demand
//     vector recomputed (O(|C|)), so grouping amortizes to near zero.
//   - When membership does drift, surviving cohorts keep their relative
//     order (stable IDs are monotone), so row-aligned state such as warm
//     starts degrades gracefully instead of being shuffled.
//
// The registry assumes the caller presents clients and replicas in a
// stable order across rounds (the runtime sorts request rows by client
// address and replica columns by address); a permuted column order changes
// every byte key and simply misses the cache — correctness is unaffected.
// A Registry is not safe for concurrent use.
type Registry struct {
	quantum float64
	ids     map[string]int // interned cohort key → stable ID
	next    int

	// Cached last grouping, keyed by the per-client stable-ID vector.
	stableOf []int
	n        int
	members  [][]int
	of       []int
	redMask  [][]bool
	redLat   [][]float64
	sparse   *opt.Sparsity
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{ids: make(map[string]int)}
}

// Reset drops all interned identity and cached structures — the runtime
// calls it on membership epoch changes, where column order (and with it
// every byte key) shifts.
func (r *Registry) Reset() {
	r.ids = make(map[string]int)
	r.next = 0
	r.quantum = 0
	r.stableOf = nil
	r.n = 0
	r.members = nil
	r.of = nil
	r.redMask = nil
	r.redLat = nil
	r.sparse = nil
}

// Cohorts returns how many distinct cohort identities the registry has
// interned over its lifetime.
func (r *Registry) Cohorts() int { return r.next }

// Group is the registry-backed replacement for the package-level Group:
// same grouping semantics, but cohorts are ordered by stable ID and quiet
// rounds reuse the cached partition, reduced mask, representative
// latencies, and primed Sparsity. The boolean reports a cache hit. The
// returned Grouping always disaggregates against prob (fresh demands);
// on a hit the representative latencies are the cached round's — members
// share latency buckets by construction, so the drift is below one
// quantum and invisible to the solve, which reads only the mask.
func (r *Registry) Group(prob *opt.Problem, opts Options) (*Grouping, bool, error) {
	if prob == nil || prob.System == nil {
		return nil, false, fmt.Errorf("cohort: problem has no system")
	}
	c, n := prob.C(), prob.N()
	if c == 0 || n == 0 {
		return nil, false, fmt.Errorf("cohort: empty problem (%d clients, %d replicas)", c, n)
	}
	quantum := r.quantum
	if quantum <= 0 {
		quantum = opts.Quantum
		if quantum <= 0 {
			quantum = prob.MaxLatency / 4
		}
	}
	mask := prob.Allowed()
	var keys []string
	var members [][]int
	for {
		_, members, keys = groupKeyed(prob, mask, quantum)
		if opts.MaxCohorts <= 0 || len(members) <= opts.MaxCohorts || quantum >= prob.MaxLatency {
			break
		}
		quantum *= 2
		if quantum > prob.MaxLatency {
			quantum = prob.MaxLatency
		}
	}
	if quantum != r.quantum {
		// The keyspace changed (first round, or MaxCohorts forced a
		// coarser quantum): previously interned IDs describe different
		// buckets, so identity restarts.
		r.ids = make(map[string]int)
		r.next = 0
		r.quantum = quantum
		r.stableOf = nil
	}

	// Intern keys and reorder cohorts by stable ID rank: surviving cohorts
	// keep their relative positions, new ones slot in at the end.
	stable := make([]int, len(members))
	for k, key := range keys {
		id, ok := r.ids[key]
		if !ok {
			id = r.next
			r.next++
			r.ids[key] = id
		}
		stable[k] = id
	}
	perm := make([]int, len(members))
	for i := range perm {
		perm[i] = i
	}
	sort.Slice(perm, func(a, b int) bool { return stable[perm[a]] < stable[perm[b]] })
	ordMembers := make([][]int, len(members))
	ordOf := make([]int, c)
	for rank, k := range perm {
		ordMembers[rank] = members[k]
		for _, cl := range members[k] {
			ordOf[cl] = rank
		}
	}
	stableOf := make([]int, c)
	for cl, k := range ordOf {
		stableOf[cl] = stable[perm[k]]
	}

	if r.cacheHit(stableOf, n) {
		g := &Grouping{orig: prob, members: r.members, of: r.of, quantum: quantum}
		demands := make([]float64, len(r.members))
		for k, mem := range r.members {
			for _, cl := range mem {
				demands[k] += prob.Demands[cl]
			}
		}
		red := &opt.Problem{
			System:     prob.System,
			Demands:    demands,
			Latency:    r.redLat,
			MaxLatency: prob.MaxLatency,
		}
		red.PrimeMask(r.redMask, r.sparse)
		g.reduced = red
		return g, true, nil
	}

	g := &Grouping{orig: prob, members: ordMembers, of: ordOf, quantum: quantum}
	g.reduced = g.buildReduced(mask)
	r.stableOf = stableOf
	r.n = n
	r.members = ordMembers
	r.of = ordOf
	r.redMask = g.reduced.Allowed()
	r.redLat = g.reduced.Latency
	r.sparse = g.reduced.Sparsity()
	return g, false, nil
}

// cacheHit reports whether the cached grouping matches the new per-client
// stable-ID vector exactly (same clients, same cohorts, same order).
func (r *Registry) cacheHit(stableOf []int, n int) bool {
	if r.members == nil || r.n != n || len(r.stableOf) != len(stableOf) {
		return false
	}
	for i, id := range stableOf {
		if r.stableOf[i] != id {
			return false
		}
	}
	return true
}

// groupKeyed is groupAt plus the cohort key strings (first-seen order),
// which the registry interns for stable identity.
func groupKeyed(prob *opt.Problem, mask [][]bool, quantum float64) ([]int, [][]int, []string) {
	c, n := prob.C(), prob.N()
	of := make([]int, c)
	var members [][]int
	var keys []string
	index := make(map[string]int)
	key := make([]byte, n)
	for i := 0; i < c; i++ {
		for j := 0; j < n; j++ {
			if !mask[i][j] {
				key[j] = 0xFF // infeasible class
				continue
			}
			b := int(prob.Latency[i][j] / quantum)
			if b > 0xFE {
				b = 0xFE
			}
			key[j] = byte(b)
		}
		k, ok := index[string(key)]
		if !ok {
			k = len(members)
			index[string(key)] = k
			members = append(members, nil)
			keys = append(keys, string(key))
		}
		of[i] = k
		members[k] = append(members[k], i)
	}
	return of, members, keys
}
