package cohort

import (
	"testing"

	"edr/internal/cdpsm"
	"edr/internal/opt"
	"edr/internal/probgen"
	"edr/internal/sim"
)

// benchInstance is the 10k-client regional instance the cohort-scale
// benchmarks share (50 regions, 10 replicas, per-client demands sized so
// total demand stays within fleet bandwidth).
func benchInstance(b *testing.B) *opt.Problem {
	b.Helper()
	prob, err := probgen.MustFeasible(sim.NewRand(9), probgen.Spec{
		Clients:  10000,
		Replicas: 10,
		Regions:  50,
		DemandLo: 0.005,
		DemandHi: 0.05,
	})
	if err != nil {
		b.Fatal(err)
	}
	return prob
}

// BenchmarkCohortScale is the acceptance benchmark for client-scale
// sharding: one full round-equivalent solve at 10k clients, ungrouped vs
// through the cohort layer (group + reduced solve + disaggregate). The
// cohort path must be ≥10x faster; in practice it is two orders of
// magnitude (compression is ~70x and CDPSM's per-iteration work is linear
// in rows).
func BenchmarkCohortScale(b *testing.B) {
	prob := benchInstance(b)
	mkSolver := func() *cdpsm.Solver {
		s := cdpsm.New()
		s.MaxIters = 25
		return s
	}
	b.Run("ungrouped", func(b *testing.B) {
		s := mkSolver()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.Solve(prob); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cohorted", func(b *testing.B) {
		s := mkSolver()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			g, err := Group(prob, Options{})
			if err != nil {
				b.Fatal(err)
			}
			res, err := s.Solve(g.Reduced())
			if err != nil {
				b.Fatal(err)
			}
			if _, err := g.Disaggregate(res.Assignment); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCohortGroup isolates the aggregation itself — the price of
// admission every cohorted round pays before solving.
func BenchmarkCohortGroup(b *testing.B) {
	prob := benchInstance(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Group(prob, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
