package cohort

import (
	"math"
	"testing"

	"edr/internal/model"
	"edr/internal/opt"
	"edr/internal/sim"
)

// FuzzSparseCohortEquiv pins the packed cohort adapters to their dense
// counterparts on adversarial masks: whatever instance and solver output
// the fuzzer invents, DisaggregatePacked must be bitwise the full-sparsity
// gather of Disaggregate, AggregateRowsPacked bitwise the reduced-sparsity
// gather of AggregateRows, AggregateDualsInto bitwise AggregateDuals — and
// the packed result must conserve every client's demand (row sums match
// the dense invariant exactly, bit for bit). This is the contract that
// lets core run cohorted rounds packed end to end without a behavioral
// flag: the two paths are indistinguishable on the feasible support.
func FuzzSparseCohortEquiv(f *testing.F) {
	f.Add(uint64(1), uint8(20), uint8(2), 0.0, 0.3)
	f.Add(uint64(42), uint8(63), uint8(3), 0.0018, 1e6)
	f.Add(uint64(7), uint8(0), uint8(0), 1e-12, -2.0)
	f.Add(uint64(99), uint8(255), uint8(7), 1e9, 0.0)
	f.Fuzz(func(t *testing.T, seed uint64, nc, nr uint8, quantum, perturb float64) {
		if math.IsNaN(quantum) || math.IsInf(quantum, 0) {
			return
		}
		if math.IsNaN(perturb) || math.IsInf(perturb, 0) || math.Abs(perturb) > 1e9 {
			return
		}
		clients := 1 + int(nc)%64
		replicas := 2 + int(nr)%6
		r := sim.NewRand(seed)

		reps := make([]model.Replica, replicas)
		for j := range reps {
			rep := model.NewReplica("replica"+string(rune('1'+j)), r.Range(1, 20))
			rep.Bandwidth = 1e6
			reps[j] = rep
		}
		sys, err := model.NewSystem(reps)
		if err != nil {
			t.Fatalf("system: %v", err)
		}
		const maxT = 0.0018
		latency := opt.NewMatrix(clients, replicas)
		demands := make([]float64, clients)
		for c := 0; c < clients; c++ {
			if r.Float64() < 0.85 {
				demands[c] = r.Range(0, 5) // keep zero-demand clients in play
			}
			for j := 0; j < replicas; j++ {
				switch {
				case r.Float64() < 0.25:
					latency[c][j] = r.Range(2*maxT, 10*maxT) // infeasible link
				case r.Float64() < 0.1:
					latency[c][j] = maxT // exactly on the bound
				default:
					latency[c][j] = r.Range(0, maxT)
				}
			}
			latency[c][0] = r.Range(0, 0.9*maxT) // every client stays feasible
		}
		prob := &opt.Problem{System: sys, Demands: demands, Latency: latency, MaxLatency: maxT}
		if err := prob.Validate(); err != nil {
			t.Fatalf("fuzz instance invalid: %v", err)
		}

		g, err := Group(prob, Options{Quantum: math.Abs(quantum), MaxCohorts: (int(nc) % 5) * 10})
		if err != nil {
			t.Fatalf("Group: %v", err)
		}
		fullSp, redSp := g.Sparse()

		// Adversarial "solver output": scaled, smeared (including onto
		// masked-out links — the dense adapter must drop that junk, the
		// packed one never sees it, and the results must still agree).
		xk, err := g.Reduced().UniformStart()
		if err != nil {
			t.Fatalf("reduced UniformStart: %v", err)
		}
		for k := range xk {
			for j := range xk[k] {
				xk[k][j] = xk[k][j]*(1+perturb) + perturb*r.Float64()
			}
		}

		dense, err := g.Disaggregate(xk)
		if err != nil {
			t.Fatalf("Disaggregate rejected finite input: %v", err)
		}
		vk := redSp.Gather(nil, xk)
		packed, err := g.DisaggregatePacked(vk, nil)
		if err != nil {
			t.Fatalf("DisaggregatePacked rejected finite input: %v", err)
		}
		wantPk := fullSp.Gather(nil, dense)
		for s := range packed {
			if math.Float64bits(packed[s]) != math.Float64bits(wantPk[s]) {
				t.Fatalf("disaggregate slot %d: packed %x dense %x",
					s, math.Float64bits(packed[s]), math.Float64bits(wantPk[s]))
			}
		}

		// Exact row-sum conservation: the packed row reproduces the dense
		// row bit for bit, so its sum (slots in column order, the same
		// order the dense invariant was proven in) matches exactly.
		for c := 0; c < g.C(); c++ {
			sumPk, sumDense := 0.0, 0.0
			for s := fullSp.RowStart[c]; s < fullSp.RowStart[c+1]; s++ {
				sumPk += packed[s]
			}
			for _, v := range dense[c] {
				sumDense += v
			}
			if math.Float64bits(sumPk) != math.Float64bits(sumDense) {
				t.Fatalf("client %d: packed row sum %g, dense %g", c, sumPk, sumDense)
			}
		}

		// The scattered packed result passes the same runtime contract the
		// dense path is held to.
		x := opt.NewMatrix(g.C(), prob.N())
		fullSp.Scatter(x, packed)
		if err := g.Check(x, 1e-6); err != nil {
			t.Fatal(err)
		}

		// Aggregation equivalence on the disaggregated matrix (the shape
		// warm starts feed through this path).
		aggDense := g.AggregateRows(dense)
		aggWant := redSp.Gather(nil, aggDense)
		aggPk := g.AggregateRowsPacked(dense, nil)
		for s := range aggPk {
			if math.Float64bits(aggPk[s]) != math.Float64bits(aggWant[s]) {
				t.Fatalf("aggregate slot %d: packed %x dense %x",
					s, math.Float64bits(aggPk[s]), math.Float64bits(aggWant[s]))
			}
		}

		mu := make([]float64, clients)
		for i := range mu {
			mu[i] = r.Range(-3, 3)
		}
		duWant := g.AggregateDuals(mu)
		duGot := g.AggregateDualsInto(mu, make([]float64, g.K()))
		for k := range duWant {
			if math.Float64bits(duGot[k]) != math.Float64bits(duWant[k]) {
				t.Fatalf("dual %d: %g vs %g", k, duGot[k], duWant[k])
			}
		}
	})
}
