package cdpsm

import (
	"math"
	"testing"

	"edr/internal/opt"
	"edr/internal/probgen"
	"edr/internal/sim"
	"edr/internal/solver"
)

// maskedInstance draws a feasible wide-area instance whose latency mask has
// structural zeros (retrying until it does).
func maskedInstance(t *testing.T, r *sim.Rand, clients, replicas int) *opt.Problem {
	t.Helper()
	for attempt := 0; attempt < 50; attempt++ {
		prob, err := probgen.MustFeasible(r, probgen.Spec{Clients: clients, Replicas: replicas, Geo: true})
		if err != nil {
			t.Fatal(err)
		}
		if !prob.Sparsity().Full {
			return prob
		}
	}
	t.Fatal("no masked instance in 50 draws")
	return nil
}

func TestCDPSMAutoOnFullIsDenseBitForBit(t *testing.T) {
	// On a fully-feasible instance SparseAuto must take the dense path, so
	// Auto and Off agree bit-for-bit by construction.
	r := sim.NewRand(31)
	prob, err := probgen.MustFeasible(r, probgen.Spec{Clients: 6, Replicas: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !prob.Sparsity().Full {
		t.Skip("cluster instance unexpectedly masked")
	}
	auto, err := (&Solver{Sparse: opt.SparseAuto}).Solve(prob)
	if err != nil {
		t.Fatal(err)
	}
	off, err := (&Solver{Sparse: opt.SparseOff}).Solve(prob)
	if err != nil {
		t.Fatal(err)
	}
	if auto.Iterations != off.Iterations || auto.Objective != off.Objective {
		t.Fatalf("Auto (iters=%d obj=%v) != Off (iters=%d obj=%v)",
			auto.Iterations, auto.Objective, off.Iterations, off.Objective)
	}
	for c := range auto.Assignment {
		for n := range auto.Assignment[c] {
			if auto.Assignment[c][n] != off.Assignment[c][n] {
				t.Fatalf("assignment differs at [%d][%d]", c, n)
			}
		}
	}
}

func TestCDPSMSparseMatchesDenseMasked(t *testing.T) {
	// Dense and sparse CDPSM run the same iteration on the same local sets;
	// only the finite-sweep projection iterates differ (the packed projector
	// restricts the column halfspace to the support). Both runs therefore
	// land on the same optimum up to solver tolerance.
	r := sim.NewRand(37)
	for trial := 0; trial < 4; trial++ {
		prob := maskedInstance(t, r, 6, 4)
		dense, err := (&Solver{Sparse: opt.SparseOff}).Solve(prob)
		if err != nil {
			t.Fatalf("trial %d dense: %v", trial, err)
		}
		sparse, err := (&Solver{Sparse: opt.SparseAuto}).Solve(prob)
		if err != nil {
			t.Fatalf("trial %d sparse: %v", trial, err)
		}
		if err := solver.Verify(prob, sparse, 1e-4); err != nil {
			t.Fatalf("trial %d: sparse result infeasible: %v", trial, err)
		}
		gap := math.Abs(dense.Objective - sparse.Objective)
		if gap > 1e-9*(1+math.Abs(dense.Objective)) {
			t.Fatalf("trial %d: objective gap %g (dense %v sparse %v)",
				trial, gap, dense.Objective, sparse.Objective)
		}
	}
}

func TestCDPSMForceOnFullToleranceEquivalent(t *testing.T) {
	// SparseForce runs the packed kernels even on a full mask; incremental
	// column sums change FP summation order, so equivalence is tolerance-
	// bounded rather than bitwise.
	r := sim.NewRand(41)
	prob, err := probgen.MustFeasible(r, probgen.Spec{Clients: 5, Replicas: 3})
	if err != nil {
		t.Fatal(err)
	}
	dense, err := (&Solver{Sparse: opt.SparseOff}).Solve(prob)
	if err != nil {
		t.Fatal(err)
	}
	forced, err := (&Solver{Sparse: opt.SparseForce}).Solve(prob)
	if err != nil {
		t.Fatal(err)
	}
	if err := solver.Verify(prob, forced, 1e-4); err != nil {
		t.Fatal(err)
	}
	gap := math.Abs(dense.Objective - forced.Objective)
	if gap > 1e-9*(1+math.Abs(dense.Objective)) {
		t.Fatalf("objective gap %g (dense %v forced %v)", gap, dense.Objective, forced.Objective)
	}
}

func TestCDPSMSparseParallelSerialBitForBit(t *testing.T) {
	// Each agent writes only its own packed estimate and the projector's
	// incremental sums are chunking-independent, so fanning the agents
	// across cores must not change a single bit.
	r := sim.NewRand(43)
	prob := maskedInstance(t, r, 12, 5)
	serial, err := (&Solver{Sparse: opt.SparseForce, Parallelism: -1, MaxIters: 300}).Solve(prob)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := (&Solver{Sparse: opt.SparseForce, Parallelism: 4, MaxIters: 300}).Solve(prob)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Iterations != parallel.Iterations {
		t.Fatalf("iterations differ: %d vs %d", serial.Iterations, parallel.Iterations)
	}
	for c := range serial.Assignment {
		for n := range serial.Assignment[c] {
			if serial.Assignment[c][n] != parallel.Assignment[c][n] {
				t.Fatalf("assignment differs at [%d][%d]: %v vs %v",
					c, n, serial.Assignment[c][n], parallel.Assignment[c][n])
			}
		}
	}
}

func TestCDPSMSparseCommCountsNNZ(t *testing.T) {
	r := sim.NewRand(47)
	prob := maskedInstance(t, r, 8, 4)
	sp := prob.Sparsity()
	res, err := (&Solver{Sparse: opt.SparseForce, MaxIters: 50}).Solve(prob)
	if err != nil {
		t.Fatal(err)
	}
	perIter := res.Comm.Scalars / res.Iterations
	want := prob.N() * (prob.N() - 1) * sp.NNZ()
	if perIter != want {
		t.Fatalf("scalars/iteration = %d, want %d (N·(N−1)·nnz)", perIter, want)
	}
	if sp.NNZ() >= prob.C()*prob.N() && perIter >= prob.N()*(prob.N()-1)*prob.C()*prob.N() {
		t.Fatal("sparse comm accounting no cheaper than dense on a masked instance")
	}
}
