// Package cdpsm implements the consensus-based distributed projected
// subgradient method (paper Algorithm 1, after Nedić, Ozdaglar & Parrilo,
// "Constrained consensus and optimization in multi-agent networks", IEEE
// TAC 2010), adapted to the EDR replica-selection problem.
//
// Every replica (agent) i keeps its own estimate P^i of the *entire*
// solution matrix. One iteration per agent:
//
//  1. collect the current estimates P^j of all other replicas,
//  2. consensus:  V^i = Σ_j a_j · P^j   with weights Σ a_j = 1,
//  3. gradient step on the local objective E_i (which depends only on
//     column i of P):  P^i ← V^i − d_k · ∇E_i(V^i),
//  4. projection onto the agent's local constraint set P_i.
//
// The local constraint sets used here are
//
//	P_i = { P : Σ_n p_{c,n} = R_c ∀c (box/mask) } ∩ { Σ_c p_{c,i} ≤ B_i }
//
// — every agent enforces the shared demand constraints plus its *own*
// capacity; the intersection over all agents is exactly the global
// feasible region of Eq. 2, the setting in which the N-O-P method
// provably converges to a common minimizer of Σ_i E_i.
//
// Because the objective is differentiable (a degree-γ polynomial), the
// gradient is used as the subgradient, as the paper notes.
package cdpsm

import (
	"fmt"
	"math"

	"edr/internal/opt"
	"edr/internal/solver"
)

// Solver runs CDPSM to convergence on one problem instance, simulating the
// N cooperating replicas in-process. (The live message-passing deployment
// of the same iteration is in internal/core; this solver is the
// algorithmic engine both share.)
type Solver struct {
	// Step is the step size d_k; nil means the paper's constant step,
	// 0.05.
	Step opt.StepRule
	// MaxIters bounds consensus iterations; 0 means 3000.
	MaxIters int
	// Tol declares convergence when no agent's estimate moved more than
	// Tol (Frobenius) in one iteration; 0 means 1e-6.
	Tol float64
	// Weights are the consensus weights a_j (length |N|, summing to 1).
	// Nil means uniform 1/|N|. Ignored when Topology is TopologyRing.
	Weights []float64
	// ProjectSweeps bounds the Dykstra sweeps per local projection;
	// 0 means 60 (local projections need not be exact — the method
	// tolerates inexact projection, and the final result is polished).
	ProjectSweeps int
	// Topology selects the gossip pattern. TopologyComplete (default) is
	// the paper's all-to-all exchange (O(|C|·|N|³) scalars per iteration);
	// TopologyRing averages only with the two ring neighbors using the
	// doubly stochastic weights (¼, ½, ¼) — matching EDR's ring structure
	// and cutting communication to O(|C|·|N|²) at the price of slower
	// consensus (information diffuses around the ring in O(|N|) steps).
	Topology Topology
	// Parallelism fans the per-agent consensus+gradient+projection steps
	// across cores: > 0 pins the worker count, 0 sizes from GOMAXPROCS,
	// < 0 forces serial. Parallel and serial runs are bit-identical —
	// each agent writes only its own estimate.
	Parallelism int
	// Sparse selects the packed sparse kernels (CSR estimates, incremental
	// column sums in the local projections). The default, opt.SparseAuto,
	// dispatches on the instance: masked instances run sparse, fully-
	// feasible ones keep the dense kernels bit-for-bit. opt.SparseOff is
	// the dense baseline; opt.SparseForce runs sparse everywhere
	// (tolerance-equivalent on full instances — the incremental sums
	// change floating-point summation order).
	Sparse opt.SparseMode
}

// Topology is a CDPSM gossip pattern.
type Topology int

const (
	// TopologyComplete gossips with every other replica each iteration.
	TopologyComplete Topology = iota
	// TopologyRing gossips only with the two ring neighbors.
	TopologyRing
)

// New returns a CDPSM solver with the defaults above.
func New() *Solver { return &Solver{} }

// Name implements solver.Solver.
func (s *Solver) Name() string { return "CDPSM" }

// DefaultStep is the constant step size used when none is configured.
const DefaultStep = 0.05

func (s *Solver) params(n int) (step opt.StepRule, maxIters int, tol float64, weights []float64, sweeps int, err error) {
	step = s.Step
	if step == nil {
		step = opt.ConstantStep(DefaultStep)
	}
	maxIters = s.MaxIters
	if maxIters <= 0 {
		maxIters = 3000
	}
	tol = s.Tol
	if tol <= 0 {
		tol = 1e-6
	}
	weights = s.Weights
	if weights == nil {
		weights = make([]float64, n)
		for i := range weights {
			weights[i] = 1 / float64(n)
		}
	}
	if len(weights) != n {
		return nil, 0, 0, nil, 0, fmt.Errorf("cdpsm: %d weights for %d replicas", len(weights), n)
	}
	sum := 0.0
	for _, w := range weights {
		if w < 0 {
			return nil, 0, 0, nil, 0, fmt.Errorf("cdpsm: negative consensus weight %g", w)
		}
		sum += w
	}
	if math.Abs(sum-1) > 1e-9 {
		return nil, 0, 0, nil, 0, fmt.Errorf("cdpsm: consensus weights sum to %g, want 1", sum)
	}
	sweeps = s.ProjectSweeps
	if sweeps <= 0 {
		sweeps = 60
	}
	return step, maxIters, tol, weights, sweeps, nil
}

// agentState is one replica's view.
type agentState struct {
	estimate [][]float64
}

// LocalProjection builds agent i's constraint-set projection P_i.
func LocalProjection(prob *opt.Problem, agent int, sweeps int) opt.SetProjection {
	return LocalProjectionPar(prob, agent, sweeps, nil)
}

// LocalProjectionPar is LocalProjection with the per-client row sweep
// fanned over par (nil = serial, identical results). The returned closure
// owns reused scratch, so it is safe for repeated sequential calls but
// not for concurrent calls of the same closure.
func LocalProjectionPar(prob *opt.Problem, agent int, sweeps int, par *opt.Parallel) opt.SetProjection {
	mask := prob.Allowed()
	caps := prob.Caps()
	par = par.Gate(prob.C() * prob.N())
	rowSet := func(x [][]float64) error {
		return par.ForErr(len(x), func(_, lo, hi int) error {
			for c := lo; c < hi; c++ {
				if err := opt.ProjectMaskedCappedSimplex(x[c], caps[c], mask[c], prob.Demands[c]); err != nil {
					return fmt.Errorf("cdpsm: agent %d client %d: %w", agent, c, err)
				}
			}
			return nil
		})
	}
	col := make([]float64, prob.C()) // hoisted: reused across every sweep
	colSet := func(x [][]float64) error {
		for c := range x {
			col[c] = x[c][agent]
		}
		opt.ProjectHalfspaceSumLE(col, prob.System.Replicas[agent].Bandwidth)
		for c := range x {
			x[c][agent] = col[c]
		}
		return nil
	}
	return func(x [][]float64) error {
		_, err := opt.Dykstra(x, []opt.SetProjection{rowSet, colSet}, opt.DykstraOptions{MaxSweeps: sweeps, Tol: 1e-9})
		return err
	}
}

// LocalGradient writes agent i's ∇E_i(v) into g: only column i is nonzero,
// with value u_i·(α_i + β_i·γ_i·(Σ_c v_{c,i})^{γ_i−1}).
func LocalGradient(prob *opt.Problem, agent int, v, g [][]float64) {
	load := 0.0
	for c := range v {
		load += v[c][agent]
	}
	if load < 0 {
		load = 0
	}
	marginal := prob.System.Replicas[agent].MarginalCost(load)
	for c := range g {
		for n := range g[c] {
			g[c][n] = 0
		}
		g[c][agent] = marginal
	}
}

// Solve implements solver.Solver.
func (s *Solver) Solve(prob *opt.Problem) (*solver.Result, error) {
	if err := prob.Validate(); err != nil {
		return nil, err
	}
	if err := opt.CheckFeasible(prob); err != nil {
		return nil, err
	}
	if sp := prob.Sparsity(); s.Sparse.Enabled(sp) {
		return s.solveSparse(prob, sp)
	}
	nAgents := prob.N()
	step, maxIters, tol, weights, sweeps, err := s.params(nAgents)
	if err != nil {
		return nil, err
	}
	c, n := prob.C(), prob.N()
	// Fan the per-agent work across cores: each agent's consensus step,
	// gradient step and projection write only that agent's next[i] (plus
	// per-chunk scratch), so parallel and serial runs are bit-identical —
	// the gate keeps test-sized instances on the serial path.
	par := opt.NewParallel(s.Parallelism).Gate(c * n * nAgents)
	chunks := par.Chunks(nAgents)

	// Initialize every agent from the uniform start projected into its
	// local set (paper line 1: "Set the unit price of replica i" — prices
	// live in prob; estimates start identical).
	start, err := prob.UniformStart()
	if err != nil {
		return nil, err
	}
	agents := make([]agentState, nAgents)
	projections := make([]opt.SetProjection, nAgents)
	for i := range agents {
		agents[i].estimate = opt.Clone(start)
		projections[i] = LocalProjection(prob, i, sweeps)
	}
	if err := par.ForErr(nAgents, func(_, lo, hi int) error {
		for i := lo; i < hi; i++ {
			if err := projections[i](agents[i].estimate); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}

	res := &solver.Result{}
	grads := make([][][]float64, chunks)
	conses := make([][][]float64, chunks)
	for ch := range grads {
		grads[ch] = opt.NewMatrix(c, n)
		conses[ch] = opt.NewMatrix(c, n)
	}
	avg := opt.NewMatrix(c, n)
	moved := make([]float64, nAgents)
	uw := make([]float64, nAgents) // hoisted uniform-mean weights, reused every iteration
	next := make([][][]float64, nAgents)
	for i := range next {
		next[i] = opt.NewMatrix(c, n)
	}
	mats := make([][][]float64, nAgents)

	for k := 1; k <= maxIters; k++ {
		// Snapshot all estimates (messages: each agent pulls everyone
		// else's full matrix).
		for i := range agents {
			mats[i] = agents[i].estimate
		}
		d := step(k)
		if err := par.ForErr(nAgents, func(chunk, lo, hi int) error {
			grad, consensus := grads[chunk], conses[chunk]
			for i := lo; i < hi; i++ {
				// Consensus step V^i (Eq. 3). Complete topology: the general
				// weighted average Σ_j a_j P^j (with uniform weights every
				// agent computes the same average). Ring topology: the
				// ¼/½/¼ neighbor average, whose weight matrix is doubly
				// stochastic over the ring graph.
				s.consensusFor(i, weights, mats, consensus)
				// Gradient step on the local objective.
				LocalGradient(prob, i, consensus, grad)
				opt.Copy(next[i], consensus)
				opt.AXPY(next[i], -d, grad)
				// Project onto the local constraint set.
				if err := projections[i](next[i]); err != nil {
					return err
				}
				moved[i] = opt.Dist(next[i], agents[i].estimate)
			}
			return nil
		}); err != nil {
			return nil, err
		}
		maxMove := 0.0
		for _, m := range moved {
			if m > maxMove {
				maxMove = m
			}
		}
		for i := range agents {
			opt.Copy(agents[i].estimate, next[i])
		}
		// Communication accounting for this iteration (paper §III-D.1):
		// complete topology has each of the |N| agents receive |N|−1
		// estimates of |C|·|N| scalars → O(|C|·|N|³) per iteration
		// system-wide; the ring variant receives only 2.
		peers := nAgents - 1
		if s.Topology == TopologyRing && nAgents > 2 {
			peers = 2
		}
		res.Comm.Messages += nAgents * peers
		res.Comm.Scalars += nAgents * peers * c * n
		res.Iterations = k

		// Record the objective of the global average estimate (the common
		// point the agents are converging to).
		uniformMean(avg, uw, mats)
		res.History = append(res.History, prob.Cost(avg))

		if maxMove <= tol {
			res.Converged = true
			break
		}
	}

	// Final solution: the consensus average of the agents' estimates,
	// polished onto the exact feasible region.
	for i := range agents {
		mats[i] = agents[i].estimate
	}
	final := opt.NewMatrix(c, n)
	uniformMean(final, uw, mats)
	if err := opt.ProjectFeasibleMode(prob, final, 1e-6, par, s.Sparse); err != nil {
		return nil, fmt.Errorf("cdpsm: final polish: %w", err)
	}
	res.Assignment = final
	res.Objective = prob.Cost(final)
	return res, nil
}

// consensusFor computes agent i's consensus average into dst.
func (s *Solver) consensusFor(i int, weights []float64, mats [][][]float64, dst [][]float64) {
	n := len(mats)
	if s.Topology == TopologyRing && n > 2 {
		prev := mats[(i-1+n)%n]
		next := mats[(i+1)%n]
		opt.Fill(dst, 0)
		opt.AXPY(dst, 0.25, prev)
		opt.AXPY(dst, 0.5, mats[i])
		opt.AXPY(dst, 0.25, next)
		return
	}
	opt.Mean(dst, weights, mats...)
}

// uniformMean averages all estimates with equal weight into dst — the
// common reference point used for history and the final answer. w is the
// caller's reused weights buffer (len(mats)), filled here.
func uniformMean(dst [][]float64, w []float64, mats [][][]float64) {
	for i := range w {
		w[i] = 1 / float64(len(mats))
	}
	opt.Mean(dst, w, mats...)
}
