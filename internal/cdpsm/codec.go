package cdpsm

import "edr/internal/transport"

// Compact binary codecs (transport binary body v1) for the CDPSM verbs.
// The estimate exchange is the round's dominant traffic — every step pulls
// a full |C|×|N| matrix from each peer — so all five bodies speak the
// binary codec and the small requests carry it too: a reply mirrors its
// request's codec (transport.NewReply), so a binary EstimateBody is what
// makes the matrix-bearing EstimateReply come back binary. Per the wire
// convention, every request body leads with its u32 LE round id.

func (b StepBody) MarshalBinary() ([]byte, error) {
	out := transport.AppendUint32(nil, uint32(b.Round))
	out = transport.AppendUint32(out, uint32(b.Iter))
	return transport.AppendFloat64(out, b.Step), nil
}

func (b *StepBody) UnmarshalBinary(data []byte) error {
	round, data, err := transport.ReadUint32(data)
	if err != nil {
		return err
	}
	iter, data, err := transport.ReadUint32(data)
	if err != nil {
		return err
	}
	step, _, err := transport.ReadFloat64(data)
	if err != nil {
		return err
	}
	b.Round, b.Iter, b.Step = int(round), int(iter), step
	return nil
}

func (b StepReply) MarshalBinary() ([]byte, error) {
	return transport.AppendFloat64(nil, b.Moved), nil
}

func (b *StepReply) UnmarshalBinary(data []byte) error {
	moved, _, err := transport.ReadFloat64(data)
	if err != nil {
		return err
	}
	b.Moved = moved
	return nil
}

func (b EstimateBody) MarshalBinary() ([]byte, error) {
	out := transport.AppendUint32(nil, uint32(b.Round))
	return transport.AppendUint32(out, uint32(int32(b.Base))), nil
}

func (b *EstimateBody) UnmarshalBinary(data []byte) error {
	round, data, err := transport.ReadUint32(data)
	if err != nil {
		return err
	}
	base, _, err := transport.ReadUint32(data)
	if err != nil {
		return err
	}
	b.Round, b.Base = int(round), int(int32(base))
	return nil
}

// EstimateReply rides the kinded matrix frames of transport v2: the
// chooser picks the cheapest of full, sparse (masked instances) and delta
// (consecutive-iteration pulls) layouts; Base supplies the delta
// reference on both sides and is itself never shipped.
func (b EstimateReply) MarshalBinary() ([]byte, error) {
	out := transport.AppendUint32(nil, uint32(int32(b.Iter)))
	return transport.AppendMatrixKinded(out, b.Estimate, b.Base), nil
}

func (b *EstimateReply) UnmarshalBinary(data []byte) error {
	iter, data, err := transport.ReadUint32(data)
	if err != nil {
		return err
	}
	m, _, err := transport.ReadMatrixKinded(data, b.Base)
	if err != nil {
		return err
	}
	b.Iter = int(int32(iter))
	b.Estimate = m
	return nil
}

func (b CommitBody) MarshalBinary() ([]byte, error) {
	out := transport.AppendUint32(nil, uint32(b.Round))
	return transport.AppendUint32(out, uint32(b.Iter)), nil
}

func (b *CommitBody) UnmarshalBinary(data []byte) error {
	round, data, err := transport.ReadUint32(data)
	if err != nil {
		return err
	}
	iter, _, err := transport.ReadUint32(data)
	if err != nil {
		return err
	}
	b.Round, b.Iter = int(round), int(iter)
	return nil
}
