package cdpsm

import (
	"context"
	"fmt"
	"sync"

	"edr/internal/engine"
	"edr/internal/opt"
	"edr/internal/transport"
)

// CDPSM wire protocol. The initiator drives the synchronous iteration of
// Algorithm 1 with step/commit waves; the replicas exchange committed
// estimates among themselves (the real O(|N|²) traffic) when a step
// message arrives.
const (
	// MsgStep is initiator → replica: pull every peer's committed
	// estimate, take one consensus-projected-subgradient step, and stage
	// the result.
	MsgStep = "replica.cdpsm.step"
	// MsgEstimate is replica → replica (and initiator → replica during
	// recovery): return the committed estimate.
	MsgEstimate = "replica.cdpsm.estimate"
	// MsgCommit is initiator → replica: promote the staged estimate.
	MsgCommit = "replica.cdpsm.commit"
)

// StepBody asks one replica to run one consensus + subgradient step.
type StepBody struct {
	Round int     `json:"round"`
	Iter  int     `json:"iter"`
	Step  float64 `json:"step"`
}

// StepReply reports how far the replica's staged estimate moved
// (Frobenius distance to its committed one).
type StepReply struct {
	Moved float64 `json:"moved"`
}

// EstimateBody requests a replica's committed estimate. Base, when ≥ 0,
// is the iteration id of the estimate the requester already holds from
// this replica — the server may then answer with a delta frame against
// that base instead of a full matrix. Base −1 requests a standalone frame.
type EstimateBody struct {
	Round int `json:"round"`
	Base  int `json:"base"`
}

// EstimateReply carries the committed estimate (clients × replicas) and
// the iteration id it was committed at (the base id for the requester's
// next delta pull). Base is decode/encode context, never serialized
// itself: the server sets it to the matrix it diffed against (enabling a
// delta frame) and the requester pre-sets it to its cached copy of the
// same matrix before Decode, per the transport convention that DecodeBody
// unmarshals into the caller's value in place.
type EstimateReply struct {
	Estimate [][]float64 `json:"estimate"`
	Iter     int         `json:"iter"`

	Base [][]float64 `json:"-"`
}

// CommitBody promotes a replica's staged estimate.
type CommitBody struct {
	Round int `json:"round"`
	Iter  int `json:"iter"`
}

func init() {
	engine.Register(engine.Registration{
		Name:   "CDPSM",
		New:    func() engine.Algorithm { return &roundAlg{} },
		Server: serverHalf{},
		Verbs:  []string{MsgStep, MsgEstimate, MsgCommit},
	})
}

// roundAlg is the initiator half of Algorithm 1 over the fabric: step
// (each replica pulls every peer's committed estimate and stages its
// update) then commit, per iteration; the final assignment is the average
// of the committed estimates, polished to exact feasibility. No
// initiator-side primal iterate exists between consensus steps, so the
// algorithm records a residual-only trajectory (it implements no
// PrimalTracer).
type roundAlg struct {
	rd  *engine.Round
	k   int
	tol float64

	moved []float64

	exchanges []engine.Exchange
}

func (a *roundAlg) Init(rd *engine.Round) error {
	n := len(rd.ReplicaAddrs)
	a.rd = rd
	a.tol = rd.Tol
	if a.tol <= 0 {
		a.tol = 1e-3
	}
	a.moved = rd.Pool.Vector(n)
	a.exchanges = []engine.Exchange{
		{
			Verb:  MsgStep,
			Class: engine.Replicas,
			Body: func(j int) any {
				return StepBody{Round: rd.Seq, Iter: a.k, Step: DefaultStep}
			},
			Fold: func(j int, r engine.Reply) error {
				var reply StepReply
				if err := r.Decode(&reply); err != nil {
					return err
				}
				a.moved[j] = reply.Moved
				return nil
			},
		},
		{
			Verb:  MsgCommit,
			Class: engine.Replicas,
			Body: func(j int) any {
				return CommitBody{Round: rd.Seq, Iter: a.k}
			},
		},
	}
	return nil
}

func (a *roundAlg) Iterate(k int) []engine.Exchange {
	a.k = k
	return a.exchanges
}

func (a *roundAlg) Converged(k int) (float64, bool) {
	maxMoved := 0.0
	for _, m := range a.moved {
		if m > maxMoved {
			maxMoved = m
		}
	}
	return maxMoved, maxMoved <= a.tol
}

// Recover averages the replicas' committed estimates and polishes the
// result onto the exact feasible region — the common point the agents
// converged toward.
func (a *roundAlg) Recover(ctx context.Context, d *engine.Driver) ([][]float64, error) {
	c, n := a.rd.Prob.C(), a.rd.Prob.N()
	nReplicas := len(a.rd.ReplicaAddrs)
	sum := opt.NewMatrix(c, n) // freshly allocated: escapes into the report
	var mu sync.Mutex
	err := d.Exec(ctx, a.rd, engine.Exchange{
		Verb:  MsgEstimate,
		Class: engine.Replicas,
		Body:  func(j int) any { return EstimateBody{Round: a.rd.Seq, Base: -1} },
		Fold: func(j int, r engine.Reply) error {
			var reply EstimateReply
			if err := r.Decode(&reply); err != nil {
				return err
			}
			if err := checkShape(reply.Estimate, c, n); err != nil {
				return fmt.Errorf("cdpsm: estimate from %s: %w", a.rd.ReplicaAddrs[j], err)
			}
			mu.Lock()
			defer mu.Unlock()
			opt.Add(sum, reply.Estimate)
			return nil
		},
	})
	if err != nil {
		return nil, err
	}
	opt.Scale(sum, 1/float64(nReplicas))
	if err := opt.ProjectFeasiblePar(a.rd.Prob, sum, 1e-6, a.rd.Par); err != nil {
		return nil, fmt.Errorf("cdpsm: final polish: %w", err)
	}
	return sum, nil
}

// ConsensusWeights returns the doubly-stochastic consensus row for n
// agents: the uniform weights a_{i,j} = 1/n of Eq. 3 over a complete
// communication graph. It is computed from the count of estimates
// actually gathered each step — not a matrix fixed at round setup — so
// when an epoch changes |N| mid-stream the next round's consensus
// weights are rebuilt online for the new roster with no extra machinery.
func ConsensusWeights(n int) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1 / float64(n)
	}
	return w
}

// checkShape validates a wire-decoded matrix before it reaches the shape-
// panicking opt kernels.
func checkShape(x [][]float64, c, n int) error {
	if len(x) != c {
		return fmt.Errorf("%d rows for %d clients", len(x), c)
	}
	for _, row := range x {
		if len(row) != n {
			return fmt.Errorf("row of %d entries for %d replicas", len(row), n)
		}
	}
	return nil
}

// serverState is one replica's CDPSM view of a round: the committed
// estimate its peers may pull, the staged successor awaiting commit, the
// previous committed estimate kept as the delta base for peers one
// iteration behind, and a cache of each peer's last pulled estimate (the
// requester-side half of the delta protocol, on the shared transport
// machinery). Committed matrices are replaced wholesale on commit and
// never mutated in place, so serving prev as a marshal-time delta base
// outside the lock is safe.
type serverState struct {
	mu            sync.Mutex
	committed     [][]float64
	committedIter int
	prev          [][]float64
	prevIter      int
	staged        [][]float64
	stagedIter    int
	peers         transport.MatrixBaseCache
}

// serverHalf answers the three CDPSM verbs on a participant replica.
type serverHalf struct{}

// state fetches (or lazily builds) the round's CDPSM participant state.
// The initial committed estimate is the round's warm start when the
// initiator shipped one (an epoch change renormalized the last-known-good
// split over the new roster) and the uniform start otherwise — every
// agent seeds from the same point either way, so consensus starts
// agreeing instead of spending iterations re-converging.
func state(sr *engine.ServerRound) (*serverState, error) {
	st, err := sr.State("CDPSM", func() (any, error) {
		if w := sr.Warm; w != nil && checkShape(w, sr.Prob.C(), sr.Prob.N()) == nil {
			return &serverState{committed: opt.Clone(w)}, nil
		}
		start, err := sr.Prob.UniformStart()
		if err != nil {
			return nil, err
		}
		return &serverState{committed: start}, nil
	})
	if err != nil {
		return nil, err
	}
	return st.(*serverState), nil
}

func (serverHalf) Handle(ctx context.Context, verb string, req engine.Reply, sr *engine.ServerRound) (any, error) {
	switch verb {
	case MsgStep:
		var body StepBody
		if err := req.Decode(&body); err != nil {
			return nil, err
		}
		return handleStep(ctx, &body, sr)
	case MsgEstimate:
		var body EstimateBody
		body.Base = -1 // absent in legacy JSON bodies means "no base held"
		if err := req.Decode(&body); err != nil {
			return nil, err
		}
		st, err := state(sr)
		if err != nil {
			return nil, err
		}
		st.mu.Lock()
		defer st.mu.Unlock()
		reply := EstimateReply{Estimate: opt.Clone(st.committed), Iter: st.committedIter}
		if body.Base >= 0 && st.prev != nil && body.Base == st.prevIter {
			// The requester holds our previous committed estimate: let the
			// marshal-time chooser diff against it (full-frame fallback stays
			// automatic — the chooser only picks delta when it is smallest).
			reply.Base = st.prev
		}
		return reply, nil
	case MsgCommit:
		var body CommitBody
		if err := req.Decode(&body); err != nil {
			return nil, err
		}
		st, err := state(sr)
		if err != nil {
			return nil, err
		}
		st.mu.Lock()
		defer st.mu.Unlock()
		if st.staged == nil {
			return nil, fmt.Errorf("cdpsm: commit round %d with no staged estimate", body.Round)
		}
		st.prev, st.prevIter = st.committed, st.committedIter
		st.committed, st.committedIter = st.staged, st.stagedIter
		st.staged = nil
		return nil, nil
	}
	return nil, fmt.Errorf("cdpsm: unhandled verb %q", verb)
}

// handleStep runs one consensus + subgradient step: pull peers' committed
// estimates, average with uniform weights (Eq. 3), take the local
// gradient step, project onto the local constraint set, and stage.
func handleStep(ctx context.Context, body *StepBody, sr *engine.ServerRound) (StepReply, error) {
	st, err := state(sr)
	if err != nil {
		return StepReply{}, err
	}
	c, n := sr.Prob.C(), sr.Prob.N()
	st.mu.Lock()
	own := opt.Clone(st.committed)
	st.mu.Unlock()
	estimates := make([][][]float64, 0, len(sr.ReplicaAddrs))
	estimates = append(estimates, own)
	for _, addr := range sr.ReplicaAddrs {
		if addr == sr.Self {
			continue
		}
		// Declare the iteration id of this peer's last pulled estimate so
		// the peer can answer with a delta frame against it; decode with
		// that cached matrix as the base.
		base, baseIter := st.peers.Get(addr)
		resp, err := sr.Peers.Send(ctx, addr, MsgEstimate, EstimateBody{Round: sr.Round, Base: baseIter})
		if err != nil {
			return StepReply{}, fmt.Errorf("cdpsm: step: fetch estimate from %s: %w", addr, err)
		}
		er := EstimateReply{Base: base}
		if err := resp.Decode(&er); err != nil {
			return StepReply{}, err
		}
		if err := checkShape(er.Estimate, c, n); err != nil {
			return StepReply{}, fmt.Errorf("cdpsm: estimate from %s: %w", addr, err)
		}
		st.peers.Put(addr, er.Iter, er.Estimate)
		estimates = append(estimates, er.Estimate)
	}

	consensus := opt.NewMatrix(c, n)
	opt.Mean(consensus, ConsensusWeights(len(estimates)), estimates...)

	grad := opt.NewMatrix(c, n)
	LocalGradient(sr.Prob, sr.Col, consensus, grad)
	next := opt.Clone(consensus)
	opt.AXPY(next, -body.Step, grad)
	// Local projection: masked instances run the packed sparse projector
	// (every estimate in flight is supported on the mask, so gathering
	// drops only exact zeros); full instances keep the dense Dykstra.
	if sp := sr.Prob.Sparsity(); opt.SparseAuto.Enabled(sp) {
		v := sp.Gather(nil, next)
		pj := newLocalProjector(sr.Prob, sp, sr.Col, sr.Par)
		if _, err := pj.Project(v, opt.DykstraOptions{MaxSweeps: 60, Tol: 1e-9}); err != nil {
			return StepReply{}, fmt.Errorf("cdpsm: step projection: %w", err)
		}
		sp.Scatter(next, v)
	} else if err := LocalProjectionPar(sr.Prob, sr.Col, 60, sr.Par)(next); err != nil {
		return StepReply{}, err
	}

	st.mu.Lock()
	defer st.mu.Unlock()
	moved := opt.Dist(next, st.committed)
	st.staged = next
	st.stagedIter = body.Iter
	return StepReply{Moved: moved}, nil
}
