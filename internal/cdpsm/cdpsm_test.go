package cdpsm

import (
	"math"
	"testing"

	"edr/internal/central"
	"edr/internal/opt"
	"edr/internal/probgen"
	"edr/internal/sim"
	"edr/internal/solver"
)

func TestCDPSMName(t *testing.T) {
	if New().Name() != "CDPSM" {
		t.Fatalf("Name = %q", New().Name())
	}
}

func TestCDPSMSimpleInstance(t *testing.T) {
	r := sim.NewRand(3)
	prob, err := probgen.MustFeasible(r, probgen.Spec{Clients: 3, Replicas: 3, Prices: []float64{1, 10, 5}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := New().Solve(prob)
	if err != nil {
		t.Fatal(err)
	}
	if err := solver.Verify(prob, res, 1e-4); err != nil {
		t.Fatal(err)
	}
	loads := opt.ColSums(res.Assignment)
	if loads[0] <= loads[1] {
		t.Fatalf("cheap replica not preferred: loads = %v", loads)
	}
}

func TestCDPSMMatchesCentralizedOptimum(t *testing.T) {
	r := sim.NewRand(11)
	for trial := 0; trial < 5; trial++ {
		prob, err := probgen.MustFeasible(r, probgen.Spec{Clients: 4, Replicas: 3})
		if err != nil {
			t.Fatal(err)
		}
		cd, err := New().Solve(prob)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		ref, err := central.New().Solve(prob)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := solver.Verify(prob, cd, 1e-4); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if cd.Objective > ref.Objective*1.06+1e-6 {
			t.Fatalf("trial %d: CDPSM %.4f vs central %.4f (>6%% gap)", trial, cd.Objective, ref.Objective)
		}
	}
}

func TestCDPSMCommCubicInN(t *testing.T) {
	r := sim.NewRand(13)
	prob, err := probgen.MustFeasible(r, probgen.Spec{Clients: 4, Replicas: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := New().Solve(prob)
	if err != nil {
		t.Fatal(err)
	}
	perIter := res.Comm.Scalars / res.Iterations
	// |N|·(|N|−1)·|C|·|N| = 3·2·4·3 = 72 scalars per iteration.
	if perIter != 72 {
		t.Fatalf("scalars/iteration = %d, want 72 (O(C·N³))", perIter)
	}
}

func TestCDPSMSlowerThanLDDMInMessages(t *testing.T) {
	// The complexity claim of §III-D: per iteration CDPSM moves
	// |N|² more data than LDDM per client-replica pair.
	r := sim.NewRand(17)
	prob, err := probgen.MustFeasible(r, probgen.Spec{Clients: 5, Replicas: 4})
	if err != nil {
		t.Fatal(err)
	}
	res, err := New().Solve(prob)
	if err != nil {
		t.Fatal(err)
	}
	cdpsmPerIter := res.Comm.Scalars / res.Iterations
	lddmPerIter := 2 * prob.C() * prob.N()
	if cdpsmPerIter <= lddmPerIter {
		t.Fatalf("CDPSM %d scalars/iter vs LDDM %d: complexity ordering violated", cdpsmPerIter, lddmPerIter)
	}
}

func TestCDPSMWeightsValidation(t *testing.T) {
	r := sim.NewRand(19)
	prob, err := probgen.MustFeasible(r, probgen.Spec{Clients: 2, Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	s := New()
	s.Weights = []float64{0.5, 0.6} // sums to 1.1
	if _, err := s.Solve(prob); err == nil {
		t.Fatal("non-stochastic weights accepted")
	}
	s.Weights = []float64{1.5, -0.5}
	if _, err := s.Solve(prob); err == nil {
		t.Fatal("negative weight accepted")
	}
	s.Weights = []float64{1}
	if _, err := s.Solve(prob); err == nil {
		t.Fatal("wrong-length weights accepted")
	}
}

func TestCDPSMNonUniformWeights(t *testing.T) {
	r := sim.NewRand(23)
	prob, err := probgen.MustFeasible(r, probgen.Spec{Clients: 3, Replicas: 3})
	if err != nil {
		t.Fatal(err)
	}
	s := New()
	s.Weights = []float64{0.5, 0.3, 0.2}
	res, err := s.Solve(prob)
	if err != nil {
		t.Fatal(err)
	}
	if err := solver.Verify(prob, res, 1e-4); err != nil {
		t.Fatal(err)
	}
}

func TestCDPSMInfeasibleRejected(t *testing.T) {
	r := sim.NewRand(29)
	prob, err := probgen.New(r, probgen.Spec{Clients: 1, Replicas: 2, Demands: []float64{1000}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New().Solve(prob); err == nil {
		t.Fatal("infeasible instance accepted")
	}
}

func TestCDPSMHistoryMonotoneTail(t *testing.T) {
	// The consensus objective should trend downward (allowing early noise
	// while agents disagree): the last history value must be below the
	// early maximum.
	r := sim.NewRand(31)
	prob, err := probgen.MustFeasible(r, probgen.Spec{Clients: 4, Replicas: 3, Prices: []float64{2, 9, 4}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := New().Solve(prob)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) < 2 {
		t.Skip("converged immediately")
	}
	early := res.History[0]
	for _, h := range res.History[:len(res.History)/2] {
		if h > early {
			early = h
		}
	}
	last := res.History[len(res.History)-1]
	if last > early+1e-9 {
		t.Fatalf("objective did not descend: early max %g, final %g", early, last)
	}
	for _, h := range res.History {
		if math.IsNaN(h) {
			t.Fatal("NaN in history")
		}
	}
}

func TestCDPSMMaskRespected(t *testing.T) {
	r := sim.NewRand(37)
	prob, err := probgen.MustFeasible(r, probgen.Spec{Clients: 6, Replicas: 4, Geo: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := New().Solve(prob)
	if err != nil {
		t.Fatal(err)
	}
	mask := prob.Allowed()
	for c := range res.Assignment {
		for n, v := range res.Assignment[c] {
			if !mask[c][n] && v > 1e-9 {
				t.Fatalf("masked entry [%d][%d] = %g", c, n, v)
			}
		}
	}
}

func TestLocalGradientOnlyOwnColumn(t *testing.T) {
	r := sim.NewRand(41)
	prob, err := probgen.MustFeasible(r, probgen.Spec{Clients: 3, Replicas: 3})
	if err != nil {
		t.Fatal(err)
	}
	v, err := prob.UniformStart()
	if err != nil {
		t.Fatal(err)
	}
	g := opt.NewMatrix(3, 3)
	LocalGradient(prob, 1, v, g)
	for c := range g {
		if g[c][0] != 0 || g[c][2] != 0 {
			t.Fatalf("gradient leaked outside own column: %v", g[c])
		}
		if g[c][1] <= 0 {
			t.Fatalf("own-column gradient %g not positive", g[c][1])
		}
	}
	// Value matches the analytic marginal at the column-1 load.
	load := v[0][1] + v[1][1] + v[2][1]
	want := prob.System.Replicas[1].MarginalCost(load)
	if math.Abs(g[0][1]-want) > 1e-12 {
		t.Fatalf("gradient = %g, want %g", g[0][1], want)
	}
}

func TestCDPSMRingTopologyConverges(t *testing.T) {
	r := sim.NewRand(43)
	prob, err := probgen.MustFeasible(r, probgen.Spec{Clients: 4, Replicas: 4, Prices: []float64{1, 9, 3, 6}})
	if err != nil {
		t.Fatal(err)
	}
	ringSolver := New()
	ringSolver.Topology = TopologyRing
	ringSolver.MaxIters = 4000
	ringRes, err := ringSolver.Solve(prob)
	if err != nil {
		t.Fatal(err)
	}
	if err := solver.Verify(prob, ringRes, 1e-4); err != nil {
		t.Fatal(err)
	}
	ref, err := central.New().Solve(prob)
	if err != nil {
		t.Fatal(err)
	}
	if ringRes.Objective > ref.Objective*1.06+1e-6 {
		t.Fatalf("ring CDPSM %.2f vs central %.2f (>6%% gap)", ringRes.Objective, ref.Objective)
	}
}

func TestCDPSMRingTopologyCheaperPerIteration(t *testing.T) {
	r := sim.NewRand(47)
	prob, err := probgen.MustFeasible(r, probgen.Spec{Clients: 4, Replicas: 6})
	if err != nil {
		t.Fatal(err)
	}
	run := func(topo Topology) int {
		s := New()
		s.Topology = topo
		s.MaxIters = 50
		s.Tol = 1e-12 // force all iterations
		res, err := s.Solve(prob)
		if err != nil {
			t.Fatal(err)
		}
		return res.Comm.Scalars / res.Iterations
	}
	complete := run(TopologyComplete)
	ringScalars := run(TopologyRing)
	// Complete: N(N−1)=30 estimate pulls; ring: 2N=12 per iteration.
	if ringScalars*2 >= complete {
		t.Fatalf("ring gossip not cheaper: %d vs %d scalars/iter", ringScalars, complete)
	}
}

func TestCDPSMRingTopologySlowerConsensus(t *testing.T) {
	// Ring diffusion is slower: with the same step and tolerance, ring
	// gossip needs at least as many iterations as complete gossip.
	r := sim.NewRand(53)
	prob, err := probgen.MustFeasible(r, probgen.Spec{Clients: 3, Replicas: 6, Prices: []float64{1, 12, 2, 9, 4, 7}})
	if err != nil {
		t.Fatal(err)
	}
	iters := func(topo Topology) int {
		s := New()
		s.Topology = topo
		s.MaxIters = 4000
		res, err := s.Solve(prob)
		if err != nil {
			t.Fatal(err)
		}
		return res.Iterations
	}
	if ringIters, completeIters := iters(TopologyRing), iters(TopologyComplete); ringIters < completeIters {
		t.Fatalf("ring consensus converged faster than complete: %d vs %d iterations", ringIters, completeIters)
	}
}
