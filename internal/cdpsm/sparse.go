package cdpsm

import (
	"fmt"
	"math"

	"edr/internal/opt"
	"edr/internal/solver"
)

// This file is the packed sparse half of the CDPSM engine: estimates live
// as CSR-packed vectors over the latency-feasibility support, the consensus
// and gradient steps touch only the nnz entries, and the local projections
// run on opt.SparseProjector with incrementally maintained column sums.
// The in-process solver (solveSparse) and the distributed round handler
// (round.go) share these kernels.

// newLocalProjector builds agent i's packed local-set projector: every
// client row plus the agent's own capacity halfspace (other columns are
// unconstrained in P_i, encoded as +Inf bounds the projector skips in
// O(1)).
func newLocalProjector(prob *opt.Problem, sp *opt.Sparsity, agent int, par *opt.Parallel) *opt.SparseProjector {
	bounds := make([]float64, sp.N)
	for n := range bounds {
		bounds[n] = math.Inf(1)
	}
	bounds[agent] = prob.System.Replicas[agent].Bandwidth
	return opt.NewSparseProjector(sp, prob.Demands, bounds, par)
}

// packedColSum returns Σ_c v_{c,n} of a CSR-packed vector, accumulated in
// ascending client order (the same order the dense kernels use).
func packedColSum(sp *opt.Sparsity, n int, v []float64) float64 {
	s := 0.0
	for k := sp.ColStart[n]; k < sp.ColStart[n+1]; k++ {
		s += v[sp.PosCSR[k]]
	}
	return s
}

// sparseGradStep applies agent i's gradient step in place: the local
// objective E_i depends only on column i, so v loses d·∇E_i only on that
// column's support.
func sparseGradStep(prob *opt.Problem, sp *opt.Sparsity, agent int, d float64, v []float64) {
	load := packedColSum(sp, agent, v)
	if load < 0 {
		load = 0
	}
	marginal := prob.System.Replicas[agent].MarginalCost(load)
	for k := sp.ColStart[agent]; k < sp.ColStart[agent+1]; k++ {
		v[sp.PosCSR[k]] -= d * marginal
	}
}

// consensusPacked computes agent i's consensus average over packed
// estimates into dst — the packed twin of consensusFor.
func (s *Solver) consensusPacked(i int, weights []float64, vs [][]float64, dst []float64) {
	n := len(vs)
	if s.Topology == TopologyRing && n > 2 {
		opt.VecFill(dst, 0)
		opt.VecAXPY(dst, 0.25, vs[(i-1+n)%n])
		opt.VecAXPY(dst, 0.5, vs[i])
		opt.VecAXPY(dst, 0.25, vs[(i+1)%n])
		return
	}
	opt.VecMean(dst, weights, vs...)
}

// uniformMeanPacked averages packed estimates with equal weight into dst.
func uniformMeanPacked(dst []float64, w []float64, vs [][]float64) {
	for i := range w {
		w[i] = 1 / float64(len(vs))
	}
	opt.VecMean(dst, w, vs...)
}

// solveSparse is Solve on the packed sparse kernels. Per iteration each
// agent's consensus, gradient step and local projection cost O(nnz) rather
// than O(|C|·|N|); agents still write only their own next estimate, so
// parallel and serial runs stay bit-identical.
func (s *Solver) solveSparse(prob *opt.Problem, sp *opt.Sparsity) (*solver.Result, error) {
	nAgents := prob.N()
	step, maxIters, tol, weights, sweeps, err := s.params(nAgents)
	if err != nil {
		return nil, err
	}
	nnz := sp.NNZ()
	par := opt.NewParallel(s.Parallelism).Gate(nnz * nAgents)
	chunks := par.Chunks(nAgents)

	start, err := prob.UniformStart()
	if err != nil {
		return nil, err
	}
	vstart := sp.Gather(nil, start)

	ests := make([][]float64, nAgents)
	next := make([][]float64, nAgents)
	projs := make([]*opt.SparseProjector, nAgents)
	for i := range ests {
		ests[i] = append([]float64(nil), vstart...)
		next[i] = make([]float64, nnz)
		// Serial projector per agent: parallelism lives across agents,
		// matching the dense path.
		projs[i] = newLocalProjector(prob, sp, i, nil)
	}
	popts := opt.DykstraOptions{MaxSweeps: sweeps, Tol: 1e-9}
	if err := par.ForErr(nAgents, func(_, lo, hi int) error {
		for i := lo; i < hi; i++ {
			if _, err := projs[i].Project(ests[i], popts); err != nil {
				return fmt.Errorf("cdpsm: agent %d: %w", i, err)
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}

	res := &solver.Result{}
	conses := make([][]float64, chunks)
	for ch := range conses {
		conses[ch] = make([]float64, nnz)
	}
	avg := make([]float64, nnz)
	loads := make([]float64, sp.N)
	moved := make([]float64, nAgents)
	uw := make([]float64, nAgents)
	mats := make([][]float64, nAgents)

	for k := 1; k <= maxIters; k++ {
		copy(mats, ests)
		d := step(k)
		if err := par.ForErr(nAgents, func(chunk, lo, hi int) error {
			cons := conses[chunk]
			for i := lo; i < hi; i++ {
				s.consensusPacked(i, weights, mats, cons)
				copy(next[i], cons)
				sparseGradStep(prob, sp, i, d, next[i])
				if _, err := projs[i].Project(next[i], popts); err != nil {
					return fmt.Errorf("cdpsm: agent %d: %w", i, err)
				}
				moved[i] = opt.VecDist(next[i], ests[i])
			}
			return nil
		}); err != nil {
			return nil, err
		}
		maxMove := 0.0
		for _, m := range moved {
			if m > maxMove {
				maxMove = m
			}
		}
		for i := range ests {
			copy(ests[i], next[i])
		}
		// Communication accounting: sparse estimate frames carry only the
		// nnz supported scalars.
		peers := nAgents - 1
		if s.Topology == TopologyRing && nAgents > 2 {
			peers = 2
		}
		res.Comm.Messages += nAgents * peers
		res.Comm.Scalars += nAgents * peers * nnz
		res.Iterations = k

		// History: the objective depends only on column sums, so the
		// average estimate never needs densifying.
		uniformMeanPacked(avg, uw, ests)
		sp.ColSumsInto(loads, avg)
		res.History = append(res.History, prob.System.CostOfLoads(loads))

		if maxMove <= tol {
			res.Converged = true
			break
		}
	}

	uniformMeanPacked(avg, uw, ests)
	final := opt.NewMatrix(prob.C(), prob.N())
	sp.Scatter(final, avg)
	if err := opt.ProjectFeasibleSp(prob, final, 1e-6, par); err != nil {
		return nil, fmt.Errorf("cdpsm: final polish: %w", err)
	}
	res.Assignment = final
	res.Objective = prob.Cost(final)
	return res, nil
}
