// Package trace renders experiment outputs as CSV tables and aligned-text
// summaries — the machine- and human-readable forms of every figure this
// module regenerates.
package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// Table is a rectangular result set with named columns.
type Table struct {
	// Name labels the table (e.g. "fig6-video-streaming").
	Name string
	// Columns are the header names.
	Columns []string
	rows    [][]string
}

// NewTable creates a table with the given columns.
func NewTable(name string, columns ...string) *Table {
	return &Table{Name: name, Columns: columns}
}

// AddRow appends a row; values are formatted with %v, floats compactly.
func (t *Table) AddRow(values ...any) error {
	if len(values) != len(t.Columns) {
		return fmt.Errorf("trace: row has %d values for %d columns", len(values), len(t.Columns))
	}
	row := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			row[i] = strconv.FormatFloat(x, 'g', 8, 64)
		case float32:
			row[i] = strconv.FormatFloat(float64(x), 'g', 8, 32)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
	return nil
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// Row returns a copy of row i.
func (t *Table) Row(i int) []string {
	out := make([]string, len(t.rows[i]))
	copy(out, t.rows[i])
	return out
}

// WriteCSV emits the table as CSV.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return fmt.Errorf("trace: write header: %w", err)
	}
	for _, row := range t.rows {
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("trace: write row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// SaveCSV writes the table to dir/<name>.csv, creating dir if needed.
func (t *Table) SaveCSV(dir string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("trace: mkdir %s: %w", dir, err)
	}
	path := filepath.Join(dir, t.Name+".csv")
	f, err := os.Create(path)
	if err != nil {
		return "", fmt.Errorf("trace: create %s: %w", path, err)
	}
	defer f.Close()
	if err := t.WriteCSV(f); err != nil {
		return "", err
	}
	return path, nil
}

// Render formats the table as aligned text for terminal output.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) string {
		var b strings.Builder
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
		}
		return strings.TrimRight(b.String(), " ")
	}
	if _, err := fmt.Fprintf(w, "## %s\n%s\n", t.Name, line(t.Columns)); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", lineWidth(widths))); err != nil {
		return err
	}
	for _, row := range t.rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	return nil
}

func lineWidth(widths []int) int {
	total := 0
	for _, w := range widths {
		total += w
	}
	return total + 2*(len(widths)-1)
}
