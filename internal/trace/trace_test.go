package trace

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestTableCSVRoundTrip(t *testing.T) {
	tab := NewTable("test", "replica", "cost")
	if err := tab.AddRow("replica1", 123.456); err != nil {
		t.Fatal(err)
	}
	if err := tab.AddRow("replica2", 7.0); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %v", lines)
	}
	if lines[0] != "replica,cost" {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "replica1,123.456") {
		t.Fatalf("row 1 = %q", lines[1])
	}
}

func TestAddRowWrongArity(t *testing.T) {
	tab := NewTable("t", "a", "b")
	if err := tab.AddRow(1); err == nil {
		t.Fatal("short row accepted")
	}
}

func TestRowsAndRowCopy(t *testing.T) {
	tab := NewTable("t", "a")
	tab.AddRow("x")
	if tab.Rows() != 1 {
		t.Fatalf("Rows = %d", tab.Rows())
	}
	r := tab.Row(0)
	r[0] = "mutated"
	if tab.Row(0)[0] != "x" {
		t.Fatal("Row exposes internal slice")
	}
}

func TestSaveCSV(t *testing.T) {
	dir := t.TempDir()
	tab := NewTable("fig6", "replica", "lddm", "cdpsm", "rr")
	tab.AddRow("replica1", 1.0, 2.0, 3.0)
	path, err := tab.SaveCSV(filepath.Join(dir, "results"))
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "replica1,1,2,3") {
		t.Fatalf("file content = %q", data)
	}
}

func TestRenderAligned(t *testing.T) {
	tab := NewTable("demo", "name", "value")
	tab.AddRow("a", 1.0)
	tab.AddRow("longname", 22.5)
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "## demo") {
		t.Fatalf("missing title: %q", out)
	}
	if !strings.Contains(out, "longname") {
		t.Fatalf("missing row: %q", out)
	}
	// Header columns aligned: "name" padded to width of "longname".
	lines := strings.Split(out, "\n")
	if !strings.HasPrefix(lines[1], "name    ") {
		t.Fatalf("header not padded: %q", lines[1])
	}
}

func TestFloat32Formatting(t *testing.T) {
	tab := NewTable("t", "v")
	tab.AddRow(float32(2.5))
	if got := tab.Row(0)[0]; got != "2.5" {
		t.Fatalf("float32 formatted as %q", got)
	}
}
