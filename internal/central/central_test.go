package central

import (
	"testing"

	"edr/internal/opt"
	"edr/internal/probgen"
	"edr/internal/sim"
	"edr/internal/solver"
)

// optConstant aliases opt.ConstantStep for brevity in tests.
func optConstant(d float64) opt.StepRule { return opt.ConstantStep(d) }

func TestCentralName(t *testing.T) {
	if New().Name() != "Central" {
		t.Fatalf("Name = %q", New().Name())
	}
}

func TestCentralSolvesFeasibly(t *testing.T) {
	r := sim.NewRand(1)
	prob, err := probgen.MustFeasible(r, probgen.Spec{Clients: 5, Replicas: 4})
	if err != nil {
		t.Fatal(err)
	}
	res, err := New().Solve(prob)
	if err != nil {
		t.Fatal(err)
	}
	if err := solver.Verify(prob, res, 1e-4); err != nil {
		t.Fatal(err)
	}
	if len(res.History) != res.Iterations {
		t.Fatalf("history %d entries for %d iterations", len(res.History), res.Iterations)
	}
}

func TestCentralBeatsUniformSplit(t *testing.T) {
	r := sim.NewRand(5)
	prob, err := probgen.MustFeasible(r, probgen.Spec{
		Clients: 6, Replicas: 4, Prices: []float64{1, 18, 2, 15},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := New().Solve(prob)
	if err != nil {
		t.Fatal(err)
	}
	uniform, err := prob.UniformStart()
	if err != nil {
		t.Fatal(err)
	}
	if res.Objective >= prob.Cost(uniform) {
		t.Fatalf("optimum %g not below uniform %g with skewed prices", res.Objective, prob.Cost(uniform))
	}
}

func TestCentralCommIsPerRoundSmall(t *testing.T) {
	r := sim.NewRand(9)
	prob, err := probgen.MustFeasible(r, probgen.Spec{Clients: 4, Replicas: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := New().Solve(prob)
	if err != nil {
		t.Fatal(err)
	}
	if res.Comm.Messages != 2*prob.C() {
		t.Fatalf("Messages = %d, want %d", res.Comm.Messages, 2*prob.C())
	}
}

func TestCentralInvalidProblem(t *testing.T) {
	r := sim.NewRand(11)
	prob, err := probgen.MustFeasible(r, probgen.Spec{Clients: 2, Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	prob.MaxLatency = -1
	if _, err := New().Solve(prob); err == nil {
		t.Fatal("invalid problem accepted")
	}
}

func TestCentralConvergesWithConstantStep(t *testing.T) {
	r := sim.NewRand(13)
	prob, err := probgen.MustFeasible(r, probgen.Spec{Clients: 3, Replicas: 3})
	if err != nil {
		t.Fatal(err)
	}
	s := New()
	s.Step = optConstant(0.01)
	s.MaxIters = 500
	res, err := s.Solve(prob)
	if err != nil {
		t.Fatal(err)
	}
	if err := solver.Verify(prob, res, 1e-4); err != nil {
		t.Fatal(err)
	}
}

func TestFrankWolfeSolverAgreesWithPGD(t *testing.T) {
	r := sim.NewRand(17)
	for trial := 0; trial < 6; trial++ {
		prob, err := probgen.MustFeasible(r, probgen.Spec{Clients: 6, Replicas: 4, Geo: trial%2 == 0})
		if err != nil {
			t.Fatal(err)
		}
		fw, err := NewFrankWolfe().Solve(prob)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := solver.Verify(prob, fw, 1e-6); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		pg, err := New().Solve(prob)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		rel := (fw.Objective - pg.Objective) / pg.Objective
		if rel > 0.02 || rel < -0.02 {
			t.Fatalf("trial %d: references disagree: FW %.4f vs PGD %.4f", trial, fw.Objective, pg.Objective)
		}
	}
}

func TestFrankWolfeSolverName(t *testing.T) {
	if NewFrankWolfe().Name() != "Frank-Wolfe" {
		t.Fatal("name mismatch")
	}
}
