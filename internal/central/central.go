// Package central implements the centralized reference solver: projected
// gradient descent on the full replica-selection problem with a global
// view. The paper contrasts decentralized EDR against centralized
// coordinators (simpler and often faster, but a single point of failure);
// in this module the centralized solver doubles as ground truth that the
// distributed CDPSM and LDDM implementations are validated against.
package central

import (
	"edr/internal/opt"
	"edr/internal/solver"
)

// Solver is the centralized projected-gradient reference method.
type Solver struct {
	// MaxIters bounds gradient iterations; 0 means 4000.
	MaxIters int
	// Step is the step rule; nil means a diminishing step scaled to the
	// instance so the first step moves loads by roughly the typical
	// per-replica load (unscaled steps thrash between polytope faces when
	// the cubic term makes marginal costs large).
	Step opt.StepRule
	// Tol is the movement-based stopping tolerance; 0 means 1e-8.
	Tol float64
}

// New returns a centralized solver with default tuning.
func New() *Solver { return &Solver{} }

// autoStep returns a diminishing step whose first move shifts loads by
// about one tenth of the typical per-replica load.
func autoStep(prob *opt.Problem) opt.StepRule {
	total := 0.0
	for _, d := range prob.Demands {
		total += d
	}
	typLoad := total / float64(prob.N())
	meanMarginal := 0.0
	for _, rep := range prob.System.Replicas {
		meanMarginal += rep.MarginalCost(typLoad)
	}
	meanMarginal /= float64(prob.N())
	if typLoad <= 0 || meanMarginal <= 0 {
		return opt.DiminishingStep(1)
	}
	return opt.DiminishingStep(0.1 * typLoad / meanMarginal)
}

// Name implements solver.Solver.
func (s *Solver) Name() string { return "Central" }

// Solve implements solver.Solver: run PGD from the uniform start.
func (s *Solver) Solve(prob *opt.Problem) (*solver.Result, error) {
	maxIters := s.MaxIters
	if maxIters <= 0 {
		maxIters = 4000
	}
	step := s.Step
	if step == nil {
		step = autoStep(prob)
	}
	x0, err := prob.UniformStart()
	if err != nil {
		return nil, err
	}
	var history []float64
	res, err := opt.ProjectedGradient(prob, x0, opt.PGDOptions{
		MaxIters: maxIters,
		Step:     step,
		Tol:      s.Tol,
		OnIteration: func(_ int, obj float64) {
			history = append(history, obj)
		},
	})
	if err != nil {
		return nil, err
	}
	return &solver.Result{
		Assignment: res.X,
		Objective:  res.Objective,
		Iterations: res.Iterations,
		Converged:  res.Converged,
		History:    history,
		// A central coordinator receives every demand and pushes every
		// assignment: 2·|C| messages of |N| scalars each round.
		Comm: solver.CommStats{
			Messages: 2 * prob.C(),
			Scalars:  2 * prob.C() * prob.N(),
		},
	}, nil
}
