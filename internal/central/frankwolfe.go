package central

import (
	"edr/internal/opt"
	"edr/internal/solver"
)

// FrankWolfe is a second, structurally different centralized reference:
// the conditional-gradient method whose linear subproblems are solved
// exactly by min-cost flow over the transportation polytope. Unlike the
// projected-gradient reference it needs no Euclidean projections, every
// iterate is exactly feasible (a convex combination of polytope
// vertices), and it carries a certified duality gap. Having two
// independent ground truths lets the test suite cross-validate the
// distributed algorithms without trusting any single implementation.
type FrankWolfe struct {
	// MaxIters bounds conditional-gradient steps; 0 means 500.
	MaxIters int
	// Tol is the relative duality-gap stopping threshold; 0 means 1e-4.
	Tol float64
}

// NewFrankWolfe returns a Frank-Wolfe reference solver with defaults.
func NewFrankWolfe() *FrankWolfe { return &FrankWolfe{} }

// Name implements solver.Solver.
func (s *FrankWolfe) Name() string { return "Frank-Wolfe" }

// Solve implements solver.Solver.
func (s *FrankWolfe) Solve(prob *opt.Problem) (*solver.Result, error) {
	maxIters := s.MaxIters
	if maxIters <= 0 {
		maxIters = 500
	}
	res, err := opt.FrankWolfe(prob, opt.FWOptions{MaxIters: maxIters, Tol: s.Tol})
	if err != nil {
		return nil, err
	}
	return &solver.Result{
		Assignment: res.X,
		Objective:  res.Objective,
		Iterations: res.Iterations,
		Converged:  res.Converged,
		// Centralized: demands in, assignments out, plus one LMO per
		// iteration solved locally.
		Comm: solver.CommStats{
			Messages: 2 * prob.C(),
			Scalars:  2 * prob.C() * prob.N(),
		},
	}, nil
}
