// Package engine is the distributed solver-engine layer of the EDR
// runtime: one shared iteration driver plus a small Algorithm contract
// that the paper's two methods (CDPSM, Algorithm 1; LDDM, Algorithm 2)
// and the ADMM extension all plug into.
//
// The family of distributed methods EDR runs shares one skeleton (cf. the
// unified ADM framework of Feng, Xu & Li, arXiv:1407.8309): per iteration
// the initiator fans a request out to every replica and/or every client,
// folds the replies into local state, tests a residual, and finally
// recovers a feasible primal assignment. The driver owns everything that
// is the same across methods — concurrent fan-out, retry/cancellation
// semantics (delegated to the Transport), iteration accounting, and the
// residual/cost trajectory hook telemetry consumes — while an Algorithm
// describes only what differs: the per-iteration exchanges (verb, body
// builder, reply folder), the convergence test, and primal recovery.
// Adding a new method (dual gradient tracking, an accelerated variant) is
// a ~100-line registry entry, not a fork of internal/core.
package engine

import (
	"context"
	"fmt"
	"math"

	"edr/internal/opt"
)

// Round is the engine's view of one scheduling round on the initiator.
type Round struct {
	// Seq is the initiator-local round id, echoed in every wire body.
	Seq int
	// Prob is the optimization instance the round solves.
	Prob *opt.Problem
	// ReplicaAddrs lists the participating replicas in column order.
	ReplicaAddrs []string
	// ClientAddrs lists the participating clients in row order.
	ClientAddrs []string
	// MaxIters bounds the distributed iterations (0 = no iterations: the
	// algorithm recovers straight from its initial state).
	MaxIters int
	// Tol is the configured convergence tolerance; <= 0 selects the
	// algorithm's own default.
	Tol float64
	// Warm, when non-nil, is a demand-conserving client×replica starting
	// assignment (the last-known-good split renormalized over this
	// round's roster — see opt.Renormalize). Algorithms holding a primal
	// iterate seed from it instead of their cold start; algorithms
	// without one (LDDM's client-held duals are round-scoped) ignore it.
	Warm [][]float64
	// WarmMu, when non-nil, carries the previous round's final per-client
	// dual values in this round's row order (from a DualReporter, below).
	// Clients accumulate their μ from zero each round, so an initiator
	// warm-starts the dual by treating WarmMu as an additive offset —
	// no client-side state or wire change involved.
	WarmMu []float64
	// Pool recycles the round's scratch matrices/vectors; the driver
	// creates one when nil and releases it when the round ends. Buffers
	// that outlive the round (the recovered assignment) must be cloned.
	Pool *opt.Pool
	// Par fans the initiator-side solver kernels (projection polish,
	// per-replica folds) across cores; nil runs them serially.
	Par *opt.Parallel
}

// PeerClass selects which side of the fabric an Exchange addresses.
type PeerClass int

const (
	// Replicas fans out over Round.ReplicaAddrs; failures are attributed
	// to the member so the round can restart without it.
	Replicas PeerClass = iota
	// Clients fans out over Round.ClientAddrs; failures surface
	// unattributed (clients are not ring members).
	Clients
)

// Reply decodes one peer's response body.
type Reply interface {
	Decode(into any) error
}

// Transport is the fabric the driver runs exchanges over. The runtime's
// ReplicaServer implements it with its retry/backoff/attribution stack;
// tests implement it in-process.
type Transport interface {
	// Replica performs one coordination RPC to a replica. An error after
	// the transport's retry budget should carry member-failure
	// attribution so the caller can prune the peer and restart.
	Replica(ctx context.Context, addr, verb string, body any) (Reply, error)
	// Client performs one RPC to a client (retry, no attribution).
	Client(ctx context.Context, addr, verb string, body any) (Reply, error)
}

// Exchange is one declarative fan-out wave: the driver sends Verb to
// every peer of Class concurrently, building each request body with Body
// and folding each reply with Fold. Body and Fold are indexed by the
// peer's position in the round's address list and may run concurrently
// for distinct indexes — they must only touch disjoint state unless they
// lock.
type Exchange struct {
	Verb  string
	Class PeerClass
	// Body builds the request body for peer i (nil Body sends an empty
	// body).
	Body func(i int) any
	// Fold consumes peer i's reply (nil Fold discards it).
	Fold func(i int, r Reply) error
}

// Algorithm is the initiator half of a distributed method. The driver
// calls Init once, then per iteration runs the Iterate exchanges in order
// (full barrier between exchanges) and asks Converged whether to stop;
// Recover assembles the final feasible assignment.
type Algorithm interface {
	// Init prepares per-round state (scratch from rd.Pool, defaults for
	// rd.Tol). The Round stays valid until the driver returns.
	Init(rd *Round) error
	// Iterate returns iteration k's exchanges. Implementations may return
	// a cached slice whose closures read k from algorithm state.
	Iterate(k int) []Exchange
	// Converged reports iteration k's residual and whether the loop is
	// done. It runs after the iteration's exchanges complete, every
	// iteration, so the residual doubles as the telemetry trajectory —
	// compute it once here, not in a separate trace branch.
	Converged(k int) (residual float64, done bool)
	// Recover assembles the final assignment after the loop ends. The
	// returned matrix must be freshly allocated (not Pool-owned): it
	// outlives the round. Algorithms needing a closing exchange (CDPSM's
	// estimate collection) run it through d.Exec.
	Recover(ctx context.Context, d *Driver) ([][]float64, error)
}

// PrimalTracer is optionally implemented by algorithms that hold a
// costable primal iterate between iterations; the driver records its
// objective on the telemetry trajectory. Algorithms without one (CDPSM —
// the initiator holds no primal between consensus steps) simply don't
// implement it and get a residual-only trajectory.
type PrimalTracer interface {
	// Primal returns the current primal iterate in client×replica layout,
	// or nil when none is available this iteration.
	Primal() [][]float64
}

// DualReporter is implemented by algorithms whose per-client dual values
// survive a round usefully (ADMM's scaled dual u). After a successful run
// the initiator stores them keyed by client and ships them back in as the
// next round's Round.WarmMu, warm-starting the dual alongside the primal.
type DualReporter interface {
	// Duals returns the final per-client dual values in row order. The
	// slice must remain valid after the driver returns.
	Duals() []float64
}

// Driver runs Algorithms over a Transport. The zero value is unusable;
// populate Transport at least.
type Driver struct {
	Transport Transport
	// Observe gates trajectory recording: when false, OnIterate is never
	// called and no per-iteration objective is evaluated, keeping the
	// unobserved hot path free of extra work.
	Observe bool
	// OnIterate, when Observe is set, receives each iteration's residual
	// and primal cost (NaN when the algorithm exposes no primal).
	OnIterate func(iter int, residual, cost float64)
}

// Run drives one round of alg to convergence (or rd.MaxIters) and returns
// the recovered assignment and the number of iterations executed. The
// round's Pool is released before returning, success or failure alike.
func (d *Driver) Run(ctx context.Context, alg Algorithm, rd *Round) ([][]float64, int, error) {
	if rd.Pool == nil {
		rd.Pool = &opt.Pool{}
	}
	defer rd.Pool.Release()
	if err := alg.Init(rd); err != nil {
		return nil, 0, err
	}
	tracer, _ := alg.(PrimalTracer)
	iterations := 0
	for k := 1; k <= rd.MaxIters; k++ {
		iterations = k
		for _, ex := range alg.Iterate(k) {
			if err := d.Exec(ctx, rd, ex); err != nil {
				return nil, 0, err
			}
		}
		residual, done := alg.Converged(k)
		if d.Observe && d.OnIterate != nil {
			cost := math.NaN()
			if tracer != nil {
				if x := tracer.Primal(); x != nil {
					cost = rd.Prob.Cost(x)
				}
			}
			d.OnIterate(k, residual, cost)
		}
		if done {
			break
		}
	}
	final, err := alg.Recover(ctx, d)
	if err != nil {
		return nil, 0, err
	}
	return final, iterations, nil
}

// Exec runs one exchange: a concurrent fan-out of ex.Verb over the
// exchange's peer class, cancelled as a wave on the first error.
func (d *Driver) Exec(ctx context.Context, rd *Round, ex Exchange) error {
	addrs := rd.ReplicaAddrs
	if ex.Class == Clients {
		addrs = rd.ClientAddrs
	}
	return FanOut(ctx, len(addrs), func(ctx context.Context, i int) error {
		var body any
		if ex.Body != nil {
			body = ex.Body(i)
		}
		var (
			reply Reply
			err   error
		)
		if ex.Class == Clients {
			reply, err = d.Transport.Client(ctx, addrs[i], ex.Verb, body)
			if err != nil {
				return fmt.Errorf("engine: client %s %s: %w", addrs[i], ex.Verb, err)
			}
		} else {
			reply, err = d.Transport.Replica(ctx, addrs[i], ex.Verb, body)
			if err != nil {
				return err
			}
		}
		if ex.Fold != nil {
			return ex.Fold(i, reply)
		}
		return nil
	})
}

// FanOut runs fn for every index concurrently and returns the first
// error. The paper's server and client are multithreaded ("create new
// threads to communicate with all the replicas at the same time"), so one
// coordination wave costs one round trip of wall time, not count × RTT.
// On the first error the wave's context is cancelled so the remaining
// sends abort promptly instead of running out their full RPC timeouts;
// FanOut still waits for every goroutine to finish before returning, so
// callers may reuse the buffers the callbacks wrote to.
func FanOut(ctx context.Context, count int, fn func(ctx context.Context, i int) error) error {
	if count == 0 {
		return nil
	}
	wctx, cancel := context.WithCancel(ctx)
	defer cancel()
	errs := make(chan error, count)
	for i := 0; i < count; i++ {
		go func(i int) { errs <- fn(wctx, i) }(i)
	}
	var first error
	for i := 0; i < count; i++ {
		if err := <-errs; err != nil && first == nil {
			first = err
			cancel()
		}
	}
	return first
}
