package engine

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"edr/internal/opt"
)

// fakeReply wraps an in-process value behind the Reply interface.
type fakeReply struct{ v float64 }

func (f fakeReply) Decode(into any) error {
	p, ok := into.(*float64)
	if !ok {
		return fmt.Errorf("fake reply decodes into *float64, got %T", into)
	}
	*p = f.v
	return nil
}

// fakeTransport answers every send with the peer's configured value and
// records traffic per verb.
type fakeTransport struct {
	mu      sync.Mutex
	values  map[string]float64
	sent    map[string]int
	failOn  string // addr whose sends error
	clients int
}

func (t *fakeTransport) roundTrip(addr, verb string) (Reply, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.sent == nil {
		t.sent = make(map[string]int)
	}
	t.sent[verb]++
	if addr == t.failOn {
		return nil, errors.New("peer down")
	}
	return fakeReply{v: t.values[addr]}, nil
}

func (t *fakeTransport) Replica(ctx context.Context, addr, verb string, body any) (Reply, error) {
	return t.roundTrip(addr, verb)
}

func (t *fakeTransport) Client(ctx context.Context, addr, verb string, body any) (Reply, error) {
	t.mu.Lock()
	t.clients++
	t.mu.Unlock()
	return t.roundTrip(addr, verb)
}

// sumAlg is a toy Algorithm: each iteration pulls one value per replica,
// accumulates the total, and converges when the total reaches target.
type sumAlg struct {
	rd       *Round
	total    float64
	target   float64
	pulled   []float64
	inits    int
	recovers int
}

func (a *sumAlg) Init(rd *Round) error {
	a.rd = rd
	a.inits++
	a.pulled = make([]float64, len(rd.ReplicaAddrs))
	return nil
}

func (a *sumAlg) Iterate(k int) []Exchange {
	return []Exchange{{
		Verb:  "toy.pull",
		Class: Replicas,
		Fold: func(i int, r Reply) error {
			return r.Decode(&a.pulled[i])
		},
	}}
}

func (a *sumAlg) Converged(k int) (float64, bool) {
	for _, v := range a.pulled {
		a.total += v
	}
	residual := a.target - a.total
	return residual, residual <= 0
}

func (a *sumAlg) Recover(ctx context.Context, d *Driver) ([][]float64, error) {
	a.recovers++
	return [][]float64{{a.total}}, nil
}

func (a *sumAlg) Primal() [][]float64 { return nil }

func testRound() *Round {
	return &Round{
		Seq:          1,
		ReplicaAddrs: []string{"r1", "r2"},
		ClientAddrs:  []string{"c1"},
		MaxIters:     10,
	}
}

func TestDriverRunsUntilConverged(t *testing.T) {
	tr := &fakeTransport{values: map[string]float64{"r1": 1, "r2": 2}}
	alg := &sumAlg{target: 9} // 3 per iteration → done after 3
	d := &Driver{Transport: tr}
	final, iters, err := d.Run(context.Background(), alg, testRound())
	if err != nil {
		t.Fatal(err)
	}
	if iters != 3 {
		t.Fatalf("iterations = %d, want 3", iters)
	}
	if final[0][0] != 9 {
		t.Fatalf("recovered %v, want 9", final[0][0])
	}
	if alg.inits != 1 || alg.recovers != 1 {
		t.Fatalf("inits=%d recovers=%d, want 1/1", alg.inits, alg.recovers)
	}
	if tr.sent["toy.pull"] != 6 {
		t.Fatalf("sent %d pulls, want 6", tr.sent["toy.pull"])
	}
}

func TestDriverStopsAtMaxIters(t *testing.T) {
	tr := &fakeTransport{values: map[string]float64{"r1": 0, "r2": 0}}
	alg := &sumAlg{target: 1} // never reached
	d := &Driver{Transport: tr}
	_, iters, err := d.Run(context.Background(), alg, testRound())
	if err != nil {
		t.Fatal(err)
	}
	if iters != 10 {
		t.Fatalf("iterations = %d, want MaxIters 10", iters)
	}
}

func TestDriverObservesTrajectory(t *testing.T) {
	tr := &fakeTransport{values: map[string]float64{"r1": 1, "r2": 2}}
	alg := &sumAlg{target: 6}
	var residuals []float64
	d := &Driver{
		Transport: tr,
		Observe:   true,
		OnIterate: func(iter int, residual, cost float64) {
			residuals = append(residuals, residual)
		},
	}
	if _, _, err := d.Run(context.Background(), alg, testRound()); err != nil {
		t.Fatal(err)
	}
	if len(residuals) != 2 || residuals[0] != 3 || residuals[1] != 0 {
		t.Fatalf("residual trajectory %v, want [3 0]", residuals)
	}
}

func TestDriverUnobservedSkipsCallback(t *testing.T) {
	tr := &fakeTransport{values: map[string]float64{"r1": 1, "r2": 2}}
	alg := &sumAlg{target: 3}
	d := &Driver{
		Transport: tr,
		Observe:   false,
		OnIterate: func(int, float64, float64) { t.Fatal("OnIterate called while unobserved") },
	}
	if _, _, err := d.Run(context.Background(), alg, testRound()); err != nil {
		t.Fatal(err)
	}
}

func TestDriverReplicaErrorAborts(t *testing.T) {
	tr := &fakeTransport{values: map[string]float64{"r1": 1}, failOn: "r2"}
	alg := &sumAlg{target: 100}
	d := &Driver{Transport: tr}
	_, _, err := d.Run(context.Background(), alg, testRound())
	if err == nil || !strings.Contains(err.Error(), "peer down") {
		t.Fatalf("err = %v, want peer down", err)
	}
	if alg.recovers != 0 {
		t.Fatal("Recover ran after a failed iteration")
	}
}

func TestExecClientErrorIsWrapped(t *testing.T) {
	tr := &fakeTransport{failOn: "c1"}
	d := &Driver{Transport: tr}
	err := d.Exec(context.Background(), testRound(), Exchange{Verb: "toy.notify", Class: Clients})
	if err == nil || !strings.Contains(err.Error(), `engine: client c1 toy.notify`) {
		t.Fatalf("err = %v, want wrapped client error", err)
	}
}

func TestDriverDefaultsAndReleasesPool(t *testing.T) {
	tr := &fakeTransport{values: map[string]float64{"r1": 1, "r2": 2}}
	rd := testRound()
	d := &Driver{Transport: tr}
	if _, _, err := d.Run(context.Background(), d.poolProbe(t, rd), rd); err != nil {
		t.Fatal(err)
	}
}

// poolProbe returns an Algorithm that asserts the driver installed a Pool
// before Init and that Pool buffers are usable.
func (d *Driver) poolProbe(t *testing.T, rd *Round) Algorithm {
	t.Helper()
	return &probeAlg{t: t}
}

type probeAlg struct {
	t *testing.T
	sumAlg
}

func (p *probeAlg) Init(rd *Round) error {
	if rd.Pool == nil {
		p.t.Fatal("driver did not default the pool")
	}
	if v := rd.Pool.Vector(3); len(v) != 3 {
		p.t.Fatalf("pool vector len %d", len(v))
	}
	p.target = 3
	return p.sumAlg.Init(rd)
}

func TestFanOutCancelsWaveOnError(t *testing.T) {
	blocked := make(chan struct{})
	err := FanOut(context.Background(), 2, func(ctx context.Context, i int) error {
		if i == 0 {
			return errors.New("boom")
		}
		// The second goroutine waits for cancellation: FanOut must cancel
		// the wave and still wait for it to finish.
		<-ctx.Done()
		close(blocked)
		return ctx.Err()
	})
	if err == nil || err.Error() != "boom" {
		t.Fatalf("err = %v, want boom", err)
	}
	select {
	case <-blocked:
	default:
		t.Fatal("FanOut returned before the cancelled goroutine finished")
	}
}

func TestFanOutEmpty(t *testing.T) {
	if err := FanOut(context.Background(), 0, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRegistryRegisterAndLookup(t *testing.T) {
	Register(Registration{
		Name:  "TEST-ALG",
		New:   func() Algorithm { return &sumAlg{} },
		Verbs: []string{"test.alg.step"},
	})
	if _, ok := Lookup("TEST-ALG"); !ok {
		t.Fatal("registered algorithm not found")
	}
	if reg, ok := ServerFor("test.alg.step"); !ok || reg.Name != "TEST-ALG" {
		t.Fatalf("ServerFor = %v, %v", reg, ok)
	}
	if _, ok := ServerFor("test.alg.unknown"); ok {
		t.Fatal("unknown verb resolved")
	}
	found := false
	for _, n := range Names() {
		if n == "TEST-ALG" {
			found = true
		}
	}
	if !found {
		t.Fatalf("Names() = %v missing TEST-ALG", Names())
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	mustPanic := func(name string, reg Registration) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: Register did not panic", name)
			}
		}()
		Register(reg)
	}
	Register(Registration{Name: "TEST-DUP", New: func() Algorithm { return &sumAlg{} }, Verbs: []string{"test.dup.step"}})
	mustPanic("dup name", Registration{Name: "TEST-DUP", New: func() Algorithm { return &sumAlg{} }})
	mustPanic("dup verb", Registration{Name: "TEST-DUP2", New: func() Algorithm { return &sumAlg{} }, Verbs: []string{"test.dup.step"}})
	mustPanic("no factory", Registration{Name: "TEST-DUP3"})
}

func TestServerRoundStateLazyAndSticky(t *testing.T) {
	sr := &ServerRound{Round: 1}
	builds := 0
	build := func() (any, error) { builds++; return &struct{ n int }{}, nil }
	first, err := sr.State("A", build)
	if err != nil {
		t.Fatal(err)
	}
	second, err := sr.State("A", build)
	if err != nil {
		t.Fatal(err)
	}
	if first != second || builds != 1 {
		t.Fatalf("state rebuilt: builds=%d", builds)
	}
	if _, err := sr.State("B", func() (any, error) { return nil, errors.New("nope") }); err == nil {
		t.Fatal("build error swallowed")
	}
}

func TestServerRoundStateConcurrent(t *testing.T) {
	sr := &ServerRound{Round: 1}
	var wg sync.WaitGroup
	results := make([]any, 16)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, err := sr.State("X", func() (any, error) { return opt.NewMatrix(2, 2), nil })
			if err != nil {
				t.Error(err)
			}
			results[i] = st
		}(i)
	}
	wg.Wait()
	for _, st := range results[1:] {
		if fmt.Sprintf("%p", st) != fmt.Sprintf("%p", results[0]) {
			t.Fatal("concurrent State calls built distinct states")
		}
	}
}
