package engine

import (
	"fmt"
	"sort"
	"sync"
)

// Registration couples an algorithm's two halves under one wire name.
type Registration struct {
	// Name keys the registry and appears in configs, reports, and
	// metrics. Upper-case by convention ("LDDM", "ADMM").
	Name string
	// New builds a fresh initiator half for one round.
	New func() Algorithm
	// Server is the participant half answering the algorithm's verbs
	// (nil for algorithms whose iterations need no replica-side state).
	Server ServerHalf
	// Verbs lists the wire message types routed to Server.
	Verbs []string
}

var (
	regMu     sync.RWMutex
	byName    = make(map[string]*Registration)
	byVerb    = make(map[string]*Registration)
	nameOrder []string
)

// Register adds an algorithm to the registry, panicking on a duplicate
// name or verb — registration happens in init() and a collision is a
// programming error, not a runtime condition.
func Register(reg Registration) {
	regMu.Lock()
	defer regMu.Unlock()
	if reg.Name == "" || reg.New == nil {
		panic("engine: Register needs a name and a factory")
	}
	if _, dup := byName[reg.Name]; dup {
		panic(fmt.Sprintf("engine: algorithm %q registered twice", reg.Name))
	}
	for _, v := range reg.Verbs {
		if prev, dup := byVerb[v]; dup {
			panic(fmt.Sprintf("engine: verb %q claimed by both %s and %s", v, prev.Name, reg.Name))
		}
	}
	r := reg
	byName[r.Name] = &r
	for _, v := range r.Verbs {
		byVerb[v] = &r
	}
	nameOrder = append(nameOrder, r.Name)
	sort.Strings(nameOrder)
}

// Lookup resolves an algorithm by name.
func Lookup(name string) (*Registration, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	r, ok := byName[name]
	return r, ok
}

// ServerFor resolves the algorithm owning a wire verb, so a replica can
// route an incoming message to the right server half without per-verb
// handler cases.
func ServerFor(verb string) (*Registration, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	r, ok := byVerb[verb]
	return r, ok
}

// Names lists the registered algorithms, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	return append([]string(nil), nameOrder...)
}
