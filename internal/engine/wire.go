package engine

// MsgMuUpdate is initiator → client: apply one multiplier update. It is
// engine-level rather than algorithm-level because the client-held dual
// is a shared primitive: LDDM's μ ascent (Algorithm 2, line 6 — the
// update task "is assigned to the clients") and ADMM's scaled dual u are
// the same wire exchange with different step sizes.
const MsgMuUpdate = "client.muupdate"

// MuUpdateBody asks a client to update its multiplier:
// μ ← μ + Step·(ServedMB − DemandMB).
type MuUpdateBody struct {
	Round    int     `json:"round"`
	Iter     int     `json:"iter"`
	ServedMB float64 `json:"served_mb"`
	DemandMB float64 `json:"demand_mb"`
	Step     float64 `json:"step"`
}

// MuUpdateReply returns the client's new multiplier.
type MuUpdateReply struct {
	Mu float64 `json:"mu"`
}
