package engine

import (
	"context"
	"sync"

	"edr/internal/opt"
)

// PeerSender lets a participant's server half talk to its peer replicas
// mid-iteration (CDPSM's estimate pulls). One-shot sends: retrying is the
// initiator's business.
type PeerSender interface {
	Send(ctx context.Context, to, verb string, body any) (Reply, error)
}

// ServerRound is the participant side of one round: the problem instance,
// this replica's column, and lazily-built per-algorithm state. It is
// created when the initiator installs the round (round.start) and shared
// by every verb the round's messages carry.
type ServerRound struct {
	// Round is the initiator-local round id.
	Round int
	// Prob is the optimization instance rebuilt from the round spec.
	Prob *opt.Problem
	// Col is this replica's column in the spec's replica order.
	Col int
	// Self is this replica's address; ReplicaAddrs the spec's column
	// order.
	Self         string
	ReplicaAddrs []string
	// Peers reaches the other replicas of the round.
	Peers PeerSender
	// Warm, when non-nil, is the initiator's warm-start assignment
	// (client×replica) shipped with the round spec; participant state
	// that holds a full-solution estimate (CDPSM) seeds from it.
	Warm [][]float64
	// Par fans this replica's solver kernels (local projections) across
	// cores; nil runs them serially.
	Par *opt.Parallel

	mu     sync.Mutex
	states map[string]any
}

// State returns the named algorithm's participant state for this round,
// building it on first use. Lazy construction means a replica pays only
// for the algorithm actually driven over it — an LDDM round never builds
// CDPSM's full-matrix estimate.
func (sr *ServerRound) State(alg string, build func() (any, error)) (any, error) {
	sr.mu.Lock()
	defer sr.mu.Unlock()
	if st, ok := sr.states[alg]; ok {
		return st, nil
	}
	st, err := build()
	if err != nil {
		return nil, err
	}
	if sr.states == nil {
		sr.states = make(map[string]any)
	}
	sr.states[alg] = st
	return st, nil
}

// ServerHalf answers an algorithm's wire verbs on a participant replica.
// Handle returns the reply body (wrapped into the verb's ack by the
// replica server) or an error, which the transport surfaces to the
// initiator. Handlers may run concurrently for different messages; state
// shared across verbs must lock.
type ServerHalf interface {
	Handle(ctx context.Context, verb string, req Reply, sr *ServerRound) (reply any, err error)
}
