package engine

import "edr/internal/transport"

// Compact binary codecs (transport binary body v1) for the engine-level
// multiplier-update verb: five scalars out, one back, sent once per
// client per iteration. The request body leads with the u32 LE round id
// per the wire convention.

func (b MuUpdateBody) MarshalBinary() ([]byte, error) {
	out := transport.AppendUint32(nil, uint32(b.Round))
	out = transport.AppendUint32(out, uint32(b.Iter))
	out = transport.AppendFloat64(out, b.ServedMB)
	out = transport.AppendFloat64(out, b.DemandMB)
	return transport.AppendFloat64(out, b.Step), nil
}

func (b *MuUpdateBody) UnmarshalBinary(data []byte) error {
	round, data, err := transport.ReadUint32(data)
	if err != nil {
		return err
	}
	iter, data, err := transport.ReadUint32(data)
	if err != nil {
		return err
	}
	served, data, err := transport.ReadFloat64(data)
	if err != nil {
		return err
	}
	demand, data, err := transport.ReadFloat64(data)
	if err != nil {
		return err
	}
	step, _, err := transport.ReadFloat64(data)
	if err != nil {
		return err
	}
	b.Round, b.Iter, b.ServedMB, b.DemandMB, b.Step = int(round), int(iter), served, demand, step
	return nil
}

func (b MuUpdateReply) MarshalBinary() ([]byte, error) {
	return transport.AppendFloat64(nil, b.Mu), nil
}

func (b *MuUpdateReply) UnmarshalBinary(data []byte) error {
	mu, _, err := transport.ReadFloat64(data)
	if err != nil {
		return err
	}
	b.Mu = mu
	return nil
}
