// Package probgen constructs replica-selection problem instances from the
// substrate pieces (energy model, pricing, topology, workload) — the glue
// used by tests, benchmarks, and every experiment harness.
package probgen

import (
	"fmt"

	"edr/internal/model"
	"edr/internal/netsim"
	"edr/internal/opt"
	"edr/internal/placement"
	"edr/internal/pricing"
	"edr/internal/sim"
	"edr/internal/workload"
)

// Spec describes an instance to generate.
type Spec struct {
	// Clients and Replicas set the problem dimensions (> 0).
	Clients, Replicas int
	// Prices are per-replica ¢/kWh; nil draws the paper's uniform [1,20].
	Prices []float64
	// Demands are per-client MB; nil draws uniformly from DemandRange.
	Demands []float64
	// DemandRange bounds random demands; zero means [5, 40].
	DemandLo, DemandHi float64
	// Geo switches from single-cluster to wide-area topology with
	// latency-infeasible links.
	Geo bool
	// Regions, when positive, switches to the region-structured wide-area
	// topology (netsim.RegionalTopology): clients share their region's
	// latency vector up to a small jitter, the structure cohort
	// aggregation (internal/cohort) compresses 10k–1M raw clients down to
	// a few hundred virtual ones. Takes precedence over Geo.
	Regions int
	// LossyFraction, when positive, draws a packet-loss model with that
	// fraction of congested links (see netsim.UniformLoss) and folds
	// links above the loss tolerance into the feasibility mask — the
	// "least packet loss" criterion of the paper's introduction.
	LossyFraction float64
	// Gamma overrides γ_n for all replicas; 0 keeps the default 3.
	Gamma float64
}

// New builds a validated problem instance from spec using randomness from r.
func New(r *sim.Rand, spec Spec) (*opt.Problem, error) {
	if spec.Clients <= 0 || spec.Replicas <= 0 {
		return nil, fmt.Errorf("probgen: need positive dimensions, got %d clients %d replicas", spec.Clients, spec.Replicas)
	}
	prices := spec.Prices
	if prices == nil {
		prices = pricing.Uniform(r, spec.Replicas)
	}
	if len(prices) != spec.Replicas {
		return nil, fmt.Errorf("probgen: %d prices for %d replicas", len(prices), spec.Replicas)
	}
	var top *netsim.Topology
	switch {
	case spec.Regions > 0:
		top = netsim.RegionalTopology(r, spec.Clients, spec.Replicas, spec.Regions, 0.3)
	case spec.Geo:
		top = netsim.GeoTopology(r, spec.Clients, spec.Replicas, 0.3)
	default:
		top = netsim.ClusterTopology(r, spec.Clients, spec.Replicas)
	}
	replicas := make([]model.Replica, spec.Replicas)
	for j := range replicas {
		rep := model.NewReplica(top.ReplicaNames[j], prices[j])
		rep.Bandwidth = top.BandwidthMBps[j]
		if spec.Gamma > 0 {
			rep.Gamma = spec.Gamma
		}
		replicas[j] = rep
	}
	sys, err := model.NewSystem(replicas)
	if err != nil {
		return nil, err
	}
	demands := spec.Demands
	if demands == nil {
		lo, hi := spec.DemandLo, spec.DemandHi
		if hi <= 0 {
			lo, hi = 5, 40
		}
		demands = make([]float64, spec.Clients)
		for c := range demands {
			demands[c] = r.Range(lo, hi)
		}
	}
	if len(demands) != spec.Clients {
		return nil, fmt.Errorf("probgen: %d demands for %d clients", len(demands), spec.Clients)
	}
	prob := &opt.Problem{
		System:     sys,
		Demands:    demands,
		Latency:    top.LatencySec,
		MaxLatency: netsim.DefaultMaxLatency.Seconds(),
	}
	if spec.LossyFraction > 0 {
		loss := netsim.UniformLoss(r, top, spec.LossyFraction)
		if err := loss.Validate(top); err != nil {
			return nil, err
		}
		loss.ApplyToLatency(prob.Latency, prob.MaxLatency)
		// The problem is freshly built, but keep the mask invariant local:
		// any Latency mutation is followed by an invalidation.
		prob.InvalidateMask()
	}
	if err := prob.Validate(); err != nil {
		return nil, err
	}
	return prob, nil
}

// MustFeasible builds instances until one passes the max-flow feasibility
// oracle, retrying up to 50 draws. Deterministic given r's state.
func MustFeasible(r *sim.Rand, spec Spec) (*opt.Problem, error) {
	for attempt := 0; attempt < 50; attempt++ {
		prob, err := New(r, spec)
		if err != nil {
			return nil, err
		}
		if opt.CheckFeasible(prob) == nil {
			return prob, nil
		}
	}
	return nil, fmt.Errorf("probgen: no feasible instance in 50 draws for %+v", spec)
}

// FromRequests builds an instance with one row *per request* (rather than
// per client), masking each row by both the latency bound and a content
// placement map: replica n may serve request i only if it is close enough
// AND hosts the requested item — the additional restriction the paper's
// future work calls for. A nil placement falls back to latency-only
// masking.
func FromRequests(r *sim.Rand, batch []workload.Request, replicas int, prices []float64, geo bool, pm *placement.Map) (*opt.Problem, error) {
	if len(batch) == 0 {
		return nil, fmt.Errorf("probgen: empty batch")
	}
	if pm != nil {
		if err := pm.Validate(); err != nil {
			return nil, err
		}
		if pm.Replicas != replicas {
			return nil, fmt.Errorf("probgen: placement map over %d replicas, want %d", pm.Replicas, replicas)
		}
	}
	demands := make([]float64, len(batch))
	for i, req := range batch {
		demands[i] = req.SizeMB
	}
	prob, err := New(r, Spec{
		Clients:  len(batch),
		Replicas: replicas,
		Prices:   prices,
		Demands:  demands,
		Geo:      geo,
	})
	if err != nil {
		return nil, err
	}
	if pm != nil {
		// Encode the placement restriction through the latency mask: a
		// replica not hosting the item is pushed beyond the bound, which
		// every solver already respects.
		for i, req := range batch {
			for n := 0; n < replicas; n++ {
				if !pm.AllowRequest(req, n) {
					prob.Latency[i][n] = 10 * prob.MaxLatency
				}
			}
		}
		prob.InvalidateMask()
	}
	return prob, nil
}

// FromBatch builds an instance whose demands aggregate a workload batch —
// one EDR scheduling round over live traffic.
func FromBatch(r *sim.Rand, batch []workload.Request, replicas int, prices []float64, geo bool) (*opt.Problem, error) {
	clients := 0
	for _, req := range batch {
		if req.Client+1 > clients {
			clients = req.Client + 1
		}
	}
	if clients == 0 {
		return nil, fmt.Errorf("probgen: empty batch")
	}
	return New(r, Spec{
		Clients:  clients,
		Replicas: replicas,
		Prices:   prices,
		Demands:  workload.Demands(batch, clients),
		Geo:      geo,
	})
}
