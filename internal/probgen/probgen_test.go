package probgen

import (
	"testing"
	"time"

	"edr/internal/opt"
	"edr/internal/placement"
	"edr/internal/pricing"
	"edr/internal/sim"
	"edr/internal/workload"
)

func TestNewBasic(t *testing.T) {
	r := sim.NewRand(1)
	prob, err := New(r, Spec{Clients: 5, Replicas: 3})
	if err != nil {
		t.Fatal(err)
	}
	if prob.C() != 5 || prob.N() != 3 {
		t.Fatalf("dims = %dx%d", prob.C(), prob.N())
	}
	for _, d := range prob.Demands {
		if d < 5 || d > 40 {
			t.Fatalf("default demand %g outside [5,40]", d)
		}
	}
	for _, rep := range prob.System.Replicas {
		if rep.Price < pricing.MinPrice || rep.Price > pricing.MaxPrice {
			t.Fatalf("price %g outside paper range", rep.Price)
		}
		if rep.Gamma != 3 {
			t.Fatalf("gamma = %g", rep.Gamma)
		}
	}
}

func TestNewExplicitValues(t *testing.T) {
	r := sim.NewRand(2)
	prob, err := New(r, Spec{
		Clients:  2,
		Replicas: 2,
		Prices:   []float64{4, 9},
		Demands:  []float64{10, 20},
		Gamma:    2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if prob.System.Replicas[0].Price != 4 || prob.System.Replicas[1].Price != 9 {
		t.Fatalf("prices not used: %+v", prob.System.Replicas)
	}
	if prob.Demands[0] != 10 || prob.Demands[1] != 20 {
		t.Fatalf("demands not used: %v", prob.Demands)
	}
	if prob.System.Replicas[0].Gamma != 2 {
		t.Fatalf("gamma override ignored: %g", prob.System.Replicas[0].Gamma)
	}
}

func TestNewValidation(t *testing.T) {
	r := sim.NewRand(3)
	if _, err := New(r, Spec{Clients: 0, Replicas: 2}); err == nil {
		t.Fatal("zero clients accepted")
	}
	if _, err := New(r, Spec{Clients: 2, Replicas: 2, Prices: []float64{1}}); err == nil {
		t.Fatal("short prices accepted")
	}
	if _, err := New(r, Spec{Clients: 2, Replicas: 2, Demands: []float64{1}}); err == nil {
		t.Fatal("short demands accepted")
	}
}

func TestGeoProducesMaskedLinks(t *testing.T) {
	r := sim.NewRand(4)
	prob, err := New(r, Spec{Clients: 20, Replicas: 6, Geo: true})
	if err != nil {
		t.Fatal(err)
	}
	mask := prob.Allowed()
	masked := 0
	for c := range mask {
		for _, ok := range mask[c] {
			if !ok {
				masked++
			}
		}
	}
	if masked == 0 {
		t.Fatal("geo instance has no infeasible links")
	}
}

func TestMustFeasibleAlwaysFeasible(t *testing.T) {
	r := sim.NewRand(5)
	for trial := 0; trial < 20; trial++ {
		prob, err := MustFeasible(r, Spec{Clients: 6, Replicas: 4, Geo: trial%2 == 0})
		if err != nil {
			t.Fatal(err)
		}
		if err := opt.CheckFeasible(prob); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestFromBatch(t *testing.T) {
	r := sim.NewRand(6)
	trace, err := workload.Generate(r, workload.Config{
		App:             workload.DFS,
		Clients:         5,
		MeanRatePerHour: 1200,
		Duration:        time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	batch := trace[:20]
	prob, err := FromBatch(r, batch, 4, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	if prob.N() != 4 {
		t.Fatalf("replicas = %d", prob.N())
	}
	// Demands must aggregate the batch exactly.
	want := workload.Demands(batch, prob.C())
	for c, d := range prob.Demands {
		if d != want[c] {
			t.Fatalf("demand[%d] = %g, want %g", c, d, want[c])
		}
	}
}

func TestFromBatchEmpty(t *testing.T) {
	r := sim.NewRand(7)
	if _, err := FromBatch(r, nil, 3, nil, false); err == nil {
		t.Fatal("empty batch accepted")
	}
}

func TestDeterministicBySeed(t *testing.T) {
	a, err := New(sim.NewRand(11), Spec{Clients: 4, Replicas: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(sim.NewRand(11), Spec{Clients: 4, Replicas: 3})
	if err != nil {
		t.Fatal(err)
	}
	for c := range a.Latency {
		for n := range a.Latency[c] {
			if a.Latency[c][n] != b.Latency[c][n] {
				t.Fatal("same seed, different instances")
			}
		}
	}
}

func TestFromRequestsPlacementMask(t *testing.T) {
	r := sim.NewRand(21)
	trace, err := workload.Generate(r, workload.Config{
		App:             workload.DFS,
		Clients:         5,
		CatalogSize:     20,
		MeanRatePerHour: 1200,
		Duration:        time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	batch := trace[:10]
	pm := placement.ReplicateK(r, 20, 4, 2)
	prob, err := FromRequests(r, batch, 4, nil, false, pm)
	if err != nil {
		t.Fatal(err)
	}
	if prob.C() != 10 {
		t.Fatalf("rows = %d, want one per request", prob.C())
	}
	mask := prob.Allowed()
	for i, req := range batch {
		if prob.Demands[i] != req.SizeMB {
			t.Fatalf("row %d demand %g, want %g", i, prob.Demands[i], req.SizeMB)
		}
		allowed := 0
		for n := 0; n < 4; n++ {
			if mask[i][n] {
				allowed++
				if !pm.Hosted(req.Content, n) {
					t.Fatalf("row %d allows non-hosting replica %d", i, n)
				}
			}
		}
		if allowed == 0 {
			t.Fatalf("row %d has no allowed replica", i)
		}
	}
}

func TestFromRequestsNilPlacement(t *testing.T) {
	r := sim.NewRand(22)
	batch := []workload.Request{{Content: 0, SizeMB: 5}, {Content: 1, SizeMB: 7}}
	prob, err := FromRequests(r, batch, 3, nil, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	mask := prob.Allowed()
	for i := range batch {
		for n := 0; n < 3; n++ {
			if !mask[i][n] {
				t.Fatalf("nil placement masked [%d][%d]", i, n)
			}
		}
	}
}

func TestFromRequestsValidation(t *testing.T) {
	r := sim.NewRand(23)
	if _, err := FromRequests(r, nil, 3, nil, false, nil); err == nil {
		t.Fatal("empty batch accepted")
	}
	pm := placement.ReplicateK(r, 5, 4, 2)
	batch := []workload.Request{{Content: 0, SizeMB: 5}}
	if _, err := FromRequests(r, batch, 3, nil, false, pm); err == nil {
		t.Fatal("replica-count mismatch accepted")
	}
}

func TestLossyFractionMasksLinks(t *testing.T) {
	r := sim.NewRand(31)
	prob, err := New(r, Spec{Clients: 20, Replicas: 6, LossyFraction: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	mask := prob.Allowed()
	masked := 0
	for c := range mask {
		for _, ok := range mask[c] {
			if !ok {
				masked++
			}
		}
	}
	if masked == 0 {
		t.Fatal("lossy instance has no masked links")
	}
	// Solvers still work when the instance is feasible.
	if opt.CheckFeasible(prob) == nil {
		x, err := opt.FrankWolfe(prob, opt.FWOptions{MaxIters: 200})
		if err != nil {
			t.Fatal(err)
		}
		for c := range x.X {
			for n, v := range x.X[c] {
				if !mask[c][n] && v > 1e-9 {
					t.Fatalf("loss-masked entry [%d][%d] = %g served", c, n, v)
				}
			}
		}
	}
}

func TestNewRegionalClientScale(t *testing.T) {
	// 10k ungrouped clients in 50 regions — the cohort layer's input shape.
	prob, err := New(sim.NewRand(3), Spec{Clients: 10000, Replicas: 10, Regions: 50})
	if err != nil {
		t.Fatal(err)
	}
	if prob.C() != 10000 || prob.N() != 10 {
		t.Fatalf("dims %dx%d", prob.C(), prob.N())
	}
	mask := prob.Allowed()
	for c := 0; c < prob.C(); c++ {
		feasible := 0
		for n := 0; n < prob.N(); n++ {
			if mask[c][n] {
				feasible++
			}
		}
		if feasible == 0 {
			t.Fatalf("client %d has no feasible replica", c)
		}
	}
}
