package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTimerSummary(t *testing.T) {
	var tm Timer
	for i := 1; i <= 100; i++ {
		tm.Record(time.Duration(i) * time.Millisecond)
	}
	s := tm.Summarize()
	if s.Count != 100 {
		t.Fatalf("Count = %d", s.Count)
	}
	if s.Min != time.Millisecond || s.Max != 100*time.Millisecond {
		t.Fatalf("min/max = %v/%v", s.Min, s.Max)
	}
	if s.P50 != 50*time.Millisecond {
		t.Fatalf("P50 = %v, want 50ms", s.P50)
	}
	if s.P95 != 95*time.Millisecond {
		t.Fatalf("P95 = %v, want 95ms", s.P95)
	}
	if s.Mean < 50*time.Millisecond || s.Mean > 51*time.Millisecond {
		t.Fatalf("Mean = %v, want 50.5ms", s.Mean)
	}
	if s.StdDev <= 0 {
		t.Fatalf("StdDev = %v", s.StdDev)
	}
}

func TestTimerEmpty(t *testing.T) {
	var tm Timer
	s := tm.Summarize()
	if s.Count != 0 || s.Mean != 0 || s.P95 != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
	if tm.Count() != 0 {
		t.Fatal("Count != 0")
	}
}

func TestTimerSingleSample(t *testing.T) {
	var tm Timer
	tm.Record(7 * time.Millisecond)
	s := tm.Summarize()
	if s.P50 != 7*time.Millisecond || s.P95 != 7*time.Millisecond || s.Min != s.Max {
		t.Fatalf("single-sample summary = %+v", s)
	}
}

func TestTimerConcurrent(t *testing.T) {
	var tm Timer
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				tm.Record(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if tm.Count() != 800 {
		t.Fatalf("Count = %d, want 800", tm.Count())
	}
}

func TestTimerReservoirBound(t *testing.T) {
	var tm Timer
	const n = 10 * ReservoirSize
	for i := 1; i <= n; i++ {
		tm.Record(time.Duration(i) * time.Microsecond)
	}
	if tm.Count() != n {
		t.Fatalf("Count = %d, want %d (exact past the cap)", tm.Count(), n)
	}
	if len(tm.samples) != ReservoirSize {
		t.Fatalf("reservoir holds %d samples, want cap %d", len(tm.samples), ReservoirSize)
	}
	s := tm.Summarize()
	if s.Min != time.Microsecond || s.Max != n*time.Microsecond {
		t.Fatalf("min/max = %v/%v, want exact extremes", s.Min, s.Max)
	}
	wantMean := time.Duration(n+1) / 2 * time.Microsecond
	if s.Mean < wantMean-time.Microsecond || s.Mean > wantMean+time.Microsecond {
		t.Fatalf("Mean = %v, want ≈%v (exact from running sums)", s.Mean, wantMean)
	}
	// The reservoir P50 is an estimate; a uniform 1..n stream should put
	// it well inside the middle half.
	if s.P50 < n/4*time.Microsecond || s.P50 > 3*n/4*time.Microsecond {
		t.Fatalf("P50 = %v, implausible for uniform 1..%d µs", s.P50, n)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 5 {
		t.Fatalf("Count = %d", s.Count)
	}
	if s.Sum != 56.05 {
		t.Fatalf("Sum = %g", s.Sum)
	}
	want := []int64{1, 3, 4, 5} // cumulative: ≤0.1, ≤1, ≤10, +Inf
	for i, w := range want {
		if s.Cumulative[i] != w {
			t.Fatalf("Cumulative = %v, want %v", s.Cumulative, want)
		}
	}
}

func TestHistogramBoundaryLandsInBucket(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	h.Observe(1) // exactly on a bound counts as ≤ bound (le semantics)
	s := h.Snapshot()
	if s.Cumulative[0] != 1 {
		t.Fatalf("observation on the bound missed its bucket: %v", s.Cumulative)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(DurationBuckets())
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				h.Observe(0.005)
			}
		}()
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != 8000 {
		t.Fatalf("Count = %d, want 8000", s.Count)
	}
	if s.Sum < 39.9 || s.Sum > 40.1 {
		t.Fatalf("Sum = %g, want 40", s.Sum)
	}
	if s.Cumulative[len(s.Cumulative)-1] != 8000 {
		t.Fatalf("+Inf cumulative = %d", s.Cumulative[len(s.Cumulative)-1])
	}
}

func TestSummaryString(t *testing.T) {
	var tm Timer
	tm.Record(time.Millisecond)
	s := tm.Summarize().String()
	if !strings.Contains(s, "n=1") || !strings.Contains(s, "mean=") {
		t.Fatalf("String = %q", s)
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc(5)
	c.Inc(-2)
	if c.Value() != 3 {
		t.Fatalf("Value = %d", c.Value())
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc(1)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 16000 {
		t.Fatalf("Value = %d, want 16000", c.Value())
	}
}

func TestAccumulator(t *testing.T) {
	a := NewAccumulator()
	a.Add("replica1", 10)
	a.Add("replica2", 5)
	a.Add("replica1", 2.5)
	if got := a.Get("replica1"); got != 12.5 {
		t.Fatalf("Get(replica1) = %g", got)
	}
	if got := a.Get("ghost"); got != 0 {
		t.Fatalf("Get(ghost) = %g", got)
	}
	if got := a.Total(); got != 17.5 {
		t.Fatalf("Total = %g", got)
	}
	keys := a.Keys()
	if len(keys) != 2 || keys[0] != "replica1" || keys[1] != "replica2" {
		t.Fatalf("Keys = %v", keys)
	}
}
