// Package metrics provides the small measurement toolkit the experiment
// harness and the live runtime share: response-time recorders with
// percentile summaries, counters, and per-replica accumulators.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// Timer records durations and summarizes them. Safe for concurrent use.
type Timer struct {
	mu      sync.Mutex
	samples []time.Duration
}

// Record adds one observation.
func (t *Timer) Record(d time.Duration) {
	t.mu.Lock()
	t.samples = append(t.samples, d)
	t.mu.Unlock()
}

// Count returns the number of observations.
func (t *Timer) Count() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.samples)
}

// Summary describes a duration distribution.
type Summary struct {
	Count            int
	Mean, P50, P95   time.Duration
	Min, Max, StdDev time.Duration
}

// Summarize computes the distribution summary. An empty timer yields the
// zero Summary.
func (t *Timer) Summarize() Summary {
	t.mu.Lock()
	samples := make([]time.Duration, len(t.samples))
	copy(samples, t.samples)
	t.mu.Unlock()
	if len(samples) == 0 {
		return Summary{}
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	var sum, sumSq float64
	for _, d := range samples {
		f := float64(d)
		sum += f
		sumSq += f * f
	}
	n := float64(len(samples))
	mean := sum / n
	variance := sumSq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	return Summary{
		Count:  len(samples),
		Mean:   time.Duration(mean),
		P50:    percentile(samples, 0.50),
		P95:    percentile(samples, 0.95),
		Min:    samples[0],
		Max:    samples[len(samples)-1],
		StdDev: time.Duration(math.Sqrt(variance)),
	}
}

// percentile returns the p-quantile (0 ≤ p ≤ 1) of sorted samples by
// nearest-rank.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(p*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// String renders the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v min=%v max=%v",
		s.Count, s.Mean.Round(time.Microsecond), s.P50.Round(time.Microsecond),
		s.P95.Round(time.Microsecond), s.Min.Round(time.Microsecond), s.Max.Round(time.Microsecond))
}

// Counter is a concurrent event counter.
type Counter struct {
	mu sync.Mutex
	n  int64
}

// Inc adds delta (may be negative).
func (c *Counter) Inc(delta int64) {
	c.mu.Lock()
	c.n += delta
	c.mu.Unlock()
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// Accumulator sums float64 contributions per named key (e.g. per-replica
// energy cost). Safe for concurrent use.
type Accumulator struct {
	mu sync.Mutex
	m  map[string]float64
}

// NewAccumulator returns an empty accumulator.
func NewAccumulator() *Accumulator {
	return &Accumulator{m: make(map[string]float64)}
}

// Add accumulates v under key.
func (a *Accumulator) Add(key string, v float64) {
	a.mu.Lock()
	a.m[key] += v
	a.mu.Unlock()
}

// Get returns the sum for key (0 if never added).
func (a *Accumulator) Get(key string) float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.m[key]
}

// Total sums all keys.
func (a *Accumulator) Total() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	total := 0.0
	for _, v := range a.m {
		total += v
	}
	return total
}

// Keys returns the keys in sorted order.
func (a *Accumulator) Keys() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	keys := make([]string, 0, len(a.m))
	for k := range a.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
