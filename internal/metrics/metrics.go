// Package metrics provides the small measurement toolkit the experiment
// harness and the live runtime share: response-time recorders with
// percentile summaries, counters, histograms, and per-replica
// accumulators.
package metrics

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// ReservoirSize caps the memory one Timer holds: at most this many
// samples are kept for percentile estimation. Below the cap percentiles
// are exact; above it the kept samples are a uniform random reservoir
// (Vitter's Algorithm R), so percentiles become unbiased estimates while
// Count, Mean, StdDev, Min and Max stay exact from running aggregates. A
// long-running edrd therefore pays a fixed ~8 KiB per Timer no matter how
// many rounds it serves.
const ReservoirSize = 1024

// Timer records durations and summarizes them. Safe for concurrent use.
// Memory is bounded by ReservoirSize (see its doc for the exactness
// contract).
type Timer struct {
	mu      sync.Mutex
	count   int64
	sum     float64
	sumSq   float64
	min     time.Duration
	max     time.Duration
	samples []time.Duration // uniform reservoir of at most ReservoirSize
}

// Record adds one observation.
func (t *Timer) Record(d time.Duration) {
	t.mu.Lock()
	t.count++
	f := float64(d)
	t.sum += f
	t.sumSq += f * f
	if t.count == 1 || d < t.min {
		t.min = d
	}
	if d > t.max {
		t.max = d
	}
	if len(t.samples) < ReservoirSize {
		t.samples = append(t.samples, d)
	} else if j := rand.Int64N(t.count); j < ReservoirSize {
		t.samples[j] = d
	}
	t.mu.Unlock()
}

// Count returns the number of observations (exact, even past the
// reservoir cap).
func (t *Timer) Count() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return int(t.count)
}

// Summary describes a duration distribution.
type Summary struct {
	Count            int
	Mean, P50, P95   time.Duration
	Min, Max, StdDev time.Duration
}

// Summarize computes the distribution summary. An empty timer yields the
// zero Summary. Count, Mean, StdDev, Min and Max are exact; P50/P95 are
// exact until ReservoirSize observations, then reservoir estimates.
func (t *Timer) Summarize() Summary {
	t.mu.Lock()
	samples := make([]time.Duration, len(t.samples))
	copy(samples, t.samples)
	count, sum, sumSq := t.count, t.sum, t.sumSq
	min, max := t.min, t.max
	t.mu.Unlock()
	if count == 0 {
		return Summary{}
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	n := float64(count)
	mean := sum / n
	variance := sumSq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	return Summary{
		Count:  int(count),
		Mean:   time.Duration(mean),
		P50:    percentile(samples, 0.50),
		P95:    percentile(samples, 0.95),
		Min:    min,
		Max:    max,
		StdDev: time.Duration(math.Sqrt(variance)),
	}
}

// percentile returns the p-quantile (0 ≤ p ≤ 1) of sorted samples by
// nearest-rank.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(p*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// String renders the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v min=%v max=%v",
		s.Count, s.Mean.Round(time.Microsecond), s.P50.Round(time.Microsecond),
		s.P95.Round(time.Microsecond), s.Min.Round(time.Microsecond), s.Max.Round(time.Microsecond))
}

// Counter is a concurrent event counter. It is a single atomic word:
// safe to embed by value in hot-path stats structs (core.ClientStats,
// transport instrumentation) with no lock contention.
type Counter struct {
	n atomic.Int64
}

// Inc adds delta (may be negative).
func (c *Counter) Inc(delta int64) {
	c.n.Add(delta)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	return c.n.Load()
}

// Histogram counts observations into fixed cumulative-style buckets, the
// shape Prometheus histograms export. Buckets and the running sum use
// atomics, so Observe is lock-free and safe on hot paths.
type Histogram struct {
	bounds  []float64 // ascending upper bounds; an implicit +Inf follows
	counts  []atomic.Int64
	total   atomic.Int64
	sumBits atomic.Uint64 // float64 bits of the running sum of observations
}

// NewHistogram builds a histogram over the given ascending upper bounds.
// Observations greater than every bound land in the implicit +Inf bucket.
func NewHistogram(bounds []float64) *Histogram {
	h := &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
	return h
}

// DurationBuckets is a general-purpose latency bucket layout in seconds,
// from 1 ms to ~100 s in roughly ×3 steps.
func DurationBuckets() []float64 {
	return []float64{0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1, 3, 10, 30, 100}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound ≥ v
	h.counts[i].Add(1)
	h.total.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// HistogramSnapshot is a consistent-enough view of a histogram for
// export: cumulative counts per bound (ending with the +Inf bucket),
// total count, and sum of observations.
type HistogramSnapshot struct {
	Bounds     []float64 // upper bounds, excluding +Inf
	Cumulative []int64   // len(Bounds)+1; last entry is the +Inf (total) count
	Count      int64
	Sum        float64
}

// Snapshot returns the cumulative bucket counts Prometheus exposition
// wants. Concurrent Observes may skew individual buckets by a few
// counts; totals remain monotone.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds:     h.bounds,
		Cumulative: make([]int64, len(h.counts)),
		Count:      h.total.Load(),
		Sum:        math.Float64frombits(h.sumBits.Load()),
	}
	run := int64(0)
	for i := range h.counts {
		run += h.counts[i].Load()
		s.Cumulative[i] = run
	}
	return s
}

// Accumulator sums float64 contributions per named key (e.g. per-replica
// energy cost). Safe for concurrent use.
type Accumulator struct {
	mu sync.Mutex
	m  map[string]float64
}

// NewAccumulator returns an empty accumulator.
func NewAccumulator() *Accumulator {
	return &Accumulator{m: make(map[string]float64)}
}

// Add accumulates v under key.
func (a *Accumulator) Add(key string, v float64) {
	a.mu.Lock()
	a.m[key] += v
	a.mu.Unlock()
}

// Get returns the sum for key (0 if never added).
func (a *Accumulator) Get(key string) float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.m[key]
}

// Total sums all keys.
func (a *Accumulator) Total() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	total := 0.0
	for _, v := range a.m {
		total += v
	}
	return total
}

// Keys returns the keys in sorted order.
func (a *Accumulator) Keys() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	keys := make([]string, 0, len(a.m))
	for k := range a.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
