package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"

	"edr/internal/metrics"
)

// Labels name one time series within a metric family. Values are
// escaped at render time; keys must be valid Prometheus label names.
type Labels map[string]string

// Registry holds named metric families — counters, gauges, histograms —
// and renders them in the Prometheus text exposition format (version
// 0.0.4, the format every Prometheus scraper accepts).
//
// Counter and Histogram are get-or-create: calling them again with the
// same name and labels returns the same underlying instrument, so
// event-driven collectors can mint per-peer series lazily. Families
// render in registration order; series within a family in label order.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

type family struct {
	name, help, typ string

	mu     sync.Mutex
	series map[string]*series
	order  []string
}

type series struct {
	labels  string // pre-rendered {k="v",...} or ""
	counter *metrics.Counter
	gauge   func() float64
	hist    *metrics.Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// family returns the named family, creating it with the given type on
// first use. Re-registering a name with a different type panics — that
// is a programming error, not a runtime condition.
func (r *Registry) family(name, help, typ string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.typ != typ {
			panic(fmt.Sprintf("telemetry: metric %q registered as %s and %s", name, f.typ, typ))
		}
		return f
	}
	f := &family{name: name, help: help, typ: typ, series: make(map[string]*series)}
	r.families = append(r.families, f)
	r.byName[name] = f
	return f
}

// get-or-create one series within f. make runs under f's lock.
func (f *family) get(labels Labels, make func() *series) *series {
	key := renderLabels(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s
	}
	s := make()
	s.labels = key
	f.series[key] = s
	f.order = append(f.order, key)
	return s
}

// Counter returns the counter series for name+labels, creating family
// and series as needed.
func (r *Registry) Counter(name, help string, labels Labels) *metrics.Counter {
	f := r.family(name, help, "counter")
	s := f.get(labels, func() *series { return &series{counter: &metrics.Counter{}} })
	return s.counter
}

// Gauge registers a callback gauge for name+labels. The callback is
// invoked at render time; re-registering the same series replaces the
// callback.
func (r *Registry) Gauge(name, help string, labels Labels, fn func() float64) {
	f := r.family(name, help, "gauge")
	s := f.get(labels, func() *series { return &series{} })
	f.mu.Lock()
	s.gauge = fn
	f.mu.Unlock()
}

// Histogram returns the histogram series for name+labels, creating it
// with the given bucket bounds on first use.
func (r *Registry) Histogram(name, help string, labels Labels, bounds []float64) *metrics.Histogram {
	f := r.family(name, help, "histogram")
	s := f.get(labels, func() *series { return &series{hist: metrics.NewHistogram(bounds)} })
	return s.hist
}

// WritePrometheus renders every family in the text exposition format.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	families := append([]*family(nil), r.families...)
	r.mu.Unlock()
	for _, f := range families {
		if err := f.write(w); err != nil {
			return err
		}
	}
	return nil
}

func (f *family) write(w io.Writer) error {
	f.mu.Lock()
	order := append([]string(nil), f.order...)
	snap := make([]*series, len(order))
	for i, key := range order {
		snap[i] = f.series[key]
	}
	f.mu.Unlock()
	if len(snap) == 0 {
		return nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
	fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
	for _, s := range snap {
		switch {
		case s.counter != nil:
			fmt.Fprintf(&b, "%s%s %d\n", f.name, s.labels, s.counter.Value())
		case s.gauge != nil:
			fmt.Fprintf(&b, "%s%s %s\n", f.name, s.labels, formatFloat(s.gauge()))
		case s.hist != nil:
			writeHistogram(&b, f.name, s)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeHistogram renders the _bucket/_sum/_count triplet, merging the
// series labels with the per-bucket le label.
func writeHistogram(b *strings.Builder, name string, s *series) {
	snap := s.hist.Snapshot()
	for i, bound := range snap.Bounds {
		fmt.Fprintf(b, "%s_bucket%s %d\n", name, mergeLabel(s.labels, "le", formatFloat(bound)), snap.Cumulative[i])
	}
	fmt.Fprintf(b, "%s_bucket%s %d\n", name, mergeLabel(s.labels, "le", "+Inf"), snap.Cumulative[len(snap.Cumulative)-1])
	fmt.Fprintf(b, "%s_sum%s %s\n", name, s.labels, formatFloat(snap.Sum))
	fmt.Fprintf(b, "%s_count%s %d\n", name, s.labels, snap.Count)
}

// renderLabels builds the canonical {k="v",...} suffix, keys sorted.
// Empty labels render as "".
func renderLabels(labels Labels) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(labels[k]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// mergeLabel inserts one extra label pair into a pre-rendered label set.
func mergeLabel(rendered, key, value string) string {
	extra := key + `="` + escapeLabel(value) + `"`
	if rendered == "" {
		return "{" + extra + "}"
	}
	return rendered[:len(rendered)-1] + "," + extra + "}"
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// formatFloat renders a float the way Prometheus expects (shortest
// round-trip representation; +Inf/-Inf/NaN spelled out).
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
