package telemetry

import (
	"sync"
	"sync/atomic"
)

// Bus is a lock-cheap publish/subscribe fan-out for telemetry events.
//
// Publish is the hot-path operation: it is one atomic pointer load plus
// a nil check when nobody is listening, and a plain slice walk when
// someone is — no locks, no allocation. Subscription changes are rare
// and pay for that by copying the subscriber list (copy-on-write under
// a mutex).
//
// A nil *Bus is valid and inert: every method is a no-op, so producers
// embed a bus pointer and publish unconditionally. A runtime with no
// admin plane configured therefore pays a single predictable branch per
// would-be event — this is the "zero overhead when observability is
// off" contract the round hot path relies on.
//
// Handlers run synchronously on the publisher's goroutine, in
// subscription order. They must be fast and must not publish back into
// the same bus from within the handler (deadlock-free, but unbounded
// recursion). Consumers that need to do slow work should enqueue.
type Bus struct {
	subs atomic.Pointer[[]subscriber]
	mu   sync.Mutex // serializes Subscribe/cancel (copy-on-write writers)
	next int64
}

type subscriber struct {
	id int64
	fn func(Event)
}

// NewBus returns an empty bus.
func NewBus() *Bus { return &Bus{} }

// Publish delivers e to every subscriber. Safe on a nil bus.
func (b *Bus) Publish(e Event) {
	if b == nil {
		return
	}
	subs := b.subs.Load()
	if subs == nil {
		return
	}
	for i := range *subs {
		(*subs)[i].fn(e)
	}
}

// Active reports whether any subscriber is attached (false on nil).
// Producers use it to skip building expensive event payloads.
func (b *Bus) Active() bool {
	if b == nil {
		return false
	}
	subs := b.subs.Load()
	return subs != nil && len(*subs) > 0
}

// Subscribe registers fn for every subsequent Publish and returns a
// cancel func that removes it. Safe on a nil bus (cancel is a no-op).
func (b *Bus) Subscribe(fn func(Event)) (cancel func()) {
	if b == nil || fn == nil {
		return func() {}
	}
	b.mu.Lock()
	b.next++
	id := b.next
	b.append(subscriber{id: id, fn: fn})
	b.mu.Unlock()
	return func() {
		b.mu.Lock()
		b.remove(id)
		b.mu.Unlock()
	}
}

// append installs a new subscriber list with s added. Caller holds mu.
func (b *Bus) append(s subscriber) {
	old := b.subs.Load()
	var next []subscriber
	if old != nil {
		next = append(next, *old...)
	}
	next = append(next, s)
	b.subs.Store(&next)
}

// remove installs a new subscriber list without id. Caller holds mu.
func (b *Bus) remove(id int64) {
	old := b.subs.Load()
	if old == nil {
		return
	}
	next := make([]subscriber, 0, len(*old))
	for _, s := range *old {
		if s.id != id {
			next = append(next, s)
		}
	}
	b.subs.Store(&next)
}
