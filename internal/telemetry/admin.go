package telemetry

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"time"
)

// AdminConfig wires the admin plane's endpoints to the runtime.
type AdminConfig struct {
	// Registry backs /metrics. Required.
	Registry *Registry
	// Status, when non-nil, backs /status with any JSON-marshalable
	// document (edrd serves core.ReplicaServer.Status()).
	Status func() any
	// Rounds, when non-nil, backs /debug/rounds (typically
	// Collector.Rounds).
	Rounds func() []RoundCompleted
	// Health, when non-nil, lets /healthz report failure; nil means
	// always healthy.
	Health func() error
}

// NewAdminHandler builds the admin plane's HTTP mux:
//
//	/metrics       Prometheus text exposition
//	/healthz       200 "ok" (503 + error text when Health fails)
//	/status        JSON runtime status document
//	/debug/rounds  JSON array of recent rounds with convergence and
//	               energy-cost trajectories
func NewAdminHandler(cfg AdminConfig) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = cfg.Registry.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if cfg.Health != nil {
			if err := cfg.Health(); err != nil {
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
				return
			}
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		if cfg.Status == nil {
			http.Error(w, "no status provider", http.StatusNotFound)
			return
		}
		writeJSON(w, cfg.Status())
	})
	mux.HandleFunc("/debug/rounds", func(w http.ResponseWriter, r *http.Request) {
		if cfg.Rounds == nil {
			http.Error(w, "no round log", http.StatusNotFound)
			return
		}
		writeJSON(w, cfg.Rounds())
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// AdminServer is a running admin plane listener.
type AdminServer struct {
	srv *http.Server
	ln  net.Listener
}

// ServeAdmin binds addr (host:port; port 0 picks a free port) and
// serves the admin plane on it until Close.
func ServeAdmin(addr string, cfg AdminConfig) (*AdminServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: admin listen %s: %w", addr, err)
	}
	srv := &http.Server{
		Handler:           NewAdminHandler(cfg),
		ReadHeaderTimeout: 5 * time.Second,
	}
	go func() { _ = srv.Serve(ln) }()
	return &AdminServer{srv: srv, ln: ln}, nil
}

// Addr returns the bound address (useful with port 0).
func (a *AdminServer) Addr() string { return a.ln.Addr().String() }

// Close stops the listener and in-flight handlers.
func (a *AdminServer) Close() error { return a.srv.Close() }
