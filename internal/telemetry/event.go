// Package telemetry is the EDR runtime's observability plane: a
// lock-cheap typed event bus the core/ring/transport layers publish
// into, a metrics registry rendered in Prometheus text exposition
// format, a collector that turns events into metrics and a bounded
// round log, and an embedded HTTP admin server exposing /metrics,
// /healthz, /status, and /debug/rounds.
//
// The package deliberately knows nothing about core, ring, or
// transport: events carry plain data, so every layer can publish
// without import cycles, and a fleet with no admin plane configured
// pays one nil check per would-be event (see Bus).
package telemetry

import "time"

// Event is any of the typed event structs below. Consumers type-switch.
type Event any

// RoundCompleted is published by the round initiator after every round
// that produced an assignment — optimized or degraded.
type RoundCompleted struct {
	// Round is the initiator-local round id.
	Round int `json:"round"`
	// Algorithm names the method used (LDDM, CDPSM, ADMM).
	Algorithm string `json:"algorithm"`
	// Iterations is how many distributed iterations ran (0 when degraded).
	Iterations int `json:"iterations"`
	// Restarts counts ring-failure restarts the round survived.
	Restarts int `json:"restarts"`
	// Clients and Replicas count the participants.
	Clients  int `json:"clients"`
	Replicas int `json:"replicas"`
	// Objective is the total energy cost of the final assignment.
	Objective float64 `json:"objective"`
	// Cohorts is the number of virtual clients the round solved over when
	// cohort aggregation was active; 0 means the round ran ungrouped.
	Cohorts int `json:"cohorts,omitempty"`
	// CohortRatio is the compression ratio |C|/|K| of the grouping
	// (0 when ungrouped).
	CohortRatio float64 `json:"cohort_ratio,omitempty"`
	// Incremental reports a dirty-subset round: only DirtyClients of the
	// Clients were re-solved, the rest kept their committed rows.
	Incremental bool `json:"incremental,omitempty"`
	// DirtyClients is the dirty-subset size of an incremental round.
	DirtyClients int `json:"dirty_clients,omitempty"`
	// SuppressedNotifies counts clients whose allocation moved too little
	// to be worth a notify this round.
	SuppressedNotifies int `json:"suppressed_notifies,omitempty"`
	// Duration is the wall time of the whole round (including restarts).
	Duration time.Duration `json:"duration_ns"`
	// Degraded reports a last-known-good fallback round.
	Degraded bool `json:"degraded"`
	// Residuals is the per-iteration convergence residual trajectory
	// (algorithm-specific: relative demand residual for LDDM, primal
	// residual for ADMM, max estimate movement for CDPSM).
	Residuals []float64 `json:"residuals,omitempty"`
	// Costs is the per-iteration energy-cost trajectory where the
	// initiator holds a primal iterate (LDDM, ADMM; empty for CDPSM).
	Costs []float64 `json:"costs,omitempty"`
}

// RoundDegraded is published when a round falls back to the last-known-
// good assignment, alongside the RoundCompleted event for that round.
type RoundDegraded struct {
	Round int `json:"round"`
	// FailedMember is the peer the terminal coordination failure was
	// attributed to.
	FailedMember string `json:"failed_member"`
	// Restarts is how many restarts were burned before degrading.
	Restarts int `json:"restarts"`
}

// RoundFailed is published when a round errors outright (no assignment
// produced; requests are re-queued).
type RoundFailed struct {
	Err string `json:"err"`
}

// MemberSuspected is published by the ring monitor on every missed
// heartbeat below the declaration threshold.
type MemberSuspected struct {
	// Member is the suspected successor.
	Member string `json:"member"`
	// Misses is the consecutive miss count so far.
	Misses int `json:"misses"`
}

// MemberDeclared is published when a member is declared dead and pruned
// from the ring — by the monitor's heartbeat protocol or by a round
// initiator pinning a coordination failure on it.
type MemberDeclared struct {
	Member string `json:"member"`
	// By names the declaring node.
	By string `json:"by"`
}

// MemberHealed is published when a suspected member answers a heartbeat
// again before being declared dead, clearing the suspicion.
type MemberHealed struct {
	Member string `json:"member"`
	// Misses is how many heartbeats it had missed before healing.
	Misses int `json:"misses"`
}

// MemberJoined is published by the ring when a member is added to the
// membership view — a bootstrap seed, a heal, or an epoch that admitted a
// new replica.
type MemberJoined struct {
	Member string `json:"member"`
}

// MemberRemoved is published by the ring when a member leaves the
// membership view for any reason: declared dead by the failure detector
// or removed by a committed epoch.
type MemberRemoved struct {
	Member string `json:"member"`
}

// MemberDrained is published when an epoch marks a member drained: still
// alive and heartbeating, still serving installed plans, but excluded
// from new scheduling rounds (planned power-down, not a failure).
type MemberDrained struct {
	Member string `json:"member"`
	// Epoch is the epoch sequence that drained it.
	Epoch int `json:"epoch"`
}

// EpochCommitted is published when a cluster epoch is applied locally —
// proposed by this node or disseminated by a coordinator.
type EpochCommitted struct {
	// Seq is the epoch sequence number.
	Seq int `json:"seq"`
	// Members and Drained describe the new membership.
	Members []string `json:"members"`
	Drained []string `json:"drained,omitempty"`
	// By names the node the epoch came from ("" when applied locally).
	By string `json:"by,omitempty"`
}

// RPCRetried is published per coordination-RPC retry attempt.
type RPCRetried struct {
	// Peer is the destination of the retried send.
	Peer string `json:"peer"`
	// Verb is the message type being retried.
	Verb string `json:"verb"`
	// Attempt is the retry ordinal (1 = first retry).
	Attempt int `json:"attempt"`
}

// MessageDropped is published by the instrumented transport when a send
// fails — the message never produced a response (timeout, refused peer,
// closed endpoint).
type MessageDropped struct {
	Peer string `json:"peer"`
	Verb string `json:"verb"`
	Err  string `json:"err"`
}
