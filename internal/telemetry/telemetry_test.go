package telemetry

import (
	"io"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestBusPublishSubscribe(t *testing.T) {
	bus := NewBus()
	var got []Event
	cancel := bus.Subscribe(func(e Event) { got = append(got, e) })
	bus.Publish(MemberSuspected{Member: "r2", Misses: 1})
	bus.Publish(MemberHealed{Member: "r2", Misses: 1})
	if len(got) != 2 {
		t.Fatalf("delivered %d events, want 2", len(got))
	}
	if s, ok := got[0].(MemberSuspected); !ok || s.Member != "r2" {
		t.Fatalf("event 0 = %#v", got[0])
	}
	cancel()
	bus.Publish(MemberHealed{Member: "r2"})
	if len(got) != 2 {
		t.Fatal("event delivered after cancel")
	}
}

func TestBusNilSafe(t *testing.T) {
	var bus *Bus
	bus.Publish(RoundCompleted{}) // must not panic
	if bus.Active() {
		t.Fatal("nil bus reports active")
	}
	bus.Subscribe(func(Event) {})() // cancel on nil bus is a no-op
}

func TestBusActive(t *testing.T) {
	bus := NewBus()
	if bus.Active() {
		t.Fatal("empty bus reports active")
	}
	cancel := bus.Subscribe(func(Event) {})
	if !bus.Active() {
		t.Fatal("subscribed bus reports inactive")
	}
	cancel()
	if bus.Active() {
		t.Fatal("cancelled bus reports active")
	}
}

func TestBusConcurrentPublish(t *testing.T) {
	bus := NewBus()
	var n atomic.Int64
	defer bus.Subscribe(func(Event) { n.Add(1) })()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				bus.Publish(RPCRetried{Peer: "p", Verb: "v", Attempt: 1})
			}
		}()
	}
	wg.Wait()
	if n.Load() != 4000 {
		t.Fatalf("delivered %d, want 4000", n.Load())
	}
}

// promLine matches every legal non-comment sample line of the text
// exposition format (loosely — enough to catch malformed output).
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (-?[0-9.e+-]+|\+Inf|-Inf|NaN)$`)

// checkPrometheusText asserts text is structurally valid exposition
// format: every line is a comment or a sample, and every sample's family
// has HELP and TYPE comments.
func checkPrometheusText(t *testing.T, text string) {
	t.Helper()
	typed := map[string]bool{}
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			typed[parts[2]] = true
			continue
		}
		if !promLine.MatchString(line) {
			t.Fatalf("malformed exposition line: %q", line)
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
		if !typed[name] && !typed[base] {
			t.Fatalf("sample %q has no HELP/TYPE header", name)
		}
	}
}

func TestRegistryPrometheusRender(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("edr_test_total", "A test counter.", Labels{"peer": `a"b\c`}).Inc(3)
	reg.Counter("edr_test_total", "A test counter.", Labels{"peer": "plain"}).Inc(1)
	reg.Gauge("edr_test_gauge", "A test gauge.", nil, func() float64 { return 2.5 })
	reg.Histogram("edr_test_seconds", "A test histogram.", nil, []float64{0.1, 1}).Observe(0.5)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	checkPrometheusText(t, text)
	for _, want := range []string{
		`edr_test_total{peer="a\"b\\c"} 3`,
		`edr_test_total{peer="plain"} 1`,
		"edr_test_gauge 2.5",
		`edr_test_seconds_bucket{le="1"} 1`,
		`edr_test_seconds_bucket{le="+Inf"} 1`,
		"edr_test_seconds_sum 0.5",
		"edr_test_seconds_count 1",
		"# TYPE edr_test_total counter",
		"# TYPE edr_test_seconds histogram",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("edr_x_total", "x", Labels{"p": "1"})
	b := reg.Counter("edr_x_total", "x", Labels{"p": "1"})
	if a != b {
		t.Fatal("same name+labels returned distinct counters")
	}
	c := reg.Counter("edr_x_total", "x", Labels{"p": "2"})
	if a == c {
		t.Fatal("distinct labels share a counter")
	}
}

func TestRegistryTypeClashPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("edr_clash", "x", nil)
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	reg.Gauge("edr_clash", "x", nil, func() float64 { return 0 })
}

func TestCollectorRoundAccounting(t *testing.T) {
	c := NewCollector(2)
	for round := 1; round <= 3; round++ {
		c.Handle(RoundCompleted{
			Round:     round,
			Algorithm: "LDDM",
			Duration:  10 * time.Millisecond,
			Objective: float64(round),
			Degraded:  round == 3,
			Restarts:  1,
		})
	}
	c.Handle(MemberSuspected{Member: "r2", Misses: 1})
	c.Handle(MemberDeclared{Member: "r2", By: "r1"})
	c.Handle(MemberHealed{Member: "r3", Misses: 2})
	c.Handle(RPCRetried{Peer: "r2", Verb: "replica.localsolve", Attempt: 1})
	c.Handle(MessageDropped{Peer: "r2", Verb: "replica.assign", Err: "timeout"})
	c.Handle(RoundFailed{Err: "boom"})

	rounds := c.Rounds()
	if len(rounds) != 2 {
		t.Fatalf("round log holds %d, want cap 2", len(rounds))
	}
	if rounds[0].Round != 2 || rounds[1].Round != 3 {
		t.Fatalf("round log kept %d,%d; want 2,3", rounds[0].Round, rounds[1].Round)
	}

	var b strings.Builder
	if err := c.Registry.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	checkPrometheusText(t, text)
	for _, want := range []string{
		`edr_rounds_total{algorithm="LDDM"} 3`,
		"edr_rounds_degraded_total 1",
		"edr_rounds_failed_total 1",
		"edr_round_restarts_total 3",
		"edr_round_objective 3",
		`edr_ring_suspected_total{member="r2"} 1`,
		`edr_ring_declared_dead_total{member="r2"} 1`,
		`edr_ring_healed_total{member="r3"} 1`,
		`edr_rpc_retries_total{peer="r2",verb="replica.localsolve"} 1`,
		`edr_messages_dropped_total{peer="r2",verb="replica.assign"} 1`,
		"edr_round_duration_seconds_count 3",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
}

func TestAdminEndpoints(t *testing.T) {
	c := NewCollector(0)
	bus := NewBus()
	defer c.Attach(bus)()
	bus.Publish(RoundCompleted{Round: 1, Algorithm: "LDDM", Residuals: []float64{0.5, 0.1}, Costs: []float64{9, 8}})

	srv, err := ServeAdmin("127.0.0.1:0", AdminConfig{
		Registry: c.Registry,
		Status:   func() any { return map[string]any{"ring": []string{"r1", "r2"}} },
		Rounds:   c.Rounds,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	if code, body := get("/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	code, body := get("/metrics")
	if code != 200 {
		t.Fatalf("/metrics = %d", code)
	}
	checkPrometheusText(t, body)
	if !strings.Contains(body, `edr_rounds_total{algorithm="LDDM"} 1`) {
		t.Fatalf("/metrics missing round counter:\n%s", body)
	}
	if code, body := get("/status"); code != 200 || !strings.Contains(body, `"ring"`) {
		t.Fatalf("/status = %d %q", code, body)
	}
	if code, body := get("/debug/rounds"); code != 200 || !strings.Contains(body, `"residuals"`) {
		t.Fatalf("/debug/rounds = %d %q", code, body)
	}
}
