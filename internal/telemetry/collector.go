package telemetry

import (
	"sync"

	"edr/internal/metrics"
)

// Collector turns bus events into registry metrics and keeps a bounded
// ring buffer of recent rounds for the admin plane's /debug/rounds.
//
// Metric taxonomy (see DESIGN.md §8 "Observability"):
//
//	edr_rounds_total{algorithm}            counter, every completed round
//	edr_rounds_degraded_total              counter, last-good fallback rounds
//	edr_rounds_failed_total                counter, rounds that errored outright
//	edr_round_restarts_total               counter, ring-failure restarts
//	edr_round_duration_seconds             histogram, wall time per round
//	edr_round_iterations                   histogram, distributed iterations per round
//	edr_round_objective                    gauge, energy cost of the last round
//	edr_round_cohorts                      gauge, virtual clients of the last round (0 = ungrouped)
//	edr_round_cohort_ratio                 gauge, |C|/|K| compression of the last round
//	edr_round_dirty_clients                gauge, dirty-subset size of the last round (clients on full rounds)
//	edr_round_suppressed_notifies          gauge, notifies suppressed on the last round
//	edr_ring_joined_total{member}          counter, members added to the view
//	edr_ring_removed_total{member}         counter, members removed from the view
//	edr_membership_drained_total{member}   counter, members drained by epochs
//	edr_membership_epochs_total            counter, epochs committed locally
//	edr_membership_epoch                   gauge, last committed epoch sequence
//	edr_ring_suspected_total{member}       counter, heartbeat misses below threshold
//	edr_ring_declared_dead_total{member}   counter, members pruned from the ring
//	edr_ring_healed_total{member}          counter, suspicions cleared by a heartbeat
//	edr_rpc_retries_total{peer,verb}       counter, coordination RPC retry attempts
//	edr_messages_dropped_total{peer,verb}  counter, sends that never got a response
type Collector struct {
	// Registry receives every metric the collector maintains.
	Registry *Registry

	roundDuration *metrics.Histogram
	roundIters    *metrics.Histogram

	mu              sync.Mutex
	rounds          []RoundCompleted // ring buffer, oldest first
	keep            int
	lastObjective   float64
	lastEpoch       int
	lastCohorts     int
	lastCohortRatio float64
	lastDirty       int
	lastSuppressed  int
}

// DefaultRoundLog is how many recent rounds /debug/rounds retains when
// the caller does not choose.
const DefaultRoundLog = 64

// NewCollector builds a collector over its own registry, retaining the
// last keep rounds (DefaultRoundLog when keep <= 0).
func NewCollector(keep int) *Collector {
	if keep <= 0 {
		keep = DefaultRoundLog
	}
	reg := NewRegistry()
	c := &Collector{Registry: reg, keep: keep}
	// Iteration counts live on a wide linear-ish scale, not a latency one.
	c.roundDuration = reg.Histogram("edr_round_duration_seconds",
		"Wall time of completed scheduling rounds.", nil, metrics.DurationBuckets())
	c.roundIters = reg.Histogram("edr_round_iterations",
		"Distributed iterations per completed round.", nil,
		[]float64{1, 2, 5, 10, 20, 50, 100, 200, 500})
	reg.Gauge("edr_round_objective",
		"Energy cost (objective) of the most recent round.", nil, func() float64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			return c.lastObjective
		})
	reg.Gauge("edr_round_cohorts",
		"Virtual clients (cohorts) of the most recent round; 0 when ungrouped.", nil, func() float64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			return float64(c.lastCohorts)
		})
	reg.Gauge("edr_round_cohort_ratio",
		"Client compression ratio |C|/|K| of the most recent round; 0 when ungrouped.", nil, func() float64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			return c.lastCohortRatio
		})
	reg.Gauge("edr_round_dirty_clients",
		"Clients the most recent round re-solved: the dirty subset on incremental rounds, every client otherwise.", nil, func() float64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			return float64(c.lastDirty)
		})
	reg.Gauge("edr_round_suppressed_notifies",
		"Clients not re-notified on the most recent round (allocation moved within epsilon).", nil, func() float64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			return float64(c.lastSuppressed)
		})
	reg.Gauge("edr_membership_epoch",
		"Sequence number of the most recently committed cluster epoch.", nil, func() float64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			return float64(c.lastEpoch)
		})
	return c
}

// Attach subscribes the collector to a bus; the returned cancel
// detaches it.
func (c *Collector) Attach(bus *Bus) (cancel func()) {
	return bus.Subscribe(c.Handle)
}

// Handle consumes one event. Exported so tests and custom wiring can
// feed events without a bus.
func (c *Collector) Handle(e Event) {
	reg := c.Registry
	switch ev := e.(type) {
	case RoundCompleted:
		reg.Counter("edr_rounds_total", "Completed scheduling rounds.",
			Labels{"algorithm": ev.Algorithm}).Inc(1)
		if ev.Degraded {
			reg.Counter("edr_rounds_degraded_total",
				"Rounds served from the last-known-good fallback.", nil).Inc(1)
		}
		if ev.Restarts > 0 {
			reg.Counter("edr_round_restarts_total",
				"Ring-failure restarts absorbed by rounds.", nil).Inc(int64(ev.Restarts))
		}
		c.roundDuration.Observe(ev.Duration.Seconds())
		c.roundIters.Observe(float64(ev.Iterations))
		c.mu.Lock()
		c.lastObjective = ev.Objective
		c.lastCohorts = ev.Cohorts
		c.lastCohortRatio = ev.CohortRatio
		if ev.Incremental {
			c.lastDirty = ev.DirtyClients
		} else {
			c.lastDirty = ev.Clients
		}
		c.lastSuppressed = ev.SuppressedNotifies
		c.rounds = append(c.rounds, ev)
		if len(c.rounds) > c.keep {
			c.rounds = c.rounds[len(c.rounds)-c.keep:]
		}
		c.mu.Unlock()
	case RoundDegraded:
		reg.Counter("edr_round_degradations_total",
			"Coordination failures that triggered the degraded fallback.",
			Labels{"failed_member": ev.FailedMember}).Inc(1)
	case RoundFailed:
		reg.Counter("edr_rounds_failed_total",
			"Rounds that errored outright (requests re-queued).", nil).Inc(1)
	case MemberSuspected:
		reg.Counter("edr_ring_suspected_total",
			"Heartbeat misses recorded below the declaration threshold.",
			Labels{"member": ev.Member}).Inc(1)
	case MemberDeclared:
		reg.Counter("edr_ring_declared_dead_total",
			"Members declared dead and pruned from the ring.",
			Labels{"member": ev.Member}).Inc(1)
	case MemberHealed:
		reg.Counter("edr_ring_healed_total",
			"Suspicions cleared by a successful heartbeat.",
			Labels{"member": ev.Member}).Inc(1)
	case MemberJoined:
		reg.Counter("edr_ring_joined_total",
			"Members added to the membership view.",
			Labels{"member": ev.Member}).Inc(1)
	case MemberRemoved:
		reg.Counter("edr_ring_removed_total",
			"Members removed from the membership view.",
			Labels{"member": ev.Member}).Inc(1)
	case MemberDrained:
		reg.Counter("edr_membership_drained_total",
			"Members drained (planned power-down) by committed epochs.",
			Labels{"member": ev.Member}).Inc(1)
	case EpochCommitted:
		reg.Counter("edr_membership_epochs_total",
			"Cluster epochs committed locally.", nil).Inc(1)
		c.mu.Lock()
		c.lastEpoch = ev.Seq
		c.mu.Unlock()
	case RPCRetried:
		reg.Counter("edr_rpc_retries_total",
			"Coordination RPC retry attempts.",
			Labels{"peer": ev.Peer, "verb": ev.Verb}).Inc(1)
	case MessageDropped:
		reg.Counter("edr_messages_dropped_total",
			"Sends that failed without a response (timeout, refusal, closed peer).",
			Labels{"peer": ev.Peer, "verb": ev.Verb}).Inc(1)
	}
}

// Rounds returns the retained recent rounds, oldest first.
func (c *Collector) Rounds() []RoundCompleted {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]RoundCompleted(nil), c.rounds...)
}
