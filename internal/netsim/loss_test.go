package netsim

import (
	"math"
	"testing"

	"edr/internal/sim"
)

func TestUniformLossShapeAndRange(t *testing.T) {
	r := sim.NewRand(1)
	top := ClusterTopology(r, 10, 6)
	l := UniformLoss(r, top, 0.3)
	if err := l.Validate(top); err != nil {
		t.Fatal(err)
	}
	lossy, clean := 0, 0
	for c := range l.Rate {
		for n := range l.Rate[c] {
			p := l.Rate[c][n]
			switch {
			case p >= 0.005 && p <= 0.08:
				lossy++
			case p >= 0 && p <= 0.001:
				clean++
			default:
				t.Fatalf("loss[%d][%d] = %g outside either band", c, n, p)
			}
		}
	}
	if lossy == 0 || clean == 0 {
		t.Fatalf("bands unpopulated: lossy=%d clean=%d", lossy, clean)
	}
}

func TestLossAllowedTolerance(t *testing.T) {
	l := &LossModel{Rate: [][]float64{{0.01, 0.05}}}
	if !l.Allowed(0, 0) {
		t.Fatal("1% loss rejected at 2% default tolerance")
	}
	if l.Allowed(0, 1) {
		t.Fatal("5% loss accepted at 2% default tolerance")
	}
	l.MaxTolerable = 0.10
	if !l.Allowed(0, 1) {
		t.Fatal("5% loss rejected at 10% tolerance")
	}
}

func TestGoodputMathisDecay(t *testing.T) {
	l := &LossModel{Rate: [][]float64{{0.0005, 0.001, 0.004, 0.016}}}
	// Below the knee: full rate.
	if got := l.Goodput(100, 0, 0); got != 100 {
		t.Fatalf("clean link goodput = %g", got)
	}
	if got := l.Goodput(100, 0, 1); got != 100 {
		t.Fatalf("knee link goodput = %g", got)
	}
	// 4× knee → half the rate; 16× knee → a quarter.
	if got := l.Goodput(100, 0, 2); math.Abs(got-50) > 1e-9 {
		t.Fatalf("4×knee goodput = %g, want 50", got)
	}
	if got := l.Goodput(100, 0, 3); math.Abs(got-25) > 1e-9 {
		t.Fatalf("16×knee goodput = %g, want 25", got)
	}
}

func TestLossValidateRejectsBadMatrices(t *testing.T) {
	r := sim.NewRand(2)
	top := ClusterTopology(r, 2, 2)
	bad := &LossModel{Rate: [][]float64{{0.1, 0.1}}}
	if err := bad.Validate(top); err == nil {
		t.Fatal("short loss matrix accepted")
	}
	bad = &LossModel{Rate: [][]float64{{0.1}, {0.1}}}
	if err := bad.Validate(top); err == nil {
		t.Fatal("narrow loss matrix accepted")
	}
	bad = &LossModel{Rate: [][]float64{{0.1, 1.0}, {0.1, 0.1}}}
	if err := bad.Validate(top); err == nil {
		t.Fatal("loss = 1 accepted")
	}
	bad = &LossModel{Rate: [][]float64{{0.1, 0.1}, {0.1, 0.1}}, MaxTolerable: 2}
	if err := bad.Validate(top); err == nil {
		t.Fatal("tolerance >= 1 accepted")
	}
}

func TestApplyToLatencyMasksLossyLinks(t *testing.T) {
	l := &LossModel{Rate: [][]float64{{0.001, 0.05}}}
	lat := [][]float64{{0.0005, 0.0005}}
	maxLat := 0.0018
	l.ApplyToLatency(lat, maxLat)
	if lat[0][0] != 0.0005 {
		t.Fatalf("clean link latency changed: %g", lat[0][0])
	}
	if lat[0][1] <= maxLat {
		t.Fatalf("lossy link latency %g not pushed past the bound", lat[0][1])
	}
}
