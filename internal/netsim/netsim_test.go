package netsim

import (
	"math"
	"testing"
	"time"

	"edr/internal/sim"
)

func TestClusterTopologyShape(t *testing.T) {
	top := ClusterTopology(sim.NewRand(1), 4, 8)
	if err := top.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(top.ClientNames) != 4 || len(top.ReplicaNames) != 8 {
		t.Fatalf("names: %d clients, %d replicas", len(top.ClientNames), len(top.ReplicaNames))
	}
	if top.ClientNames[0] != "client1" || top.ReplicaNames[7] != "replica8" {
		t.Fatalf("naming scheme: %v %v", top.ClientNames, top.ReplicaNames)
	}
}

func TestClusterTopologyAllFeasible(t *testing.T) {
	top := ClusterTopology(sim.NewRand(2), 6, 5)
	maxT := DefaultMaxLatency.Seconds()
	for c := range top.LatencySec {
		for n, l := range top.LatencySec[c] {
			if l <= 0 || l > maxT {
				t.Fatalf("latency[%d][%d] = %g outside (0, T]", c, n, l)
			}
		}
	}
	for n, b := range top.BandwidthMBps {
		if b != DefaultBandwidthMBps {
			t.Fatalf("bandwidth[%d] = %g", n, b)
		}
	}
}

func TestClusterTopologyDeterministic(t *testing.T) {
	a := ClusterTopology(sim.NewRand(9), 3, 3)
	b := ClusterTopology(sim.NewRand(9), 3, 3)
	for c := range a.LatencySec {
		for n := range a.LatencySec[c] {
			if a.LatencySec[c][n] != b.LatencySec[c][n] {
				t.Fatal("same seed produced different topologies")
			}
		}
	}
}

func TestGeoTopologyHasInfeasibleLinks(t *testing.T) {
	top := GeoTopology(sim.NewRand(3), 20, 6, 0.5)
	if err := top.Validate(); err != nil {
		t.Fatal(err)
	}
	maxT := DefaultMaxLatency.Seconds()
	far := 0
	for c := range top.LatencySec {
		feasible := 0
		for _, l := range top.LatencySec[c] {
			if l > maxT {
				far++
			} else {
				feasible++
			}
		}
		if feasible < 2 {
			t.Fatalf("client %d has only %d feasible replicas", c, feasible)
		}
	}
	if far == 0 {
		t.Fatal("GeoTopology produced no infeasible links at fracFar=0.5")
	}
}

func TestValidateRejectsBadShapes(t *testing.T) {
	good := ClusterTopology(sim.NewRand(4), 2, 2)

	top := *good
	top.LatencySec = top.LatencySec[:1]
	if err := top.Validate(); err == nil {
		t.Fatal("short latency accepted")
	}

	top = *good
	top.BandwidthMBps = []float64{100}
	if err := top.Validate(); err == nil {
		t.Fatal("short bandwidth accepted")
	}

	top = *good
	top.BandwidthMBps = []float64{100, 0}
	if err := top.Validate(); err == nil {
		t.Fatal("zero bandwidth accepted")
	}

	lat := [][]float64{{0.001, -0.001}, {0.001, 0.001}}
	top = *good
	top.LatencySec = lat
	if err := top.Validate(); err == nil {
		t.Fatal("negative latency accepted")
	}

	empty := &Topology{}
	if err := empty.Validate(); err == nil {
		t.Fatal("empty topology accepted")
	}
}

func TestLatencyAccessor(t *testing.T) {
	top := ClusterTopology(sim.NewRand(5), 1, 1)
	top.LatencySec[0][0] = 0.0015
	if got := top.Latency(0, 0); got != 1500*time.Microsecond {
		t.Fatalf("Latency = %v, want 1.5ms", got)
	}
}

func TestTransferTime(t *testing.T) {
	top := ClusterTopology(sim.NewRand(6), 1, 1)
	top.LatencySec[0][0] = 0.001
	top.BandwidthMBps[0] = 100

	// 10 MB at full share: 1ms + 100ms = 101ms.
	d, err := top.TransferTime(0, 0, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.Seconds()-0.101) > 1e-9 {
		t.Fatalf("TransferTime = %v, want 101ms", d)
	}

	// Half share doubles the serialization component.
	d, err = top.TransferTime(0, 0, 10, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.Seconds()-0.201) > 1e-9 {
		t.Fatalf("TransferTime at half share = %v, want 201ms", d)
	}

	// Zero bytes: latency only.
	d, err = top.TransferTime(0, 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.Seconds()-0.001) > 1e-9 {
		t.Fatalf("TransferTime(0 MB) = %v, want 1ms", d)
	}
}

func TestTransferTimeBadArgs(t *testing.T) {
	top := ClusterTopology(sim.NewRand(7), 1, 1)
	if _, err := top.TransferTime(0, 0, -1, 1); err == nil {
		t.Fatal("negative size accepted")
	}
	if _, err := top.TransferTime(0, 0, 1, 0); err == nil {
		t.Fatal("zero share accepted")
	}
	if _, err := top.TransferTime(0, 0, 1, 1.5); err == nil {
		t.Fatal("share > 1 accepted")
	}
}

func TestDefaultsMatchPaper(t *testing.T) {
	if DefaultBandwidthMBps != 100 {
		t.Fatalf("DefaultBandwidthMBps = %g, want 100", DefaultBandwidthMBps)
	}
	if DefaultMaxLatency != 1800*time.Microsecond {
		t.Fatalf("DefaultMaxLatency = %v, want 1.8ms", DefaultMaxLatency)
	}
}

func TestRegionalTopologyStructure(t *testing.T) {
	r := sim.NewRand(11)
	top := RegionalTopology(r, 200, 8, 10, 0.3)
	if err := top.Validate(); err != nil {
		t.Fatal(err)
	}
	maxT := DefaultMaxLatency.Seconds()
	// Every client keeps at least one feasible link, and clients of the
	// same region (striped c % regions) share a feasibility mask: jitter
	// is too small to cross the bound.
	maskOf := func(c int) string {
		key := make([]byte, 8)
		for n, l := range top.LatencySec[c] {
			if l <= maxT {
				key[n] = 1
			}
		}
		return string(key)
	}
	infeasible := 0
	for c := 0; c < 200; c++ {
		feasible := 0
		for _, l := range top.LatencySec[c] {
			if l <= maxT {
				feasible++
			} else {
				infeasible++
			}
		}
		if feasible == 0 {
			t.Fatalf("client %d has no feasible replica", c)
		}
		if got, want := maskOf(c), maskOf(c%10); got != want {
			t.Fatalf("client %d mask %q differs from its region's %q", c, got, want)
		}
	}
	if infeasible == 0 {
		t.Fatal("regional topology drew no infeasible links (fracFar 0.3)")
	}
	// Distinct latency values within a region (jitter applied).
	if top.LatencySec[0][0] == top.LatencySec[10][0] {
		t.Fatal("clients of one region share exact latencies; jitter missing")
	}
}

func TestRegionalTopologyZeroRegions(t *testing.T) {
	top := RegionalTopology(sim.NewRand(1), 5, 3, 0, 0.3)
	if err := top.Validate(); err != nil {
		t.Fatal(err)
	}
}
