package netsim

import (
	"fmt"
	"math"

	"edr/internal/sim"
)

// Packet loss, the third selection criterion the paper's introduction
// names ("lowest latency (or fastest data transfer), least packet loss,
// etc."). Loss degrades a link two ways: retransmissions shrink the
// effective bandwidth (TCP-like goodput ∝ 1/√loss beyond a knee), and
// links above a tolerance are excluded from selection outright, composing
// with the latency mask.

// LossModel augments a Topology with per-link loss rates.
type LossModel struct {
	// Rate[c][n] is the packet loss probability in [0, 1) from client c
	// to replica n.
	Rate [][]float64
	// MaxTolerable excludes links whose loss exceeds it from selection;
	// 0 means DefaultMaxLoss.
	MaxTolerable float64
}

// DefaultMaxLoss is the loss tolerance used when none is configured: 2%,
// the point at which interactive transfers degrade noticeably.
const DefaultMaxLoss = 0.02

// Validate checks the loss matrix against a topology.
func (l *LossModel) Validate(t *Topology) error {
	if len(l.Rate) != len(t.ClientNames) {
		return fmt.Errorf("netsim: loss has %d rows for %d clients", len(l.Rate), len(t.ClientNames))
	}
	for c, row := range l.Rate {
		if len(row) != len(t.ReplicaNames) {
			return fmt.Errorf("netsim: loss row %d has %d cols for %d replicas", c, len(row), len(t.ReplicaNames))
		}
		for n, p := range row {
			if p < 0 || p >= 1 || math.IsNaN(p) {
				return fmt.Errorf("netsim: loss[%d][%d] = %g outside [0, 1)", c, n, p)
			}
		}
	}
	if l.MaxTolerable < 0 || l.MaxTolerable >= 1 {
		return fmt.Errorf("netsim: max tolerable loss %g outside [0, 1)", l.MaxTolerable)
	}
	return nil
}

func (l *LossModel) maxTolerable() float64 {
	if l.MaxTolerable > 0 {
		return l.MaxTolerable
	}
	return DefaultMaxLoss
}

// Allowed reports whether the link is within the loss tolerance.
func (l *LossModel) Allowed(c, n int) bool {
	return l.Rate[c][n] <= l.maxTolerable()
}

// Goodput returns the effective bandwidth of the link given the replica's
// raw rate: below a 0.1% knee loss is negligible; above it goodput decays
// with the Mathis 1/√p TCP law, normalized to 1 at the knee.
func (l *LossModel) Goodput(rawMBps float64, c, n int) float64 {
	p := l.Rate[c][n]
	const knee = 0.001
	if p <= knee {
		return rawMBps
	}
	return rawMBps * math.Sqrt(knee/p)
}

// UniformLoss builds a loss model where most links are clean (loss drawn
// in [0, knee]) and a fraction fracLossy are congested (loss in
// [0.5%, 8%], straddling the tolerance).
func UniformLoss(r *sim.Rand, t *Topology, fracLossy float64) *LossModel {
	clients, replicas := len(t.ClientNames), len(t.ReplicaNames)
	l := &LossModel{Rate: make([][]float64, clients)}
	for c := 0; c < clients; c++ {
		l.Rate[c] = make([]float64, replicas)
		for n := 0; n < replicas; n++ {
			if r.Float64() < fracLossy {
				l.Rate[c][n] = r.Range(0.005, 0.08)
			} else {
				l.Rate[c][n] = r.Range(0, 0.001)
			}
		}
	}
	return l
}

// ApplyToLatency folds the loss mask into a latency matrix: links above
// the tolerance are pushed beyond maxLatency so every existing solver
// excludes them without new constraint machinery. The matrix is modified
// in place and returned.
func (l *LossModel) ApplyToLatency(latency [][]float64, maxLatency float64) [][]float64 {
	for c := range latency {
		for n := range latency[c] {
			if !l.Allowed(c, n) {
				latency[c][n] = 10 * maxLatency
			}
		}
	}
	return latency
}
