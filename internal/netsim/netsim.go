// Package netsim models the network substrate between clients and
// replicas: pairwise latencies, per-replica bandwidth caps, and transfer
// times. It replaces the paper's physical SystemG Ethernet (≈100 MB/s
// links, worst-case full-frame latency T = 1.8 ms) with a deterministic
// matrix the optimizer and the experiment harness both read.
package netsim

import (
	"fmt"
	"time"

	"edr/internal/sim"
)

// Paper defaults (§IV-A.2).
const (
	// DefaultBandwidthMBps is the SystemG Ethernet cap, ~100 MB/s.
	DefaultBandwidthMBps = 100.0
	// DefaultMaxLatency is T, the user-defined maximum tolerable network
	// latency: 1.8 ms, the worst case for one full-size 1518-byte frame
	// under heavy load on SystemG.
	DefaultMaxLatency = 1800 * time.Microsecond
)

// Topology is a static client×replica network view.
type Topology struct {
	// ClientNames and ReplicaNames give the endpoints stable identities.
	ClientNames  []string
	ReplicaNames []string
	// LatencySec[c][n] is one-way latency in seconds from client c to
	// replica n.
	LatencySec [][]float64
	// BandwidthMBps[n] is the bandwidth capacity of replica n.
	BandwidthMBps []float64
}

// Validate checks shape and value consistency.
func (t *Topology) Validate() error {
	c, n := len(t.ClientNames), len(t.ReplicaNames)
	if c == 0 || n == 0 {
		return fmt.Errorf("netsim: topology needs clients and replicas (have %d, %d)", c, n)
	}
	if len(t.LatencySec) != c {
		return fmt.Errorf("netsim: latency has %d rows for %d clients", len(t.LatencySec), c)
	}
	for i, row := range t.LatencySec {
		if len(row) != n {
			return fmt.Errorf("netsim: latency row %d has %d cols for %d replicas", i, len(row), n)
		}
		for j, l := range row {
			if l < 0 {
				return fmt.Errorf("netsim: negative latency [%d][%d] = %g", i, j, l)
			}
		}
	}
	if len(t.BandwidthMBps) != n {
		return fmt.Errorf("netsim: %d bandwidth entries for %d replicas", len(t.BandwidthMBps), n)
	}
	for j, b := range t.BandwidthMBps {
		if b <= 0 {
			return fmt.Errorf("netsim: non-positive bandwidth[%d] = %g", j, b)
		}
	}
	return nil
}

// Latency returns the one-way latency from client c to replica n.
func (t *Topology) Latency(c, n int) time.Duration {
	return time.Duration(t.LatencySec[c][n] * float64(time.Second))
}

// TransferTime models moving sizeMB from replica n to client c: one
// propagation delay plus serialization at the replica's bandwidth. The
// share argument (0 < share ≤ 1) models the fraction of the replica's
// bandwidth this transfer receives when the replica serves several clients
// concurrently.
func (t *Topology) TransferTime(c, n int, sizeMB, share float64) (time.Duration, error) {
	if sizeMB < 0 {
		return 0, fmt.Errorf("netsim: negative transfer size %g", sizeMB)
	}
	if share <= 0 || share > 1 {
		return 0, fmt.Errorf("netsim: bandwidth share %g outside (0, 1]", share)
	}
	bw := t.BandwidthMBps[n] * share
	seconds := t.LatencySec[c][n] + sizeMB/bw
	return time.Duration(seconds * float64(time.Second)), nil
}

// ClusterTopology builds the paper's deployment: clients and replicas in
// one cluster with uniform sub-millisecond latencies and uniform 100 MB/s
// replica bandwidth. Per-pair latency is drawn uniformly from
// [0.2·T, 0.8·T] so all links are feasible but distinguishable.
func ClusterTopology(r *sim.Rand, clients, replicas int) *Topology {
	t := &Topology{
		ClientNames:   names("client", clients),
		ReplicaNames:  names("replica", replicas),
		LatencySec:    make([][]float64, clients),
		BandwidthMBps: make([]float64, replicas),
	}
	maxT := DefaultMaxLatency.Seconds()
	for c := range t.LatencySec {
		t.LatencySec[c] = make([]float64, replicas)
		for n := range t.LatencySec[c] {
			t.LatencySec[c][n] = r.Range(0.2*maxT, 0.8*maxT)
		}
	}
	for n := range t.BandwidthMBps {
		t.BandwidthMBps[n] = DefaultBandwidthMBps
	}
	return t
}

// GeoTopology builds a wide-area variant for the examples: replicas sit in
// distinct regions, and each client is near one region (low latency) and
// far from the rest (some beyond the latency bound, exercising the
// feasibility mask). fracFar controls how many of a client's non-home
// links exceed the bound.
func GeoTopology(r *sim.Rand, clients, replicas int, fracFar float64) *Topology {
	t := ClusterTopology(r, clients, replicas)
	maxT := DefaultMaxLatency.Seconds()
	for c := 0; c < clients; c++ {
		home := r.Intn(replicas)
		for n := 0; n < replicas; n++ {
			switch {
			case n == home:
				t.LatencySec[c][n] = r.Range(0.05*maxT, 0.3*maxT)
			case r.Float64() < fracFar && replicasWithin(t, c) > 2:
				t.LatencySec[c][n] = r.Range(2*maxT, 10*maxT) // infeasible
			default:
				t.LatencySec[c][n] = r.Range(0.4*maxT, 0.95*maxT)
			}
		}
	}
	return t
}

// RegionalTopology builds the client-scale wide-area variant: clients live
// in one of `regions` geographic regions, and every client in a region
// shares its region's latency vector up to a small per-client jitter
// (±2% of T, never enough to cross the feasibility bound). Region vectors
// follow the GeoTopology shape — one close home replica, most links
// moderate, a fracFar fraction beyond the latency bound. This is the
// structure that makes cohort aggregation effective: millions of clients
// quantize to a few hundred (region, latency-class) cohorts, exactly the
// geographic demand aggregation of energy-aware CDN load balancing.
func RegionalTopology(r *sim.Rand, clients, replicas, regions int, fracFar float64) *Topology {
	if regions <= 0 {
		regions = 1
	}
	t := &Topology{
		ClientNames:   names("client", clients),
		ReplicaNames:  names("replica", replicas),
		LatencySec:    make([][]float64, clients),
		BandwidthMBps: make([]float64, replicas),
	}
	for n := range t.BandwidthMBps {
		t.BandwidthMBps[n] = DefaultBandwidthMBps
	}
	maxT := DefaultMaxLatency.Seconds()
	// Draw one latency vector per region, keeping at least two feasible
	// links so no region is pinned to a single replica.
	regionLat := make([][]float64, regions)
	for g := range regionLat {
		row := make([]float64, replicas)
		home := r.Intn(replicas)
		for n := range row {
			switch {
			case n == home:
				row[n] = r.Range(0.05*maxT, 0.3*maxT)
			case r.Float64() < fracFar && feasibleIn(row[:n], maxT) > 1:
				row[n] = r.Range(2*maxT, 10*maxT) // infeasible
			default:
				row[n] = r.Range(0.4*maxT, 0.93*maxT)
			}
		}
		regionLat[g] = row
	}
	// Clients cycle through regions (deterministic striping keeps region
	// populations balanced at any scale) and jitter their region's vector.
	// Feasible links stay feasible (0.93·T + 0.02·T < T) and infeasible
	// ones stay infeasible (≥ 2·T − 0.02·T > T).
	for c := range t.LatencySec {
		base := regionLat[c%regions]
		row := make([]float64, replicas)
		for n, l := range base {
			row[n] = l + r.Range(-0.02*maxT, 0.02*maxT)
			if row[n] < 0 {
				row[n] = 0
			}
		}
		t.LatencySec[c] = row
	}
	return t
}

// feasibleIn counts entries of a partially-built latency row within the
// bound (zero-valued tail entries are not yet drawn, so only the prefix is
// passed in).
func feasibleIn(prefix []float64, maxT float64) int {
	count := 0
	for _, l := range prefix {
		if l > 0 && l <= maxT {
			count++
		}
	}
	return count
}

// replicasWithin counts replicas currently within the latency bound for
// client c — used to keep every client with at least two feasible choices.
func replicasWithin(t *Topology, c int) int {
	count := 0
	for _, l := range t.LatencySec[c] {
		if l <= DefaultMaxLatency.Seconds() {
			count++
		}
	}
	return count
}

func names(prefix string, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("%s%d", prefix, i+1)
	}
	return out
}
