// Package power emulates the paper's power instrumentation: a Dominion PX
// intelligent PDU sampling each node's draw at ≈50 samples/second, with
// energy obtained by integrating the sampled series and dollar cost by
// applying the regional electricity price. It also downsamples series to
// the one-second resolution of the paper's Fig. 3/4 runtime profiles.
package power

import (
	"fmt"
	"time"

	"edr/internal/cluster"
)

// DefaultSampleHz matches the Dominion PX sampling rate used in §IV-A.2
// ("approximately 50 times/sec").
const DefaultSampleHz = 50.0

// Sample is one metered point.
type Sample struct {
	// At is the sample instant.
	At time.Time
	// Watts is the instantaneous draw.
	Watts float64
}

// Meter samples one node.
type Meter struct {
	// Node is the metered machine.
	Node *cluster.Node
	// SampleHz is the sampling rate; zero means DefaultSampleHz.
	SampleHz float64
}

// NewMeter returns a Dominion-PX-style meter on node.
func NewMeter(node *cluster.Node) *Meter {
	return &Meter{Node: node, SampleHz: DefaultSampleHz}
}

// Sample reads the node's draw over [start, end) at the meter's rate.
func (m *Meter) Sample(start, end time.Time) ([]Sample, error) {
	if !end.After(start) {
		return nil, fmt.Errorf("power: sample window [%v, %v) empty", start, end)
	}
	hz := m.SampleHz
	if hz <= 0 {
		hz = DefaultSampleHz
	}
	period := time.Duration(float64(time.Second) / hz)
	if period <= 0 {
		return nil, fmt.Errorf("power: sampling rate %g Hz too high", hz)
	}
	var samples []Sample
	for t := start; t.Before(end); t = t.Add(period) {
		samples = append(samples, Sample{At: t, Watts: m.Node.PowerAt(t)})
	}
	return samples, nil
}

// Energy integrates a sampled power series into joules using the
// rectangle rule the PDU firmware effectively applies: each sample's draw
// is held until the next sample (the final sample extends to end).
func Energy(samples []Sample, end time.Time) float64 {
	total := 0.0
	for i, s := range samples {
		var next time.Time
		if i+1 < len(samples) {
			next = samples[i+1].At
		} else {
			next = end
		}
		dt := next.Sub(s.At).Seconds()
		if dt > 0 {
			total += s.Watts * dt
		}
	}
	return total
}

// NodeEnergy meters node over [start, end) at rate hz (0 = default) and
// returns total joules.
func NodeEnergy(node *cluster.Node, start, end time.Time, hz float64) (float64, error) {
	m := &Meter{Node: node, SampleHz: hz}
	samples, err := m.Sample(start, end)
	if err != nil {
		return 0, err
	}
	return Energy(samples, end), nil
}

// CostCents converts joules at a ¢/kWh price into cents:
// 1 kWh = 3.6e6 J.
func CostCents(joules, centsPerKWh float64) float64 {
	return joules / 3.6e6 * centsPerKWh
}

// Downsample averages a sampled series into buckets of the given width —
// the per-second resolution of Fig. 3/4. Bucket timestamps are the bucket
// starts; empty buckets are skipped.
func Downsample(samples []Sample, width time.Duration) []Sample {
	if width <= 0 {
		panic(fmt.Sprintf("power: Downsample width %v must be positive", width))
	}
	if len(samples) == 0 {
		return nil
	}
	var out []Sample
	origin := samples[0].At
	bucket := 0
	sum, count := 0.0, 0
	flush := func() {
		if count > 0 {
			out = append(out, Sample{
				At:    origin.Add(time.Duration(bucket) * width),
				Watts: sum / float64(count),
			})
		}
	}
	for _, s := range samples {
		b := int(s.At.Sub(origin) / width)
		if b != bucket {
			flush()
			bucket = b
			sum, count = 0, 0
		}
		sum += s.Watts
		count++
	}
	flush()
	return out
}

// Stats summarizes a series: min, mean, and max watts.
func Stats(samples []Sample) (min, mean, max float64) {
	if len(samples) == 0 {
		return 0, 0, 0
	}
	min, max = samples[0].Watts, samples[0].Watts
	sum := 0.0
	for _, s := range samples {
		if s.Watts < min {
			min = s.Watts
		}
		if s.Watts > max {
			max = s.Watts
		}
		sum += s.Watts
	}
	return min, sum / float64(len(samples)), max
}
