package power

import (
	"math"
	"testing"
	"time"

	"edr/internal/cluster"
	"edr/internal/sim"
)

func TestMeterSampleRateAndCount(t *testing.T) {
	n := cluster.NewSystemGNode("r")
	m := NewMeter(n)
	start := sim.Epoch
	samples, err := m.Sample(start, start.Add(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 50 {
		t.Fatalf("1s at 50 Hz gave %d samples, want 50", len(samples))
	}
	if !samples[0].At.Equal(start) {
		t.Fatalf("first sample at %v", samples[0].At)
	}
	if gap := samples[1].At.Sub(samples[0].At); gap != 20*time.Millisecond {
		t.Fatalf("sample gap = %v, want 20ms", gap)
	}
}

func TestMeterEmptyWindow(t *testing.T) {
	m := NewMeter(cluster.NewSystemGNode("r"))
	if _, err := m.Sample(sim.Epoch, sim.Epoch); err == nil {
		t.Fatal("empty window accepted")
	}
	if _, err := m.Sample(sim.Epoch.Add(time.Second), sim.Epoch); err == nil {
		t.Fatal("inverted window accepted")
	}
}

func TestEnergyIdleNode(t *testing.T) {
	n := cluster.NewSystemGNode("r")
	start := sim.Epoch
	end := start.Add(10 * time.Second)
	joules, err := NodeEnergy(n, start, end, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Idle draw 215 W for 10 s = 2150 J.
	if math.Abs(joules-2150) > 1e-6 {
		t.Fatalf("idle energy = %g J, want 2150", joules)
	}
}

func TestEnergyStepProfile(t *testing.T) {
	n := cluster.NewSystemGNode("r")
	start := sim.Epoch
	// Full utilization for the middle 5 of 10 seconds.
	n.SetUtilization(start.Add(2*time.Second), 1)
	n.SetUtilization(start.Add(7*time.Second), 0)
	end := start.Add(10 * time.Second)
	joules, err := NodeEnergy(n, start, end, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := 215.0*10 + 25.0*5 // idle baseline + 5s of extra 25W
	if math.Abs(joules-want) > 1 {
		t.Fatalf("energy = %g J, want ~%g", joules, want)
	}
}

func TestEnergyHigherRateSameAnswer(t *testing.T) {
	n := cluster.NewSystemGNode("r")
	start := sim.Epoch
	n.SetUtilization(start.Add(time.Second), 0.7)
	end := start.Add(4 * time.Second)
	e50, err := NodeEnergy(n, start, end, 50)
	if err != nil {
		t.Fatal(err)
	}
	e1000, err := NodeEnergy(n, start, end, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e50-e1000) > 2 {
		t.Fatalf("sampling-rate sensitivity: %g vs %g J", e50, e1000)
	}
}

func TestEnergyEmptySeries(t *testing.T) {
	if got := Energy(nil, sim.Epoch); got != 0 {
		t.Fatalf("Energy(nil) = %g", got)
	}
}

func TestCostCents(t *testing.T) {
	// 1 kWh at 8 ¢/kWh = 8 cents.
	if got := CostCents(3.6e6, 8); math.Abs(got-8) > 1e-12 {
		t.Fatalf("CostCents(1 kWh, 8) = %g", got)
	}
	if got := CostCents(0, 20); got != 0 {
		t.Fatalf("CostCents(0) = %g", got)
	}
}

func TestDownsamplePerSecond(t *testing.T) {
	n := cluster.NewSystemGNode("r")
	start := sim.Epoch
	n.SetUtilization(start.Add(time.Second), 1) // second #2 at peak
	m := NewMeter(n)
	samples, err := m.Sample(start, start.Add(2*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	buckets := Downsample(samples, time.Second)
	if len(buckets) != 2 {
		t.Fatalf("buckets = %d, want 2", len(buckets))
	}
	if math.Abs(buckets[0].Watts-215) > 1e-9 {
		t.Fatalf("bucket 0 = %g W, want 215", buckets[0].Watts)
	}
	if math.Abs(buckets[1].Watts-240) > 1e-9 {
		t.Fatalf("bucket 1 = %g W, want 240", buckets[1].Watts)
	}
}

func TestDownsampleEmptyAndBadWidth(t *testing.T) {
	if got := Downsample(nil, time.Second); got != nil {
		t.Fatalf("Downsample(nil) = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("zero width did not panic")
		}
	}()
	Downsample([]Sample{{}}, 0)
}

func TestStats(t *testing.T) {
	samples := []Sample{{Watts: 215}, {Watts: 240}, {Watts: 225}}
	min, mean, max := Stats(samples)
	if min != 215 || max != 240 {
		t.Fatalf("min/max = %g/%g", min, max)
	}
	if math.Abs(mean-226.666666) > 1e-3 {
		t.Fatalf("mean = %g", mean)
	}
	min, mean, max = Stats(nil)
	if min != 0 || mean != 0 || max != 0 {
		t.Fatal("Stats(nil) nonzero")
	}
}

// The meter must observe the valley/peak structure of Fig 3/4: idle
// between activity bursts reads near 215 W, bursts near 240 W.
func TestMeterSeesValleysAndPeaks(t *testing.T) {
	n := cluster.NewSystemGNode("r")
	start := sim.Epoch
	// Three bursts separated by idle valleys.
	for burst := 0; burst < 3; burst++ {
		b := start.Add(time.Duration(burst*20) * time.Second)
		n.SetUtilization(b, 1)
		n.SetUtilization(b.Add(5*time.Second), 0)
	}
	m := NewMeter(n)
	samples, err := m.Sample(start, start.Add(60*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	perSec := Downsample(samples, time.Second)
	peaks, valleys := 0, 0
	for _, s := range perSec {
		switch {
		case s.Watts > 239:
			peaks++
		case s.Watts < 216:
			valleys++
		}
	}
	if peaks < 10 || valleys < 30 {
		t.Fatalf("peaks %d valleys %d: profile structure missing", peaks, valleys)
	}
}
