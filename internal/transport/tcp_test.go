package transport

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func newTCPPair(t *testing.T, h Handler) (server, client Node) {
	t.Helper()
	net := NewTCPNetwork()
	server, err := net.Listen("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { server.Close() })
	client, err = net.Listen("127.0.0.1:0", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	return server, client
}

func TestTCPSendReceive(t *testing.T) {
	server, client := newTCPPair(t, echoHandler)
	req, _ := NewMessage("ping", "", map[string]int{"k": 3})
	resp, err := client.Send(context.Background(), server.Name(), req)
	if err != nil {
		t.Fatal(err)
	}
	var body map[string]int
	if err := resp.DecodeBody(&body); err != nil || body["k"] != 3 {
		t.Fatalf("resp body = %s err = %v", resp.Body, err)
	}
}

func TestTCPSendStampsFromWithAddress(t *testing.T) {
	var gotFrom string
	var mu sync.Mutex
	server, client := newTCPPair(t, func(ctx context.Context, req Message) (Message, error) {
		mu.Lock()
		gotFrom = req.From
		mu.Unlock()
		return Message{Type: "ok"}, nil
	})
	if _, err := client.Send(context.Background(), server.Name(), Message{Type: "ping"}); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if gotFrom != client.Name() {
		t.Fatalf("From = %q, want client address %q", gotFrom, client.Name())
	}
}

func TestTCPHandlerErrorPropagates(t *testing.T) {
	server, client := newTCPPair(t, func(ctx context.Context, req Message) (Message, error) {
		return Message{}, fmt.Errorf("storage exploded")
	})
	_, err := client.Send(context.Background(), server.Name(), Message{Type: "ping"})
	if err == nil || !strings.Contains(err.Error(), "storage exploded") {
		t.Fatalf("err = %v, want remote error text", err)
	}
}

func TestTCPUnknownPeer(t *testing.T) {
	_, client := newTCPPair(t, echoHandler)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	// Port 1 on localhost: connection refused.
	_, err := client.Send(ctx, "127.0.0.1:1", Message{Type: "ping"})
	if !errors.Is(err, ErrUnknownPeer) {
		t.Fatalf("err = %v, want ErrUnknownPeer", err)
	}
}

func TestTCPClosedNodeRefusesSend(t *testing.T) {
	server, client := newTCPPair(t, echoHandler)
	client.Close()
	if _, err := client.Send(context.Background(), server.Name(), Message{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestTCPCloseStopsServing(t *testing.T) {
	server, client := newTCPPair(t, echoHandler)
	if err := server.Close(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if _, err := client.Send(ctx, server.Name(), Message{Type: "ping"}); err == nil {
		t.Fatal("send to closed server succeeded")
	}
	// Double close is fine.
	if err := server.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestTCPConcurrentClients(t *testing.T) {
	var mu sync.Mutex
	count := 0
	server, _ := newTCPPair(t, func(ctx context.Context, req Message) (Message, error) {
		mu.Lock()
		count++
		mu.Unlock()
		return Message{Type: "ok"}, nil
	})
	net := NewTCPNetwork()
	const workers, each = 8, 20
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			node, err := net.Listen("127.0.0.1:0", echoHandler)
			if err != nil {
				errs <- err
				return
			}
			defer node.Close()
			for j := 0; j < each; j++ {
				if _, err := node.Send(context.Background(), server.Name(), Message{Type: "ping"}); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if count != workers*each {
		t.Fatalf("server saw %d requests, want %d", count, workers*each)
	}
}

func TestTCPLargePayload(t *testing.T) {
	server, client := newTCPPair(t, echoHandler)
	big := make([]float64, 50000)
	for i := range big {
		big[i] = float64(i) * 1.5
	}
	req, err := NewMessage("bulk", "", big)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Send(context.Background(), server.Name(), req)
	if err != nil {
		t.Fatal(err)
	}
	var out []float64
	if err := resp.DecodeBody(&out); err != nil {
		t.Fatal(err)
	}
	if len(out) != len(big) || out[49999] != big[49999] {
		t.Fatal("large payload corrupted")
	}
}
