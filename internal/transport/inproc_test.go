package transport

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func echoHandler(ctx context.Context, req Message) (Message, error) {
	return Message{Type: "echo", From: "server", Body: req.Body}, nil
}

func TestInProcSendReceive(t *testing.T) {
	net := NewInProcNetwork()
	if _, err := net.Listen("server", echoHandler); err != nil {
		t.Fatal(err)
	}
	client, err := net.Listen("client", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	req, _ := NewMessage("ping", "client", "hello")
	resp, err := client.Send(context.Background(), "server", req)
	if err != nil {
		t.Fatal(err)
	}
	var body string
	if err := resp.DecodeBody(&body); err != nil || body != "hello" {
		t.Fatalf("resp = %+v, err = %v", resp, err)
	}
}

func TestInProcSendSetsFrom(t *testing.T) {
	net := NewInProcNetwork()
	var gotFrom string
	net.Listen("server", func(ctx context.Context, req Message) (Message, error) {
		gotFrom = req.From
		return Message{}, nil
	})
	client, _ := net.Listen("alice", echoHandler)
	req, _ := NewMessage("ping", "spoofed", nil)
	if _, err := client.Send(context.Background(), "server", req); err != nil {
		t.Fatal(err)
	}
	if gotFrom != "alice" {
		t.Fatalf("From = %q, want alice (fabric must stamp sender)", gotFrom)
	}
}

func TestInProcUnknownPeer(t *testing.T) {
	net := NewInProcNetwork()
	client, _ := net.Listen("client", echoHandler)
	_, err := client.Send(context.Background(), "ghost", Message{Type: "ping"})
	if !errors.Is(err, ErrUnknownPeer) {
		t.Fatalf("err = %v, want ErrUnknownPeer", err)
	}
}

func TestInProcDuplicateName(t *testing.T) {
	net := NewInProcNetwork()
	if _, err := net.Listen("dup", echoHandler); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Listen("dup", echoHandler); err == nil {
		t.Fatal("duplicate registration accepted")
	}
}

func TestInProcNilHandler(t *testing.T) {
	if _, err := NewInProcNetwork().Listen("n", nil); err == nil {
		t.Fatal("nil handler accepted")
	}
}

func TestInProcClose(t *testing.T) {
	net := NewInProcNetwork()
	server, _ := net.Listen("server", echoHandler)
	client, _ := net.Listen("client", echoHandler)
	if err := server.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Send(context.Background(), "server", Message{Type: "ping"}); !errors.Is(err, ErrUnknownPeer) {
		t.Fatalf("send to closed = %v, want ErrUnknownPeer", err)
	}
	// Closing twice is fine.
	if err := server.Close(); err != nil {
		t.Fatal(err)
	}
	// A closed node cannot send.
	client.Close()
	if _, err := client.Send(context.Background(), "anything", Message{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("send from closed = %v, want ErrClosed", err)
	}
}

func TestInProcCrashSimulatesFailure(t *testing.T) {
	net := NewInProcNetwork()
	net.Listen("victim", echoHandler)
	client, _ := net.Listen("client", echoHandler)
	net.Crash("victim")
	if _, err := client.Send(context.Background(), "victim", Message{Type: "ping"}); !errors.Is(err, ErrUnknownPeer) {
		t.Fatalf("send to crashed = %v, want ErrUnknownPeer", err)
	}
	// Crashing an unknown node is harmless.
	net.Crash("nobody")
}

func TestInProcNames(t *testing.T) {
	net := NewInProcNetwork()
	net.Listen("a", echoHandler)
	net.Listen("b", echoHandler)
	names := net.Names()
	if len(names) != 2 {
		t.Fatalf("Names = %v", names)
	}
}

func TestInProcDelay(t *testing.T) {
	net := NewInProcNetwork()
	net.Delay = func(from, to string) time.Duration { return 10 * time.Millisecond }
	net.Listen("server", echoHandler)
	client, _ := net.Listen("client", echoHandler)
	start := time.Now()
	if _, err := client.Send(context.Background(), "server", Message{Type: "ping"}); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Fatalf("round trip took %v, want >= 20ms (2 hops)", elapsed)
	}
}

func TestInProcDelayRespectsContext(t *testing.T) {
	net := NewInProcNetwork()
	net.Delay = func(from, to string) time.Duration { return time.Hour }
	net.Listen("server", echoHandler)
	client, _ := net.Listen("client", echoHandler)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := client.Send(ctx, "server", Message{Type: "ping"}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
}

func TestInProcConcurrentSends(t *testing.T) {
	net := NewInProcNetwork()
	var mu sync.Mutex
	count := 0
	net.Listen("server", func(ctx context.Context, req Message) (Message, error) {
		mu.Lock()
		count++
		mu.Unlock()
		return Message{Type: "ok"}, nil
	})
	const workers = 16
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			node, err := net.Listen(string(rune('A'+i)), echoHandler)
			if err != nil {
				t.Error(err)
				return
			}
			for j := 0; j < 50; j++ {
				if _, err := node.Send(context.Background(), "server", Message{Type: "ping"}); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	if count != workers*50 {
		t.Fatalf("server saw %d requests, want %d", count, workers*50)
	}
}
