// Package transport carries EDR's inter-node messages: a small typed
// envelope, a length-prefixed JSON wire codec, and two interchangeable
// fabrics — real TCP sockets (the paper's deployment, §III-C) and an
// in-process fabric for deterministic tests and simulations.
//
// The paper's server design is multithreaded with TCP/IP sockets: a
// ClientListener accepting client requests, a ReplicaListener exchanging
// solution state between replicas, and FileDownload workers streaming the
// selected bytes. This package provides the socket substrate those
// components are built on (see internal/core for the components).
package transport

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
)

// Message is the envelope exchanged between EDR nodes. Body is
// type-specific JSON decoded by the handler.
type Message struct {
	// Type routes the message (e.g. "client.request", "replica.solution",
	// "ring.heartbeat").
	Type string `json:"type"`
	// From names the sending node.
	From string `json:"from"`
	// Body is the type-specific payload.
	Body json.RawMessage `json:"body,omitempty"`
}

// NewMessage builds a Message with body marshaled from v. A nil v leaves
// the body empty.
func NewMessage(msgType, from string, v any) (Message, error) {
	m := Message{Type: msgType, From: from}
	if v != nil {
		b, err := json.Marshal(v)
		if err != nil {
			return Message{}, fmt.Errorf("transport: marshal %s body: %w", msgType, err)
		}
		m.Body = b
	}
	return m, nil
}

// DecodeBody unmarshals the message body into v.
func (m Message) DecodeBody(v any) error {
	if len(m.Body) == 0 {
		return fmt.Errorf("transport: %s message has empty body", m.Type)
	}
	if err := json.Unmarshal(m.Body, v); err != nil {
		return fmt.Errorf("transport: decode %s body: %w", m.Type, err)
	}
	return nil
}

// MaxFrameBytes bounds a single wire frame. Solution matrices for the
// paper-scale problems are well under this; the bound protects listeners
// from corrupt length prefixes.
const MaxFrameBytes = 64 << 20

// WriteFrame writes m as a 4-byte big-endian length prefix followed by the
// JSON encoding.
func WriteFrame(w io.Writer, m Message) error {
	payload, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("transport: encode frame: %w", err)
	}
	if len(payload) > MaxFrameBytes {
		return fmt.Errorf("transport: frame of %d bytes exceeds limit %d", len(payload), MaxFrameBytes)
	}
	var prefix [4]byte
	binary.BigEndian.PutUint32(prefix[:], uint32(len(payload)))
	if _, err := w.Write(prefix[:]); err != nil {
		return fmt.Errorf("transport: write frame prefix: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("transport: write frame payload: %w", err)
	}
	return nil
}

// ReadFrame reads one length-prefixed message written by WriteFrame.
func ReadFrame(r io.Reader) (Message, error) {
	var prefix [4]byte
	if _, err := io.ReadFull(r, prefix[:]); err != nil {
		return Message{}, err // io.EOF passes through for clean shutdown
	}
	n := binary.BigEndian.Uint32(prefix[:])
	if n > MaxFrameBytes {
		return Message{}, fmt.Errorf("transport: frame length %d exceeds limit %d", n, MaxFrameBytes)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return Message{}, fmt.Errorf("transport: read frame payload: %w", err)
	}
	var m Message
	if err := json.Unmarshal(payload, &m); err != nil {
		return Message{}, fmt.Errorf("transport: decode frame: %w", err)
	}
	return m, nil
}
