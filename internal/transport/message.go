// Package transport carries EDR's inter-node messages: a small typed
// envelope, a length-prefixed JSON wire codec, and two interchangeable
// fabrics — real TCP sockets (the paper's deployment, §III-C) and an
// in-process fabric for deterministic tests and simulations.
//
// The paper's server design is multithreaded with TCP/IP sockets: a
// ClientListener accepting client requests, a ReplicaListener exchanging
// solution state between replicas, and FileDownload workers streaming the
// selected bytes. This package provides the socket substrate those
// components are built on (see internal/core for the components).
package transport

import (
	"encoding"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
)

// Message is the envelope exchanged between EDR nodes. A message carries
// exactly one body: Body (type-specific JSON, the original codec) or Bin
// (the compact binary codec of binary.go, for the matrix-bearing engine
// verbs). DecodeBody accepts either, so handlers are codec-agnostic.
type Message struct {
	// Type routes the message (e.g. "client.request", "replica.solution",
	// "ring.heartbeat").
	Type string `json:"type"`
	// From names the sending node.
	From string `json:"from"`
	// Body is the type-specific JSON payload.
	Body json.RawMessage `json:"body,omitempty"`
	// Bin is the compact binary payload, used instead of Body when the
	// body type implements encoding.BinaryMarshaler.
	Bin []byte `json:"bin,omitempty"`
}

// BodyLen reports the payload size in bytes, whichever codec carries it.
func (m Message) BodyLen() int { return len(m.Body) + len(m.Bin) }

// NewMessage builds a Message with the body marshaled from v, preferring
// the compact binary codec when v implements encoding.BinaryMarshaler and
// falling back to JSON otherwise. A nil v leaves the body empty.
func NewMessage(msgType, from string, v any) (Message, error) {
	if bm, ok := v.(encoding.BinaryMarshaler); ok {
		b, err := bm.MarshalBinary()
		if err != nil {
			return Message{}, fmt.Errorf("transport: marshal %s body: %w", msgType, err)
		}
		return Message{Type: msgType, From: from, Bin: b}, nil
	}
	return NewJSONMessage(msgType, from, v)
}

// NewJSONMessage builds a Message with a JSON body regardless of codec
// support — for peers (or configurations) that speak only JSON.
func NewJSONMessage(msgType, from string, v any) (Message, error) {
	m := Message{Type: msgType, From: from}
	if v != nil {
		b, err := json.Marshal(v)
		if err != nil {
			return Message{}, fmt.Errorf("transport: marshal %s body: %w", msgType, err)
		}
		m.Body = b
	}
	return m, nil
}

// NewReply builds a response mirroring the request's codec: a binary
// request gets a binary reply (when v supports it), a JSON request always
// gets a JSON reply. This is the negotiation rule that keeps JSON-only
// peers working — they never receive bytes they cannot decode.
func NewReply(req Message, msgType, from string, v any) (Message, error) {
	if len(req.Bin) > 0 {
		return NewMessage(msgType, from, v)
	}
	return NewJSONMessage(msgType, from, v)
}

// DecodeBody unmarshals the message body into v, from whichever codec the
// sender used. A binary body requires v to implement
// encoding.BinaryUnmarshaler.
func (m Message) DecodeBody(v any) error {
	if len(m.Bin) > 0 {
		bu, ok := v.(encoding.BinaryUnmarshaler)
		if !ok {
			return fmt.Errorf("transport: %s message has a binary body but %T cannot decode it", m.Type, v)
		}
		if err := bu.UnmarshalBinary(m.Bin); err != nil {
			return fmt.Errorf("transport: decode %s binary body: %w", m.Type, err)
		}
		return nil
	}
	if len(m.Body) == 0 {
		return fmt.Errorf("transport: %s message has empty body", m.Type)
	}
	if err := json.Unmarshal(m.Body, v); err != nil {
		return fmt.Errorf("transport: decode %s body: %w", m.Type, err)
	}
	return nil
}

// MaxFrameBytes bounds a single wire frame. Solution matrices for the
// paper-scale problems are well under this; the bound protects listeners
// from corrupt length prefixes.
const MaxFrameBytes = 64 << 20

// WriteFrame writes m as a 4-byte big-endian length prefix followed by
// the payload. Messages with a binary body use the compact envelope of
// binary.go, flagged by the prefix's top bit; everything else is JSON,
// byte-identical to the original codec.
func WriteFrame(w io.Writer, m Message) error {
	if len(m.Bin) > 0 {
		return writeBinaryFrame(w, m)
	}
	payload, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("transport: encode frame: %w", err)
	}
	if len(payload) > MaxFrameBytes {
		return fmt.Errorf("transport: frame of %d bytes exceeds limit %d", len(payload), MaxFrameBytes)
	}
	var prefix [4]byte
	binary.BigEndian.PutUint32(prefix[:], uint32(len(payload)))
	if _, err := w.Write(prefix[:]); err != nil {
		return fmt.Errorf("transport: write frame prefix: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("transport: write frame payload: %w", err)
	}
	return nil
}

// ReadFrame reads one length-prefixed message written by WriteFrame,
// dispatching on the binary flag bit of the prefix.
func ReadFrame(r io.Reader) (Message, error) {
	var prefix [4]byte
	if _, err := io.ReadFull(r, prefix[:]); err != nil {
		return Message{}, err // io.EOF passes through for clean shutdown
	}
	raw := binary.BigEndian.Uint32(prefix[:])
	isBin := raw&binFlag != 0
	n := raw &^ uint32(binFlag)
	if n > MaxFrameBytes {
		return Message{}, fmt.Errorf("transport: frame length %d exceeds limit %d", n, MaxFrameBytes)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return Message{}, fmt.Errorf("transport: read frame payload: %w", err)
	}
	if isBin {
		return decodeBinaryFrame(payload)
	}
	var m Message
	if err := json.Unmarshal(payload, &m); err != nil {
		return Message{}, fmt.Errorf("transport: decode frame: %w", err)
	}
	return m, nil
}
