package transport

import (
	"bytes"
	"math"
	"testing"
)

// deltaBody mirrors the CDPSM estimate reply: an iteration header plus a
// kinded matrix frame with an out-of-band delta base.
type deltaBody struct {
	Iter int
	M    [][]float64

	Base [][]float64
}

func (b deltaBody) MarshalBinary() ([]byte, error) {
	out := AppendUint32(nil, uint32(int32(b.Iter)))
	return AppendMatrixKinded(out, b.M, b.Base), nil
}

func (b *deltaBody) UnmarshalBinary(data []byte) error {
	iter, data, err := ReadUint32(data)
	if err != nil {
		return err
	}
	m, _, err := ReadMatrixKinded(data, b.Base)
	if err != nil {
		return err
	}
	b.Iter, b.M = int(int32(iter)), m
	return nil
}

func matricesEqualBits(a, b [][]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if math.Float64bits(a[i][j]) != math.Float64bits(b[i][j]) {
				return false
			}
		}
	}
	return true
}

func TestKindedMatrixRoundTripAllKinds(t *testing.T) {
	dense := testMatrix(6, 5)
	sparse := testMatrix(6, 5)
	for i := range sparse {
		for j := range sparse[i] {
			if (i+j)%4 != 0 {
				sparse[i][j] = 0
			}
		}
	}
	base := testMatrix(6, 5)
	delta := testMatrix(6, 5)
	delta[2][3] += 1 // one changed entry vs base
	cases := []struct {
		name string
		m    [][]float64
		base [][]float64
		kind byte
	}{
		{"full", dense, nil, MatrixFull},
		{"sparse", sparse, nil, MatrixSparse},
		{"delta", delta, base, MatrixDelta},
		{"unchanged-delta", base, base, MatrixDelta},
		{"empty", [][]float64{}, nil, MatrixSparse}, // 4+0 < 8·0? no: 0 < 4 — full wins
	}
	for _, tc := range cases {
		b := AppendMatrixKinded(nil, tc.m, tc.base)
		if tc.name != "empty" && b[0] != tc.kind {
			t.Fatalf("%s: chooser picked kind %d, want %d", tc.name, b[0], tc.kind)
		}
		got, rest, err := ReadMatrixKinded(b, tc.base)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if len(rest) != 0 {
			t.Fatalf("%s: %d trailing bytes", tc.name, len(rest))
		}
		if !matricesEqualBits(got, tc.m) {
			t.Fatalf("%s: round trip mismatch", tc.name)
		}
	}
}

func TestKindedMatrixBitwiseSpecials(t *testing.T) {
	// Change detection is bitwise: −0 and NaN must survive every kind.
	m := [][]float64{{math.Copysign(0, -1), math.NaN(), 0, 1}}
	base := [][]float64{{0, math.NaN(), 0, 1}}
	b := AppendMatrixKinded(nil, m, base)
	got, _, err := ReadMatrixKinded(b, base)
	if err != nil {
		t.Fatal(err)
	}
	if !matricesEqualBits(got, m) {
		t.Fatalf("specials mismatch: got %v want %v", got, m)
	}
	if math.Signbit(got[0][0]) != true {
		t.Fatal("−0 lost its sign")
	}
}

func TestKindedMatrixDeltaNeedsBase(t *testing.T) {
	base := testMatrix(4, 4)
	m := testMatrix(4, 4)
	m[0][0] += 1
	b := AppendMatrixKinded(nil, m, base)
	if b[0] != MatrixDelta {
		t.Fatalf("chooser picked kind %d, want delta", b[0])
	}
	if _, _, err := ReadMatrixKinded(b, nil); err == nil {
		t.Fatal("delta frame decoded without a base")
	}
	short := testMatrix(3, 4)
	if _, _, err := ReadMatrixKinded(b, short); err == nil {
		t.Fatal("delta frame decoded against a mismatched base")
	}
	// The base is read-only during decode.
	snapshot := testMatrix(4, 4)
	got, _, err := ReadMatrixKinded(b, base)
	if err != nil {
		t.Fatal(err)
	}
	if !matricesEqualBits(base, snapshot) {
		t.Fatal("decode mutated the base")
	}
	if !matricesEqualBits(got, m) {
		t.Fatal("delta round trip mismatch")
	}
}

func TestKindedMatrixSizes(t *testing.T) {
	// The chooser must deliver the advertised wins: ≤20% density → at
	// least 2x fewer bytes than a dense v1 frame; one-entry delta → far
	// smaller still.
	rows, cols := 100, 50
	m := make([][]float64, rows)
	for i := range m {
		m[i] = make([]float64, cols)
		for j := 0; j < cols/5; j++ { // exactly 20% density
			m[i][(i+5*j)%cols] = float64(i*cols+j) + 0.5
		}
	}
	v1 := len(AppendMatrix(nil, m))
	v2 := len(AppendMatrixKinded(nil, m, nil))
	if v1 < 2*v2 {
		t.Fatalf("sparse frame %d B vs dense %d B: less than 2x win at 20%% density", v2, v1)
	}
	next := make([][]float64, rows)
	for i := range next {
		next[i] = append([]float64(nil), m[i]...)
	}
	next[7][3] = 123.25
	dv2 := len(AppendMatrixKinded(nil, next, m))
	if dv2 >= v2/10 {
		t.Fatalf("one-entry delta frame %d B vs sparse %d B", dv2, v2)
	}
}

func TestMatrixFrameStats(t *testing.T) {
	ResetMatrixFrameStats()
	dense := testMatrix(4, 4)
	sparseM := [][]float64{{1, 0, 0, 0}, {0, 0, 0, 0}, {0, 0, 0, 0}, {0, 0, 0, 0}}
	AppendMatrixKinded(nil, dense, nil)
	AppendMatrixKinded(nil, sparseM, nil)
	AppendMatrixKinded(nil, dense, dense)
	full, sparse, delta := MatrixFrameStats()
	if full != 1 || sparse != 1 || delta != 1 {
		t.Fatalf("stats = (%d, %d, %d), want (1, 1, 1)", full, sparse, delta)
	}
	ResetMatrixFrameStats()
	if f, s, d := MatrixFrameStats(); f+s+d != 0 {
		t.Fatal("reset did not zero the counters")
	}
}

// FuzzDeltaCodec mirrors FuzzMatrixCodec for the kinded frames: arbitrary
// bytes must never panic the reader (with or without a base), and anything
// that decodes must re-encode/re-decode stably bit-for-bit.
func FuzzDeltaCodec(f *testing.F) {
	base := testMatrix(3, 5)
	m := testMatrix(3, 5)
	m[1][2] += 2
	full, _ := deltaBody{Iter: 4, M: m}.MarshalBinary()
	f.Add(full, false)
	withBase, _ := deltaBody{Iter: 5, M: m, Base: base}.MarshalBinary()
	f.Add(withBase, true)
	f.Add([]byte{}, false)
	f.Add(AppendUint32(nil, math.MaxUint32), true)
	f.Fuzz(func(t *testing.T, data []byte, useBase bool) {
		b := deltaBody{}
		if useBase {
			b.Base = base
		}
		if err := b.UnmarshalBinary(data); err == nil {
			// Re-encode against the same base and require a stable cycle.
			re, err := b.MarshalBinary()
			if err != nil {
				t.Fatalf("re-encode failed: %v", err)
			}
			b2 := deltaBody{Base: b.Base}
			if err := b2.UnmarshalBinary(re); err != nil {
				t.Fatalf("re-decode failed: %v", err)
			}
			if !matricesEqualBits(b.M, b2.M) || b.Iter != b2.Iter {
				t.Fatal("re-decode changed the payload")
			}
			re2, err := b2.MarshalBinary()
			if err != nil {
				t.Fatalf("second re-encode failed: %v", err)
			}
			if !bytes.Equal(re, re2) {
				t.Fatalf("re-encode not stable: %x vs %x", re, re2)
			}
		}
	})
}
