package transport

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"
)

// TCPNetwork is the live fabric: each node binds a real TCP listener and
// serves one request/response exchange per accepted connection, mirroring
// the paper's socket-per-request server threads. Node names are host:port
// addresses, so any node can message any other by address with no central
// registry.
type TCPNetwork struct {
	// DialTimeout bounds connection establishment. Zero means 5s.
	DialTimeout time.Duration
}

// NewTCPNetwork returns a TCP fabric with default timeouts.
func NewTCPNetwork() *TCPNetwork { return &TCPNetwork{} }

type tcpNode struct {
	listener net.Listener
	handler  Handler
	dialTO   time.Duration

	mu     sync.Mutex
	closed bool
	wg     sync.WaitGroup
}

// Listen binds the given address ("host:port", with ":0" choosing a free
// port) and serves h on every accepted connection. Use Name to learn the
// bound address.
func (n *TCPNetwork) Listen(addr string, h Handler) (Node, error) {
	if h == nil {
		return nil, fmt.Errorf("transport: tcp listen %q: nil handler", addr)
	}
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: tcp listen %q: %w", addr, err)
	}
	to := n.DialTimeout
	if to == 0 {
		to = 5 * time.Second
	}
	node := &tcpNode{listener: l, handler: h, dialTO: to}
	node.wg.Add(1)
	go node.acceptLoop()
	return node, nil
}

func (nd *tcpNode) acceptLoop() {
	defer nd.wg.Done()
	for {
		conn, err := nd.listener.Accept()
		if err != nil {
			return // listener closed
		}
		nd.wg.Add(1)
		go func() {
			defer nd.wg.Done()
			defer conn.Close()
			nd.serveConn(conn)
		}()
	}
}

// serveConn handles request/response exchanges until the peer closes.
func (nd *tcpNode) serveConn(conn net.Conn) {
	for {
		req, err := ReadFrame(conn)
		if err != nil {
			return
		}
		resp, err := nd.handler(context.Background(), req)
		if err != nil {
			resp = Message{Type: "error", From: nd.Name(), Body: mustJSON(err.Error())}
		}
		if err := WriteFrame(conn, resp); err != nil {
			return
		}
	}
}

func mustJSON(s string) []byte {
	// A JSON string literal; strconv.Quote escapes everything JSON needs
	// except a few control sequences that never appear in error text from
	// this module. Marshal via the encoder for full correctness.
	b, err := NewMessage("", "", s)
	if err != nil {
		return []byte(`"error"`)
	}
	return b.Body
}

func (nd *tcpNode) Name() string { return nd.listener.Addr().String() }

// Send dials the peer address, performs one framed request/response
// exchange, and closes the connection. Dial-per-request keeps failure
// handling simple and matches the short-lived coordination exchanges of
// the EDR protocol; file downloads stream over their own connections.
func (nd *tcpNode) Send(ctx context.Context, to string, req Message) (Message, error) {
	nd.mu.Lock()
	closed := nd.closed
	nd.mu.Unlock()
	if closed {
		return Message{}, ErrClosed
	}
	d := net.Dialer{Timeout: nd.dialTO}
	conn, err := d.DialContext(ctx, "tcp", to)
	if err != nil {
		return Message{}, fmt.Errorf("%w: %q: %v", ErrUnknownPeer, to, err)
	}
	defer conn.Close()
	if deadline, ok := ctx.Deadline(); ok {
		if err := conn.SetDeadline(deadline); err != nil {
			return Message{}, fmt.Errorf("transport: set deadline: %w", err)
		}
	}
	req.From = nd.Name()
	if err := WriteFrame(conn, req); err != nil {
		return Message{}, err
	}
	resp, err := ReadFrame(conn)
	if err != nil {
		return Message{}, fmt.Errorf("transport: read response from %q: %w", to, err)
	}
	if resp.Type == "error" {
		var msg string
		if err := resp.DecodeBody(&msg); err != nil {
			msg = "remote handler error"
		}
		return Message{}, fmt.Errorf("transport: remote %q: %s", to, msg)
	}
	return resp, nil
}

func (nd *tcpNode) Close() error {
	nd.mu.Lock()
	if nd.closed {
		nd.mu.Unlock()
		return nil
	}
	nd.closed = true
	nd.mu.Unlock()
	err := nd.listener.Close()
	nd.wg.Wait()
	return err
}
