package transport

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"testing"
)

// matrixBody is a stand-in for the engine's matrix-bearing bodies: a round
// header plus a dense matrix, with both codecs implemented the way the
// algorithm packages do it.
type matrixBody struct {
	Round int         `json:"round"`
	M     [][]float64 `json:"m"`
}

func (b matrixBody) MarshalBinary() ([]byte, error) {
	out := AppendUint32(nil, uint32(b.Round))
	return AppendMatrix(out, b.M), nil
}

func (b *matrixBody) UnmarshalBinary(data []byte) error {
	round, data, err := ReadUint32(data)
	if err != nil {
		return err
	}
	m, _, err := ReadMatrix(data)
	if err != nil {
		return err
	}
	b.Round, b.M = int(round), m
	return nil
}

func testMatrix(rows, cols int) [][]float64 {
	m := make([][]float64, rows)
	for i := range m {
		m[i] = make([]float64, cols)
		for j := range m[i] {
			m[i][j] = float64(i*cols+j) * 0.137
		}
	}
	return m
}

func TestBinaryBodyRoundTrip(t *testing.T) {
	want := matrixBody{Round: 42, M: testMatrix(5, 3)}
	msg, err := NewMessage("replica.cdpsm.estimate.ack", "replica-1", want)
	if err != nil {
		t.Fatal(err)
	}
	if len(msg.Bin) == 0 || len(msg.Body) != 0 {
		t.Fatalf("NewMessage on a BinaryMarshaler: Bin=%d Body=%d bytes, want binary only",
			len(msg.Bin), len(msg.Body))
	}
	if msg.BodyLen() != len(msg.Bin) {
		t.Fatalf("BodyLen %d != len(Bin) %d", msg.BodyLen(), len(msg.Bin))
	}
	var got matrixBody
	if err := msg.DecodeBody(&got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch: got %+v want %+v", got, want)
	}
	if r, err := BinaryRound(msg); err != nil || r != 42 {
		t.Fatalf("BinaryRound = %d, %v; want 42", r, err)
	}
}

func TestBinaryFrameRoundTrip(t *testing.T) {
	msg, err := NewMessage("replica.cdpsm.step", "replica-2", matrixBody{Round: 7, M: testMatrix(4, 6)})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, msg); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != msg.Type || got.From != msg.From || !bytes.Equal(got.Bin, msg.Bin) || len(got.Body) != 0 {
		t.Fatalf("frame round trip mismatch: got %+v want %+v", got, msg)
	}
}

func TestJSONFramesUnchangedByBinarySupport(t *testing.T) {
	// A JSON message must still produce the original wire bytes: a plain
	// length prefix (top bit clear) and a JSON object without a bin field.
	msg, err := NewMessage("client.request", "client-1", map[string]int{"mb": 3})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, msg); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if raw[0]&0x80 != 0 {
		t.Fatal("JSON frame has the binary flag set")
	}
	if bytes.Contains(raw, []byte(`"bin"`)) {
		t.Fatal("JSON frame leaked a bin field")
	}
	got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != msg.Type || !bytes.Equal(got.Body, msg.Body) {
		t.Fatalf("JSON frame round trip mismatch: got %+v", got)
	}
}

func TestNewReplyMirrorsRequestCodec(t *testing.T) {
	body := matrixBody{Round: 3, M: testMatrix(2, 2)}

	jsonReq, err := NewJSONMessage("replica.cdpsm.estimate", "replica-1", map[string]int{"round": 3})
	if err != nil {
		t.Fatal(err)
	}
	reply, err := NewReply(jsonReq, "replica.cdpsm.estimate.ack", "replica-2", body)
	if err != nil {
		t.Fatal(err)
	}
	if len(reply.Bin) != 0 || len(reply.Body) == 0 {
		t.Fatalf("reply to a JSON request used binary (Bin=%d Body=%d)", len(reply.Bin), len(reply.Body))
	}
	var got matrixBody
	if err := reply.DecodeBody(&got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, body) {
		t.Fatalf("JSON reply decode mismatch: %+v", got)
	}

	binReq, err := NewMessage("replica.cdpsm.estimate", "replica-1", body)
	if err != nil {
		t.Fatal(err)
	}
	reply, err = NewReply(binReq, "replica.cdpsm.estimate.ack", "replica-2", body)
	if err != nil {
		t.Fatal(err)
	}
	if len(reply.Bin) == 0 {
		t.Fatal("reply to a binary request fell back to JSON")
	}
}

func TestDecodeBodyRejectsBinaryIntoPlainStruct(t *testing.T) {
	msg, err := NewMessage("x", "n", matrixBody{Round: 1, M: testMatrix(1, 1)})
	if err != nil {
		t.Fatal(err)
	}
	var plain struct{ Round int }
	if err := msg.DecodeBody(&plain); err == nil {
		t.Fatal("decoding a binary body into a JSON-only struct succeeded")
	}
}

func TestBinaryPrimitivesRejectTruncation(t *testing.T) {
	full := AppendMatrix(AppendFloats(AppendFloat64(AppendUint32(nil, 9), 1.5), []float64{1, 2, 3}), testMatrix(3, 4))
	for cut := 0; cut < len(full); cut++ {
		b := full[:cut]
		v, b2, err := ReadUint32(b)
		if err != nil {
			continue
		}
		if v != 9 {
			t.Fatalf("cut=%d: u32 = %d", cut, v)
		}
		f, b2, err := ReadFloat64(b2)
		if err != nil {
			continue
		}
		if f != 1.5 {
			t.Fatalf("cut=%d: f64 = %g", cut, f)
		}
		if _, b2, err = ReadFloats(b2); err != nil {
			continue
		}
		if _, _, err = ReadMatrix(b2); err == nil && cut < len(full) {
			t.Fatalf("cut=%d: truncated matrix decoded without error", cut)
		}
	}
	// A corrupt length header must not cause a giant allocation.
	huge := AppendUint32(AppendUint32(nil, math.MaxUint32), math.MaxUint32)
	if _, _, err := ReadMatrix(huge); err == nil {
		t.Fatal("matrix with 2³²×2³² claimed dims decoded")
	}
	if _, _, err := ReadFloats(AppendUint32(nil, math.MaxUint32)); err == nil {
		t.Fatal("vector with 2³² claimed length decoded")
	}
}

// FuzzMatrixCodec fuzzes both layers: arbitrary bytes through the body
// primitives and the binary frame reader (must never panic), and
// structured inputs round-tripped exactly.
func FuzzMatrixCodec(f *testing.F) {
	seed := matrixBody{Round: 11, M: testMatrix(3, 5)}
	sb, _ := seed.MarshalBinary()
	f.Add(sb)
	f.Add([]byte{})
	f.Add(AppendUint32(nil, math.MaxUint32))
	f.Fuzz(func(t *testing.T, data []byte) {
		var b matrixBody
		if err := b.UnmarshalBinary(data); err == nil {
			// Whatever decoded must survive a re-encode/re-decode cycle
			// bit-for-bit. Compare encoded bytes, not values: the payload
			// may carry NaN, which reflect.DeepEqual never equates.
			re, err := b.MarshalBinary()
			if err != nil {
				t.Fatalf("re-encode failed: %v", err)
			}
			var b2 matrixBody
			if err := b2.UnmarshalBinary(re); err != nil {
				t.Fatalf("re-decode failed: %v", err)
			}
			re2, err := b2.MarshalBinary()
			if err != nil {
				t.Fatalf("second re-encode failed: %v", err)
			}
			if !bytes.Equal(re, re2) {
				t.Fatalf("re-encode not stable: %x vs %x", re, re2)
			}
		}
		// Frame reader on arbitrary payloads: error or success, no panic.
		_, _ = decodeBinaryFrame(data)
	})
}

func TestBinaryBytesBeatJSON(t *testing.T) {
	// The codec's reason to exist: a paper-scale estimate matrix must be
	// substantially smaller on the wire than its JSON encoding.
	body := matrixBody{Round: 1, M: testMatrix(100, 10)}
	jb, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := body.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if len(bb) >= len(jb) {
		t.Fatalf("binary body (%d B) not smaller than JSON (%d B)", len(bb), len(jb))
	}
	t.Logf("100×10 matrix body: JSON %d B, binary %d B (%.2fx)", len(jb), len(bb), float64(len(jb))/float64(len(bb)))
}
