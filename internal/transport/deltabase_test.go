package transport

import (
	"math"
	"testing"
)

// TestDeltaTxStageAck exercises the sender half's base negotiation: no
// base before the first ack, the acked vector as base afterwards, and
// un-acked stages never promoted.
func TestDeltaTxStageAck(t *testing.T) {
	var tx DeltaTx
	v0 := []float64{1, 2, 3}
	base, iter := tx.Stage("peer", 0, v0)
	if base != nil || iter != -1 {
		t.Fatalf("first Stage returned base (%v, %d), want (nil, -1)", base, iter)
	}
	tx.Ack("peer")
	v1 := []float64{1, 2, 4}
	base, iter = tx.Stage("peer", 1, v1)
	if iter != 0 || len(base) != 3 || base[2] != 3 {
		t.Fatalf("Stage after Ack returned (%v, %d), want (v0, 0)", base, iter)
	}
	// Mutating the caller's slice must not corrupt the staged copy.
	v1[0] = 99
	tx.Ack("peer")
	base, iter = tx.Stage("peer", 2, []float64{0, 0, 0})
	if iter != 1 || base[0] != 1 {
		t.Fatalf("staged copy aliased caller slice: (%v, %d)", base, iter)
	}
	// A stage that is never acked must not become the base.
	base, iter = tx.Stage("peer", 3, []float64{7, 7, 7})
	if iter != 1 {
		t.Fatalf("un-acked stage promoted: base iter %d, want 1", iter)
	}
	// Ack on an unknown peer is a no-op.
	tx.Ack("stranger")
}

// TestDeltaRxWindow exercises the receiver's two-deep window: resolution
// by iteration id, forward rotation, in-place duplicate replacement, and
// stale duplicates ignored.
func TestDeltaRxWindow(t *testing.T) {
	var rx DeltaRx
	if got := rx.Resolve(0); got != nil {
		t.Fatalf("empty window resolved %v", got)
	}
	rx.Absorb(0, []float64{0})
	rx.Absorb(1, []float64{1})
	if got := rx.Resolve(0); got == nil || got[0] != 0 {
		t.Fatalf("Resolve(0) = %v, want [0]", got)
	}
	if got := rx.Resolve(1); got == nil || got[0] != 1 {
		t.Fatalf("Resolve(1) = %v, want [1]", got)
	}
	rx.Absorb(2, []float64{2})
	if got := rx.Resolve(0); got != nil {
		t.Fatalf("iteration 0 still resolvable after rotation: %v", got)
	}
	// Duplicate of the current iteration replaces in place.
	rx.Absorb(2, []float64{22})
	if got := rx.Resolve(2); got[0] != 22 {
		t.Fatalf("duplicate absorb did not replace: %v", got)
	}
	// An older duplicate must not roll the window back.
	rx.Absorb(0, []float64{0})
	if got := rx.Resolve(2); got == nil || got[0] != 22 {
		t.Fatalf("stale absorb rolled the window back: %v", got)
	}
}

// TestMatrixBaseCache covers the pull-side cache.
func TestMatrixBaseCache(t *testing.T) {
	var c MatrixBaseCache
	if m, iter := c.Get("a"); m != nil || iter != -1 {
		t.Fatalf("empty cache returned (%v, %d)", m, iter)
	}
	m0 := [][]float64{{1, 2}}
	c.Put("a", 3, m0)
	if m, iter := c.Get("a"); iter != 3 || m[0][1] != 2 {
		t.Fatalf("Get after Put = (%v, %d)", m, iter)
	}
	c.Put("a", 4, [][]float64{{5, 6}})
	if m, iter := c.Get("a"); iter != 4 || m[0][0] != 5 {
		t.Fatalf("Put did not replace: (%v, %d)", m, iter)
	}
}

// TestFloatsKindedRoundTrip round-trips vectors through the kinded frame
// with and without a base, including the empty vector and the delta path.
func TestFloatsKindedRoundTrip(t *testing.T) {
	cases := []struct {
		name    string
		v, base []float64
	}{
		{"empty", []float64{}, nil},
		{"dense no base", []float64{1, -2, 3.5, 0}, nil},
		{"mostly zero", append(make([]float64, 100), 7), nil},
		{"delta-friendly", nil, nil},
	}
	// delta-friendly: 100 entries, one changed vs base.
	base := make([]float64, 100)
	v := make([]float64, 100)
	for i := range base {
		base[i] = float64(i)
		v[i] = float64(i)
	}
	v[17] = math.Pi
	cases[3].v, cases[3].base = v, base

	for _, tc := range cases {
		b := AppendFloatsKinded(nil, tc.v, tc.base)
		got, rest, err := ReadFloatsKinded(b, tc.base)
		if err != nil {
			t.Fatalf("%s: decode: %v", tc.name, err)
		}
		if len(rest) != 0 {
			t.Fatalf("%s: %d trailing bytes", tc.name, len(rest))
		}
		if len(got) != len(tc.v) {
			t.Fatalf("%s: got %d entries, want %d", tc.name, len(got), len(tc.v))
		}
		for i := range got {
			if math.Float64bits(got[i]) != math.Float64bits(tc.v[i]) {
				t.Fatalf("%s: entry %d = %g, want %g", tc.name, i, got[i], tc.v[i])
			}
		}
	}

	// Length-mismatched bases must be ignored at append time (no delta
	// emitted), so decoding with no base succeeds.
	b := AppendFloatsKinded(nil, []float64{1, 2, 3}, []float64{1, 2})
	if _, _, err := ReadFloatsKinded(b, nil); err != nil {
		t.Fatalf("mismatched base leaked into the frame: %v", err)
	}
}

// TestDeltaNegotiationEndToEnd wires DeltaTx and DeltaRx through the
// codec the way an engine verb does and checks a delta frame actually
// flows once the first exchange acked.
func TestDeltaNegotiationEndToEnd(t *testing.T) {
	var tx DeltaTx
	var rx DeltaRx
	ResetMatrixFrameStats()

	n := 64
	v := make([]float64, n)
	for i := range v {
		v[i] = float64(i)
	}
	for iter := 0; iter < 3; iter++ {
		v[5] = float64(100 + iter) // one entry moves per iteration
		base, baseIter := tx.Stage("peer", iter, v)
		frame := AppendFloatsKinded(nil, v, base)
		// Receiver side: resolve the declared base, decode, absorb.
		var rbase []float64
		if baseIter >= 0 {
			rbase = rx.Resolve(baseIter)
		}
		got, _, err := ReadFloatsKinded(frame, rbase)
		if err != nil {
			t.Fatalf("iter %d: decode: %v", iter, err)
		}
		for i := range got {
			if got[i] != v[i] {
				t.Fatalf("iter %d: entry %d = %g, want %g", iter, i, got[i], v[i])
			}
		}
		rx.Absorb(iter, got)
		tx.Ack("peer")
	}
	full, sparse, delta := MatrixFrameStats()
	if delta == 0 {
		t.Fatalf("no delta frames after negotiation: full=%d sparse=%d delta=%d", full, sparse, delta)
	}
}
