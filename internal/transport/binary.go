package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sync/atomic"
)

// Compact binary body codec, version 1. The engine's matrix-bearing wire
// verbs dominate a round's bytes — every CDPSM iteration ships full
// |C|×|N| float64 matrices, paid at JSON-text prices (~19 bytes per
// element) under the original codec. Bodies that implement
// encoding.BinaryMarshaler/BinaryUnmarshaler are instead carried as raw
// little-endian scalars with u32 dims headers (8 bytes per element, no
// reflection), assembled from the primitives below.
//
// Wire format: the 4-byte frame length prefix keeps its meaning, but a
// set top bit flags a binary envelope (JSON payloads can never set it —
// MaxFrameBytes < 2³¹):
//
//	[u32 BE  len | binFlag]
//	[u8      version (=1)]
//	[u16 BE  len(Type)] [Type]
//	[u16 BE  len(From)] [From]
//	[body bytes]
//
// Codec negotiation is per message: a node sends binary whenever the body
// type supports it, and replies always mirror the request's codec
// (NewReply), so a JSON-only peer keeps interoperating — its JSON
// requests get JSON replies, and DecodeBody accepts either direction.
// Body convention: every engine *request* body starts with its u32 LE
// round id, so the replica dispatcher can route a binary body without
// decoding it.
const (
	// binFlag marks a binary envelope in the frame length prefix.
	binFlag = 1 << 31
	// BinaryVersion is the envelope version emitted and accepted.
	BinaryVersion = 1
)

// writeBinaryFrame emits the binary envelope for a message carrying Bin.
func writeBinaryFrame(w io.Writer, m Message) error {
	if len(m.Type) > math.MaxUint16 || len(m.From) > math.MaxUint16 {
		return fmt.Errorf("transport: binary frame type/from too long (%d/%d)", len(m.Type), len(m.From))
	}
	n := 1 + 2 + len(m.Type) + 2 + len(m.From) + len(m.Bin)
	if n > MaxFrameBytes {
		return fmt.Errorf("transport: frame of %d bytes exceeds limit %d", n, MaxFrameBytes)
	}
	buf := make([]byte, 4, 4+n)
	binary.BigEndian.PutUint32(buf, uint32(n)|binFlag)
	buf = append(buf, BinaryVersion)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(m.Type)))
	buf = append(buf, m.Type...)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(m.From)))
	buf = append(buf, m.From...)
	buf = append(buf, m.Bin...)
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("transport: write binary frame: %w", err)
	}
	return nil
}

// decodeBinaryFrame parses the payload of a binary envelope (after the
// length prefix).
func decodeBinaryFrame(payload []byte) (Message, error) {
	if len(payload) < 1 {
		return Message{}, fmt.Errorf("transport: empty binary frame")
	}
	if v := payload[0]; v != BinaryVersion {
		return Message{}, fmt.Errorf("transport: binary frame version %d, want %d", v, BinaryVersion)
	}
	rest := payload[1:]
	readStr := func() (string, error) {
		if len(rest) < 2 {
			return "", fmt.Errorf("transport: truncated binary frame header")
		}
		n := int(binary.BigEndian.Uint16(rest))
		rest = rest[2:]
		if len(rest) < n {
			return "", fmt.Errorf("transport: binary frame header claims %d bytes, %d left", n, len(rest))
		}
		s := string(rest[:n])
		rest = rest[n:]
		return s, nil
	}
	var m Message
	var err error
	if m.Type, err = readStr(); err != nil {
		return Message{}, err
	}
	if m.From, err = readStr(); err != nil {
		return Message{}, err
	}
	if len(rest) > 0 {
		m.Bin = append([]byte(nil), rest...)
	}
	return m, nil
}

// --- Body primitives ----------------------------------------------------
//
// The Append*/Read* pairs below are the vocabulary algorithm packages
// build their MarshalBinary/UnmarshalBinary from. All scalars are
// little-endian; vectors and matrices carry u32 dims headers.

// AppendUint32 appends v little-endian.
func AppendUint32(b []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(b, v)
}

// AppendFloat64 appends v's IEEE-754 bits little-endian.
func AppendFloat64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

// AppendFloats appends a u32 length header followed by the values.
func AppendFloats(b []byte, v []float64) []byte {
	b = AppendUint32(b, uint32(len(v)))
	for _, x := range v {
		b = AppendFloat64(b, x)
	}
	return b
}

// AppendMatrix appends u32 rows, u32 cols, then the values row-major.
// Rows must share one length (the module's dense client×replica layout).
func AppendMatrix(b []byte, m [][]float64) []byte {
	cols := 0
	if len(m) > 0 {
		cols = len(m[0])
	}
	b = AppendUint32(b, uint32(len(m)))
	b = AppendUint32(b, uint32(cols))
	for _, row := range m {
		for _, x := range row {
			b = AppendFloat64(b, x)
		}
	}
	return b
}

// ReadUint32 consumes a little-endian u32.
func ReadUint32(b []byte) (uint32, []byte, error) {
	if len(b) < 4 {
		return 0, nil, fmt.Errorf("transport: binary body truncated (want u32, %d bytes left)", len(b))
	}
	return binary.LittleEndian.Uint32(b), b[4:], nil
}

// ReadFloat64 consumes a little-endian float64.
func ReadFloat64(b []byte) (float64, []byte, error) {
	if len(b) < 8 {
		return 0, nil, fmt.Errorf("transport: binary body truncated (want f64, %d bytes left)", len(b))
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b)), b[8:], nil
}

// ReadFloats consumes a length-headed vector written by AppendFloats.
func ReadFloats(b []byte) ([]float64, []byte, error) {
	n, b, err := ReadUint32(b)
	if err != nil {
		return nil, nil, err
	}
	if uint64(n)*8 > uint64(len(b)) {
		return nil, nil, fmt.Errorf("transport: binary vector claims %d values, %d bytes left", n, len(b))
	}
	v := make([]float64, n)
	for i := range v {
		v[i], b, _ = ReadFloat64(b)
	}
	return v, b, nil
}

// ReadMatrix consumes a dims-headed matrix written by AppendMatrix.
func ReadMatrix(b []byte) ([][]float64, []byte, error) {
	rows, b, err := ReadUint32(b)
	if err != nil {
		return nil, nil, err
	}
	cols, b, err := ReadUint32(b)
	if err != nil {
		return nil, nil, err
	}
	if uint64(rows)*uint64(cols)*8 > uint64(len(b)) {
		return nil, nil, fmt.Errorf("transport: binary matrix claims %d×%d values, %d bytes left", rows, cols, len(b))
	}
	// A zero-column claim slips past the payload bound above (the product
	// is 0) but would still allocate one row header per claimed row.
	if rows != 0 && cols == 0 {
		return nil, nil, fmt.Errorf("transport: binary matrix claims %d rows of zero columns", rows)
	}
	backing := make([]float64, int(rows)*int(cols))
	m := make([][]float64, rows)
	for i := range m {
		m[i], backing = backing[:cols:cols], backing[cols:]
		for j := range m[i] {
			m[i][j], b, _ = ReadFloat64(b)
		}
	}
	return m, b, nil
}

// --- Kinded matrix frames (v2) ------------------------------------------
//
// A dense AppendMatrix frame pays 8 bytes per element even when most
// entries are structural zeros (latency-masked instances) or unchanged
// since the estimate the receiver already holds (consecutive CDPSM
// iterations). A kinded frame prefixes one byte selecting the cheapest of
// three layouts and keeps the u32 dims header:
//
//	[u8 kind] [u32 rows] [u32 cols] ...
//	kind 0 (full):   values row-major, as AppendMatrix
//	kind 1 (sparse): u32 count, then (u32 flat index, f64 value) per
//	                 entry whose bits differ from +0
//	kind 2 (delta):  u32 count, then (u32 flat index, f64 value) per
//	                 entry whose bits differ from the shared base matrix
//
// Change detection is bitwise (math.Float64bits), so a decoded matrix is
// bit-identical to the encoded one regardless of kind. Delta frames need
// the receiver to hold the same base the sender diffed against; the CDPSM
// estimate protocol negotiates that via iteration ids and falls back to
// full/sparse when the bases drift.
const (
	// MatrixFull is the dense row-major layout.
	MatrixFull = 0
	// MatrixSparse enumerates the nonzero entries.
	MatrixSparse = 1
	// MatrixDelta enumerates the entries that changed versus a base.
	MatrixDelta = 2
)

// matrixFrameStats counts emitted kinded frames per kind, for the
// benchmark harness's delta-hit-rate report.
var matrixFrameStats [3]atomic.Uint64

// MatrixFrameStats reports how many kinded matrix frames have been
// emitted per kind (full, sparse, delta) since the last reset.
func MatrixFrameStats() (full, sparse, delta uint64) {
	return matrixFrameStats[MatrixFull].Load(),
		matrixFrameStats[MatrixSparse].Load(),
		matrixFrameStats[MatrixDelta].Load()
}

// ResetMatrixFrameStats zeroes the kinded-frame counters.
func ResetMatrixFrameStats() {
	for i := range matrixFrameStats {
		matrixFrameStats[i].Store(0)
	}
}

// AppendMatrixKinded appends m in whichever kinded frame is smallest.
// base, when non-nil and of identical dims, enables the delta layout;
// ties prefer the simpler kind (full, then sparse, then delta).
func AppendMatrixKinded(b []byte, m, base [][]float64) []byte {
	rows := len(m)
	cols := 0
	if rows > 0 {
		cols = len(m[0])
	}
	total := rows * cols
	nonzero := 0
	for _, row := range m {
		for _, x := range row {
			if math.Float64bits(x) != 0 {
				nonzero++
			}
		}
	}
	changed := -1
	if base != nil && len(base) == rows && (rows == 0 || len(base[0]) == cols) {
		changed = 0
		for i, row := range m {
			for j, x := range row {
				if math.Float64bits(x) != math.Float64bits(base[i][j]) {
					changed++
				}
			}
		}
	}
	// Body costs beyond the shared kind+dims header: full 8·total,
	// sparse/delta 4 + 12·count.
	kind := MatrixFull
	best := 8 * total
	if c := 4 + 12*nonzero; c < best {
		kind, best = MatrixSparse, c
	}
	if changed >= 0 {
		if c := 4 + 12*changed; c < best {
			kind = MatrixDelta
		}
	}
	matrixFrameStats[kind].Add(1)
	b = append(b, byte(kind))
	b = AppendUint32(b, uint32(rows))
	b = AppendUint32(b, uint32(cols))
	switch kind {
	case MatrixFull:
		for _, row := range m {
			for _, x := range row {
				b = AppendFloat64(b, x)
			}
		}
	case MatrixSparse:
		b = AppendUint32(b, uint32(nonzero))
		for i, row := range m {
			for j, x := range row {
				if math.Float64bits(x) != 0 {
					b = AppendUint32(b, uint32(i*cols+j))
					b = AppendFloat64(b, x)
				}
			}
		}
	case MatrixDelta:
		b = AppendUint32(b, uint32(changed))
		for i, row := range m {
			for j, x := range row {
				if math.Float64bits(x) != math.Float64bits(base[i][j]) {
					b = AppendUint32(b, uint32(i*cols+j))
					b = AppendFloat64(b, x)
				}
			}
		}
	}
	return b
}

// ReadMatrixKinded consumes a kinded matrix frame. base supplies the
// reference a delta frame was diffed against (it is read, never mutated);
// decoding a delta without a matching base is an error. The returned
// matrix is always freshly allocated.
func ReadMatrixKinded(b []byte, base [][]float64) ([][]float64, []byte, error) {
	if len(b) < 1 {
		return nil, nil, fmt.Errorf("transport: kinded matrix frame truncated")
	}
	kind := b[0]
	b = b[1:]
	rows32, b, err := ReadUint32(b)
	if err != nil {
		return nil, nil, err
	}
	cols32, b, err := ReadUint32(b)
	if err != nil {
		return nil, nil, err
	}
	rows, cols := int(rows32), int(cols32)
	if rows != 0 && cols == 0 {
		return nil, nil, fmt.Errorf("transport: kinded matrix claims %d rows of zero columns", rows)
	}
	// Cap the decoded size at what a dense frame could have carried, so a
	// corrupt sparse/delta header cannot force a huge allocation.
	if uint64(rows)*uint64(cols) > MaxFrameBytes/8 {
		return nil, nil, fmt.Errorf("transport: kinded matrix claims %d×%d elements", rows, cols)
	}
	newMatrix := func() [][]float64 {
		backing := make([]float64, rows*cols)
		m := make([][]float64, rows)
		for i := range m {
			m[i], backing = backing[:cols:cols], backing[cols:]
		}
		return m
	}
	readEntries := func(m [][]float64) ([]byte, error) {
		count, rest, err := ReadUint32(b)
		if err != nil {
			return nil, err
		}
		if uint64(count)*12 > uint64(len(rest)) {
			return nil, fmt.Errorf("transport: kinded matrix claims %d entries, %d bytes left", count, len(rest))
		}
		if uint64(count) > uint64(rows*cols) {
			return nil, fmt.Errorf("transport: kinded matrix claims %d entries for %d×%d", count, rows, cols)
		}
		for e := uint32(0); e < count; e++ {
			var idx uint32
			idx, rest, _ = ReadUint32(rest)
			var v float64
			v, rest, _ = ReadFloat64(rest)
			if int(idx) >= rows*cols {
				return nil, fmt.Errorf("transport: kinded matrix entry index %d out of %d×%d", idx, rows, cols)
			}
			m[int(idx)/cols][int(idx)%cols] = v
		}
		return rest, nil
	}
	switch kind {
	case MatrixFull:
		if uint64(rows)*uint64(cols)*8 > uint64(len(b)) {
			return nil, nil, fmt.Errorf("transport: kinded matrix claims %d×%d values, %d bytes left", rows, cols, len(b))
		}
		m := newMatrix()
		for i := range m {
			for j := range m[i] {
				m[i][j], b, _ = ReadFloat64(b)
			}
		}
		return m, b, nil
	case MatrixSparse:
		m := newMatrix()
		rest, err := readEntries(m)
		if err != nil {
			return nil, nil, err
		}
		return m, rest, nil
	case MatrixDelta:
		if base == nil || len(base) != rows || (rows > 0 && len(base[0]) != cols) {
			return nil, nil, fmt.Errorf("transport: %d×%d delta matrix frame without a matching base", rows, cols)
		}
		m := newMatrix()
		for i := range m {
			copy(m[i], base[i])
		}
		rest, err := readEntries(m)
		if err != nil {
			return nil, nil, err
		}
		return m, rest, nil
	}
	return nil, nil, fmt.Errorf("transport: unknown matrix frame kind %d", kind)
}

// BinaryRound reads the u32 LE round id every binary engine request body
// leads with, letting dispatchers route without a full decode.
func BinaryRound(m Message) (int, error) {
	if len(m.Bin) < 4 {
		return 0, fmt.Errorf("transport: %s binary body too short for a round header", m.Type)
	}
	return int(binary.LittleEndian.Uint32(m.Bin)), nil
}
