package transport

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// newFaultyPair builds a faulty fabric over inproc with two nodes: "a"
// (the sender, echo handler) and "b" (echo handler counting deliveries).
func newFaultyPair(t *testing.T, seed uint64) (*FaultyNetwork, Node, *atomic.Int64) {
	t.Helper()
	net := NewFaultyNetwork(NewInProcNetwork(), seed)
	var delivered atomic.Int64
	echo := func(name string) Handler {
		return func(ctx context.Context, req Message) (Message, error) {
			if name == "b" {
				delivered.Add(1)
			}
			return NewMessage(req.Type+".ack", name, nil)
		}
	}
	a, err := net.Listen("a", echo("a"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	b, err := net.Listen("b", echo("b"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })
	return net, a, &delivered
}

func send(ctx context.Context, n Node, to string) error {
	req, err := NewMessage("ping", n.Name(), nil)
	if err != nil {
		return err
	}
	_, err = n.Send(ctx, to, req)
	return err
}

func TestFaultyTransparentByDefault(t *testing.T) {
	_, a, delivered := newFaultyPair(t, 1)
	for i := 0; i < 10; i++ {
		if err := send(context.Background(), a, "b"); err != nil {
			t.Fatal(err)
		}
	}
	if got := delivered.Load(); got != 10 {
		t.Fatalf("delivered = %d, want 10", got)
	}
}

func TestFaultyDropBlackholesUntilDeadline(t *testing.T) {
	net, a, delivered := newFaultyPair(t, 7)
	net.SetLink("a", "b", Faults{Drop: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := send(ctx, a, "b")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("dropped send error = %v, want deadline exceeded", err)
	}
	if time.Since(start) < 15*time.Millisecond {
		t.Fatal("dropped send returned before the deadline — should black-hole")
	}
	if delivered.Load() != 0 {
		t.Fatal("dropped request reached the handler")
	}
	if st := net.Stats(); st.Dropped != 1 {
		t.Fatalf("stats = %+v, want Dropped 1", st)
	}
}

func TestFaultyDropRateIsStatistical(t *testing.T) {
	net, a, delivered := newFaultyPair(t, 42)
	net.SetLink("a", "b", Faults{Drop: 0.5})
	const n = 400
	for i := 0; i < n; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
		_ = send(ctx, a, "b")
		cancel()
	}
	got := delivered.Load()
	if got < n/4 || got > 3*n/4 {
		t.Fatalf("delivered %d of %d at 50%% drop — injector is biased", got, n)
	}
	st := net.Stats()
	if st.Dropped+got != n {
		t.Fatalf("dropped %d + delivered %d != sent %d", st.Dropped, got, n)
	}
}

func TestFaultySeededDeterminism(t *testing.T) {
	// Same seed, same single-threaded schedule → identical fault pattern.
	outcome := func(seed uint64) []bool {
		net, a, _ := newFaultyPair(t, seed)
		net.SetDefault(Faults{Drop: 0.3})
		var got []bool
		for i := 0; i < 50; i++ {
			ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
			got = append(got, send(ctx, a, "b") == nil)
			cancel()
		}
		return got
	}
	x, y := outcome(99), outcome(99)
	for i := range x {
		if x[i] != y[i] {
			t.Fatalf("send %d differed across identically seeded runs", i)
		}
	}
}

func TestFaultyDelayAndJitter(t *testing.T) {
	net, a, _ := newFaultyPair(t, 3)
	net.SetLink("a", "b", Faults{Delay: 10 * time.Millisecond, Jitter: 5 * time.Millisecond})
	start := time.Now()
	if err := send(context.Background(), a, "b"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 10*time.Millisecond {
		t.Fatalf("delayed send took %v, want ≥ 10ms", d)
	}
	if st := net.Stats(); st.Delayed != 1 {
		t.Fatalf("stats = %+v, want Delayed 1", st)
	}
	// A context shorter than the delay aborts without delivery.
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	if err := send(ctx, a, "b"); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("short-deadline delayed send error = %v", err)
	}
}

func TestFaultyDuplication(t *testing.T) {
	net, a, delivered := newFaultyPair(t, 5)
	net.SetLink("a", "b", Faults{Dup: 1})
	if err := send(context.Background(), a, "b"); err != nil {
		t.Fatal(err)
	}
	if got := delivered.Load(); got != 2 {
		t.Fatalf("handler ran %d times for a duplicated send, want 2", got)
	}
	if st := net.Stats(); st.Duplicated != 1 {
		t.Fatalf("stats = %+v, want Duplicated 1", st)
	}
}

func TestFaultyOneWayCut(t *testing.T) {
	net, a, _ := newFaultyPair(t, 11)
	net.SetLink("a", "b", Faults{Cut: true})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if err := send(ctx, a, "b"); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("cut link send error = %v", err)
	}
	// The reverse direction still works: find b's node via a fresh send
	// from b — easiest by registering a third node and checking b→a...
	// Here the cut is one-way by construction; assert a→b blocked only.
	if st := net.Stats(); st.CutOff != 1 {
		t.Fatalf("stats = %+v, want CutOff 1", st)
	}
}

func TestFaultyPartitionAndHeal(t *testing.T) {
	net := NewFaultyNetwork(NewInProcNetwork(), 13)
	nodes := map[string]Node{}
	for _, name := range []string{"a", "b", "c"} {
		n, err := net.Listen(name, func(ctx context.Context, req Message) (Message, error) {
			return NewMessage("ack", name, nil)
		})
		if err != nil {
			t.Fatal(err)
		}
		defer n.Close()
		nodes[name] = n
	}
	net.Partition([]string{"c"}, []string{"a", "b"})
	short := func() (context.Context, context.CancelFunc) {
		return context.WithTimeout(context.Background(), 5*time.Millisecond)
	}
	ctx, cancel := short()
	if err := send(ctx, nodes["a"], "c"); err == nil {
		t.Fatal("a reached partitioned c")
	}
	cancel()
	ctx, cancel = short()
	if err := send(ctx, nodes["c"], "b"); err == nil {
		t.Fatal("partitioned c reached b")
	}
	cancel()
	// Links inside the majority side still work.
	if err := send(context.Background(), nodes["a"], "b"); err != nil {
		t.Fatalf("a→b inside majority failed: %v", err)
	}
	net.Heal()
	if err := send(context.Background(), nodes["a"], "c"); err != nil {
		t.Fatalf("a→c after heal failed: %v", err)
	}
	if err := send(context.Background(), nodes["c"], "b"); err != nil {
		t.Fatalf("c→b after heal failed: %v", err)
	}
}

func TestFaultyCrashAndRecover(t *testing.T) {
	net, a, delivered := newFaultyPair(t, 17)
	net.Crash("b")
	// Crash fails fast (refusal), not by timeout.
	start := time.Now()
	err := send(context.Background(), a, "b")
	if !errors.Is(err, ErrUnknownPeer) {
		t.Fatalf("send to crashed node error = %v, want ErrUnknownPeer", err)
	}
	if time.Since(start) > 100*time.Millisecond {
		t.Fatal("crashed-node refusal was not fast")
	}
	if delivered.Load() != 0 {
		t.Fatal("crashed node handled a request")
	}
	net.Recover("b")
	if err := send(context.Background(), a, "b"); err != nil {
		t.Fatalf("send after recover failed: %v", err)
	}
	if delivered.Load() != 1 {
		t.Fatal("recovered node did not handle the request")
	}
}

func TestFaultyCrashedSenderFailsClosed(t *testing.T) {
	net, a, _ := newFaultyPair(t, 19)
	net.Crash("a")
	if err := send(context.Background(), a, "b"); !errors.Is(err, ErrClosed) {
		t.Fatalf("send from crashed node error = %v, want ErrClosed", err)
	}
}

func TestFaultyHealPreservesDropProfile(t *testing.T) {
	net, a, _ := newFaultyPair(t, 23)
	net.SetLink("a", "b", Faults{Drop: 1})
	net.Partition([]string{"a"}, []string{"b"})
	net.Heal()
	// The partition is gone but the drop profile remains.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if err := send(ctx, a, "b"); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("drop profile lost after Heal: %v", err)
	}
	st := net.Stats()
	if st.Dropped != 1 || st.CutOff != 0 {
		t.Fatalf("stats = %+v, want Dropped 1 CutOff 0", st)
	}
}

func TestFaultyWrapsTCP(t *testing.T) {
	// The wrapper is fabric-agnostic: a drop on a TCP link black-holes too.
	net := NewFaultyNetwork(NewTCPNetwork(), 29)
	srv, err := net.Listen("127.0.0.1:0", func(ctx context.Context, req Message) (Message, error) {
		return NewMessage("ack", "srv", nil)
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := net.Listen("127.0.0.1:0", func(ctx context.Context, req Message) (Message, error) {
		return NewMessage("ack", "cli", nil)
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if err := send(context.Background(), cli, srv.Name()); err != nil {
		t.Fatalf("clean TCP send failed: %v", err)
	}
	net.SetDefault(Faults{Drop: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := send(ctx, cli, srv.Name()); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("TCP drop error = %v", err)
	}
}
