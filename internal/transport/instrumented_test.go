package transport

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"edr/internal/telemetry"
)

func TestInstrumentedCountsPerPeerAndVerb(t *testing.T) {
	reg := telemetry.NewRegistry()
	bus := telemetry.NewBus()
	var dropped []telemetry.MessageDropped
	defer bus.Subscribe(func(e telemetry.Event) {
		if d, ok := e.(telemetry.MessageDropped); ok {
			dropped = append(dropped, d)
		}
	})()
	net := NewInstrumented(NewInProcNetwork(), reg, bus)

	echo, err := net.Listen("echo", func(ctx context.Context, req Message) (Message, error) {
		return NewMessage(req.Type+".ack", "echo", map[string]string{"pong": "yes"})
	})
	if err != nil {
		t.Fatal(err)
	}
	defer echo.Close()
	caller, err := net.Listen("caller", func(ctx context.Context, req Message) (Message, error) {
		return Message{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer caller.Close()

	ctx := context.Background()
	req, err := NewMessage("test.ping", "caller", map[string]string{"ping": "1"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := caller.Send(ctx, "echo", req); err != nil {
			t.Fatal(err)
		}
	}
	// A send to a missing peer counts as an error and publishes a drop.
	if _, err := caller.Send(ctx, "ghost", req); err == nil {
		t.Fatal("send to ghost succeeded")
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		`edr_transport_messages_total{peer="echo",verb="test.ping"} 3`,
		`edr_transport_messages_total{peer="ghost",verb="test.ping"} 1`,
		`edr_transport_errors_total{peer="ghost",verb="test.ping"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
	// Body bytes flowed both ways on the echo link.
	if !strings.Contains(text, `edr_transport_bytes_total{direction="tx",peer="echo",verb="test.ping"} `) ||
		!strings.Contains(text, `edr_transport_bytes_total{direction="rx",peer="echo",verb="test.ping"} `) {
		t.Fatalf("missing byte counters:\n%s", text)
	}
	if len(dropped) != 1 || dropped[0].Peer != "ghost" || dropped[0].Verb != "test.ping" {
		t.Fatalf("dropped events = %+v", dropped)
	}
}

func TestInstrumentedObservesInjectedFaults(t *testing.T) {
	// Instrumented sits above the faulty fabric: an injected black-hole
	// surfaces as a context timeout, which the wrapper counts as an error.
	reg := telemetry.NewRegistry()
	faulty := NewFaultyNetwork(NewInProcNetwork(), 1)
	faulty.SetLink("a", "b", Faults{Cut: true})
	net := NewInstrumented(faulty, reg, nil)

	if _, err := net.Listen("b", func(ctx context.Context, req Message) (Message, error) {
		return Message{Type: "ok"}, nil
	}); err != nil {
		t.Fatal(err)
	}
	a, err := net.Listen("a", func(ctx context.Context, req Message) (Message, error) {
		return Message{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err = a.Send(ctx, "b", Message{Type: "test.cut"})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("cut link error = %v, want deadline exceeded", err)
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `edr_transport_errors_total{peer="b",verb="test.cut"} 1`) {
		t.Fatalf("cut send not counted as error:\n%s", b.String())
	}
}
