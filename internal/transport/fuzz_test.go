package transport

import (
	"bytes"
	"testing"
)

// FuzzReadFrame hardens the wire decoder against malformed input: it must
// either return a valid message or an error — never panic or over-read.
func FuzzReadFrame(f *testing.F) {
	// Seed with valid frames and near-valid corruptions.
	var valid bytes.Buffer
	m, _ := NewMessage("replica.solution", "r1", []float64{1, 2, 3})
	_ = WriteFrame(&valid, m)
	f.Add(valid.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	f.Add([]byte{0, 0, 0, 3, '{', '}', '!'})
	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A successfully decoded frame must re-encode.
		var buf bytes.Buffer
		if err := WriteFrame(&buf, msg); err != nil {
			t.Fatalf("decoded frame failed to re-encode: %v", err)
		}
		back, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("re-encoded frame failed to decode: %v", err)
		}
		if back.Type != msg.Type || back.From != msg.From {
			t.Fatalf("round trip changed envelope: %+v vs %+v", back, msg)
		}
	})
}
