package transport

import (
	"context"
	"fmt"
	"sync"
	"time"

	"edr/internal/sim"
)

// Faults describes the fault profile of one directed link (from → to).
// The zero value is a perfect link.
type Faults struct {
	// Drop is the probability a request is silently black-holed: the send
	// blocks until the caller's context expires, like a lost packet on a
	// real network. The request never reaches the destination handler, so
	// retrying a dropped send is always safe (zero-or-once delivery).
	Drop float64
	// Dup is the probability a request is delivered twice. The second
	// response wins; handlers see the message two times.
	Dup float64
	// Delay is a fixed extra one-way latency added before delivery.
	Delay time.Duration
	// Jitter adds a uniform random extra delay in [0, Jitter).
	Jitter time.Duration
	// Cut severs the link: every request black-holes (a partition in this
	// direction). Unlike a crash, the far node is still up — sends fail by
	// timeout, not by refusal.
	Cut bool
}

// FaultStats counts injected faults, for assertions in tests and for the
// edrd chaos log line.
type FaultStats struct {
	Sent       int64 // requests that entered the faulty fabric
	Dropped    int64 // black-holed by Drop
	CutOff     int64 // black-holed by Cut (partition)
	Duplicated int64 // delivered twice by Dup
	Delayed    int64 // delayed by Delay/Jitter
	Refused    int64 // rejected because an endpoint was crashed
}

// FaultyNetwork wraps any Network with seeded, deterministic, runtime-
// scriptable fault injection: per-link message drop, latency spikes,
// duplication, one-way and two-way partitions, and crash/heal of whole
// nodes. Tests and demos use it to stage outages mid-round.
//
// All faults act on the request path, before the destination handler runs:
// a send that fails or times out is guaranteed not to have been delivered,
// so callers may retry without at-most-once bookkeeping. Randomness comes
// from a single seeded stream (internal/sim); the same seed and schedule
// reproduce the same aggregate fault pattern.
type FaultyNetwork struct {
	inner Network

	mu    sync.Mutex
	rng   *sim.Rand
	def   Faults
	links map[[2]string]Faults
	down  map[string]bool
	stats FaultStats
}

// NewFaultyNetwork wraps inner with fault injection seeded by seed. With no
// faults configured it is transparent.
func NewFaultyNetwork(inner Network, seed uint64) *FaultyNetwork {
	return &FaultyNetwork{
		inner: inner,
		rng:   sim.NewRand(seed),
		links: make(map[[2]string]Faults),
		down:  make(map[string]bool),
	}
}

// Listen registers a node on the underlying fabric. Incoming requests are
// refused while the node is crashed; outgoing sends pass through the
// configured link faults.
func (f *FaultyNetwork) Listen(name string, h Handler) (Node, error) {
	wrapped := Handler(nil)
	if h != nil {
		wrapped = func(ctx context.Context, req Message) (Message, error) {
			if f.isDown(name) {
				return Message{}, fmt.Errorf("%w: %q (crashed)", ErrUnknownPeer, name)
			}
			return h(ctx, req)
		}
	}
	node, err := f.inner.Listen(name, wrapped)
	if err != nil {
		return nil, err
	}
	return &faultyNode{net: f, inner: node}, nil
}

// SetDefault sets the fault profile applied to every link that has no
// per-link override.
func (f *FaultyNetwork) SetDefault(faults Faults) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.def = faults
}

// SetLink overrides the fault profile of the directed link from → to.
func (f *FaultyNetwork) SetLink(from, to string, faults Faults) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.links[[2]string{from, to}] = faults
}

// ClearLink removes a per-link override, restoring the default profile.
func (f *FaultyNetwork) ClearLink(from, to string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.links, [2]string{from, to})
}

// Partition cuts every link between group a and group b in both
// directions, preserving any other per-link fault settings. Heal (or
// ClearLink per link) restores connectivity.
func (f *FaultyNetwork) Partition(a, b []string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, x := range a {
		for _, y := range b {
			for _, key := range [][2]string{{x, y}, {y, x}} {
				lf, ok := f.links[key]
				if !ok {
					lf = f.def
				}
				lf.Cut = true
				f.links[key] = lf
			}
		}
	}
}

// Heal clears every Cut flag — default and per-link — ending all
// partitions while preserving drop/delay/duplication settings.
func (f *FaultyNetwork) Heal() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.def.Cut = false
	for key, lf := range f.links {
		lf.Cut = false
		f.links[key] = lf
	}
}

// Crash marks a node down without closing it: sends to it are refused
// immediately (like a connection refused), sends from it fail with
// ErrClosed, and its handler rejects incoming requests delivered by
// unwrapped senders. Recover brings it back — unlike the underlying
// fabric's hard removal, a crashed node can heal.
func (f *FaultyNetwork) Crash(name string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.down[name] = true
}

// Recover heals a crashed node.
func (f *FaultyNetwork) Recover(name string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.down, name)
}

// Stats returns a snapshot of the injected-fault counters.
func (f *FaultyNetwork) Stats() FaultStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

func (f *FaultyNetwork) isDown(name string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.down[name]
}

// verdict is one send's fate, decided up front under the lock so the
// random stream is consumed in a serialized order.
type verdict struct {
	refuseSelf bool
	refusePeer bool
	blackhole  bool
	delay      time.Duration
	dup        bool
}

func (f *FaultyNetwork) judge(from, to string) verdict {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.stats.Sent++
	if f.down[from] {
		f.stats.Refused++
		return verdict{refuseSelf: true}
	}
	if f.down[to] {
		f.stats.Refused++
		return verdict{refusePeer: true}
	}
	lf, ok := f.links[[2]string{from, to}]
	if !ok {
		lf = f.def
	}
	if lf.Cut {
		f.stats.CutOff++
		return verdict{blackhole: true}
	}
	if lf.Drop > 0 && f.rng.Float64() < lf.Drop {
		f.stats.Dropped++
		return verdict{blackhole: true}
	}
	v := verdict{delay: lf.Delay}
	if lf.Jitter > 0 {
		v.delay += time.Duration(f.rng.Float64() * float64(lf.Jitter))
	}
	if v.delay > 0 {
		f.stats.Delayed++
	}
	if lf.Dup > 0 && f.rng.Float64() < lf.Dup {
		f.stats.Duplicated++
		v.dup = true
	}
	return v
}

type faultyNode struct {
	net   *FaultyNetwork
	inner Node
}

func (n *faultyNode) Name() string { return n.inner.Name() }

func (n *faultyNode) Close() error { return n.inner.Close() }

func (n *faultyNode) Send(ctx context.Context, to string, req Message) (Message, error) {
	v := n.net.judge(n.inner.Name(), to)
	switch {
	case v.refuseSelf:
		return Message{}, ErrClosed
	case v.refusePeer:
		return Message{}, fmt.Errorf("%w: %q (crashed)", ErrUnknownPeer, to)
	case v.blackhole:
		<-ctx.Done()
		return Message{}, ctx.Err()
	}
	if v.delay > 0 {
		timer := time.NewTimer(v.delay)
		select {
		case <-timer.C:
		case <-ctx.Done():
			timer.Stop()
			return Message{}, ctx.Err()
		}
	}
	if v.dup {
		// First delivery: the response is discarded, as if the network
		// duplicated the datagram and the caller only saw one reply.
		if _, err := n.inner.Send(ctx, to, req); err != nil {
			return Message{}, err
		}
	}
	return n.inner.Send(ctx, to, req)
}
