package transport

import (
	"bytes"
	"encoding/binary"
	"io"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewMessageAndDecodeRoundTrip(t *testing.T) {
	type payload struct {
		X int      `json:"x"`
		S []string `json:"s"`
	}
	in := payload{X: 7, S: []string{"a", "b"}}
	m, err := NewMessage("test.type", "node1", in)
	if err != nil {
		t.Fatal(err)
	}
	if m.Type != "test.type" || m.From != "node1" {
		t.Fatalf("envelope = %+v", m)
	}
	var out payload
	if err := m.DecodeBody(&out); err != nil {
		t.Fatal(err)
	}
	if out.X != in.X || len(out.S) != 2 || out.S[1] != "b" {
		t.Fatalf("round trip mismatch: %+v", out)
	}
}

func TestNewMessageNilBody(t *testing.T) {
	m, err := NewMessage("ping", "n", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Body) != 0 {
		t.Fatalf("nil body produced %q", m.Body)
	}
	var v int
	if err := m.DecodeBody(&v); err == nil {
		t.Fatal("DecodeBody on empty body succeeded")
	}
}

func TestNewMessageUnmarshalableBody(t *testing.T) {
	if _, err := NewMessage("bad", "n", func() {}); err == nil {
		t.Fatal("function body marshaled")
	}
}

func TestDecodeBodyTypeMismatch(t *testing.T) {
	m, _ := NewMessage("t", "n", "a string")
	var v struct{ X int }
	if err := m.DecodeBody(&v); err == nil {
		t.Fatal("string decoded into struct")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in, _ := NewMessage("replica.solution", "r3", map[string]float64{"load": 42.5})
	if err := WriteFrame(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.Type != in.Type || out.From != in.From || string(out.Body) != string(in.Body) {
		t.Fatalf("frame round trip: in %+v out %+v", in, out)
	}
}

func TestFrameMultipleSequential(t *testing.T) {
	var buf bytes.Buffer
	for i := 0; i < 5; i++ {
		m, _ := NewMessage("seq", "n", i)
		if err := WriteFrame(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		m, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		var v int
		if err := m.DecodeBody(&v); err != nil {
			t.Fatal(err)
		}
		if v != i {
			t.Fatalf("frame %d decoded as %d", i, v)
		}
	}
	if _, err := ReadFrame(&buf); err != io.EOF {
		t.Fatalf("trailing read err = %v, want EOF", err)
	}
}

func TestReadFrameTruncatedPayload(t *testing.T) {
	var buf bytes.Buffer
	var prefix [4]byte
	binary.BigEndian.PutUint32(prefix[:], 100)
	buf.Write(prefix[:])
	buf.WriteString("short")
	if _, err := ReadFrame(&buf); err == nil {
		t.Fatal("truncated frame accepted")
	}
}

func TestReadFrameOversizedLength(t *testing.T) {
	var buf bytes.Buffer
	var prefix [4]byte
	binary.BigEndian.PutUint32(prefix[:], MaxFrameBytes+1)
	buf.Write(prefix[:])
	if _, err := ReadFrame(&buf); err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("oversized frame err = %v", err)
	}
}

func TestReadFrameGarbageJSON(t *testing.T) {
	var buf bytes.Buffer
	var prefix [4]byte
	binary.BigEndian.PutUint32(prefix[:], 3)
	buf.Write(prefix[:])
	buf.WriteString("{{{")
	if _, err := ReadFrame(&buf); err == nil {
		t.Fatal("garbage JSON accepted")
	}
}

// Property: arbitrary string payloads survive the wire intact.
func TestFrameRoundTripProperty(t *testing.T) {
	f := func(msgType, from, body string) bool {
		in, err := NewMessage(msgType, from, body)
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, in); err != nil {
			return false
		}
		out, err := ReadFrame(&buf)
		if err != nil {
			return false
		}
		var decoded string
		if err := out.DecodeBody(&decoded); err != nil {
			return false
		}
		return out.Type == msgType && out.From == from && decoded == body
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
