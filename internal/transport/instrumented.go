package transport

import (
	"context"
	"sync"

	"edr/internal/metrics"
	"edr/internal/telemetry"
)

// Instrumented wraps any Network and counts every send per (peer, verb):
// messages, request/response bytes, and errors, minted lazily into a
// telemetry.Registry as
//
//	edr_transport_messages_total{peer,verb}
//	edr_transport_bytes_total{peer,verb,direction="tx"|"rx"}
//	edr_transport_errors_total{peer,verb}
//
// and publishes a telemetry.MessageDropped event for every failed send.
// Byte counts measure message bodies (the payload the optimizer ships),
// not wire framing. The wrapper sits outermost in the fabric stack, so
// with fault injection underneath it observes what the application
// experienced — a dropped RPC is an error here even though the inner
// fabric swallowed it silently.
type Instrumented struct {
	inner Network
	reg   *telemetry.Registry
	bus   *telemetry.Bus

	mu    sync.RWMutex
	links map[linkKey]*linkCounters
}

type linkKey struct {
	peer, verb string
}

type linkCounters struct {
	messages *metrics.Counter
	bytesTx  *metrics.Counter
	bytesRx  *metrics.Counter
	errors   *metrics.Counter
}

// NewInstrumented wraps inner, recording into reg and publishing drop
// events to bus (which may be nil).
func NewInstrumented(inner Network, reg *telemetry.Registry, bus *telemetry.Bus) *Instrumented {
	return &Instrumented{
		inner: inner,
		reg:   reg,
		bus:   bus,
		links: make(map[linkKey]*linkCounters),
	}
}

// Listen registers a node on the underlying fabric; its outgoing sends
// are counted.
func (n *Instrumented) Listen(name string, h Handler) (Node, error) {
	node, err := n.inner.Listen(name, h)
	if err != nil {
		return nil, err
	}
	return &instrumentedNode{net: n, inner: node}, nil
}

// link returns the counter set for (peer, verb), minting registry series
// on first use. The fast path is one RLock + map hit.
func (n *Instrumented) link(peer, verb string) *linkCounters {
	key := linkKey{peer, verb}
	n.mu.RLock()
	lc, ok := n.links[key]
	n.mu.RUnlock()
	if ok {
		return lc
	}
	labels := telemetry.Labels{"peer": peer, "verb": verb}
	tx := telemetry.Labels{"peer": peer, "verb": verb, "direction": "tx"}
	rx := telemetry.Labels{"peer": peer, "verb": verb, "direction": "rx"}
	lc = &linkCounters{
		messages: n.reg.Counter("edr_transport_messages_total",
			"Messages sent per peer and verb.", labels),
		bytesTx: n.reg.Counter("edr_transport_bytes_total",
			"Message body bytes per peer, verb, and direction.", tx),
		bytesRx: n.reg.Counter("edr_transport_bytes_total",
			"Message body bytes per peer, verb, and direction.", rx),
		errors: n.reg.Counter("edr_transport_errors_total",
			"Failed sends per peer and verb.", labels),
	}
	n.mu.Lock()
	if existing, ok := n.links[key]; ok {
		lc = existing // lost the race; registry counters are shared anyway
	} else {
		n.links[key] = lc
	}
	n.mu.Unlock()
	return lc
}

type instrumentedNode struct {
	net   *Instrumented
	inner Node
}

func (nd *instrumentedNode) Name() string { return nd.inner.Name() }

func (nd *instrumentedNode) Close() error { return nd.inner.Close() }

func (nd *instrumentedNode) Send(ctx context.Context, to string, req Message) (Message, error) {
	lc := nd.net.link(to, req.Type)
	lc.messages.Inc(1)
	lc.bytesTx.Inc(int64(req.BodyLen()))
	resp, err := nd.inner.Send(ctx, to, req)
	if err != nil {
		lc.errors.Inc(1)
		nd.net.bus.Publish(telemetry.MessageDropped{Peer: to, Verb: req.Type, Err: err.Error()})
		return resp, err
	}
	lc.bytesRx.Inc(int64(resp.BodyLen()))
	return resp, nil
}
