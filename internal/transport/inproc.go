package transport

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// InProcNetwork is a deterministic in-process fabric: Sends invoke the
// destination handler directly on the caller's goroutine. It supports
// fault injection (dropping a node simulates a crash) and an optional
// per-hop delay function for latency modeling, making it the substrate for
// unit tests and virtual-time experiments.
type InProcNetwork struct {
	mu    sync.RWMutex
	nodes map[string]*inprocNode

	// Delay, when non-nil, returns the artificial one-way delay between
	// two nodes; Send sleeps 2× (request + response). Nil means instant.
	Delay func(from, to string) time.Duration
}

// NewInProcNetwork returns an empty in-process fabric.
func NewInProcNetwork() *InProcNetwork {
	return &InProcNetwork{nodes: make(map[string]*inprocNode)}
}

type inprocNode struct {
	name    string
	net     *InProcNetwork
	handler Handler
	mu      sync.Mutex
	closed  bool
}

// Listen registers a node. Re-registering a live name is an error.
func (n *InProcNetwork) Listen(name string, h Handler) (Node, error) {
	if h == nil {
		return nil, fmt.Errorf("transport: inproc listen %q: nil handler", name)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.nodes[name]; ok {
		return nil, fmt.Errorf("transport: inproc listen: %q already registered", name)
	}
	node := &inprocNode{name: name, net: n, handler: h}
	n.nodes[name] = node
	return node, nil
}

// Crash forcibly removes a node from the fabric without its cooperation,
// simulating a machine failure: in-flight and future Sends to it fail.
func (n *InProcNetwork) Crash(name string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if node, ok := n.nodes[name]; ok {
		node.mu.Lock()
		node.closed = true
		node.mu.Unlock()
		delete(n.nodes, name)
	}
}

// Names returns the currently registered node names.
func (n *InProcNetwork) Names() []string {
	n.mu.RLock()
	defer n.mu.RUnlock()
	names := make([]string, 0, len(n.nodes))
	for name := range n.nodes {
		names = append(names, name)
	}
	return names
}

func (nd *inprocNode) Name() string { return nd.name }

func (nd *inprocNode) Send(ctx context.Context, to string, req Message) (Message, error) {
	nd.mu.Lock()
	closed := nd.closed
	nd.mu.Unlock()
	if closed {
		return Message{}, ErrClosed
	}
	nd.net.mu.RLock()
	dest, ok := nd.net.nodes[to]
	delay := nd.net.Delay
	nd.net.mu.RUnlock()
	if !ok {
		return Message{}, fmt.Errorf("%w: %q", ErrUnknownPeer, to)
	}
	if delay != nil {
		d := delay(nd.name, to) + delay(to, nd.name)
		if d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
				return Message{}, ctx.Err()
			}
		}
	}
	if err := ctx.Err(); err != nil {
		return Message{}, err
	}
	dest.mu.Lock()
	destClosed := dest.closed
	handler := dest.handler
	dest.mu.Unlock()
	if destClosed {
		return Message{}, fmt.Errorf("%w: %q", ErrUnknownPeer, to)
	}
	req.From = nd.name
	return handler(ctx, req)
}

func (nd *inprocNode) Close() error {
	nd.mu.Lock()
	if nd.closed {
		nd.mu.Unlock()
		return nil
	}
	nd.closed = true
	nd.mu.Unlock()
	nd.net.mu.Lock()
	delete(nd.net.nodes, nd.name)
	nd.net.mu.Unlock()
	return nil
}
