package transport

import (
	"context"
	"errors"
)

// Handler processes one request message and returns the response. Handlers
// run concurrently; implementations must be safe for concurrent use.
type Handler func(ctx context.Context, req Message) (Message, error)

// ErrUnknownPeer is returned by Send when the destination is not reachable
// on the fabric (never registered, or already closed).
var ErrUnknownPeer = errors.New("transport: unknown peer")

// ErrClosed is returned by operations on a closed node or network.
var ErrClosed = errors.New("transport: closed")

// Node is one addressable endpoint on a fabric: it serves its Handler and
// can issue request/response calls to peers.
type Node interface {
	// Name returns the node's fabric address (a logical name on the
	// in-process fabric, host:port on TCP).
	Name() string
	// Send delivers req to the named peer and waits for its response.
	Send(ctx context.Context, to string, req Message) (Message, error)
	// Close releases the endpoint. Further Sends fail with ErrClosed.
	Close() error
}

// Network is a message fabric on which nodes can be created.
type Network interface {
	// Listen registers a node under name, serving h.
	Listen(name string, h Handler) (Node, error)
}
