package transport

import "sync"

// Per-peer delta-base negotiation, generalized from the CDPSM estimate
// protocol (PR 8) so any engine verb can opt into v2 delta frames.
//
// Two shapes exist:
//
//   - Pull verbs (CDPSM estimates): the requester caches the last matrix
//     it pulled from each peer (MatrixBaseCache) and declares its
//     iteration id; the server diffs its reply against the matching
//     snapshot it kept.
//
//   - Push verbs (LDDM μ-vectors, ADMM proximal targets): the sender
//     tracks, per peer, the last vector that peer confirmed decoding
//     (DeltaTx) and diffs each new frame against it; the receiver keeps
//     its last two absorbed vectors (DeltaRx) so both the next frame and
//     a retried duplicate of the current one can resolve their base.
//
// Correctness leans on the engine's wave barriers: exchange i of
// iteration k completes (every reply folded) before iteration k+1
// starts, so a frame for iteration k deltas against an iteration the
// receiver absorbed at k−1 or earlier, and transport-level retries
// resend the identical marshaled bytes. Base matching is by iteration
// id, and the marshal-time chooser (AppendMatrixKinded) only emits a
// delta when it is strictly smallest — bases drifting apart degrade to
// full/sparse frames, never to corruption.

// DeltaTx is the sender half of per-peer base negotiation for a push
// verb: Stage before marshaling a frame, Ack after the peer's reply
// folds. The zero value is ready to use. Safe for concurrent use —
// engine exchanges build bodies for distinct peers concurrently.
type DeltaTx struct {
	mu    sync.Mutex
	peers map[string]*deltaTxPeer
}

type deltaTxPeer struct {
	staged     []float64
	stagedIter int
	acked      []float64
	ackedIter  int
}

// Stage records the vector about to be shipped to peer at iteration iter
// (copied — callers mutate their iterates in place between waves) and
// returns the base the frame may delta against: the last vector this
// peer acked, or (nil, −1) when none exists. The returned slice stays
// valid until the Stage after the next Ack.
func (tx *DeltaTx) Stage(peer string, iter int, v []float64) (base []float64, baseIter int) {
	tx.mu.Lock()
	defer tx.mu.Unlock()
	if tx.peers == nil {
		tx.peers = make(map[string]*deltaTxPeer)
	}
	p := tx.peers[peer]
	if p == nil {
		p = &deltaTxPeer{}
		tx.peers[peer] = p
	}
	if len(p.staged) != len(v) {
		p.staged = make([]float64, len(v))
	}
	copy(p.staged, v)
	p.stagedIter = iter
	if p.acked == nil {
		return nil, -1
	}
	return p.acked, p.ackedIter
}

// Ack promotes peer's staged vector to the acked base: the peer's reply
// folded, so it decoded (and now holds) that exact vector. The old acked
// buffer is recycled as the next staging scratch.
func (tx *DeltaTx) Ack(peer string) {
	tx.mu.Lock()
	defer tx.mu.Unlock()
	p := tx.peers[peer]
	if p == nil || p.staged == nil {
		return
	}
	p.staged, p.acked = p.acked, p.staged
	p.ackedIter = p.stagedIter
}

// DeltaRx is the receiver half for a push verb: it holds the last two
// absorbed vectors so a frame can resolve its declared base by iteration
// id. The zero value is ready to use; safe for concurrent use.
type DeltaRx struct {
	mu       sync.Mutex
	cur      []float64
	curIter  int
	prev     []float64
	prevIter int
}

// Resolve returns the held vector absorbed at iteration iter, or nil.
// The result is read-only shared state.
func (rx *DeltaRx) Resolve(iter int) []float64 {
	rx.mu.Lock()
	defer rx.mu.Unlock()
	if rx.cur != nil && rx.curIter == iter {
		return rx.cur
	}
	if rx.prev != nil && rx.prevIter == iter {
		return rx.prev
	}
	return nil
}

// Absorb records a decoded vector for iteration iter. Newer iterations
// rotate the pair forward; a duplicate of the current iteration replaces
// it in place (retried frames decode to identical bytes); older
// duplicates are ignored so an out-of-order dup cannot roll the window
// back. v must not be mutated afterwards (decoded frames are freshly
// allocated, so handlers hand them over naturally).
func (rx *DeltaRx) Absorb(iter int, v []float64) {
	rx.mu.Lock()
	defer rx.mu.Unlock()
	switch {
	case rx.cur == nil || iter > rx.curIter:
		rx.prev, rx.prevIter = rx.cur, rx.curIter
		rx.cur, rx.curIter = v, iter
	case iter == rx.curIter:
		rx.cur = v
	}
}

// MatrixBaseCache is the requester half of a pull verb's base
// negotiation: the last matrix pulled from each peer and the iteration
// id it was committed at (CDPSM's per-peer estimate cache, hoisted here
// so other verbs can reuse it). The zero value is ready to use; safe for
// concurrent use.
type MatrixBaseCache struct {
	mu    sync.Mutex
	bases map[string]matrixBase
}

type matrixBase struct {
	m    [][]float64
	iter int
}

// Get returns the cached matrix and iteration id for peer, or (nil, −1).
func (c *MatrixBaseCache) Get(peer string) ([][]float64, int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	b, ok := c.bases[peer]
	if !ok {
		return nil, -1
	}
	return b.m, b.iter
}

// Put records the matrix just decoded from peer at iteration iter. m
// must not be mutated afterwards.
func (c *MatrixBaseCache) Put(peer string, iter int, m [][]float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.bases == nil {
		c.bases = make(map[string]matrixBase)
	}
	c.bases[peer] = matrixBase{m: m, iter: iter}
}

// AppendFloatsKinded appends v as a kinded 1×len(v) matrix frame,
// sharing the matrix chooser (full/sparse/delta, smallest wins, bitwise
// change detection) and the MatrixFrameStats counters. base, when
// non-nil and of equal length, enables the delta layout. An empty vector
// is carried as a 0×0 frame.
func AppendFloatsKinded(b []byte, v, base []float64) []byte {
	if len(v) == 0 {
		return AppendMatrixKinded(b, nil, nil)
	}
	var bm [][]float64
	if len(base) == len(v) {
		bm = [][]float64{base}
	}
	return AppendMatrixKinded(b, [][]float64{v}, bm)
}

// ReadFloatsKinded consumes a kinded vector frame written by
// AppendFloatsKinded. base supplies the delta reference; decoding a
// delta without a matching base is an error. The result is freshly
// allocated.
func ReadFloatsKinded(b []byte, base []float64) ([]float64, []byte, error) {
	var bm [][]float64
	if base != nil {
		bm = [][]float64{base}
	}
	m, rest, err := ReadMatrixKinded(b, bm)
	if err != nil {
		return nil, nil, err
	}
	if len(m) == 0 {
		return []float64{}, rest, nil
	}
	return m[0], rest, nil
}
