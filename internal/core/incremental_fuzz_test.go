package core

import (
	"context"
	"math"
	"testing"

	"edr/internal/opt"
	"edr/internal/sim"
	"edr/internal/workload"
)

// FuzzIncrementalEquiv drives two identical fleets — one incremental, one
// always-full — through a base round and a drifted round, and checks the
// incremental result against the full solve: demands conserved, capacity
// respected, objective within the incremental gate's tolerance of the
// full-solve objective, and an empty-dirty round re-committing the first
// round's assignment bitwise.
func FuzzIncrementalEquiv(f *testing.F) {
	f.Add(uint64(1), uint8(30), uint8(20))
	f.Add(uint64(7), uint8(0), uint8(10))    // quiet fleet: empty dirty set
	f.Add(uint64(42), uint8(100), uint8(45)) // everyone drifts: full-size dirty set
	f.Fuzz(func(t *testing.T, seed uint64, driftPct, magPct uint8) {
		const clients = 5
		drift := workload.Drift{
			Fraction:  float64(driftPct%101) / 100,
			Magnitude: float64(magPct%50+1) / 100,
		}
		r := sim.NewRand(seed)
		base := make([]float64, clients)
		for i := range base {
			base[i] = r.Range(10, 40)
		}
		drifted := drift.Apply(r, base)

		prices := []float64{1, 10, 5}
		inc := newFleetCfg(t, prices, clients, LDDM, func(i int, cfg *ReplicaConfig) {
			cfg.Incremental = true
		})
		full := newFleetCfg(t, prices, clients, LDDM, nil)
		ctx := context.Background()

		run := func(fl *fleet, demands []float64) *RoundReport {
			for i, cl := range fl.clients {
				if err := cl.Submit(ctx, fl.replicas[0].Addr(), demands[i], fl.uniformLatencies()); err != nil {
					t.Fatal(err)
				}
			}
			report, err := fl.replicas[0].RunRound(ctx)
			if err != nil {
				t.Fatal(err)
			}
			return report
		}
		firstInc := run(inc, base)
		run(full, base)
		gotInc := run(inc, drifted)
		gotFull := run(full, drifted)

		// Feasibility of the incremental round: every demand conserved,
		// every capacity respected.
		rows := opt.RowSums(gotInc.Assignment)
		for i, addr := range gotInc.ClientAddrs {
			var want float64
			for c, cl := range inc.clients {
				if cl.Addr() == addr {
					want = drifted[c]
				}
			}
			if math.Abs(rows[i]-want) > 1e-6*math.Max(1, want) {
				t.Fatalf("client %s served %g, want %g", addr, rows[i], want)
			}
		}
		for j, load := range opt.ColSums(gotInc.Assignment) {
			if load > 100+1e-6 {
				t.Fatalf("replica %s over capacity: %g", gotInc.ReplicaAddrs[j], load)
			}
		}
		// Objective parity with the full solve, within the KKT gate's band
		// plus solver tolerance.
		tol := 0.15 * math.Max(math.Abs(gotFull.Objective), 1)
		if math.Abs(gotInc.Objective-gotFull.Objective) > tol {
			t.Fatalf("objective diverged: incremental %g vs full %g (dirty=%d, incremental=%v)",
				gotInc.Objective, gotFull.Objective, gotInc.DirtyClients, gotInc.Incremental)
		}
		// Empty dirty set ⇒ the committed assignment is re-used, each row
		// rescaled by its (within-epsilon) demand ratio — bitwise when the
		// demand is literally unchanged.
		if gotInc.Incremental && gotInc.DirtyClients == 0 {
			for i, addr := range gotInc.ClientAddrs {
				var dNew, dOld float64
				for c, cl := range inc.clients {
					if cl.Addr() == addr {
						dNew, dOld = drifted[c], base[c]
					}
				}
				for j := range gotInc.Assignment[i] {
					want := firstInc.Assignment[i][j] * (dNew / dOld)
					if dNew == dOld {
						want = firstInc.Assignment[i][j]
					}
					if got := gotInc.Assignment[i][j]; got != want && math.Abs(got-want) > 1e-12*math.Max(1, want) {
						t.Fatalf("clean round moved assignment[%d][%d]: %g, want %g", i, j, got, want)
					}
				}
			}
		}
	})
}
