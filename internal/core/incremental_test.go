package core

import (
	"context"
	"fmt"
	"math"
	"testing"
	"time"

	"edr/internal/opt"
	"edr/internal/transport"
)

// drainAllocations empties every client's allocation channel so a later
// suppression check sees only new deliveries.
func drainAllocations(t *testing.T, f *fleet) {
	t.Helper()
	for _, cl := range f.clients {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		if _, err := cl.WaitAllocation(ctx); err != nil {
			t.Fatalf("client %s got no allocation: %v", cl.Addr(), err)
		}
		cancel()
	}
}

// submitAll sends one request per client with the given demands.
func submitAll(t *testing.T, f *fleet, demands []float64) {
	t.Helper()
	ctx := context.Background()
	for i, cl := range f.clients {
		if err := cl.Submit(ctx, f.replicas[0].Addr(), demands[i], f.uniformLatencies()); err != nil {
			t.Fatal(err)
		}
	}
}

// Two identical rounds: the second must take the clean incremental path —
// empty dirty set, zero iterations, the committed assignment re-used
// bitwise, and every client's notify suppressed.
func TestIncrementalIdenticalRoundsCommitClean(t *testing.T) {
	for _, alg := range []Algorithm{LDDM, CDPSM, ADMM} {
		t.Run(string(alg), func(t *testing.T) {
			f := newFleetCfg(t, []float64{1, 10, 5}, 3, alg, func(i int, cfg *ReplicaConfig) {
				cfg.Incremental = true
			})
			ctx := context.Background()
			demands := []float64{30, 20, 25}

			submitAll(t, f, demands)
			first, err := f.replicas[0].RunRound(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if first.Incremental {
				t.Fatal("first round (no history) claimed to be incremental")
			}
			drainAllocations(t, f)

			submitAll(t, f, demands)
			second, err := f.replicas[0].RunRound(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if !second.Incremental {
				t.Fatal("identical second round did not take the incremental path")
			}
			if second.DirtyClients != 0 {
				t.Fatalf("dirty clients = %d, want 0", second.DirtyClients)
			}
			if second.Iterations != 0 {
				t.Fatalf("iterations = %d, want 0 on a clean round", second.Iterations)
			}
			if second.SuppressedNotifies != len(f.clients) {
				t.Fatalf("suppressed = %d, want %d", second.SuppressedNotifies, len(f.clients))
			}
			for i := range second.Assignment {
				for j := range second.Assignment[i] {
					if second.Assignment[i][j] != first.Assignment[i][j] {
						t.Fatalf("assignment[%d][%d] moved on a clean round: %g -> %g",
							i, j, first.Assignment[i][j], second.Assignment[i][j])
					}
				}
			}
			if f.replicas[0].Stats.RoundsIncremental.Value() != 1 {
				t.Fatalf("RoundsIncremental = %d", f.replicas[0].Stats.RoundsIncremental.Value())
			}
			// Suppression means no client sees a second allocation.
			for _, cl := range f.clients {
				wctx, cancel := context.WithTimeout(ctx, 50*time.Millisecond)
				_, err := cl.WaitAllocation(wctx)
				cancel()
				if err == nil {
					t.Fatalf("client %s was notified on a clean round", cl.Addr())
				}
			}
		})
	}
}

// One drifted client: the incremental round re-solves just that client,
// conserves every demand, and suppresses the untouched clients' notifies.
func TestIncrementalDirtySubsetRound(t *testing.T) {
	f := newFleetCfg(t, []float64{1, 10, 5}, 3, LDDM, func(i int, cfg *ReplicaConfig) {
		cfg.Incremental = true
	})
	ctx := context.Background()

	submitAll(t, f, []float64{30, 20, 25})
	if _, err := f.replicas[0].RunRound(ctx); err != nil {
		t.Fatal(err)
	}
	drainAllocations(t, f)

	drifted := []float64{33, 20, 25} // client1 +10%, others untouched
	submitAll(t, f, drifted)
	report, err := f.replicas[0].RunRound(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !report.Incremental {
		t.Fatal("drifted round did not stay incremental (gate escalated?)")
	}
	if report.DirtyClients != 1 {
		t.Fatalf("dirty clients = %d, want 1", report.DirtyClients)
	}
	if report.SuppressedNotifies != 2 {
		t.Fatalf("suppressed = %d, want 2", report.SuppressedNotifies)
	}
	rows := opt.RowSums(report.Assignment)
	for i, addr := range report.ClientAddrs {
		var want float64
		for c, cl := range f.clients {
			if cl.Addr() == addr {
				want = drifted[c]
			}
		}
		if math.Abs(rows[i]-want) > 1e-6*math.Max(1, want) {
			t.Fatalf("client %s served %g, want %g", addr, rows[i], want)
		}
	}
	// The dirty client was re-notified; the clean ones were not.
	for c, cl := range f.clients {
		wctx, cancel := context.WithTimeout(ctx, 50*time.Millisecond)
		alloc, err := cl.WaitAllocation(wctx)
		cancel()
		if c == 0 {
			if err != nil {
				t.Fatalf("drifted client got no allocation: %v", err)
			}
			total := 0.0
			for _, v := range alloc.PerReplicaMB {
				total += v
			}
			if math.Abs(total-33) > 1e-6 {
				t.Fatalf("drifted client allocation sums to %g, want 33", total)
			}
		} else if err == nil {
			t.Fatalf("clean client %s was re-notified", cl.Addr())
		}
	}
}

// A replica parameter change dirties every client that can reach it: the
// round stays incremental but re-solves the full promoted set.
func TestIncrementalReplicaChangePromotesClients(t *testing.T) {
	f := newFleetCfg(t, []float64{1, 10, 5}, 3, LDDM, func(i int, cfg *ReplicaConfig) {
		cfg.Incremental = true
	})
	ctx := context.Background()
	demands := []float64{30, 20, 25}
	submitAll(t, f, demands)
	if _, err := f.replicas[0].RunRound(ctx); err != nil {
		t.Fatal(err)
	}
	drainAllocations(t, f)

	// Tariff change on one replica between rounds.
	f.replicas[1].mu.Lock()
	f.replicas[1].cfg.Replica.Price *= 2
	f.replicas[1].mu.Unlock()

	submitAll(t, f, demands)
	report, err := f.replicas[0].RunRound(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if report.Incremental && report.DirtyClients != len(f.clients) {
		t.Fatalf("tariff change dirtied %d of %d clients", report.DirtyClients, len(f.clients))
	}
	rows := opt.RowSums(report.Assignment)
	total := 0.0
	for _, v := range rows {
		total += v
	}
	if math.Abs(total-75) > 1e-6 {
		t.Fatalf("total served = %g, want 75", total)
	}
}

// Cohort duals: with CohortDuals enabled, every non-representative cohort
// member receives the cohort's final μ (ADMM is the dual-reporting
// algorithm). Without the flag, only representatives see duals.
func TestCohortDualsFanOut(t *testing.T) {
	f := newFleetCfg(t, []float64{1, 10, 5}, 4, ADMM, func(i int, cfg *ReplicaConfig) {
		cfg.CohortMinClients = 2
		cfg.CohortDuals = true
	})
	ctx := context.Background()
	// Identical latencies and equal demands: all four clients form one
	// cohort whose representative is the first member.
	for _, cl := range f.clients {
		if err := cl.Submit(ctx, f.replicas[0].Addr(), 20, f.uniformLatencies()); err != nil {
			t.Fatal(err)
		}
	}
	report, err := f.replicas[0].RunRound(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if report.Cohorts != 1 {
		t.Fatalf("cohorts = %d, want 1", report.Cohorts)
	}
	key := fmt.Sprintf("%s/%d", f.replicas[0].Addr(), report.Round)
	var mus []float64
	for _, cl := range f.clients {
		cl.mu.Lock()
		mu, ok := cl.mus[key]
		cl.mu.Unlock()
		if !ok {
			t.Fatalf("client %s holds no μ for round key %s", cl.Addr(), key)
		}
		mus = append(mus, mu)
	}
	// One cohort → one shared dual on every member.
	for i := 1; i < len(mus); i++ {
		if mus[i] != mus[0] {
			t.Fatalf("member μ diverged: %v", mus)
		}
	}
}

// The legacy fallback (a single step-1 μ-update with served=μ, demand=0)
// must land the same absolute value MsgCohortDuals would, pinning the
// wire-compat contract documented on the verb.
func TestCohortDualsLegacyFallbackEquivalent(t *testing.T) {
	net := transport.NewInProcNetwork()
	mkClient := func(name string) *Client {
		cl, err := NewClient(net, name)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { cl.Close() })
		return cl
	}
	modern, legacy := mkClient("modern"), mkClient("legacy")
	ctx := context.Background()
	const mu, round = 3.75, 7

	msg, err := transport.NewMessage(MsgCohortDuals, "replicaX", CohortDualsBody{Round: round, Mu: mu})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := modern.handle(ctx, msg); err != nil {
		t.Fatal(err)
	}
	fb, err := transport.NewMessage(MsgMuUpdate, "replicaX", MuUpdateBody{Round: round, Step: 1, ServedMB: mu, DemandMB: 0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := legacy.handle(ctx, fb); err != nil {
		t.Fatal(err)
	}

	key := fmt.Sprintf("replicaX/%d", round)
	modern.mu.Lock()
	a := modern.mus[key]
	modern.mu.Unlock()
	legacy.mu.Lock()
	b := legacy.mus[key]
	legacy.mu.Unlock()
	if a != mu || b != mu {
		t.Fatalf("μ mismatch: cohort verb %g, legacy fallback %g, want %g", a, b, mu)
	}
}

// A suppressed client must not be starved: change-suppressed rounds push
// nothing to clients whose split did not move, so a one-shot client (the
// edrctl path) falls back to pulling its committed row. The submission ack
// carries a round watermark; the pull is accepted once the committed round
// passes it and the row's mass matches the submitted demand.
func TestPullAllocationAfterQuietRound(t *testing.T) {
	f := newFleetCfg(t, []float64{1, 10, 5}, 2, LDDM, func(i int, cfg *ReplicaConfig) {
		cfg.Incremental = true
	})
	ctx := context.Background()
	demands := []float64{30, 20}

	submitAll(t, f, demands)
	if _, err := f.replicas[0].RunRound(ctx); err != nil {
		t.Fatal(err)
	}
	drainAllocations(t, f)

	// Identical resubmission: the quiet round suppresses every push.
	submitAll(t, f, demands)
	report, err := f.replicas[0].RunRound(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if report.SuppressedNotifies != len(f.clients) {
		t.Fatalf("suppressed = %d, want %d", report.SuppressedNotifies, len(f.clients))
	}

	// The steady wait still delivers each client's row, via the pull verb.
	for i, cl := range f.clients {
		wctx, cancel := context.WithTimeout(ctx, 5*time.Second)
		alloc, err := cl.WaitAllocationSteady(wctx, 10*time.Millisecond)
		cancel()
		if err != nil {
			t.Fatalf("client %s starved on a quiet round: %v", cl.Addr(), err)
		}
		if alloc.Round != report.Round {
			t.Errorf("client %s pulled round %d, want committed round %d", cl.Addr(), alloc.Round, report.Round)
		}
		var sum float64
		for _, mb := range alloc.PerReplicaMB {
			sum += mb
		}
		if math.Abs(sum-demands[i]) > 1e-6*demands[i] {
			t.Errorf("client %s pulled row sums to %g, want %g", cl.Addr(), sum, demands[i])
		}
	}
}
