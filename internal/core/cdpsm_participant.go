package core

import (
	"context"
	"fmt"

	"edr/internal/cdpsm"
	"edr/internal/opt"
	"edr/internal/transport"
)

// CDPSM participant side: each replica holds a committed estimate of the
// full solution. A step message makes it pull every peer's committed
// estimate (the real O(|N|²) exchange of Algorithm 1), average them with
// uniform consensus weights, take the local gradient step, project onto
// its local constraint set, and stage the result. A commit message then
// promotes the staged estimate, giving the synchronous iteration the
// initiator drives.

func (r *ReplicaServer) handleCDPSMStep(ctx context.Context, req transport.Message) (transport.Message, error) {
	var body CDPSMStepBody
	if err := req.DecodeBody(&body); err != nil {
		return transport.Message{}, err
	}
	st, err := r.lookupRound(body.Round)
	if err != nil {
		return transport.Message{}, err
	}

	// Pull peers' committed estimates (ReplicaListener traffic).
	estimates := make([][][]float64, 0, len(st.spec.Replicas))
	r.mu.Lock()
	own := opt.Clone(st.committed)
	r.mu.Unlock()
	estimates = append(estimates, own)
	for _, info := range st.spec.Replicas {
		if info.Addr == r.Addr() {
			continue
		}
		fetch, err := transport.NewMessage(MsgCDPSMEstimate, r.Addr(), CDPSMEstimateBody{Round: body.Round})
		if err != nil {
			return transport.Message{}, err
		}
		cctx, cancel := context.WithTimeout(ctx, r.cfg.RPCTimeout)
		resp, err := r.node.Send(cctx, info.Addr, fetch)
		cancel()
		r.Stats.CoordMessages.Inc(1)
		if err != nil {
			return transport.Message{}, fmt.Errorf("core: cdpsm step: fetch estimate from %s: %w", info.Addr, err)
		}
		var er CDPSMEstimateReply
		if err := resp.DecodeBody(&er); err != nil {
			return transport.Message{}, err
		}
		estimates = append(estimates, er.Estimate)
	}

	// Consensus average with uniform weights (Eq. 3).
	c, n := st.prob.C(), st.prob.N()
	consensus := opt.NewMatrix(c, n)
	weights := make([]float64, len(estimates))
	for i := range weights {
		weights[i] = 1 / float64(len(estimates))
	}
	opt.Mean(consensus, weights, estimates...)

	// Local gradient step and projection.
	grad := opt.NewMatrix(c, n)
	cdpsm.LocalGradient(st.prob, st.myCol, consensus, grad)
	next := opt.Clone(consensus)
	opt.AXPY(next, -body.Step, grad)
	if err := cdpsm.LocalProjection(st.prob, st.myCol, 60)(next); err != nil {
		return transport.Message{}, err
	}

	r.mu.Lock()
	moved := opt.Dist(next, st.committed)
	st.staged = next
	r.mu.Unlock()
	return transport.NewMessage(MsgCDPSMStep+".ack", r.Addr(), CDPSMStepReply{Moved: moved})
}

func (r *ReplicaServer) handleCDPSMEstimate(req transport.Message) (transport.Message, error) {
	var body CDPSMEstimateBody
	if err := req.DecodeBody(&body); err != nil {
		return transport.Message{}, err
	}
	st, err := r.lookupRound(body.Round)
	if err != nil {
		return transport.Message{}, err
	}
	r.mu.Lock()
	est := opt.Clone(st.committed)
	r.mu.Unlock()
	return transport.NewMessage(MsgCDPSMEstimate+".ack", r.Addr(), CDPSMEstimateReply{Estimate: est})
}

func (r *ReplicaServer) handleCDPSMCommit(req transport.Message) (transport.Message, error) {
	var body CDPSMCommitBody
	if err := req.DecodeBody(&body); err != nil {
		return transport.Message{}, err
	}
	st, err := r.lookupRound(body.Round)
	if err != nil {
		return transport.Message{}, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if st.staged == nil {
		return transport.Message{}, fmt.Errorf("core: cdpsm commit round %d with no staged estimate", body.Round)
	}
	st.committed = st.staged
	st.staged = nil
	return transport.NewMessage(MsgCDPSMCommit+".ack", r.Addr(), nil)
}
