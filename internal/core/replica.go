package core

import (
	"context"
	"fmt"
	"sync"

	"edr/internal/admm"
	"edr/internal/lddm"
	"edr/internal/metrics"
	"edr/internal/model"
	"edr/internal/opt"
	"edr/internal/ring"
	"edr/internal/transport"
)

// ReplicaServer is one EDR replica: it listens for client requests
// (ClientListener role), exchanges solution state with peer replicas
// (ReplicaListener role), serves downloads (FileDownload role), initiates
// scheduling rounds over its pending requests, and participates in the
// ring fault-tolerance protocol.
type ReplicaServer struct {
	cfg  ReplicaConfig
	node transport.Node
	ring *ring.Ring
	mon  *ring.Monitor

	mu         sync.Mutex
	pending    map[string]*RequestBody // keyed by client address, demand aggregated
	rounds     map[int]*roundState     // participant-side state, keyed by round id
	roundSeq   int
	lastGood   *lastGoodRound // fallback assignment for degraded rounds
	lastReport *RoundReport   // most recent completed round (admin /status)

	// Stats are exported runtime counters.
	Stats ReplicaStats
}

// ReplicaStats aggregates a replica's runtime activity.
type ReplicaStats struct {
	RequestsReceived metrics.Counter
	RoundsInitiated  metrics.Counter
	RoundsRestarted  metrics.Counter
	RoundsDegraded   metrics.Counter // rounds served from the stale fallback
	DownloadsServed  metrics.Counter
	MBServed         metrics.Counter // whole MB, rounded down per download
	CoordMessages    metrics.Counter // coordination messages this node sent
	SendRetried      metrics.Counter // coordination RPC retry attempts
}

// lastGoodRound caches the initiator's view of its latest successful
// round: the participating replicas' models and the final assignment
// (rows follow clientAddrs, columns follow infos). Degraded rounds
// renormalize it over whichever replicas are still reachable.
type lastGoodRound struct {
	infos       []ReplicaInfo
	clientAddrs []string
	assignment  [][]float64
}

// roundState is the participant-side view of one round.
type roundState struct {
	spec    RoundSpec
	prob    *opt.Problem
	myCol   int
	myLocal *lddm.LocalProblem

	// CDPSM estimate state.
	committed [][]float64
	staged    [][]float64

	// Final plan: MB to serve per client address.
	plan map[string]float64
}

// NewReplicaServer binds a replica server on the given network address.
// members must include this replica's own address; it seeds the ring.
func NewReplicaServer(network transport.Network, addr string, members []string, cfg ReplicaConfig) (*ReplicaServer, error) {
	if err := cfg.Replica.Validate(); err != nil {
		return nil, err
	}
	r := &ReplicaServer{
		cfg:     cfg.withDefaults(),
		pending: make(map[string]*RequestBody),
		rounds:  make(map[int]*roundState),
	}
	node, err := network.Listen(addr, r.handle)
	if err != nil {
		return nil, err
	}
	r.node = node
	all := append([]string{}, members...)
	all = append(all, node.Name())
	r.ring = ring.New(all)
	r.mon = &ring.Monitor{
		Self: node.Name(),
		Ring: r.ring,
		Node: node,
		Bus:  r.cfg.Telemetry,
	}
	return r, nil
}

// Addr returns the replica's transport address.
func (r *ReplicaServer) Addr() string { return r.node.Name() }

// Ring returns the replica's membership view.
func (r *ReplicaServer) Ring() *ring.Ring { return r.ring }

// Monitor returns the ring heartbeat monitor so owners can Start/Stop it
// or drive Beat manually in tests.
func (r *ReplicaServer) Monitor() *ring.Monitor { return r.mon }

// Close shuts the replica down.
func (r *ReplicaServer) Close() error {
	r.mon.Stop()
	return r.node.Close()
}

// PendingRequests reports the current queue depth.
func (r *ReplicaServer) PendingRequests() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.pending)
}

// LastReport returns the most recent completed round this replica
// initiated (nil before the first), degraded rounds included.
func (r *ReplicaServer) LastReport() *RoundReport {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lastReport
}

// Status is the admin plane's /status document: a live snapshot of
// membership, suspicion, queue depth, cumulative counters, and the last
// completed round (including its assignment matrix).
type Status struct {
	Addr             string       `json:"addr"`
	Algorithm        string       `json:"algorithm"`
	Ring             []string     `json:"ring"`
	Suspect          string       `json:"suspect,omitempty"`
	SuspectMisses    int          `json:"suspect_misses,omitempty"`
	Pending          int          `json:"pending"`
	RequestsReceived int64        `json:"requests_received"`
	RoundsInitiated  int64        `json:"rounds_initiated"`
	RoundsRestarted  int64        `json:"rounds_restarted"`
	RoundsDegraded   int64        `json:"rounds_degraded"`
	DownloadsServed  int64        `json:"downloads_served"`
	SendRetried      int64        `json:"send_retried"`
	Degraded         bool         `json:"degraded"` // last round fell back
	LastRound        *RoundReport `json:"last_round,omitempty"`
}

// Status snapshots the replica's runtime state for the admin plane.
func (r *ReplicaServer) Status() Status {
	suspect, misses := r.mon.Suspicion()
	s := Status{
		Addr:             r.Addr(),
		Algorithm:        r.cfg.Algorithm.String(),
		Ring:             r.ring.Members(),
		Suspect:          suspect,
		SuspectMisses:    misses,
		Pending:          r.PendingRequests(),
		RequestsReceived: r.Stats.RequestsReceived.Value(),
		RoundsInitiated:  r.Stats.RoundsInitiated.Value(),
		RoundsRestarted:  r.Stats.RoundsRestarted.Value(),
		RoundsDegraded:   r.Stats.RoundsDegraded.Value(),
		DownloadsServed:  r.Stats.DownloadsServed.Value(),
		SendRetried:      r.Stats.SendRetried.Value(),
	}
	s.LastRound = r.LastReport()
	if s.LastRound != nil {
		s.Degraded = s.LastRound.Degraded
	}
	return s
}

// handle routes every incoming message.
func (r *ReplicaServer) handle(ctx context.Context, req transport.Message) (transport.Message, error) {
	switch req.Type {
	case MsgClientRequest:
		return r.handleClientRequest(req)
	case MsgReplicaInfo:
		return r.handleReplicaInfo(req)
	case MsgRoundStart:
		return r.handleRoundStart(req)
	case MsgLocalSolve:
		return r.handleLocalSolve(req)
	case MsgADMMProx:
		return r.handleADMMProx(req)
	case MsgCDPSMStep:
		return r.handleCDPSMStep(ctx, req)
	case MsgCDPSMEstimate:
		return r.handleCDPSMEstimate(req)
	case MsgCDPSMCommit:
		return r.handleCDPSMCommit(req)
	case MsgAssign:
		return r.handleAssign(req)
	case MsgDownload:
		return r.handleDownload(req)
	case ring.HeartbeatType:
		return r.mon.HandleHeartbeat(req)
	case ring.DeathType:
		return r.mon.HandleDeath(req)
	default:
		return transport.Message{}, fmt.Errorf("core: replica %s: unknown message type %q", r.Addr(), req.Type)
	}
}

// handleClientRequest queues a client's demand (ClientListener role).
// Repeat submissions from the same client before a round runs are
// aggregated into one row, as one scheduling window would see them.
func (r *ReplicaServer) handleClientRequest(req transport.Message) (transport.Message, error) {
	var body RequestBody
	if err := req.DecodeBody(&body); err != nil {
		return transport.Message{}, err
	}
	if body.ClientAddr == "" || body.DemandMB <= 0 {
		return transport.Message{}, fmt.Errorf("core: bad request from %s: addr=%q demand=%g", req.From, body.ClientAddr, body.DemandMB)
	}
	r.mu.Lock()
	if existing, ok := r.pending[body.ClientAddr]; ok {
		existing.DemandMB += body.DemandMB
		for addr, l := range body.LatencySec {
			existing.LatencySec[addr] = l
		}
	} else {
		r.pending[body.ClientAddr] = &body
	}
	depth := len(r.pending)
	r.mu.Unlock()
	r.Stats.RequestsReceived.Inc(1)
	return transport.NewMessage(MsgClientRequest+".ack", r.Addr(), RequestAck{Accepted: true, Pending: depth})
}

// handleReplicaInfo reports this replica's model parameters.
func (r *ReplicaServer) handleReplicaInfo(req transport.Message) (transport.Message, error) {
	rep := r.cfg.Replica
	return transport.NewMessage(MsgReplicaInfo+".ack", r.Addr(), ReplicaInfo{
		Addr:      r.Addr(),
		Price:     rep.Price,
		Alpha:     rep.Alpha,
		Beta:      rep.Beta,
		Gamma:     rep.Gamma,
		Bandwidth: rep.Bandwidth,
	})
}

// specProblem reconstructs the optimization instance a RoundSpec describes.
func specProblem(spec *RoundSpec) (*opt.Problem, error) {
	replicas := make([]model.Replica, len(spec.Replicas))
	for j, info := range spec.Replicas {
		replicas[j] = model.Replica{
			Name:      info.Addr,
			Price:     info.Price,
			Alpha:     info.Alpha,
			Beta:      info.Beta,
			Gamma:     info.Gamma,
			Bandwidth: info.Bandwidth,
		}
	}
	sys, err := model.NewSystem(replicas)
	if err != nil {
		return nil, err
	}
	prob := &opt.Problem{
		System:     sys,
		Demands:    spec.Demands,
		Latency:    spec.LatencySec,
		MaxLatency: spec.MaxLatencySec,
	}
	if err := prob.Validate(); err != nil {
		return nil, err
	}
	return prob, nil
}

// handleRoundStart installs a round's problem (participant side).
func (r *ReplicaServer) handleRoundStart(req transport.Message) (transport.Message, error) {
	var spec RoundSpec
	if err := req.DecodeBody(&spec); err != nil {
		return transport.Message{}, err
	}
	prob, err := specProblem(&spec)
	if err != nil {
		return transport.Message{}, err
	}
	myCol := -1
	for j, info := range spec.Replicas {
		if info.Addr == r.Addr() {
			myCol = j
			break
		}
	}
	if myCol < 0 {
		return transport.Message{}, fmt.Errorf("core: replica %s not listed in round %d", r.Addr(), spec.Round)
	}
	mask := prob.Allowed()
	allowed := make([]bool, prob.C())
	for c := range allowed {
		allowed[c] = mask[c][myCol]
	}
	st := &roundState{
		spec:  spec,
		prob:  prob,
		myCol: myCol,
		myLocal: &lddm.LocalProblem{
			Replica: prob.System.Replicas[myCol],
			Demands: prob.Demands,
			Allowed: allowed,
		},
	}
	// CDPSM needs an initial committed estimate.
	start, err := prob.UniformStart()
	if err != nil {
		return transport.Message{}, err
	}
	st.committed = start
	r.mu.Lock()
	r.rounds[spec.Round] = st
	r.mu.Unlock()
	return transport.NewMessage(MsgRoundStart+".ack", r.Addr(), nil)
}

// lookupRound fetches participant state.
func (r *ReplicaServer) lookupRound(round int) (*roundState, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	st, ok := r.rounds[round]
	if !ok {
		return nil, fmt.Errorf("core: replica %s has no state for round %d", r.Addr(), round)
	}
	return st, nil
}

// handleLocalSolve runs one LDDM local solve (Algorithm 2, line 4).
func (r *ReplicaServer) handleLocalSolve(req transport.Message) (transport.Message, error) {
	var body LocalSolveBody
	if err := req.DecodeBody(&body); err != nil {
		return transport.Message{}, err
	}
	st, err := r.lookupRound(body.Round)
	if err != nil {
		return transport.Message{}, err
	}
	if len(body.Mu) != st.prob.C() {
		return transport.Message{}, fmt.Errorf("core: round %d: %d multipliers for %d clients", body.Round, len(body.Mu), st.prob.C())
	}
	st.myLocal.Mu = body.Mu
	col, err := lddm.SolveLocal(st.myLocal)
	if err != nil {
		return transport.Message{}, err
	}
	return transport.NewMessage(MsgLocalSolve+".ack", r.Addr(), LocalSolveReply{Column: col})
}

// handleADMMProx runs one ADMM proximal solve on this replica's own
// energy model (see internal/admm.ProximalColumn).
func (r *ReplicaServer) handleADMMProx(req transport.Message) (transport.Message, error) {
	var body ADMMProxBody
	if err := req.DecodeBody(&body); err != nil {
		return transport.Message{}, err
	}
	st, err := r.lookupRound(body.Round)
	if err != nil {
		return transport.Message{}, err
	}
	if len(body.Target) != st.prob.C() {
		return transport.Message{}, fmt.Errorf("core: admm prox round %d: %d targets for %d clients", body.Round, len(body.Target), st.prob.C())
	}
	caps := make([]float64, st.prob.C())
	copy(caps, st.prob.Demands)
	col, err := admm.ProximalColumn(st.prob.System.Replicas[st.myCol], st.myLocal.Allowed, caps, body.Target, body.Rho, 40)
	if err != nil {
		return transport.Message{}, err
	}
	return transport.NewMessage(MsgADMMProx+".ack", r.Addr(), ADMMProxReply{Column: col})
}

// handleAssign installs the final serving plan.
func (r *ReplicaServer) handleAssign(req transport.Message) (transport.Message, error) {
	var body AssignBody
	if err := req.DecodeBody(&body); err != nil {
		return transport.Message{}, err
	}
	st, err := r.lookupRound(body.Round)
	if err != nil {
		return transport.Message{}, err
	}
	if len(body.Column) != len(body.ClientAddrs) {
		return transport.Message{}, fmt.Errorf("core: assign round %d: %d amounts for %d clients", body.Round, len(body.Column), len(body.ClientAddrs))
	}
	plan := make(map[string]float64, len(body.Column))
	for i, addr := range body.ClientAddrs {
		if body.Column[i] > 0 {
			plan[addr] = body.Column[i]
		}
	}
	r.mu.Lock()
	st.plan = plan
	r.mu.Unlock()
	return transport.NewMessage(MsgAssign+".ack", r.Addr(), nil)
}

// Plan returns the MB this replica was assigned to serve to the given
// client in the given round (0 when none).
func (r *ReplicaServer) Plan(round int, clientAddr string) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	st, ok := r.rounds[round]
	if !ok || st.plan == nil {
		return 0
	}
	return st.plan[clientAddr]
}

// handleDownload serves the FileDownload role: synthetic payload bytes,
// BytesPerMB per requested MB.
func (r *ReplicaServer) handleDownload(req transport.Message) (transport.Message, error) {
	var body DownloadBody
	if err := req.DecodeBody(&body); err != nil {
		return transport.Message{}, err
	}
	if body.SizeMB < 0 {
		return transport.Message{}, fmt.Errorf("core: download of %g MB", body.SizeMB)
	}
	size := int(body.SizeMB * float64(r.cfg.BytesPerMB))
	payload := make([]byte, size)
	for i := range payload {
		payload[i] = byte(i)
	}
	r.Stats.DownloadsServed.Inc(1)
	r.Stats.MBServed.Inc(int64(body.SizeMB))
	return transport.NewMessage(MsgDownload+".ack", r.Addr(), DownloadReply{Payload: payload})
}
