package core

import (
	"context"
	"fmt"
	"sync"

	"edr/internal/cohort"
	"edr/internal/engine"
	"edr/internal/membership"
	"edr/internal/metrics"
	"edr/internal/model"
	"edr/internal/opt"
	"edr/internal/ring"
	"edr/internal/transport"
)

// ReplicaServer is one EDR replica: it listens for client requests
// (ClientListener role), exchanges solution state with peer replicas
// (ReplicaListener role), serves downloads (FileDownload role), initiates
// scheduling rounds over its pending requests, and participates in the
// ring fault-tolerance protocol.
type ReplicaServer struct {
	cfg    ReplicaConfig
	node   transport.Node
	ring   *ring.Ring
	mon    *ring.Monitor
	member *membership.Manager

	mu         sync.Mutex
	pending    map[string]*RequestBody // keyed by client address, demand aggregated
	rounds     map[int]*roundState     // participant-side state, keyed by round id
	roundSeq   int
	lastGood   *lastGoodRound         // fallback assignment for degraded rounds
	lastReport *RoundReport           // most recent completed round (admin /status)
	infoCache  map[string]ReplicaInfo // model parameters of every replica ever seen in a round
	pool       *opt.Pool              // recycles initiator-side round scratch
	par        *opt.Parallel          // fans solver kernels across cores (nil = serial)
	registry   *cohort.Registry       // stable cross-round cohort identity (initiator side)

	// Stats are exported runtime counters.
	Stats ReplicaStats
}

// ReplicaStats aggregates a replica's runtime activity.
type ReplicaStats struct {
	RequestsReceived  metrics.Counter
	RoundsInitiated   metrics.Counter
	RoundsRestarted   metrics.Counter
	RoundsDegraded    metrics.Counter // rounds served from the stale fallback
	RoundsIncremental metrics.Counter // rounds solved over the dirty subset only
	RoundsEscalated   metrics.Counter // incremental attempts the gate sent to a full solve
	DownloadsServed   metrics.Counter
	MBServed          metrics.Counter // whole MB, rounded down per download
	CoordMessages     metrics.Counter // coordination messages this node sent
	SendRetried       metrics.Counter // coordination RPC retry attempts
}

// lastGoodRound caches the initiator's view of its latest successful
// round: the participating replicas' models and the final assignment
// (rows follow clientAddrs, columns follow infos). Degraded rounds
// renormalize it over whichever replicas are still reachable.
type lastGoodRound struct {
	// round is the committed round id. Clean incremental commits advance
	// it too (they commit a round without installing anything), so it is
	// the watermark MsgAllocationPull callers compare against.
	round       int
	infos       []ReplicaInfo
	clientAddrs []string
	assignment  [][]float64
	// mus holds the round's final per-client dual values when the
	// algorithm reported them (engine.DualReporter); the next warm start
	// seeds the dual from here.
	mus map[string]float64
	// prob is the full per-client problem the assignment solved
	// (rows follow clientAddrs, columns follow infos); the incremental
	// path diffs the next round against it. Nil on degraded commits.
	prob *opt.Problem
	// objective is the committed assignment's cost under prob.
	objective float64
	// installed is the assignment actually fanned out to replica round
	// state, and installedRound the round id it was installed under.
	// Usually identical to assignment, but a clean incremental commit
	// (commitClean) rescales rows without re-installing anything, so the
	// two can drift apart; the delta install diffs against installed —
	// what replicas really hold — never against assignment.
	installed      [][]float64
	installedRound int
}

// roundState is the participant-side view of one round: the engine's
// ServerRound (problem, column, lazily-built per-algorithm state) plus the
// installed serving plan.
type roundState struct {
	eng *engine.ServerRound

	// Final plan: MB to serve per client address.
	plan map[string]float64
}

// NewReplicaServer binds a replica server on the given network address.
// members must include this replica's own address; it seeds the ring.
func NewReplicaServer(network transport.Network, addr string, members []string, cfg ReplicaConfig) (*ReplicaServer, error) {
	if err := cfg.Replica.Validate(); err != nil {
		return nil, err
	}
	r := &ReplicaServer{
		cfg:       cfg.withDefaults(),
		pending:   make(map[string]*RequestBody),
		rounds:    make(map[int]*roundState),
		infoCache: make(map[string]ReplicaInfo),
		pool:      &opt.Pool{},
		registry:  cohort.NewRegistry(),
	}
	r.par = opt.NewParallel(r.cfg.Parallelism)
	if _, ok := engine.Lookup(string(r.cfg.Algorithm)); !ok {
		return nil, fmt.Errorf("core: unknown algorithm %q", r.cfg.Algorithm)
	}
	node, err := network.Listen(addr, r.handle)
	if err != nil {
		return nil, err
	}
	r.node = node
	all := append([]string{}, members...)
	all = append(all, node.Name())
	r.ring = ring.New(all)
	r.ring.Bus = r.cfg.Telemetry
	r.member = membership.NewManager(node.Name(), r.ring, node, r.cfg.Telemetry)
	r.member.Timeout = r.cfg.RPCTimeout
	r.mon = &ring.Monitor{
		Self:    node.Name(),
		Ring:    r.ring,
		Node:    node,
		Bus:     r.cfg.Telemetry,
		Drained: r.member.IsDrained,
	}
	return r, nil
}

// Addr returns the replica's transport address.
func (r *ReplicaServer) Addr() string { return r.node.Name() }

// Ring returns the replica's membership view.
func (r *ReplicaServer) Ring() *ring.Ring { return r.ring }

// Monitor returns the ring heartbeat monitor so owners can Start/Stop it
// or drive Beat manually in tests.
func (r *ReplicaServer) Monitor() *ring.Monitor { return r.mon }

// Membership returns the replica's epoch-based membership manager, through
// which owners propose joins, drains, and removals.
func (r *ReplicaServer) Membership() *membership.Manager { return r.member }

// activeMembers is the roster a new round runs over: the live ring minus
// drained members. Drained replicas keep heartbeating and serving their
// installed plans but take no new load.
func (r *ReplicaServer) activeMembers() []string {
	members := r.ring.Members()
	out := make([]string, 0, len(members))
	for _, m := range members {
		if !r.member.IsDrained(m) {
			out = append(out, m)
		}
	}
	return out
}

// AutoScale feeds the latest completed round into the energy-aware
// elasticity policy and applies its verdict through the membership layer:
// PowerDown drains the priciest active replica, PowerUp undrains the
// cheapest drained one. It returns the policy's decision and whether an
// epoch change was actually proposed (a Hold, a missing report, or an
// inapplicable target proposes nothing). Call it once per scheduling
// window — the policy's hysteresis counters assume regular samples.
func (r *ReplicaServer) AutoScale(ctx context.Context, p *membership.Policy) (membership.Decision, bool, error) {
	r.mu.Lock()
	report := r.lastReport
	cache := make(map[string]ReplicaInfo, len(r.infoCache))
	for addr, info := range r.infoCache {
		cache[addr] = info
	}
	r.mu.Unlock()
	if report == nil {
		return membership.Decision{}, false, nil
	}
	load := 0.0
	for _, row := range report.Assignment {
		for _, v := range row {
			load += v
		}
	}
	cur := r.member.Current()
	sample := membership.Sample{
		LoadMB:     load,
		CapacityMB: make(map[string]float64, len(cache)),
		Prices:     make(map[string]float64, len(cache)),
		Active:     r.member.Active(),
		Drained:    append([]string{}, cur.Drained...),
	}
	for addr, info := range cache {
		sample.CapacityMB[addr] = info.Bandwidth
		sample.Prices[addr] = info.Price
	}
	d := p.Evaluate(sample)
	switch d.Action {
	case membership.PowerDown:
		_, err := r.member.ProposeChange(ctx, membership.OpDrain, d.Target)
		return d, true, err
	case membership.PowerUp:
		_, err := r.member.ProposeChange(ctx, membership.OpUndrain, d.Target)
		return d, true, err
	}
	return d, false, nil
}

// Close shuts the replica down.
func (r *ReplicaServer) Close() error {
	r.mon.Stop()
	return r.node.Close()
}

// PendingRequests reports the current queue depth.
func (r *ReplicaServer) PendingRequests() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.pending)
}

// LastReport returns the most recent completed round this replica
// initiated (nil before the first), degraded rounds included.
func (r *ReplicaServer) LastReport() *RoundReport {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lastReport
}

// Status is the admin plane's /status document: a live snapshot of
// membership, suspicion, queue depth, cumulative counters, and the last
// completed round (including its assignment matrix).
type Status struct {
	Addr              string       `json:"addr"`
	Algorithm         string       `json:"algorithm"`
	Ring              []string     `json:"ring"`
	Epoch             int          `json:"epoch"`
	Drained           []string     `json:"drained,omitempty"`
	Suspect           string       `json:"suspect,omitempty"`
	SuspectMisses     int          `json:"suspect_misses,omitempty"`
	Pending           int          `json:"pending"`
	RequestsReceived  int64        `json:"requests_received"`
	RoundsInitiated   int64        `json:"rounds_initiated"`
	RoundsRestarted   int64        `json:"rounds_restarted"`
	RoundsDegraded    int64        `json:"rounds_degraded"`
	RoundsIncremental int64        `json:"rounds_incremental,omitempty"`
	RoundsEscalated   int64        `json:"rounds_escalated,omitempty"`
	DownloadsServed   int64        `json:"downloads_served"`
	SendRetried       int64        `json:"send_retried"`
	Degraded          bool         `json:"degraded"` // last round fell back
	LastRound         *RoundReport `json:"last_round,omitempty"`
}

// Status snapshots the replica's runtime state for the admin plane.
func (r *ReplicaServer) Status() Status {
	suspect, misses := r.mon.Suspicion()
	epoch := r.member.Current()
	s := Status{
		Addr:              r.Addr(),
		Algorithm:         r.cfg.Algorithm.String(),
		Ring:              r.ring.Members(),
		Epoch:             epoch.Seq,
		Drained:           epoch.Drained,
		Suspect:           suspect,
		SuspectMisses:     misses,
		Pending:           r.PendingRequests(),
		RequestsReceived:  r.Stats.RequestsReceived.Value(),
		RoundsInitiated:   r.Stats.RoundsInitiated.Value(),
		RoundsRestarted:   r.Stats.RoundsRestarted.Value(),
		RoundsDegraded:    r.Stats.RoundsDegraded.Value(),
		RoundsIncremental: r.Stats.RoundsIncremental.Value(),
		RoundsEscalated:   r.Stats.RoundsEscalated.Value(),
		DownloadsServed:   r.Stats.DownloadsServed.Value(),
		SendRetried:       r.Stats.SendRetried.Value(),
	}
	s.LastRound = r.LastReport()
	if s.LastRound != nil {
		s.Degraded = s.LastRound.Degraded
	}
	return s
}

// handle routes every incoming message. Runtime verbs have their own
// cases; any algorithm-owned iteration verb resolves through the engine
// registry to the registered server half, so a new algorithm needs no
// edit here.
func (r *ReplicaServer) handle(ctx context.Context, req transport.Message) (transport.Message, error) {
	switch req.Type {
	case MsgClientRequest:
		return r.handleClientRequest(req)
	case MsgReplicaInfo:
		return r.handleReplicaInfo(req)
	case MsgRoundStart:
		return r.handleRoundStart(req)
	case MsgAssign:
		return r.handleAssign(req)
	case MsgAllocationPull:
		return r.handleAllocationPull(req)
	case MsgDownload:
		return r.handleDownload(req)
	case ring.HeartbeatType:
		return r.mon.HandleHeartbeat(req)
	case ring.DeathType:
		return r.mon.HandleDeath(req)
	case membership.EpochType:
		return r.member.HandleEpoch(req)
	case membership.ProposeType:
		return r.member.HandlePropose(ctx, req)
	default:
		if reg, ok := engine.ServerFor(req.Type); ok && reg.Server != nil {
			return r.handleEngine(ctx, reg, req)
		}
		return transport.Message{}, fmt.Errorf("core: replica %s: unknown message type %q", r.Addr(), req.Type)
	}
}

// handleEngine dispatches an algorithm verb to its registered server
// half. Every algorithm body carries the round id, which locates the
// participant state the server half operates on. The reply mirrors the
// request's codec (transport.NewReply), so JSON-only initiators keep
// interoperating with binary-capable participants.
func (r *ReplicaServer) handleEngine(ctx context.Context, reg *engine.Registration, req transport.Message) (transport.Message, error) {
	round, err := engineRound(req)
	if err != nil {
		return transport.Message{}, err
	}
	st, err := r.lookupRound(round)
	if err != nil {
		return transport.Message{}, err
	}
	body, err := reg.Server.Handle(ctx, req.Type, msgReply{req}, st.eng)
	if err != nil {
		return transport.Message{}, err
	}
	return transport.NewReply(req, req.Type+".ack", r.Addr(), body)
}

// engineRound extracts the round id an algorithm request body carries:
// binary bodies lead with it by wire convention (no full decode needed),
// JSON bodies name it "round".
func engineRound(req transport.Message) (int, error) {
	if len(req.Bin) > 0 {
		return transport.BinaryRound(req)
	}
	var hdr struct {
		Round int `json:"round"`
	}
	if err := req.DecodeBody(&hdr); err != nil {
		return 0, err
	}
	return hdr.Round, nil
}

// newMessage builds an outgoing message, honoring the WireJSON knob: by
// default bodies that support it ship the compact binary codec; WireJSON
// pins everything this node initiates to JSON.
func (r *ReplicaServer) newMessage(msgType string, v any) (transport.Message, error) {
	if r.cfg.WireJSON {
		return transport.NewJSONMessage(msgType, r.Addr(), v)
	}
	return transport.NewMessage(msgType, r.Addr(), v)
}

// peerSender is the fabric handle an algorithm's server half uses to reach
// its peer replicas mid-iteration (CDPSM's estimate pulls): one-shot sends
// bounded by RPCTimeout — retrying is the initiator's business.
type peerSender struct{ r *ReplicaServer }

func (p peerSender) Send(ctx context.Context, to, verb string, body any) (engine.Reply, error) {
	req, err := p.r.newMessage(verb, body)
	if err != nil {
		return nil, err
	}
	cctx, cancel := context.WithTimeout(ctx, p.r.cfg.RPCTimeout)
	defer cancel()
	resp, err := p.r.node.Send(cctx, to, req)
	p.r.Stats.CoordMessages.Inc(1)
	if err != nil {
		return nil, err
	}
	return msgReply{resp}, nil
}

// handleClientRequest queues a client's demand (ClientListener role).
// Repeat submissions from the same client before a round runs are
// aggregated into one row, as one scheduling window would see them.
func (r *ReplicaServer) handleClientRequest(req transport.Message) (transport.Message, error) {
	var body RequestBody
	if err := req.DecodeBody(&body); err != nil {
		return transport.Message{}, err
	}
	if body.ClientAddr == "" || body.DemandMB <= 0 {
		return transport.Message{}, fmt.Errorf("core: bad request from %s: addr=%q demand=%g", req.From, body.ClientAddr, body.DemandMB)
	}
	r.mu.Lock()
	if existing, ok := r.pending[body.ClientAddr]; ok {
		existing.DemandMB += body.DemandMB
		for addr, l := range body.LatencySec {
			existing.LatencySec[addr] = l
		}
	} else {
		r.pending[body.ClientAddr] = &body
	}
	depth := len(r.pending)
	seq := r.roundSeq
	r.mu.Unlock()
	r.Stats.RequestsReceived.Inc(1)
	return transport.NewMessage(MsgClientRequest+".ack", r.Addr(), RequestAck{Accepted: true, Pending: depth, Round: seq})
}

// handleAllocationPull serves a client's row of the last committed round.
// This is the pull half of change-suppressed fan-out: quiet rounds push
// nothing, so a non-persistent client retrieves its (unchanged) split here.
// The row comes from the committed assignment — always ordered by the
// committed clientAddrs — not the install history, whose row order can
// predate a clean commit.
func (r *ReplicaServer) handleAllocationPull(req transport.Message) (transport.Message, error) {
	var body PullBody
	if err := req.DecodeBody(&body); err != nil {
		return transport.Message{}, err
	}
	reply := AllocationBody{Algorithm: r.cfg.Algorithm.String()}
	r.mu.Lock()
	if lg := r.lastGood; lg != nil {
		reply.Round = lg.round
		for i, addr := range lg.clientAddrs {
			if addr != body.ClientAddr {
				continue
			}
			per := make(map[string]float64, len(lg.infos))
			for j, info := range lg.infos {
				if lg.assignment[i][j] > 0 {
					per[info.Addr] = lg.assignment[i][j]
				}
			}
			reply.PerReplicaMB = per
			break
		}
	}
	r.mu.Unlock()
	return transport.NewMessage(MsgAllocationPull+".ack", r.Addr(), reply)
}

// handleReplicaInfo reports this replica's model parameters.
func (r *ReplicaServer) handleReplicaInfo(req transport.Message) (transport.Message, error) {
	rep := r.cfg.Replica
	return transport.NewMessage(MsgReplicaInfo+".ack", r.Addr(), ReplicaInfo{
		Addr:      r.Addr(),
		Price:     rep.Price,
		Alpha:     rep.Alpha,
		Beta:      rep.Beta,
		Gamma:     rep.Gamma,
		Bandwidth: rep.Bandwidth,
	})
}

// specProblem reconstructs the optimization instance a RoundSpec describes.
func specProblem(spec *RoundSpec) (*opt.Problem, error) {
	replicas := make([]model.Replica, len(spec.Replicas))
	for j, info := range spec.Replicas {
		replicas[j] = model.Replica{
			Name:      info.Addr,
			Price:     info.Price,
			Alpha:     info.Alpha,
			Beta:      info.Beta,
			Gamma:     info.Gamma,
			Bandwidth: info.Bandwidth,
			Base:      info.BaseMB,
		}
	}
	sys, err := model.NewSystem(replicas)
	if err != nil {
		return nil, err
	}
	prob := &opt.Problem{
		System:     sys,
		Demands:    spec.Demands,
		Latency:    spec.LatencySec,
		MaxLatency: spec.MaxLatencySec,
	}
	if err := prob.Validate(); err != nil {
		return nil, err
	}
	return prob, nil
}

// handleRoundStart installs a round's problem (participant side).
func (r *ReplicaServer) handleRoundStart(req transport.Message) (transport.Message, error) {
	var spec RoundSpec
	if err := req.DecodeBody(&spec); err != nil {
		return transport.Message{}, err
	}
	prob, err := specProblem(&spec)
	if err != nil {
		return transport.Message{}, err
	}
	myCol := -1
	for j, info := range spec.Replicas {
		if info.Addr == r.Addr() {
			myCol = j
			break
		}
	}
	if myCol < 0 {
		return transport.Message{}, fmt.Errorf("core: replica %s not listed in round %d", r.Addr(), spec.Round)
	}
	replicaAddrs := make([]string, len(spec.Replicas))
	for j, info := range spec.Replicas {
		replicaAddrs[j] = info.Addr
	}
	// Algorithm-specific participant state is built lazily by each server
	// half on first use (engine.ServerRound.State), so a round pays only
	// for the algorithm actually driven over it.
	st := &roundState{eng: &engine.ServerRound{
		Round:        spec.Round,
		Prob:         prob,
		Col:          myCol,
		Self:         r.Addr(),
		ReplicaAddrs: replicaAddrs,
		Warm:         spec.Warm,
		Peers:        peerSender{r},
		Par:          r.par,
	}}
	r.mu.Lock()
	r.rounds[spec.Round] = st
	r.mu.Unlock()
	return transport.NewMessage(MsgRoundStart+".ack", r.Addr(), nil)
}

// lookupRound fetches participant state.
func (r *ReplicaServer) lookupRound(round int) (*roundState, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	st, ok := r.rounds[round]
	if !ok {
		return nil, fmt.Errorf("core: replica %s has no state for round %d", r.Addr(), round)
	}
	return st, nil
}

// handleAssign installs the final serving plan — either a full column or
// a delta against an earlier round's installed plan (see AssignBody).
func (r *ReplicaServer) handleAssign(req transport.Message) (transport.Message, error) {
	var body AssignBody
	if err := req.DecodeBody(&body); err != nil {
		return transport.Message{}, err
	}
	st, err := r.lookupRound(body.Round)
	if err != nil {
		return transport.Message{}, err
	}
	var plan map[string]float64
	if body.BaseRound > 0 {
		base, err := r.lookupRound(body.BaseRound)
		if err != nil {
			return transport.Message{}, fmt.Errorf("core: delta assign round %d: %w", body.Round, err)
		}
		r.mu.Lock()
		basePlan := base.plan
		r.mu.Unlock()
		if basePlan == nil {
			return transport.Message{}, fmt.Errorf("core: delta assign round %d: round %d has no installed plan", body.Round, body.BaseRound)
		}
		plan = make(map[string]float64, len(basePlan)+len(body.Updates))
		for addr, mb := range basePlan {
			plan[addr] = mb
		}
		for addr, mb := range body.Updates {
			if mb > 0 {
				plan[addr] = mb
			} else {
				delete(plan, addr)
			}
		}
	} else {
		if len(body.Column) != len(body.ClientAddrs) {
			return transport.Message{}, fmt.Errorf("core: assign round %d: %d amounts for %d clients", body.Round, len(body.Column), len(body.ClientAddrs))
		}
		plan = make(map[string]float64, len(body.Column))
		for i, addr := range body.ClientAddrs {
			if body.Column[i] > 0 {
				plan[addr] = body.Column[i]
			}
		}
	}
	r.mu.Lock()
	st.plan = plan
	r.mu.Unlock()
	return transport.NewMessage(MsgAssign+".ack", r.Addr(), nil)
}

// Plan returns the MB this replica was assigned to serve to the given
// client in the given round (0 when none).
func (r *ReplicaServer) Plan(round int, clientAddr string) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	st, ok := r.rounds[round]
	if !ok || st.plan == nil {
		return 0
	}
	return st.plan[clientAddr]
}

// handleDownload serves the FileDownload role: synthetic payload bytes,
// BytesPerMB per requested MB.
func (r *ReplicaServer) handleDownload(req transport.Message) (transport.Message, error) {
	var body DownloadBody
	if err := req.DecodeBody(&body); err != nil {
		return transport.Message{}, err
	}
	if body.SizeMB < 0 {
		return transport.Message{}, fmt.Errorf("core: download of %g MB", body.SizeMB)
	}
	size := int(body.SizeMB * float64(r.cfg.BytesPerMB))
	payload := make([]byte, size)
	for i := range payload {
		payload[i] = byte(i)
	}
	r.Stats.DownloadsServed.Inc(1)
	r.Stats.MBServed.Inc(int64(body.SizeMB))
	return transport.NewMessage(MsgDownload+".ack", r.Addr(), DownloadReply{Payload: payload})
}
