package core

import (
	"context"
	"edr/internal/cohort"
	"edr/internal/engine"
	"edr/internal/opt"
	"errors"
	"math"
)

// errEscalateFull is the incremental path's verdict that this round needs
// a full solve: the dirty subproblem was infeasible against residual
// capacity, or the merged result failed the feasibility/KKT gate.
// runRoundOnce answers it by re-running the attempt with the incremental
// path disabled — escalation costs one extra attempt, never a wrong
// assignment.
var errEscalateFull = errors.New("core: incremental result rejected; escalating to full solve")

// incrementalPlan is one round's dirty-set work order, produced by
// planIncremental: the diff against the committed round plus the merged
// matrix scaffold the sub-solve completes.
type incrementalPlan struct {
	delta *opt.RoundDelta
	// base is the full |C|×|N| merged-assignment scaffold: clean rows
	// carry the committed row (columns permuted to this round's order,
	// rescaled by demand ratio so row sums land exactly on the new
	// demands); dirty rows are zero until the sub-solve fills them.
	base [][]float64
	// prev[i] is client i's committed row in this round's column order,
	// unrescaled (nil for clients with no history) — the reference the
	// change-suppressed notify fan-out compares against.
	prev [][]float64
	// instPrev[i] is client i's row of the *installed* assignment in this
	// round's column order — the values replicas actually hold under
	// lg.installedRound, which the delta install diffs against. Equal to
	// prev except after clean commits (which rescale without installing).
	instPrev [][]float64
	// departed lists committed clients absent from this round: the delta
	// install must remove them from the base plan.
	departed []string
	// frozen[j] is the clean rows' load on column j; residual[j] is the
	// bandwidth left for the dirty subproblem (floored at a hair above
	// zero so the sub-instance always validates).
	frozen, residual []float64
	// baseGap is the committed assignment's own KKT gap on the committed
	// problem: the stationarity quality a full solve actually delivers at
	// the configured tolerance, and so the yardstick the incremental
	// result is gated against (an absolute gate would reject merged
	// results no worse than the full solve it escalates to).
	baseGap float64
	// lg is the committed round the plan diffed against.
	lg *lastGoodRound
}

// planIncremental diffs this round against the committed one. It returns
// nil — full solve, no escalation accounting — when there is no usable
// history or the replica roster changed (a membership epoch change shifts
// every column and cohort key, so incremental state is reset wholesale).
func (r *ReplicaServer) planIncremental(requests []*RequestBody, infos []ReplicaInfo, prob *opt.Problem) *incrementalPlan {
	r.mu.Lock()
	lg := r.lastGood
	r.mu.Unlock()
	if lg == nil || lg.prob == nil {
		return nil
	}
	if len(lg.infos) != len(infos) {
		r.registry.Reset()
		return nil
	}
	colOf := make(map[string]int, len(lg.infos))
	for j, info := range lg.infos {
		colOf[info.Addr] = j
	}
	colMap := make([]int, len(infos))
	for j, info := range infos {
		oj, ok := colOf[info.Addr]
		if !ok {
			r.registry.Reset()
			return nil
		}
		colMap[j] = oj
	}
	rowOf := make(map[string]int, len(lg.clientAddrs))
	for i, addr := range lg.clientAddrs {
		rowOf[addr] = i
	}
	rowMap := make([]int, len(requests))
	for i, req := range requests {
		if row, ok := rowOf[req.ClientAddr]; ok {
			rowMap[i] = row
		} else {
			rowMap[i] = -1
		}
	}
	delta, err := opt.DiffRounds(lg.prob, prob, rowMap, colMap, r.cfg.DeltaEps)
	if err != nil {
		return nil
	}
	if 2*len(delta.DirtyClients) > len(requests) {
		// A dirty majority: the sub-instance is most of the full instance,
		// so the incremental machinery can only add overhead (and its
		// frozen-base decomposition rests on a thin clean set, so the gate
		// would likely escalate anyway). Solve in full, as a plan — not an
		// escalation.
		return nil
	}

	n := len(infos)
	plan := &incrementalPlan{
		delta:    delta,
		base:     opt.NewMatrix(len(requests), n),
		prev:     make([][]float64, len(requests)),
		frozen:   make([]float64, n),
		residual: make([]float64, n),
		lg:       lg,
	}
	haveInstall := lg.installedRound > 0 && len(lg.installed) == len(lg.clientAddrs)
	if haveInstall {
		plan.instPrev = make([][]float64, len(requests))
	}
	for i := range requests {
		pr := rowMap[i]
		if pr < 0 {
			continue
		}
		row := make([]float64, n)
		for j := 0; j < n; j++ {
			row[j] = lg.assignment[pr][colMap[j]]
		}
		plan.prev[i] = row
		if haveInstall {
			irow := make([]float64, n)
			for j := 0; j < n; j++ {
				irow[j] = lg.installed[pr][colMap[j]]
			}
			plan.instPrev[i] = irow
		}
	}
	if len(lg.clientAddrs) != len(requests) {
		here := make(map[string]bool, len(requests))
		for _, req := range requests {
			here[req.ClientAddr] = true
		}
		for _, addr := range lg.clientAddrs {
			if !here[addr] {
				plan.departed = append(plan.departed, addr)
			}
		}
	}
	for _, i := range delta.CleanClients {
		dOld := lg.prob.Demands[rowMap[i]]
		if dOld <= 0 {
			// A clean client with zero historical demand cannot be
			// rescaled onto its new demand; admission guarantees positive
			// demands, so treat the inconsistency as no-history.
			return nil
		}
		// Rescale the committed row by the (within-epsilon) demand ratio:
		// clean row sums then equal the new demands exactly, so the merged
		// matrix conserves demand by construction.
		ratio := prob.Demands[i] / dOld
		for j := 0; j < n; j++ {
			v := plan.prev[i][j] * ratio
			plan.base[i][j] = v
			plan.frozen[j] += v
		}
	}
	for j, info := range infos {
		res := info.Bandwidth - plan.frozen[j]
		if floor := 1e-12 * math.Max(1, info.Bandwidth); res < floor {
			// Clean rows already hold (essentially) the whole column; keep
			// a sliver so the sub-instance validates. If a dirty client
			// truly needs this column, the feasibility check escalates.
			res = floor
		}
		plan.residual[j] = res
	}
	plan.baseGap = opt.KKTGap(lg.prob, lg.assignment)
	return plan
}

// runIncremental executes the dirty-subset round: solve the dirty clients
// against residual capacity with clean column loads frozen into the
// energy model, merge with the committed rows, gate the merged result,
// and fan out only what changed. spec/prob are the round's full
// per-client instance; the returned report is full-roster like any other
// round's.
func (r *ReplicaServer) runIncremental(ctx context.Context, requests []*RequestBody, infos []ReplicaInfo, spec *RoundSpec, prob *opt.Problem, plan *incrementalPlan, round, restarts int) (*RoundReport, error) {
	if !plan.delta.Dirty() {
		return r.commitClean(spec, prob, infos, plan, restarts)
	}
	dirty := plan.delta.DirtyClients

	// The dirty subproblem: rows are the dirty clients; columns keep this
	// round's order but carry residual capacity and the frozen base load,
	// so every solver optimizes the true global objective restricted to
	// the dirty rows (the frozen part contributes a constant).
	subInfos := make([]ReplicaInfo, len(infos))
	for j, info := range infos {
		info.Bandwidth = plan.residual[j]
		info.BaseMB = plan.frozen[j]
		subInfos[j] = info
	}
	subSpec := &RoundSpec{
		Round:         round,
		Replicas:      subInfos,
		MaxLatencySec: spec.MaxLatencySec,
	}
	subRequests := make([]*RequestBody, len(dirty))
	for idx, i := range dirty {
		subRequests[idx] = requests[i]
		subSpec.ClientAddrs = append(subSpec.ClientAddrs, spec.ClientAddrs[i])
		subSpec.Demands = append(subSpec.Demands, spec.Demands[i])
		subSpec.LatencySec = append(subSpec.LatencySec, spec.LatencySec[i])
	}
	subProb, err := specProblem(subSpec)
	if err != nil {
		return nil, errEscalateFull
	}
	// Cohort the subproblem like any round; the registry keeps cohort
	// identity stable across rounds even though the dirty subset varies.
	solveSpec, solveProb := subSpec, subProb
	var grouping *cohort.Grouping
	if min := r.cfg.CohortMinClients; min > 0 && len(dirty) >= min {
		g, _, gerr := r.registry.Group(subProb, cohort.Options{
			Quantum:    r.cfg.CohortQuantumSec,
			MaxCohorts: r.cfg.CohortMax,
		})
		if gerr == nil && g.K() < subProb.C() {
			grouping = g
			reduced := g.Reduced()
			rspec := &RoundSpec{
				Round:         round,
				Replicas:      subInfos,
				MaxLatencySec: spec.MaxLatencySec,
				RawClients:    len(dirty),
				Demands:       reduced.Demands,
				LatencySec:    reduced.Latency,
			}
			rspec.ClientAddrs = make([]string, g.K())
			for k := range rspec.ClientAddrs {
				rspec.ClientAddrs[k] = subSpec.ClientAddrs[g.Members(k)[0]]
			}
			solveSpec, solveProb = rspec, reduced
		}
	}
	// Feasibility runs on the (possibly cohort-reduced) sub-instance, as
	// the full path checks its own solve problem: if the clean majority
	// pinned the cheap columns and the dirty demand no longer fits the
	// residual capacity, re-balance everything.
	if err := opt.CheckFeasible(solveProb); err != nil {
		return nil, errEscalateFull
	}

	// Warm start the dirty rows from their committed values (aligned by
	// address inside warmStart), renormalized over residual capacity.
	if !r.cfg.ColdStart {
		warm, _ := r.warmStart(subRequests, subInfos, subProb)
		if grouping != nil && warm != nil {
			warm = grouping.AggregateRows(warm)
		}
		solveSpec.Warm = warm
	}

	// Round state on every member: the final install below needs each
	// replica to hold state for this round id, and MsgRoundStart is what
	// creates it. No iteration traffic follows — see below.
	if err := engine.FanOut(ctx, len(subInfos), func(ctx context.Context, i int) error {
		_, err := r.sendReplica(ctx, subInfos[i].Addr, MsgRoundStart, solveSpec)
		return err
	}); err != nil {
		return nil, err
	}
	replicaAddrs := make([]string, len(infos))
	for j, info := range infos {
		replicaAddrs[j] = info.Addr
	}

	// Solve the reduced dirty sub-instance centrally with the
	// projected-gradient reference method instead of driving a distributed
	// sub-round: the initiator already holds every parameter of the
	// sub-instance (it built it), the instance is small — O(dirty) rows,
	// and a handful of cohorts once reduced — and a distributed solve
	// would pay per-iteration fan-out latency on a problem that no longer
	// needs distribution. The full-problem gate below vets the result
	// exactly as it would a distributed one.
	x0 := solveSpec.Warm
	if x0 == nil {
		x0 = opt.NewMatrix(solveProb.C(), solveProb.N())
	}
	res, err := opt.ProjectedGradient(solveProb, x0, opt.PGDOptions{})
	if err != nil {
		return nil, errEscalateFull
	}
	subX, iterations := res.X, res.Iterations
	if grouping != nil {
		x, derr := grouping.Disaggregate(subX)
		if derr != nil {
			return nil, errEscalateFull
		}
		subX = x
	}

	// Merge: dirty rows replace their scaffold zeros; clean rows are the
	// rescaled committed assignment.
	merged := plan.base
	for idx, i := range dirty {
		copy(merged[i], subX[idx])
	}

	// Gate the merged full-problem result: exact feasibility (clean rows
	// conserve demand by the rescale, columns by frozen + residual ≤ B)
	// and a first-order stationarity spot-check. The stationarity bar is
	// relative to the committed assignment's own KKT gap — the quality a
	// full solve actually delivers at the configured tolerance — with an
	// absolute floor for committed rounds that happened to land near the
	// exact optimum. Either gate failing means the frozen-base
	// decomposition was a bad approximation this round: redo it as a full
	// solve rather than install a doubtful plan.
	scale := 1.0
	for _, d := range prob.Demands {
		scale = math.Max(scale, d)
	}
	for _, info := range infos {
		scale = math.Max(scale, info.Bandwidth)
	}
	if viol := prob.Violation(merged); viol > 1e-6*scale {
		return nil, errEscalateFull
	}
	objective := prob.Cost(merged)
	gapLimit := math.Max(2*plan.baseGap, 0.10*math.Max(math.Abs(objective), 1))
	if gap := opt.KKTGap(prob, merged); gap > gapLimit {
		return nil, errEscalateFull
	}

	// Install on every replica (participants hold this round's state from
	// the sub-spec install), then notify only clients whose row actually
	// moved. When the committed round's install is addressable, each
	// replica gets a delta against it — O(dirty) entries instead of the
	// full |C| column — otherwise the full column.
	if err := engine.FanOut(ctx, len(infos), func(ctx context.Context, j int) error {
		var body AssignBody
		if plan.instPrev != nil {
			updates := make(map[string]float64)
			for i, addr := range spec.ClientAddrs {
				ip := plan.instPrev[i]
				if ip == nil || merged[i][j] != ip[j] {
					updates[addr] = merged[i][j]
				}
			}
			for _, addr := range plan.departed {
				updates[addr] = 0
			}
			body = AssignBody{Round: round, BaseRound: plan.lg.installedRound, Updates: updates}
		} else {
			col := make([]float64, len(spec.ClientAddrs))
			for i := range spec.ClientAddrs {
				col[i] = merged[i][j]
			}
			body = AssignBody{Round: round, Column: col, ClientAddrs: spec.ClientAddrs}
		}
		_, err := r.sendReplica(ctx, infos[j].Addr, MsgAssign, body)
		return err
	}); err != nil {
		return nil, err
	}
	suppressed := r.notifyMoved(ctx, round, spec.ClientAddrs, infos, merged, plan.prev, prob.Demands, iterations)

	// Duals: clean clients keep their committed μ; dirty clients get a
	// fresh first-order estimate — the highest congestion price among the
	// columns now serving them — so the next warm start sees current
	// prices for everyone (the centralized sub-solve reports no duals of
	// its own). Skipped entirely when the committed round carried no
	// duals: a partial overlay would hand the next warm start zeros for
	// every clean client.
	mus := plan.lg.mus
	if plan.lg.mus != nil {
		price := make([]float64, len(infos))
		cols := opt.ColSums(merged)
		for j := range price {
			price[j] = prob.System.Replicas[j].MarginalCost(cols[j])
		}
		muOf := func(i int) float64 {
			mu := 0.0
			for j, v := range merged[i] {
				if v > 1e-9*math.Max(1, prob.Demands[i]) && price[j] > mu {
					mu = price[j]
				}
			}
			return mu
		}
		mus = make(map[string]float64, len(spec.ClientAddrs))
		for addr, v := range plan.lg.mus {
			mus[addr] = v
		}
		for _, i := range dirty {
			mus[spec.ClientAddrs[i]] = muOf(i)
		}
		if grouping != nil && r.cfg.CohortDuals {
			duals := make([]float64, grouping.K())
			for k := range duals {
				duals[k] = muOf(dirty[grouping.Members(k)[0]])
			}
			r.fanOutCohortDuals(ctx, round, subSpec.ClientAddrs, grouping, duals)
		}
	}

	r.mu.Lock()
	r.lastGood = &lastGoodRound{
		round:          round,
		infos:          infos,
		clientAddrs:    spec.ClientAddrs,
		assignment:     merged,
		mus:            mus,
		prob:           prob,
		objective:      objective,
		installed:      merged,
		installedRound: round,
	}
	for _, info := range infos {
		r.infoCache[info.Addr] = info
	}
	r.mu.Unlock()
	r.Stats.RoundsIncremental.Inc(1)

	report := &RoundReport{
		Round:              round,
		Algorithm:          r.cfg.Algorithm.String(),
		Iterations:         iterations,
		Restarts:           restarts,
		ReplicaAddrs:       replicaAddrs,
		ClientAddrs:        spec.ClientAddrs,
		Assignment:         merged,
		Objective:          objective,
		WarmStarted:        solveSpec.Warm != nil,
		Incremental:        true,
		DirtyClients:       len(dirty),
		SuppressedNotifies: suppressed,
	}
	if grouping != nil {
		report.Cohorts = grouping.K()
		report.CohortRatio = grouping.Ratio()
	}
	return report, nil
}

// commitClean finishes a round whose dirty set is empty: the committed
// assignment (rescaled within epsilon) is already optimal for this
// round's problem, so it is re-committed with no round-start, install, or
// notify fan-out at all — the replicas keep serving their installed
// plans, and every client's notify is suppressed. Cost: the replica-info
// fan-out plus an O(|C|·|N|) diff.
func (r *ReplicaServer) commitClean(spec *RoundSpec, prob *opt.Problem, infos []ReplicaInfo, plan *incrementalPlan, restarts int) (*RoundReport, error) {
	merged := plan.base
	objective := prob.Cost(merged)
	r.mu.Lock()
	r.lastGood = &lastGoodRound{
		round:       spec.Round,
		infos:       infos,
		clientAddrs: spec.ClientAddrs,
		assignment:  merged,
		mus:         plan.lg.mus,
		prob:        prob,
		objective:   objective,
		// The fleet still serves the last installed plan — nothing was
		// fanned out this round — so the install reference carries over.
		installed:      plan.lg.installed,
		installedRound: plan.lg.installedRound,
	}
	for _, info := range infos {
		r.infoCache[info.Addr] = info
	}
	r.mu.Unlock()
	r.Stats.RoundsIncremental.Inc(1)
	replicaAddrs := make([]string, len(infos))
	for j, info := range infos {
		replicaAddrs[j] = info.Addr
	}
	return &RoundReport{
		Round:              spec.Round,
		Algorithm:          r.cfg.Algorithm.String(),
		Iterations:         0,
		Restarts:           restarts,
		ReplicaAddrs:       replicaAddrs,
		ClientAddrs:        spec.ClientAddrs,
		Assignment:         merged,
		Objective:          objective,
		Incremental:        true,
		DirtyClients:       0,
		SuppressedNotifies: len(spec.ClientAddrs),
	}, nil
}

// notifyMoved is the change-suppressed allocation fan-out: a client is
// notified only when some entry of its row moved beyond DeltaEps of its
// demand against what it was last told (clients with no committed row are
// always notified). Returns the number of suppressed clients. Failures
// never abort a round, as with the other notify paths.
func (r *ReplicaServer) notifyMoved(ctx context.Context, round int, clientAddrs []string, infos []ReplicaInfo, x [][]float64, prev [][]float64, demands []float64, iterations int) int {
	moved := make([]int, 0, len(clientAddrs))
	for i := range clientAddrs {
		tol := r.cfg.DeltaEps * math.Max(demands[i], 1e-12)
		p := prev[i]
		notify := p == nil
		if !notify {
			for j := range x[i] {
				if math.Abs(x[i][j]-p[j]) > tol {
					notify = true
					break
				}
			}
		}
		if notify {
			moved = append(moved, i)
		}
	}
	_ = engine.FanOut(ctx, len(moved), func(ctx context.Context, t int) error {
		i := moved[t]
		per := make(map[string]float64, len(infos))
		for j, info := range infos {
			if x[i][j] > 0 {
				per[info.Addr] = x[i][j]
			}
		}
		body := AllocationBody{
			Round:        round,
			PerReplicaMB: per,
			Algorithm:    r.cfg.Algorithm.String(),
			Iterations:   iterations,
		}
		_, _ = r.sendRetry(ctx, clientAddrs[i], MsgAllocation, body)
		return nil
	})
	return len(clientAddrs) - len(moved)
}
