package core

import (
	"fmt"
	"strings"
	"time"

	"edr/internal/engine"
	"edr/internal/model"
	"edr/internal/telemetry"
)

// Algorithm names the distributed optimization method a replica fleet
// runs during scheduling rounds. Values resolve through the solver-engine
// registry (internal/engine), so a new method registers itself and becomes
// selectable here without this package changing. The zero value selects
// LDDM.
type Algorithm string

const (
	// LDDM is the Lagrangian dual decomposition method (Algorithm 2).
	LDDM Algorithm = "LDDM"
	// CDPSM is the consensus-based distributed projected subgradient
	// method (Algorithm 1).
	CDPSM Algorithm = "CDPSM"
	// ADMM is the sharing-form alternating direction method of
	// multipliers — this module's extension algorithm (internal/admm):
	// LDDM-grade O(|C|·|N|) communication with proximal damping.
	ADMM Algorithm = "ADMM"
)

// String returns the paper's name for the algorithm.
func (a Algorithm) String() string { return string(a) }

// ParseAlgorithm resolves a name (case-insensitive) against the engine
// registry.
func ParseAlgorithm(s string) (Algorithm, error) {
	name := strings.ToUpper(s)
	if _, ok := engine.Lookup(name); ok {
		return Algorithm(name), nil
	}
	return "", fmt.Errorf("core: unknown algorithm %q (want one of %s)", s, strings.Join(engine.Names(), ", "))
}

// ReplicaConfig parameterizes one replica server.
type ReplicaConfig struct {
	// Replica carries the energy-model parameters this node reports to
	// round initiators (price, α, β, γ, bandwidth).
	Replica model.Replica
	// Algorithm selects the registered method for rounds this replica
	// initiates; "" means LDDM.
	Algorithm Algorithm
	// MaxLatencySec is T for rounds this replica initiates; 0 means the
	// paper default 1.8 ms.
	MaxLatencySec float64
	// MaxIters bounds distributed iterations per round; 0 means 200 (live
	// rounds favor latency; the in-process engines run longer). -1 means
	// zero iterations: the initiator skips the distributed loop and just
	// projects a feasible assignment.
	MaxIters int
	// Tol is the round convergence tolerance; 0 means 0.02 relative
	// demand residual for LDDM, 1e-4 movement for CDPSM.
	Tol float64
	// RPCTimeout bounds each coordination message; 0 means 3s.
	RPCTimeout time.Duration
	// BytesPerMB scales download payloads (synthetic content);
	// 0 means 1024 (1 KiB per MB) so tests and demos stay fast.
	// Set to 1<<20 for full-size transfers.
	BytesPerMB int
	// RoundRetries bounds automatic round restarts after member failures;
	// 0 means 3, -1 means no restarts (a failed round goes straight to
	// the degraded fallback or the error path).
	RoundRetries int
	// SendRetries is how many times a coordination RPC is retried (with
	// exponential backoff and jitter) before the failure is attributed to
	// the destination; 0 means 2, -1 means no retries. Retries are safe:
	// both fabrics fail sends before the destination handler runs, so a
	// failed attempt was never delivered.
	SendRetries int
	// RetryBase is the backoff before the first RPC retry; it doubles per
	// attempt with ±50% jitter. 0 means 50ms.
	RetryBase time.Duration
	// Parallelism fans this node's solver kernels (local projections,
	// recovery polish) across cores: > 0 pins the worker count, 0 sizes
	// the pool from GOMAXPROCS, -1 forces serial execution. Parallel and
	// serial rounds compute bit-identical results.
	Parallelism int
	// ColdStart disables warm-started rounds: by default a round whose
	// initiator holds a last-known-good assignment starts the solvers
	// from that split renormalized over the current roster
	// (opt.Renormalize), which after an epoch change (join, drain,
	// departure) converges in far fewer iterations than the cold uniform
	// start. Set ColdStart to pin every round to the cold start — for
	// A/B measurement or bit-exact reproduction of the paper's runs.
	ColdStart bool
	// CohortMinClients, when positive, enables cohort aggregation
	// (internal/cohort) for rounds this replica initiates once the pending
	// request count reaches the threshold: clients sharing a feasibility
	// mask and quantized latency vector are merged into virtual clients,
	// the distributed round runs at cohort granularity, and the result is
	// disaggregated back to per-client allocations (demand conserved
	// exactly, feasibility by construction). 0 disables cohorting; every
	// round then solves at raw client granularity.
	CohortMinClients int
	// CohortQuantumSec is the latency quantization step (seconds) for
	// cohort keying; 0 means MaxLatencySec/4.
	CohortQuantumSec float64
	// CohortMax, when positive, bounds the cohort count by coarsening the
	// quantum until the grouping fits; 0 leaves the count unbounded.
	CohortMax int
	// Incremental enables cross-round incremental re-optimization for
	// rounds this replica initiates: the incoming round is diffed against
	// the last committed one (opt.DiffRounds), clean clients keep their
	// committed rows (frozen into per-replica base loads), and the solvers
	// run only over the dirty subset against residual capacity. A cheap
	// full-problem feasibility/KKT gate guards every incremental result
	// and escalates to a full solve on violation, so the mode can be
	// slower on churn-heavy rounds but never wrong. Rounds with an empty
	// dirty set commit the previous assignment without any fan-out.
	Incremental bool
	// DeltaEps is the relative threshold for the incremental diff and for
	// change-suppressed client notifies: a client is clean while its
	// demand moved by at most DeltaEps relative, and is not re-notified
	// while its allocation row moved by at most DeltaEps of its demand.
	// 0 means 1e-3; negative pins exact matching (any change is dirty).
	DeltaEps float64
	// CohortDuals opts cohorted rounds into fanning the final cohort dual
	// out to every cohort member via client.duals.cohort, instead of only
	// the representative member seeing μ through the iteration protocol.
	// Members that do not know the verb receive a legacy μ-update that
	// reproduces the same value.
	CohortDuals bool
	// WireJSON forces JSON bodies for every RPC this node initiates,
	// disabling the compact binary codec on the wire. Peers always mirror
	// a request's codec in their replies, so a JSON-only node
	// interoperates with binary-capable peers either way; the knob exists
	// for wire compatibility with pre-codec builds and for debugging.
	WireJSON bool
	// Telemetry, when non-nil, receives runtime events (round outcomes,
	// RPC retries, ring suspicion — see internal/telemetry). Nil disables
	// observability at zero cost: every would-be publish is a single nil
	// check, and per-iteration trajectories are not recorded unless the
	// bus has subscribers.
	Telemetry *telemetry.Bus
}

func (c *ReplicaConfig) withDefaults() ReplicaConfig {
	out := *c
	if out.Algorithm == "" {
		out.Algorithm = LDDM
	}
	if out.MaxLatencySec <= 0 {
		out.MaxLatencySec = 0.0018
	}
	// For the integer knobs, 0 selects the default and -1 expresses the
	// literal zero the zero-value would otherwise swallow.
	if out.MaxIters < 0 {
		out.MaxIters = 0
	} else if out.MaxIters == 0 {
		out.MaxIters = 200
	}
	if out.RPCTimeout <= 0 {
		out.RPCTimeout = 3 * time.Second
	}
	if out.BytesPerMB <= 0 {
		out.BytesPerMB = 1024
	}
	if out.RoundRetries < 0 {
		out.RoundRetries = 0
	} else if out.RoundRetries == 0 {
		out.RoundRetries = 3
	}
	if out.SendRetries < 0 {
		out.SendRetries = 0
	} else if out.SendRetries == 0 {
		out.SendRetries = 2
	}
	if out.RetryBase <= 0 {
		out.RetryBase = 50 * time.Millisecond
	}
	if out.DeltaEps == 0 {
		out.DeltaEps = 1e-3
	} else if out.DeltaEps < 0 {
		out.DeltaEps = 0
	}
	return out
}
