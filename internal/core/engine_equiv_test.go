package core

import (
	"context"
	"math"
	"math/rand/v2"
	"testing"

	"edr/internal/admm"
	"edr/internal/cdpsm"
	"edr/internal/lddm"
	"edr/internal/solver"
)

// The engine-driven distributed rounds must reproduce the in-process
// solvers: same algorithm, same instance, matched iteration budgets.
// Per-replica loads (column sums) and the objective are the comparable
// quantities — the within-column split across clients is not unique, since
// the energy cost depends only on each replica's total load.
func TestEngineRoundsMatchInProcessSolvers(t *testing.T) {
	// Seeded instance: deterministic demands shared by every subtest.
	rng := rand.New(rand.NewPCG(7, 2026))
	prices := []float64{1, 8, 4}
	demands := make([]float64, 4)
	total := 0.0
	for i := range demands {
		demands[i] = 15 + 25*rng.Float64()
		total += demands[i]
	}

	cases := []struct {
		alg      Algorithm
		maxIters int
		tol      float64
		solver   solver.Solver
		// loadTol is the per-replica load gap allowed between the live
		// round and the in-process reference, as a fraction of total
		// demand: the two runs stop at slightly different iterates (the
		// in-process solvers carry stricter convergence gates).
		loadTol float64
		costTol float64
	}{
		{
			alg: LDDM, maxIters: 800, tol: 0.005,
			solver:  &lddm.Solver{MaxIters: 800, Tol: 0.005},
			loadTol: 0.05, costTol: 0.05,
		},
		{
			alg: ADMM, maxIters: 300, tol: 1e-4,
			solver:  &admm.Solver{MaxIters: 300, Tol: 1e-4},
			loadTol: 0.02, costTol: 0.02,
		},
		{
			alg: CDPSM, maxIters: 400, tol: 1e-4,
			solver:  &cdpsm.Solver{MaxIters: 400, Tol: 1e-4},
			loadTol: 0.02, costTol: 0.02,
		},
	}
	for _, tc := range cases {
		t.Run(string(tc.alg), func(t *testing.T) {
			f := newFleet(t, prices, len(demands), tc.alg)
			for _, rs := range f.replicas {
				rs.cfg.MaxIters = tc.maxIters
				rs.cfg.Tol = tc.tol
			}
			ctx := context.Background()
			demandOf := map[string]float64{}
			for i, cl := range f.clients {
				demandOf[cl.Addr()] = demands[i]
				if err := cl.Submit(ctx, f.replicas[0].Addr(), demands[i], f.uniformLatencies()); err != nil {
					t.Fatal(err)
				}
			}
			report, err := f.replicas[0].RunRound(ctx)
			if err != nil {
				t.Fatal(err)
			}
			prob := rebuildProblem(t, prices, report, demandOf)
			if v := prob.Violation(report.Assignment); v > 1e-4 {
				t.Fatalf("live assignment infeasible by %g", v)
			}
			ref, err := tc.solver.Solve(prob)
			if err != nil {
				t.Fatal(err)
			}

			// Column order: the report's replicas may be permuted relative
			// to the rebuilt problem's creation order; rebuildProblem keeps
			// the report's order, so the two assignments line up directly.
			liveLoads := colSums(report.Assignment)
			refLoads := colSums(ref.Assignment)
			for j := range liveLoads {
				if gap := math.Abs(liveLoads[j] - refLoads[j]); gap > tc.loadTol*total {
					t.Fatalf("replica %s load: live %.3f vs in-process %.3f (gap %.3f > %.3f)",
						report.ReplicaAddrs[j], liveLoads[j], refLoads[j], gap, tc.loadTol*total)
				}
			}
			liveCost := prob.Cost(report.Assignment)
			if gap := math.Abs(liveCost-ref.Objective) / ref.Objective; gap > tc.costTol {
				t.Fatalf("objective: live %.4f vs in-process %.4f (gap %.2f%%)",
					liveCost, ref.Objective, 100*gap)
			}
		})
	}
}

func colSums(m [][]float64) []float64 {
	if len(m) == 0 {
		return nil
	}
	out := make([]float64, len(m[0]))
	for _, row := range m {
		for j, v := range row {
			out[j] += v
		}
	}
	return out
}
