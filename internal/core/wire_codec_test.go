package core

import (
	"context"
	"math"
	"testing"

	"edr/internal/model"
	"edr/internal/opt"
	"edr/internal/transport"
)

// newFleetCfg is newFleet with a per-replica config hook, for tests that
// exercise the wire-codec and parallelism knobs.
func newFleetCfg(t *testing.T, prices []float64, nClients int, alg Algorithm, mutate func(i int, cfg *ReplicaConfig)) *fleet {
	t.Helper()
	f := &fleet{net: transport.NewInProcNetwork()}
	names := make([]string, len(prices))
	for i := range prices {
		names[i] = replicaName(i)
	}
	for i, price := range prices {
		cfg := ReplicaConfig{
			Replica:   model.NewReplica(replicaName(i), price),
			Algorithm: alg,
		}
		if mutate != nil {
			mutate(i, &cfg)
		}
		rs, err := NewReplicaServer(f.net, replicaName(i), names, cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { rs.Close() })
		f.replicas = append(f.replicas, rs)
	}
	for i := 0; i < nClients; i++ {
		cl, err := NewClient(f.net, clientName(i))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { cl.Close() })
		f.clients = append(f.clients, cl)
	}
	return f
}

// runOneRound submits one request per client and drives a round from
// replica 0, returning the report after checking total served bytes.
func runOneRound(t *testing.T, f *fleet) *RoundReport {
	t.Helper()
	ctx := context.Background()
	demands := []float64{30, 20, 25}[:len(f.clients)]
	want := 0.0
	for i, cl := range f.clients {
		if err := cl.Submit(ctx, f.replicas[0].Addr(), demands[i], f.uniformLatencies()); err != nil {
			t.Fatal(err)
		}
		want += demands[i]
	}
	report, err := f.replicas[0].RunRound(ctx)
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for _, r := range opt.RowSums(report.Assignment) {
		total += r
	}
	if math.Abs(total-want) > 0.1 {
		t.Fatalf("total served = %g, want %g", total, want)
	}
	return report
}

// A JSON-only node must interoperate with binary-capable peers: replies
// mirror the request codec, so the WireJSON initiator only ever sees JSON
// bodies while its peers keep talking binary among themselves. CDPSM is
// the matrix-heavy verb set, so it covers the codec-bearing exchanges.
func TestRoundJSONOnlyInitiatorInteroperates(t *testing.T) {
	f := newFleetCfg(t, []float64{1, 10, 5}, 3, CDPSM, func(i int, cfg *ReplicaConfig) {
		if i == 0 {
			cfg.WireJSON = true
		}
	})
	report := runOneRound(t, f)
	if report.Algorithm != "CDPSM" {
		t.Fatalf("algorithm = %q", report.Algorithm)
	}
}

// An all-JSON fleet exercises the pre-codec wire format end to end — the
// compatibility mode -wire-json promises.
func TestRoundAllJSONWire(t *testing.T) {
	for _, alg := range []Algorithm{LDDM, CDPSM, ADMM} {
		t.Run(alg.String(), func(t *testing.T) {
			f := newFleetCfg(t, []float64{1, 10, 5}, 3, alg, func(i int, cfg *ReplicaConfig) {
				cfg.WireJSON = true
			})
			runOneRound(t, f)
		})
	}
}

// A fleet with explicit solver parallelism runs live rounds through the
// parallel kernels; under the CI -race step this doubles as the data-race
// check on the fan-out paths.
func TestRoundParallelKernels(t *testing.T) {
	for _, alg := range []Algorithm{LDDM, CDPSM, ADMM} {
		t.Run(alg.String(), func(t *testing.T) {
			f := newFleetCfg(t, []float64{1, 10, 5}, 3, alg, func(i int, cfg *ReplicaConfig) {
				cfg.Parallelism = 8
			})
			runOneRound(t, f)
		})
	}
}
