package core

import (
	"context"
	"math"
	"testing"
	"time"

	"edr/internal/model"
	"edr/internal/opt"
	"edr/internal/transport"
)

// fleet is a test deployment: replicas + clients on one fabric.
type fleet struct {
	net      *transport.InProcNetwork
	replicas []*ReplicaServer
	clients  []*Client
}

// newFleet builds nReplicas with the given prices and nClients on an
// in-process fabric. Replica i is named "replica<i+1>", client i
// "client<i+1>".
func newFleet(t *testing.T, prices []float64, nClients int, alg Algorithm) *fleet {
	t.Helper()
	f := &fleet{net: transport.NewInProcNetwork()}
	names := make([]string, len(prices))
	for i := range prices {
		names[i] = replicaName(i)
	}
	for i, price := range prices {
		cfg := ReplicaConfig{
			Replica:   model.NewReplica(replicaName(i), price),
			Algorithm: alg,
		}
		rs, err := NewReplicaServer(f.net, replicaName(i), names, cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { rs.Close() })
		f.replicas = append(f.replicas, rs)
	}
	for i := 0; i < nClients; i++ {
		cl, err := NewClient(f.net, clientName(i))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { cl.Close() })
		f.clients = append(f.clients, cl)
	}
	return f
}

func replicaName(i int) string { return "replica" + string(rune('1'+i)) }
func clientName(i int) string  { return "client" + string(rune('1'+i)) }

// uniformLatencies gives every replica a feasible 0.5 ms latency.
func (f *fleet) uniformLatencies() map[string]float64 {
	m := make(map[string]float64, len(f.replicas))
	for _, r := range f.replicas {
		m[r.Addr()] = 0.0005
	}
	return m
}

func TestAlgorithmString(t *testing.T) {
	if LDDM.String() != "LDDM" || CDPSM.String() != "CDPSM" || ADMM.String() != "ADMM" {
		t.Fatalf("names: %v %v %v", LDDM, CDPSM, ADMM)
	}
	if _, err := ParseAlgorithm("bogus"); err == nil {
		t.Fatal("unregistered algorithm accepted")
	}
}

func TestParseAlgorithm(t *testing.T) {
	for s, want := range map[string]Algorithm{"LDDM": LDDM, "lddm": LDDM, "CDPSM": CDPSM, "cdpsm": CDPSM, "ADMM": ADMM, "admm": ADMM} {
		got, err := ParseAlgorithm(s)
		if err != nil || got != want {
			t.Fatalf("ParseAlgorithm(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseAlgorithm("nope"); err == nil {
		t.Fatal("bad name accepted")
	}
}

func TestRoundLDDMEndToEnd(t *testing.T) {
	f := newFleet(t, []float64{1, 10, 5}, 3, LDDM)
	ctx := context.Background()
	demands := []float64{30, 20, 25}
	for i, cl := range f.clients {
		if err := cl.Submit(ctx, f.replicas[0].Addr(), demands[i], f.uniformLatencies()); err != nil {
			t.Fatal(err)
		}
	}
	if got := f.replicas[0].PendingRequests(); got != 3 {
		t.Fatalf("pending = %d", got)
	}
	report, err := f.replicas[0].RunRound(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if report.Algorithm != "LDDM" {
		t.Fatalf("algorithm = %q", report.Algorithm)
	}
	if f.replicas[0].PendingRequests() != 0 {
		t.Fatal("pending not drained")
	}
	// The assignment satisfies demands and prefers the cheap replica.
	rows := opt.RowSums(report.Assignment)
	for i := range rows {
		// Row order follows the report's ClientAddrs, not submit order.
		var want float64
		for j, addr := range report.ClientAddrs {
			if addr == f.clients[i].Addr() {
				want = demands[i]
				_ = j
			}
		}
		_ = want
	}
	total := 0.0
	for _, r := range rows {
		total += r
	}
	if math.Abs(total-75) > 0.1 {
		t.Fatalf("total served = %g, want 75", total)
	}
	loads := opt.ColSums(report.Assignment)
	cheapCol := -1
	for j, addr := range report.ReplicaAddrs {
		if addr == f.replicas[0].Addr() {
			cheapCol = j
		}
	}
	for j := range loads {
		if j != cheapCol && loads[cheapCol] < loads[j] {
			t.Fatalf("cheap replica load %g below replica %d load %g", loads[cheapCol], j, loads[j])
		}
	}
	// Clients received allocations; downloads work.
	for _, cl := range f.clients {
		wctx, cancel := context.WithTimeout(ctx, time.Second)
		alloc, err := cl.WaitAllocation(wctx)
		cancel()
		if err != nil {
			t.Fatal(err)
		}
		if alloc.Algorithm != "LDDM" || alloc.Iterations <= 0 {
			t.Fatalf("alloc meta = %+v", alloc)
		}
		n, err := cl.Download(ctx, alloc)
		if err != nil {
			t.Fatal(err)
		}
		if n <= 0 {
			t.Fatal("downloaded zero bytes")
		}
	}
	// μ updates actually flowed through the clients.
	if f.clients[0].Stats.MuUpdates.Value() == 0 {
		t.Fatal("client never updated μ — LDDM round skipped the clients")
	}
}

func TestRoundCDPSMEndToEnd(t *testing.T) {
	f := newFleet(t, []float64{1, 8, 3}, 2, CDPSM)
	ctx := context.Background()
	for _, cl := range f.clients {
		if err := cl.Submit(ctx, f.replicas[1].Addr(), 20, f.uniformLatencies()); err != nil {
			t.Fatal(err)
		}
	}
	report, err := f.replicas[1].RunRound(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if report.Algorithm != "CDPSM" {
		t.Fatalf("algorithm = %q", report.Algorithm)
	}
	rows := opt.RowSums(report.Assignment)
	for i, r := range rows {
		if math.Abs(r-20) > 0.1 {
			t.Fatalf("client %d served %g, want 20", i, r)
		}
	}
	// Replica-to-replica estimate traffic happened.
	totalCoord := int64(0)
	for _, rs := range f.replicas {
		totalCoord += rs.Stats.CoordMessages.Value()
	}
	if totalCoord == 0 {
		t.Fatal("no replica coordination messages in CDPSM round")
	}
}

func TestRoundNoPending(t *testing.T) {
	f := newFleet(t, []float64{1, 2}, 1, LDDM)
	if _, err := f.replicas[0].RunRound(context.Background()); err == nil {
		t.Fatal("round with no pending requests succeeded")
	}
}

func TestSubmitValidation(t *testing.T) {
	f := newFleet(t, []float64{1}, 1, LDDM)
	ctx := context.Background()
	err := f.clients[0].Submit(ctx, f.replicas[0].Addr(), -5, f.uniformLatencies())
	if err == nil {
		t.Fatal("negative demand accepted")
	}
}

func TestRepeatSubmissionsAggregate(t *testing.T) {
	f := newFleet(t, []float64{1, 2}, 1, LDDM)
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if err := f.clients[0].Submit(ctx, f.replicas[0].Addr(), 10, f.uniformLatencies()); err != nil {
			t.Fatal(err)
		}
	}
	if got := f.replicas[0].PendingRequests(); got != 1 {
		t.Fatalf("pending = %d, want 1 aggregated entry", got)
	}
	report, err := f.replicas[0].RunRound(ctx)
	if err != nil {
		t.Fatal(err)
	}
	rows := opt.RowSums(report.Assignment)
	if math.Abs(rows[0]-30) > 0.1 {
		t.Fatalf("aggregated demand served %g, want 30", rows[0])
	}
}

func TestRoundInfeasibleDemand(t *testing.T) {
	f := newFleet(t, []float64{1, 2}, 1, LDDM)
	ctx := context.Background()
	// 500 MB demand over 200 MB/s total capacity.
	if err := f.clients[0].Submit(ctx, f.replicas[0].Addr(), 500, f.uniformLatencies()); err != nil {
		t.Fatal(err)
	}
	if _, err := f.replicas[0].RunRound(ctx); err == nil {
		t.Fatal("infeasible round succeeded")
	}
}

func TestRoundLatencyMaskFromClientView(t *testing.T) {
	f := newFleet(t, []float64{20, 1}, 1, LDDM)
	ctx := context.Background()
	// The client can only reach the expensive replica: despite prices the
	// whole demand must land there.
	lat := map[string]float64{f.replicas[0].Addr(): 0.0005}
	if err := f.clients[0].Submit(ctx, f.replicas[0].Addr(), 30, lat); err != nil {
		t.Fatal(err)
	}
	report, err := f.replicas[0].RunRound(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for j, addr := range report.ReplicaAddrs {
		load := 0.0
		for i := range report.ClientAddrs {
			load += report.Assignment[i][j]
		}
		if addr == f.replicas[0].Addr() && math.Abs(load-30) > 0.1 {
			t.Fatalf("reachable replica served %g, want 30", load)
		}
		if addr == f.replicas[1].Addr() && load > 0.1 {
			t.Fatalf("unreachable replica served %g", load)
		}
	}
}

func TestRoundSurvivesReplicaFailure(t *testing.T) {
	f := newFleet(t, []float64{1, 2, 3}, 1, LDDM)
	ctx := context.Background()
	if err := f.clients[0].Submit(ctx, f.replicas[0].Addr(), 30, f.uniformLatencies()); err != nil {
		t.Fatal(err)
	}
	// Kill replica3 before the round: the initiator discovers the death
	// during coordination, prunes it, and reschedules on the survivors.
	f.net.Crash(f.replicas[2].Addr())
	report, err := f.replicas[0].RunRound(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if report.Restarts == 0 {
		t.Fatal("round reported no restarts after member failure")
	}
	if len(report.ReplicaAddrs) != 2 {
		t.Fatalf("round used %d replicas, want 2 survivors", len(report.ReplicaAddrs))
	}
	if f.replicas[0].Ring().Contains(f.replicas[2].Addr()) {
		t.Fatal("dead replica still in initiator's ring")
	}
	// The other survivor was notified too.
	if f.replicas[1].Ring().Contains(f.replicas[2].Addr()) {
		t.Fatal("dead replica still in survivor's ring")
	}
	rows := opt.RowSums(report.Assignment)
	if math.Abs(rows[0]-30) > 0.1 {
		t.Fatalf("post-failure round served %g, want 30", rows[0])
	}
}

func TestRoundAllReplicasFailListedError(t *testing.T) {
	f := newFleet(t, []float64{1, 2}, 1, LDDM)
	ctx := context.Background()
	if err := f.clients[0].Submit(ctx, f.replicas[0].Addr(), 300, f.uniformLatencies()); err != nil {
		t.Fatal(err)
	}
	// Crash the only peer: demand 300 no longer fits in the survivor's
	// 100 MB/s, so the retry must surface an infeasibility error.
	f.net.Crash(f.replicas[1].Addr())
	if _, err := f.replicas[0].RunRound(ctx); err == nil {
		t.Fatal("round succeeded with insufficient surviving capacity")
	}
}

func TestPlanInstalledOnReplicas(t *testing.T) {
	f := newFleet(t, []float64{1, 9}, 1, LDDM)
	ctx := context.Background()
	if err := f.clients[0].Submit(ctx, f.replicas[0].Addr(), 40, f.uniformLatencies()); err != nil {
		t.Fatal(err)
	}
	report, err := f.replicas[0].RunRound(ctx)
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for _, rs := range f.replicas {
		total += rs.Plan(report.Round, f.clients[0].Addr())
	}
	if math.Abs(total-40) > 0.1 {
		t.Fatalf("installed plans total %g, want 40", total)
	}
}

func TestRoundOverTCP(t *testing.T) {
	net := transport.NewTCPNetwork()
	// Bootstrap: bind replicas first to learn their addresses.
	var replicas []*ReplicaServer
	var addrs []string
	for i, price := range []float64{1, 6} {
		cfg := ReplicaConfig{Replica: model.NewReplica("r", price), Algorithm: LDDM, MaxIters: 120}
		rs, err := NewReplicaServer(net, "127.0.0.1:0", nil, cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer rs.Close()
		replicas = append(replicas, rs)
		addrs = append(addrs, rs.Addr())
		_ = i
	}
	// Join the rings.
	for _, rs := range replicas {
		for _, addr := range addrs {
			rs.Ring().Add(addr)
		}
	}
	client, err := NewClient(net, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	lat := map[string]float64{addrs[0]: 0.0005, addrs[1]: 0.0005}
	if err := client.Submit(ctx, addrs[0], 25, lat); err != nil {
		t.Fatal(err)
	}
	report, err := replicas[0].RunRound(ctx)
	if err != nil {
		t.Fatal(err)
	}
	rows := opt.RowSums(report.Assignment)
	if math.Abs(rows[0]-25) > 0.1 {
		t.Fatalf("TCP round served %g, want 25", rows[0])
	}
	alloc, err := client.WaitAllocation(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := client.Download(ctx, alloc); err != nil || n <= 0 {
		t.Fatalf("download: n=%d err=%v", n, err)
	}
}

func TestCDPSMRoundOverTCP(t *testing.T) {
	net := transport.NewTCPNetwork()
	var replicas []*ReplicaServer
	var addrs []string
	for _, price := range []float64{2, 7, 4} {
		cfg := ReplicaConfig{Replica: model.NewReplica("r", price), Algorithm: CDPSM, MaxIters: 60}
		rs, err := NewReplicaServer(net, "127.0.0.1:0", nil, cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer rs.Close()
		replicas = append(replicas, rs)
		addrs = append(addrs, rs.Addr())
	}
	for _, rs := range replicas {
		for _, addr := range addrs {
			rs.Ring().Add(addr)
		}
	}
	client, err := NewClient(net, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	lat := make(map[string]float64, 3)
	for _, a := range addrs {
		lat[a] = 0.0005
	}
	if err := client.Submit(ctx, addrs[2], 30, lat); err != nil {
		t.Fatal(err)
	}
	report, err := replicas[2].RunRound(ctx)
	if err != nil {
		t.Fatal(err)
	}
	rows := opt.RowSums(report.Assignment)
	if math.Abs(rows[0]-30) > 0.2 {
		t.Fatalf("TCP CDPSM round served %g, want 30", rows[0])
	}
}

func TestServeRoundsTimerLoop(t *testing.T) {
	f := newFleet(t, []float64{1, 4}, 1, LDDM)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	reports := make(chan *RoundReport, 4)
	go f.replicas[0].ServeRounds(ctx, 20*time.Millisecond,
		func(rep *RoundReport) { reports <- rep },
		func(err error) { t.Errorf("round error: %v", err) },
	)
	if err := f.clients[0].Submit(ctx, f.replicas[0].Addr(), 12, f.uniformLatencies()); err != nil {
		t.Fatal(err)
	}
	select {
	case rep := <-reports:
		if rep.Algorithm != "LDDM" {
			t.Fatalf("algorithm = %q", rep.Algorithm)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ServeRounds never ran a round")
	}
	// Idle ticks must not produce rounds or errors.
	select {
	case rep := <-reports:
		t.Fatalf("unexpected extra round %d", rep.Round)
	case <-time.After(100 * time.Millisecond):
	}
	// A second submission triggers a second round.
	if err := f.clients[0].Submit(ctx, f.replicas[0].Addr(), 8, f.uniformLatencies()); err != nil {
		t.Fatal(err)
	}
	select {
	case rep := <-reports:
		if rep.Round != 2 {
			t.Fatalf("second round id = %d", rep.Round)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("second round never ran")
	}
}
